// Edge pre-aggregation (paper §1): an edge node collects high-frequency
// sensor readings locally and ships only small pre-aggregated summaries
// upstream, saving radio bandwidth and keeping raw data on-device. The
// embedded database provides local storage with transactional guarantees
// and survives restarts — the whole point of not gluing together ad-hoc
// files.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
)

import "repro/quack"

func main() {
	dir, err := os.MkdirTemp("", "quack-edge-*")
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = os.RemoveAll(dir) }()
	dbPath := filepath.Join(dir, "edge.qdb")

	// --- day 1: collect and summarize ---
	ingestDay(dbPath, 1, 150_000)

	// --- device "reboots"; day 2 continues on the same file ---
	ingestDay(dbPath, 2, 150_000)

	// The uplink ships only the summaries.
	db, err := quack.Open(dbPath)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	raw, _ := db.Query("SELECT count(*) FROM readings")
	raw.Next()
	var rawRows int64
	raw.Scan(&rawRows)

	rows, err := db.Query(`
		SELECT day, sensor, count(*) AS n, avg(value) AS mean, min(value) AS lo, max(value) AS hi
		FROM summaries_src
		GROUP BY day, sensor
		ORDER BY day, sensor`)
	if err != nil {
		log.Fatal(err)
	}
	uplinkRows := int64(0)
	fmt.Println("day sensor      n     mean       lo       hi")
	for rows.Next() {
		var day, sensor, n int64
		var mean, lo, hi float64
		rows.Scan(&day, &sensor, &n, &mean, &lo, &hi)
		if sensor < 3 { // print a sample
			fmt.Printf("%3d %6d %6d %8.2f %8.2f %8.2f\n", day, sensor, n, mean, lo, hi)
		}
		uplinkRows++
	}
	fmt.Printf("\nstored locally: %d raw readings; shipped upstream: %d summary rows (%.2f%% of raw)\n",
		rawRows, uplinkRows, 100*float64(uplinkRows)/float64(rawRows))
}

func ingestDay(dbPath string, day int, readings int) {
	db, err := quack.Open(dbPath)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE IF NOT EXISTS readings (day BIGINT, sensor BIGINT, value DOUBLE)`); err != nil {
		log.Fatal(err)
	}
	// The pre-aggregation source view keeps the uplink query stable even
	// if the raw schema evolves.
	if day == 1 {
		if _, err := db.Exec(`CREATE VIEW summaries_src AS SELECT day, sensor, value FROM readings`); err != nil {
			log.Fatal(err)
		}
	}
	app, err := db.Appender("readings")
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(int64(day)))
	for i := 0; i < readings; i++ {
		app.AppendRow(int64(day), int64(rng.Intn(32)), rng.NormFloat64()*5+20)
	}
	if err := app.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day %d: ingested %d readings, database persisted at %s\n", day, readings, filepath.Base(dbPath))
}
