// Quickstart: open an embedded database, create a table, load rows, and
// run OLAP queries — all inside this process, no server.
package main

import (
	"fmt"
	"log"

	"repro/quack"
)

func main() {
	// ":memory:" gives a volatile database; pass a file path for a
	// persistent single-file database.
	db, err := quack.Open(":memory:")
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	must(db.Exec(`CREATE TABLE orders (
		id       BIGINT NOT NULL,
		region   VARCHAR,
		quantity BIGINT,
		price    DOUBLE
	)`))

	// Bulk load through the appender (the fast path).
	app, err := db.Appender("orders")
	if err != nil {
		log.Fatal(err)
	}
	regions := []string{"north", "south", "east", "west"}
	for i := 0; i < 100_000; i++ {
		if err := app.AppendRow(int64(i), regions[i%4], int64(i%50+1), float64(i%997)*0.25); err != nil {
			log.Fatal(err)
		}
	}
	if err := app.Close(); err != nil {
		log.Fatal(err)
	}

	// An OLAP query with grouping and ordering.
	rows, err := db.Query(`
		SELECT region, count(*) AS orders, sum(quantity * price) AS revenue
		FROM orders
		WHERE quantity > 10
		GROUP BY region
		ORDER BY revenue DESC`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("region  orders  revenue")
	for rows.Next() {
		var region string
		var orders int64
		var revenue float64
		if err := rows.Scan(&region, &orders, &revenue); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7s %6d  %12.2f\n", region, orders, revenue)
	}

	// The same result consumed through the zero-copy chunk API: the
	// application reads the engine's column slices directly.
	rows, err = db.Query("SELECT quantity, price FROM orders")
	if err != nil {
		log.Fatal(err)
	}
	var revenue float64
	for {
		chunk := rows.NextChunk()
		if chunk == nil {
			break
		}
		qty := chunk.Cols[0].I64[:chunk.Len()]
		price := chunk.Cols[1].F64[:chunk.Len()]
		for i := range qty {
			revenue += float64(qty[i]) * price[i]
		}
	}
	fmt.Printf("\ntotal revenue (computed app-side over chunks): %.2f\n", revenue)
}

func must(n int64, err error) {
	if err != nil {
		log.Fatal(err)
	}
}
