// Dashboard (paper §2): ETL writers continuously refresh the data while
// OLAP readers drive visualizations — concurrently, inside one process.
// MVCC gives every query a consistent snapshot without blocking the
// writers, and the application feeds its own resource usage to the
// engine's cooperation policy (§4).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/quack"
)

func main() {
	db, err := quack.Open(":memory:", quack.WithMemoryLimit(256<<20))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if _, err := db.Exec("CREATE TABLE metrics (host VARCHAR, cpu DOUBLE, mem DOUBLE, ts BIGINT)"); err != nil {
		log.Fatal(err)
	}
	hosts := []string{"web-1", "web-2", "db-1", "cache-1", "batch-1"}
	app, err := db.Appender("metrics")
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200_000; i++ {
		app.AppendRow(hosts[rng.Intn(len(hosts))], rng.Float64()*100, rng.Float64()*64, int64(i))
	}
	if err := app.Close(); err != nil {
		log.Fatal(err)
	}

	var (
		wg        sync.WaitGroup
		refreshes atomic.Int64
		queries   atomic.Int64
	)
	deadline := time.Now().Add(2 * time.Second)

	// ETL writer: periodically ingests a new batch and ages out old rows.
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := int64(200_000)
		for time.Now().Before(deadline) {
			tx, err := db.Begin()
			if err != nil {
				log.Fatal(err)
			}
			for i := 0; i < 1000; i++ {
				host := hosts[rng.Intn(len(hosts))]
				if _, err := tx.Exec("INSERT INTO metrics VALUES (?, ?, ?, ?)",
					host, rng.Float64()*100, rng.Float64()*64, tick); err != nil {
					log.Fatal(err)
				}
				tick++
			}
			if _, err := tx.Exec("DELETE FROM metrics WHERE ts < ?", tick-250_000); err != nil {
				tx.Rollback()
				continue
			}
			if err := tx.Commit(); err != nil {
				continue // write-write conflict: retry next round
			}
			refreshes.Add(1)
		}
	}()

	// Dashboard readers: each "panel" re-runs its aggregation and tells
	// the engine how much memory the app layer is using right now.
	for panel := 0; panel < 3; panel++ {
		wg.Add(1)
		go func(panel int) {
			defer wg.Done()
			appRAM := int64(100 << 20)
			for time.Now().Before(deadline) {
				db.SetAppUsage(appRAM, 0.3)
				rows, err := db.Query(`
					SELECT host, count(*), avg(cpu), max(mem)
					FROM metrics GROUP BY host ORDER BY host`)
				if err != nil {
					log.Fatal(err)
				}
				n := 0
				for rows.Next() {
					n++
				}
				if n == 0 {
					log.Fatal("dashboard lost its data")
				}
				queries.Add(1)
			}
		}(panel)
	}
	wg.Wait()

	fmt.Printf("2s of dashboard traffic: %d ETL refresh transactions, %d OLAP panel queries\n",
		refreshes.Load(), queries.Load())

	rows, err := db.Query("SELECT host, count(*) AS points FROM metrics GROUP BY host ORDER BY host")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("final panel:")
	for rows.Next() {
		var host string
		var points int64
		rows.Scan(&host, &points)
		fmt.Printf("  %-8s %8d points\n", host, points)
	}
}
