// ETL / data wrangling (paper §2): ingest a raw CSV file directly into
// the database, then clean it in place with bulk updates and deletes —
// out-of-core, transactional, and without rewriting untouched columns.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"repro/quack"
)

func main() {
	dir, err := os.MkdirTemp("", "quack-etl-*")
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = os.RemoveAll(dir) }()

	csvPath := filepath.Join(dir, "sensors.csv")
	writeRawCSV(csvPath, 200_000)

	db, err := quack.Open(filepath.Join(dir, "etl.qdb"))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Extract: scan the CSV straight into a persistent table.
	if _, err := db.Exec("CREATE TABLE readings (sensor BIGINT, celsius DOUBLE, humidity BIGINT)"); err != nil {
		log.Fatal(err)
	}
	n, err := db.Exec(fmt.Sprintf("COPY readings FROM '%s' WITH (HEADER)", csvPath))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d raw rows from CSV\n", n)

	// Transform, step 1 — the paper's canonical wrangling query:
	// sentinel-encoded missing values become NULLs. Only the touched
	// column is written; the others are never copied.
	n, err = db.Exec("UPDATE readings SET humidity = NULL WHERE humidity = -999")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decoded %d missing humidity values (-999 -> NULL)\n", n)

	// Transform, step 2 — unit conversion as a bulk update.
	n, err = db.Exec("UPDATE readings SET celsius = (celsius - 32.0) / 1.8 WHERE celsius > 60.0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converted %d Fahrenheit stragglers to Celsius\n", n)

	// Transform, step 3 — drop physically impossible rows.
	n, err = db.Exec("DELETE FROM readings WHERE celsius < -90.0 OR celsius > 60.0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deleted %d implausible rows\n", n)

	// Load/verify: the cleaned table is ready for analysis.
	rows, err := db.Query(`
		SELECT count(*), count(humidity), min(celsius), max(celsius), avg(celsius)
		FROM readings`)
	if err != nil {
		log.Fatal(err)
	}
	rows.Next()
	var total, withHumidity int64
	var minC, maxC, avgC float64
	if err := rows.Scan(&total, &withHumidity, &minC, &maxC, &avgC); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clean table: %d rows (%d with humidity), celsius in [%.1f, %.1f], mean %.2f\n",
		total, withHumidity, minC, maxC, avgC)

	// Export the cleaned data back out for downstream tools.
	outPath := filepath.Join(dir, "clean.csv")
	if _, err := db.Exec(fmt.Sprintf("COPY readings TO '%s' WITH (HEADER)", outPath)); err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(outPath)
	fmt.Printf("exported cleaned CSV: %s (%d bytes)\n", outPath, st.Size())
}

// writeRawCSV produces a messy sensor dump: -999 humidity sentinels, a
// few Fahrenheit readings, and some corrupted temperatures.
func writeRawCSV(path string, rows int) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}()
	rng := rand.New(rand.NewSource(42))
	fmt.Fprintln(f, "sensor,celsius,humidity")
	for i := 0; i < rows; i++ {
		celsius := rng.NormFloat64()*8 + 15
		switch rng.Intn(100) {
		case 0: // Fahrenheit by mistake
			celsius = celsius*1.8 + 32
		case 1: // corrupted reading
			celsius = -273.15
		}
		humidity := int64(rng.Intn(100))
		if rng.Intn(10) == 0 {
			humidity = -999 // sentinel for "missing"
		}
		fmt.Fprintf(f, "%d,%.3f,%d\n", rng.Intn(500), celsius, humidity)
	}
}
