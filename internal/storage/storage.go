// Package storage implements QuackDB's single-file storage format
// (paper §6): the database is one file partitioned into fixed-size
// 256 KB blocks that are read and written in their entirety. The first
// blocks hold a doubly-buffered header pointing at the table catalog and
// the free list; checkpoints write new blocks first and then atomically
// update the root pointer, so a crash at any instant leaves a consistent
// database. Every block carries a checksum that is verified on read
// (§3): silent disk corruption surfaces as an error, never as wrong data.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/checksum"
)

// BlockSize is the fixed physical block size from the paper.
const BlockSize = 256 * 1024

// BlockID addresses a block within the database file. Header slots
// occupy blocks 0 and 1; data blocks start at 2.
type BlockID int64

// InvalidBlock is the nil block pointer (end of chain, empty root).
const InvalidBlock BlockID = -1

const (
	magic         = "QUACKDB1"
	headerSlots   = 2
	firstDataID   = BlockID(headerSlots)
	blockHdrBytes = checksum.Size + 4 // checksum + payload length
	// MaxPayload is the usable space in one block.
	MaxPayload = BlockSize - blockHdrBytes
)

// ErrCorrupt wraps checksum failures and structural damage.
var ErrCorrupt = errors.New("storage: corrupt block")

// blockFile abstracts the backing file so ":memory:" databases reuse the
// same code paths (minus durability).
type blockFile interface {
	io.ReaderAt
	io.WriterAt
	Truncate(size int64) error
	Sync() error
	Close() error
}

// memFile is the in-memory blockFile.
type memFile struct {
	mu   sync.RWMutex
	data []byte
}

func (m *memFile) ReadAt(p []byte, off int64) (int, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if off >= int64(len(m.data)) {
		return 0, io.EOF
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (m *memFile) WriteAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if need := off + int64(len(p)); need > int64(len(m.data)) {
		grown := make([]byte, need)
		copy(grown, m.data)
		m.data = grown
	}
	copy(m.data[off:], p)
	return len(p), nil
}

func (m *memFile) Truncate(size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if size < int64(len(m.data)) {
		m.data = m.data[:size]
	}
	return nil
}

func (m *memFile) Sync() error  { return nil }
func (m *memFile) Close() error { return nil }

// Manager owns the database file: block allocation, checksummed block
// IO, and the atomic header swap that commits a checkpoint.
type Manager struct {
	mu         sync.Mutex
	f          blockFile
	path       string
	inMemory   bool
	blockCount int64 // total blocks including headers
	free       []BlockID
	version    uint64  // header version counter
	root       BlockID // catalog chain head as of the last checkpoint

	// checksums is verify-on-read (experiment E8 and PRAGMA
	// checksum_verification toggle it). Atomic, not mu-guarded: the
	// PRAGMA may flip it from one session while another session's query
	// is mid-read, and reads must not serialize on the allocator mutex
	// just to observe a knob.
	checksums atomic.Bool

	// Stats, read via Stats().
	blocksRead    int64
	blocksWritten int64
}

// Options configures a Manager.
type Options struct {
	// DisableChecksums turns off verification on read (writes still
	// store checksums). Only the E8 ablation uses this.
	DisableChecksums bool
}

// Open opens or creates the database file at path. An empty path or
// ":memory:" yields a volatile in-memory database. The second return
// value reports whether a new database was initialized.
func Open(path string, opts Options) (*Manager, bool, error) {
	m := &Manager{
		path:       path,
		root:       InvalidBlock,
		blockCount: headerSlots,
	}
	m.checksums.Store(!opts.DisableChecksums)
	if path == "" || path == ":memory:" {
		m.f = &memFile{}
		m.inMemory = true
		if err := m.writeHeader(); err != nil {
			return nil, false, err
		}
		return m, true, nil
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, false, fmt.Errorf("storage: open %s: %w", path, err)
	}
	m.f = f
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, false, err
	}
	if st.Size() == 0 {
		if err := m.writeHeader(); err != nil {
			_ = f.Close()
			return nil, false, err
		}
		return m, true, nil
	}
	if err := m.readHeader(); err != nil {
		_ = f.Close()
		return nil, false, err
	}
	return m, false, nil
}

// Path returns the database file path ("" for in-memory).
func (m *Manager) Path() string { return m.path }

// InMemory reports whether this database is volatile.
func (m *Manager) InMemory() bool { return m.inMemory }

// SetChecksums toggles verification on read (used by experiment E8).
func (m *Manager) SetChecksums(on bool) { m.checksums.Store(on) }

// Root returns the catalog root block recorded by the last checkpoint.
func (m *Manager) Root() BlockID {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.root
}

// Stats returns cumulative blocks read and written.
func (m *Manager) Stats() (read, written int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.blocksRead, m.blocksWritten
}

// Allocate returns a block to write to, reusing freed blocks first.
func (m *Manager) Allocate() BlockID {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n := len(m.free); n > 0 {
		id := m.free[n-1]
		m.free = m.free[:n-1]
		return id
	}
	id := BlockID(m.blockCount)
	m.blockCount++
	return id
}

// Free returns blocks to the free list. They become reusable
// immediately but are only durably free after the next Checkpoint.
func (m *Manager) Free(ids ...BlockID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, id := range ids {
		if id >= firstDataID {
			m.free = append(m.free, id)
		}
	}
}

// FreeCount returns the current free-list length.
func (m *Manager) FreeCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.free)
}

// WriteBlock stores payload (≤ MaxPayload bytes) into block id with its
// checksum.
func (m *Manager) WriteBlock(id BlockID, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("storage: payload %d exceeds block capacity %d", len(payload), MaxPayload)
	}
	if id < firstDataID {
		return fmt.Errorf("storage: block %d is reserved for headers", id)
	}
	buf := make([]byte, blockHdrBytes+len(payload))
	binary.LittleEndian.PutUint32(buf[checksum.Size:], uint32(len(payload)))
	copy(buf[blockHdrBytes:], payload)
	checksum.Put(buf, checksum.Sum(buf[checksum.Size:]))
	if _, err := m.f.WriteAt(buf, int64(id)*BlockSize); err != nil {
		return fmt.Errorf("storage: write block %d: %w", id, err)
	}
	m.mu.Lock()
	m.blocksWritten++
	m.mu.Unlock()
	return nil
}

// ReadBlock reads and (unless disabled) verifies block id, returning its
// payload.
func (m *Manager) ReadBlock(id BlockID) ([]byte, error) {
	if id < firstDataID {
		return nil, fmt.Errorf("storage: block %d is reserved for headers", id)
	}
	hdr := make([]byte, blockHdrBytes)
	if _, err := m.f.ReadAt(hdr, int64(id)*BlockSize); err != nil {
		return nil, fmt.Errorf("storage: read block %d: %w", id, err)
	}
	length := binary.LittleEndian.Uint32(hdr[checksum.Size:])
	if length > MaxPayload {
		return nil, fmt.Errorf("%w: block %d declares %d payload bytes", ErrCorrupt, id, length)
	}
	buf := make([]byte, 4+length)
	if _, err := m.f.ReadAt(buf, int64(id)*BlockSize+checksum.Size); err != nil {
		return nil, fmt.Errorf("storage: read block %d payload: %w", id, err)
	}
	m.mu.Lock()
	m.blocksRead++
	m.mu.Unlock()
	// Snapshot the knob once per read; a concurrent PRAGMA flip applies
	// to subsequent reads, never to a half-verified one.
	if m.checksums.Load() {
		if err := checksum.Verify(buf, checksum.Get(hdr)); err != nil {
			return nil, fmt.Errorf("%w: block %d: %v", ErrCorrupt, id, err)
		}
	}
	return buf[4:], nil
}

// Checkpoint atomically installs root as the new catalog root and
// persists the current free list and block count. The caller must have
// already written all blocks reachable from root. newlyFree lists blocks
// owned by the previous checkpoint that are now garbage; they join the
// free list *after* the header swap so a crash mid-checkpoint can never
// have overwritten old state.
func (m *Manager) Checkpoint(root BlockID, newlyFree []BlockID) error {
	if err := m.f.Sync(); err != nil && !m.inMemory {
		return fmt.Errorf("storage: sync before checkpoint: %w", err)
	}
	m.mu.Lock()
	m.root = root
	m.mu.Unlock()
	// First header write is the atomic commit point: the new root
	// becomes visible while the old checkpoint's blocks are still
	// intact.
	if err := m.writeHeader(); err != nil {
		return err
	}
	if len(newlyFree) == 0 {
		return nil
	}
	// Second write persists the recycled blocks in the free list; if it
	// is torn we only leak free blocks until the next checkpoint, never
	// correctness.
	m.Free(newlyFree...)
	return m.writeHeader()
}

// Sync flushes the backing file.
func (m *Manager) Sync() error { return m.f.Sync() }

// Close syncs and closes the database file.
func (m *Manager) Close() error {
	if err := m.f.Sync(); err != nil && !m.inMemory {
		return err
	}
	return m.f.Close()
}

// header layout (within one header slot's payload):
//
//	magic[8] | version u64 | root i64 | blockCount i64 | freeN u32 | free ids...
func (m *Manager) encodeHeader() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]byte, 0, 8+8+8+8+4+8*len(m.free))
	out = append(out, magic...)
	out = binary.LittleEndian.AppendUint64(out, m.version)
	out = binary.LittleEndian.AppendUint64(out, uint64(m.root))
	out = binary.LittleEndian.AppendUint64(out, uint64(m.blockCount))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(m.free)))
	for _, id := range m.free {
		out = binary.LittleEndian.AppendUint64(out, uint64(id))
	}
	return out
}

// writeHeader writes the header into the slot version+1 selects, then
// bumps the version. The single WriteAt of a checksummed slot is the
// atomic commit point.
func (m *Manager) writeHeader() error {
	m.mu.Lock()
	m.version++
	slot := BlockID(m.version % headerSlots)
	m.mu.Unlock()

	payload := m.encodeHeader()
	if len(payload) > MaxPayload {
		return fmt.Errorf("storage: header too large (%d bytes; free list too long)", len(payload))
	}
	buf := make([]byte, blockHdrBytes+len(payload))
	binary.LittleEndian.PutUint32(buf[checksum.Size:], uint32(len(payload)))
	copy(buf[blockHdrBytes:], payload)
	checksum.Put(buf, checksum.Sum(buf[checksum.Size:]))
	if _, err := m.f.WriteAt(buf, int64(slot)*BlockSize); err != nil {
		return fmt.Errorf("storage: write header slot %d: %w", slot, err)
	}
	return m.f.Sync()
}

// readHeader loads both header slots and adopts the valid one with the
// highest version, recovering from a torn header write.
func (m *Manager) readHeader() error {
	var (
		bestVersion uint64
		bestPayload []byte
	)
	for slot := BlockID(0); slot < headerSlots; slot++ {
		hdr := make([]byte, blockHdrBytes)
		if _, err := m.f.ReadAt(hdr, int64(slot)*BlockSize); err != nil {
			continue
		}
		length := binary.LittleEndian.Uint32(hdr[checksum.Size:])
		if length > MaxPayload {
			continue
		}
		buf := make([]byte, 4+length)
		if _, err := m.f.ReadAt(buf, int64(slot)*BlockSize+checksum.Size); err != nil {
			continue
		}
		if checksum.Verify(buf, checksum.Get(hdr)) != nil {
			continue
		}
		payload := buf[4:]
		if len(payload) < 8+8+8+8+4 || string(payload[:8]) != magic {
			continue
		}
		version := binary.LittleEndian.Uint64(payload[8:])
		if bestPayload == nil || version > bestVersion {
			bestVersion = version
			bestPayload = payload
		}
	}
	if bestPayload == nil {
		return fmt.Errorf("%w: no valid header slot (not a QuackDB file or both headers damaged)", ErrCorrupt)
	}
	p := bestPayload[16:]
	m.version = bestVersion
	m.root = BlockID(binary.LittleEndian.Uint64(p))
	m.blockCount = int64(binary.LittleEndian.Uint64(p[8:]))
	freeN := binary.LittleEndian.Uint32(p[16:])
	p = p[20:]
	if len(p) < int(freeN)*8 {
		return fmt.Errorf("%w: header free list truncated", ErrCorrupt)
	}
	m.free = make([]BlockID, freeN)
	for i := range m.free {
		m.free[i] = BlockID(binary.LittleEndian.Uint64(p[8*i:]))
	}
	return nil
}

// ChainWriter streams an arbitrarily long byte payload across a chain of
// blocks. Each block's payload starts with the next block's id
// (InvalidBlock terminates the chain).
type ChainWriter struct {
	m      *Manager
	blocks []BlockID
	buf    []byte
	head   BlockID
}

// NewChainWriter starts a block chain.
func NewChainWriter(m *Manager) *ChainWriter {
	return &ChainWriter{m: m, head: InvalidBlock}
}

// Write buffers p into the chain. It never fails until Finish.
func (w *ChainWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

// Finish flushes the chain to storage and returns its head block and all
// blocks used. An empty payload returns InvalidBlock.
func (w *ChainWriter) Finish() (BlockID, []BlockID, error) {
	const chunk = MaxPayload - 8
	data := w.buf
	if len(data) == 0 {
		return InvalidBlock, nil, nil
	}
	nBlocks := (len(data) + chunk - 1) / chunk
	ids := make([]BlockID, nBlocks)
	for i := range ids {
		ids[i] = w.m.Allocate()
	}
	for i := 0; i < nBlocks; i++ {
		next := InvalidBlock
		if i+1 < nBlocks {
			next = ids[i+1]
		}
		lo := i * chunk
		hi := lo + chunk
		if hi > len(data) {
			hi = len(data)
		}
		payload := make([]byte, 8+hi-lo)
		binary.LittleEndian.PutUint64(payload, uint64(next))
		copy(payload[8:], data[lo:hi])
		if err := w.m.WriteBlock(ids[i], payload); err != nil {
			return InvalidBlock, nil, err
		}
	}
	w.head = ids[0]
	w.blocks = ids
	return w.head, ids, nil
}

// ReadChain reads a whole block chain starting at head and returns the
// payload plus every block id in the chain (for later freeing).
func ReadChain(m *Manager, head BlockID) ([]byte, []BlockID, error) {
	var (
		out []byte
		ids []BlockID
	)
	for id := head; id != InvalidBlock; {
		payload, err := m.ReadBlock(id)
		if err != nil {
			return nil, nil, err
		}
		if len(payload) < 8 {
			return nil, nil, fmt.Errorf("%w: chain block %d too short", ErrCorrupt, id)
		}
		ids = append(ids, id)
		next := BlockID(binary.LittleEndian.Uint64(payload))
		out = append(out, payload[8:]...)
		if len(ids) > 1<<24 {
			return nil, nil, fmt.Errorf("%w: chain from block %d does not terminate", ErrCorrupt, head)
		}
		id = next
	}
	return out, ids, nil
}
