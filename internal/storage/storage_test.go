package storage

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faults"
)

func openTemp(t *testing.T) (*Manager, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.qdb")
	m, created, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Fatal("expected fresh database")
	}
	return m, path
}

func TestWriteReadBlock(t *testing.T) {
	m, _ := openTemp(t)
	defer m.Close()
	id := m.Allocate()
	payload := []byte("hello block storage")
	if err := m.WriteBlock(id, payload); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadBlock(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %q", got)
	}
}

func TestBlockSizeLimit(t *testing.T) {
	m, _ := openTemp(t)
	defer m.Close()
	id := m.Allocate()
	if err := m.WriteBlock(id, make([]byte, MaxPayload+1)); err == nil {
		t.Fatal("oversized payload accepted")
	}
	if err := m.WriteBlock(id, make([]byte, MaxPayload)); err != nil {
		t.Fatalf("max payload rejected: %v", err)
	}
}

func TestHeaderBlocksProtected(t *testing.T) {
	m, _ := openTemp(t)
	defer m.Close()
	if err := m.WriteBlock(0, []byte("x")); err == nil {
		t.Fatal("write to header slot allowed")
	}
	if _, err := m.ReadBlock(1); err == nil {
		t.Fatal("read of header slot allowed")
	}
}

func TestCorruptionDetected(t *testing.T) {
	m, path := openTemp(t)
	id := m.Allocate()
	payload := make([]byte, 5000)
	rand.New(rand.NewSource(1)).Read(payload)
	if err := m.WriteBlock(id, payload); err != nil {
		t.Fatal(err)
	}
	m.Close()

	// Flip one bit in the block's payload on disk.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(id)*BlockSize + blockHdrBytes + 100
	raw[off] ^= 0x10
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	m2, _, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if _, err := m2.ReadBlock(id); err == nil {
		t.Fatal("silent corruption went undetected")
	}

	// With verification off, the corrupted payload is returned as-is.
	m2.SetChecksums(false)
	got, err := m2.ReadBlock(id)
	if err != nil {
		t.Fatalf("read without verification: %v", err)
	}
	if bytes.Equal(got, payload) {
		t.Fatal("payload should differ after corruption")
	}
}

func TestCorruptionViaInjector(t *testing.T) {
	m, path := openTemp(t)
	id := m.Allocate()
	if err := m.WriteBlock(id, bytes.Repeat([]byte("data"), 1000)); err != nil {
		t.Fatal(err)
	}
	m.Close()

	raw, _ := os.ReadFile(path)
	inj := faults.NewInjector(99)
	region := raw[int64(id)*BlockSize+blockHdrBytes : int64(id)*BlockSize+blockHdrBytes+4000]
	inj.FlipBitsBytes(region, 3)
	os.WriteFile(path, raw, 0o644)

	m2, _, _ := Open(path, Options{})
	defer m2.Close()
	if _, err := m2.ReadBlock(id); err == nil {
		t.Fatal("injected bit flips undetected")
	}
}

func TestFreeListReuse(t *testing.T) {
	m, _ := openTemp(t)
	defer m.Close()
	a := m.Allocate()
	b := m.Allocate()
	if a == b {
		t.Fatal("duplicate allocation")
	}
	m.Free(a)
	if got := m.Allocate(); got != a {
		t.Fatalf("free block not reused: got %d want %d", got, a)
	}
}

func TestCheckpointPersistsRootAndFreeList(t *testing.T) {
	m, path := openTemp(t)
	id := m.Allocate()
	if err := m.WriteBlock(id, []byte("root data")); err != nil {
		t.Fatal(err)
	}
	spare := m.Allocate()
	if err := m.WriteBlock(spare, []byte("junk")); err != nil {
		t.Fatal(err)
	}
	if err := m.Checkpoint(id, []BlockID{spare}); err != nil {
		t.Fatal(err)
	}
	m.Close()

	m2, created, err := Open(path, Options{})
	if err != nil || created {
		t.Fatalf("reopen: %v created=%v", err, created)
	}
	defer m2.Close()
	if m2.Root() != id {
		t.Fatalf("root = %d, want %d", m2.Root(), id)
	}
	if m2.FreeCount() != 1 {
		t.Fatalf("free count = %d, want 1", m2.FreeCount())
	}
	got, err := m2.ReadBlock(id)
	if err != nil || string(got) != "root data" {
		t.Fatalf("root block: %q %v", got, err)
	}
}

func TestTornHeaderRecovery(t *testing.T) {
	m, path := openTemp(t)
	id := m.Allocate()
	m.WriteBlock(id, []byte("v1"))
	if err := m.Checkpoint(id, nil); err != nil {
		t.Fatal(err)
	}
	version1Root := m.Root()
	id2 := m.Allocate()
	m.WriteBlock(id2, []byte("v2"))
	if err := m.Checkpoint(id2, nil); err != nil {
		t.Fatal(err)
	}
	m.Close()

	// Corrupt the most recent header slot: open must fall back to the
	// older valid one.
	raw, _ := os.ReadFile(path)
	// Two checkpoints + initial header = version 3; slot = 3 % 2 = 1.
	slotOff := int64(1) * BlockSize
	for i := int64(0); i < 64; i++ {
		raw[slotOff+i] ^= 0xFF
	}
	os.WriteFile(path, raw, 0o644)

	m2, created, err := Open(path, Options{})
	if err != nil || created {
		t.Fatalf("reopen: %v", err)
	}
	defer m2.Close()
	if m2.Root() != version1Root {
		t.Fatalf("root = %d, want fallback to %d", m2.Root(), version1Root)
	}
}

func TestBothHeadersDamaged(t *testing.T) {
	m, path := openTemp(t)
	m.Close()
	raw, _ := os.ReadFile(path)
	for i := 0; i < 2*BlockSize && i < len(raw); i += 97 {
		raw[i] ^= 0xA5
	}
	os.WriteFile(path, raw, 0o644)
	if _, _, err := Open(path, Options{}); err == nil {
		t.Fatal("opened database with both headers destroyed")
	}
}

func TestChainWriterRoundTrip(t *testing.T) {
	m, _ := openTemp(t)
	defer m.Close()
	payload := make([]byte, 3*MaxPayload+12345) // spans 4 blocks
	rand.New(rand.NewSource(5)).Read(payload)
	w := NewChainWriter(m)
	if _, err := w.Write(payload); err != nil {
		t.Fatal(err)
	}
	head, blocks, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 4 {
		t.Fatalf("chain uses %d blocks, want 4", len(blocks))
	}
	got, gotBlocks, err := ReadChain(m, head)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("chain payload corrupted")
	}
	if len(gotBlocks) != len(blocks) {
		t.Fatalf("read %d blocks, wrote %d", len(gotBlocks), len(blocks))
	}
}

func TestEmptyChain(t *testing.T) {
	m, _ := openTemp(t)
	defer m.Close()
	w := NewChainWriter(m)
	head, blocks, err := w.Finish()
	if err != nil || head != InvalidBlock || blocks != nil {
		t.Fatalf("empty chain: head=%d blocks=%v err=%v", head, blocks, err)
	}
	payload, ids, err := ReadChain(m, InvalidBlock)
	if err != nil || payload != nil || ids != nil {
		t.Fatalf("reading empty chain: %v", err)
	}
}

func TestInMemoryMode(t *testing.T) {
	m, created, err := Open(":memory:", Options{})
	if err != nil || !created {
		t.Fatal(err)
	}
	defer m.Close()
	if !m.InMemory() {
		t.Fatal("not in memory")
	}
	id := m.Allocate()
	if err := m.WriteBlock(id, []byte("volatile")); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadBlock(id)
	if err != nil || string(got) != "volatile" {
		t.Fatalf("%q %v", got, err)
	}
}

func TestStats(t *testing.T) {
	m, _ := openTemp(t)
	defer m.Close()
	id := m.Allocate()
	m.WriteBlock(id, []byte("x"))
	m.ReadBlock(id)
	m.ReadBlock(id)
	r, w := m.Stats()
	if r != 2 || w != 1 {
		t.Fatalf("stats: read=%d written=%d", r, w)
	}
}
