// Package obs is the engine-wide metrics registry: counters, gauges and
// histograms an embedded database uses to explain itself. There is no
// server process a user could attach an external profiler to, so the
// engine keeps its own telemetry and surfaces it through the public API
// (quack.DB.Metrics), PRAGMA metrics, and the bench tooling.
//
// Everything here is lock-free on the write path: plain atomic counters
// for ordinary sites, cache-line-sharded counters for the hottest ones,
// and histograms with power-of-two nanosecond buckets whose Observe is
// two atomic adds. The registry itself takes a mutex only at
// registration and snapshot time.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// numShards is the stripe count of a ShardedCounter. Power of two so
// the shard pick is a mask, sized for the handful of cores an embedded
// engine typically owns.
const numShards = 8

type shard struct {
	v atomic.Int64
	_ [56]byte // pad to a cache line: stripes must not false-share
}

// ShardedCounter is a counter striped across cache lines for hot paths
// where many workers increment concurrently (per-morsel, per-segment
// sites). Add picks a stripe from the address of a stack local, which
// is stable per goroutine for the life of a call chain — contention
// spreads without any goroutine-id lookup.
type ShardedCounter struct{ shards [numShards]shard }

// Add increments the counter by n. The stripe index hashes the address
// of a stack local — goroutine stacks are disjoint, so concurrent
// callers spread across stripes; the pointer is never dereferenced.
func (c *ShardedCounter) Add(n int64) {
	var probe byte
	i := (uintptr(unsafe.Pointer(&probe)) >> 10) & (numShards - 1)
	c.shards[i].v.Add(n)
}

// Load sums the stripes. Concurrent Adds may or may not be included —
// the usual counter-snapshot semantics.
func (c *ShardedCounter) Load() int64 {
	var sum int64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// histBuckets covers [1ns, ~18min) in power-of-two buckets; bucket i
// holds observations with bit length i (i.e. values in [2^(i-1), 2^i)).
const histBuckets = 41

// Histogram records nanosecond durations in exponential buckets. The
// write path is two atomic adds; quantiles are computed at snapshot
// time and are conservative (they report a bucket upper bound).
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

func histBucket(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	b := bits.Len64(uint64(ns))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one duration in nanoseconds.
func (h *Histogram) Observe(ns int64) {
	h.count.Add(1)
	h.sum.Add(ns)
	h.buckets[histBucket(ns)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observed durations, in nanoseconds.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile returns an upper bound of the q-quantile (0 < q <= 1) in
// nanoseconds: the upper edge of the bucket where the cumulative count
// crosses q. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total <= 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			if i == 0 {
				return 0
			}
			return int64(1) << i // upper bound of bucket i: [2^(i-1), 2^i)
		}
	}
	return int64(1) << (histBuckets - 1)
}

// Sample is one named metric value in a snapshot.
type Sample struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// item is one registered metric: a scalar read function or a histogram
// (which expands to _count/_sum_ns/_p50_ns/_p99_ns samples).
type item struct {
	name string
	read func() int64
	hist *Histogram
}

// Registry holds named metrics. Registration panics on duplicate names
// (a programming error); reads are cheap and snapshots are sorted by
// name so output is deterministic.
type Registry struct {
	mu    sync.Mutex
	names map[string]struct{}
	items []item
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]struct{})}
}

func (r *Registry) register(it item) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.names[it.name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", it.name))
	}
	r.names[it.name] = struct{}{}
	r.items = append(r.items, it)
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name string) *Counter {
	c := &Counter{}
	r.register(item{name: name, read: c.Load})
	return c
}

// Sharded registers and returns a new sharded counter for hot paths.
func (r *Registry) Sharded(name string) *ShardedCounter {
	c := &ShardedCounter{}
	r.register(item{name: name, read: c.Load})
	return c
}

// Gauge registers a metric whose value is computed at snapshot time —
// the bridge for state the engine already tracks elsewhere (pool bytes,
// queue depths, existing atomic counters).
func (r *Registry) Gauge(name string, read func() int64) {
	if read == nil {
		panic("obs: nil gauge reader")
	}
	r.register(item{name: name, read: read})
}

// Int64 registers an existing atomic as a metric. Existing engine
// counters migrate onto the registry through this without changing
// their write sites.
func (r *Registry) Int64(name string, v *atomic.Int64) {
	r.register(item{name: name, read: v.Load})
}

// Histogram registers and returns a new histogram. It contributes four
// samples to snapshots: name_count, name_sum_ns, name_p50_ns and
// name_p99_ns.
func (r *Registry) Histogram(name string) *Histogram {
	h := &Histogram{}
	r.register(item{name: name, hist: h})
	return h
}

// Snapshot returns every metric's current value, sorted by name.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	items := make([]item, len(r.items))
	copy(items, r.items)
	r.mu.Unlock()
	out := make([]Sample, 0, len(items))
	for _, it := range items {
		if it.hist != nil {
			out = append(out,
				Sample{Name: it.name + "_count", Value: it.hist.Count()},
				Sample{Name: it.name + "_sum_ns", Value: it.hist.Sum()},
				Sample{Name: it.name + "_p50_ns", Value: it.hist.Quantile(0.50)},
				Sample{Name: it.name + "_p99_ns", Value: it.hist.Quantile(0.99)},
			)
			continue
		}
		out = append(out, Sample{Name: it.name, Value: it.read()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SnapshotMap returns the snapshot as a name → value map.
func (r *Registry) SnapshotMap() map[string]int64 {
	snap := r.Snapshot()
	out := make(map[string]int64, len(snap))
	for _, s := range snap {
		out[s.Name] = s.Value
	}
	return out
}

// Get returns the current value of one metric (histograms answer to
// their expanded names, e.g. "x_p99_ns").
func (r *Registry) Get(name string) (int64, bool) {
	for _, s := range r.Snapshot() {
		if s.Name == name {
			return s.Value, true
		}
	}
	return 0, false
}

// WriteText writes the snapshot in a plain "name value" line format —
// the text exposition the bench tooling embeds.
func (r *Registry) WriteText(w io.Writer) error {
	for _, s := range r.Snapshot() {
		if _, err := fmt.Fprintf(w, "%s %d\n", s.Name, s.Value); err != nil {
			return err
		}
	}
	return nil
}
