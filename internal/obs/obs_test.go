package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a_total")
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
}

func TestShardedCounterConcurrent(t *testing.T) {
	var c ShardedCounter
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*per {
		t.Fatalf("sharded counter = %d, want %d", got, workers*per)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Observe(100) // bucket [64, 128) → upper bound 128
	}
	h.Observe(1 << 20) // one outlier
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Quantile(0.50); got != 128 {
		t.Fatalf("p50 = %d, want 128", got)
	}
	if got := h.Quantile(0.99); got != 128 {
		t.Fatalf("p99 = %d, want 128 (99 of 100 obs in that bucket)", got)
	}
	if got := h.Quantile(1.0); got != 1<<21 {
		t.Fatalf("p100 = %d, want %d", got, 1<<21)
	}
	var empty Histogram
	if got := empty.Quantile(0.99); got != 0 {
		t.Fatalf("empty p99 = %d, want 0", got)
	}
}

func TestRegistrySnapshotSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total").Add(3)
	r.Gauge("a_gauge", func() int64 { return 7 })
	h := r.Histogram("m_wait")
	h.Observe(100)
	snap := r.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name >= snap[i].Name {
			t.Fatalf("snapshot not sorted: %q >= %q", snap[i-1].Name, snap[i].Name)
		}
	}
	m := r.SnapshotMap()
	if m["z_total"] != 3 || m["a_gauge"] != 7 {
		t.Fatalf("snapshot map wrong: %v", m)
	}
	for _, want := range []string{"m_wait_count", "m_wait_sum_ns", "m_wait_p50_ns", "m_wait_p99_ns"} {
		if _, ok := m[want]; !ok {
			t.Fatalf("histogram sample %q missing from snapshot", want)
		}
	}
	if m["m_wait_count"] != 1 || m["m_wait_sum_ns"] != 100 {
		t.Fatalf("histogram samples wrong: %v", m)
	}
	if v, ok := r.Get("z_total"); !ok || v != 3 {
		t.Fatalf("Get(z_total) = %d, %v", v, ok)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup")
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Gauge("a_gauge", func() int64 { return 1 })
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a_gauge 1\nb_total 2\n"
	if sb.String() != want {
		t.Fatalf("text exposition = %q, want %q", sb.String(), want)
	}
}
