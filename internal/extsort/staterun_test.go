package extsort

import (
	"errors"
	"fmt"
	"os"
	"testing"
)

// TestStateRunRoundtrip: records written across several runs of one
// spill file must read back exactly, in order, per run.
func TestStateRunRoundtrip(t *testing.T) {
	sf, err := NewStateSpillFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	var runs []*StateRun
	for r := 0; r < 3; r++ {
		w, err := sf.NewRun()
		if err != nil {
			t.Fatal(err)
		}
		// Big payloads force multiple blocks per run.
		payload := make([]byte, 1000)
		for i := range payload {
			payload[i] = byte(r)
		}
		for i := 0; i < 500; i++ {
			key := fmt.Sprintf("run%d-key%06d", r, i)
			if err := w.Append([]byte(key), payload); err != nil {
				t.Fatal(err)
			}
		}
		run, err := w.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if run.Len() != 500 {
			t.Fatalf("run %d: Len = %d", r, run.Len())
		}
		runs = append(runs, run)
	}
	for r, run := range runs {
		cur := run.Cursor()
		i := 0
		for {
			ok, err := cur.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			wantKey := fmt.Sprintf("run%d-key%06d", r, i)
			if string(cur.Key()) != wantKey {
				t.Fatalf("run %d record %d: key %q, want %q", r, i, cur.Key(), wantKey)
			}
			if len(cur.State()) != 1000 || cur.State()[0] != byte(r) {
				t.Fatalf("run %d record %d: bad payload", r, i)
			}
			i++
		}
		if i != 500 {
			t.Fatalf("run %d: read %d records, want 500", r, i)
		}
	}
}

// TestStateRunRejectsUnsortedKeys: the merge machinery depends on
// strictly ascending keys, so the writer must refuse violations.
func TestStateRunRejectsUnsortedKeys(t *testing.T) {
	sf, err := NewStateSpillFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	w, err := sf.NewRun()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("b"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("b"), []byte("x")); err == nil {
		t.Fatal("duplicate key accepted")
	}
	w.Abort()
	// A second writer may start after Abort; before it, NewRun refuses.
	w2, err := sf.NewRun()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sf.NewRun(); err == nil {
		t.Fatal("two concurrent run writers accepted")
	}
	w2.Abort()
}

// TestStateRunCorruptionErrors: flipped block headers and truncated
// records must surface as errors, never hangs or panics (the on-disk
// equivalent of the disk-subsystem faults the faults package models).
func TestStateRunCorruptionErrors(t *testing.T) {
	sf, err := NewStateSpillFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	w, err := sf.NewRun()
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 2000)
	for i := 0; i < 200; i++ {
		if err := w.Append([]byte(fmt.Sprintf("key%06d", i)), payload); err != nil {
			t.Fatal(err)
		}
	}
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(run.offs) < 2 {
		t.Fatalf("want multiple blocks, got %d", len(run.offs))
	}
	// Absurd length in the second block's header.
	if _, err := sf.f.WriteAt([]byte{0xff, 0xff, 0xff, 0x7f}, run.offs[1]); err != nil {
		t.Fatal(err)
	}
	cur := run.Cursor()
	var nerr error
	for {
		ok, err := cur.Next()
		if err != nil {
			nerr = err
			break
		}
		if !ok {
			break
		}
	}
	if nerr == nil {
		t.Fatal("corrupted block header read cleanly")
	}
	// Garbage inside the first block: record framing must error too.
	run2 := &StateRun{sf: sf, offs: run.offs[:1], bytes: run.bytes, n: run.n}
	if _, err := sf.f.WriteAt([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, run.offs[0]+4); err != nil {
		t.Fatal(err)
	}
	cur2 := run2.Cursor()
	var nerr2 error
	for {
		ok, err := cur2.Next()
		if err != nil {
			nerr2 = err
			break
		}
		if !ok {
			break
		}
	}
	if nerr2 == nil {
		t.Fatal("corrupted record framing read cleanly")
	}
	// Close is idempotent and reads after Close error instead of
	// resurrecting the fd.
	sf.Close()
	sf.Close()
	if _, err := run.Cursor().Next(); err == nil {
		t.Fatal("cursor read after spill-file Close")
	}
	if cerr := sf.File(); cerr != nil {
		t.Fatal("File() non-nil after Close")
	}
}

// TestStateSpillFileUnlinked: the backing file is unlinked at creation
// (no litter on crash) and closing it releases the fd.
func TestStateSpillFileUnlinked(t *testing.T) {
	dir := t.TempDir()
	sf, err := NewStateSpillFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("spill file left linked in tmpdir: %v", entries)
	}
	f := sf.File()
	sf.Close()
	if err := f.Close(); !errors.Is(err, os.ErrClosed) {
		t.Fatalf("fd still open after Close (close returned %v)", err)
	}
}
