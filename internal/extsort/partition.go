package extsort

import (
	"sort"

	"repro/internal/vector"
)

// Partitioned merge: instead of one consumer thread streaming the k-way
// merge, the cursors' key domain is split into disjoint ranges at
// sampled key quantiles and every range becomes its own Iterator —
// loser-tree merging private cursor clones over the shared runs and
// buffers — safe to drain from N goroutines concurrently. Concatenating
// the ranges in order reproduces the exact total order of the single
// merge, whatever boundaries the sample picked, so output stays
// bit-identical at every worker count.

// maxSamplesPerCursor bounds the quantile-sampling IO: per run the
// sampler decodes at most this many evenly spaced chunks (first row
// each); per in-memory buffer it takes this many evenly spaced rows.
const maxSamplesPerCursor = 32

// partCursor is a cursor the partitioned merge can sample and clone.
type partCursor interface {
	cursor
	// sampleInto appends up to max evenly spaced rows to the chunk.
	sampleInto(into *vector.Chunk, max int) error
	// seekClone returns a fresh cursor positioned at the first row that
	// compares strictly greater than bound[boundRow] under boundKeys
	// (at the start when bound is nil). Returns nil when the remaining
	// range is empty.
	seekClone(bound *vector.Chunk, boundRow int, boundKeys []Key) (cursor, error)
}

// PartitionMerge splits this merge into up to n disjoint key-range
// iterators that together stream the same total order Next would, each
// independently drainable (typically from its own goroutine). boundKeys
// is the key prefix ranges are cut on: the full sort keys for a plain
// merge, or a group prefix (e.g. window PARTITION BY columns) so that
// rows equal on the prefix — one window partition — never straddle two
// ranges.
//
// It returns nil (and no error) when partitioning is not worthwhile:
// n < 2, an empty input, or sampled boundaries that collapse onto too
// few distinct prefix values (heavy skew). The parent iterator must not
// have been Next'ed; on success it is consumed — only its Close matters
// afterwards (it owns the files/buffers the ranges read), and it must
// be closed only after every range iterator is done.
func (it *Iterator) PartitionMerge(n int, boundKeys []Key) ([]*Iterator, error) {
	if n < 2 || it.handedOff || it.lt != nil || len(boundKeys) == 0 {
		return nil, nil // already streaming (or nothing to split)
	}
	cursors := it.cursors
	if cursors == nil {
		// In-memory mode partitions too: wrap the sorted buffer.
		if len(it.memRefs) == 0 || it.memPos > 0 {
			return nil, nil
		}
		cursors = []cursor{&memCursor{chunks: it.mem, refs: it.memRefs}}
	}
	parts := make([]partCursor, 0, len(cursors))
	for _, c := range cursors {
		pc, ok := c.(partCursor)
		if !ok {
			return nil, nil
		}
		parts = append(parts, pc)
	}

	// Sample rows, order them by the full sort keys, and take the n-1
	// quantiles as range boundaries, dropping boundaries that repeat
	// the previous one's prefix (duplicate-heavy keys shrink the fan).
	samples := vector.NewChunk(it.colTypes)
	for _, pc := range parts {
		if err := pc.sampleInto(samples, maxSamplesPerCursor); err != nil {
			return nil, err
		}
	}
	ns := samples.Len()
	if ns < 2 {
		return nil, nil
	}
	order := make([]int, ns)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return CompareRows(samples, order[i], samples, order[j], it.keys) < 0
	})
	bounds := vector.NewChunk(it.colTypes)
	for i := 1; i < n; i++ {
		cand := order[i*ns/n]
		if bounds.Len() > 0 && CompareRows(bounds, bounds.Len()-1, samples, cand, boundKeys) == 0 {
			continue
		}
		bounds.AppendRowFrom(samples, cand)
	}
	if bounds.Len() == 0 {
		return nil, nil
	}

	out := make([]*Iterator, 0, bounds.Len()+1)
	for i := 0; i <= bounds.Len(); i++ {
		rangeIt := &Iterator{colTypes: it.colTypes, keys: it.keys, shared: true}
		for _, pc := range parts {
			var c cursor
			var err error
			if i == 0 {
				c, err = pc.seekClone(nil, 0, boundKeys)
			} else {
				c, err = pc.seekClone(bounds, i-1, boundKeys)
			}
			if err != nil {
				for _, done := range out {
					done.Close()
				}
				rangeIt.Close()
				return nil, err
			}
			if c == nil {
				continue
			}
			if i < bounds.Len() {
				rc := &rangeCursor{inner: c, bound: bounds, boundRow: i, keys: boundKeys}
				rc.check()
				if rc.done {
					// Clone landed past this range's cap; drop it and
					// release whatever chunk it pinned.
					rc.close()
					continue
				}
				c = rc
			}
			rangeIt.cursors = append(rangeIt.cursors, c)
		}
		out = append(out, rangeIt)
	}
	it.handedOff = true
	return out, nil
}

// rangeCursor caps a cursor at an upper boundary row (inclusive of rows
// comparing equal on the bound keys): past it the cursor reads as
// exhausted, leaving the remaining rows to the next range's own clones.
type rangeCursor struct {
	inner    cursor
	bound    *vector.Chunk
	boundRow int
	keys     []Key
	done     bool
}

func (c *rangeCursor) check() {
	if !c.done {
		cur := c.inner.chunk()
		if cur == nil || CompareRows(cur, c.inner.rowIdx(), c.bound, c.boundRow, c.keys) > 0 {
			c.done = true
		}
	}
}

func (c *rangeCursor) chunk() *vector.Chunk {
	if c.done {
		return nil
	}
	return c.inner.chunk()
}

func (c *rangeCursor) rowIdx() int { return c.inner.rowIdx() }

func (c *rangeCursor) advance() error {
	if c.done {
		return nil
	}
	if err := c.inner.advance(); err != nil {
		return err
	}
	c.check()
	return nil
}

func (c *rangeCursor) close() { c.inner.close() }

// ---- memCursor partitioning ----

func (c *memCursor) sampleInto(into *vector.Chunk, max int) error {
	n := len(c.refs)
	stride := (n + max - 1) / max
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < n; i += stride {
		ref := c.refs[i]
		into.AppendRowFrom(c.chunks[ref.chunk], ref.row)
	}
	return nil
}

func (c *memCursor) seekClone(bound *vector.Chunk, boundRow int, boundKeys []Key) (cursor, error) {
	pos := 0
	if bound != nil {
		// First row strictly past the boundary prefix; refs are sorted
		// by the full keys and boundKeys is a prefix of them, so the
		// predicate is monotone.
		pos = sort.Search(len(c.refs), func(p int) bool {
			ref := c.refs[p]
			return CompareRows(c.chunks[ref.chunk], ref.row, bound, boundRow, boundKeys) > 0
		})
	}
	if pos >= len(c.refs) {
		return nil, nil
	}
	return &memCursor{chunks: c.chunks, refs: c.refs, pos: pos}, nil
}

// ---- runCursor partitioning ----

func (c *runCursor) sampleInto(into *vector.Chunk, max int) error {
	n := len(c.offs)
	stride := (n + max - 1) / max
	if stride < 1 {
		stride = 1
	}
	if c.samples != nil && c.samples.Len() == n {
		// Spill-time boundary footer: row i is chunk i's first row, so
		// the stride walks memory instead of decoding run chunks.
		for i := 0; i < n; i += stride {
			into.AppendRowFrom(c.samples, i)
		}
		return nil
	}
	for i := 0; i < n; i += stride {
		chunk, err := readRunChunk(c.f, c.offs[i])
		if err != nil {
			return err
		}
		if chunk.Len() > 0 {
			into.AppendRowFrom(chunk, 0)
		}
	}
	return nil
}

func (c *runCursor) seekClone(bound *vector.Chunk, boundRow int, boundKeys []Key) (cursor, error) {
	clone := &runCursor{f: c.f, offs: c.offs, samples: c.samples, pool: c.pool}
	if bound == nil {
		if err := clone.load(); err != nil {
			clone.close()
			return nil, err
		}
		if clone.cur == nil {
			return nil, nil
		}
		return clone, nil
	}
	// Binary search the chunk index: the last chunk whose first row is
	// not past the boundary may still hold in-range rows; later chunks
	// start past it. The boundary footer answers each probe from memory;
	// without one, readRunChunk per probe keeps this O(log chunks).
	var seekErr error
	start := sort.Search(len(c.offs), func(i int) bool {
		if seekErr != nil {
			return false
		}
		if c.samples != nil && c.samples.Len() == len(c.offs) {
			return CompareRows(c.samples, i, bound, boundRow, boundKeys) > 0
		}
		chunk, err := readRunChunk(c.f, c.offs[i])
		if err != nil {
			seekErr = err
			return false
		}
		return CompareRows(chunk, 0, bound, boundRow, boundKeys) > 0
	})
	if seekErr != nil {
		return nil, seekErr
	}
	if start > 0 {
		start--
	}
	clone.idx = start
	if err := clone.load(); err != nil {
		clone.close()
		return nil, err
	}
	// Skip the rows at or before the boundary; at most one chunk plus
	// the already-past-boundary chunks the search ruled out.
	for clone.cur != nil && CompareRows(clone.cur, clone.row, bound, boundRow, boundKeys) <= 0 {
		if err := clone.advance(); err != nil {
			clone.close()
			return nil, err
		}
	}
	if clone.cur == nil {
		return nil, nil
	}
	return clone, nil
}
