// Package extsort implements external merge sort over chunks: rows are
// collected until a memory budget is exceeded, sorted runs are spilled
// to temporary files, and a k-way merge streams the totally ordered
// result. This is the out-of-core substrate behind the merge join the
// paper's cooperation section trades against the hash join (§4): fewer
// resident bytes, more CPU cycles plus disk IO.
package extsort

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/buffer"
	"repro/internal/types"
	"repro/internal/vector"
)

// runChunkReads counts readRunChunk calls. Tests assert the spill-time
// boundary samples keep PartitionMerge's quantile sampling and seek
// probes from re-reading run chunks.
var runChunkReads atomic.Int64

// Key describes one sort key over the chunk's columns.
type Key struct {
	Col        int
	Desc       bool
	NullsFirst bool
}

// Sorter accumulates chunks and produces a sorted stream.
type Sorter struct {
	colTypes []types.Type
	keys     []Key
	budget   int64 // bytes of buffered rows before spilling; <=0: no spill
	tmpDir   string
	pool     *buffer.Pool // optional memory accounting

	chunks   []*vector.Chunk
	bytes    int64
	reserved int64
	runs     []runFile
	spilled  int64 // bytes spilled (stats)
}

// runFile is one spilled sorted run: the (unlinked) temp file plus the
// file offset of every encoded chunk. The offset index is what lets the
// partitioned merge binary-search a run for a key-range start without
// streaming it from the beginning. samples is the run's boundary
// footer — the first row of every chunk, captured while the rows were
// still in memory at spill time — so quantile sampling for the
// partitioned merge costs zero read-back IO.
type runFile struct {
	f       *os.File
	offs    []int64
	samples *vector.Chunk
}

// NewSorter returns a sorter for chunks with the given column types.
// budget <= 0 disables spilling (fully in-memory sort).
func NewSorter(colTypes []types.Type, keys []Key, budget int64, tmpDir string) *Sorter {
	return &Sorter{
		colTypes: append([]types.Type(nil), colTypes...),
		keys:     keys,
		budget:   budget,
		tmpDir:   tmpDir,
	}
}

// SpilledBytes reports how many bytes were written to temporary runs.
func (s *Sorter) SpilledBytes() int64 { return s.spilled }

// SetPool enables buffer-pool accounting of the sorter's resident rows.
func (s *Sorter) SetPool(p *buffer.Pool) { s.pool = p }

// Add buffers a chunk, spilling a sorted run if the budget is exceeded.
func (s *Sorter) Add(c *vector.Chunk) error {
	if c.Len() == 0 {
		return nil
	}
	b := chunkBytes(c)
	if s.pool != nil {
		if err := s.pool.Reserve(b); err != nil {
			// Free our buffered rows by spilling, then retry once.
			if len(s.chunks) == 0 {
				return err
			}
			if serr := s.spill(); serr != nil {
				return serr
			}
			if err := s.pool.Reserve(b); err != nil {
				return err
			}
		}
		s.reserved += b
	}
	s.chunks = append(s.chunks, c)
	s.bytes += b
	if s.budget > 0 && s.bytes > s.budget {
		return s.spill()
	}
	return nil
}

func (s *Sorter) releaseReserved() {
	if s.pool != nil && s.reserved > 0 {
		s.pool.Release(s.reserved)
		s.reserved = 0
	}
}

// sortBuffered orders the buffered rows and returns them as (chunk,row)
// pairs.
func (s *Sorter) sortBuffered() []rowRef {
	var refs []rowRef
	for ci, c := range s.chunks {
		for r := 0; r < c.Len(); r++ {
			refs = append(refs, rowRef{chunk: ci, row: r})
		}
	}
	sort.SliceStable(refs, func(i, j int) bool {
		a, b := refs[i], refs[j]
		return CompareRows(s.chunks[a.chunk], a.row, s.chunks[b.chunk], b.row, s.keys) < 0
	})
	return refs
}

type rowRef struct{ chunk, row int }

func (s *Sorter) spill() error {
	refs := s.sortBuffered()
	f, err := os.CreateTemp(s.tmpDir, "quack-sort-*.run")
	if err != nil {
		return fmt.Errorf("extsort: create run: %w", err)
	}
	// Unlink immediately; the fd keeps it alive (no litter on crash).
	//lint:ignore erracc unlink-while-open spill idiom: a failed remove only delays tmp cleanup, the data lives on the open fd
	os.Remove(f.Name())
	out := vector.NewChunk(s.colTypes)
	samples := vector.NewChunk(s.colTypes)
	var buf []byte
	var offs []int64
	var written int64
	flush := func() error {
		if out.Len() == 0 {
			return nil
		}
		// Boundary footer: remember each chunk's first (lowest) row while
		// it is still in memory, so partitioning never reads it back.
		samples.AppendRowFrom(out, 0)
		buf = buf[:0]
		buf = vector.EncodeChunk(buf, out)
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(buf)))
		if _, err := f.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := f.Write(buf); err != nil {
			return err
		}
		offs = append(offs, written)
		written += int64(len(buf) + 4)
		s.spilled += int64(len(buf) + 4)
		out.Reset()
		return nil
	}
	for _, ref := range refs {
		out.AppendRowFrom(s.chunks[ref.chunk], ref.row)
		if out.Len() == vector.ChunkCapacity {
			if err := flush(); err != nil {
				_ = f.Close()
				return fmt.Errorf("extsort: write run: %w", err)
			}
		}
	}
	if err := flush(); err != nil {
		_ = f.Close()
		return fmt.Errorf("extsort: write run: %w", err)
	}
	s.runs = append(s.runs, runFile{f: f, offs: offs, samples: samples})
	s.chunks = nil
	s.bytes = 0
	s.releaseReserved()
	return nil
}

// Finish completes the sort and returns an iterator over sorted chunks.
// The sorter must not be Added to afterwards.
func (s *Sorter) Finish() (*Iterator, error) {
	if len(s.runs) == 0 {
		refs := s.sortBuffered()
		it := &Iterator{
			mem:      s.chunks,
			memRefs:  refs,
			colTypes: s.colTypes,
			pool:     s.pool,
			reserved: s.reserved,
		}
		s.reserved = 0 // ownership moves to the iterator
		return it, nil
	}
	it := &Iterator{colTypes: s.colTypes, keys: s.keys}
	if err := s.registerInto(it); err != nil {
		it.Close()
		return nil, err
	}
	return it, nil
}

// MergeFinish finishes every sorter and returns one iterator k-way
// merging all of their sorted runs and in-memory buffers. This is the
// multi-producer path of the parallel sort: each worker registers the
// runs it built, and the merge treats foreign runs exactly like its
// own. All sorters must share column types and keys; ownership of their
// runs and buffered rows (including pool reservations) moves to the
// iterator even on error.
func MergeFinish(sorters []*Sorter) (*Iterator, error) {
	if len(sorters) == 1 {
		return sorters[0].Finish()
	}
	it := &Iterator{}
	for _, s := range sorters {
		if it.colTypes == nil {
			it.colTypes = s.colTypes
			it.keys = s.keys
		}
		if err := s.registerInto(it); err != nil {
			it.Close()
			return nil, err
		}
	}
	return it, nil
}

// registerInto hands the sorter's spilled runs and sorted in-memory
// buffer to a merging iterator, transferring pool-reservation ownership
// (file ownership always moves to it.files, even on error — the caller
// closes the iterator). The sorter is left empty.
func (s *Sorter) registerInto(it *Iterator) error {
	if s.pool != nil {
		it.pool = s.pool
		it.reserved += s.reserved
		s.reserved = 0
	}
	runs := s.runs
	s.runs = nil
	for _, r := range runs {
		it.files = append(it.files, r.f)
	}
	for _, r := range runs {
		c := &runCursor{f: r.f, offs: r.offs, samples: r.samples, pool: it.pool}
		if err := c.load(); err != nil {
			c.close()
			return err
		}
		if c.cur != nil {
			it.cursors = append(it.cursors, c)
		}
	}
	if len(s.chunks) > 0 {
		// The unspilled tail merges directly from memory — no disk
		// round-trip for the rows that fit the budget.
		it.cursors = append(it.cursors, &memCursor{chunks: s.chunks, refs: s.sortBuffered()})
		s.chunks = nil
		s.bytes = 0
	}
	return nil
}

// Close releases temp files early (Finish's iterator also closes them as
// runs drain).
func (s *Sorter) Close() {
	for _, r := range s.runs {
		_ = r.f.Close()
	}
	s.runs = nil
	s.chunks = nil
	s.releaseReserved()
}

// Iterator streams sorted chunks.
type Iterator struct {
	colTypes []types.Type
	keys     []Key
	pool     *buffer.Pool
	reserved int64

	// files are the run files this iterator owns; they stay open until
	// Close so partitioned-merge cursors can keep pread-ing them.
	files []*os.File

	// in-memory mode
	mem     []*vector.Chunk
	memRefs []rowRef
	memPos  int

	// merge mode: each cursor walks one sorted sequence (a spilled run
	// file or a producer's sorted in-memory buffer); the loser tree
	// replays only the advanced cursor's path per emitted row.
	cursors []cursor
	lt      *loserTree

	// shared marks a key-range iterator returned by PartitionMerge: its
	// cursors read the parent's files and buffers, which the parent
	// alone closes/releases.
	shared bool
	// handedOff marks a parent whose cursors moved to PartitionMerge
	// ranges; Next on it is a programming error.
	handedOff bool
	// err is the sticky stream error: after a cursor failure (which
	// eagerly closed everything) further Next calls must keep failing,
	// not read as a clean end of stream.
	err error
}

// Next returns the next sorted chunk, or nil at the end. Any error
// closes the iterator's cursors and run files eagerly — callers may
// still Close (idempotent), but no fd waits on them — and is sticky:
// subsequent Next calls return it again.
func (it *Iterator) Next() (*vector.Chunk, error) {
	if it.err != nil {
		return nil, it.err
	}
	if it.handedOff {
		return nil, fmt.Errorf("extsort: Next on a partitioned iterator")
	}
	if it.cursors == nil {
		if it.memPos >= len(it.memRefs) {
			return nil, nil
		}
		out := vector.NewChunk(it.colTypes)
		for it.memPos < len(it.memRefs) && out.Len() < vector.ChunkCapacity {
			ref := it.memRefs[it.memPos]
			out.AppendRowFrom(it.mem[ref.chunk], ref.row)
			it.memPos++
		}
		return out, nil
	}
	if len(it.cursors) == 0 {
		return nil, nil
	}
	if it.lt == nil {
		it.lt = newLoserTree(it.cursors, it.keys)
	}
	out := vector.NewChunk(it.colTypes)
	for out.Len() < vector.ChunkCapacity {
		w := it.lt.winner()
		if w < 0 {
			break
		}
		c := it.cursors[w]
		out.AppendRowFrom(c.chunk(), c.rowIdx())
		if err := c.advance(); err != nil {
			it.err = err
			it.Close()
			return nil, err
		}
		it.lt.fix(w)
	}
	if out.Len() == 0 {
		return nil, nil
	}
	return out, nil
}

// Close releases all remaining run files and buffered-row reservations.
// Safe to call at any point, including before the stream is drained.
// Key-range iterators from PartitionMerge only drop their cursors; the
// parent owns (and closes) the underlying files and reservations.
func (it *Iterator) Close() {
	for _, c := range it.cursors {
		c.close()
	}
	it.cursors = nil
	it.lt = nil
	it.mem = nil
	if it.shared {
		return
	}
	for _, f := range it.files {
		_ = f.Close()
	}
	it.files = nil
	if it.pool != nil && it.reserved > 0 {
		it.pool.Release(it.reserved)
		it.reserved = 0
	}
}

// cursor walks one sorted sequence of rows. chunk returns nil when the
// sequence is exhausted.
type cursor interface {
	chunk() *vector.Chunk
	rowIdx() int
	advance() error
	close()
}

// memCursor walks a producer's sorted in-memory buffer.
type memCursor struct {
	chunks []*vector.Chunk
	refs   []rowRef
	pos    int
}

func (c *memCursor) chunk() *vector.Chunk {
	if c.pos >= len(c.refs) {
		return nil
	}
	return c.chunks[c.refs[c.pos].chunk]
}

func (c *memCursor) rowIdx() int    { return c.refs[c.pos].row }
func (c *memCursor) advance() error { c.pos++; return nil }
func (c *memCursor) close()         { c.chunks, c.refs = nil, nil }

// runCursor walks a spilled run via positional reads, so any number of
// cursors (one per key-range partition) can share one run file without
// contending on a seek offset. The cursor does not own the file; the
// iterator's files list does. samples (when present) is the run's
// spill-time boundary footer: row i is the first row of chunk i, which
// lets sampling and seek probes avoid reading the file entirely.
type runCursor struct {
	f       *os.File
	offs    []int64
	samples *vector.Chunk
	idx     int // next chunk index to load
	cur     *vector.Chunk
	row     int

	// pool accounts the one decoded chunk the cursor keeps resident.
	// Accounting is best-effort: the merge is the path that frees memory
	// downstream, so a failed Reserve must not abort it — the cursor then
	// runs with its previous (possibly zero) reservation.
	pool     *buffer.Pool
	reserved int64
}

func (c *runCursor) chunk() *vector.Chunk { return c.cur }
func (c *runCursor) rowIdx() int          { return c.row }

func (c *runCursor) close() {
	c.cur = nil
	c.account(nil)
}

// account resizes the cursor's pool reservation to cover next (nil at
// exhaustion releases everything held).
func (c *runCursor) account(next *vector.Chunk) {
	if c.pool == nil {
		return
	}
	var n int64
	if next != nil {
		n = chunkBytes(next)
	}
	switch {
	case n > c.reserved:
		if c.pool.Reserve(n-c.reserved) == nil {
			c.reserved = n
		}
	case n < c.reserved:
		c.pool.Release(c.reserved - n)
		c.reserved = n
	}
}

// readRunChunk decodes the encoded chunk at the given file offset.
func readRunChunk(f *os.File, off int64) (*vector.Chunk, error) {
	runChunkReads.Add(1)
	var hdr [4]byte
	if _, err := f.ReadAt(hdr[:], off); err != nil {
		return nil, fmt.Errorf("extsort: read run: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	buf := make([]byte, n)
	if _, err := io.ReadFull(io.NewSectionReader(f, off+4, int64(n)), buf); err != nil {
		return nil, fmt.Errorf("extsort: read run chunk: %w", err)
	}
	chunk, _, err := vector.DecodeChunk(buf)
	if err != nil {
		return nil, err
	}
	return chunk, nil
}

func (c *runCursor) load() error {
	if c.idx >= len(c.offs) {
		c.cur = nil
		c.account(nil)
		return nil
	}
	chunk, err := readRunChunk(c.f, c.offs[c.idx])
	if err != nil {
		return err
	}
	c.idx++
	c.cur = chunk
	c.row = 0
	c.account(chunk)
	return nil
}

func (c *runCursor) advance() error {
	c.row++
	if c.cur != nil && c.row >= c.cur.Len() {
		return c.load()
	}
	return nil
}

// CompareRows orders row ra of a against row rb of b under keys.
func CompareRows(a *vector.Chunk, ra int, b *vector.Chunk, rb int, keys []Key) int {
	for _, k := range keys {
		va, vb := a.Cols[k.Col], b.Cols[k.Col]
		na, nb := va.IsNull(ra), vb.IsNull(rb)
		if na || nb {
			if na && nb {
				continue
			}
			// NULL ordering is independent of Desc.
			if na {
				if k.NullsFirst {
					return -1
				}
				return 1
			}
			if k.NullsFirst {
				return 1
			}
			return -1
		}
		c := compareVals(va, ra, vb, rb)
		if c != 0 {
			if k.Desc {
				return -c
			}
			return c
		}
	}
	return 0
}

func compareVals(a *vector.Vector, ra int, b *vector.Vector, rb int) int {
	switch a.Type {
	case types.Boolean:
		x, y := a.Bools[ra], b.Bools[rb]
		switch {
		case x == y:
			return 0
		case !x:
			return -1
		default:
			return 1
		}
	case types.Integer:
		x, y := a.I32[ra], b.I32[rb]
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		default:
			return 0
		}
	case types.BigInt, types.Timestamp:
		x, y := a.I64[ra], b.I64[rb]
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		default:
			return 0
		}
	case types.Double:
		// Total FP order (NaN greatest): native < treats NaN as equal to
		// everything, which is not an ordering and would leave NaN rows
		// placed by arrival order — different at every thread count.
		return types.CompareFloat(a.F64[ra], b.F64[rb])
	case types.Varchar:
		return strings.Compare(a.Str[ra], b.Str[rb])
	default:
		return 0
	}
}

func chunkBytes(c *vector.Chunk) int64 {
	var total int64
	for _, col := range c.Cols {
		n := int64(col.Len())
		switch col.Type {
		case types.Varchar:
			for _, s := range col.Str {
				total += int64(len(s)) + 16
			}
		case types.Boolean:
			total += n
		case types.Integer:
			total += 4 * n
		default:
			total += 8 * n
		}
	}
	return total
}
