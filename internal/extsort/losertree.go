package extsort

// loserTree is a tournament tree over the merge cursors: tree[0] holds
// the overall winner (the cursor with the smallest current row) and
// every internal node 1..k-1 holds the loser of the match played there.
// Emitting a row replays only the advanced cursor's root path — O(log k)
// comparisons per row instead of the O(k) linear min-scan, which is the
// difference between the merge phase scaling with fan-in (workers ×
// runs-per-worker) and not.
//
// Layout: the implicit complete binary tree with k external nodes at
// conceptual indexes k..2k-1 and internal nodes 1..k-1; external node i
// (cursor i) enters at parent (k+i)/2. This works for any k ≥ 1.
//
// Ties break toward the lower cursor index, matching the linear scan
// the tree replaces (and the registration order of producers), so merge
// output is byte-identical to the previous implementation even without
// the engine's hidden tiebreak key. Exhausted cursors (chunk() == nil)
// lose every match and sink to the leaves.
type loserTree struct {
	cursors []cursor
	keys    []Key
	tree    []int // tree[0] = winner leaf; tree[1..k-1] = loser leaves
}

func newLoserTree(cursors []cursor, keys []Key) *loserTree {
	k := len(cursors)
	t := &loserTree{cursors: cursors, keys: keys, tree: make([]int, k)}
	t.init()
	return t
}

// init plays the full tournament bottom-up.
func (t *loserTree) init() {
	k := len(t.cursors)
	if k == 0 {
		return
	}
	winners := make([]int, 2*k)
	for i := 0; i < k; i++ {
		winners[k+i] = i
	}
	for m := k - 1; m >= 1; m-- {
		a, b := winners[2*m], winners[2*m+1]
		if t.beats(a, b) {
			winners[m], t.tree[m] = a, b
		} else {
			winners[m], t.tree[m] = b, a
		}
	}
	t.tree[0] = winners[1]
}

// winner returns the index of the cursor holding the smallest current
// row, or -1 when every cursor is exhausted.
func (t *loserTree) winner() int {
	if len(t.tree) == 0 {
		return -1
	}
	w := t.tree[0]
	if t.cursors[w].chunk() == nil {
		return -1
	}
	return w
}

// fix replays leaf i's path to the root after its cursor advanced:
// at every internal node the stored loser challenges the ascending
// winner; the loser of each match stays, the winner moves up.
func (t *loserTree) fix(i int) {
	k := len(t.cursors)
	w := i
	for m := (k + i) / 2; m >= 1; m /= 2 {
		if t.beats(t.tree[m], w) {
			t.tree[m], w = w, t.tree[m]
		}
	}
	t.tree[0] = w
}

// beats reports whether cursor a wins (sorts before) cursor b.
func (t *loserTree) beats(a, b int) bool {
	ca, cb := t.cursors[a].chunk(), t.cursors[b].chunk()
	if ca == nil {
		return false
	}
	if cb == nil {
		return true
	}
	c := CompareRows(ca, t.cursors[a].rowIdx(), cb, t.cursors[b].rowIdx(), t.keys)
	return c < 0 || (c == 0 && a < b)
}
