package extsort

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/buffer"
)

// State runs are the operator-state spilling substrate: sorted runs of
// opaque (key, state) records, written when an operator's accumulator
// table exceeds its memory budget and merged back partition-by-partition
// at finish. The layout mirrors the sorted-row runs above — length-
// prefixed blocks with a block-offset index recorded at spill time, read
// back with positional reads so readers never contend on a shared file
// offset. All of one spiller's runs append to a single unlinked temp
// file (one fd per spilling thread, however many times it spills). The
// first consumer is the partitioned hash aggregate (internal/exec);
// ORDER BY and window buffering are expected to reuse it.

// stateBlockTarget is the block size state-run writers aim for before
// flushing; one block is the unit of read-back IO.
const stateBlockTarget = 64 << 10

// StateSpillFile is one spilling thread's backing file: an unlinked
// temp file (the fd keeps it alive; no litter on crash) holding any
// number of sealed runs. Not safe for concurrent writers; cursors over
// sealed runs pread and may run concurrently with further writes.
type StateSpillFile struct {
	f       *os.File
	written int64
	active  bool
	pool    *buffer.Pool // optional: accounts cursors' read-back blocks
}

// SetPool enables buffer-pool accounting of the read-back blocks held by
// cursors over this file's runs. Accounting is best-effort: the merge
// that drains the runs is itself the memory-reclaiming path, so a failed
// reservation never aborts it — the cursor just runs unaccounted.
func (sf *StateSpillFile) SetPool(p *buffer.Pool) { sf.pool = p }

// NewStateSpillFile creates the backing file in tmpDir.
func NewStateSpillFile(tmpDir string) (*StateSpillFile, error) {
	f, err := os.CreateTemp(tmpDir, "quack-aggstate-*.spill")
	if err != nil {
		return nil, fmt.Errorf("extsort: create state spill file: %w", err)
	}
	//lint:ignore erracc unlink-while-open spill idiom: a failed remove only delays tmp cleanup, the data lives on the open fd
	os.Remove(f.Name())
	return &StateSpillFile{f: f}, nil
}

// File exposes the backing temp file (fd-accounting tests and fault
// injection; the file is unlinked, so there is nothing else to reach).
func (sf *StateSpillFile) File() *os.File { return sf.f }

// Close releases the backing file — and with it every run written to
// it. Idempotent.
func (sf *StateSpillFile) Close() {
	if sf.f != nil {
		_ = sf.f.Close()
		sf.f = nil
	}
}

// NewRun starts a new run appended to the file. Only one writer may be
// open at a time; Finish or Abort it before starting the next.
func (sf *StateSpillFile) NewRun() (*StateRunWriter, error) {
	if sf.f == nil {
		return nil, fmt.Errorf("extsort: state spill file closed")
	}
	if sf.active {
		return nil, fmt.Errorf("extsort: state run writer already open")
	}
	sf.active = true
	return &StateRunWriter{sf: sf}, nil
}

// StateRunWriter writes one sorted state run. Append must be called
// with strictly ascending keys; Finish seals the run for reading.
type StateRunWriter struct {
	sf      *StateSpillFile
	block   []byte
	offs    []int64
	bytes   int64
	lastKey []byte
	n       int
}

// Append adds one record. Keys must arrive in strictly ascending order —
// the merge machinery depends on it, so a violation is an error, not a
// silent mis-sort.
func (w *StateRunWriter) Append(key, state []byte) error {
	if w.n > 0 && bytes.Compare(key, w.lastKey) <= 0 {
		return fmt.Errorf("extsort: state run keys not strictly ascending")
	}
	w.lastKey = append(w.lastKey[:0], key...)
	w.block = binary.AppendUvarint(w.block, uint64(len(key)))
	w.block = append(w.block, key...)
	w.block = binary.AppendUvarint(w.block, uint64(len(state)))
	w.block = append(w.block, state...)
	w.n++
	if len(w.block) >= stateBlockTarget {
		return w.flush()
	}
	return nil
}

func (w *StateRunWriter) flush() error {
	if len(w.block) == 0 {
		return nil
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(w.block)))
	if _, err := w.sf.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("extsort: write state run: %w", err)
	}
	if _, err := w.sf.f.Write(w.block); err != nil {
		return fmt.Errorf("extsort: write state run: %w", err)
	}
	w.offs = append(w.offs, w.sf.written)
	w.sf.written += int64(len(w.block) + 4)
	w.bytes += int64(len(w.block) + 4)
	w.block = w.block[:0]
	return nil
}

// Finish seals the run. The writer must not be used afterwards; the run
// reads through the spill file, which must outlive it.
func (w *StateRunWriter) Finish() (*StateRun, error) {
	if err := w.flush(); err != nil {
		w.sf.active = false
		return nil, err
	}
	w.sf.active = false
	return &StateRun{sf: w.sf, offs: w.offs, bytes: w.bytes, n: w.n}, nil
}

// Abort discards the half-written run (error paths). Any blocks already
// flushed stay as dead bytes in the spill file; no run references them.
func (w *StateRunWriter) Abort() {
	w.sf.active = false
}

// StateRun is one sealed sorted run of (key, state) records.
type StateRun struct {
	sf    *StateSpillFile
	offs  []int64
	bytes int64
	n     int
}

// Bytes reports the run's on-disk size (spill statistics).
func (r *StateRun) Bytes() int64 { return r.bytes }

// Len reports the number of records in the run.
func (r *StateRun) Len() int { return r.n }

// Cursor returns a cursor positioned before the first record. Cursors
// pread, so several may walk one run (or sibling runs of the same spill
// file) concurrently.
func (r *StateRun) Cursor() *StateCursor {
	return &StateCursor{run: r}
}

// StateCursor streams a run's records in key order.
type StateCursor struct {
	run      *StateRun
	blockIdx int
	block    []byte
	pos      int
	key      []byte
	state    []byte
	reserved int64 // pool bytes held for the read-back block buffer
}

// Close drops the cursor's block buffer and releases its reservation.
// Idempotent; Next also releases it when the run is exhausted, so Close
// only matters on early-exit and error paths.
func (c *StateCursor) Close() {
	c.block = nil
	c.releaseReserved()
}

func (c *StateCursor) releaseReserved() {
	if p := c.run.sf.pool; p != nil && c.reserved > 0 {
		p.Release(c.reserved)
		c.reserved = 0
	}
}

// Next advances to the next record, reporting false at the end. Key and
// State are valid until the following Next call.
func (c *StateCursor) Next() (bool, error) {
	for c.pos >= len(c.block) {
		if c.blockIdx >= len(c.run.offs) {
			c.block = nil
			c.releaseReserved()
			return false, nil
		}
		if err := c.loadBlock(c.blockIdx); err != nil {
			return false, err
		}
		c.blockIdx++
	}
	var err error
	if c.key, err = c.readField(); err != nil {
		return false, err
	}
	if c.state, err = c.readField(); err != nil {
		return false, err
	}
	return true, nil
}

func (c *StateCursor) readField() ([]byte, error) {
	n, used := binary.Uvarint(c.block[c.pos:])
	if used <= 0 || c.pos+used+int(n) > len(c.block) {
		return nil, fmt.Errorf("extsort: corrupt state run record")
	}
	c.pos += used
	field := c.block[c.pos : c.pos+int(n)]
	c.pos += int(n)
	return field, nil
}

func (c *StateCursor) loadBlock(idx int) error {
	if c.run.sf.f == nil {
		return fmt.Errorf("extsort: state spill file closed")
	}
	off := c.run.offs[idx]
	var hdr [4]byte
	if _, err := c.run.sf.f.ReadAt(hdr[:], off); err != nil {
		return fmt.Errorf("extsort: read state run: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if int64(n) > c.run.sf.written {
		return fmt.Errorf("extsort: corrupt state run block header (%d bytes)", n)
	}
	if cap(c.block) < int(n) {
		c.block = make([]byte, n)
		// The buffer is reused across blocks and only ever grows; account
		// its capacity (best-effort — read-back must proceed regardless).
		if p := c.run.sf.pool; p != nil {
			if grown := int64(cap(c.block)); grown > c.reserved {
				if p.Reserve(grown-c.reserved) == nil {
					c.reserved = grown
				}
			}
		}
	}
	c.block = c.block[:n]
	if _, err := io.ReadFull(io.NewSectionReader(c.run.sf.f, off+4, int64(n)), c.block); err != nil {
		return fmt.Errorf("extsort: read state run block: %w", err)
	}
	c.pos = 0
	return nil
}

// Key returns the current record's key (valid until the next Next).
func (c *StateCursor) Key() []byte { return c.key }

// State returns the current record's payload (valid until the next Next).
func (c *StateCursor) State() []byte { return c.state }
