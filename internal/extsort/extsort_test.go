package extsort

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/buffer"
	"repro/internal/types"
	"repro/internal/vector"
)

func chunkOf(vals ...int64) *vector.Chunk {
	c := vector.NewChunk([]types.Type{types.BigInt})
	for _, v := range vals {
		c.AppendRow(types.NewBigInt(v))
	}
	return c
}

func drainSorted(t *testing.T, it *Iterator) []int64 {
	t.Helper()
	defer it.Close()
	var out []int64
	for {
		c, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if c == nil {
			return out
		}
		out = append(out, c.Cols[0].I64[:c.Len()]...)
	}
}

func TestInMemorySort(t *testing.T) {
	s := NewSorter([]types.Type{types.BigInt}, []Key{{Col: 0}}, 0, t.TempDir())
	s.Add(chunkOf(5, 1, 9))
	s.Add(chunkOf(3, 7))
	it, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	got := drainSorted(t, it)
	want := []int64{1, 3, 5, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
	if s.SpilledBytes() != 0 {
		t.Fatal("unexpected spill")
	}
}

func TestSpillingSortMatchesStdSort(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 50_000
	ref := make([]int64, 0, n)
	// Tiny budget forces several runs to disk.
	s := NewSorter([]types.Type{types.BigInt}, []Key{{Col: 0}}, 64<<10, t.TempDir())
	chunk := vector.NewChunk([]types.Type{types.BigInt})
	for i := 0; i < n; i++ {
		v := rng.Int63n(1 << 40)
		ref = append(ref, v)
		chunk.AppendRow(types.NewBigInt(v))
		if chunk.Len() == vector.ChunkCapacity {
			if err := s.Add(chunk); err != nil {
				t.Fatal(err)
			}
			chunk = vector.NewChunk([]types.Type{types.BigInt})
		}
	}
	s.Add(chunk)
	it, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if s.SpilledBytes() == 0 {
		t.Fatal("expected spilling with 64KB budget")
	}
	got := drainSorted(t, it)
	sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
	if len(got) != len(ref) {
		t.Fatalf("%d rows, want %d", len(got), len(ref))
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("row %d: %d != %d", i, got[i], ref[i])
		}
	}
}

func TestDescAndNullOrdering(t *testing.T) {
	c := vector.NewChunk([]types.Type{types.BigInt})
	c.AppendRow(types.NewBigInt(1))
	c.AppendRow(types.NewNull(types.BigInt))
	c.AppendRow(types.NewBigInt(3))

	s := NewSorter([]types.Type{types.BigInt}, []Key{{Col: 0, Desc: true, NullsFirst: true}}, 0, t.TempDir())
	s.Add(c)
	it, _ := s.Finish()
	defer it.Close()
	out, err := it.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Cols[0].IsNull(0) || out.Cols[0].I64[1] != 3 || out.Cols[0].I64[2] != 1 {
		t.Fatalf("got %v %v %v", out.Row(0), out.Row(1), out.Row(2))
	}
}

func TestMultiKeySort(t *testing.T) {
	c := vector.NewChunk([]types.Type{types.Varchar, types.BigInt})
	c.AppendRow(types.NewVarchar("b"), types.NewBigInt(1))
	c.AppendRow(types.NewVarchar("a"), types.NewBigInt(2))
	c.AppendRow(types.NewVarchar("a"), types.NewBigInt(1))
	s := NewSorter(c.Types(), []Key{{Col: 0}, {Col: 1, Desc: true}}, 0, t.TempDir())
	s.Add(c)
	it, _ := s.Finish()
	defer it.Close()
	out, _ := it.Next()
	want := [][2]string{{"a", "2"}, {"a", "1"}, {"b", "1"}}
	for i, w := range want {
		row := out.Row(i)
		if row[0].Str != w[0] || row[1].String() != w[1] {
			t.Fatalf("row %d: %v, want %v", i, row, w)
		}
	}
}

func TestStableForEqualKeys(t *testing.T) {
	// Payload order of equal keys follows insertion (stable sort).
	c := vector.NewChunk([]types.Type{types.BigInt, types.BigInt})
	for i := 0; i < 10; i++ {
		c.AppendRow(types.NewBigInt(42), types.NewBigInt(int64(i)))
	}
	s := NewSorter(c.Types(), []Key{{Col: 0}}, 0, t.TempDir())
	s.Add(c)
	it, _ := s.Finish()
	defer it.Close()
	out, _ := it.Next()
	for i := 0; i < 10; i++ {
		if out.Cols[1].I64[i] != int64(i) {
			t.Fatalf("not stable at %d: %d", i, out.Cols[1].I64[i])
		}
	}
}

func TestPoolAccountingReleases(t *testing.T) {
	pool := buffer.NewPool(0, nil)
	s := NewSorter([]types.Type{types.BigInt}, []Key{{Col: 0}}, 16<<10, t.TempDir())
	s.SetPool(pool)
	for i := 0; i < 50; i++ {
		c := vector.NewChunk([]types.Type{types.BigInt})
		for j := 0; j < 1024; j++ {
			c.AppendRow(types.NewBigInt(int64(i*1024 + j)))
		}
		if err := s.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	drainSorted(t, it)
	if used := pool.Used(); used != 0 {
		t.Fatalf("pool leak: %d bytes still reserved", used)
	}
}

// TestSpillDifferentialMatchesInMemory: the multi-run disk merge must be
// row-for-row identical to the unconstrained in-memory sort, including
// the placement of duplicate keys (payload column asserts stability).
func TestSpillDifferentialMatchesInMemory(t *testing.T) {
	typs := []types.Type{types.BigInt, types.BigInt}
	keys := []Key{{Col: 0}}
	gen := func() []*vector.Chunk {
		g := rand.New(rand.NewSource(11))
		var chunks []*vector.Chunk
		for len(chunks) < 40 {
			c := vector.NewChunk(typs)
			for c.Len() < vector.ChunkCapacity {
				// Tiny key domain: duplicates everywhere.
				c.AppendRow(types.NewBigInt(g.Int63n(50)), types.NewBigInt(int64(len(chunks)*vector.ChunkCapacity+c.Len())))
			}
			chunks = append(chunks, c)
		}
		return chunks
	}
	drain2 := func(it *Iterator) [][2]int64 {
		defer it.Close()
		var out [][2]int64
		for {
			c, err := it.Next()
			if err != nil {
				t.Fatal(err)
			}
			if c == nil {
				return out
			}
			for r := 0; r < c.Len(); r++ {
				out = append(out, [2]int64{c.Cols[0].I64[r], c.Cols[1].I64[r]})
			}
		}
	}

	mem := NewSorter(typs, keys, 0, t.TempDir())
	for _, c := range gen() {
		if err := mem.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	memIt, err := mem.Finish()
	if err != nil {
		t.Fatal(err)
	}
	want := drain2(memIt)

	// 8KB budget: dozens of runs, multi-level disk merging.
	spill := NewSorter(typs, keys, 8<<10, t.TempDir())
	for _, c := range gen() {
		if err := spill.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	spillIt, err := spill.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if spill.SpilledBytes() == 0 {
		t.Fatal("8KB budget did not spill")
	}
	got := drain2(spillIt)
	if len(got) != len(want) {
		t.Fatalf("%d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: %v != %v", i, got[i], want[i])
		}
	}
}

// TestMergeFinishMultiProducer: N independent sorters (the parallel
// sort's per-worker runs) merged by MergeFinish must equal one sorter
// fed everything — mixing spilled and purely in-memory producers.
func TestMergeFinishMultiProducer(t *testing.T) {
	typs := []types.Type{types.BigInt}
	keys := []Key{{Col: 0}}
	rng := rand.New(rand.NewSource(5))
	const n = 40_000
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = rng.Int63n(1 << 30)
	}

	ref := NewSorter(typs, keys, 0, t.TempDir())
	producers := make([]*Sorter, 4)
	for i := range producers {
		budget := int64(0)
		if i%2 == 0 {
			budget = 16 << 10 // half the producers spill, half stay in memory
		}
		producers[i] = NewSorter(typs, keys, budget, t.TempDir())
	}
	for start := 0; start < n; start += vector.ChunkCapacity {
		end := start + vector.ChunkCapacity
		if end > n {
			end = n
		}
		c := vector.NewChunk(typs)
		for _, v := range vals[start:end] {
			c.AppendRow(types.NewBigInt(v))
		}
		if err := ref.Add(c); err != nil {
			t.Fatal(err)
		}
		if err := producers[(start/vector.ChunkCapacity)%len(producers)].Add(c); err != nil {
			t.Fatal(err)
		}
	}
	refIt, err := ref.Finish()
	if err != nil {
		t.Fatal(err)
	}
	want := drainSorted(t, refIt)
	merged, err := MergeFinish(producers)
	if err != nil {
		t.Fatal(err)
	}
	got := drainSorted(t, merged)
	if len(got) != len(want) {
		t.Fatalf("%d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: %d != %d", i, got[i], want[i])
		}
	}
}

// TestIteratorCloseReleasesReservations: abandoning the stream early —
// both in-memory mode and mid-merge — must return every buffered-row
// reservation to the pool.
func TestIteratorCloseReleasesReservations(t *testing.T) {
	fill := func(s *Sorter) {
		for i := 0; i < 30; i++ {
			c := vector.NewChunk([]types.Type{types.BigInt})
			for j := 0; j < vector.ChunkCapacity; j++ {
				c.AppendRow(types.NewBigInt(int64(i*vector.ChunkCapacity + j)))
			}
			if err := s.Add(c); err != nil {
				t.Fatal(err)
			}
		}
	}
	t.Run("in-memory", func(t *testing.T) {
		pool := buffer.NewPool(0, nil)
		s := NewSorter([]types.Type{types.BigInt}, []Key{{Col: 0}}, 0, t.TempDir())
		s.SetPool(pool)
		fill(s)
		it, err := s.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := it.Next(); err != nil { // partially consumed
			t.Fatal(err)
		}
		it.Close()
		if used := pool.Used(); used != 0 {
			t.Fatalf("early Close leaked %d bytes", used)
		}
		it.Close() // idempotent
		if used := pool.Used(); used != 0 {
			t.Fatalf("double Close went negative/positive: %d", used)
		}
	})
	t.Run("merge", func(t *testing.T) {
		pool := buffer.NewPool(0, nil)
		s := NewSorter([]types.Type{types.BigInt}, []Key{{Col: 0}}, 64<<10, t.TempDir())
		s.SetPool(pool)
		fill(s)
		it, err := s.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if s.SpilledBytes() == 0 {
			t.Fatal("expected spill")
		}
		if _, err := it.Next(); err != nil {
			t.Fatal(err)
		}
		it.Close()
		if used := pool.Used(); used != 0 {
			t.Fatalf("early Close after spill leaked %d bytes", used)
		}
	})
	t.Run("merge-finish", func(t *testing.T) {
		pool := buffer.NewPool(0, nil)
		producers := make([]*Sorter, 3)
		for i := range producers {
			producers[i] = NewSorter([]types.Type{types.BigInt}, []Key{{Col: 0}}, 0, t.TempDir())
			producers[i].SetPool(pool)
			fill(producers[i])
		}
		it, err := MergeFinish(producers)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := it.Next(); err != nil {
			t.Fatal(err)
		}
		it.Close()
		if used := pool.Used(); used != 0 {
			t.Fatalf("merged Close leaked %d bytes", used)
		}
	})
}

// TestNaNSortsGreatest: the total FP order places NaN above +Inf in ASC
// sorts (and therefore first in DESC), deterministically.
func TestNaNSortsGreatest(t *testing.T) {
	c := vector.NewChunk([]types.Type{types.Double})
	for _, v := range []float64{5, math.NaN(), math.Inf(1), -3, math.Inf(-1), math.NaN()} {
		c.AppendRow(types.NewDouble(v))
	}
	s := NewSorter(c.Types(), []Key{{Col: 0}}, 0, t.TempDir())
	s.Add(c)
	it, _ := s.Finish()
	defer it.Close()
	out, err := it.Next()
	if err != nil {
		t.Fatal(err)
	}
	got := out.Cols[0].F64[:out.Len()]
	if !math.IsInf(got[0], -1) || got[1] != -3 || got[2] != 5 || !math.IsInf(got[3], 1) ||
		!math.IsNaN(got[4]) || !math.IsNaN(got[5]) {
		t.Fatalf("ASC order with NaN: %v", got)
	}
}

func TestEmptySorter(t *testing.T) {
	s := NewSorter([]types.Type{types.BigInt}, []Key{{Col: 0}}, 0, t.TempDir())
	it, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	c, err := it.Next()
	if err != nil || c != nil {
		t.Fatalf("empty sorter produced %v, %v", c, err)
	}
}
