package extsort

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/buffer"
	"repro/internal/types"
	"repro/internal/vector"
)

func chunkOf(vals ...int64) *vector.Chunk {
	c := vector.NewChunk([]types.Type{types.BigInt})
	for _, v := range vals {
		c.AppendRow(types.NewBigInt(v))
	}
	return c
}

func drainSorted(t *testing.T, it *Iterator) []int64 {
	t.Helper()
	defer it.Close()
	var out []int64
	for {
		c, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if c == nil {
			return out
		}
		out = append(out, c.Cols[0].I64[:c.Len()]...)
	}
}

func TestInMemorySort(t *testing.T) {
	s := NewSorter([]types.Type{types.BigInt}, []Key{{Col: 0}}, 0, t.TempDir())
	s.Add(chunkOf(5, 1, 9))
	s.Add(chunkOf(3, 7))
	it, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	got := drainSorted(t, it)
	want := []int64{1, 3, 5, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
	if s.SpilledBytes() != 0 {
		t.Fatal("unexpected spill")
	}
}

func TestSpillingSortMatchesStdSort(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 50_000
	ref := make([]int64, 0, n)
	// Tiny budget forces several runs to disk.
	s := NewSorter([]types.Type{types.BigInt}, []Key{{Col: 0}}, 64<<10, t.TempDir())
	chunk := vector.NewChunk([]types.Type{types.BigInt})
	for i := 0; i < n; i++ {
		v := rng.Int63n(1 << 40)
		ref = append(ref, v)
		chunk.AppendRow(types.NewBigInt(v))
		if chunk.Len() == vector.ChunkCapacity {
			if err := s.Add(chunk); err != nil {
				t.Fatal(err)
			}
			chunk = vector.NewChunk([]types.Type{types.BigInt})
		}
	}
	s.Add(chunk)
	it, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if s.SpilledBytes() == 0 {
		t.Fatal("expected spilling with 64KB budget")
	}
	got := drainSorted(t, it)
	sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
	if len(got) != len(ref) {
		t.Fatalf("%d rows, want %d", len(got), len(ref))
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("row %d: %d != %d", i, got[i], ref[i])
		}
	}
}

func TestDescAndNullOrdering(t *testing.T) {
	c := vector.NewChunk([]types.Type{types.BigInt})
	c.AppendRow(types.NewBigInt(1))
	c.AppendRow(types.NewNull(types.BigInt))
	c.AppendRow(types.NewBigInt(3))

	s := NewSorter([]types.Type{types.BigInt}, []Key{{Col: 0, Desc: true, NullsFirst: true}}, 0, t.TempDir())
	s.Add(c)
	it, _ := s.Finish()
	defer it.Close()
	out, err := it.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Cols[0].IsNull(0) || out.Cols[0].I64[1] != 3 || out.Cols[0].I64[2] != 1 {
		t.Fatalf("got %v %v %v", out.Row(0), out.Row(1), out.Row(2))
	}
}

func TestMultiKeySort(t *testing.T) {
	c := vector.NewChunk([]types.Type{types.Varchar, types.BigInt})
	c.AppendRow(types.NewVarchar("b"), types.NewBigInt(1))
	c.AppendRow(types.NewVarchar("a"), types.NewBigInt(2))
	c.AppendRow(types.NewVarchar("a"), types.NewBigInt(1))
	s := NewSorter(c.Types(), []Key{{Col: 0}, {Col: 1, Desc: true}}, 0, t.TempDir())
	s.Add(c)
	it, _ := s.Finish()
	defer it.Close()
	out, _ := it.Next()
	want := [][2]string{{"a", "2"}, {"a", "1"}, {"b", "1"}}
	for i, w := range want {
		row := out.Row(i)
		if row[0].Str != w[0] || row[1].String() != w[1] {
			t.Fatalf("row %d: %v, want %v", i, row, w)
		}
	}
}

func TestStableForEqualKeys(t *testing.T) {
	// Payload order of equal keys follows insertion (stable sort).
	c := vector.NewChunk([]types.Type{types.BigInt, types.BigInt})
	for i := 0; i < 10; i++ {
		c.AppendRow(types.NewBigInt(42), types.NewBigInt(int64(i)))
	}
	s := NewSorter(c.Types(), []Key{{Col: 0}}, 0, t.TempDir())
	s.Add(c)
	it, _ := s.Finish()
	defer it.Close()
	out, _ := it.Next()
	for i := 0; i < 10; i++ {
		if out.Cols[1].I64[i] != int64(i) {
			t.Fatalf("not stable at %d: %d", i, out.Cols[1].I64[i])
		}
	}
}

func TestPoolAccountingReleases(t *testing.T) {
	pool := buffer.NewPool(0, nil)
	s := NewSorter([]types.Type{types.BigInt}, []Key{{Col: 0}}, 16<<10, t.TempDir())
	s.SetPool(pool)
	for i := 0; i < 50; i++ {
		c := vector.NewChunk([]types.Type{types.BigInt})
		for j := 0; j < 1024; j++ {
			c.AppendRow(types.NewBigInt(int64(i*1024 + j)))
		}
		if err := s.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	drainSorted(t, it)
	if used := pool.Used(); used != 0 {
		t.Fatalf("pool leak: %d bytes still reserved", used)
	}
}

func TestEmptySorter(t *testing.T) {
	s := NewSorter([]types.Type{types.BigInt}, []Key{{Col: 0}}, 0, t.TempDir())
	it, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	c, err := it.Next()
	if err != nil || c != nil {
		t.Fatalf("empty sorter produced %v, %v", c, err)
	}
}
