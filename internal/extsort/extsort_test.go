package extsort

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"testing"

	"repro/internal/buffer"
	"repro/internal/faults"
	"repro/internal/types"
	"repro/internal/vector"
)

func chunkOf(vals ...int64) *vector.Chunk {
	c := vector.NewChunk([]types.Type{types.BigInt})
	for _, v := range vals {
		c.AppendRow(types.NewBigInt(v))
	}
	return c
}

func drainSorted(t *testing.T, it *Iterator) []int64 {
	t.Helper()
	defer it.Close()
	var out []int64
	for {
		c, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if c == nil {
			return out
		}
		out = append(out, c.Cols[0].I64[:c.Len()]...)
	}
}

func TestInMemorySort(t *testing.T) {
	s := NewSorter([]types.Type{types.BigInt}, []Key{{Col: 0}}, 0, t.TempDir())
	s.Add(chunkOf(5, 1, 9))
	s.Add(chunkOf(3, 7))
	it, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	got := drainSorted(t, it)
	want := []int64{1, 3, 5, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
	if s.SpilledBytes() != 0 {
		t.Fatal("unexpected spill")
	}
}

func TestSpillingSortMatchesStdSort(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 50_000
	ref := make([]int64, 0, n)
	// Tiny budget forces several runs to disk.
	s := NewSorter([]types.Type{types.BigInt}, []Key{{Col: 0}}, 64<<10, t.TempDir())
	chunk := vector.NewChunk([]types.Type{types.BigInt})
	for i := 0; i < n; i++ {
		v := rng.Int63n(1 << 40)
		ref = append(ref, v)
		chunk.AppendRow(types.NewBigInt(v))
		if chunk.Len() == vector.ChunkCapacity {
			if err := s.Add(chunk); err != nil {
				t.Fatal(err)
			}
			chunk = vector.NewChunk([]types.Type{types.BigInt})
		}
	}
	s.Add(chunk)
	it, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if s.SpilledBytes() == 0 {
		t.Fatal("expected spilling with 64KB budget")
	}
	got := drainSorted(t, it)
	sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
	if len(got) != len(ref) {
		t.Fatalf("%d rows, want %d", len(got), len(ref))
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("row %d: %d != %d", i, got[i], ref[i])
		}
	}
}

func TestDescAndNullOrdering(t *testing.T) {
	c := vector.NewChunk([]types.Type{types.BigInt})
	c.AppendRow(types.NewBigInt(1))
	c.AppendRow(types.NewNull(types.BigInt))
	c.AppendRow(types.NewBigInt(3))

	s := NewSorter([]types.Type{types.BigInt}, []Key{{Col: 0, Desc: true, NullsFirst: true}}, 0, t.TempDir())
	s.Add(c)
	it, _ := s.Finish()
	defer it.Close()
	out, err := it.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Cols[0].IsNull(0) || out.Cols[0].I64[1] != 3 || out.Cols[0].I64[2] != 1 {
		t.Fatalf("got %v %v %v", out.Row(0), out.Row(1), out.Row(2))
	}
}

func TestMultiKeySort(t *testing.T) {
	c := vector.NewChunk([]types.Type{types.Varchar, types.BigInt})
	c.AppendRow(types.NewVarchar("b"), types.NewBigInt(1))
	c.AppendRow(types.NewVarchar("a"), types.NewBigInt(2))
	c.AppendRow(types.NewVarchar("a"), types.NewBigInt(1))
	s := NewSorter(c.Types(), []Key{{Col: 0}, {Col: 1, Desc: true}}, 0, t.TempDir())
	s.Add(c)
	it, _ := s.Finish()
	defer it.Close()
	out, _ := it.Next()
	want := [][2]string{{"a", "2"}, {"a", "1"}, {"b", "1"}}
	for i, w := range want {
		row := out.Row(i)
		if row[0].Str != w[0] || row[1].String() != w[1] {
			t.Fatalf("row %d: %v, want %v", i, row, w)
		}
	}
}

func TestStableForEqualKeys(t *testing.T) {
	// Payload order of equal keys follows insertion (stable sort).
	c := vector.NewChunk([]types.Type{types.BigInt, types.BigInt})
	for i := 0; i < 10; i++ {
		c.AppendRow(types.NewBigInt(42), types.NewBigInt(int64(i)))
	}
	s := NewSorter(c.Types(), []Key{{Col: 0}}, 0, t.TempDir())
	s.Add(c)
	it, _ := s.Finish()
	defer it.Close()
	out, _ := it.Next()
	for i := 0; i < 10; i++ {
		if out.Cols[1].I64[i] != int64(i) {
			t.Fatalf("not stable at %d: %d", i, out.Cols[1].I64[i])
		}
	}
}

func TestPoolAccountingReleases(t *testing.T) {
	pool := buffer.NewPool(0, nil)
	s := NewSorter([]types.Type{types.BigInt}, []Key{{Col: 0}}, 16<<10, t.TempDir())
	s.SetPool(pool)
	for i := 0; i < 50; i++ {
		c := vector.NewChunk([]types.Type{types.BigInt})
		for j := 0; j < 1024; j++ {
			c.AppendRow(types.NewBigInt(int64(i*1024 + j)))
		}
		if err := s.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	drainSorted(t, it)
	if used := pool.Used(); used != 0 {
		t.Fatalf("pool leak: %d bytes still reserved", used)
	}
}

// TestSpillDifferentialMatchesInMemory: the multi-run disk merge must be
// row-for-row identical to the unconstrained in-memory sort, including
// the placement of duplicate keys (payload column asserts stability).
func TestSpillDifferentialMatchesInMemory(t *testing.T) {
	typs := []types.Type{types.BigInt, types.BigInt}
	keys := []Key{{Col: 0}}
	gen := func() []*vector.Chunk {
		g := rand.New(rand.NewSource(11))
		var chunks []*vector.Chunk
		for len(chunks) < 40 {
			c := vector.NewChunk(typs)
			for c.Len() < vector.ChunkCapacity {
				// Tiny key domain: duplicates everywhere.
				c.AppendRow(types.NewBigInt(g.Int63n(50)), types.NewBigInt(int64(len(chunks)*vector.ChunkCapacity+c.Len())))
			}
			chunks = append(chunks, c)
		}
		return chunks
	}
	drain2 := func(it *Iterator) [][2]int64 {
		defer it.Close()
		var out [][2]int64
		for {
			c, err := it.Next()
			if err != nil {
				t.Fatal(err)
			}
			if c == nil {
				return out
			}
			for r := 0; r < c.Len(); r++ {
				out = append(out, [2]int64{c.Cols[0].I64[r], c.Cols[1].I64[r]})
			}
		}
	}

	mem := NewSorter(typs, keys, 0, t.TempDir())
	for _, c := range gen() {
		if err := mem.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	memIt, err := mem.Finish()
	if err != nil {
		t.Fatal(err)
	}
	want := drain2(memIt)

	// 8KB budget: dozens of runs, multi-level disk merging.
	spill := NewSorter(typs, keys, 8<<10, t.TempDir())
	for _, c := range gen() {
		if err := spill.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	spillIt, err := spill.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if spill.SpilledBytes() == 0 {
		t.Fatal("8KB budget did not spill")
	}
	got := drain2(spillIt)
	if len(got) != len(want) {
		t.Fatalf("%d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: %v != %v", i, got[i], want[i])
		}
	}
}

// TestMergeFinishMultiProducer: N independent sorters (the parallel
// sort's per-worker runs) merged by MergeFinish must equal one sorter
// fed everything — mixing spilled and purely in-memory producers.
func TestMergeFinishMultiProducer(t *testing.T) {
	typs := []types.Type{types.BigInt}
	keys := []Key{{Col: 0}}
	rng := rand.New(rand.NewSource(5))
	const n = 40_000
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = rng.Int63n(1 << 30)
	}

	ref := NewSorter(typs, keys, 0, t.TempDir())
	producers := make([]*Sorter, 4)
	for i := range producers {
		budget := int64(0)
		if i%2 == 0 {
			budget = 16 << 10 // half the producers spill, half stay in memory
		}
		producers[i] = NewSorter(typs, keys, budget, t.TempDir())
	}
	for start := 0; start < n; start += vector.ChunkCapacity {
		end := start + vector.ChunkCapacity
		if end > n {
			end = n
		}
		c := vector.NewChunk(typs)
		for _, v := range vals[start:end] {
			c.AppendRow(types.NewBigInt(v))
		}
		if err := ref.Add(c); err != nil {
			t.Fatal(err)
		}
		if err := producers[(start/vector.ChunkCapacity)%len(producers)].Add(c); err != nil {
			t.Fatal(err)
		}
	}
	refIt, err := ref.Finish()
	if err != nil {
		t.Fatal(err)
	}
	want := drainSorted(t, refIt)
	merged, err := MergeFinish(producers)
	if err != nil {
		t.Fatal(err)
	}
	got := drainSorted(t, merged)
	if len(got) != len(want) {
		t.Fatalf("%d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: %d != %d", i, got[i], want[i])
		}
	}
}

// TestIteratorCloseReleasesReservations: abandoning the stream early —
// both in-memory mode and mid-merge — must return every buffered-row
// reservation to the pool.
func TestIteratorCloseReleasesReservations(t *testing.T) {
	fill := func(s *Sorter) {
		for i := 0; i < 30; i++ {
			c := vector.NewChunk([]types.Type{types.BigInt})
			for j := 0; j < vector.ChunkCapacity; j++ {
				c.AppendRow(types.NewBigInt(int64(i*vector.ChunkCapacity + j)))
			}
			if err := s.Add(c); err != nil {
				t.Fatal(err)
			}
		}
	}
	t.Run("in-memory", func(t *testing.T) {
		pool := buffer.NewPool(0, nil)
		s := NewSorter([]types.Type{types.BigInt}, []Key{{Col: 0}}, 0, t.TempDir())
		s.SetPool(pool)
		fill(s)
		it, err := s.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := it.Next(); err != nil { // partially consumed
			t.Fatal(err)
		}
		it.Close()
		if used := pool.Used(); used != 0 {
			t.Fatalf("early Close leaked %d bytes", used)
		}
		it.Close() // idempotent
		if used := pool.Used(); used != 0 {
			t.Fatalf("double Close went negative/positive: %d", used)
		}
	})
	t.Run("merge", func(t *testing.T) {
		pool := buffer.NewPool(0, nil)
		s := NewSorter([]types.Type{types.BigInt}, []Key{{Col: 0}}, 64<<10, t.TempDir())
		s.SetPool(pool)
		fill(s)
		it, err := s.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if s.SpilledBytes() == 0 {
			t.Fatal("expected spill")
		}
		if _, err := it.Next(); err != nil {
			t.Fatal(err)
		}
		it.Close()
		if used := pool.Used(); used != 0 {
			t.Fatalf("early Close after spill leaked %d bytes", used)
		}
	})
	t.Run("merge-finish", func(t *testing.T) {
		pool := buffer.NewPool(0, nil)
		producers := make([]*Sorter, 3)
		for i := range producers {
			producers[i] = NewSorter([]types.Type{types.BigInt}, []Key{{Col: 0}}, 0, t.TempDir())
			producers[i].SetPool(pool)
			fill(producers[i])
		}
		it, err := MergeFinish(producers)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := it.Next(); err != nil {
			t.Fatal(err)
		}
		it.Close()
		if used := pool.Used(); used != 0 {
			t.Fatalf("merged Close leaked %d bytes", used)
		}
	})
}

// TestNaNSortsGreatest: the total FP order places NaN above +Inf in ASC
// sorts (and therefore first in DESC), deterministically.
func TestNaNSortsGreatest(t *testing.T) {
	c := vector.NewChunk([]types.Type{types.Double})
	for _, v := range []float64{5, math.NaN(), math.Inf(1), -3, math.Inf(-1), math.NaN()} {
		c.AppendRow(types.NewDouble(v))
	}
	s := NewSorter(c.Types(), []Key{{Col: 0}}, 0, t.TempDir())
	s.Add(c)
	it, _ := s.Finish()
	defer it.Close()
	out, err := it.Next()
	if err != nil {
		t.Fatal(err)
	}
	got := out.Cols[0].F64[:out.Len()]
	if !math.IsInf(got[0], -1) || got[1] != -3 || got[2] != 5 || !math.IsInf(got[3], 1) ||
		!math.IsNaN(got[4]) || !math.IsNaN(got[5]) {
		t.Fatalf("ASC order with NaN: %v", got)
	}
}

func TestEmptySorter(t *testing.T) {
	s := NewSorter([]types.Type{types.BigInt}, []Key{{Col: 0}}, 0, t.TempDir())
	it, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	c, err := it.Next()
	if err != nil || c != nil {
		t.Fatalf("empty sorter produced %v, %v", c, err)
	}
}

// ---- partitioned merge (loser tree + key-range split) ----

// fanInSorters builds k producers over a duplicate-heavy, NULL- and
// NaN-bearing two-key dataset with a unique third column, splitting
// rows round-robin. Tiny budgets mean dozens of spilled runs; odd
// producers stay fully in memory, so the merge mixes cursor kinds.
func fanInSorters(t *testing.T, k, rows int, budget int64) []*Sorter {
	t.Helper()
	typs := []types.Type{types.BigInt, types.Double, types.BigInt}
	keys := []Key{{Col: 0}, {Col: 1, Desc: true, NullsFirst: true}, {Col: 2}}
	producers := make([]*Sorter, k)
	for i := range producers {
		b := budget
		if i%2 == 1 {
			b = 0 // in-memory producer
		}
		producers[i] = NewSorter(typs, keys, b, t.TempDir())
	}
	chunks := make([]*vector.Chunk, k)
	for i := range chunks {
		chunks[i] = vector.NewChunk(typs)
	}
	for r := 0; r < rows; r++ {
		w := r % k
		c := chunks[w]
		kv := types.NewBigInt(int64(r % 7)) // heavy duplicates
		dv := types.NewDouble(float64((r * 13) % 5))
		switch r % 31 {
		case 0:
			kv = types.NewNull(types.BigInt)
		case 1:
			dv = types.NewNull(types.Double)
		case 2:
			dv = types.NewDouble(math.NaN())
		case 3:
			dv = types.NewDouble(math.Inf(1))
		}
		c.AppendRow(kv, dv, types.NewBigInt(int64(r)))
		if c.Len() == vector.ChunkCapacity {
			if err := producers[w].Add(c); err != nil {
				t.Fatal(err)
			}
			chunks[w] = vector.NewChunk(typs)
		}
	}
	for w, c := range chunks {
		if c.Len() > 0 {
			if err := producers[w].Add(c); err != nil {
				t.Fatal(err)
			}
		}
	}
	return producers
}

func drainRows(t *testing.T, it *Iterator) []string {
	t.Helper()
	var out []string
	for {
		c, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if c == nil {
			return out
		}
		for r := 0; r < c.Len(); r++ {
			out = append(out, fmt.Sprint(c.Row(r)))
		}
	}
}

// TestPartitionMergeMatchesSerial: splitting the merge into N key
// ranges and concatenating the ranges must reproduce the serial
// loser-tree merge row-for-row — high fan-in (dozens of runs plus
// in-memory buffers), duplicate-heavy keys, NULLs, NaN, at widths
// 1/2/8. Width 1 (PartitionMerge declined) pins the fallback.
func TestPartitionMergeMatchesSerial(t *testing.T) {
	const rows = 30_000
	serial, err := MergeFinish(fanInSorters(t, 12, rows, 4<<10))
	if err != nil {
		t.Fatal(err)
	}
	want := drainRows(t, serial)
	serial.Close()
	if len(want) != rows {
		t.Fatalf("serial merge lost rows: %d", len(want))
	}
	for _, width := range []int{1, 2, 8} {
		it, err := MergeFinish(fanInSorters(t, 12, rows, 4<<10))
		if err != nil {
			t.Fatal(err)
		}
		parts, err := it.PartitionMerge(width, it.keys)
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		if parts == nil {
			if width >= 2 {
				t.Fatalf("width=%d: PartitionMerge declined", width)
			}
			got = drainRows(t, it)
		} else {
			if len(parts) < 2 || len(parts) > width {
				t.Fatalf("width=%d: %d ranges", width, len(parts))
			}
			nonEmpty := 0
			for _, p := range parts {
				r := drainRows(t, p)
				if len(r) > 0 {
					nonEmpty++
				}
				got = append(got, r...)
				p.Close()
			}
			if nonEmpty < 2 {
				t.Fatalf("width=%d: only %d non-empty ranges", width, nonEmpty)
			}
		}
		it.Close()
		if len(got) != len(want) {
			t.Fatalf("width=%d: %d rows, want %d", width, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("width=%d row %d: %s != %s", width, i, got[i], want[i])
			}
		}
	}
}

// TestPartitionMergeWindowPrefixBounds: cutting ranges on a key prefix
// (the window PARTITION BY columns) must keep all rows equal on the
// prefix inside one range.
func TestPartitionMergeWindowPrefixBounds(t *testing.T) {
	it, err := MergeFinish(fanInSorters(t, 8, 20_000, 8<<10))
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	prefix := it.keys[:1] // the 8-value (incl. NULL) leading key
	parts, err := it.PartitionMerge(8, prefix)
	if err != nil {
		t.Fatal(err)
	}
	if parts == nil {
		t.Fatal("PartitionMerge declined on prefix bounds")
	}
	seen := map[string]int{} // leading key value -> range index
	for pi, p := range parts {
		for {
			c, err := p.Next()
			if err != nil {
				t.Fatal(err)
			}
			if c == nil {
				break
			}
			for r := 0; r < c.Len(); r++ {
				v := fmt.Sprint(c.Row(r)[0])
				if prev, ok := seen[v]; ok && prev != pi {
					t.Fatalf("prefix value %s straddles ranges %d and %d", v, prev, pi)
				}
				seen[v] = pi
			}
		}
		p.Close()
	}
	if len(seen) != 8 {
		t.Fatalf("saw %d distinct leading keys, want 8", len(seen))
	}
}

// TestPartitionMergeEarlyClose: abandoning range iterators mid-stream
// and closing the parent must return every pool reservation and leave
// no open run file.
func TestPartitionMergeEarlyClose(t *testing.T) {
	pool := buffer.NewPool(0, nil)
	producers := fanInSorters(t, 6, 20_000, 16<<10)
	for _, s := range producers {
		s.SetPool(pool)
	}
	it, err := MergeFinish(producers)
	if err != nil {
		t.Fatal(err)
	}
	files := append([]*os.File(nil), it.files...)
	if len(files) == 0 {
		t.Fatal("expected spilled runs")
	}
	parts, err := it.PartitionMerge(4, it.keys)
	if err != nil {
		t.Fatal(err)
	}
	if parts == nil {
		t.Fatal("PartitionMerge declined")
	}
	if _, err := parts[1].Next(); err != nil { // partially consume one range
		t.Fatal(err)
	}
	for _, p := range parts {
		p.Close()
	}
	it.Close()
	if used := pool.Used(); used != 0 {
		t.Fatalf("early close leaked %d bytes", used)
	}
	for _, f := range files {
		if err := f.Close(); !errors.Is(err, os.ErrClosed) {
			t.Fatalf("run file still open after Close (close returned %v)", err)
		}
	}
}

// TestMergeNextErrorClosesFiles: a fault injected into a spilled run
// must surface as a Next error that eagerly closes every run file —
// previously sibling fds stayed open until the caller's Close.
func TestMergeNextErrorClosesFiles(t *testing.T) {
	s := NewSorter([]types.Type{types.BigInt}, []Key{{Col: 0}}, 16<<10, t.TempDir())
	for i := 0; i < 40; i++ {
		c := vector.NewChunk([]types.Type{types.BigInt})
		for j := 0; j < vector.ChunkCapacity; j++ {
			c.AppendRow(types.NewBigInt(int64(i*vector.ChunkCapacity + j)))
		}
		if err := s.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	if len(s.runs) < 2 {
		t.Fatalf("expected several runs, got %d", len(s.runs))
	}
	// Inject a deterministic fault into a later chunk of a random run:
	// flipped-to-garbage length header, the on-disk equivalent of the
	// disk-subsystem corruption the faults package models.
	inj := faults.NewInjector(42)
	run := s.runs[len(s.runs)/2]
	if len(run.offs) < 2 {
		t.Fatalf("run too small to corrupt")
	}
	hdr := []byte{0, 0, 0, 0}
	inj.FlipBitsBytes(hdr, 28) // dense random flips: absurd chunk length
	hdr[3] |= 0x80             // force the length far past the file size
	if _, err := run.f.WriteAt(hdr, run.offs[1]); err != nil {
		t.Fatal(err)
	}
	it, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	files := append([]*os.File(nil), it.files...)
	var nerr error
	for {
		var c *vector.Chunk
		c, nerr = it.Next()
		if nerr != nil || c == nil {
			break
		}
	}
	if nerr == nil {
		t.Fatal("corrupted run did not error")
	}
	for _, f := range files {
		if cerr := f.Close(); !errors.Is(cerr, os.ErrClosed) {
			t.Fatalf("run file left open after Next error (close returned %v)", cerr)
		}
	}
	// The error is sticky: after the eager close, further Next calls
	// must keep failing rather than report a clean end of stream.
	if _, again := it.Next(); again == nil {
		t.Fatal("Next after a stream error reported clean end of stream")
	}
	it.Close() // idempotent after the eager error close
}

// TestPartitionMergeSamplingDoesNoIO: the boundary footer captured at
// spill time must answer PartitionMerge's quantile sampling and seek
// probes from memory. Reading run chunks is allowed only for cursor
// positioning (one load per surviving clone, plus the bounded skip past
// the range boundary).
func TestPartitionMergeSamplingDoesNoIO(t *testing.T) {
	it, err := MergeFinish(fanInSorters(t, 8, 30_000, 4<<10))
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var nruns int
	for _, c := range it.cursors {
		if rc, ok := c.(*runCursor); ok {
			nruns++
			if rc.samples == nil || rc.samples.Len() != len(rc.offs) {
				t.Fatalf("run cursor missing boundary footer: %d samples for %d chunks",
					rc.samples.Len(), len(rc.offs))
			}
		}
	}
	if nruns == 0 {
		t.Fatal("fixture spilled no runs")
	}

	// Quantile sampling alone: strictly zero chunk reads.
	sample := vector.NewChunk(it.colTypes)
	before := runChunkReads.Load()
	for _, c := range it.cursors {
		if err := c.(partCursor).sampleInto(sample, maxSamplesPerCursor); err != nil {
			t.Fatal(err)
		}
	}
	if got := runChunkReads.Load() - before; got != 0 {
		t.Fatalf("sampling read %d run chunks; boundary footer not used", got)
	}

	// Full PartitionMerge: seek probes answer from the footer too, so
	// reads stay within positioning loads — well under one binary
	// search's worth of probes, let alone the 32-sample decode per run
	// the footer replaces.
	const width = 8
	before = runChunkReads.Load()
	parts, err := it.PartitionMerge(width, it.keys)
	if err != nil {
		t.Fatal(err)
	}
	if parts == nil {
		t.Fatal("PartitionMerge declined")
	}
	reads := runChunkReads.Load() - before
	if limit := int64(nruns * width * 2); reads > limit {
		t.Fatalf("PartitionMerge read %d run chunks, positioning bound is %d", reads, limit)
	}

	rows := 0
	for _, p := range parts {
		rows += len(drainRows(t, p))
		p.Close()
	}
	if rows != 30_000 {
		t.Fatalf("partitioned merge lost rows: %d", rows)
	}
}
