package faults

import (
	"math"
	"math/rand"
	"testing"
)

func TestCalibrateMatchesAnalytically(t *testing.T) {
	for comp, rates := range Table1 {
		m, err := Calibrate(rates)
		if err != nil {
			t.Fatalf("%v: %v", comp, err)
		}
		pred := m.Predict()
		if rel(pred.PFirst, rates.PFirst) > 1e-9 {
			t.Errorf("%v: predicted P1 %v, want %v", comp, pred.PFirst, rates.PFirst)
		}
		if rel(pred.PSecondGiven, rates.PSecondGiven) > 1e-9 {
			t.Errorf("%v: predicted P2 %v, want %v", comp, pred.PSecondGiven, rates.PSecondGiven)
		}
	}
}

func TestCalibrateRejectsBadInput(t *testing.T) {
	bad := []Rates{
		{PFirst: 0, PSecondGiven: 0.5},
		{PFirst: 0.5, PSecondGiven: 1.5},
		{PFirst: 0.5, PSecondGiven: 0.1}, // conditional below marginal
	}
	for _, r := range bad {
		if _, err := Calibrate(r); err == nil {
			t.Errorf("calibrate(%+v) accepted", r)
		}
	}
}

func TestMonteCarloReproducesTable1(t *testing.T) {
	// This IS experiment E1 at test scale: the simulated rates must
	// land near the published Table 1 values.
	got, err := SimulateTable1(2_000_000, 42)
	if err != nil {
		t.Fatal(err)
	}
	for comp, want := range Table1 {
		g := got[comp]
		if rel(g.PFirst, want.PFirst) > 0.10 {
			t.Errorf("%v: simulated P[1st]=%.6f, published %.6f", comp, g.PFirst, want.PFirst)
		}
		if rel(g.PSecondGiven, want.PSecondGiven) > 0.15 {
			t.Errorf("%v: simulated P[2nd|1st]=%.4f, published %.4f", comp, g.PSecondGiven, want.PSecondGiven)
		}
		// The paper's headline: two orders of magnitude more likely
		// after a first failure.
		if g.PSecondGiven/g.PFirst < 20 {
			t.Errorf("%v: repeat-failure amplification only %.1fx", comp, g.PSecondGiven/g.PFirst)
		}
	}
}

func TestSimulateZeroFailures(t *testing.T) {
	m := Model{LemonFraction: 0, PLemon: 0.5, PHealthy: 0}
	r := m.Simulate(1000, rand.New(rand.NewSource(1)))
	if r.PFirst != 0 || r.PSecondGiven != 0 {
		t.Fatalf("no-failure model produced %+v", r)
	}
}

func TestInjectorDeterminism(t *testing.T) {
	a := NewInjector(7)
	b := NewInjector(7)
	bufA := make([]byte, 1000)
	bufB := make([]byte, 1000)
	offA := a.FlipBitsBytes(bufA, 10)
	offB := b.FlipBitsBytes(bufB, 10)
	if len(offA) != 10 || len(offB) != 10 {
		t.Fatal("wrong flip count")
	}
	for i := range offA {
		if offA[i] != offB[i] {
			t.Fatal("injector not deterministic")
		}
	}
	if string(bufA) != string(bufB) {
		t.Fatal("buffers diverged")
	}
}

func TestFlipBitsInt64ActuallyFlips(t *testing.T) {
	in := NewInjector(3)
	buf := make([]int64, 100)
	idxs := in.FlipBitsInt64(buf, 5)
	changed := 0
	for _, v := range buf {
		if v != 0 {
			changed++
		}
	}
	if changed == 0 || len(idxs) != 5 {
		t.Fatalf("changed=%d idxs=%d", changed, len(idxs))
	}
}

func TestComponentString(t *testing.T) {
	if CPU.String() == "" || DRAM.String() == "" || Disk.String() == "" {
		t.Fatal("empty component label")
	}
}

func rel(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / want
}
