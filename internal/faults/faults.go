// Package faults models the consumer-hardware failure behaviour that
// motivates the paper's resilience requirements (§3). It provides:
//
//   - the empirical 30-day failure probabilities from Nightingale et
//     al.'s million-PC study, as reproduced in the paper's Table 1;
//   - a calibrated two-population ("healthy machines" vs "lemons")
//     probabilistic model whose Monte-Carlo simulation regenerates both
//     the marginal first-failure probabilities and the two-orders-of-
//     magnitude-higher conditional repeat-failure probabilities;
//   - deterministic fault injectors (random bit flips, stuck-bit memory
//     regions, block corrupters) that exercise the engine's detection
//     paths: block checksums, AN codes and buffer memory tests.
//
// Substitution note (DESIGN.md): the paper's Table 1 is measured on real
// consumer machines, which we do not have; the calibrated model is the
// synthetic equivalent that preserves the statistical shape the paper
// argues from — failures are rare, but a machine that failed once is very
// likely to fail again.
package faults

import (
	"fmt"
	"math/rand"
)

// Component identifies a hardware component in the failure model.
type Component int

// The hardware components from Table 1.
const (
	CPU  Component = iota // machine-check exceptions
	DRAM                  // one-bit flips in kernel memory
	Disk                  // disk subsystem failures
)

// String returns the Table 1 row label.
func (c Component) String() string {
	switch c {
	case CPU:
		return "CPU (MCE)"
	case DRAM:
		return "DRAM bit flip"
	case Disk:
		return "Disk failure"
	}
	return "unknown"
}

// Rates holds a 30-day failure probability pair: the probability of a
// first failure, and the probability of another failure in the next
// 30 days given one already happened.
type Rates struct {
	PFirst       float64 // Pr[1st failure] over a 30-day window
	PSecondGiven float64 // Pr[2nd failure | 1 failure]
}

// Table1 holds the published numbers the paper reproduces from
// Nightingale et al. (EuroSys'11): 1 in 190 / 1700 / 270 machines fail
// per 30 days, and prior failure raises the odds to 1 in 2.9 / 12 / 3.5.
var Table1 = map[Component]Rates{
	CPU:  {PFirst: 1.0 / 190, PSecondGiven: 1.0 / 2.9},
	DRAM: {PFirst: 1.0 / 1700, PSecondGiven: 1.0 / 12},
	Disk: {PFirst: 1.0 / 270, PSecondGiven: 1.0 / 3.5},
}

// Model is a two-population failure model: a fraction of machines are
// "lemons" with a high per-window failure probability, the rest are
// healthy and (to first order) do not fail. Windows are conditionally
// independent given the machine's population, which yields
//
//	Pr[1st failure]        = f*pLemon + (1-f)*pHealthy
//	Pr[2nd | 1st failure]  = (f*pLemon^2 + (1-f)*pHealthy^2) / Pr[1st]
//
// matching the empirical observation that repeat failures are two orders
// of magnitude more likely.
type Model struct {
	LemonFraction float64 // f: share of machines that are lemons
	PLemon        float64 // per-30-day failure probability of a lemon
	PHealthy      float64 // per-30-day failure probability of a healthy machine
}

// Calibrate fits a Model to a target Rates pair. With pHealthy = 0 the
// fit is exact in closed form: pLemon = PSecondGiven and
// f = PFirst / PSecondGiven.
func Calibrate(r Rates) (Model, error) {
	if r.PFirst <= 0 || r.PFirst >= 1 || r.PSecondGiven <= 0 || r.PSecondGiven >= 1 {
		return Model{}, fmt.Errorf("faults: probabilities must be in (0,1): %+v", r)
	}
	if r.PSecondGiven < r.PFirst {
		return Model{}, fmt.Errorf("faults: conditional probability %v below marginal %v", r.PSecondGiven, r.PFirst)
	}
	return Model{
		LemonFraction: r.PFirst / r.PSecondGiven,
		PLemon:        r.PSecondGiven,
		PHealthy:      0,
	}, nil
}

// Predict returns the model's analytic failure rates.
func (m Model) Predict() Rates {
	p1 := m.LemonFraction*m.PLemon + (1-m.LemonFraction)*m.PHealthy
	p11 := m.LemonFraction*m.PLemon*m.PLemon + (1-m.LemonFraction)*m.PHealthy*m.PHealthy
	return Rates{PFirst: p1, PSecondGiven: p11 / p1}
}

// Simulate runs a Monte-Carlo over machines two 30-day windows long and
// returns the measured rates. rng must not be nil.
func (m Model) Simulate(machines int, rng *rand.Rand) Rates {
	firstFails, bothFail := 0, 0
	for i := 0; i < machines; i++ {
		p := m.PHealthy
		if rng.Float64() < m.LemonFraction {
			p = m.PLemon
		}
		w1 := rng.Float64() < p
		w2 := rng.Float64() < p
		if w1 {
			firstFails++
			if w2 {
				bothFail++
			}
		}
	}
	if firstFails == 0 {
		return Rates{}
	}
	return Rates{
		PFirst:       float64(firstFails) / float64(machines),
		PSecondGiven: float64(bothFail) / float64(firstFails),
	}
}

// SimulateTable1 calibrates a model per component and Monte-Carlos it,
// returning measured rates keyed by component. This regenerates Table 1.
func SimulateTable1(machines int, seed int64) (map[Component]Rates, error) {
	rng := rand.New(rand.NewSource(seed))
	out := make(map[Component]Rates, len(Table1))
	for comp, rates := range Table1 {
		m, err := Calibrate(rates)
		if err != nil {
			return nil, err
		}
		out[comp] = m.Simulate(machines, rng)
	}
	return out, nil
}

// Injector produces deterministic hardware-fault effects for tests and
// experiments.
type Injector struct {
	rng *rand.Rand
}

// NewInjector returns a deterministic injector.
func NewInjector(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// FlipBitsBytes flips n random bits in buf and returns the byte offsets
// that were touched.
func (in *Injector) FlipBitsBytes(buf []byte, n int) []int {
	offsets := make([]int, 0, n)
	for i := 0; i < n && len(buf) > 0; i++ {
		off := in.rng.Intn(len(buf))
		bit := uint(in.rng.Intn(8))
		buf[off] ^= 1 << bit
		offsets = append(offsets, off)
	}
	return offsets
}

// FlipBitsInt64 flips n random bits across the words of buf and returns
// the word indexes that were touched.
func (in *Injector) FlipBitsInt64(buf []int64, n int) []int {
	idxs := make([]int, 0, n)
	for i := 0; i < n && len(buf) > 0; i++ {
		idx := in.rng.Intn(len(buf))
		bit := uint(in.rng.Intn(64))
		buf[idx] ^= 1 << bit
		idxs = append(idxs, idx)
	}
	return idxs
}

// StuckBitRegion returns a memtest fault hook simulating a RAM region
// where one bit is stuck at 1: any write to the afflicted byte reads
// back with that bit set. offset is relative to the buffer start.
func StuckBitRegion(offset int, bit uint) func(buf []byte) {
	return func(buf []byte) {
		if offset < len(buf) {
			buf[offset] |= 1 << (bit & 7)
		}
	}
}

// IntermittentFlip returns a memtest fault hook that flips a bit only
// every nth invocation, modelling the intermittent, data-dependent
// errors §3 warns simple pattern tests can miss.
func IntermittentFlip(offset int, bit uint, nth int) func(buf []byte) {
	count := 0
	return func(buf []byte) {
		count++
		if count%nth == 0 && offset < len(buf) {
			buf[offset] ^= 1 << (bit & 7)
		}
	}
}
