package plan

import (
	"repro/internal/expr"
	"repro/internal/types"
)

// Optimize applies the rule-based rewrites: constant folding, filter
// pushdown into scans and through joins, and column pruning so scans
// only materialize (and lazily load) the columns the query touches.
func Optimize(n Node) Node {
	n = foldNode(n)
	n = pushFilters(n)
	n = pruneTop(n)
	return n
}

// ---- constant folding ----

func foldNode(n Node) Node {
	switch n := n.(type) {
	case *ScanNode:
		if n.Filter != nil {
			n.Filter = foldExpr(n.Filter)
		}
	case *FilterNode:
		n.Child = foldNode(n.Child)
		n.Cond = foldExpr(n.Cond)
	case *ProjectNode:
		n.Child = foldNode(n.Child)
		for i := range n.Exprs {
			n.Exprs[i] = foldExpr(n.Exprs[i])
		}
	case *JoinNode:
		n.Left = foldNode(n.Left)
		n.Right = foldNode(n.Right)
		for i := range n.LeftKeys {
			n.LeftKeys[i] = foldExpr(n.LeftKeys[i])
			n.RightKeys[i] = foldExpr(n.RightKeys[i])
		}
		if n.Extra != nil {
			n.Extra = foldExpr(n.Extra)
		}
	case *AggNode:
		n.Child = foldNode(n.Child)
		for i := range n.GroupBy {
			n.GroupBy[i] = foldExpr(n.GroupBy[i])
		}
		for i := range n.Aggs {
			if n.Aggs[i].Arg != nil {
				n.Aggs[i].Arg = foldExpr(n.Aggs[i].Arg)
			}
		}
	case *SortNode:
		n.Child = foldNode(n.Child)
		for i := range n.Keys {
			n.Keys[i].Expr = foldExpr(n.Keys[i].Expr)
		}
	case *WindowNode:
		n.Child = foldNode(n.Child)
		for i := range n.PartitionBy {
			n.PartitionBy[i] = foldExpr(n.PartitionBy[i])
		}
		for i := range n.OrderBy {
			n.OrderBy[i].Expr = foldExpr(n.OrderBy[i].Expr)
		}
		for i := range n.Funcs {
			if n.Funcs[i].Arg != nil {
				n.Funcs[i].Arg = foldExpr(n.Funcs[i].Arg)
			}
		}
	case *LimitNode:
		n.Child = foldNode(n.Child)
	case *UnionAllNode:
		for i := range n.Inputs {
			n.Inputs[i] = foldNode(n.Inputs[i])
		}
	case *InsertNode:
		n.Child = foldNode(n.Child)
	case *UpdateNode:
		n.Child = foldNode(n.Child)
		for i := range n.SetExprs {
			n.SetExprs[i] = foldExpr(n.SetExprs[i])
		}
	case *DeleteNode:
		n.Child = foldNode(n.Child)
	}
	return n
}

// ---- filter pushdown ----

func pushFilters(n Node) Node {
	switch n := n.(type) {
	case *FilterNode:
		n.Child = pushFilters(n.Child)
		switch child := n.Child.(type) {
		case *ScanNode:
			child.Filter = andExprs(child.Filter, n.Cond)
			return child
		case *FilterNode:
			child.Cond = andExprs(child.Cond, n.Cond)
			return pushFilters(child)
		case *JoinNode:
			return pushFilterThroughJoin(n, child)
		}
		return n
	case *ScanNode:
		return n
	case *ProjectNode:
		n.Child = pushFilters(n.Child)
	case *JoinNode:
		n.Left = pushFilters(n.Left)
		n.Right = pushFilters(n.Right)
	case *AggNode:
		n.Child = pushFilters(n.Child)
	case *SortNode:
		n.Child = pushFilters(n.Child)
	case *WindowNode:
		// A filter above a window cannot move below it (it would change
		// the partitions); the node is a pushdown barrier.
		n.Child = pushFilters(n.Child)
	case *LimitNode:
		n.Child = pushFilters(n.Child)
	case *UnionAllNode:
		for i := range n.Inputs {
			n.Inputs[i] = pushFilters(n.Inputs[i])
		}
	case *InsertNode:
		n.Child = pushFilters(n.Child)
	case *UpdateNode:
		n.Child = pushFilters(n.Child)
	case *DeleteNode:
		n.Child = pushFilters(n.Child)
	}
	return n
}

func andExprs(a, b expr.Expr) expr.Expr {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &expr.Logic{Op: expr.OpAnd, L: a, R: b}
}

// splitBoundConjuncts splits a bound predicate on AND.
func splitBoundConjuncts(e expr.Expr) []expr.Expr {
	if l, ok := e.(*expr.Logic); ok && l.Op == expr.OpAnd {
		return append(splitBoundConjuncts(l.L), splitBoundConjuncts(l.R)...)
	}
	return []expr.Expr{e}
}

func pushFilterThroughJoin(f *FilterNode, j *JoinNode) Node {
	nl := len(j.Left.Schema())
	total := nl + len(j.Right.Schema())
	var keep []expr.Expr
	for _, conj := range splitBoundConjuncts(f.Cond) {
		mark := make([]bool, total)
		usedCols(conj, mark)
		leftOnly, rightOnly := true, true
		for i, m := range mark {
			if !m {
				continue
			}
			if i < nl {
				rightOnly = false
			} else {
				leftOnly = false
			}
		}
		switch {
		case leftOnly:
			j.Left = pushFilters(&FilterNode{Child: j.Left, Cond: conj})
		case rightOnly && j.Type == JoinInner:
			// Remap to the right child's schema.
			m := make([]int, total)
			for i := range m {
				m[i] = i - nl
			}
			j.Right = pushFilters(&FilterNode{Child: j.Right, Cond: remapExpr(conj, m)})
		default:
			keep = append(keep, conj)
		}
	}
	j.Left = pushFilters(j.Left)
	j.Right = pushFilters(j.Right)
	if len(keep) == 0 {
		return j
	}
	cond := keep[0]
	for _, c := range keep[1:] {
		cond = andExprs(cond, c)
	}
	return &FilterNode{Child: j, Cond: cond}
}

// ---- column pruning ----

// pruneTop prunes with every output column required.
func pruneTop(n Node) Node {
	switch n := n.(type) {
	case *InsertNode:
		n.Child, _ = prune(n.Child, allRequired(n.Child))
		return n
	case *UpdateNode:
		n.Child, _ = prune(n.Child, allRequired(n.Child))
		return n
	case *DeleteNode:
		n.Child, _ = prune(n.Child, allRequired(n.Child))
		return n
	default:
		out, _ := prune(n, allRequired(n))
		return out
	}
}

func allRequired(n Node) []bool {
	req := make([]bool, len(n.Schema()))
	for i := range req {
		req[i] = true
	}
	return req
}

// prune rewrites the subtree to emit only required columns, returning
// the new node and the old→new output position map (-1 = dropped).
func prune(n Node, required []bool) (Node, []int) {
	switch n := n.(type) {
	case *ScanNode:
		nOut := len(n.Columns)
		req := append([]bool(nil), required...)
		for len(req) < nOut+btoi(n.WithRowID) {
			req = append(req, false)
		}
		if n.Filter != nil {
			usedCols(n.Filter, req)
		}
		if n.WithRowID {
			req[nOut] = true
		}
		oldToNew := make([]int, nOut+btoi(n.WithRowID))
		var newCols []int
		for i := 0; i < nOut; i++ {
			if req[i] {
				oldToNew[i] = len(newCols)
				newCols = append(newCols, n.Columns[i])
			} else {
				oldToNew[i] = -1
			}
		}
		if n.WithRowID {
			oldToNew[nOut] = len(newCols)
		}
		n.Columns = newCols
		if n.Filter != nil {
			n.Filter = remapExpr(n.Filter, oldToNew)
		}
		return n, oldToNew
	case *FilterNode:
		req := append([]bool(nil), required...)
		for len(req) < len(n.Child.Schema()) {
			req = append(req, false)
		}
		usedCols(n.Cond, req)
		child, m := prune(n.Child, req)
		n.Child = child
		n.Cond = remapExpr(n.Cond, m)
		return n, m
	case *ProjectNode:
		childReq := make([]bool, len(n.Child.Schema()))
		for _, e := range n.Exprs {
			usedCols(e, childReq)
		}
		child, m := prune(n.Child, childReq)
		n.Child = child
		for i := range n.Exprs {
			n.Exprs[i] = remapExpr(n.Exprs[i], m)
		}
		return n, identity(len(n.Exprs))
	case *JoinNode:
		nl := len(n.Left.Schema())
		nr := len(n.Right.Schema())
		lReq := make([]bool, nl)
		rReq := make([]bool, nr)
		for i := 0; i < nl+nr; i++ {
			if i < len(required) && required[i] {
				if i < nl {
					lReq[i] = true
				} else {
					rReq[i-nl] = true
				}
			}
		}
		for _, k := range n.LeftKeys {
			usedCols(k, lReq)
		}
		for _, k := range n.RightKeys {
			usedCols(k, rReq)
		}
		if n.Extra != nil {
			comb := make([]bool, nl+nr)
			usedCols(n.Extra, comb)
			for i, m := range comb {
				if m {
					if i < nl {
						lReq[i] = true
					} else {
						rReq[i-nl] = true
					}
				}
			}
		}
		left, lm := prune(n.Left, lReq)
		right, rm := prune(n.Right, rReq)
		n.Left, n.Right = left, right
		for i := range n.LeftKeys {
			n.LeftKeys[i] = remapExpr(n.LeftKeys[i], lm)
			n.RightKeys[i] = remapExpr(n.RightKeys[i], rm)
		}
		nlNew := len(left.Schema())
		comb := make([]int, nl+nr)
		for i := 0; i < nl; i++ {
			comb[i] = lm[i]
		}
		for i := 0; i < nr; i++ {
			if rm[i] < 0 {
				comb[nl+i] = -1
			} else {
				comb[nl+i] = nlNew + rm[i]
			}
		}
		if n.Extra != nil {
			n.Extra = remapExpr(n.Extra, comb)
		}
		return n, comb
	case *AggNode:
		childReq := make([]bool, len(n.Child.Schema()))
		for _, g := range n.GroupBy {
			usedCols(g, childReq)
		}
		for _, a := range n.Aggs {
			if a.Arg != nil {
				usedCols(a.Arg, childReq)
			}
		}
		child, m := prune(n.Child, childReq)
		n.Child = child
		for i := range n.GroupBy {
			n.GroupBy[i] = remapExpr(n.GroupBy[i], m)
		}
		for i := range n.Aggs {
			if n.Aggs[i].Arg != nil {
				n.Aggs[i].Arg = remapExpr(n.Aggs[i].Arg, m)
			}
		}
		return n, identity(len(n.GroupBy) + len(n.Aggs))
	case *SortNode:
		req := append([]bool(nil), required...)
		for len(req) < len(n.Child.Schema()) {
			req = append(req, false)
		}
		for _, k := range n.Keys {
			usedCols(k.Expr, req)
		}
		child, m := prune(n.Child, req)
		n.Child = child
		for i := range n.Keys {
			n.Keys[i].Expr = remapExpr(n.Keys[i].Expr, m)
		}
		return n, m
	case *WindowNode:
		nchild := len(n.Child.Schema())
		req := make([]bool, nchild)
		for i := 0; i < nchild && i < len(required); i++ {
			req[i] = required[i]
		}
		for _, e := range n.PartitionBy {
			usedCols(e, req)
		}
		for _, k := range n.OrderBy {
			usedCols(k.Expr, req)
		}
		for _, f := range n.Funcs {
			if f.Arg != nil {
				usedCols(f.Arg, req)
			}
		}
		child, m := prune(n.Child, req)
		n.Child = child
		for i := range n.PartitionBy {
			n.PartitionBy[i] = remapExpr(n.PartitionBy[i], m)
		}
		for i := range n.OrderBy {
			n.OrderBy[i].Expr = remapExpr(n.OrderBy[i].Expr, m)
		}
		for i := range n.Funcs {
			if n.Funcs[i].Arg != nil {
				n.Funcs[i].Arg = remapExpr(n.Funcs[i].Arg, m)
			}
		}
		// Output map: surviving child columns keep m's positions; the
		// appended function columns follow the pruned child schema.
		newChild := len(child.Schema())
		comb := make([]int, nchild+len(n.Funcs))
		for i := 0; i < nchild; i++ {
			comb[i] = m[i]
		}
		for j := range n.Funcs {
			comb[nchild+j] = newChild + j
		}
		return n, comb
	case *LimitNode:
		child, m := prune(n.Child, required)
		n.Child = child
		return n, m
	case *UnionAllNode:
		// Keep all columns: arms must stay schema-aligned.
		for i := range n.Inputs {
			n.Inputs[i], _ = prune(n.Inputs[i], allRequired(n.Inputs[i]))
		}
		return n, identity(len(n.Schema()))
	default:
		return n, identity(len(n.Schema()))
	}
}

func identity(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

// castTo wraps e in a cast when its type differs from want.
func castTo(e expr.Expr, want types.Type) expr.Expr {
	if e.Type() == want {
		return e
	}
	return &expr.CastExpr{X: e, To: want}
}
