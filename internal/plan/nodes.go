// Package plan contains QuackDB's binder, logical query plan and
// rule-based optimizer. The binder resolves names and types against the
// catalog and produces vectorized expression trees; the optimizer pushes
// filters into scans, prunes unused columns (so scans touch — and load —
// only the columns a query needs, per paper §2), folds constants and
// extracts equi-join keys.
package plan

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/types"
)

// ColInfo describes one output column of a plan node.
type ColInfo struct {
	Table string // table alias ("" for computed columns)
	Name  string
	Type  types.Type
}

// Node is a logical plan operator.
type Node interface {
	// Schema returns the node's output columns.
	Schema() []ColInfo
	// Explain renders one line for EXPLAIN.
	Explain() string
	// Children returns the input nodes.
	Children() []Node
}

// ScanNode reads a base table. Columns selects and orders the table
// columns to emit; Filter (if set) is evaluated over the emitted columns
// inside the scan; WithRowID appends a BIGINT row-id column.
type ScanNode struct {
	Table      *catalog.Table
	TableAlias string
	Columns    []int
	Filter     expr.Expr
	WithRowID  bool
}

// Schema implements Node.
func (n *ScanNode) Schema() []ColInfo {
	out := make([]ColInfo, 0, len(n.Columns)+1)
	for _, c := range n.Columns {
		col := n.Table.Columns[c]
		out = append(out, ColInfo{Table: n.TableAlias, Name: col.Name, Type: col.Type})
	}
	if n.WithRowID {
		out = append(out, ColInfo{Table: n.TableAlias, Name: "rowid", Type: types.BigInt})
	}
	return out
}

// Explain implements Node.
func (n *ScanNode) Explain() string {
	s := fmt.Sprintf("SCAN %s", n.Table.Name)
	if len(n.Columns) < len(n.Table.Columns) {
		names := make([]string, len(n.Columns))
		for i, c := range n.Columns {
			names[i] = n.Table.Columns[c].Name
		}
		s += "(" + strings.Join(names, ", ") + ")"
	}
	if n.Filter != nil {
		s += " FILTER " + n.Filter.String()
	}
	return s
}

// Children implements Node.
func (n *ScanNode) Children() []Node { return nil }

// FilterNode keeps rows where Cond is TRUE.
type FilterNode struct {
	Child Node
	Cond  expr.Expr
}

// Schema implements Node.
func (n *FilterNode) Schema() []ColInfo { return n.Child.Schema() }

// Explain implements Node.
func (n *FilterNode) Explain() string { return "FILTER " + n.Cond.String() }

// Children implements Node.
func (n *FilterNode) Children() []Node { return []Node{n.Child} }

// ProjectNode computes expressions over its child.
type ProjectNode struct {
	Child Node
	Exprs []expr.Expr
	Names []string
}

// Schema implements Node.
func (n *ProjectNode) Schema() []ColInfo {
	out := make([]ColInfo, len(n.Exprs))
	for i, e := range n.Exprs {
		out[i] = ColInfo{Name: n.Names[i], Type: e.Type()}
	}
	return out
}

// Explain implements Node.
func (n *ProjectNode) Explain() string {
	parts := make([]string, len(n.Exprs))
	for i, e := range n.Exprs {
		parts[i] = e.String()
	}
	return "PROJECT " + strings.Join(parts, ", ")
}

// Children implements Node.
func (n *ProjectNode) Children() []Node { return []Node{n.Child} }

// JoinNode joins Left and Right. Equi-key expressions are evaluated over
// the respective child schemas; Extra (if set) is evaluated over the
// concatenated schema after key matching. A join without keys is a
// nested-loop (cross + filter) join.
type JoinNode struct {
	Left, Right Node
	Type        JoinKind
	LeftKeys    []expr.Expr
	RightKeys   []expr.Expr
	Extra       expr.Expr
}

// JoinKind is the logical join flavor.
type JoinKind int

// Join kinds.
const (
	JoinInner JoinKind = iota
	JoinLeft
	JoinCross
)

func (k JoinKind) String() string {
	return [...]string{"INNER", "LEFT", "CROSS"}[k]
}

// Schema implements Node.
func (n *JoinNode) Schema() []ColInfo {
	l := n.Left.Schema()
	r := n.Right.Schema()
	out := make([]ColInfo, 0, len(l)+len(r))
	out = append(out, l...)
	return append(out, r...)
}

// Explain implements Node.
func (n *JoinNode) Explain() string {
	s := n.Type.String() + " JOIN"
	if len(n.LeftKeys) > 0 {
		pairs := make([]string, len(n.LeftKeys))
		for i := range n.LeftKeys {
			pairs[i] = n.LeftKeys[i].String() + " = " + n.RightKeys[i].String()
		}
		s += " ON " + strings.Join(pairs, " AND ")
	}
	if n.Extra != nil {
		s += " AND " + n.Extra.String()
	}
	return s
}

// Children implements Node.
func (n *JoinNode) Children() []Node { return []Node{n.Left, n.Right} }

// AggSpec is one aggregate computation.
type AggSpec struct {
	Func     string // count, sum, avg, min, max; count with Arg==nil is count(*)
	Arg      expr.Expr
	Distinct bool
	Type     types.Type
	Name     string
}

// AggNode groups by GroupBy and computes Aggs. Output schema: group
// columns first, then aggregates.
type AggNode struct {
	Child   Node
	GroupBy []expr.Expr
	Names   []string // names of group columns
	Aggs    []AggSpec
}

// Schema implements Node.
func (n *AggNode) Schema() []ColInfo {
	out := make([]ColInfo, 0, len(n.GroupBy)+len(n.Aggs))
	for i, g := range n.GroupBy {
		out = append(out, ColInfo{Name: n.Names[i], Type: g.Type()})
	}
	for _, a := range n.Aggs {
		out = append(out, ColInfo{Name: a.Name, Type: a.Type})
	}
	return out
}

// Explain implements Node.
func (n *AggNode) Explain() string {
	var parts []string
	for _, g := range n.GroupBy {
		parts = append(parts, g.String())
	}
	for _, a := range n.Aggs {
		parts = append(parts, a.Name)
	}
	return "AGGREGATE " + strings.Join(parts, ", ")
}

// Children implements Node.
func (n *AggNode) Children() []Node { return []Node{n.Child} }

// SortKey is one ORDER BY key over the child's output schema.
type SortKey struct {
	Expr       expr.Expr
	Desc       bool
	NullsFirst bool
}

// SortNode orders its input.
type SortNode struct {
	Child Node
	Keys  []SortKey
}

// Schema implements Node.
func (n *SortNode) Schema() []ColInfo { return n.Child.Schema() }

// Explain implements Node.
func (n *SortNode) Explain() string {
	parts := make([]string, len(n.Keys))
	for i, k := range n.Keys {
		dir := "ASC"
		if k.Desc {
			dir = "DESC"
		}
		parts[i] = k.Expr.String() + " " + dir
	}
	return "SORT " + strings.Join(parts, ", ")
}

// Children implements Node.
func (n *SortNode) Children() []Node { return []Node{n.Child} }

// WindowFunc is one window function computation.
type WindowFunc struct {
	Func    string      // row_number, rank, dense_rank, lag, lead, count, sum, avg, min, max
	Arg     expr.Expr   // nil for row_number/rank/dense_rank/count(*)
	Offset  int64       // lag/lead distance
	Default types.Value // lag/lead default (typed NULL when unset)
	Type    types.Type
	Name    string
}

// FrameBound is one end of a window frame, resolved to row offsets.
type FrameBound struct {
	Unbounded bool
	Current   bool
	Offset    int64 // rows before (Preceding) or after the current row
	Preceding bool
}

// WindowFrame is the frame shared by every function of a WindowNode.
// When Set is false the SQL default applies: the whole partition
// without ORDER BY, RANGE UNBOUNDED PRECEDING..CURRENT ROW with it.
type WindowFrame struct {
	Set        bool
	Rows       bool // ROWS (true) or RANGE (false)
	Start, End FrameBound
}

// WindowNode evaluates window functions sharing one OVER specification:
// rows are ordered by (PartitionBy, OrderBy) within each partition and
// every function's value is appended as a new column after the child's.
// Output rows are totally ordered by (partition keys, order keys, input
// position), which is what both the sequential and the parallel
// executors produce.
type WindowNode struct {
	Child       Node
	PartitionBy []expr.Expr
	OrderBy     []SortKey
	Frame       WindowFrame
	Funcs       []WindowFunc
}

// Schema implements Node.
func (n *WindowNode) Schema() []ColInfo {
	child := n.Child.Schema()
	out := make([]ColInfo, 0, len(child)+len(n.Funcs))
	out = append(out, child...)
	for _, f := range n.Funcs {
		out = append(out, ColInfo{Name: f.Name, Type: f.Type})
	}
	return out
}

// Explain implements Node.
func (n *WindowNode) Explain() string {
	var parts []string
	for _, f := range n.Funcs {
		parts = append(parts, f.Name)
	}
	s := "WINDOW " + strings.Join(parts, ", ")
	if len(n.PartitionBy) > 0 {
		keys := make([]string, len(n.PartitionBy))
		for i, e := range n.PartitionBy {
			keys[i] = e.String()
		}
		s += " PARTITION BY " + strings.Join(keys, ", ")
	}
	if len(n.OrderBy) > 0 {
		keys := make([]string, len(n.OrderBy))
		for i, k := range n.OrderBy {
			keys[i] = k.Expr.String()
			if k.Desc {
				keys[i] += " DESC"
			}
		}
		s += " ORDER BY " + strings.Join(keys, ", ")
	}
	return s
}

// Children implements Node.
func (n *WindowNode) Children() []Node { return []Node{n.Child} }

// LimitNode truncates its input. Negative Limit means "no limit".
type LimitNode struct {
	Child  Node
	Limit  int64
	Offset int64
}

// Schema implements Node.
func (n *LimitNode) Schema() []ColInfo { return n.Child.Schema() }

// Explain implements Node.
func (n *LimitNode) Explain() string {
	if n.Offset > 0 {
		return fmt.Sprintf("LIMIT %d OFFSET %d", n.Limit, n.Offset)
	}
	return fmt.Sprintf("LIMIT %d", n.Limit)
}

// Children implements Node.
func (n *LimitNode) Children() []Node { return []Node{n.Child} }

// UnionAllNode concatenates same-schema children.
type UnionAllNode struct {
	Inputs []Node
}

// Schema implements Node.
func (n *UnionAllNode) Schema() []ColInfo { return n.Inputs[0].Schema() }

// Explain implements Node.
func (n *UnionAllNode) Explain() string { return "UNION ALL" }

// Children implements Node.
func (n *UnionAllNode) Children() []Node { return n.Inputs }

// ValuesNode produces literal rows.
type ValuesNode struct {
	Cols []ColInfo
	Rows [][]types.Value
}

// Schema implements Node.
func (n *ValuesNode) Schema() []ColInfo { return n.Cols }

// Explain implements Node.
func (n *ValuesNode) Explain() string { return fmt.Sprintf("VALUES (%d rows)", len(n.Rows)) }

// Children implements Node.
func (n *ValuesNode) Children() []Node { return nil }

// InsertNode appends its child's rows into Table. The child schema is
// already aligned (casts and NULL defaults inserted by the binder).
type InsertNode struct {
	Table *catalog.Table
	Child Node
}

// Schema implements Node.
func (n *InsertNode) Schema() []ColInfo {
	return []ColInfo{{Name: "count", Type: types.BigInt}}
}

// Explain implements Node.
func (n *InsertNode) Explain() string { return "INSERT INTO " + n.Table.Name }

// Children implements Node.
func (n *InsertNode) Children() []Node { return []Node{n.Child} }

// UpdateNode updates SetCols of Table. Child is a scan (with rowid last)
// that already applied the WHERE filter; SetExprs are evaluated over the
// child's output.
type UpdateNode struct {
	Table    *catalog.Table
	Child    Node
	SetCols  []int
	SetExprs []expr.Expr
}

// Schema implements Node.
func (n *UpdateNode) Schema() []ColInfo {
	return []ColInfo{{Name: "count", Type: types.BigInt}}
}

// Explain implements Node.
func (n *UpdateNode) Explain() string {
	parts := make([]string, len(n.SetCols))
	for i, c := range n.SetCols {
		parts[i] = n.Table.Columns[c].Name + " = " + n.SetExprs[i].String()
	}
	return "UPDATE " + n.Table.Name + " SET " + strings.Join(parts, ", ")
}

// Children implements Node.
func (n *UpdateNode) Children() []Node { return []Node{n.Child} }

// DeleteNode deletes the rows produced by its child scan (rowid last).
type DeleteNode struct {
	Table *catalog.Table
	Child Node
}

// Schema implements Node.
func (n *DeleteNode) Schema() []ColInfo {
	return []ColInfo{{Name: "count", Type: types.BigInt}}
}

// Explain implements Node.
func (n *DeleteNode) Explain() string { return "DELETE FROM " + n.Table.Name }

// Children implements Node.
func (n *DeleteNode) Children() []Node { return []Node{n.Child} }

// ExplainTree renders a plan as an indented tree.
func ExplainTree(n Node) string {
	var sb strings.Builder
	var walk func(n Node, depth int)
	walk = func(n Node, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(n.Explain())
		sb.WriteByte('\n')
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return sb.String()
}
