package plan

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/sql"
	"repro/internal/types"
)

// windowOnlyFuncs may only appear with an OVER clause.
var windowOnlyFuncs = map[string]bool{
	"row_number": true, "rank": true, "dense_rank": true,
	"lag": true, "lead": true,
}

// windowFuncs is every function usable with OVER.
var windowFuncs = map[string]bool{
	"row_number": true, "rank": true, "dense_rank": true,
	"lag": true, "lead": true,
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
}

// collectWindows gathers every window function call (FuncCall with an
// OVER clause) in the expression. It does not descend into the calls
// themselves; nested windows are rejected separately.
func collectWindows(e sql.Expr, acc []*sql.FuncCall) []*sql.FuncCall {
	switch e := e.(type) {
	case *sql.FuncCall:
		if e.Over != nil {
			return append(acc, e)
		}
		for _, a := range e.Args {
			acc = collectWindows(a, acc)
		}
	case *sql.Unary:
		acc = collectWindows(e.X, acc)
	case *sql.Binary:
		acc = collectWindows(e.L, acc)
		acc = collectWindows(e.R, acc)
	case *sql.IsNull:
		acc = collectWindows(e.X, acc)
	case *sql.Between:
		acc = collectWindows(e.X, acc)
		acc = collectWindows(e.Lo, acc)
		acc = collectWindows(e.Hi, acc)
	case *sql.InList:
		acc = collectWindows(e.X, acc)
		for _, x := range e.List {
			acc = collectWindows(x, acc)
		}
	case *sql.Like:
		acc = collectWindows(e.X, acc)
		acc = collectWindows(e.Pattern, acc)
	case *sql.Case:
		if e.Operand != nil {
			acc = collectWindows(e.Operand, acc)
		}
		for _, w := range e.Whens {
			acc = collectWindows(w.Cond, acc)
			acc = collectWindows(w.Result, acc)
		}
		if e.Else != nil {
			acc = collectWindows(e.Else, acc)
		}
	case *sql.Cast:
		acc = collectWindows(e.X, acc)
	}
	return acc
}

// rejectWindows errors when the clause contains a window function call.
func rejectWindows(e sql.Expr, clause string) error {
	if e == nil {
		return nil
	}
	if calls := collectWindows(e, nil); len(calls) > 0 {
		return fmt.Errorf("window functions are not allowed in %s", clause)
	}
	return nil
}

// windowSpecKey renders the OVER clause canonically so calls sharing a
// specification land in the same WindowNode.
func windowSpecKey(w *sql.WindowDef) string {
	var sb strings.Builder
	sb.WriteString("PARTITION(")
	for i, p := range w.PartitionBy {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(astKey(p))
	}
	sb.WriteString(") ORDER(")
	for i, o := range w.OrderBy {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(astKey(o.Expr))
		if o.Desc {
			sb.WriteString(" DESC")
		}
		if o.NullsSet {
			if o.NullsLast {
				sb.WriteString(" NULLS LAST")
			} else {
				sb.WriteString(" NULLS FIRST")
			}
		}
	}
	sb.WriteString(")")
	if f := w.Frame; f != nil {
		if f.Rows {
			sb.WriteString(" ROWS ")
		} else {
			sb.WriteString(" RANGE ")
		}
		sb.WriteString(frameBoundKey(f.Start))
		sb.WriteString("..")
		sb.WriteString(frameBoundKey(f.End))
	}
	return sb.String()
}

func frameBoundKey(b sql.FrameBound) string {
	switch {
	case b.Unbounded && b.Preceding:
		return "UNBOUNDED PRECEDING"
	case b.Unbounded:
		return "UNBOUNDED FOLLOWING"
	case b.Current:
		return "CURRENT ROW"
	case b.Preceding:
		return astKey(b.Offset) + " PRECEDING"
	default:
		return astKey(b.Offset) + " FOLLOWING"
	}
}

// bindWindows lifts the window function calls of the select list and
// ORDER BY out of their expressions: calls sharing one OVER spec become
// one WindowNode appending their results as new columns, and subst maps
// each call's AST rendering to the appended column, so the projection
// (and hidden ORDER BY columns) bind against plain column references.
// Stacked WindowNodes handle multiple distinct specs. Returns the new
// plan root.
func (b *Binder) bindWindows(cur Node, calls []*sql.FuncCall, sc *scope, subst map[string]expr.Expr) (Node, error) {
	type specGroup struct {
		def   *sql.WindowDef
		calls []*sql.FuncCall
	}
	var order []string
	groups := make(map[string]*specGroup)
	seen := make(map[string]bool)
	for _, call := range calls {
		k := astKey(call)
		if seen[k] {
			continue
		}
		seen[k] = true
		if !windowFuncs[call.Name] {
			return nil, fmt.Errorf("%s is not a window function", call.Name)
		}
		if call.Distinct {
			return nil, fmt.Errorf("DISTINCT is not supported in window functions")
		}
		// Nested window calls are invalid anywhere inside the spec.
		var nested []*sql.FuncCall
		for _, a := range call.Args {
			nested = collectWindows(a, nested)
		}
		for _, p := range call.Over.PartitionBy {
			nested = collectWindows(p, nested)
		}
		for _, o := range call.Over.OrderBy {
			nested = collectWindows(o.Expr, nested)
		}
		if len(nested) > 0 {
			return nil, fmt.Errorf("window functions cannot be nested")
		}
		sk := windowSpecKey(call.Over)
		g, ok := groups[sk]
		if !ok {
			g = &specGroup{def: call.Over}
			groups[sk] = g
			order = append(order, sk)
		}
		g.calls = append(g.calls, call)
	}
	for _, sk := range order {
		g := groups[sk]
		wn := &WindowNode{Child: cur}
		for _, p := range g.def.PartitionBy {
			bound, err := b.bindExpr(p, sc, subst)
			if err != nil {
				return nil, err
			}
			wn.PartitionBy = append(wn.PartitionBy, bound)
		}
		for _, item := range g.def.OrderBy {
			bound, err := b.bindExpr(item.Expr, sc, subst)
			if err != nil {
				return nil, err
			}
			nullsFirst := item.Desc // SQL default: NULLS LAST asc, FIRST desc
			if item.NullsSet {
				nullsFirst = !item.NullsLast
			}
			wn.OrderBy = append(wn.OrderBy, SortKey{Expr: bound, Desc: item.Desc, NullsFirst: nullsFirst})
		}
		frame, err := b.bindFrame(g.def, len(wn.OrderBy) > 0)
		if err != nil {
			return nil, err
		}
		wn.Frame = frame
		base := len(cur.Schema())
		for _, call := range g.calls {
			spec, err := b.bindWindowFunc(call, sc, subst)
			if err != nil {
				return nil, err
			}
			wn.Funcs = append(wn.Funcs, spec)
			idx := base + len(wn.Funcs) - 1
			subst[astKey(call)] = &expr.ColRef{Idx: idx, Typ: spec.Type, Name: spec.Name}
		}
		cur = wn
	}
	return cur, nil
}

// bindFrame resolves the AST frame into row offsets.
func (b *Binder) bindFrame(def *sql.WindowDef, hasOrder bool) (WindowFrame, error) {
	if def.Frame == nil {
		return WindowFrame{}, nil
	}
	if !hasOrder {
		return WindowFrame{}, fmt.Errorf("a window frame requires ORDER BY in the OVER clause")
	}
	f := def.Frame
	out := WindowFrame{Set: true, Rows: f.Rows}
	var err error
	if out.Start, err = b.bindFrameBound(f.Start, f.Rows); err != nil {
		return out, err
	}
	if out.End, err = b.bindFrameBound(f.End, f.Rows); err != nil {
		return out, err
	}
	if out.Start.Unbounded && !out.Start.Preceding {
		return out, fmt.Errorf("window frames cannot start at UNBOUNDED FOLLOWING")
	}
	if out.End.Unbounded && out.End.Preceding {
		return out, fmt.Errorf("window frames cannot end at UNBOUNDED PRECEDING")
	}
	// Reject frames that can never contain the current row's side
	// correctly: start after end.
	if boundRank(out.Start) > boundRank(out.End) {
		return out, fmt.Errorf("window frame start cannot come after its end")
	}
	return out, nil
}

// boundRank orders frame bounds coarsely for validity checking.
func boundRank(b FrameBound) int {
	switch {
	case b.Unbounded && b.Preceding:
		return 0
	case b.Preceding && b.Offset > 0:
		return 1
	case b.Current || b.Offset == 0 && !b.Unbounded:
		return 2
	case b.Unbounded:
		return 4
	default:
		return 3
	}
}

func (b *Binder) bindFrameBound(bound sql.FrameBound, rows bool) (FrameBound, error) {
	out := FrameBound{Unbounded: bound.Unbounded, Current: bound.Current, Preceding: bound.Preceding}
	if bound.Offset == nil {
		return out, nil
	}
	if !rows {
		return out, fmt.Errorf("RANGE frames support only UNBOUNDED and CURRENT ROW bounds")
	}
	v, err := b.constInt(bound.Offset, "window frame bound")
	if err != nil {
		return out, err
	}
	if v < 0 {
		return out, fmt.Errorf("window frame offset must not be negative")
	}
	out.Offset = v
	return out, nil
}

// bindWindowFunc types one window function call.
func (b *Binder) bindWindowFunc(call *sql.FuncCall, sc *scope, subst map[string]expr.Expr) (WindowFunc, error) {
	spec := WindowFunc{Func: call.Name, Name: astKey(call)}
	switch call.Name {
	case "row_number", "rank", "dense_rank":
		if len(call.Args) != 0 || call.Star {
			return spec, fmt.Errorf("%s takes no arguments", call.Name)
		}
		spec.Type = types.BigInt
		return spec, nil
	case "lag", "lead":
		if len(call.Args) < 1 || len(call.Args) > 3 {
			return spec, fmt.Errorf("%s takes 1 to 3 arguments", call.Name)
		}
		arg, err := b.bindExpr(call.Args[0], sc, subst)
		if err != nil {
			return spec, err
		}
		spec.Arg = arg
		spec.Type = arg.Type()
		if spec.Type == types.Null {
			spec.Type = types.Varchar
		}
		spec.Offset = 1
		if len(call.Args) >= 2 {
			off, err := b.constInt(call.Args[1], call.Name+" offset")
			if err != nil {
				return spec, err
			}
			if off < 0 {
				return spec, fmt.Errorf("%s offset must not be negative", call.Name)
			}
			spec.Offset = off
		}
		spec.Default = types.NewNull(spec.Type)
		if len(call.Args) == 3 {
			bound, err := b.bindExpr(call.Args[2], sc, subst)
			if err != nil {
				return spec, err
			}
			v, err := EvalConst(bound)
			if err != nil {
				return spec, fmt.Errorf("%s default must be a constant: %w", call.Name, err)
			}
			cv, err := v.Cast(spec.Type)
			if err != nil {
				return spec, fmt.Errorf("%s default: %w", call.Name, err)
			}
			spec.Default = cv
		}
		return spec, nil
	case "count":
		spec.Type = types.BigInt
		if call.Star {
			return spec, nil
		}
		if len(call.Args) != 1 {
			return spec, fmt.Errorf("count takes exactly one argument")
		}
		arg, err := b.bindExpr(call.Args[0], sc, subst)
		if err != nil {
			return spec, err
		}
		spec.Arg = arg
		return spec, nil
	case "sum", "avg", "min", "max":
		if call.Star || len(call.Args) != 1 {
			return spec, fmt.Errorf("%s takes exactly one argument", call.Name)
		}
		arg, err := b.bindExpr(call.Args[0], sc, subst)
		if err != nil {
			return spec, err
		}
		spec.Arg = arg
		switch call.Name {
		case "sum":
			switch arg.Type() {
			case types.Integer, types.BigInt, types.Boolean:
				spec.Type = types.BigInt
			case types.Double:
				spec.Type = types.Double
			default:
				return spec, fmt.Errorf("sum(%s) is not defined", arg.Type())
			}
		case "avg":
			if !arg.Type().IsNumeric() {
				return spec, fmt.Errorf("avg(%s) is not defined", arg.Type())
			}
			spec.Type = types.Double
		default: // min, max
			spec.Type = arg.Type()
		}
		return spec, nil
	default:
		return spec, fmt.Errorf("%s is not a window function", call.Name)
	}
}
