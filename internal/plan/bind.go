package plan

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/sql"
	"repro/internal/types"
	"repro/internal/vector"
)

// Binder resolves parsed statements against a catalog into logical
// plans.
type Binder struct {
	Cat    *catalog.Catalog
	Params []types.Value
	// viewDepth guards against recursive view definitions.
	viewDepth int
}

// scopeCol is one column visible to name resolution.
type scopeCol struct {
	Table string
	Name  string
	Type  types.Type
}

type scope struct {
	cols []scopeCol
}

func scopeFrom(cols []ColInfo) *scope {
	s := &scope{cols: make([]scopeCol, len(cols))}
	for i, c := range cols {
		s.cols[i] = scopeCol{Table: c.Table, Name: c.Name, Type: c.Type}
	}
	return s
}

func (s *scope) lookup(table, name string) (int, types.Type, error) {
	found := -1
	var typ types.Type
	for i, c := range s.cols {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if table != "" && !strings.EqualFold(c.Table, table) {
			continue
		}
		if found >= 0 {
			return 0, types.Invalid, fmt.Errorf("column reference %q is ambiguous", name)
		}
		found = i
		typ = c.Type
	}
	if found < 0 {
		if table != "" {
			return 0, types.Invalid, fmt.Errorf("column %s.%s does not exist", table, name)
		}
		return 0, types.Invalid, fmt.Errorf("column %q does not exist", name)
	}
	return found, typ, nil
}

// BindSelect binds a SELECT statement into a logical plan.
func (b *Binder) BindSelect(stmt *sql.SelectStmt) (Node, error) {
	node, err := b.bindSingleSelect(stmt)
	if err != nil {
		return nil, err
	}
	if stmt.UnionAll == nil {
		return node, nil
	}
	inputs := []Node{node}
	for arm := stmt.UnionAll; arm != nil; arm = arm.UnionAll {
		n, err := b.bindSingleSelect(arm)
		if err != nil {
			return nil, err
		}
		inputs = append(inputs, n)
	}
	// Resolve the common supertype of every column across all arms, then
	// cast each arm to it.
	first := inputs[0].Schema()
	common := make([]types.Type, len(first))
	for j := range first {
		common[j] = first[j].Type
	}
	for i := 1; i < len(inputs); i++ {
		s := inputs[i].Schema()
		if len(s) != len(first) {
			return nil, fmt.Errorf("UNION ALL arms have %d vs %d columns", len(first), len(s))
		}
		for j := range s {
			ct, err := types.CommonType(common[j], s[j].Type)
			if err != nil {
				return nil, fmt.Errorf("UNION ALL column %d: %w", j+1, err)
			}
			common[j] = ct
		}
	}
	for i := range inputs {
		s := inputs[i].Schema()
		needsCast := false
		exprs := make([]expr.Expr, len(s))
		for j := range s {
			exprs[j] = &expr.ColRef{Idx: j, Typ: s[j].Type, Name: s[j].Name}
			if s[j].Type != common[j] {
				exprs[j] = &expr.CastExpr{X: exprs[j], To: common[j]}
				needsCast = true
			}
		}
		if needsCast {
			names := make([]string, len(first))
			for j := range first {
				names[j] = first[j].Name
			}
			inputs[i] = &ProjectNode{Child: inputs[i], Exprs: exprs, Names: names}
		}
	}
	return &UnionAllNode{Inputs: inputs}, nil
}

func (b *Binder) bindSingleSelect(stmt *sql.SelectStmt) (Node, error) {
	var (
		cur       Node
		fromScope *scope
	)
	if stmt.From != nil {
		node, cols, err := b.bindFrom(stmt.From)
		if err != nil {
			return nil, err
		}
		cur = node
		fromScope = scopeFrom(cols)
	} else {
		cur = &ValuesNode{Rows: [][]types.Value{{}}}
		fromScope = &scope{}
	}

	if err := rejectWindows(stmt.Where, "WHERE"); err != nil {
		return nil, err
	}
	for _, g := range stmt.GroupBy {
		if err := rejectWindows(g, "GROUP BY"); err != nil {
			return nil, err
		}
	}
	if err := rejectWindows(stmt.Having, "HAVING"); err != nil {
		return nil, err
	}

	if stmt.Where != nil {
		cond, err := b.bindExpr(stmt.Where, fromScope, nil)
		if err != nil {
			return nil, err
		}
		cond, err = b.asBoolean(cond, "WHERE")
		if err != nil {
			return nil, err
		}
		cur = &FilterNode{Child: cur, Cond: cond}
	}

	// Expand stars in the select list.
	var selExprs []sql.SelectExpr
	for _, se := range stmt.Exprs {
		if !se.Star {
			selExprs = append(selExprs, se)
			continue
		}
		matched := false
		for _, c := range fromScope.cols {
			if se.TableStar != "" && !strings.EqualFold(c.Table, se.TableStar) {
				continue
			}
			matched = true
			selExprs = append(selExprs, sql.SelectExpr{
				Expr: &sql.ColumnRef{Table: c.Table, Name: c.Name},
			})
		}
		if !matched {
			if se.TableStar != "" {
				return nil, fmt.Errorf("table %q not found for %s.*", se.TableStar, se.TableStar)
			}
			return nil, fmt.Errorf("SELECT * with no FROM columns")
		}
	}

	// Aggregate handling.
	var aggCalls []*sql.FuncCall
	for _, se := range selExprs {
		aggCalls = collectAggs(se.Expr, aggCalls)
	}
	if stmt.Having != nil {
		aggCalls = collectAggs(stmt.Having, aggCalls)
	}
	isAgg := len(aggCalls) > 0 || len(stmt.GroupBy) > 0

	var subst map[string]expr.Expr
	outScope := fromScope
	if isAgg {
		subst = make(map[string]expr.Expr)
		agg := &AggNode{Child: cur}
		var aggScopeCols []scopeCol
		for _, g := range stmt.GroupBy {
			// GROUP BY <ordinal> or <output alias> resolves via the
			// select list first.
			gAST := resolveGroupRef(g, selExprs)
			bound, err := b.bindExpr(gAST, fromScope, nil)
			if err != nil {
				return nil, err
			}
			name := exprName(gAST)
			agg.GroupBy = append(agg.GroupBy, bound)
			agg.Names = append(agg.Names, name)
			idx := len(agg.GroupBy) - 1
			subst[astKey(gAST)] = &expr.ColRef{Idx: idx, Typ: bound.Type(), Name: name}
			var tbl string
			if cr, ok := gAST.(*sql.ColumnRef); ok {
				tbl = cr.Table
				if tbl == "" {
					if ci, _, err := fromScope.lookup("", cr.Name); err == nil {
						tbl = fromScope.cols[ci].Table
					}
				}
			}
			aggScopeCols = append(aggScopeCols, scopeCol{Table: tbl, Name: name, Type: bound.Type()})
		}
		// Deduplicate aggregate calls by AST rendering.
		seen := make(map[string]bool)
		for _, call := range aggCalls {
			k := astKey(call)
			if seen[k] {
				continue
			}
			seen[k] = true
			spec, err := b.bindAgg(call, fromScope)
			if err != nil {
				return nil, err
			}
			agg.Aggs = append(agg.Aggs, spec)
			idx := len(agg.GroupBy) + len(agg.Aggs) - 1
			subst[k] = &expr.ColRef{Idx: idx, Typ: spec.Type, Name: spec.Name}
			aggScopeCols = append(aggScopeCols, scopeCol{Name: spec.Name, Type: spec.Type})
		}
		cur = agg
		outScope = &scope{cols: aggScopeCols}
	}

	if stmt.Having != nil {
		if !isAgg {
			return nil, fmt.Errorf("HAVING requires GROUP BY or aggregates")
		}
		cond, err := b.bindExpr(stmt.Having, outScope, subst)
		if err != nil {
			return nil, err
		}
		cond, err = b.asBoolean(cond, "HAVING")
		if err != nil {
			return nil, err
		}
		cur = &FilterNode{Child: cur, Cond: cond}
	}

	// Window functions evaluate over the (possibly grouped and
	// HAVING-filtered) rows, before the projection, DISTINCT and ORDER
	// BY. Calls are lifted into WindowNodes appending result columns;
	// subst rewires the projection (and hidden ORDER BY columns) to them.
	var winCalls []*sql.FuncCall
	for _, se := range selExprs {
		winCalls = collectWindows(se.Expr, winCalls)
	}
	for _, item := range stmt.OrderBy {
		winCalls = collectWindows(item.Expr, winCalls)
	}
	if len(winCalls) > 0 {
		if subst == nil {
			subst = make(map[string]expr.Expr)
		}
		lifted, err := b.bindWindows(cur, winCalls, outScope, subst)
		if err != nil {
			return nil, err
		}
		cur = lifted
	}

	// Projection. projScope keeps the source table alias of plain
	// column references so ORDER BY can still resolve t.col.
	proj := &ProjectNode{Child: cur}
	var projScope []scopeCol
	for _, se := range selExprs {
		bound, err := b.bindExpr(se.Expr, outScope, subst)
		if err != nil {
			return nil, err
		}
		name := se.Alias
		if name == "" {
			name = exprName(se.Expr)
		}
		var tbl string
		if cr, ok := se.Expr.(*sql.ColumnRef); ok {
			tbl = cr.Table
			if tbl == "" {
				if ci, _, err := outScope.lookup("", cr.Name); err == nil {
					tbl = outScope.cols[ci].Table
				}
			}
		}
		proj.Exprs = append(proj.Exprs, bound)
		proj.Names = append(proj.Names, name)
		projScope = append(projScope, scopeCol{Table: tbl, Name: name, Type: bound.Type()})
	}
	cur = proj

	if stmt.Distinct {
		agg := &AggNode{Child: cur}
		for i, ci := range proj.Schema() {
			agg.GroupBy = append(agg.GroupBy, &expr.ColRef{Idx: i, Typ: ci.Type, Name: ci.Name})
			agg.Names = append(agg.Names, ci.Name)
		}
		cur = agg
	}

	if len(stmt.OrderBy) > 0 {
		outCols := cur.Schema()
		sortScope := &scope{cols: projScope}
		if len(projScope) != len(outCols) { // DISTINCT rewrapped the schema
			sortScope = scopeFrom(outCols)
		}
		visible := len(outCols)
		hiddenAllowed := !stmt.Distinct && cur == Node(proj)
		sort := &SortNode{Child: cur}
		for _, item := range stmt.OrderBy {
			var key expr.Expr
			// ORDER BY <ordinal>
			if lit, ok := item.Expr.(*sql.Literal); ok && !lit.Val.Null &&
				(lit.Val.Type == types.Integer || lit.Val.Type == types.BigInt) {
				ord := int(lit.Val.I64)
				if ord < 1 || ord > visible {
					return nil, fmt.Errorf("ORDER BY position %d is out of range", ord)
				}
				key = &expr.ColRef{Idx: ord - 1, Typ: outCols[ord-1].Type, Name: outCols[ord-1].Name}
			} else {
				bound, err := b.bindExpr(item.Expr, sortScope, nil)
				if err != nil {
					if !hiddenAllowed {
						return nil, err
					}
					// Not an output column: bind it over the
					// pre-projection scope and carry it as a hidden
					// projection column that is stripped after the sort.
					hidden, herr := b.bindExpr(item.Expr, outScope, subst)
					if herr != nil {
						return nil, err // report the original error
					}
					proj.Exprs = append(proj.Exprs, hidden)
					proj.Names = append(proj.Names, exprName(item.Expr))
					bound = &expr.ColRef{Idx: len(proj.Exprs) - 1, Typ: hidden.Type(), Name: exprName(item.Expr)}
				}
				key = bound
			}
			nullsFirst := item.Desc // SQL default: NULLS LAST asc, FIRST desc
			if item.NullsSet {
				nullsFirst = !item.NullsLast
			}
			sort.Keys = append(sort.Keys, SortKey{Expr: key, Desc: item.Desc, NullsFirst: nullsFirst})
		}
		cur = sort
		if len(proj.Exprs) > visible {
			// Strip hidden sort columns.
			strip := &ProjectNode{Child: cur}
			for i := 0; i < visible; i++ {
				strip.Exprs = append(strip.Exprs, &expr.ColRef{Idx: i, Typ: outCols[i].Type, Name: outCols[i].Name})
				strip.Names = append(strip.Names, outCols[i].Name)
			}
			cur = strip
		}
	}

	if stmt.Limit != nil || stmt.Offset != nil {
		limit := int64(-1)
		offset := int64(0)
		if stmt.Limit != nil {
			v, err := b.constInt(stmt.Limit, "LIMIT")
			if err != nil {
				return nil, err
			}
			limit = v
		}
		if stmt.Offset != nil {
			v, err := b.constInt(stmt.Offset, "OFFSET")
			if err != nil {
				return nil, err
			}
			offset = v
		}
		cur = &LimitNode{Child: cur, Limit: limit, Offset: offset}
	}
	return cur, nil
}

// resolveGroupRef maps GROUP BY ordinals and output aliases back to the
// underlying select expressions.
func resolveGroupRef(g sql.Expr, selExprs []sql.SelectExpr) sql.Expr {
	if lit, ok := g.(*sql.Literal); ok && !lit.Val.Null &&
		(lit.Val.Type == types.Integer || lit.Val.Type == types.BigInt) {
		ord := int(lit.Val.I64)
		if ord >= 1 && ord <= len(selExprs) && selExprs[ord-1].Expr != nil {
			return selExprs[ord-1].Expr
		}
	}
	if cr, ok := g.(*sql.ColumnRef); ok && cr.Table == "" {
		for _, se := range selExprs {
			if se.Alias != "" && strings.EqualFold(se.Alias, cr.Name) && se.Expr != nil {
				return se.Expr
			}
		}
	}
	return g
}

func (b *Binder) constInt(e sql.Expr, clause string) (int64, error) {
	bound, err := b.bindExpr(e, &scope{}, nil)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", clause, err)
	}
	v, err := EvalConst(bound)
	if err != nil {
		return 0, fmt.Errorf("%s must be a constant: %w", clause, err)
	}
	if v.Null {
		return 0, fmt.Errorf("%s must not be NULL", clause)
	}
	return v.AsInt(), nil
}

// asBoolean coerces a predicate to BOOLEAN.
func (b *Binder) asBoolean(e expr.Expr, clause string) (expr.Expr, error) {
	switch e.Type() {
	case types.Boolean:
		return e, nil
	case types.Null:
		return &expr.CastExpr{X: e, To: types.Boolean}, nil
	default:
		return nil, fmt.Errorf("%s clause must be BOOLEAN, got %s", clause, e.Type())
	}
}

// bindFrom binds a FROM item, returning the plan and the scope columns
// (which carry table aliases the node schema may not).
func (b *Binder) bindFrom(ref sql.TableRef) (Node, []ColInfo, error) {
	switch ref := ref.(type) {
	case *sql.BaseTable:
		alias := ref.Alias
		if alias == "" {
			alias = ref.Name
		}
		if v, ok := b.Cat.View(ref.Name); ok {
			if b.viewDepth > 16 {
				return nil, nil, fmt.Errorf("view nesting too deep (recursive view %q?)", ref.Name)
			}
			stmt, err := sql.ParseOne(v.SQL)
			if err != nil {
				return nil, nil, fmt.Errorf("view %q: %w", v.Name, err)
			}
			sel, ok := stmt.(*sql.SelectStmt)
			if !ok {
				return nil, nil, fmt.Errorf("view %q is not a SELECT", v.Name)
			}
			b.viewDepth++
			node, err := b.BindSelect(sel)
			b.viewDepth--
			if err != nil {
				return nil, nil, fmt.Errorf("view %q: %w", v.Name, err)
			}
			cols := renameSchema(node.Schema(), alias)
			return node, cols, nil
		}
		tbl, err := b.Cat.Table(ref.Name)
		if err != nil {
			return nil, nil, err
		}
		cols := make([]int, len(tbl.Columns))
		for i := range cols {
			cols[i] = i
		}
		node := &ScanNode{Table: tbl, TableAlias: alias, Columns: cols}
		return node, node.Schema(), nil
	case *sql.SubqueryRef:
		node, err := b.BindSelect(ref.Select)
		if err != nil {
			return nil, nil, err
		}
		return node, renameSchema(node.Schema(), ref.Alias), nil
	case *sql.JoinRef:
		left, lcols, err := b.bindFrom(ref.Left)
		if err != nil {
			return nil, nil, err
		}
		right, rcols, err := b.bindFrom(ref.Right)
		if err != nil {
			return nil, nil, err
		}
		combined := append(append([]ColInfo{}, lcols...), rcols...)
		join := &JoinNode{Left: left, Right: right}
		switch ref.Type {
		case sql.JoinInner:
			join.Type = JoinInner
		case sql.JoinLeft:
			join.Type = JoinLeft
		case sql.JoinCross:
			join.Type = JoinCross
		}
		if ref.On != nil {
			if err := b.bindJoinCondition(join, ref.On, lcols, rcols, combined); err != nil {
				return nil, nil, err
			}
		}
		return join, combined, nil
	default:
		return nil, nil, fmt.Errorf("unsupported FROM clause")
	}
}

func renameSchema(cols []ColInfo, alias string) []ColInfo {
	out := make([]ColInfo, len(cols))
	for i, c := range cols {
		out[i] = ColInfo{Table: alias, Name: c.Name, Type: c.Type}
	}
	return out
}

// bindJoinCondition splits the ON expression into equi-key pairs (bound
// over each side's schema) and a residual condition over the combined
// schema.
func (b *Binder) bindJoinCondition(join *JoinNode, on sql.Expr, lcols, rcols, combined []ColInfo) error {
	lScope, rScope, cScope := scopeFrom(lcols), scopeFrom(rcols), scopeFrom(combined)
	var residual []sql.Expr
	for _, conj := range splitConjuncts(on) {
		bin, ok := conj.(*sql.Binary)
		if ok && bin.Op == "=" {
			if lk, rk, ok := b.tryKeyPair(bin.L, bin.R, lScope, rScope); ok {
				join.LeftKeys = append(join.LeftKeys, lk)
				join.RightKeys = append(join.RightKeys, rk)
				continue
			}
			if lk, rk, ok := b.tryKeyPair(bin.R, bin.L, lScope, rScope); ok {
				join.LeftKeys = append(join.LeftKeys, lk)
				join.RightKeys = append(join.RightKeys, rk)
				continue
			}
		}
		residual = append(residual, conj)
	}
	if len(residual) > 0 {
		cond, err := b.bindExpr(andAll(residual), cScope, nil)
		if err != nil {
			return err
		}
		cond, err = b.asBoolean(cond, "JOIN ON")
		if err != nil {
			return err
		}
		join.Extra = cond
	}
	return nil
}

// tryKeyPair attempts to bind l over the left scope and r over the right
// scope, casting both to a common type.
func (b *Binder) tryKeyPair(l, r sql.Expr, lScope, rScope *scope) (expr.Expr, expr.Expr, bool) {
	lk, err := b.bindExpr(l, lScope, nil)
	if err != nil {
		return nil, nil, false
	}
	rk, err := b.bindExpr(r, rScope, nil)
	if err != nil {
		return nil, nil, false
	}
	ct, err := types.CommonType(lk.Type(), rk.Type())
	if err != nil {
		return nil, nil, false
	}
	if lk.Type() != ct {
		lk = &expr.CastExpr{X: lk, To: ct}
	}
	if rk.Type() != ct {
		rk = &expr.CastExpr{X: rk, To: ct}
	}
	return lk, rk, true
}

func splitConjuncts(e sql.Expr) []sql.Expr {
	if bin, ok := e.(*sql.Binary); ok && bin.Op == "AND" {
		return append(splitConjuncts(bin.L), splitConjuncts(bin.R)...)
	}
	return []sql.Expr{e}
}

func andAll(es []sql.Expr) sql.Expr {
	cur := es[0]
	for _, e := range es[1:] {
		cur = &sql.Binary{Op: "AND", L: cur, R: e}
	}
	return cur
}

// ---- aggregates ----

var aggFuncs = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
}

func collectAggs(e sql.Expr, acc []*sql.FuncCall) []*sql.FuncCall {
	switch e := e.(type) {
	case *sql.FuncCall:
		if aggFuncs[e.Name] && e.Over == nil {
			return append(acc, e)
		}
		for _, a := range e.Args {
			acc = collectAggs(a, acc)
		}
		if e.Over != nil {
			// A window call is not itself an aggregate, but aggregates may
			// appear in its arguments, partitioning and ordering (they
			// evaluate first, over the grouped rows).
			for _, p := range e.Over.PartitionBy {
				acc = collectAggs(p, acc)
			}
			for _, o := range e.Over.OrderBy {
				acc = collectAggs(o.Expr, acc)
			}
		}
	case *sql.Unary:
		acc = collectAggs(e.X, acc)
	case *sql.Binary:
		acc = collectAggs(e.L, acc)
		acc = collectAggs(e.R, acc)
	case *sql.IsNull:
		acc = collectAggs(e.X, acc)
	case *sql.Between:
		acc = collectAggs(e.X, acc)
		acc = collectAggs(e.Lo, acc)
		acc = collectAggs(e.Hi, acc)
	case *sql.InList:
		acc = collectAggs(e.X, acc)
		for _, x := range e.List {
			acc = collectAggs(x, acc)
		}
	case *sql.Like:
		acc = collectAggs(e.X, acc)
		acc = collectAggs(e.Pattern, acc)
	case *sql.Case:
		if e.Operand != nil {
			acc = collectAggs(e.Operand, acc)
		}
		for _, w := range e.Whens {
			acc = collectAggs(w.Cond, acc)
			acc = collectAggs(w.Result, acc)
		}
		if e.Else != nil {
			acc = collectAggs(e.Else, acc)
		}
	case *sql.Cast:
		acc = collectAggs(e.X, acc)
	}
	return acc
}

func (b *Binder) bindAgg(call *sql.FuncCall, sc *scope) (AggSpec, error) {
	spec := AggSpec{Func: call.Name, Distinct: call.Distinct, Name: astKey(call)}
	if call.Star {
		if call.Name != "count" {
			return spec, fmt.Errorf("%s(*) is not defined", call.Name)
		}
		spec.Type = types.BigInt
		return spec, nil
	}
	if len(call.Args) != 1 {
		return spec, fmt.Errorf("%s takes exactly one argument", call.Name)
	}
	arg, err := b.bindExpr(call.Args[0], sc, nil)
	if err != nil {
		return spec, err
	}
	// Nested aggregates are invalid.
	if len(collectAggs(call.Args[0], nil)) > 0 {
		return spec, fmt.Errorf("aggregate calls cannot be nested")
	}
	spec.Arg = arg
	switch call.Name {
	case "count":
		spec.Type = types.BigInt
	case "sum":
		switch arg.Type() {
		case types.Integer, types.BigInt, types.Boolean:
			spec.Type = types.BigInt
		case types.Double:
			spec.Type = types.Double
		default:
			return spec, fmt.Errorf("sum(%s) is not defined", arg.Type())
		}
	case "avg":
		if !arg.Type().IsNumeric() {
			return spec, fmt.Errorf("avg(%s) is not defined", arg.Type())
		}
		spec.Type = types.Double
	case "min", "max":
		spec.Type = arg.Type()
	}
	return spec, nil
}

// ---- expression binding ----

func (b *Binder) bindExpr(e sql.Expr, sc *scope, subst map[string]expr.Expr) (expr.Expr, error) {
	if subst != nil {
		if mapped, ok := subst[astKey(e)]; ok {
			return mapped, nil
		}
		if fc, ok := e.(*sql.FuncCall); ok && aggFuncs[fc.Name] && fc.Over == nil {
			return nil, fmt.Errorf("aggregate %s not found in aggregation (internal)", fc.Name)
		}
	}
	switch e := e.(type) {
	case *sql.Literal:
		return &expr.Const{Val: e.Val}, nil
	case *sql.Param:
		if e.Index >= len(b.Params) {
			return nil, fmt.Errorf("parameter %d not provided (%d given)", e.Index+1, len(b.Params))
		}
		return &expr.Const{Val: b.Params[e.Index]}, nil
	case *sql.ColumnRef:
		idx, typ, err := sc.lookup(e.Table, e.Name)
		if err != nil {
			if subst != nil {
				return nil, fmt.Errorf("%v (columns used outside aggregates must appear in GROUP BY)", err)
			}
			return nil, err
		}
		name := e.Name
		if e.Table != "" {
			name = e.Table + "." + e.Name
		}
		return &expr.ColRef{Idx: idx, Typ: typ, Name: name}, nil
	case *sql.Unary:
		x, err := b.bindExpr(e.X, sc, subst)
		if err != nil {
			return nil, err
		}
		if e.Op == "NOT" {
			x, err = b.asBoolean(x, "NOT")
			if err != nil {
				return nil, err
			}
			return &expr.Not{X: x}, nil
		}
		if !x.Type().IsNumeric() {
			return nil, fmt.Errorf("cannot negate %s", x.Type())
		}
		return &expr.Neg{X: x}, nil
	case *sql.Binary:
		return b.bindBinary(e, sc, subst)
	case *sql.IsNull:
		x, err := b.bindExpr(e.X, sc, subst)
		if err != nil {
			return nil, err
		}
		return &expr.IsNull{X: x, Not: e.Not}, nil
	case *sql.Between:
		lo := &sql.Binary{Op: ">=", L: e.X, R: e.Lo}
		hi := &sql.Binary{Op: "<=", L: e.X, R: e.Hi}
		both := &sql.Binary{Op: "AND", L: lo, R: hi}
		if e.Not {
			return b.bindExpr(&sql.Unary{Op: "NOT", X: both}, sc, subst)
		}
		return b.bindExpr(both, sc, subst)
	case *sql.InList:
		return b.bindIn(e, sc, subst)
	case *sql.Like:
		x, err := b.bindExpr(e.X, sc, subst)
		if err != nil {
			return nil, err
		}
		pat, err := b.bindExpr(e.Pattern, sc, subst)
		if err != nil {
			return nil, err
		}
		if x.Type() != types.Varchar || pat.Type() != types.Varchar {
			return nil, fmt.Errorf("LIKE requires VARCHAR operands")
		}
		return &expr.LikeExpr{X: x, Pattern: pat, Not: e.Not}, nil
	case *sql.Case:
		return b.bindCase(e, sc, subst)
	case *sql.Cast:
		x, err := b.bindExpr(e.X, sc, subst)
		if err != nil {
			return nil, err
		}
		return &expr.CastExpr{X: x, To: e.To}, nil
	case *sql.FuncCall:
		if e.Over != nil {
			return nil, fmt.Errorf("window functions are only allowed in the SELECT list and ORDER BY")
		}
		if windowOnlyFuncs[e.Name] {
			return nil, fmt.Errorf("%s requires an OVER clause", e.Name)
		}
		if aggFuncs[e.Name] {
			return nil, fmt.Errorf("aggregate function %s is not allowed here", e.Name)
		}
		args := make([]expr.Expr, len(e.Args))
		argTypes := make([]types.Type, len(e.Args))
		for i, a := range e.Args {
			bound, err := b.bindExpr(a, sc, subst)
			if err != nil {
				return nil, err
			}
			args[i] = bound
			argTypes[i] = bound.Type()
		}
		typ, err := expr.FuncResultType(e.Name, argTypes)
		if err != nil {
			return nil, err
		}
		// Homogenize variadic comparisons.
		switch e.Name {
		case "coalesce", "greatest", "least":
			for i := range args {
				if args[i].Type() != typ {
					args[i] = &expr.CastExpr{X: args[i], To: typ}
				}
			}
		case "concat":
			for i := range args {
				if args[i].Type() != types.Varchar {
					args[i] = &expr.CastExpr{X: args[i], To: types.Varchar}
				}
			}
		}
		return &expr.ScalarFunc{Name: e.Name, Args: args, Typ: typ}, nil
	default:
		return nil, fmt.Errorf("unsupported expression")
	}
}

func (b *Binder) bindBinary(e *sql.Binary, sc *scope, subst map[string]expr.Expr) (expr.Expr, error) {
	l, err := b.bindExpr(e.L, sc, subst)
	if err != nil {
		return nil, err
	}
	r, err := b.bindExpr(e.R, sc, subst)
	if err != nil {
		return nil, err
	}
	switch e.Op {
	case "AND", "OR":
		l, err = b.asBoolean(l, e.Op)
		if err != nil {
			return nil, err
		}
		r, err = b.asBoolean(r, e.Op)
		if err != nil {
			return nil, err
		}
		op := expr.OpAnd
		if e.Op == "OR" {
			op = expr.OpOr
		}
		return &expr.Logic{Op: op, L: l, R: r}, nil
	case "||":
		if l.Type() != types.Varchar {
			l = &expr.CastExpr{X: l, To: types.Varchar}
		}
		if r.Type() != types.Varchar {
			r = &expr.CastExpr{X: r, To: types.Varchar}
		}
		return &expr.ScalarFunc{Name: "concat", Args: []expr.Expr{l, r}, Typ: types.Varchar}, nil
	case "=", "<>", "<", "<=", ">", ">=":
		ct, err := types.CommonType(l.Type(), r.Type())
		if err != nil {
			return nil, err
		}
		if l.Type() != ct {
			l = &expr.CastExpr{X: l, To: ct}
		}
		if r.Type() != ct {
			r = &expr.CastExpr{X: r, To: ct}
		}
		var op expr.CmpOp
		switch e.Op {
		case "=":
			op = expr.CmpEq
		case "<>":
			op = expr.CmpNe
		case "<":
			op = expr.CmpLt
		case "<=":
			op = expr.CmpLe
		case ">":
			op = expr.CmpGt
		default:
			op = expr.CmpGe
		}
		return &expr.Compare{Op: op, L: l, R: r}, nil
	case "+", "-", "*", "/", "%":
		ct, err := types.CommonType(l.Type(), r.Type())
		if err != nil {
			return nil, err
		}
		if !ct.IsNumeric() && ct != types.Timestamp {
			return nil, fmt.Errorf("operator %s is not defined for %s", e.Op, ct)
		}
		if e.Op == "/" {
			ct = types.Double
		}
		if ct == types.Boolean {
			ct = types.Integer
		}
		if l.Type() != ct {
			l = &expr.CastExpr{X: l, To: ct}
		}
		if r.Type() != ct {
			r = &expr.CastExpr{X: r, To: ct}
		}
		var op expr.ArithOp
		switch e.Op {
		case "+":
			op = expr.OpAdd
		case "-":
			op = expr.OpSub
		case "*":
			op = expr.OpMul
		case "/":
			op = expr.OpDiv
		default:
			op = expr.OpMod
		}
		return &expr.Arith{Op: op, L: l, R: r, Typ: ct}, nil
	default:
		return nil, fmt.Errorf("unsupported operator %q", e.Op)
	}
}

func (b *Binder) bindIn(e *sql.InList, sc *scope, subst map[string]expr.Expr) (expr.Expr, error) {
	x, err := b.bindExpr(e.X, sc, subst)
	if err != nil {
		return nil, err
	}
	// Constant list → hash-set lookup.
	allConst := true
	vals := make([]types.Value, 0, len(e.List))
	for _, item := range e.List {
		bound, err := b.bindExpr(item, sc, subst)
		if err != nil {
			return nil, err
		}
		v, cerr := EvalConst(bound)
		if cerr != nil {
			allConst = false
			break
		}
		cv, cerr := v.Cast(x.Type())
		if cerr != nil {
			return nil, cerr
		}
		vals = append(vals, cv)
	}
	if allConst {
		return expr.NewInConst(x, vals, e.Not), nil
	}
	// Fall back to OR-chain of equalities.
	var cur sql.Expr
	for _, item := range e.List {
		eq := sql.Expr(&sql.Binary{Op: "=", L: e.X, R: item})
		if cur == nil {
			cur = eq
		} else {
			cur = &sql.Binary{Op: "OR", L: cur, R: eq}
		}
	}
	if e.Not {
		cur = &sql.Unary{Op: "NOT", X: cur}
	}
	return b.bindExpr(cur, sc, subst)
}

func (b *Binder) bindCase(e *sql.Case, sc *scope, subst map[string]expr.Expr) (expr.Expr, error) {
	// Desugar operand form: CASE x WHEN v ... → CASE WHEN x = v ...
	whens := e.Whens
	if e.Operand != nil {
		whens = make([]sql.When, len(e.Whens))
		for i, w := range e.Whens {
			whens[i] = sql.When{
				Cond:   &sql.Binary{Op: "=", L: e.Operand, R: w.Cond},
				Result: w.Result,
			}
		}
	}
	out := &expr.CaseExpr{}
	resultType := types.Null
	var conds, results []expr.Expr
	for _, w := range whens {
		cond, err := b.bindExpr(w.Cond, sc, subst)
		if err != nil {
			return nil, err
		}
		cond, err = b.asBoolean(cond, "CASE WHEN")
		if err != nil {
			return nil, err
		}
		res, err := b.bindExpr(w.Result, sc, subst)
		if err != nil {
			return nil, err
		}
		ct, err := types.CommonType(resultType, res.Type())
		if err != nil {
			return nil, err
		}
		resultType = ct
		conds = append(conds, cond)
		results = append(results, res)
	}
	var elseE expr.Expr
	if e.Else != nil {
		bound, err := b.bindExpr(e.Else, sc, subst)
		if err != nil {
			return nil, err
		}
		ct, err := types.CommonType(resultType, bound.Type())
		if err != nil {
			return nil, err
		}
		resultType = ct
		elseE = bound
	}
	if resultType == types.Null {
		resultType = types.Varchar
	}
	out.Typ = resultType
	for i := range conds {
		if results[i].Type() != resultType {
			results[i] = &expr.CastExpr{X: results[i], To: resultType}
		}
		out.Whens = append(out.Whens, expr.CaseWhen{Cond: conds[i], Result: results[i]})
	}
	if elseE != nil {
		if elseE.Type() != resultType {
			elseE = &expr.CastExpr{X: elseE, To: resultType}
		}
		out.Else = elseE
	}
	return out, nil
}

// EvalConst evaluates a bound expression that references no columns,
// returning its value.
func EvalConst(e expr.Expr) (types.Value, error) {
	one := &vector.Chunk{}
	one.SetLen(1)
	v, err := e.Eval(one)
	if err != nil {
		return types.Value{}, err
	}
	return v.Get(0), nil
}

// exprName derives a display name for an unaliased select expression.
func exprName(e sql.Expr) string {
	if cr, ok := e.(*sql.ColumnRef); ok {
		return cr.Name
	}
	return astKey(e)
}

// astKey renders an AST expression canonically, used for GROUP BY /
// aggregate matching and display names.
func astKey(e sql.Expr) string {
	switch e := e.(type) {
	case *sql.Literal:
		if e.Val.Type == types.Varchar {
			return "'" + e.Val.Str + "'"
		}
		return e.Val.String()
	case *sql.Param:
		return fmt.Sprintf("?%d", e.Index+1)
	case *sql.ColumnRef:
		if e.Table != "" {
			return strings.ToLower(e.Table) + "." + strings.ToLower(e.Name)
		}
		return strings.ToLower(e.Name)
	case *sql.Unary:
		return e.Op + " " + astKey(e.X)
	case *sql.Binary:
		return "(" + astKey(e.L) + " " + e.Op + " " + astKey(e.R) + ")"
	case *sql.IsNull:
		if e.Not {
			return astKey(e.X) + " IS NOT NULL"
		}
		return astKey(e.X) + " IS NULL"
	case *sql.Between:
		n := ""
		if e.Not {
			n = "NOT "
		}
		return astKey(e.X) + " " + n + "BETWEEN " + astKey(e.Lo) + " AND " + astKey(e.Hi)
	case *sql.InList:
		parts := make([]string, len(e.List))
		for i, x := range e.List {
			parts[i] = astKey(x)
		}
		n := ""
		if e.Not {
			n = "NOT "
		}
		return astKey(e.X) + " " + n + "IN (" + strings.Join(parts, ", ") + ")"
	case *sql.Like:
		n := ""
		if e.Not {
			n = "NOT "
		}
		return astKey(e.X) + " " + n + "LIKE " + astKey(e.Pattern)
	case *sql.Case:
		var sb strings.Builder
		sb.WriteString("CASE")
		if e.Operand != nil {
			sb.WriteString(" " + astKey(e.Operand))
		}
		for _, w := range e.Whens {
			sb.WriteString(" WHEN " + astKey(w.Cond) + " THEN " + astKey(w.Result))
		}
		if e.Else != nil {
			sb.WriteString(" ELSE " + astKey(e.Else))
		}
		sb.WriteString(" END")
		return sb.String()
	case *sql.Cast:
		return "CAST(" + astKey(e.X) + " AS " + e.To.String() + ")"
	case *sql.FuncCall:
		var call string
		if e.Star {
			call = e.Name + "(*)"
		} else {
			parts := make([]string, len(e.Args))
			for i, a := range e.Args {
				parts[i] = astKey(a)
			}
			d := ""
			if e.Distinct {
				d = "DISTINCT "
			}
			call = e.Name + "(" + d + strings.Join(parts, ", ") + ")"
		}
		if e.Over != nil {
			call += " OVER (" + windowSpecKey(e.Over) + ")"
		}
		return call
	default:
		return "?expr?"
	}
}
