package plan

import (
	"fmt"

	"repro/internal/expr"
)

// rewriteExpr rebuilds an expression bottom-up, applying f to every node
// after its children have been rewritten.
func rewriteExpr(e expr.Expr, f func(expr.Expr) expr.Expr) expr.Expr {
	switch e := e.(type) {
	case *expr.ColRef, *expr.Const:
		return f(e)
	case *expr.CastExpr:
		return f(&expr.CastExpr{X: rewriteExpr(e.X, f), To: e.To})
	case *expr.Compare:
		return f(&expr.Compare{Op: e.Op, L: rewriteExpr(e.L, f), R: rewriteExpr(e.R, f)})
	case *expr.Arith:
		return f(&expr.Arith{Op: e.Op, L: rewriteExpr(e.L, f), R: rewriteExpr(e.R, f), Typ: e.Typ})
	case *expr.Neg:
		return f(&expr.Neg{X: rewriteExpr(e.X, f)})
	case *expr.Logic:
		return f(&expr.Logic{Op: e.Op, L: rewriteExpr(e.L, f), R: rewriteExpr(e.R, f)})
	case *expr.Not:
		return f(&expr.Not{X: rewriteExpr(e.X, f)})
	case *expr.IsNull:
		return f(&expr.IsNull{X: rewriteExpr(e.X, f), Not: e.Not})
	case *expr.LikeExpr:
		return f(&expr.LikeExpr{X: rewriteExpr(e.X, f), Pattern: rewriteExpr(e.Pattern, f), Not: e.Not})
	case *expr.CaseExpr:
		out := &expr.CaseExpr{Typ: e.Typ}
		for _, w := range e.Whens {
			out.Whens = append(out.Whens, expr.CaseWhen{
				Cond:   rewriteExpr(w.Cond, f),
				Result: rewriteExpr(w.Result, f),
			})
		}
		if e.Else != nil {
			out.Else = rewriteExpr(e.Else, f)
		}
		return f(out)
	case *expr.InConst:
		clone := *e
		clone.X = rewriteExpr(e.X, f)
		return f(&clone)
	case *expr.ScalarFunc:
		out := &expr.ScalarFunc{Name: e.Name, Typ: e.Typ}
		for _, a := range e.Args {
			out.Args = append(out.Args, rewriteExpr(a, f))
		}
		return f(out)
	default:
		return f(e)
	}
}

// usedCols marks every column index the expression references.
func usedCols(e expr.Expr, mark []bool) {
	rewriteExpr(e, func(x expr.Expr) expr.Expr {
		if cr, ok := x.(*expr.ColRef); ok {
			if cr.Idx < len(mark) {
				mark[cr.Idx] = true
			}
		}
		return x
	})
}

// remapExpr rewrites column references through oldToNew. It panics on a
// reference to a pruned column, which would be a planner bug.
func remapExpr(e expr.Expr, oldToNew []int) expr.Expr {
	return rewriteExpr(e, func(x expr.Expr) expr.Expr {
		if cr, ok := x.(*expr.ColRef); ok {
			if cr.Idx >= len(oldToNew) || oldToNew[cr.Idx] < 0 {
				panic(fmt.Sprintf("plan: column #%d pruned while still referenced", cr.Idx))
			}
			return &expr.ColRef{Idx: oldToNew[cr.Idx], Typ: cr.Typ, Name: cr.Name}
		}
		return x
	})
}

// isConstExpr reports whether the expression references no columns.
func isConstExpr(e expr.Expr) bool {
	constant := true
	rewriteExpr(e, func(x expr.Expr) expr.Expr {
		if _, ok := x.(*expr.ColRef); ok {
			constant = false
		}
		return x
	})
	return constant
}

// foldExpr replaces constant subtrees with literal constants. Subtrees
// whose evaluation fails (e.g. division by zero) are left intact so the
// error surfaces at execution time with proper context.
func foldExpr(e expr.Expr) expr.Expr {
	return rewriteExpr(e, func(x expr.Expr) expr.Expr {
		switch x.(type) {
		case *expr.Const, *expr.ColRef:
			return x
		}
		if !isConstExpr(x) {
			return x
		}
		v, err := EvalConst(x)
		if err != nil {
			return x
		}
		if v.Type != x.Type() && !v.Null {
			cv, cerr := v.Cast(x.Type())
			if cerr != nil {
				return x
			}
			v = cv
		}
		if v.Null {
			v.Type = x.Type()
		}
		return &expr.Const{Val: v}
	})
}
