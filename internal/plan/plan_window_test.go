package plan

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/sql"
	"repro/internal/table"
	"repro/internal/types"
)

func windowCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	tbl := &catalog.Table{
		Name: "t",
		Columns: []catalog.Column{
			{Name: "id", Type: types.BigInt},
			{Name: "k", Type: types.Varchar},
			{Name: "ts", Type: types.BigInt},
			{Name: "v", Type: types.Double},
		},
	}
	tbl.Data = table.New(tbl.Types(), nil)
	if err := cat.CreateTable(tbl); err != nil {
		t.Fatal(err)
	}
	return cat
}

func bindWindowSelect(t *testing.T, src string) (Node, error) {
	t.Helper()
	stmt, err := sql.ParseOne(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	b := &Binder{Cat: windowCatalog(t)}
	return b.BindSelect(stmt.(*sql.SelectStmt))
}

func findWindow(n Node) *WindowNode {
	if w, ok := n.(*WindowNode); ok {
		return w
	}
	for _, c := range n.Children() {
		if w := findWindow(c); w != nil {
			return w
		}
	}
	return nil
}

func countWindows(n Node) int {
	count := 0
	if _, ok := n.(*WindowNode); ok {
		count++
	}
	for _, c := range n.Children() {
		count += countWindows(c)
	}
	return count
}

func TestBindWindowLifting(t *testing.T) {
	node, err := bindWindowSelect(t,
		"SELECT id, row_number() OVER (PARTITION BY k ORDER BY ts), sum(v) OVER (PARTITION BY k ORDER BY ts) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	// Same OVER spec: both functions share one WindowNode.
	if got := countWindows(node); got != 1 {
		t.Fatalf("window nodes = %d, want 1", got)
	}
	w := findWindow(node)
	if len(w.Funcs) != 2 || w.Funcs[0].Func != "row_number" || w.Funcs[1].Func != "sum" {
		t.Fatalf("funcs = %+v", w.Funcs)
	}
	if w.Funcs[1].Type != types.Double {
		t.Errorf("sum(DOUBLE) type = %v", w.Funcs[1].Type)
	}
	if len(w.PartitionBy) != 1 || len(w.OrderBy) != 1 {
		t.Errorf("partition/order = %d/%d", len(w.PartitionBy), len(w.OrderBy))
	}
	// The node appends the function columns after the child schema.
	child := len(w.Child.Schema())
	if got := len(w.Schema()); got != child+2 {
		t.Errorf("schema = %d cols, want child+2 = %d", got, child+2)
	}
}

func TestBindWindowDistinctSpecsStack(t *testing.T) {
	node, err := bindWindowSelect(t,
		"SELECT rank() OVER (ORDER BY ts), rank() OVER (PARTITION BY k ORDER BY ts) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if got := countWindows(node); got != 2 {
		t.Fatalf("window nodes = %d, want 2 (distinct OVER specs)", got)
	}
}

func TestBindWindowDedupIdenticalCalls(t *testing.T) {
	node, err := bindWindowSelect(t,
		"SELECT row_number() OVER (ORDER BY ts), row_number() OVER (ORDER BY ts) + 1 FROM t")
	if err != nil {
		t.Fatal(err)
	}
	w := findWindow(node)
	if len(w.Funcs) != 1 {
		t.Fatalf("identical calls not deduplicated: %d funcs", len(w.Funcs))
	}
}

func TestBindWindowWithAggregation(t *testing.T) {
	node, err := bindWindowSelect(t,
		"SELECT k, count(*), rank() OVER (ORDER BY count(*) DESC) FROM t GROUP BY k")
	if err != nil {
		t.Fatal(err)
	}
	w := findWindow(node)
	if w == nil {
		t.Fatal("no window node")
	}
	if _, ok := w.Child.(*AggNode); !ok {
		t.Fatalf("window child is %T, want *AggNode", w.Child)
	}
}

func TestBindWindowErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"SELECT id FROM t WHERE row_number() OVER (ORDER BY ts) > 1", "not allowed in WHERE"},
		{"SELECT count(*) FROM t GROUP BY rank() OVER (ORDER BY ts)", "not allowed in GROUP BY"},
		{"SELECT k, count(*) FROM t GROUP BY k HAVING rank() OVER (ORDER BY k) > 1", "not allowed in HAVING"},
		{"SELECT row_number() FROM t", "requires an OVER clause"},
		{"SELECT rank() OVER (ORDER BY rank() OVER (ORDER BY ts)) FROM t", "cannot be nested"},
		{"SELECT sum(DISTINCT v) OVER (ORDER BY ts) FROM t", "DISTINCT is not supported"},
		{"SELECT upper(k) OVER (ORDER BY ts) FROM t", "not a window function"},
		{"SELECT sum(v) OVER (ORDER BY ts ROWS BETWEEN CURRENT ROW AND 1 PRECEDING) FROM t", "cannot come after"},
		{"SELECT sum(v) OVER (ORDER BY ts RANGE BETWEEN 1 PRECEDING AND CURRENT ROW) FROM t", "RANGE frames"},
		{"SELECT sum(v) OVER (ROWS BETWEEN 1 PRECEDING AND CURRENT ROW) FROM t", "requires ORDER BY"},
		{"SELECT lag(v, -1) OVER (ORDER BY ts) FROM t", "must not be negative"},
		{"SELECT sum(v) OVER (ORDER BY ts ROWS BETWEEN id PRECEDING AND CURRENT ROW) FROM t", "does not exist"},
	}
	for _, tc := range cases {
		_, err := bindWindowSelect(t, tc.src)
		if err == nil {
			t.Errorf("%q: expected error containing %q, got nil", tc.src, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%q: error = %q, want contains %q", tc.src, err, tc.want)
		}
	}
}

func TestWindowPruneKeepsUsedColumns(t *testing.T) {
	node, err := bindWindowSelect(t,
		"SELECT sum(v) OVER (PARTITION BY k ORDER BY ts) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	opt := Optimize(node)
	w := findWindow(opt)
	if w == nil {
		t.Fatal("no window node after optimize")
	}
	scan, ok := w.Child.(*ScanNode)
	if !ok {
		t.Fatalf("window child after optimize is %T", w.Child)
	}
	// id is unused and must be pruned; k, ts, v stay.
	if len(scan.Columns) != 3 {
		t.Fatalf("scan columns after prune = %v, want 3", scan.Columns)
	}
	if got := len(opt.Schema()); got != 1 {
		t.Fatalf("final schema = %d cols, want 1", got)
	}
}

func TestWindowExplain(t *testing.T) {
	node, err := bindWindowSelect(t,
		"SELECT row_number() OVER (PARTITION BY k ORDER BY ts) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	text := ExplainTree(Optimize(node))
	if !strings.Contains(text, "WINDOW") || !strings.Contains(text, "PARTITION BY") {
		t.Errorf("explain missing window line:\n%s", text)
	}
}
