package plan

import (
	"fmt"
	"sort"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/sql"
	"repro/internal/types"
)

// BindInsert plans INSERT .. VALUES / INSERT .. SELECT. The produced
// child emits rows aligned to the full table schema: listed columns in
// table order with casts, unlisted columns as NULLs.
func (b *Binder) BindInsert(stmt *sql.InsertStmt) (Node, error) {
	tbl, err := b.Cat.Table(stmt.Table)
	if err != nil {
		return nil, err
	}
	// Resolve the target column list.
	targets := make([]int, 0, len(tbl.Columns))
	if len(stmt.Columns) == 0 {
		for i := range tbl.Columns {
			targets = append(targets, i)
		}
	} else {
		seen := make(map[int]bool)
		for _, name := range stmt.Columns {
			idx := tbl.ColumnIndex(name)
			if idx < 0 {
				return nil, fmt.Errorf("column %q does not exist in table %q", name, tbl.Name)
			}
			if seen[idx] {
				return nil, fmt.Errorf("column %q listed twice", name)
			}
			seen[idx] = true
			targets = append(targets, idx)
		}
	}
	// position of each table column in the source row (-1 = NULL default)
	srcPos := make([]int, len(tbl.Columns))
	for i := range srcPos {
		srcPos[i] = -1
	}
	for j, t := range targets {
		srcPos[t] = j
	}

	if stmt.Select == nil {
		// VALUES: evaluate constant rows at bind time.
		values := &ValuesNode{}
		for i, col := range tbl.Columns {
			_ = i
			values.Cols = append(values.Cols, ColInfo{Name: col.Name, Type: col.Type})
		}
		for rowIdx, row := range stmt.Rows {
			if len(row) != len(targets) {
				return nil, fmt.Errorf("row %d has %d values, expected %d", rowIdx+1, len(row), len(targets))
			}
			out := make([]types.Value, len(tbl.Columns))
			for i, col := range tbl.Columns {
				if srcPos[i] < 0 {
					out[i] = types.NewNull(col.Type)
					continue
				}
				var v types.Value
				// Fast path for the dominant bulk-INSERT shape: a plain
				// literal needs no expression binding or evaluation.
				if lit, ok := row[srcPos[i]].(*sql.Literal); ok {
					v = lit.Val
				} else if param, ok := row[srcPos[i]].(*sql.Param); ok && param.Index < len(b.Params) {
					v = b.Params[param.Index]
				} else {
					bound, err := b.bindExpr(row[srcPos[i]], &scope{}, nil)
					if err != nil {
						return nil, fmt.Errorf("row %d: %w", rowIdx+1, err)
					}
					v, err = EvalConst(bound)
					if err != nil {
						return nil, fmt.Errorf("row %d: %w", rowIdx+1, err)
					}
				}
				cv, err := v.Cast(col.Type)
				if err != nil {
					return nil, fmt.Errorf("row %d, column %q: %w", rowIdx+1, col.Name, err)
				}
				out[i] = cv
			}
			values.Rows = append(values.Rows, out)
		}
		return &InsertNode{Table: tbl, Child: values}, nil
	}

	child, err := b.BindSelect(stmt.Select)
	if err != nil {
		return nil, err
	}
	srcSchema := child.Schema()
	if len(srcSchema) != len(targets) {
		return nil, fmt.Errorf("INSERT SELECT produces %d columns, expected %d", len(srcSchema), len(targets))
	}
	proj := &ProjectNode{Child: child}
	for i, col := range tbl.Columns {
		var e expr.Expr
		if srcPos[i] < 0 {
			e = &expr.Const{Val: types.NewNull(col.Type)}
		} else {
			j := srcPos[i]
			e = castTo(&expr.ColRef{Idx: j, Typ: srcSchema[j].Type, Name: srcSchema[j].Name}, col.Type)
		}
		proj.Exprs = append(proj.Exprs, e)
		proj.Names = append(proj.Names, col.Name)
	}
	return &InsertNode{Table: tbl, Child: proj}, nil
}

// BindUpdate plans a bulk UPDATE. The child scan emits only the columns
// the SET expressions and WHERE clause use, plus a row id — so an update
// of one column never reads the others (paper §2).
func (b *Binder) BindUpdate(stmt *sql.UpdateStmt) (Node, error) {
	tbl, err := b.Cat.Table(stmt.Table)
	if err != nil {
		return nil, err
	}
	fullScope := tableScope(tbl, stmt.Table)

	node := &UpdateNode{Table: tbl}
	seen := make(map[int]bool)
	boundSet := make([]expr.Expr, 0, len(stmt.Set))
	for _, sc := range stmt.Set {
		idx := tbl.ColumnIndex(sc.Column)
		if idx < 0 {
			return nil, fmt.Errorf("column %q does not exist in table %q", sc.Column, tbl.Name)
		}
		if seen[idx] {
			return nil, fmt.Errorf("column %q assigned twice", sc.Column)
		}
		seen[idx] = true
		bound, err := b.bindExpr(sc.Value, fullScope, nil)
		if err != nil {
			return nil, err
		}
		bound = castTo(bound, tbl.Columns[idx].Type)
		node.SetCols = append(node.SetCols, idx)
		boundSet = append(boundSet, bound)
	}
	var where expr.Expr
	if stmt.Where != nil {
		where, err = b.bindExpr(stmt.Where, fullScope, nil)
		if err != nil {
			return nil, err
		}
		where, err = b.asBoolean(where, "WHERE")
		if err != nil {
			return nil, err
		}
	}

	// Prune the scan to the columns actually read.
	used := make([]bool, len(tbl.Columns))
	for _, e := range boundSet {
		usedCols(e, used)
	}
	if where != nil {
		usedCols(where, used)
	}
	scanCols, oldToNew := usedList(used)
	scan := &ScanNode{Table: tbl, TableAlias: stmt.Table, Columns: scanCols, WithRowID: true}
	for i := range boundSet {
		node.SetExprs = append(node.SetExprs, remapExpr(boundSet[i], oldToNew))
	}
	var child Node = scan
	if where != nil {
		scan.Filter = remapExpr(where, oldToNew)
	}
	node.Child = child
	return node, nil
}

// BindDelete plans a bulk DELETE; the scan reads only the WHERE columns
// plus a row id.
func (b *Binder) BindDelete(stmt *sql.DeleteStmt) (Node, error) {
	tbl, err := b.Cat.Table(stmt.Table)
	if err != nil {
		return nil, err
	}
	fullScope := tableScope(tbl, stmt.Table)
	var where expr.Expr
	if stmt.Where != nil {
		where, err = b.bindExpr(stmt.Where, fullScope, nil)
		if err != nil {
			return nil, err
		}
		where, err = b.asBoolean(where, "WHERE")
		if err != nil {
			return nil, err
		}
	}
	used := make([]bool, len(tbl.Columns))
	if where != nil {
		usedCols(where, used)
	}
	scanCols, oldToNew := usedList(used)
	scan := &ScanNode{Table: tbl, TableAlias: stmt.Table, Columns: scanCols, WithRowID: true}
	if where != nil {
		scan.Filter = remapExpr(where, oldToNew)
	}
	return &DeleteNode{Table: tbl, Child: scan}, nil
}

// tableScope builds a name-resolution scope over all columns of a table.
func tableScope(tbl *catalog.Table, alias string) *scope {
	s := &scope{cols: make([]scopeCol, len(tbl.Columns))}
	for i, c := range tbl.Columns {
		s.cols[i] = scopeCol{Table: alias, Name: c.Name, Type: c.Type}
	}
	return s
}

func usedList(used []bool) (cols []int, oldToNew []int) {
	oldToNew = make([]int, len(used)+1) // +1 for rowid position
	for i := range oldToNew {
		oldToNew[i] = -1
	}
	idxs := make([]int, 0, len(used))
	for i, u := range used {
		if u {
			idxs = append(idxs, i)
		}
	}
	sort.Ints(idxs)
	for newIdx, old := range idxs {
		oldToNew[old] = newIdx
	}
	oldToNew[len(used)] = len(idxs) // rowid stays last
	return idxs, oldToNew
}
