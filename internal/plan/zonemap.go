package plan

import (
	"repro/internal/expr"
	"repro/internal/table"
	"repro/internal/types"
)

// Zone-map pushdown: a scan's pushed-down filter is a conjunction, and
// any conjunct of the shape column-op-constant (or IS [NOT] NULL) can be
// tested against per-segment statistics before the segment is touched.
// Extraction is purely an enabling analysis — the full filter is still
// evaluated per row on the segments that survive, so a conjunct that is
// extracted conservatively (or not at all) never changes results, only
// how many segments the scan can prove irrelevant.

// ScanZoneFilters extracts the scan-eligible conjuncts of n's pushed
// filter as zone-map predicates over table column indexes.
func ScanZoneFilters(n *ScanNode) []table.ZoneFilter {
	if n.Filter == nil {
		return nil
	}
	var out []table.ZoneFilter
	collectZoneFilters(n, n.Filter, &out)
	return out
}

func collectZoneFilters(n *ScanNode, e expr.Expr, out *[]table.ZoneFilter) {
	switch x := e.(type) {
	case *expr.Logic:
		// Both sides of an AND are independent conjuncts; OR is not
		// decomposable this way and is left to row-level evaluation.
		if x.Op == expr.OpAnd {
			collectZoneFilters(n, x.L, out)
			collectZoneFilters(n, x.R, out)
		}
	case *expr.IsNull:
		// The lossless casts unwrapped by scanColumn preserve NULL-ness,
		// so IS [NOT] NULL over a cast column tests the column itself.
		if col, ok := scanColumn(n, x.X); ok {
			op := table.ZoneIsNull
			if x.Not {
				op = table.ZoneNotNull
			}
			// NULL-ness survives the lossless casts, so the test is exact.
			*out = append(*out, table.ZoneFilter{Col: col, Op: op, Exact: true})
		}
	case *expr.Compare:
		if f, ok := zoneCompare(n, x); ok {
			*out = append(*out, f)
		}
	}
}

// zoneCompare recognizes column-op-constant (either side), flipping the
// operator when the constant is on the left.
func zoneCompare(n *ScanNode, c *expr.Compare) (table.ZoneFilter, bool) {
	if col, ok := scanColumn(n, c.L); ok {
		if k, okc := c.R.(*expr.Const); okc && zonePushable(n.Table.Columns[col].Type, k.Val) {
			// zonePushable admits only pairings types.Compare orders without
			// rounding, and scanColumn saw only through lossless monotone
			// casts, so the conjunct's row-level truth is exactly col-op-Val.
			return table.ZoneFilter{Col: col, Op: zoneOp(c.Op, false), Val: k.Val, Exact: true}, true
		}
	}
	if col, ok := scanColumn(n, c.R); ok {
		if k, okc := c.L.(*expr.Const); okc && zonePushable(n.Table.Columns[col].Type, k.Val) {
			return table.ZoneFilter{Col: col, Op: zoneOp(c.Op, true), Val: k.Val, Exact: true}, true
		}
	}
	return table.ZoneFilter{}, false
}

// zoneOp maps a comparison operator to its zone-map form, mirrored when
// the constant was on the left (5 < x  ≡  x > 5).
func zoneOp(op expr.CmpOp, flip bool) table.ZoneOp {
	if flip {
		switch op {
		case expr.CmpLt:
			op = expr.CmpGt
		case expr.CmpLe:
			op = expr.CmpGe
		case expr.CmpGt:
			op = expr.CmpLt
		case expr.CmpGe:
			op = expr.CmpLe
		}
	}
	switch op {
	case expr.CmpEq:
		return table.ZoneEq
	case expr.CmpNe:
		return table.ZoneNe
	case expr.CmpLt:
		return table.ZoneLt
	case expr.CmpLe:
		return table.ZoneLe
	case expr.CmpGt:
		return table.ZoneGt
	default:
		return table.ZoneGe
	}
}

// scanColumn resolves an expression to the table column it reads, seeing
// through casts that are lossless and order-preserving (so a bound on
// the cast value is a bound on the column value). Returns the table
// column index, not the scan output position; the synthetic rowid column
// has no table column and is excluded.
func scanColumn(n *ScanNode, e expr.Expr) (int, bool) {
	for {
		cast, ok := e.(*expr.CastExpr)
		if !ok {
			break
		}
		if !losslessZoneCast(cast.X.Type(), cast.To) {
			return 0, false
		}
		e = cast.X
	}
	cr, ok := e.(*expr.ColRef)
	if !ok || cr.Idx < 0 || cr.Idx >= len(n.Columns) {
		return 0, false
	}
	return n.Columns[cr.Idx], true
}

// losslessZoneCast reports whether a cast from..to is exact and monotone
// for every value, which is what makes constant bounds transferable to
// the underlying column. Integer widens exactly into BIGINT and DOUBLE;
// BIGINT into DOUBLE does not (53-bit mantissa).
func losslessZoneCast(from, to types.Type) bool {
	if from == to {
		return true
	}
	return from == types.Integer && (to == types.BigInt || to == types.Double)
}

// zonePushable reports whether a constant of v's type can be ordered
// exactly against stats of a colType column: same string/numeric family,
// and never a comparison that would round (the only cross-family float
// pairing allowed is INTEGER, which float64 represents exactly). A NULL
// constant is always pushable — a comparison with NULL is never TRUE, so
// refuting every segment is exact.
func zonePushable(colType types.Type, v types.Value) bool {
	if v.Null {
		return true
	}
	intFam := func(t types.Type) bool {
		return t == types.Integer || t == types.BigInt || t == types.Timestamp
	}
	switch {
	case colType == types.Varchar:
		return v.Type == types.Varchar
	case colType == types.Double:
		return v.Type == types.Double || v.Type == types.Integer
	case intFam(colType):
		return intFam(v.Type) || (v.Type == types.Double && colType == types.Integer)
	}
	return false
}
