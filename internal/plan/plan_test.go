package plan

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/sql"
	"repro/internal/table"
	"repro/internal/types"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	mk := func(name string, cols ...catalog.Column) {
		entry := &catalog.Table{Name: name, Columns: cols}
		entry.Data = table.New(entry.Types(), nil)
		if err := cat.CreateTable(entry); err != nil {
			t.Fatal(err)
		}
	}
	mk("t",
		catalog.Column{Name: "a", Type: types.BigInt},
		catalog.Column{Name: "b", Type: types.Double},
		catalog.Column{Name: "c", Type: types.Varchar},
		catalog.Column{Name: "d", Type: types.BigInt},
	)
	mk("s",
		catalog.Column{Name: "a", Type: types.BigInt},
		catalog.Column{Name: "x", Type: types.Varchar},
	)
	return cat
}

func bindSQL(t *testing.T, cat *catalog.Catalog, src string) Node {
	t.Helper()
	stmt, err := sql.ParseOne(src)
	if err != nil {
		t.Fatal(err)
	}
	b := &Binder{Cat: cat}
	var node Node
	switch st := stmt.(type) {
	case *sql.SelectStmt:
		node, err = b.BindSelect(st)
	case *sql.UpdateStmt:
		node, err = b.BindUpdate(st)
	case *sql.DeleteStmt:
		node, err = b.BindDelete(st)
	case *sql.InsertStmt:
		node, err = b.BindInsert(st)
	default:
		t.Fatalf("unsupported %T", stmt)
	}
	if err != nil {
		t.Fatal(err)
	}
	return node
}

func TestFilterPushedIntoScan(t *testing.T) {
	cat := testCatalog(t)
	node := Optimize(bindSQL(t, cat, "SELECT a FROM t WHERE a > 5 AND b < 2.0"))
	text := ExplainTree(node)
	if !strings.Contains(text, "SCAN t") || !strings.Contains(text, "FILTER") {
		t.Fatalf("plan:\n%s", text)
	}
	// The filter must live inside the scan line, not as a separate node.
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "FILTER") {
			t.Fatalf("standalone filter survived pushdown:\n%s", text)
		}
	}
}

func TestColumnPruning(t *testing.T) {
	cat := testCatalog(t)
	node := Optimize(bindSQL(t, cat, "SELECT a FROM t WHERE b > 0.0"))
	scan := findScan(node)
	if scan == nil {
		t.Fatal("no scan in plan")
	}
	if len(scan.Columns) != 2 { // a and b; c, d pruned
		t.Fatalf("scan columns: %v", scan.Columns)
	}
}

func findScan(n Node) *ScanNode {
	if s, ok := n.(*ScanNode); ok {
		return s
	}
	for _, c := range n.Children() {
		if s := findScan(c); s != nil {
			return s
		}
	}
	return nil
}

func TestJoinKeyExtraction(t *testing.T) {
	cat := testCatalog(t)
	node := bindSQL(t, cat, "SELECT t.a FROM t JOIN s ON t.a = s.a AND t.b > 1.0")
	join := findJoin(node)
	if join == nil {
		t.Fatal("no join")
	}
	if len(join.LeftKeys) != 1 || len(join.RightKeys) != 1 {
		t.Fatalf("keys: %d/%d", len(join.LeftKeys), len(join.RightKeys))
	}
	if join.Extra == nil {
		t.Fatal("non-equi conjunct should stay as Extra")
	}
}

func findJoin(n Node) *JoinNode {
	if j, ok := n.(*JoinNode); ok {
		return j
	}
	for _, c := range n.Children() {
		if j := findJoin(c); j != nil {
			return j
		}
	}
	return nil
}

func TestFilterPushThroughJoin(t *testing.T) {
	cat := testCatalog(t)
	node := Optimize(bindSQL(t, cat,
		"SELECT t.a FROM t JOIN s ON t.a = s.a WHERE t.b > 1.0 AND s.x = 'k'"))
	join := findJoin(node)
	if join == nil {
		t.Fatal("no join")
	}
	// Both single-side conjuncts must be inside the respective scans.
	lscan := findScan(join.Left)
	rscan := findScan(join.Right)
	if lscan == nil || lscan.Filter == nil {
		t.Fatal("left filter not pushed")
	}
	if rscan == nil || rscan.Filter == nil {
		t.Fatal("right filter not pushed")
	}
}

func TestConstantFolding(t *testing.T) {
	cat := testCatalog(t)
	node := Optimize(bindSQL(t, cat, "SELECT a + (1 + 2) FROM t"))
	proj, ok := node.(*ProjectNode)
	if !ok {
		t.Fatalf("top is %T", node)
	}
	text := proj.Exprs[0].String()
	if !strings.Contains(text, "3") || strings.Contains(text, "1 + 2") {
		t.Fatalf("not folded: %s", text)
	}
}

func TestUpdatePlanScansOnlyNeededColumns(t *testing.T) {
	cat := testCatalog(t)
	node := bindSQL(t, cat, "UPDATE t SET d = NULL WHERE d = -999")
	up, ok := node.(*UpdateNode)
	if !ok {
		t.Fatalf("%T", node)
	}
	scan := findScan(up.Child)
	if len(scan.Columns) != 1 || scan.Columns[0] != 3 {
		t.Fatalf("update scan columns: %v (want only d)", scan.Columns)
	}
	if !scan.WithRowID {
		t.Fatal("update scan needs row ids")
	}
}

func TestAggregateBindingErrors(t *testing.T) {
	cat := testCatalog(t)
	b := &Binder{Cat: cat}
	bad := []string{
		"SELECT a, count(*) FROM t",          // a not grouped
		"SELECT sum(sum(a)) FROM t",          // nested aggregate
		"SELECT a FROM t WHERE count(*) > 1", // aggregate in WHERE
		"SELECT ghost FROM t",                // unknown column
		"SELECT t.ghost FROM t",              // unknown qualified column
		"SELECT a FROM missing",              // unknown table
		"SELECT s.a + c FROM t",              // unknown alias s (bound as table s? -> error: missing FROM)
	}
	for _, src := range bad {
		stmt, err := sql.ParseOne(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := b.BindSelect(stmt.(*sql.SelectStmt)); err == nil {
			t.Errorf("%q bound without error", src)
		}
	}
}

func TestAmbiguousColumn(t *testing.T) {
	cat := testCatalog(t)
	stmt, _ := sql.ParseOne("SELECT a FROM t JOIN s ON t.a = s.a")
	if _, err := (&Binder{Cat: cat}).BindSelect(stmt.(*sql.SelectStmt)); err == nil ||
		!strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("ambiguous column: %v", err)
	}
}

func TestGroupBySubstitution(t *testing.T) {
	cat := testCatalog(t)
	node := bindSQL(t, cat, "SELECT a + 1, count(*), sum(d) + 1 FROM t GROUP BY a + 1")
	// Find the aggregate under the projection.
	var agg *AggNode
	var walk func(Node)
	walk = func(n Node) {
		if a, ok := n.(*AggNode); ok {
			agg = a
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(node)
	if agg == nil || len(agg.GroupBy) != 1 || len(agg.Aggs) != 2 {
		t.Fatalf("agg shape: %+v", agg)
	}
}

func TestEvalConst(t *testing.T) {
	v, err := EvalConst(&expr.Arith{
		Op: expr.OpMul, Typ: types.BigInt,
		L: &expr.Const{Val: types.NewBigInt(6)},
		R: &expr.Const{Val: types.NewBigInt(7)},
	})
	if err != nil || v.I64 != 42 {
		t.Fatalf("%v %v", v, err)
	}
}
