package expr

import (
	"testing"
	"testing/quick"

	"repro/internal/types"
	"repro/internal/vector"
)

func oneColChunk(t types.Type, vals ...types.Value) *vector.Chunk {
	c := vector.NewChunk([]types.Type{t})
	for _, v := range vals {
		c.AppendRow(v)
	}
	return c
}

func TestColRefAliasesInput(t *testing.T) {
	in := oneColChunk(types.BigInt, types.NewBigInt(7))
	e := &ColRef{Idx: 0, Typ: types.BigInt}
	out, err := e.Eval(in)
	if err != nil || out != in.Cols[0] {
		t.Fatalf("ColRef should return the input vector: %v", err)
	}
	if (&ColRef{Idx: 3, Typ: types.BigInt}).Type() != types.BigInt {
		t.Fatal("type")
	}
	if _, err := (&ColRef{Idx: 9}).Eval(in); err == nil {
		t.Fatal("out-of-range column accepted")
	}
}

func TestConstBroadcastAndNull(t *testing.T) {
	in := &vector.Chunk{}
	in.SetLen(5)
	out, err := (&Const{Val: types.NewInt(3)}).Eval(in)
	if err != nil || out.Len() != 5 || out.I32[4] != 3 {
		t.Fatalf("%v %v", out, err)
	}
	nullOut, err := (&Const{Val: types.NewNull(types.Null)}).Eval(in)
	if err != nil || !nullOut.IsNull(0) {
		t.Fatalf("null const: %v", err)
	}
}

func TestCompareNullPropagation(t *testing.T) {
	in := oneColChunk(types.BigInt,
		types.NewBigInt(1), types.NewNull(types.BigInt), types.NewBigInt(3))
	cmp := &Compare{Op: CmpGt, L: &ColRef{Idx: 0, Typ: types.BigInt}, R: &Const{Val: types.NewBigInt(2)}}
	out, err := cmp.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Bools[0] || !out.IsNull(1) || !out.Bools[2] {
		t.Fatalf("1>2=%v null=%v 3>2=%v", out.Bools[0], out.IsNull(1), out.Bools[2])
	}
}

func TestArithOverflowWrapsLikeGo(t *testing.T) {
	in := oneColChunk(types.BigInt, types.NewBigInt(5))
	div := &Arith{Op: OpDiv, Typ: types.BigInt,
		L: &ColRef{Idx: 0, Typ: types.BigInt}, R: &Const{Val: types.NewBigInt(0)}}
	if _, err := div.Eval(in); err == nil {
		t.Fatal("int division by zero accepted")
	}
}

func TestLogicTruthTable(t *testing.T) {
	null := types.NewNull(types.Boolean)
	tr, fa := types.NewBool(true), types.NewBool(false)
	cases := []struct {
		op   LogicOp
		l, r types.Value
		want types.Value
	}{
		{OpAnd, tr, tr, tr},
		{OpAnd, tr, fa, fa},
		{OpAnd, fa, null, fa},   // FALSE AND NULL = FALSE
		{OpAnd, null, tr, null}, // NULL AND TRUE = NULL
		{OpOr, fa, fa, fa},
		{OpOr, tr, null, tr},   // TRUE OR NULL = TRUE
		{OpOr, null, fa, null}, // NULL OR FALSE = NULL
		{OpOr, null, null, null},
	}
	for _, c := range cases {
		in := vector.NewChunk([]types.Type{types.Boolean, types.Boolean})
		in.AppendRow(c.l, c.r)
		e := &Logic{Op: c.op, L: &ColRef{Idx: 0, Typ: types.Boolean}, R: &ColRef{Idx: 1, Typ: types.Boolean}}
		out, err := e.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		got := out.Get(0)
		if !types.Equal(got, c.want) {
			t.Errorf("%v(%v, %v) = %v, want %v", c.op, c.l, c.r, got, c.want)
		}
	}
}

func TestLikeMatcherProperty(t *testing.T) {
	// likeMatch on a pattern without wildcards must equal string equality.
	f := func(s string) bool {
		return likeMatch(s, s) && (len(s) == 0 || likeMatch("%", s))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLikeEdgePatterns(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"", "", true},
		{"", "x", false},
		{"%", "", true},
		{"%%", "anything", true},
		{"_", "", false},
		{"_", "a", true},
		{"a%b%c", "aXbYc", true},
		{"a%b%c", "acb", false},
		{"%abc", "abc", true},
		{"a_c", "abc", true},
		{"a_c", "ac", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.pat, c.s); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.pat, c.s, got, c.want)
		}
	}
}

func TestSelectTrue(t *testing.T) {
	v := vector.NewLen(types.Boolean, 4)
	v.Bools[0], v.Bools[2] = true, true
	v.SetNull(2) // TRUE but NULL → not selected
	sel := SelectTrue(v, nil)
	if len(sel) != 1 || sel[0] != 0 {
		t.Fatalf("sel = %v", sel)
	}
}

func TestCastVectorFastPaths(t *testing.T) {
	in := oneColChunk(types.Integer, types.NewInt(5), types.NewNull(types.Integer))
	for _, to := range []types.Type{types.BigInt, types.Double, types.Varchar} {
		e := &CastExpr{X: &ColRef{Idx: 0, Typ: types.Integer}, To: to}
		out, err := e.Eval(in)
		if err != nil {
			t.Fatalf("cast to %v: %v", to, err)
		}
		if out.IsNull(0) || !out.IsNull(1) {
			t.Fatalf("cast to %v: validity wrong", to)
		}
		if got := out.Get(0).String(); got != "5" {
			t.Fatalf("cast to %v: %q", to, got)
		}
	}
}

func TestScalarFuncArity(t *testing.T) {
	if _, err := FuncResultType("frobnicate", nil); err == nil {
		t.Fatal("unknown function accepted")
	}
	if _, err := FuncResultType("length", []types.Type{types.BigInt}); err == nil {
		t.Fatal("length(BIGINT) accepted")
	}
	typ, err := FuncResultType("coalesce", []types.Type{types.Integer, types.Double})
	if err != nil || typ != types.Double {
		t.Fatalf("coalesce type %v %v", typ, err)
	}
}

func TestInConstNulls(t *testing.T) {
	in := oneColChunk(types.BigInt, types.NewBigInt(1), types.NewNull(types.BigInt))
	e := NewInConst(&ColRef{Idx: 0, Typ: types.BigInt},
		[]types.Value{types.NewBigInt(1), types.NewNull(types.BigInt)}, false)
	out, err := e.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Bools[0] || !out.IsNull(1) {
		t.Fatalf("IN semantics: %v %v", out.Bools[0], out.IsNull(1))
	}
}

func TestStringRendering(t *testing.T) {
	e := &Compare{Op: CmpLe,
		L: &ColRef{Idx: 0, Typ: types.BigInt, Name: "v"},
		R: &Const{Val: types.NewBigInt(3)}}
	if e.String() != "(v <= 3)" {
		t.Fatalf("String() = %q", e.String())
	}
}
