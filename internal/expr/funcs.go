package expr

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/types"
	"repro/internal/vector"
)

// LikeExpr implements SQL LIKE with % and _ wildcards. When the pattern
// is constant it is compiled once.
type LikeExpr struct {
	X       Expr
	Pattern Expr
	Not     bool
}

// Type implements Expr.
func (e *LikeExpr) Type() types.Type { return types.Boolean }

// Eval implements Expr.
func (e *LikeExpr) Eval(in *vector.Chunk) (*vector.Vector, error) {
	xs, err := e.X.Eval(in)
	if err != nil {
		return nil, err
	}
	ps, err := e.Pattern.Eval(in)
	if err != nil {
		return nil, err
	}
	n := in.Len()
	out := vector.NewLen(types.Boolean, n)
	propagateNulls(out, xs, ps, n)
	var (
		lastPat string
		matcher func(string) bool
	)
	for i := 0; i < n; i++ {
		if out.IsNull(i) {
			continue
		}
		if matcher == nil || ps.Str[i] != lastPat {
			lastPat = ps.Str[i]
			matcher = compileLike(lastPat)
		}
		out.Bools[i] = matcher(xs.Str[i]) != e.Not
	}
	return out, nil
}

func (e *LikeExpr) String() string {
	op := " LIKE "
	if e.Not {
		op = " NOT LIKE "
	}
	return e.X.String() + op + e.Pattern.String()
}

// compileLike builds a matcher for a LIKE pattern. % matches any
// sequence, _ matches one character.
func compileLike(pattern string) func(string) bool {
	// Fast paths for the common shapes.
	if !strings.ContainsAny(pattern, "%_") {
		return func(s string) bool { return s == pattern }
	}
	if strings.Count(pattern, "%") == 1 && !strings.Contains(pattern, "_") {
		if strings.HasSuffix(pattern, "%") {
			prefix := pattern[:len(pattern)-1]
			return func(s string) bool { return strings.HasPrefix(s, prefix) }
		}
		if strings.HasPrefix(pattern, "%") {
			suffix := pattern[1:]
			return func(s string) bool { return strings.HasSuffix(s, suffix) }
		}
	}
	if strings.Count(pattern, "%") == 2 && !strings.Contains(pattern, "_") &&
		strings.HasPrefix(pattern, "%") && strings.HasSuffix(pattern, "%") {
		inner := pattern[1 : len(pattern)-1]
		if !strings.Contains(inner, "%") {
			return func(s string) bool { return strings.Contains(s, inner) }
		}
	}
	return func(s string) bool { return likeMatch(pattern, s) }
}

// likeMatch is a backtracking wildcard matcher (bytes, not runes — LIKE
// on multi-byte text matches per byte for _, consistent with simple
// embedded engines).
func likeMatch(pattern, s string) bool {
	var pi, si, starP, starS = 0, 0, -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			pi++
			si++
		case pi < len(pattern) && pattern[pi] == '%':
			starP = pi
			starS = si
			pi++
		case starP >= 0:
			starS++
			si = starS
			pi = starP + 1
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

// CaseExpr is a searched CASE (operands are desugared by the binder).
type CaseExpr struct {
	Whens []CaseWhen
	Else  Expr // nil means NULL
	Typ   types.Type
}

// CaseWhen is one WHEN cond THEN result arm.
type CaseWhen struct {
	Cond, Result Expr
}

// Type implements Expr.
func (e *CaseExpr) Type() types.Type { return e.Typ }

// Eval implements Expr.
func (e *CaseExpr) Eval(in *vector.Chunk) (*vector.Vector, error) {
	n := in.Len()
	out := vector.NewLen(e.Typ, n)
	decided := make([]bool, n)
	for i := 0; i < n; i++ {
		out.SetNull(i) // default when no arm matches and no ELSE
	}
	for _, w := range e.Whens {
		cond, err := w.Cond.Eval(in)
		if err != nil {
			return nil, err
		}
		res, err := w.Result.Eval(in)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			if decided[i] {
				continue
			}
			if !cond.IsNull(i) && cond.Bools[i] {
				decided[i] = true
				if res.IsNull(i) {
					out.SetNull(i)
				} else {
					out.Set(i, res.Get(i))
				}
			}
		}
	}
	if e.Else != nil {
		els, err := e.Else.Eval(in)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			if !decided[i] {
				if els.IsNull(i) {
					out.SetNull(i)
				} else {
					out.Set(i, els.Get(i))
				}
			}
		}
	}
	return out, nil
}

func (e *CaseExpr) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	for _, w := range e.Whens {
		fmt.Fprintf(&sb, " WHEN %s THEN %s", w.Cond.String(), w.Result.String())
	}
	if e.Else != nil {
		fmt.Fprintf(&sb, " ELSE %s", e.Else.String())
	}
	sb.WriteString(" END")
	return sb.String()
}

// InConst is x IN (constants), evaluated with a hash set.
type InConst struct {
	X      Expr
	Not    bool
	keys   map[string]struct{}
	labels []string
}

// NewInConst builds an IN-set expression from constant values already
// cast to X's type.
func NewInConst(x Expr, vals []types.Value, not bool) *InConst {
	e := &InConst{X: x, Not: not, keys: make(map[string]struct{}, len(vals))}
	for _, v := range vals {
		if v.Null {
			continue // NULL in an IN list never matches via =
		}
		e.keys[valueKey(v)] = struct{}{}
		e.labels = append(e.labels, v.String())
	}
	return e
}

func valueKey(v types.Value) string {
	switch v.Type {
	case types.Varchar:
		return v.Str
	case types.Double:
		return fmt.Sprintf("f%x", math.Float64bits(v.F64))
	case types.Boolean:
		if v.Bool {
			return "b1"
		}
		return "b0"
	default:
		return fmt.Sprintf("i%d", v.I64)
	}
}

// Type implements Expr.
func (e *InConst) Type() types.Type { return types.Boolean }

// Eval implements Expr.
func (e *InConst) Eval(in *vector.Chunk) (*vector.Vector, error) {
	src, err := e.X.Eval(in)
	if err != nil {
		return nil, err
	}
	n := in.Len()
	out := vector.NewLen(types.Boolean, n)
	copyValidity(out, src, n)
	for i := 0; i < n; i++ {
		if out.IsNull(i) {
			continue
		}
		_, ok := e.keys[valueKey(src.Get(i))]
		out.Bools[i] = ok != e.Not
	}
	return out, nil
}

func (e *InConst) String() string {
	op := " IN ("
	if e.Not {
		op = " NOT IN ("
	}
	return e.X.String() + op + strings.Join(e.labels, ", ") + ")"
}

// ScalarFunc is a built-in scalar function call.
type ScalarFunc struct {
	Name string
	Args []Expr
	Typ  types.Type
}

// Type implements Expr.
func (e *ScalarFunc) Type() types.Type { return e.Typ }

// FuncResultType resolves a scalar function's result type from its
// argument types, or an error for unknown functions/signatures.
func FuncResultType(name string, args []types.Type) (types.Type, error) {
	switch name {
	case "abs":
		if len(args) == 1 && (args[0] == types.Integer || args[0] == types.BigInt || args[0] == types.Double) {
			return args[0], nil
		}
	case "floor", "ceil", "round", "sqrt", "ln", "exp":
		if len(args) >= 1 {
			return types.Double, nil
		}
	case "length":
		if len(args) == 1 && args[0] == types.Varchar {
			return types.BigInt, nil
		}
	case "lower", "upper", "trim", "substr", "concat":
		return types.Varchar, nil
	case "coalesce":
		if len(args) >= 1 {
			t := args[0]
			for _, a := range args[1:] {
				ct, err := types.CommonType(t, a)
				if err != nil {
					return types.Invalid, err
				}
				t = ct
			}
			return t, nil
		}
	case "greatest", "least":
		if len(args) >= 1 {
			t := args[0]
			for _, a := range args[1:] {
				ct, err := types.CommonType(t, a)
				if err != nil {
					return types.Invalid, err
				}
				t = ct
			}
			return t, nil
		}
	}
	return types.Invalid, fmt.Errorf("unknown function %s with %d argument(s)", name, len(args))
}

// Eval implements Expr.
func (e *ScalarFunc) Eval(in *vector.Chunk) (*vector.Vector, error) {
	n := in.Len()
	argVecs := make([]*vector.Vector, len(e.Args))
	for i, a := range e.Args {
		v, err := a.Eval(in)
		if err != nil {
			return nil, err
		}
		argVecs[i] = v
	}
	out := vector.NewLen(e.Typ, n)
	switch e.Name {
	case "abs":
		a := argVecs[0]
		copyValidity(out, a, n)
		switch a.Type {
		case types.Integer:
			for i := 0; i < n; i++ {
				if v := a.I32[i]; v < 0 {
					out.I32[i] = -v
				} else {
					out.I32[i] = v
				}
			}
		case types.BigInt:
			for i := 0; i < n; i++ {
				if v := a.I64[i]; v < 0 {
					out.I64[i] = -v
				} else {
					out.I64[i] = v
				}
			}
		case types.Double:
			for i := 0; i < n; i++ {
				out.F64[i] = math.Abs(a.F64[i])
			}
		}
	case "floor", "ceil", "round", "sqrt", "ln", "exp":
		a := argVecs[0]
		copyValidity(out, a, n)
		f := mathFunc(e.Name)
		for i := 0; i < n; i++ {
			if !out.IsNull(i) {
				out.F64[i] = f(numAsFloat(a, i))
			}
		}
	case "length":
		a := argVecs[0]
		copyValidity(out, a, n)
		for i := 0; i < n; i++ {
			out.I64[i] = int64(len(a.Str[i]))
		}
	case "lower":
		a := argVecs[0]
		copyValidity(out, a, n)
		for i := 0; i < n; i++ {
			out.Str[i] = strings.ToLower(a.Str[i])
		}
	case "upper":
		a := argVecs[0]
		copyValidity(out, a, n)
		for i := 0; i < n; i++ {
			out.Str[i] = strings.ToUpper(a.Str[i])
		}
	case "trim":
		a := argVecs[0]
		copyValidity(out, a, n)
		for i := 0; i < n; i++ {
			out.Str[i] = strings.TrimSpace(a.Str[i])
		}
	case "substr":
		if len(argVecs) < 2 {
			return nil, fmt.Errorf("substr requires (string, start [, length])")
		}
		a := argVecs[0]
		for i := 0; i < n; i++ {
			if a.IsNull(i) || argVecs[1].IsNull(i) {
				out.SetNull(i)
				continue
			}
			s := a.Str[i]
			start := int(numAsInt(argVecs[1], i)) - 1 // SQL is 1-based
			if start < 0 {
				start = 0
			}
			end := len(s)
			if len(argVecs) >= 3 && !argVecs[2].IsNull(i) {
				if l := int(numAsInt(argVecs[2], i)); start+l < end {
					end = start + l
				}
			}
			if start > len(s) {
				start = len(s)
			}
			if end < start {
				end = start
			}
			out.Str[i] = s[start:end]
		}
	case "concat":
		for i := 0; i < n; i++ {
			var sb strings.Builder
			for _, a := range argVecs {
				if !a.IsNull(i) {
					sb.WriteString(a.Get(i).String())
				}
			}
			out.Str[i] = sb.String()
		}
	case "coalesce":
		for i := 0; i < n; i++ {
			out.SetNull(i)
			for _, a := range argVecs {
				if !a.IsNull(i) {
					v, err := a.Get(i).Cast(e.Typ)
					if err != nil {
						return nil, err
					}
					out.Set(i, v)
					break
				}
			}
		}
	case "greatest", "least":
		wantGreatest := e.Name == "greatest"
		for i := 0; i < n; i++ {
			var best types.Value
			bestSet := false
			null := false
			for _, a := range argVecs {
				if a.IsNull(i) {
					null = true
					break
				}
				v, err := a.Get(i).Cast(e.Typ)
				if err != nil {
					return nil, err
				}
				if !bestSet {
					best, bestSet = v, true
					continue
				}
				c := types.Compare(v, best)
				if (wantGreatest && c > 0) || (!wantGreatest && c < 0) {
					best = v
				}
			}
			if null || !bestSet {
				out.SetNull(i)
			} else {
				out.Set(i, best)
			}
		}
	default:
		return nil, fmt.Errorf("unknown function %s", e.Name)
	}
	return out, nil
}

func (e *ScalarFunc) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return e.Name + "(" + strings.Join(args, ", ") + ")"
}

func mathFunc(name string) func(float64) float64 {
	switch name {
	case "floor":
		return math.Floor
	case "ceil":
		return math.Ceil
	case "round":
		return math.Round
	case "sqrt":
		return math.Sqrt
	case "ln":
		return math.Log
	default:
		return math.Exp
	}
}

func numAsFloat(v *vector.Vector, i int) float64 {
	switch v.Type {
	case types.Integer:
		return float64(v.I32[i])
	case types.BigInt, types.Timestamp:
		return float64(v.I64[i])
	default:
		return v.F64[i]
	}
}

func numAsInt(v *vector.Vector, i int) int64 {
	switch v.Type {
	case types.Integer:
		return int64(v.I32[i])
	case types.BigInt, types.Timestamp:
		return v.I64[i]
	default:
		return int64(v.F64[i])
	}
}

// SelectTrue returns the indices of rows where v is TRUE (valid and
// true), the core of vectorized filtering.
func SelectTrue(v *vector.Vector, sel []int) []int {
	sel = sel[:0]
	n := v.Len()
	if v.Valid.AllValid() {
		for i := 0; i < n; i++ {
			if v.Bools[i] {
				sel = append(sel, i)
			}
		}
		return sel
	}
	for i := 0; i < n; i++ {
		if v.Bools[i] && v.Valid.IsValid(i) {
			sel = append(sel, i)
		}
	}
	return sel
}
