// Package expr implements vectorized expression evaluation: each
// operator processes a whole 1024-row vector per call, amortizing
// interpretation overhead exactly as the paper's "vectorized interpreted
// execution engine" prescribes (§6). Expressions are bound (typed,
// column-resolved) by the planner; evaluation is pure and safe for
// concurrent use.
package expr

import (
	"fmt"
	"strings"

	"repro/internal/types"
	"repro/internal/vector"
)

// Expr is a bound, typed, vectorized expression.
type Expr interface {
	// Type returns the expression's result type.
	Type() types.Type
	// Eval evaluates the expression over every row of in. The result
	// may alias vectors of in; callers must not mutate it.
	Eval(in *vector.Chunk) (*vector.Vector, error)
	// String renders the expression for EXPLAIN output.
	String() string
}

// ---- column references ----

// ColRef reads column Idx of the input chunk.
type ColRef struct {
	Idx  int
	Typ  types.Type
	Name string // for EXPLAIN
}

// Type implements Expr.
func (c *ColRef) Type() types.Type { return c.Typ }

// Eval implements Expr; it returns the input column unchanged.
func (c *ColRef) Eval(in *vector.Chunk) (*vector.Vector, error) {
	if c.Idx >= len(in.Cols) {
		return nil, fmt.Errorf("expr: column %d out of range (%d cols)", c.Idx, len(in.Cols))
	}
	return in.Cols[c.Idx], nil
}

func (c *ColRef) String() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("#%d", c.Idx)
}

// ---- constants ----

// Const is a literal value broadcast over the chunk.
type Const struct {
	Val types.Value
}

// Type implements Expr.
func (c *Const) Type() types.Type { return c.Val.Type }

// Eval implements Expr.
func (c *Const) Eval(in *vector.Chunk) (*vector.Vector, error) {
	n := in.Len()
	t := c.Val.Type
	if t == types.Null {
		t = types.BigInt // placeholder payload; all rows NULL
	}
	out := vector.NewLen(t, n)
	if c.Val.Null || c.Val.Type == types.Null {
		for i := 0; i < n; i++ {
			out.SetNull(i)
		}
		return out, nil
	}
	switch c.Val.Type {
	case types.Boolean:
		for i := range out.Bools {
			out.Bools[i] = c.Val.Bool
		}
	case types.Integer:
		v := int32(c.Val.I64)
		for i := range out.I32 {
			out.I32[i] = v
		}
	case types.BigInt, types.Timestamp:
		for i := range out.I64 {
			out.I64[i] = c.Val.I64
		}
	case types.Double:
		for i := range out.F64 {
			out.F64[i] = c.Val.F64
		}
	case types.Varchar:
		for i := range out.Str {
			out.Str[i] = c.Val.Str
		}
	}
	return out, nil
}

func (c *Const) String() string {
	if c.Val.Type == types.Varchar {
		return "'" + c.Val.Str + "'"
	}
	return c.Val.String()
}

// ---- casts ----

// CastExpr converts X to type To with strict semantics.
type CastExpr struct {
	X  Expr
	To types.Type
}

// Type implements Expr.
func (c *CastExpr) Type() types.Type { return c.To }

// Eval implements Expr.
func (c *CastExpr) Eval(in *vector.Chunk) (*vector.Vector, error) {
	src, err := c.X.Eval(in)
	if err != nil {
		return nil, err
	}
	if src.Type == c.To {
		return src, nil
	}
	n := src.Len()
	out := vector.NewLen(c.To, n)
	// Fast numeric paths.
	switch {
	case src.Type == types.Integer && c.To == types.BigInt:
		for i := 0; i < n; i++ {
			out.I64[i] = int64(src.I32[i])
		}
		copyValidity(out, src, n)
		return out, nil
	case src.Type == types.Integer && c.To == types.Double:
		for i := 0; i < n; i++ {
			out.F64[i] = float64(src.I32[i])
		}
		copyValidity(out, src, n)
		return out, nil
	case src.Type == types.BigInt && c.To == types.Double:
		for i := 0; i < n; i++ {
			out.F64[i] = float64(src.I64[i])
		}
		copyValidity(out, src, n)
		return out, nil
	}
	for i := 0; i < n; i++ {
		if src.IsNull(i) {
			out.SetNull(i)
			continue
		}
		v, err := src.Get(i).Cast(c.To)
		if err != nil {
			return nil, err
		}
		out.Set(i, v)
	}
	return out, nil
}

func (c *CastExpr) String() string {
	return fmt.Sprintf("CAST(%s AS %s)", c.X.String(), c.To)
}

func copyValidity(dst, src *vector.Vector, n int) {
	if !src.Valid.AllValid() {
		for i := 0; i < n; i++ {
			if src.IsNull(i) {
				dst.SetNull(i)
			}
		}
	}
}

// ---- comparisons ----

// CmpOp is a comparison operator.
type CmpOp int

// Comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

func (o CmpOp) String() string {
	return [...]string{"=", "<>", "<", "<=", ">", ">="}[o]
}

// Compare evaluates L op R. Both sides have the same type (the binder
// inserts casts). NULL on either side yields NULL.
type Compare struct {
	Op   CmpOp
	L, R Expr
}

// Type implements Expr.
func (c *Compare) Type() types.Type { return types.Boolean }

// Eval implements Expr.
func (c *Compare) Eval(in *vector.Chunk) (*vector.Vector, error) {
	l, err := c.L.Eval(in)
	if err != nil {
		return nil, err
	}
	r, err := c.R.Eval(in)
	if err != nil {
		return nil, err
	}
	n := in.Len()
	out := vector.NewLen(types.Boolean, n)
	op := c.Op
	switch l.Type {
	case types.Integer:
		for i := 0; i < n; i++ {
			out.Bools[i] = cmpToBool(op, cmpOrderedI32(l.I32[i], r.I32[i]))
		}
	case types.BigInt, types.Timestamp:
		for i := 0; i < n; i++ {
			out.Bools[i] = cmpToBool(op, cmpOrderedI64(l.I64[i], r.I64[i]))
		}
	case types.Double:
		for i := 0; i < n; i++ {
			out.Bools[i] = cmpToBool(op, cmpOrderedF64(l.F64[i], r.F64[i]))
		}
	case types.Varchar:
		for i := 0; i < n; i++ {
			out.Bools[i] = cmpToBool(op, strings.Compare(l.Str[i], r.Str[i]))
		}
	case types.Boolean:
		for i := 0; i < n; i++ {
			out.Bools[i] = cmpToBool(op, cmpBool(l.Bools[i], r.Bools[i]))
		}
	default:
		return nil, fmt.Errorf("expr: cannot compare type %s", l.Type)
	}
	propagateNulls(out, l, r, n)
	return out, nil
}

func (c *Compare) String() string {
	return fmt.Sprintf("(%s %s %s)", c.L.String(), c.Op, c.R.String())
}

func cmpToBool(op CmpOp, c int) bool {
	switch op {
	case CmpEq:
		return c == 0
	case CmpNe:
		return c != 0
	case CmpLt:
		return c < 0
	case CmpLe:
		return c <= 0
	case CmpGt:
		return c > 0
	default:
		return c >= 0
	}
}

func cmpOrderedI32(a, b int32) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpOrderedI64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// cmpOrderedF64 delegates to the engine-wide total FP order (NaN
// greatest, NaN == NaN) so vectorized predicates agree with the row
// engine, min/max and ORDER BY on NaN-bearing data.
func cmpOrderedF64(a, b float64) int { return types.CompareFloat(a, b) }

func cmpBool(a, b bool) int {
	switch {
	case a == b:
		return 0
	case !a:
		return -1
	default:
		return 1
	}
}

func propagateNulls(out *vector.Vector, l, r *vector.Vector, n int) {
	if !l.Valid.AllValid() {
		for i := 0; i < n; i++ {
			if l.IsNull(i) {
				out.SetNull(i)
			}
		}
	}
	if !r.Valid.AllValid() {
		for i := 0; i < n; i++ {
			if r.IsNull(i) {
				out.SetNull(i)
			}
		}
	}
}

// ---- arithmetic ----

// ArithOp is an arithmetic operator.
type ArithOp int

// Arithmetic operators.
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
)

func (o ArithOp) String() string { return [...]string{"+", "-", "*", "/", "%"}[o] }

// Arith evaluates L op R over same-typed numeric inputs.
type Arith struct {
	Op   ArithOp
	L, R Expr
	Typ  types.Type
}

// Type implements Expr.
func (a *Arith) Type() types.Type { return a.Typ }

// Eval implements Expr.
func (a *Arith) Eval(in *vector.Chunk) (*vector.Vector, error) {
	l, err := a.L.Eval(in)
	if err != nil {
		return nil, err
	}
	r, err := a.R.Eval(in)
	if err != nil {
		return nil, err
	}
	n := in.Len()
	out := vector.NewLen(a.Typ, n)
	propagateNulls(out, l, r, n)
	switch a.Typ {
	case types.Integer:
		for i := 0; i < n; i++ {
			if out.IsNull(i) {
				continue
			}
			v, err := arithI64(a.Op, int64(l.I32[i]), int64(r.I32[i]))
			if err != nil {
				return nil, err
			}
			out.I32[i] = int32(v)
		}
	case types.BigInt, types.Timestamp:
		for i := 0; i < n; i++ {
			if out.IsNull(i) {
				continue
			}
			v, err := arithI64(a.Op, l.I64[i], r.I64[i])
			if err != nil {
				return nil, err
			}
			out.I64[i] = v
		}
	case types.Double:
		switch a.Op {
		case OpAdd:
			for i := 0; i < n; i++ {
				out.F64[i] = l.F64[i] + r.F64[i]
			}
		case OpSub:
			for i := 0; i < n; i++ {
				out.F64[i] = l.F64[i] - r.F64[i]
			}
		case OpMul:
			for i := 0; i < n; i++ {
				out.F64[i] = l.F64[i] * r.F64[i]
			}
		case OpDiv:
			for i := 0; i < n; i++ {
				out.F64[i] = l.F64[i] / r.F64[i]
			}
		case OpMod:
			return nil, fmt.Errorf("expr: %% is not defined for DOUBLE")
		}
	default:
		return nil, fmt.Errorf("expr: arithmetic on type %s", a.Typ)
	}
	return out, nil
}

func arithI64(op ArithOp, a, b int64) (int64, error) {
	switch op {
	case OpAdd:
		return a + b, nil
	case OpSub:
		return a - b, nil
	case OpMul:
		return a * b, nil
	case OpDiv:
		if b == 0 {
			return 0, fmt.Errorf("expr: division by zero")
		}
		return a / b, nil
	default:
		if b == 0 {
			return 0, fmt.Errorf("expr: modulo by zero")
		}
		return a % b, nil
	}
}

func (a *Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", a.L.String(), a.Op, a.R.String())
}

// Neg is unary minus.
type Neg struct {
	X Expr
}

// Type implements Expr.
func (e *Neg) Type() types.Type { return e.X.Type() }

// Eval implements Expr.
func (e *Neg) Eval(in *vector.Chunk) (*vector.Vector, error) {
	src, err := e.X.Eval(in)
	if err != nil {
		return nil, err
	}
	n := in.Len()
	out := vector.NewLen(src.Type, n)
	copyValidity(out, src, n)
	switch src.Type {
	case types.Integer:
		for i := 0; i < n; i++ {
			out.I32[i] = -src.I32[i]
		}
	case types.BigInt:
		for i := 0; i < n; i++ {
			out.I64[i] = -src.I64[i]
		}
	case types.Double:
		for i := 0; i < n; i++ {
			out.F64[i] = -src.F64[i]
		}
	default:
		return nil, fmt.Errorf("expr: cannot negate type %s", src.Type)
	}
	return out, nil
}

func (e *Neg) String() string { return "-" + e.X.String() }

// ---- logic ----

// LogicOp is AND or OR.
type LogicOp int

// Logic operators.
const (
	OpAnd LogicOp = iota
	OpOr
)

// Logic implements three-valued AND/OR.
type Logic struct {
	Op   LogicOp
	L, R Expr
}

// Type implements Expr.
func (l *Logic) Type() types.Type { return types.Boolean }

// Eval implements Expr.
func (l *Logic) Eval(in *vector.Chunk) (*vector.Vector, error) {
	lv, err := l.L.Eval(in)
	if err != nil {
		return nil, err
	}
	rv, err := l.R.Eval(in)
	if err != nil {
		return nil, err
	}
	n := in.Len()
	out := vector.NewLen(types.Boolean, n)
	for i := 0; i < n; i++ {
		ln, rn := lv.IsNull(i), rv.IsNull(i)
		lb, rb := !ln && lv.Bools[i], !rn && rv.Bools[i]
		if l.Op == OpAnd {
			switch {
			case !ln && !lb, !rn && !rb:
				out.Bools[i] = false // false AND x = false
			case ln || rn:
				out.SetNull(i)
			default:
				out.Bools[i] = true
			}
		} else {
			switch {
			case lb, rb:
				out.Bools[i] = true // true OR x = true
			case ln || rn:
				out.SetNull(i)
			default:
				out.Bools[i] = false
			}
		}
	}
	return out, nil
}

func (l *Logic) String() string {
	op := "AND"
	if l.Op == OpOr {
		op = "OR"
	}
	return fmt.Sprintf("(%s %s %s)", l.L.String(), op, l.R.String())
}

// Not negates a boolean (NULL stays NULL).
type Not struct {
	X Expr
}

// Type implements Expr.
func (e *Not) Type() types.Type { return types.Boolean }

// Eval implements Expr.
func (e *Not) Eval(in *vector.Chunk) (*vector.Vector, error) {
	src, err := e.X.Eval(in)
	if err != nil {
		return nil, err
	}
	n := in.Len()
	out := vector.NewLen(types.Boolean, n)
	copyValidity(out, src, n)
	for i := 0; i < n; i++ {
		out.Bools[i] = !src.Bools[i]
	}
	return out, nil
}

func (e *Not) String() string { return "NOT " + e.X.String() }

// IsNull tests for NULL (never returns NULL itself).
type IsNull struct {
	X   Expr
	Not bool
}

// Type implements Expr.
func (e *IsNull) Type() types.Type { return types.Boolean }

// Eval implements Expr.
func (e *IsNull) Eval(in *vector.Chunk) (*vector.Vector, error) {
	src, err := e.X.Eval(in)
	if err != nil {
		return nil, err
	}
	n := in.Len()
	out := vector.NewLen(types.Boolean, n)
	for i := 0; i < n; i++ {
		out.Bools[i] = src.IsNull(i) != e.Not
	}
	return out, nil
}

func (e *IsNull) String() string {
	if e.Not {
		return e.X.String() + " IS NOT NULL"
	}
	return e.X.String() + " IS NULL"
}
