package types

import (
	"math"
	"testing"
	"testing/quick"
)

func TestParseTypeAliases(t *testing.T) {
	cases := map[string]Type{
		"BOOLEAN": Boolean, "bool": Boolean,
		"integer": Integer, "INT": Integer, "int4": Integer,
		"BIGINT": BigInt, "int8": BigInt, "long": BigInt,
		"double": Double, "REAL": Double, "float8": Double,
		"varchar": Varchar, "TEXT": Varchar, "string": Varchar,
		"timestamp": Timestamp, "DATETIME": Timestamp,
	}
	for name, want := range cases {
		got, err := ParseType(name)
		if err != nil || got != want {
			t.Errorf("ParseType(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseType("BLOB"); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestCommonTypePromotion(t *testing.T) {
	cases := []struct{ a, b, want Type }{
		{Integer, BigInt, BigInt},
		{Integer, Double, Double},
		{Boolean, Integer, Integer},
		{BigInt, Double, Double},
		{Null, Varchar, Varchar},
		{Varchar, Null, Varchar},
		{Timestamp, BigInt, Timestamp},
		{Varchar, Varchar, Varchar},
	}
	for _, c := range cases {
		got, err := CommonType(c.a, c.b)
		if err != nil || got != c.want {
			t.Errorf("CommonType(%v, %v) = %v, %v", c.a, c.b, got, err)
		}
	}
	if _, err := CommonType(Varchar, Double); err == nil {
		t.Error("VARCHAR+DOUBLE combined")
	}
}

func TestCastMatrix(t *testing.T) {
	cases := []struct {
		in   Value
		to   Type
		want string
	}{
		{NewInt(7), BigInt, "7"},
		{NewInt(7), Double, "7"},
		{NewInt(0), Boolean, "false"},
		{NewBigInt(42), Varchar, "42"},
		{NewDouble(2.9), Integer, "2"},
		{NewVarchar("19"), Integer, "19"},
		{NewVarchar(" 2.5 "), Double, "2.5"},
		{NewVarchar("true"), Boolean, "true"},
		{NewBool(true), Integer, "1"},
		{NewBigInt(1700000000000000), Timestamp, "2023-11-14 22:13:20.000000"},
	}
	for _, c := range cases {
		got, err := c.in.Cast(c.to)
		if err != nil {
			t.Errorf("cast %v to %v: %v", c.in, c.to, err)
			continue
		}
		if got.String() != c.want {
			t.Errorf("cast %v to %v = %q, want %q", c.in, c.to, got.String(), c.want)
		}
	}
}

func TestCastErrors(t *testing.T) {
	bad := []struct {
		in Value
		to Type
	}{
		{NewVarchar("duck"), BigInt},
		{NewVarchar("1.5.2"), Double},
		{NewBigInt(1 << 40), Integer},
		{NewDouble(1e300), BigInt},
		{NewVarchar("maybe"), Boolean},
	}
	for _, c := range bad {
		if _, err := c.in.Cast(c.to); err == nil {
			t.Errorf("cast %v to %v accepted", c.in, c.to)
		}
	}
}

func TestNullCasts(t *testing.T) {
	v, err := NewNull(BigInt).Cast(Varchar)
	if err != nil || !v.Null || v.Type != Varchar {
		t.Fatalf("%v %v", v, err)
	}
}

func TestCompareOrdering(t *testing.T) {
	if Compare(NewInt(1), NewInt(2)) >= 0 {
		t.Error("1 < 2")
	}
	if Compare(NewVarchar("a"), NewVarchar("b")) >= 0 {
		t.Error("a < b")
	}
	if Compare(NewDouble(1.5), NewInt(1)) <= 0 {
		t.Error("1.5 > 1")
	}
	if Compare(NewBigInt(5), NewBigInt(5)) != 0 {
		t.Error("5 == 5")
	}
}

// TestCompareTotalFPOrder: Compare over DOUBLE is a total order with
// NaN greatest — -Inf < finite < +Inf < NaN and NaN == NaN — so min/max
// merges and sort merges are order-insensitive even with NaN present.
func TestCompareTotalFPOrder(t *testing.T) {
	nan := NewDouble(math.NaN())
	ladder := []Value{NewDouble(math.Inf(-1)), NewDouble(-1e300), NewDouble(0),
		NewDouble(1e300), NewDouble(math.Inf(1)), nan}
	for i, lo := range ladder {
		for j, hi := range ladder {
			c := Compare(lo, hi)
			switch {
			case i < j && c >= 0:
				t.Errorf("Compare(%v, %v) = %d, want < 0", lo, hi, c)
			case i > j && c <= 0:
				t.Errorf("Compare(%v, %v) = %d, want > 0", lo, hi, c)
			case i == j && c != 0:
				t.Errorf("Compare(%v, %v) = %d, want 0", lo, hi, c)
			}
		}
	}
	if Compare(nan, NewBigInt(5)) <= 0 {
		t.Error("NaN must compare greater than promoted integers")
	}
	if CompareFloat(math.NaN(), math.NaN()) != 0 {
		t.Error("CompareFloat(NaN, NaN) != 0")
	}
}

func TestCompareIntFloatConsistency(t *testing.T) {
	f := func(a int32, b int32) bool {
		ci := Compare(NewInt(a), NewInt(b))
		cf := Compare(NewDouble(float64(a)), NewDouble(float64(b)))
		return (ci < 0) == (cf < 0) && (ci == 0) == (cf == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEqualSemantics(t *testing.T) {
	if !Equal(NewNull(BigInt), NewNull(BigInt)) {
		t.Error("NULLs of same type should be Equal")
	}
	if Equal(NewNull(BigInt), NewNull(Double)) {
		t.Error("NULLs of different type")
	}
	if Equal(NewInt(1), NewBigInt(1)) {
		t.Error("different types should not be Equal")
	}
	if !Equal(NewVarchar("x"), NewVarchar("x")) {
		t.Error("equal strings")
	}
}

func TestParseTimestampFormats(t *testing.T) {
	good := []string{
		"2023-11-14 22:13:20",
		"2023-11-14 22:13:20.123456",
		"2023-11-14",
	}
	for _, s := range good {
		if _, err := ParseTimestamp(s); err != nil {
			t.Errorf("%q rejected: %v", s, err)
		}
	}
	if _, err := ParseTimestamp("birthday"); err == nil {
		t.Error("junk timestamp accepted")
	}
}

func TestValueStringRendering(t *testing.T) {
	cases := map[string]Value{
		"NULL": NewNull(BigInt),
		"true": NewBool(true),
		"-7":   NewInt(-7),
		"1.25": NewDouble(1.25),
		"hi":   NewVarchar("hi"),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("%v renders %q, want %q", v.Type, got, want)
		}
	}
}

func TestWidths(t *testing.T) {
	if Boolean.Width() != 1 || Integer.Width() != 4 || BigInt.Width() != 8 || Varchar.Width() != -1 {
		t.Fatal("widths")
	}
}
