// Package types defines QuackDB's SQL type system: logical types, typed
// values, and the coercion rules used by the binder and the vectorized
// expression evaluator.
package types

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Type identifies a logical SQL type.
type Type uint8

// The supported logical types. The zero value Invalid marks unbound or
// erroneous expressions.
const (
	Invalid Type = iota
	Boolean
	Integer   // 32-bit signed
	BigInt    // 64-bit signed
	Double    // IEEE-754 float64
	Varchar   // UTF-8 string
	Timestamp // microseconds since Unix epoch, 64-bit signed
	Null      // the type of an untyped NULL literal
)

// String returns the SQL spelling of the type.
func (t Type) String() string {
	switch t {
	case Boolean:
		return "BOOLEAN"
	case Integer:
		return "INTEGER"
	case BigInt:
		return "BIGINT"
	case Double:
		return "DOUBLE"
	case Varchar:
		return "VARCHAR"
	case Timestamp:
		return "TIMESTAMP"
	case Null:
		return "NULL"
	default:
		return "INVALID"
	}
}

// ParseType resolves a SQL type name to a Type. It accepts the common
// aliases (INT, INT4, INT8, LONG, FLOAT8, REAL, TEXT, STRING, BOOL, DATETIME).
func ParseType(name string) (Type, error) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "BOOLEAN", "BOOL":
		return Boolean, nil
	case "INTEGER", "INT", "INT4":
		return Integer, nil
	case "BIGINT", "INT8", "LONG":
		return BigInt, nil
	case "DOUBLE", "FLOAT8", "REAL", "FLOAT":
		return Double, nil
	case "VARCHAR", "TEXT", "STRING", "CHAR":
		return Varchar, nil
	case "TIMESTAMP", "DATETIME":
		return Timestamp, nil
	default:
		return Invalid, fmt.Errorf("unknown type %q", name)
	}
}

// IsNumeric reports whether t is an arithmetic type.
func (t Type) IsNumeric() bool {
	return t == Integer || t == BigInt || t == Double || t == Boolean
}

// Width returns the fixed byte width of the physical representation, or
// -1 for variable-width types.
func (t Type) Width() int {
	switch t {
	case Boolean:
		return 1
	case Integer:
		return 4
	case BigInt, Double, Timestamp:
		return 8
	default:
		return -1
	}
}

// CommonType returns the type both operands should be cast to for a
// binary operation, following the usual numeric promotion ladder
// (BOOLEAN < INTEGER < BIGINT < DOUBLE). NULL adopts the other side.
func CommonType(a, b Type) (Type, error) {
	if a == b {
		return a, nil
	}
	if a == Null {
		return b, nil
	}
	if b == Null {
		return a, nil
	}
	rank := func(t Type) int {
		switch t {
		case Boolean:
			return 1
		case Integer:
			return 2
		case BigInt:
			return 3
		case Double:
			return 4
		default:
			return 0
		}
	}
	ra, rb := rank(a), rank(b)
	if ra > 0 && rb > 0 {
		if ra > rb {
			return a, nil
		}
		return b, nil
	}
	// Varchar/Timestamp only combine with themselves (handled above);
	// allow comparing timestamps with bigints (raw micros).
	if (a == Timestamp && b == BigInt) || (a == BigInt && b == Timestamp) {
		return Timestamp, nil
	}
	return Invalid, fmt.Errorf("cannot combine types %s and %s", a, b)
}

// Value is a single dynamically-typed SQL value, used by the
// value-at-a-time API, literals, and test fixtures. The vectorized engine
// never allocates Values on the hot path.
type Value struct {
	Type Type
	Null bool
	// One of the following is set according to Type.
	Bool bool
	I64  int64 // Integer, BigInt and Timestamp payloads
	F64  float64
	Str  string
}

// NewNull returns a NULL value of the given logical type.
func NewNull(t Type) Value { return Value{Type: t, Null: true} }

// NewBool returns a BOOLEAN value.
func NewBool(v bool) Value { return Value{Type: Boolean, Bool: v} }

// NewInt returns an INTEGER value.
func NewInt(v int32) Value { return Value{Type: Integer, I64: int64(v)} }

// NewBigInt returns a BIGINT value.
func NewBigInt(v int64) Value { return Value{Type: BigInt, I64: v} }

// NewDouble returns a DOUBLE value.
func NewDouble(v float64) Value { return Value{Type: Double, F64: v} }

// NewVarchar returns a VARCHAR value.
func NewVarchar(v string) Value { return Value{Type: Varchar, Str: v} }

// NewTimestamp returns a TIMESTAMP value from microseconds since epoch.
func NewTimestamp(micros int64) Value { return Value{Type: Timestamp, I64: micros} }

// String renders the value the way the CLI prints it.
func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	switch v.Type {
	case Boolean:
		return strconv.FormatBool(v.Bool)
	case Integer, BigInt:
		return strconv.FormatInt(v.I64, 10)
	case Double:
		return strconv.FormatFloat(v.F64, 'g', -1, 64)
	case Varchar:
		return v.Str
	case Timestamp:
		return time.UnixMicro(v.I64).UTC().Format("2006-01-02 15:04:05.000000")
	default:
		return "?"
	}
}

// AsFloat returns the value as a float64, for numeric types.
func (v Value) AsFloat() float64 {
	switch v.Type {
	case Double:
		return v.F64
	case Boolean:
		if v.Bool {
			return 1
		}
		return 0
	default:
		return float64(v.I64)
	}
}

// AsInt returns the value as an int64, truncating doubles.
func (v Value) AsInt() int64 {
	switch v.Type {
	case Double:
		return int64(v.F64)
	case Boolean:
		if v.Bool {
			return 1
		}
		return 0
	default:
		return v.I64
	}
}

// Cast converts v to the target type. NULLs cast to NULL of the target
// type. Lossy numeric downcasts that overflow return an error, matching
// the engine's strict cast semantics.
func (v Value) Cast(to Type) (Value, error) {
	if v.Type == to {
		return v, nil
	}
	if v.Null || v.Type == Null {
		return NewNull(to), nil
	}
	switch to {
	case Boolean:
		switch v.Type {
		case Integer, BigInt:
			return NewBool(v.I64 != 0), nil
		case Double:
			return NewBool(v.F64 != 0), nil
		case Varchar:
			b, err := strconv.ParseBool(strings.ToLower(v.Str))
			if err != nil {
				return Value{}, fmt.Errorf("cannot cast %q to BOOLEAN", v.Str)
			}
			return NewBool(b), nil
		}
	case Integer:
		switch v.Type {
		case Boolean:
			return NewInt(int32(v.AsInt())), nil
		case BigInt, Timestamp:
			if v.I64 > math.MaxInt32 || v.I64 < math.MinInt32 {
				return Value{}, fmt.Errorf("value %d out of range for INTEGER", v.I64)
			}
			return NewInt(int32(v.I64)), nil
		case Double:
			if v.F64 > math.MaxInt32 || v.F64 < math.MinInt32 {
				return Value{}, fmt.Errorf("value %g out of range for INTEGER", v.F64)
			}
			return NewInt(int32(v.F64)), nil
		case Varchar:
			i, err := strconv.ParseInt(strings.TrimSpace(v.Str), 10, 32)
			if err != nil {
				return Value{}, fmt.Errorf("cannot cast %q to INTEGER", v.Str)
			}
			return NewInt(int32(i)), nil
		}
	case BigInt:
		switch v.Type {
		case Boolean, Integer, Timestamp:
			return NewBigInt(v.AsInt()), nil
		case Double:
			if v.F64 >= math.MaxInt64 || v.F64 <= math.MinInt64 {
				return Value{}, fmt.Errorf("value %g out of range for BIGINT", v.F64)
			}
			return NewBigInt(int64(v.F64)), nil
		case Varchar:
			i, err := strconv.ParseInt(strings.TrimSpace(v.Str), 10, 64)
			if err != nil {
				return Value{}, fmt.Errorf("cannot cast %q to BIGINT", v.Str)
			}
			return NewBigInt(i), nil
		}
	case Double:
		switch v.Type {
		case Boolean, Integer, BigInt, Timestamp:
			return NewDouble(v.AsFloat()), nil
		case Varchar:
			f, err := strconv.ParseFloat(strings.TrimSpace(v.Str), 64)
			if err != nil {
				return Value{}, fmt.Errorf("cannot cast %q to DOUBLE", v.Str)
			}
			return NewDouble(f), nil
		}
	case Varchar:
		return NewVarchar(v.String()), nil
	case Timestamp:
		switch v.Type {
		case Integer, BigInt:
			return NewTimestamp(v.I64), nil
		case Varchar:
			ts, err := ParseTimestamp(v.Str)
			if err != nil {
				return Value{}, err
			}
			return NewTimestamp(ts), nil
		}
	}
	return Value{}, fmt.Errorf("cannot cast %s to %s", v.Type, to)
}

// ParseTimestamp parses the timestamp formats the engine accepts and
// returns microseconds since the Unix epoch.
func ParseTimestamp(s string) (int64, error) {
	s = strings.TrimSpace(s)
	for _, layout := range []string{
		"2006-01-02 15:04:05.000000",
		"2006-01-02 15:04:05",
		"2006-01-02T15:04:05Z07:00",
		"2006-01-02",
	} {
		if t, err := time.Parse(layout, s); err == nil {
			return t.UnixMicro(), nil
		}
	}
	return 0, fmt.Errorf("cannot parse %q as TIMESTAMP", s)
}

// Compare orders two non-NULL values of the same logical family. It
// returns -1, 0 or +1. Numeric types compare by promoted value; it panics
// on incomparable types (the binder guarantees comparability).
// Floating-point comparison is a total order: NaN compares equal to
// itself and greater than every other value (including +Inf), so sorts
// and min/max merges are deterministic regardless of evaluation order.
func Compare(a, b Value) int {
	if a.Type == Varchar || b.Type == Varchar {
		return strings.Compare(a.Str, b.Str)
	}
	if a.Type == Double || b.Type == Double {
		return CompareFloat(a.AsFloat(), b.AsFloat())
	}
	ai, bi := a.AsInt(), b.AsInt()
	switch {
	case ai < bi:
		return -1
	case ai > bi:
		return 1
	default:
		return 0
	}
}

// CompareFloat orders two float64s under the engine's total FP order:
// -Inf < finite < +Inf < NaN, and NaN == NaN. Native < and > are false
// for any comparison involving NaN, which would make NaN "equal" to
// everything — not a valid ordering — and leave sort output dependent on
// arrival order.
func CompareFloat(a, b float64) int {
	anan, bnan := math.IsNaN(a), math.IsNaN(b)
	if anan || bnan {
		switch {
		case anan && bnan:
			return 0
		case anan:
			return 1
		default:
			return -1
		}
	}
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Equal reports deep value equality including NULL-ness and type.
func Equal(a, b Value) bool {
	if a.Null != b.Null {
		return false
	}
	if a.Null {
		return a.Type == b.Type
	}
	if a.Type != b.Type {
		return false
	}
	switch a.Type {
	case Boolean:
		return a.Bool == b.Bool
	case Varchar:
		return a.Str == b.Str
	case Double:
		return a.F64 == b.F64
	default:
		return a.I64 == b.I64
	}
}
