package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestTasksRun: every submitted task runs exactly once, across queries.
func TestTasksRun(t *testing.T) {
	s := New(4)
	defer s.Stop()
	const queries, tasks = 8, 200
	var ran atomic.Int64
	var wg sync.WaitGroup
	wg.Add(queries * tasks)
	for q := 0; q < queries; q++ {
		qu := s.NewQuery(0)
		for i := 0; i < tasks; i++ {
			qu.Submit(func() {
				ran.Add(1)
				wg.Done()
			})
		}
	}
	wg.Wait()
	if got := ran.Load(); got != queries*tasks {
		t.Fatalf("ran %d tasks, want %d", got, queries*tasks)
	}
}

// TestResubmittingChain: the operator idiom — a task that re-submits
// itself until done — completes on a one-worker pool.
func TestResubmittingChain(t *testing.T) {
	s := New(1)
	defer s.Stop()
	q := s.NewQuery(0)
	done := make(chan struct{})
	n := 0
	var step func()
	step = func() {
		n++
		if n == 100 {
			close(done)
			return
		}
		q.Submit(step)
	}
	q.Submit(step)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("chain did not complete")
	}
	if n != 100 {
		t.Fatalf("chain ran %d steps, want 100", n)
	}
}

// TestStopJoinsWorkers: Stop retires every pool goroutine.
func TestStopJoinsWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(8)
	q := s.NewQuery(0)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		q.Submit(func() { wg.Done() })
	}
	wg.Wait()
	s.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("%d goroutines after Stop, %d before", got, before)
	}
}

// TestResize: shrinking and growing both converge, and tasks keep
// running throughout.
func TestResize(t *testing.T) {
	s := New(8)
	defer s.Stop()
	q := s.NewQuery(0)
	var ran atomic.Int64
	var wg sync.WaitGroup
	submit := func(n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			q.Submit(func() {
				ran.Add(1)
				wg.Done()
			})
		}
	}
	submit(100)
	s.Resize(2)
	if got := s.Size(); got != 2 {
		t.Fatalf("Size after shrink = %d", got)
	}
	submit(100)
	s.Resize(6)
	submit(100)
	wg.Wait()
	if got := ran.Load(); got != 300 {
		t.Fatalf("ran %d tasks across resizes, want 300", got)
	}
}

// TestPriorityShare: with the pool saturated by two equally greedy
// queries, the higher-priority one gets materially more service. The
// margin is loose — scheduling is timing-dependent — but a fair-share
// failure (FIFO across queries) would show ~1:1.
func TestPriorityShare(t *testing.T) {
	s := New(1) // one worker makes the shares directly comparable
	defer s.Stop()
	spin := func() {
		deadline := time.Now().Add(200 * time.Microsecond)
		for time.Now().Before(deadline) {
		}
	}
	var ranLow, ranHigh atomic.Int64
	low, high := s.NewQuery(100), s.NewQuery(400)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	mkStep := func(q *Query, n *atomic.Int64) func() {
		var step func()
		step = func() {
			select {
			case <-stop:
				wg.Done()
				return
			default:
			}
			spin()
			n.Add(1)
			q.Submit(step)
		}
		return step
	}
	wg.Add(2)
	low.Submit(mkStep(low, &ranLow))
	high.Submit(mkStep(high, &ranHigh))
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	l, h := ranLow.Load(), ranHigh.Load()
	if l == 0 {
		t.Fatal("low-priority query starved outright")
	}
	if h < l*2 {
		t.Fatalf("priority 400 ran %d steps vs %d at priority 100; want at least 2x", h, l)
	}
}
