// Package sched implements the engine-wide morsel scheduler: one fixed
// pool of worker goroutines, sized at database open (QUACK_THREADS /
// GOMAXPROCS) and resized only by an explicit PRAGMA threads, that
// multiplexes runnable tasks from every active query. Queries submit
// short, non-blocking steps (process one morsel, merge one partition);
// the pool picks the next step by weighted fair share with priority
// aging, so a long scan cannot starve a point query no matter how many
// sessions are active.
//
// Fairness model: each query accrues virtual time at rate
// duration/weight for the steps it runs (weight = priority/100, so a
// priority-200 query is charged half and receives twice the share), and
// the pool always runs the runnable query with the lowest effective
// virtual time. Waiting queries age: the effective key falls the longer
// a query has been runnable without service, which bounds worst-case
// wait even against a stream of high-priority arrivals. A query that
// was idle re-enters at the floor of the runnable set's virtual times —
// sleeping banks no credit.
//
// Tasks must not block on other pool tasks. Every operator in
// internal/exec submits steps that run bounded compute (plus file IO
// for spilling operators) and either finish or re-submit themselves;
// coordination with the consuming session goroutine goes through
// channels with capacity guaranteed by ticket windows, so a pool of any
// size — including one worker — makes progress.
package sched

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// Task is one scheduler step. It must not block waiting for another
// pool task; it may re-submit itself (or successors) to its Query.
type Task func()

// DefaultPriority is the weight-neutral session priority.
const DefaultPriority = 100

// agingRate is the virtual-time credit per nanosecond a runnable query
// waits unserved. At 0.5, a query waiting twice some duration beats a
// query that just consumed that duration at default weight, whatever
// their histories — which bounds starvation.
const agingRate = 0.5

// Scheduler is the engine-wide pool. One instance per open database;
// tests that build exec contexts directly share a process-global
// default instance.
type Scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	target  int // desired pool size
	workers int // live pool goroutines
	stopped bool

	runnable []*Query
	// lastV is the highest virtual time any query had after service;
	// a query arriving into an idle pool re-enters at this floor.
	lastV float64

	met Metrics // optional observability hooks (zero value: off)
}

// Metrics are the scheduler's observability hooks, registered by the
// core layer at database open. All fields are optional; the zero value
// disables collection.
type Metrics struct {
	// Steps counts completed scheduler steps.
	Steps *obs.Counter
	// StepWait records, per picked step, how long its query had been
	// runnable without service — the queueing delay fairness is supposed
	// to bound.
	StepWait *obs.Histogram
	// AgingPicks counts picks where priority aging changed the decision:
	// the chosen query was not the one with the lowest raw virtual time.
	AgingPicks *obs.Counter
}

// SetMetrics installs the observability hooks (hooks fire under the
// scheduler mutex, so installation at any point is safe).
func (s *Scheduler) SetMetrics(m Metrics) {
	s.mu.Lock()
	s.met = m
	s.mu.Unlock()
}

// RunnableDepth reports how many queries currently have queued steps —
// the scheduler's instantaneous backlog.
func (s *Scheduler) RunnableDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.runnable)
}

// Query is one query's scheduling account: a FIFO of pending steps plus
// the fair-share bookkeeping. Created per query execution; it needs no
// explicit teardown — a drained query simply leaves the runnable set.
type Query struct {
	s       *Scheduler
	weight  float64
	vtime   float64
	wait    time.Time // when the query last became runnable unserved
	tasks   []Task
	queued  bool // in s.runnable
	running int  // steps currently executing on workers
}

// New creates a scheduler with n pool workers (floored at 1).
func New(n int) *Scheduler {
	s := &Scheduler{}
	s.cond = sync.NewCond(&s.mu)
	if n < 1 {
		n = 1
	}
	s.mu.Lock()
	s.target = n
	for i := 0; i < n; i++ {
		s.workers++
		go s.worker()
	}
	s.mu.Unlock()
	return s
}

// Size reports the current pool target.
func (s *Scheduler) Size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.target
}

// Resize changes the pool size (floored at 1). Growth spawns workers
// immediately; excess workers retire as they finish their current step.
func (s *Scheduler) Resize(n int) {
	if n < 1 {
		n = 1
	}
	s.mu.Lock()
	s.target = n
	for s.workers < s.target && !s.stopped {
		s.workers++
		go s.worker()
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Stop drains queued tasks, retires every worker and blocks until the
// pool is empty. Submitting after Stop panics (the database is closed).
func (s *Scheduler) Stop() {
	s.mu.Lock()
	s.stopped = true
	s.cond.Broadcast()
	for s.workers > 0 {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// NewQuery opens a scheduling account with the given session priority
// (<=0 means DefaultPriority). Higher priority → larger CPU share.
func (s *Scheduler) NewQuery(priority int) *Query {
	if priority <= 0 {
		priority = DefaultPriority
	}
	return &Query{s: s, weight: float64(priority) / float64(DefaultPriority)}
}

// Submit queues one step on the query's FIFO.
func (q *Query) Submit(t Task) {
	s := q.s
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		panic("sched: Submit on stopped scheduler")
	}
	q.tasks = append(q.tasks, t)
	if !q.queued {
		q.queued = true
		q.wait = time.Now()
		// Re-enter at the runnable floor: idling banks no credit. A
		// query with a step still executing is in service, not idle —
		// clamping it would erase the vtime lead its weight earned.
		if q.running == 0 {
			floor := s.lastV
			for _, r := range s.runnable {
				if r.vtime < floor {
					floor = r.vtime
				}
			}
			if q.vtime < floor {
				q.vtime = floor
			}
		}
		s.runnable = append(s.runnable, q)
	}
	s.mu.Unlock()
	s.cond.Signal()
}

// pickLocked pops the next task: from the runnable query with the
// lowest aged virtual time. Caller holds s.mu.
func (s *Scheduler) pickLocked() (Task, *Query) {
	if len(s.runnable) == 0 {
		return nil, nil
	}
	now := time.Now()
	best, bestKey := -1, 0.0
	rawBest, rawV := -1, 0.0
	for i, q := range s.runnable {
		key := q.vtime - agingRate*float64(now.Sub(q.wait))
		if best < 0 || key < bestKey {
			best, bestKey = i, key
		}
		if rawBest < 0 || q.vtime < rawV {
			rawBest, rawV = i, q.vtime
		}
	}
	q := s.runnable[best]
	if s.met.StepWait != nil {
		s.met.StepWait.Observe(now.Sub(q.wait).Nanoseconds())
	}
	if s.met.AgingPicks != nil && best != rawBest {
		s.met.AgingPicks.Inc()
	}
	t := q.tasks[0]
	q.tasks = q.tasks[1:]
	if len(q.tasks) == 0 {
		q.queued = false
		last := len(s.runnable) - 1
		s.runnable[best] = s.runnable[last]
		s.runnable = s.runnable[:last]
	} else {
		q.wait = now
	}
	return t, q
}

func (s *Scheduler) worker() {
	s.mu.Lock()
	for {
		if s.workers > s.target && !s.stopped {
			s.workers--
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		t, q := s.pickLocked()
		if t == nil {
			if s.stopped {
				s.workers--
				s.cond.Broadcast()
				s.mu.Unlock()
				return
			}
			s.cond.Wait()
			continue
		}
		q.running++
		s.mu.Unlock()
		start := time.Now()
		t()
		d := time.Since(start)
		s.mu.Lock()
		if s.met.Steps != nil {
			s.met.Steps.Inc()
		}
		q.running--
		q.vtime += float64(d) / q.weight
		if q.vtime > s.lastV {
			s.lastV = q.vtime
		}
	}
}
