package sql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/types"
)

// Parser builds statements from SQL text.
type Parser struct {
	src       string
	toks      []Token
	pos       int
	numParams int
}

// Parse tokenizes and parses src into a list of statements.
func Parse(src string) ([]Statement, error) {
	lex := NewLexer(src)
	var toks []Token
	for {
		t, err := lex.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			break
		}
	}
	p := &Parser{src: src, toks: toks}
	var stmts []Statement
	for !p.atEOF() {
		if p.acceptOp(";") {
			continue
		}
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		if !p.acceptOp(";") && !p.atEOF() {
			return nil, p.errorf("expected ';' or end of input")
		}
	}
	return stmts, nil
}

// ParseOne parses exactly one statement.
func ParseOne(src string) (Statement, error) {
	stmts, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("expected exactly one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// NumParams returns the number of ? parameters seen (after Parse).
func NumParams(stmts []Statement) int {
	n := 0
	var walkExpr func(e Expr)
	var walkSel func(s *SelectStmt)
	walkExpr = func(e Expr) {
		switch e := e.(type) {
		case *Param:
			if e.Index+1 > n {
				n = e.Index + 1
			}
		case *Unary:
			walkExpr(e.X)
		case *Binary:
			walkExpr(e.L)
			walkExpr(e.R)
		case *IsNull:
			walkExpr(e.X)
		case *Between:
			walkExpr(e.X)
			walkExpr(e.Lo)
			walkExpr(e.Hi)
		case *InList:
			walkExpr(e.X)
			for _, x := range e.List {
				walkExpr(x)
			}
		case *Like:
			walkExpr(e.X)
			walkExpr(e.Pattern)
		case *Case:
			if e.Operand != nil {
				walkExpr(e.Operand)
			}
			for _, w := range e.Whens {
				walkExpr(w.Cond)
				walkExpr(w.Result)
			}
			if e.Else != nil {
				walkExpr(e.Else)
			}
		case *Cast:
			walkExpr(e.X)
		case *FuncCall:
			for _, a := range e.Args {
				walkExpr(a)
			}
			if e.Over != nil {
				for _, p := range e.Over.PartitionBy {
					walkExpr(p)
				}
				for _, o := range e.Over.OrderBy {
					walkExpr(o.Expr)
				}
				if f := e.Over.Frame; f != nil {
					if f.Start.Offset != nil {
						walkExpr(f.Start.Offset)
					}
					if f.End.Offset != nil {
						walkExpr(f.End.Offset)
					}
				}
			}
		}
	}
	var walkRef func(r TableRef)
	walkRef = func(r TableRef) {
		switch r := r.(type) {
		case *SubqueryRef:
			walkSel(r.Select)
		case *JoinRef:
			walkRef(r.Left)
			walkRef(r.Right)
			if r.On != nil {
				walkExpr(r.On)
			}
		}
	}
	walkSel = func(s *SelectStmt) {
		for s != nil {
			for _, se := range s.Exprs {
				if se.Expr != nil {
					walkExpr(se.Expr)
				}
			}
			if s.From != nil {
				walkRef(s.From)
			}
			for _, e := range []Expr{s.Where, s.Having, s.Limit, s.Offset} {
				if e != nil {
					walkExpr(e)
				}
			}
			for _, g := range s.GroupBy {
				walkExpr(g)
			}
			for _, o := range s.OrderBy {
				walkExpr(o.Expr)
			}
			s = s.UnionAll
		}
	}
	for _, st := range stmts {
		switch st := st.(type) {
		case *SelectStmt:
			walkSel(st)
		case *InsertStmt:
			for _, row := range st.Rows {
				for _, e := range row {
					walkExpr(e)
				}
			}
			if st.Select != nil {
				walkSel(st.Select)
			}
		case *UpdateStmt:
			for _, sc := range st.Set {
				walkExpr(sc.Value)
			}
			if st.Where != nil {
				walkExpr(st.Where)
			}
		case *DeleteStmt:
			if st.Where != nil {
				walkExpr(st.Where)
			}
		}
	}
	return n
}

// ---- token helpers ----

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) atEOF() bool { return p.cur().Kind == TokEOF }

func (p *Parser) advance() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *Parser) errorf(format string, args ...any) error {
	t := p.cur()
	near := t.Text
	if t.Kind == TokEOF {
		near = "end of input"
	}
	return fmt.Errorf("parse error near %q (offset %d): %s", near, t.Pos, fmt.Sprintf(format, args...))
}

func (p *Parser) acceptKeyword(kw string) bool {
	if t := p.cur(); t.Kind == TokKeyword && t.Text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s", kw)
	}
	return nil
}

func (p *Parser) peekKeyword(kw string) bool {
	t := p.cur()
	return t.Kind == TokKeyword && t.Text == kw
}

func (p *Parser) acceptOp(op string) bool {
	if t := p.cur(); t.Kind == TokOp && t.Text == op {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errorf("expected %q", op)
	}
	return nil
}

func (p *Parser) peekOp(op string) bool {
	t := p.cur()
	return t.Kind == TokOp && t.Text == op
}

// Window-clause words (OVER, PARTITION, ROWS, RANGE, PRECEDING,
// FOLLOWING, CURRENT, ROW, UNBOUNDED) are contextual, not reserved:
// they lex as plain identifiers and are matched case-insensitively only
// in the positions the OVER grammar expects them, so columns and tables
// may keep those common names.

func (p *Parser) peekContextual(kw string) bool {
	t := p.cur()
	return t.Kind == TokIdent && strings.EqualFold(t.Text, kw)
}

func (p *Parser) acceptContextual(kw string) bool {
	if p.peekContextual(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectContextual(kw string) error {
	if !p.acceptContextual(kw) {
		return p.errorf("expected %s", kw)
	}
	return nil
}

// expectIdent also accepts non-reserved use of keywords as identifiers
// where unambiguous (common for column names like "value").
func (p *Parser) expectIdent() (string, error) {
	t := p.cur()
	if t.Kind == TokIdent {
		p.pos++
		return t.Text, nil
	}
	return "", p.errorf("expected identifier")
}

// ---- statements ----

func (p *Parser) parseStatement() (Statement, error) {
	t := p.cur()
	if t.Kind != TokKeyword {
		return nil, p.errorf("expected a statement keyword")
	}
	switch t.Text {
	case "SELECT":
		return p.parseSelect()
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "BEGIN":
		p.advance()
		p.acceptKeyword("TRANSACTION")
		return &BeginStmt{}, nil
	case "COMMIT":
		p.advance()
		return &CommitStmt{}, nil
	case "ROLLBACK":
		p.advance()
		return &RollbackStmt{}, nil
	case "CHECKPOINT":
		p.advance()
		return &CheckpointStmt{}, nil
	case "COPY":
		return p.parseCopy()
	case "EXPLAIN":
		p.advance()
		// ANALYZE is contextual: it lexes as an identifier and only has
		// meaning directly after EXPLAIN, so tables may keep the name.
		analyze := p.acceptContextual("ANALYZE")
		inner, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Stmt: inner, Analyze: analyze}, nil
	case "PRAGMA":
		return p.parsePragma()
	default:
		return nil, p.errorf("unsupported statement %s", t.Text)
	}
}

func (p *Parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{}
	if p.acceptKeyword("DISTINCT") {
		s.Distinct = true
	} else {
		p.acceptKeyword("ALL")
	}
	for {
		se, err := p.parseSelectExpr()
		if err != nil {
			return nil, err
		}
		s.Exprs = append(s.Exprs, se)
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKeyword("FROM") {
		from, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		s.From = from
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = e
	}
	if p.acceptKeyword("UNION") {
		if err := p.expectKeyword("ALL"); err != nil {
			return nil, p.errorf("only UNION ALL is supported")
		}
		next, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		s.UnionAll = next
		return s, nil
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		items, err := p.parseOrderItems()
		if err != nil {
			return nil, err
		}
		s.OrderBy = items
	}
	if p.acceptKeyword("LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Limit = e
		if p.acceptKeyword("OFFSET") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.Offset = e
		}
	}
	return s, nil
}

// parseOrderItems parses a comma-separated ORDER BY key list (shared by
// SELECT ... ORDER BY and the OVER clause).
func (p *Parser) parseOrderItems() ([]OrderItem, error) {
	var items []OrderItem
	for {
		item := OrderItem{}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		item.Expr = e
		if p.acceptKeyword("DESC") {
			item.Desc = true
		} else {
			p.acceptKeyword("ASC")
		}
		if p.acceptKeyword("NULLS") {
			if p.acceptKeyword("LAST") {
				item.NullsLast = true
			} else if err := p.expectKeyword("FIRST"); err != nil {
				return nil, err
			}
			item.NullsSet = true
		}
		items = append(items, item)
		if !p.acceptOp(",") {
			return items, nil
		}
	}
}

func (p *Parser) parseSelectExpr() (SelectExpr, error) {
	if p.acceptOp("*") {
		return SelectExpr{Star: true}, nil
	}
	// t.* form
	if p.cur().Kind == TokIdent && p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].Kind == TokOp && p.toks[p.pos+1].Text == "." &&
		p.toks[p.pos+2].Kind == TokOp && p.toks[p.pos+2].Text == "*" {
		table := p.advance().Text
		p.advance() // .
		p.advance() // *
		return SelectExpr{Star: true, TableStar: table}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectExpr{}, err
	}
	se := SelectExpr{Expr: e}
	if p.acceptKeyword("AS") {
		name, err := p.expectIdent()
		if err != nil {
			return SelectExpr{}, err
		}
		se.Alias = name
	} else if p.cur().Kind == TokIdent {
		se.Alias = p.advance().Text
	}
	return se, nil
}

func (p *Parser) parseTableRef() (TableRef, error) {
	left, err := p.parseTableAtom()
	if err != nil {
		return nil, err
	}
	for {
		var jt JoinType
		switch {
		case p.acceptKeyword("JOIN"):
			jt = JoinInner
		case p.peekKeyword("INNER"):
			p.advance()
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			jt = JoinInner
		case p.peekKeyword("LEFT"):
			p.advance()
			p.acceptKeyword("OUTER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			jt = JoinLeft
		case p.peekKeyword("CROSS"):
			p.advance()
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			jt = JoinCross
		case p.acceptOp(","):
			jt = JoinCross
		default:
			return left, nil
		}
		right, err := p.parseTableAtom()
		if err != nil {
			return nil, err
		}
		j := &JoinRef{Left: left, Right: right, Type: jt}
		if jt != JoinCross {
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			j.On = cond
		}
		left = j
	}
}

func (p *Parser) parseTableAtom() (TableRef, error) {
	if p.acceptOp("(") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		ref := &SubqueryRef{Select: sel}
		if p.acceptKeyword("AS") {
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			ref.Alias = name
		} else if p.cur().Kind == TokIdent {
			ref.Alias = p.advance().Text
		}
		if ref.Alias == "" {
			return nil, p.errorf("subquery in FROM requires an alias")
		}
		return ref, nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ref := &BaseTable{Name: name}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ref.Alias = alias
	} else if p.cur().Kind == TokIdent {
		ref.Alias = p.advance().Text
	}
	return ref, nil
}

func (p *Parser) parseCreate() (Statement, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if p.acceptKeyword("VIEW") {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AS"); err != nil {
			return nil, err
		}
		start := p.cur().Pos
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		end := p.cur().Pos
		if p.atEOF() {
			end = len(p.src)
		}
		return &CreateViewStmt{Name: name, Select: sel, SQL: strings.TrimSpace(p.src[start:end])}, nil
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	st := &CreateTableStmt{}
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		st.IfNotExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st.Name = name
	if p.acceptKeyword("AS") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		st.AsSelect = sel
		return st, nil
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	for {
		colName, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		typeName, err := p.typeName()
		if err != nil {
			return nil, err
		}
		typ, err := types.ParseType(typeName)
		if err != nil {
			return nil, p.errorf("%v", err)
		}
		def := ColDef{Name: colName, Type: typ}
		if p.acceptKeyword("NOT") {
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			def.NotNull = true
		} else {
			p.acceptKeyword("NULL")
		}
		st.Cols = append(st.Cols, def)
		if p.acceptOp(",") {
			continue
		}
		break
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return st, nil
}

// typeName consumes a type identifier (IDENT or an unreserved keyword).
func (p *Parser) typeName() (string, error) {
	t := p.cur()
	if t.Kind == TokIdent {
		p.pos++
		return t.Text, nil
	}
	return "", p.errorf("expected a type name")
}

func (p *Parser) parseDrop() (Statement, error) {
	if err := p.expectKeyword("DROP"); err != nil {
		return nil, err
	}
	st := &DropStmt{}
	if p.acceptKeyword("VIEW") {
		st.View = true
	} else if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		st.IfExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st.Name = name
	return st, nil
}

func (p *Parser) parseInsert() (Statement, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: name}
	if p.acceptOp("(") {
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, col)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("VALUES") {
		for {
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			var row []Expr
			for {
				e, err := p.parseValuesExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			st.Rows = append(st.Rows, row)
			if !p.acceptOp(",") {
				break
			}
		}
		return st, nil
	}
	if p.peekKeyword("SELECT") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		st.Select = sel
		return st, nil
	}
	return nil, p.errorf("expected VALUES or SELECT")
}

func (p *Parser) parseUpdate() (Statement, error) {
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: name}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Set = append(st.Set, SetClause{Column: col, Value: val})
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *Parser) parseDelete() (Statement, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: name}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *Parser) parseCopy() (Statement, error) {
	if err := p.expectKeyword("COPY"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &CopyStmt{Table: name, Delimiter: ','}
	switch {
	case p.acceptKeyword("FROM"):
		st.From = true
	case p.acceptKeyword("TO"):
		st.From = false
	default:
		return nil, p.errorf("expected FROM or TO")
	}
	if p.cur().Kind != TokString {
		return nil, p.errorf("expected a quoted file path")
	}
	st.Path = p.advance().Text
	if p.acceptKeyword("WITH") || p.peekKeyword("HEADER") || p.peekKeyword("DELIMITER") {
		p.acceptOp("(")
		for {
			switch {
			case p.acceptKeyword("HEADER"):
				st.Header = true
			case p.acceptKeyword("DELIMITER"):
				if p.cur().Kind != TokString || len(p.cur().Text) != 1 {
					return nil, p.errorf("DELIMITER requires a single-character string")
				}
				st.Delimiter = rune(p.advance().Text[0])
			default:
				p.acceptOp(")")
				return st, nil
			}
			if !p.acceptOp(",") && !p.peekKeyword("HEADER") && !p.peekKeyword("DELIMITER") {
				p.acceptOp(")")
				return st, nil
			}
		}
	}
	return st, nil
}

func (p *Parser) parsePragma() (Statement, error) {
	if err := p.expectKeyword("PRAGMA"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &PragmaStmt{Name: strings.ToLower(name)}
	if p.acceptOp("=") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Value = e
	} else if p.acceptOp("(") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Value = e
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// ---- expressions (precedence climbing) ----

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

// parseValuesExpr parses one VALUES item. Bulk INSERTs are almost always
// plain literals, so an optionally-signed literal followed by a row
// delimiter is recognized from two tokens of lookahead and parsed via
// parseUnary directly (which owns sign folding), skipping the full
// precedence-climbing descent per value; everything else falls back to
// parseExpr.
func (p *Parser) parseValuesExpr() (Expr, error) {
	t := p.cur()
	la := p.pos + 1
	if t.Kind == TokOp && (t.Text == "-" || t.Text == "+") {
		if la >= len(p.toks) {
			return p.parseExpr()
		}
		t = p.toks[la]
		la++
	}
	literal := t.Kind == TokNumber || t.Kind == TokString || t.Kind == TokParam ||
		(t.Kind == TokKeyword && (t.Text == "NULL" || t.Text == "TRUE" || t.Text == "FALSE"))
	if !literal || la >= len(p.toks) {
		return p.parseExpr()
	}
	if next := p.toks[la]; next.Kind != TokOp || (next.Text != "," && next.Text != ")") {
		return p.parseExpr()
	}
	return p.parseUnary()
}

func (p *Parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *Parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.peekOp("=") || p.peekOp("<>") || p.peekOp("!=") ||
			p.peekOp("<") || p.peekOp("<=") || p.peekOp(">") || p.peekOp(">="):
			op := p.advance().Text
			if op == "!=" {
				op = "<>"
			}
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: op, L: l, R: r}
		case p.peekKeyword("IS"):
			p.advance()
			not := p.acceptKeyword("NOT")
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			l = &IsNull{X: l, Not: not}
		case p.peekKeyword("BETWEEN") || (p.peekKeyword("NOT") && p.peekNext("BETWEEN")):
			not := p.acceptKeyword("NOT")
			p.advance() // BETWEEN
			lo, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &Between{X: l, Lo: lo, Hi: hi, Not: not}
		case p.peekKeyword("IN") || (p.peekKeyword("NOT") && p.peekNext("IN")):
			not := p.acceptKeyword("NOT")
			p.advance() // IN
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			var list []Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				list = append(list, e)
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			l = &InList{X: l, List: list, Not: not}
		case p.peekKeyword("LIKE") || (p.peekKeyword("NOT") && p.peekNext("LIKE")):
			not := p.acceptKeyword("NOT")
			p.advance() // LIKE
			pat, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &Like{X: l, Pattern: pat, Not: not}
		default:
			return l, nil
		}
	}
}

// peekNext reports whether the token after the current one is keyword kw.
func (p *Parser) peekNext(kw string) bool {
	if p.pos+1 >= len(p.toks) {
		return false
	}
	t := p.toks[p.pos+1]
	return t.Kind == TokKeyword && t.Text == kw
}

func (p *Parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.peekOp("+"):
			op = "+"
		case p.peekOp("-"):
			op = "-"
		case p.peekOp("||"):
			op = "||"
		default:
			return l, nil
		}
		p.advance()
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.peekOp("*"):
			op = "*"
		case p.peekOp("/"):
			op = "/"
		case p.peekOp("%"):
			op = "%"
		default:
			return l, nil
		}
		p.advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.acceptOp("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := x.(*Literal); ok && !lit.Val.Null {
			switch lit.Val.Type {
			case types.Integer, types.BigInt:
				v := lit.Val
				v.I64 = -v.I64
				return &Literal{Val: v}, nil
			case types.Double:
				v := lit.Val
				v.F64 = -v.F64
				return &Literal{Val: v}, nil
			}
		}
		return &Unary{Op: "-", X: x}, nil
	}
	p.acceptOp("+")
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber:
		p.advance()
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.Text)
			}
			return &Literal{Val: types.NewDouble(f)}, nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(t.Text, 64)
			if ferr != nil {
				return nil, p.errorf("bad number %q", t.Text)
			}
			return &Literal{Val: types.NewDouble(f)}, nil
		}
		if i >= -(1<<31) && i < 1<<31 {
			return &Literal{Val: types.NewInt(int32(i))}, nil
		}
		return &Literal{Val: types.NewBigInt(i)}, nil
	case TokString:
		p.advance()
		return &Literal{Val: types.NewVarchar(t.Text)}, nil
	case TokParam:
		p.advance()
		e := &Param{Index: p.numParams}
		p.numParams++
		return e, nil
	case TokKeyword:
		switch t.Text {
		case "NULL":
			p.advance()
			return &Literal{Val: types.NewNull(types.Null)}, nil
		case "TRUE":
			p.advance()
			return &Literal{Val: types.NewBool(true)}, nil
		case "FALSE":
			p.advance()
			return &Literal{Val: types.NewBool(false)}, nil
		case "CAST":
			p.advance()
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AS"); err != nil {
				return nil, err
			}
			typeName, err := p.typeName()
			if err != nil {
				return nil, err
			}
			typ, err := types.ParseType(typeName)
			if err != nil {
				return nil, p.errorf("%v", err)
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &Cast{X: x, To: typ}, nil
		case "CASE":
			return p.parseCase()
		default:
			return nil, p.errorf("unexpected keyword %s in expression", t.Text)
		}
	case TokIdent:
		name := p.advance().Text
		// function call?
		if p.peekOp("(") {
			return p.parseFuncCall(name)
		}
		// qualified column t.c?
		if p.acceptOp(".") {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: name, Name: col}, nil
		}
		return &ColumnRef{Name: name}, nil
	case TokOp:
		if t.Text == "(" {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errorf("expected an expression")
}

func (p *Parser) parseFuncCall(name string) (Expr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	fc := &FuncCall{Name: strings.ToLower(name)}
	switch {
	case p.acceptOp("*"):
		fc.Star = true
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	case p.acceptOp(")"):
	default:
		if p.acceptKeyword("DISTINCT") {
			fc.Distinct = true
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fc.Args = append(fc.Args, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	// OVER is contextual: only the shape `OVER (` opens a window
	// specification, so `SELECT sum(v) over` still aliases the column.
	if p.peekContextual("OVER") && p.pos+1 < len(p.toks) &&
		p.toks[p.pos+1].Kind == TokOp && p.toks[p.pos+1].Text == "(" {
		p.advance() // OVER
		over, err := p.parseWindowDef()
		if err != nil {
			return nil, err
		}
		fc.Over = over
	}
	return fc, nil
}

// parseWindowDef parses the parenthesized window specification after
// OVER: (PARTITION BY ... ORDER BY ... [ROWS|RANGE frame]).
func (p *Parser) parseWindowDef() (*WindowDef, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	w := &WindowDef{}
	if p.acceptContextual("PARTITION") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			w.PartitionBy = append(w.PartitionBy, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		items, err := p.parseOrderItems()
		if err != nil {
			return nil, err
		}
		w.OrderBy = items
	}
	if p.peekContextual("ROWS") || p.peekContextual("RANGE") {
		frame, err := p.parseWindowFrame()
		if err != nil {
			return nil, err
		}
		w.Frame = frame
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return w, nil
}

// parseWindowFrame parses ROWS|RANGE [BETWEEN] <bound> [AND <bound>].
// The single-bound form runs from the given start to CURRENT ROW.
func (p *Parser) parseWindowFrame() (*WindowFrame, error) {
	f := &WindowFrame{}
	if p.acceptContextual("ROWS") {
		f.Rows = true
	} else if err := p.expectContextual("RANGE"); err != nil {
		return nil, err
	}
	if p.acceptKeyword("BETWEEN") {
		start, err := p.parseFrameBound()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		end, err := p.parseFrameBound()
		if err != nil {
			return nil, err
		}
		f.Start, f.End = start, end
		return f, nil
	}
	start, err := p.parseFrameBound()
	if err != nil {
		return nil, err
	}
	f.Start = start
	f.End = FrameBound{Current: true}
	return f, nil
}

func (p *Parser) parseFrameBound() (FrameBound, error) {
	switch {
	case p.acceptContextual("UNBOUNDED"):
		b := FrameBound{Unbounded: true}
		switch {
		case p.acceptContextual("PRECEDING"):
			b.Preceding = true
		case p.acceptContextual("FOLLOWING"):
		default:
			return b, p.errorf("expected PRECEDING or FOLLOWING")
		}
		return b, nil
	case p.acceptContextual("CURRENT"):
		if err := p.expectContextual("ROW"); err != nil {
			return FrameBound{}, err
		}
		return FrameBound{Current: true}, nil
	default:
		off, err := p.parseExpr()
		if err != nil {
			return FrameBound{}, err
		}
		b := FrameBound{Offset: off}
		switch {
		case p.acceptContextual("PRECEDING"):
			b.Preceding = true
		case p.acceptContextual("FOLLOWING"):
		default:
			return b, p.errorf("expected PRECEDING or FOLLOWING")
		}
		return b, nil
	}
}

func (p *Parser) parseCase() (Expr, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	c := &Case{}
	if !p.peekKeyword("WHEN") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = op
	}
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		res, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, When{Cond: cond, Result: res})
	}
	if len(c.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}
