package sql

import (
	"strings"
	"testing"

	"repro/internal/types"
)

func parseSelect(t *testing.T, src string) *SelectStmt {
	t.Helper()
	stmt, err := ParseOne(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		t.Fatalf("%q parsed as %T", src, stmt)
	}
	return sel
}

func TestSelectBasics(t *testing.T) {
	sel := parseSelect(t, "SELECT a, b AS bee, t.c FROM t WHERE a > 1 GROUP BY a HAVING count(*) > 2 ORDER BY a DESC LIMIT 10 OFFSET 5")
	if len(sel.Exprs) != 3 || sel.Exprs[1].Alias != "bee" {
		t.Fatalf("select list: %+v", sel.Exprs)
	}
	if sel.Where == nil || len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Fatal("clauses missing")
	}
	if len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc {
		t.Fatal("order by missing")
	}
	if sel.Limit == nil || sel.Offset == nil {
		t.Fatal("limit/offset missing")
	}
	qualified := sel.Exprs[2].Expr.(*ColumnRef)
	if qualified.Table != "t" || qualified.Name != "c" {
		t.Fatalf("qualified ref: %+v", qualified)
	}
}

func TestStars(t *testing.T) {
	sel := parseSelect(t, "SELECT *, t.* FROM t")
	if !sel.Exprs[0].Star || sel.Exprs[0].TableStar != "" {
		t.Fatal("bare star")
	}
	if !sel.Exprs[1].Star || sel.Exprs[1].TableStar != "t" {
		t.Fatal("table star")
	}
}

func TestJoins(t *testing.T) {
	sel := parseSelect(t, "SELECT 1 FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y CROSS JOIN d")
	j1, ok := sel.From.(*JoinRef)
	if !ok || j1.Type != JoinCross {
		t.Fatalf("outermost join: %+v", sel.From)
	}
	j2 := j1.Left.(*JoinRef)
	if j2.Type != JoinLeft || j2.On == nil {
		t.Fatalf("left join: %+v", j2)
	}
	j3 := j2.Left.(*JoinRef)
	if j3.Type != JoinInner {
		t.Fatalf("inner join: %+v", j3)
	}
}

func TestCommaJoin(t *testing.T) {
	sel := parseSelect(t, "SELECT 1 FROM a, b WHERE a.x = b.x")
	if j, ok := sel.From.(*JoinRef); !ok || j.Type != JoinCross {
		t.Fatalf("comma join: %+v", sel.From)
	}
}

func TestSubqueryInFrom(t *testing.T) {
	sel := parseSelect(t, "SELECT s.v FROM (SELECT v FROM t) AS s")
	sub, ok := sel.From.(*SubqueryRef)
	if !ok || sub.Alias != "s" {
		t.Fatalf("subquery: %+v", sel.From)
	}
	if _, err := ParseOne("SELECT 1 FROM (SELECT 1)"); err == nil {
		t.Fatal("unaliased subquery accepted")
	}
}

func TestExpressionPrecedence(t *testing.T) {
	sel := parseSelect(t, "SELECT 1 + 2 * 3")
	bin := sel.Exprs[0].Expr.(*Binary)
	if bin.Op != "+" {
		t.Fatalf("top op %s", bin.Op)
	}
	if inner := bin.R.(*Binary); inner.Op != "*" {
		t.Fatalf("* should bind tighter: %+v", bin)
	}

	sel = parseSelect(t, "SELECT a OR b AND NOT c")
	or := sel.Exprs[0].Expr.(*Binary)
	if or.Op != "OR" {
		t.Fatalf("OR should be outermost")
	}
	and := or.R.(*Binary)
	if and.Op != "AND" {
		t.Fatal("AND should bind tighter than OR")
	}
	if _, ok := and.R.(*Unary); !ok {
		t.Fatal("NOT should bind tighter than AND")
	}
}

func TestSpecialOperators(t *testing.T) {
	sel := parseSelect(t, "SELECT a IS NULL, b IS NOT NULL, c BETWEEN 1 AND 2, d NOT IN (1,2,3), e LIKE 'x%', f NOT LIKE 'y'")
	if n := sel.Exprs[0].Expr.(*IsNull); n.Not {
		t.Fatal("IS NULL")
	}
	if n := sel.Exprs[1].Expr.(*IsNull); !n.Not {
		t.Fatal("IS NOT NULL")
	}
	if b := sel.Exprs[2].Expr.(*Between); b.Not {
		t.Fatal("BETWEEN")
	}
	if in := sel.Exprs[3].Expr.(*InList); !in.Not || len(in.List) != 3 {
		t.Fatal("NOT IN")
	}
	if l := sel.Exprs[4].Expr.(*Like); l.Not {
		t.Fatal("LIKE")
	}
	if l := sel.Exprs[5].Expr.(*Like); !l.Not {
		t.Fatal("NOT LIKE")
	}
}

func TestCaseForms(t *testing.T) {
	sel := parseSelect(t, "SELECT CASE WHEN a THEN 1 ELSE 2 END, CASE x WHEN 1 THEN 'a' END")
	searched := sel.Exprs[0].Expr.(*Case)
	if searched.Operand != nil || searched.Else == nil {
		t.Fatal("searched case")
	}
	operand := sel.Exprs[1].Expr.(*Case)
	if operand.Operand == nil || operand.Else != nil {
		t.Fatal("operand case")
	}
}

func TestCastAndFunctions(t *testing.T) {
	sel := parseSelect(t, "SELECT CAST(a AS DOUBLE), count(*), count(DISTINCT b), sum(c + 1)")
	if c := sel.Exprs[0].Expr.(*Cast); c.To != types.Double {
		t.Fatal("cast type")
	}
	star := sel.Exprs[1].Expr.(*FuncCall)
	if !star.Star || star.Name != "count" {
		t.Fatal("count(*)")
	}
	if d := sel.Exprs[2].Expr.(*FuncCall); !d.Distinct {
		t.Fatal("count distinct")
	}
}

func TestLiterals(t *testing.T) {
	sel := parseSelect(t, "SELECT 1, 2.5, 1e3, 'it''s', NULL, TRUE, FALSE, -7, 9999999999")
	vals := []types.Value{
		types.NewInt(1), types.NewDouble(2.5), types.NewDouble(1000),
		types.NewVarchar("it's"), types.NewNull(types.Null),
		types.NewBool(true), types.NewBool(false), types.NewInt(-7),
		types.NewBigInt(9999999999),
	}
	for i, want := range vals {
		lit, ok := sel.Exprs[i].Expr.(*Literal)
		if !ok {
			t.Fatalf("expr %d is %T", i, sel.Exprs[i].Expr)
		}
		if !types.Equal(lit.Val, want) {
			t.Fatalf("literal %d: got %v want %v", i, lit.Val, want)
		}
	}
}

func TestCreateTable(t *testing.T) {
	stmt, err := ParseOne("CREATE TABLE IF NOT EXISTS t (id BIGINT NOT NULL, name VARCHAR, score DOUBLE NULL)")
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*CreateTableStmt)
	if !ct.IfNotExists || ct.Name != "t" || len(ct.Cols) != 3 {
		t.Fatalf("%+v", ct)
	}
	if !ct.Cols[0].NotNull || ct.Cols[1].NotNull {
		t.Fatal("NOT NULL flags")
	}
	if ct.Cols[2].Type != types.Double {
		t.Fatal("type")
	}
}

func TestCreateTableAs(t *testing.T) {
	stmt, _ := ParseOne("CREATE TABLE t2 AS SELECT a FROM t")
	ct := stmt.(*CreateTableStmt)
	if ct.AsSelect == nil {
		t.Fatal("CTAS select missing")
	}
}

func TestCreateViewCapturesSQL(t *testing.T) {
	stmt, _ := ParseOne("CREATE VIEW v AS SELECT a, b FROM t WHERE a > 0")
	cv := stmt.(*CreateViewStmt)
	if !strings.HasPrefix(cv.SQL, "SELECT a, b") {
		t.Fatalf("captured SQL: %q", cv.SQL)
	}
}

func TestInsertForms(t *testing.T) {
	stmt, _ := ParseOne("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
	ins := stmt.(*InsertStmt)
	if len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("%+v", ins)
	}
	stmt, _ = ParseOne("INSERT INTO t SELECT * FROM s")
	if ins := stmt.(*InsertStmt); ins.Select == nil {
		t.Fatal("insert-select")
	}
}

func TestUpdateDelete(t *testing.T) {
	stmt, _ := ParseOne("UPDATE t SET d = NULL, e = e + 1 WHERE d = -999")
	up := stmt.(*UpdateStmt)
	if len(up.Set) != 2 || up.Where == nil {
		t.Fatalf("%+v", up)
	}
	stmt, _ = ParseOne("DELETE FROM t WHERE x < 0")
	if del := stmt.(*DeleteStmt); del.Where == nil {
		t.Fatal("delete where")
	}
}

func TestTransactionStatements(t *testing.T) {
	for src, want := range map[string]any{
		"BEGIN":             &BeginStmt{},
		"BEGIN TRANSACTION": &BeginStmt{},
		"COMMIT":            &CommitStmt{},
		"ROLLBACK":          &RollbackStmt{},
		"CHECKPOINT":        &CheckpointStmt{},
	} {
		stmt, err := ParseOne(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if gotT, wantT := strings.TrimPrefix(typeName(stmt), "*"), strings.TrimPrefix(typeName(want), "*"); gotT != wantT {
			t.Fatalf("%q parsed as %s, want %s", src, gotT, wantT)
		}
	}
}

func typeName(v any) string {
	return strings.TrimPrefix(strings.TrimPrefix(fmtSprintfT(v), "*sql."), "sql.")
}

func fmtSprintfT(v any) string {
	switch v.(type) {
	case *BeginStmt:
		return "*sql.BeginStmt"
	case *CommitStmt:
		return "*sql.CommitStmt"
	case *RollbackStmt:
		return "*sql.RollbackStmt"
	case *CheckpointStmt:
		return "*sql.CheckpointStmt"
	default:
		return "?"
	}
}

func TestCopy(t *testing.T) {
	stmt, err := ParseOne("COPY t FROM '/tmp/in.csv' WITH (HEADER, DELIMITER ';')")
	if err != nil {
		t.Fatal(err)
	}
	cp := stmt.(*CopyStmt)
	if !cp.From || !cp.Header || cp.Delimiter != ';' || cp.Path != "/tmp/in.csv" {
		t.Fatalf("%+v", cp)
	}
	stmt, _ = ParseOne("COPY t TO '/tmp/out.csv'")
	if cp := stmt.(*CopyStmt); cp.From {
		t.Fatal("copy to direction")
	}
}

func TestPragma(t *testing.T) {
	stmt, _ := ParseOne("PRAGMA memory_limit='512MB'")
	pr := stmt.(*PragmaStmt)
	if pr.Name != "memory_limit" || pr.Value == nil {
		t.Fatalf("%+v", pr)
	}
}

func TestExplain(t *testing.T) {
	stmt, _ := ParseOne("EXPLAIN SELECT 1")
	ex := stmt.(*ExplainStmt)
	if _, ok := ex.Stmt.(*SelectStmt); !ok {
		t.Fatal("explain wraps select")
	}
}

func TestUnionAll(t *testing.T) {
	sel := parseSelect(t, "SELECT 1 UNION ALL SELECT 2 UNION ALL SELECT 3")
	n := 0
	for s := sel; s != nil; s = s.UnionAll {
		n++
	}
	if n != 3 {
		t.Fatalf("%d union arms", n)
	}
	if _, err := ParseOne("SELECT 1 UNION SELECT 2"); err == nil {
		t.Fatal("bare UNION should be rejected")
	}
}

func TestMultiStatement(t *testing.T) {
	stmts, err := Parse("SELECT 1; SELECT 2;; SELECT 3")
	if err != nil || len(stmts) != 3 {
		t.Fatalf("%d stmts, %v", len(stmts), err)
	}
}

func TestComments(t *testing.T) {
	sel := parseSelect(t, "SELECT /* block */ 1 -- trailing\n FROM t")
	if sel.From == nil {
		t.Fatal("comment parsing broke FROM")
	}
}

func TestQuotedIdentifiers(t *testing.T) {
	sel := parseSelect(t, `SELECT "weird name", "do""ble" FROM "my table"`)
	if cr := sel.Exprs[0].Expr.(*ColumnRef); cr.Name != "weird name" {
		t.Fatalf("quoted ident: %q", cr.Name)
	}
	if cr := sel.Exprs[1].Expr.(*ColumnRef); cr.Name != `do"ble` {
		t.Fatalf("escaped quote: %q", cr.Name)
	}
}

func TestParams(t *testing.T) {
	stmts, err := Parse("SELECT ? + ?, ?")
	if err != nil {
		t.Fatal(err)
	}
	if n := NumParams(stmts); n != 3 {
		t.Fatalf("NumParams = %d", n)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"SELECT",
		"SELECT FROM t",
		"SELECT 1 FROM",
		"CREATE TABLE t",
		"CREATE TABLE t (a)",
		"CREATE TABLE t (a NOTATYPE)",
		"INSERT INTO t",
		"UPDATE t",
		"DELETE t",
		"SELECT 'unterminated",
		"SELECT \"unterminated",
		"SELECT 1 FROM t JOIN s", // missing ON
		"FROBNICATE",
		"SELECT 1 extra stuff (",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q accepted", src)
		}
	}
}

func TestNumbersEdgeCases(t *testing.T) {
	sel := parseSelect(t, "SELECT .5, 1.5e-3, 2E2")
	if lit := sel.Exprs[0].Expr.(*Literal); lit.Val.F64 != 0.5 {
		t.Fatalf(".5 parsed as %v", lit.Val)
	}
	if lit := sel.Exprs[1].Expr.(*Literal); lit.Val.F64 != 0.0015 {
		t.Fatalf("1.5e-3 parsed as %v", lit.Val)
	}
}
