// Package sql is QuackDB's SQL front end: a hand-written lexer and
// recursive-descent parser producing the AST the binder consumes. The
// dialect covers the embedded-analytics workload of the paper: OLAP
// SELECTs (joins, grouping, ordering, window functions with
// fn(...) OVER (PARTITION BY ... ORDER BY ... [ROWS|RANGE frame])),
// bulk ETL statements (INSERT .. SELECT, bulk UPDATE/DELETE, COPY
// from/to CSV), DDL, transactions and PRAGMAs.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexer output.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokOp    // operators: + - * / % = <> != < <= > >= || . , ( ) ;
	TokParam // ? positional parameter
)

// Token is one lexical unit with its source position.
type Token struct {
	Kind TokenKind
	Text string // keywords are upper-cased; identifiers keep original case
	Pos  int    // byte offset in the input
}

var keywords = map[string]bool{}

func init() {
	for _, k := range []string{
		"SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING",
		"ORDER", "ASC", "DESC", "LIMIT", "OFFSET", "AS", "JOIN", "INNER",
		"LEFT", "RIGHT", "OUTER", "CROSS", "ON", "AND", "OR", "NOT",
		"NULL", "IS", "IN", "BETWEEN", "LIKE", "CASE", "WHEN", "THEN",
		"ELSE", "END", "CAST", "CREATE", "TABLE", "VIEW", "IF", "EXISTS",
		"DROP", "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE",
		"BEGIN", "TRANSACTION", "COMMIT", "ROLLBACK", "CHECKPOINT",
		"COPY", "TO", "WITH", "HEADER", "DELIMITER", "EXPLAIN", "PRAGMA",
		"TRUE", "FALSE", "UNION", "ALL", "NULLS", "FIRST", "LAST",
	} {
		keywords[k] = true
	}
}

// Lexer tokenizes SQL text.
type Lexer struct {
	src string
	pos int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// Next returns the next token, or an error on malformed input.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		word := l.src[start:l.pos]
		upper := strings.ToUpper(word)
		if keywords[upper] {
			return Token{Kind: TokKeyword, Text: upper, Pos: start}, nil
		}
		return Token{Kind: TokIdent, Text: word, Pos: start}, nil
	case c == '"': // quoted identifier
		l.pos++
		var sb strings.Builder
		for l.pos < len(l.src) {
			if l.src[l.pos] == '"' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '"' {
					sb.WriteByte('"')
					l.pos += 2
					continue
				}
				l.pos++
				return Token{Kind: TokIdent, Text: sb.String(), Pos: start}, nil
			}
			sb.WriteByte(l.src[l.pos])
			l.pos++
		}
		return Token{}, fmt.Errorf("unterminated quoted identifier at offset %d", start)
	case c >= '0' && c <= '9' || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
		seenDot, seenExp := false, false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if isDigit(ch) {
				l.pos++
			} else if ch == '.' && !seenDot && !seenExp {
				seenDot = true
				l.pos++
			} else if (ch == 'e' || ch == 'E') && !seenExp && l.pos > start {
				seenExp = true
				l.pos++
				if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
					l.pos++
				}
			} else {
				break
			}
		}
		return Token{Kind: TokNumber, Text: l.src[start:l.pos], Pos: start}, nil
	case c == '\'':
		l.pos++
		var sb strings.Builder
		for l.pos < len(l.src) {
			if l.src[l.pos] == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					sb.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return Token{Kind: TokString, Text: sb.String(), Pos: start}, nil
			}
			sb.WriteByte(l.src[l.pos])
			l.pos++
		}
		return Token{}, fmt.Errorf("unterminated string literal at offset %d", start)
	case c == '?':
		l.pos++
		return Token{Kind: TokParam, Text: "?", Pos: start}, nil
	default:
		// multi-char operators first
		two := ""
		if l.pos+1 < len(l.src) {
			two = l.src[l.pos : l.pos+2]
		}
		switch two {
		case "<>", "!=", "<=", ">=", "||":
			l.pos += 2
			return Token{Kind: TokOp, Text: two, Pos: start}, nil
		}
		switch c {
		case '+', '-', '*', '/', '%', '=', '<', '>', '(', ')', ',', '.', ';':
			l.pos++
			return Token{Kind: TokOp, Text: string(c), Pos: start}, nil
		}
		return Token{}, fmt.Errorf("unexpected character %q at offset %d", c, start)
	}
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.pos += 2
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				l.pos++
			}
			l.pos += 2
			if l.pos > len(l.src) {
				l.pos = len(l.src)
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || c == '$' || unicode.IsLetter(rune(c)) || isDigit(c)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
