package sql

import (
	"repro/internal/types"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// Expr is any parsed scalar expression.
type Expr interface{ expr() }

// ---- statements ----

// SelectStmt is a SELECT query (optionally UNION ALL-chained).
type SelectStmt struct {
	Distinct bool
	Exprs    []SelectExpr
	From     TableRef // nil: SELECT <exprs> without FROM
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    Expr
	Offset   Expr
	UnionAll *SelectStmt // next arm of a UNION ALL chain
}

// SelectExpr is one projection item: an expression with optional alias,
// or a star (optionally qualified: t.*).
type SelectExpr struct {
	Expr      Expr
	Alias     string
	Star      bool
	TableStar string // "t" for t.*
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr      Expr
	Desc      bool
	NullsLast bool // default: NULLS LAST for ASC, NULLS FIRST for DESC unless set
	NullsSet  bool
}

// JoinType distinguishes join flavors.
type JoinType int

// Join flavors.
const (
	JoinInner JoinType = iota
	JoinLeft
	JoinCross
)

// TableRef is a FROM-clause item.
type TableRef interface{ tableRef() }

// BaseTable references a named table or view.
type BaseTable struct {
	Name  string
	Alias string
}

// SubqueryRef is a parenthesized SELECT in FROM.
type SubqueryRef struct {
	Select *SelectStmt
	Alias  string
}

// JoinRef joins two table refs.
type JoinRef struct {
	Left  TableRef
	Right TableRef
	Type  JoinType
	On    Expr // nil for CROSS
}

func (*BaseTable) tableRef()   {}
func (*SubqueryRef) tableRef() {}
func (*JoinRef) tableRef()     {}

// ColDef is one column in CREATE TABLE.
type ColDef struct {
	Name    string
	Type    types.Type
	NotNull bool
}

// CreateTableStmt creates a table from a column list or a query.
type CreateTableStmt struct {
	Name        string
	IfNotExists bool
	Cols        []ColDef
	AsSelect    *SelectStmt
}

// CreateViewStmt creates a view; SQL keeps the original SELECT text.
type CreateViewStmt struct {
	Name   string
	Select *SelectStmt
	SQL    string
}

// DropStmt drops a table or view.
type DropStmt struct {
	View     bool
	Name     string
	IfExists bool
}

// InsertStmt inserts literal rows or a query result.
type InsertStmt struct {
	Table   string
	Columns []string // optional explicit column list
	Rows    [][]Expr // VALUES rows, or
	Select  *SelectStmt
}

// SetClause is one column assignment in UPDATE.
type SetClause struct {
	Column string
	Value  Expr
}

// UpdateStmt is a (typically bulk) UPDATE.
type UpdateStmt struct {
	Table string
	Set   []SetClause
	Where Expr
}

// DeleteStmt is a (typically bulk) DELETE.
type DeleteStmt struct {
	Table string
	Where Expr
}

// BeginStmt starts an explicit transaction.
type BeginStmt struct{}

// CommitStmt commits the current transaction.
type CommitStmt struct{}

// RollbackStmt rolls back the current transaction.
type RollbackStmt struct{}

// CheckpointStmt forces a checkpoint.
type CheckpointStmt struct{}

// CopyStmt bulk-imports or exports CSV.
type CopyStmt struct {
	Table     string
	From      bool // true: COPY t FROM path; false: COPY t TO path
	Path      string
	Header    bool
	Delimiter rune
}

// ExplainStmt wraps a statement for plan display. Analyze additionally
// executes the statement and reports the measured per-operator profile
// (EXPLAIN ANALYZE).
type ExplainStmt struct {
	Stmt    Statement
	Analyze bool
}

// PragmaStmt reads or sets an engine setting
// (e.g. PRAGMA memory_limit='1GB', PRAGMA threads=4).
type PragmaStmt struct {
	Name  string
	Value Expr // nil: read
}

func (*SelectStmt) stmt()      {}
func (*CreateTableStmt) stmt() {}
func (*CreateViewStmt) stmt()  {}
func (*DropStmt) stmt()        {}
func (*InsertStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
func (*BeginStmt) stmt()       {}
func (*CommitStmt) stmt()      {}
func (*RollbackStmt) stmt()    {}
func (*CheckpointStmt) stmt()  {}
func (*CopyStmt) stmt()        {}
func (*ExplainStmt) stmt()     {}
func (*PragmaStmt) stmt()      {}

// ---- expressions ----

// Literal is a constant.
type Literal struct {
	Val types.Value
}

// ColumnRef names a column, optionally table-qualified.
type ColumnRef struct {
	Table string
	Name  string
}

// Unary is -x or NOT x.
type Unary struct {
	Op string // "-", "NOT"
	X  Expr
}

// Binary covers arithmetic, comparison, logic and string concat.
type Binary struct {
	Op   string // + - * / % = <> < <= > >= AND OR ||
	L, R Expr
}

// IsNull is x IS [NOT] NULL.
type IsNull struct {
	X   Expr
	Not bool
}

// Between is x [NOT] BETWEEN lo AND hi.
type Between struct {
	X, Lo, Hi Expr
	Not       bool
}

// InList is x [NOT] IN (e1, e2, ...).
type InList struct {
	X    Expr
	List []Expr
	Not  bool
}

// Like is x [NOT] LIKE pattern.
type Like struct {
	X, Pattern Expr
	Not        bool
}

// When is one CASE arm.
type When struct {
	Cond, Result Expr
}

// Case is CASE [operand] WHEN .. THEN .. [ELSE ..] END.
type Case struct {
	Operand Expr // nil for searched CASE
	Whens   []When
	Else    Expr
}

// Cast is CAST(x AS type).
type Cast struct {
	X  Expr
	To types.Type
}

// FuncCall is a scalar, aggregate or window function call.
type FuncCall struct {
	Name     string // lower-cased
	Args     []Expr
	Star     bool       // count(*)
	Distinct bool       // count(DISTINCT x)
	Over     *WindowDef // non-nil: fn(...) OVER (...)
}

// WindowDef is the OVER (...) clause of a window function call.
type WindowDef struct {
	PartitionBy []Expr
	OrderBy     []OrderItem
	Frame       *WindowFrame // nil: default frame
}

// FrameBound is one end of a window frame.
type FrameBound struct {
	Unbounded bool // UNBOUNDED PRECEDING / FOLLOWING
	Current   bool // CURRENT ROW
	Offset    Expr // <n> PRECEDING / FOLLOWING
	Preceding bool // direction of Unbounded / Offset
}

// WindowFrame is ROWS/RANGE BETWEEN <start> AND <end>.
type WindowFrame struct {
	Rows       bool // ROWS (true) or RANGE (false)
	Start, End FrameBound
}

// Param is a positional ? parameter.
type Param struct {
	Index int // 0-based position
}

func (*Literal) expr()   {}
func (*ColumnRef) expr() {}
func (*Unary) expr()     {}
func (*Binary) expr()    {}
func (*IsNull) expr()    {}
func (*Between) expr()   {}
func (*InList) expr()    {}
func (*Like) expr()      {}
func (*Case) expr()      {}
func (*Cast) expr()      {}
func (*FuncCall) expr()  {}
func (*Param) expr()     {}
