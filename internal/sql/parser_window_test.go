package sql

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/types"
)

func TestParseWindowBasic(t *testing.T) {
	sel := parseSelect(t, "SELECT id, row_number() OVER (PARTITION BY k ORDER BY ts DESC NULLS LAST) FROM t")
	fc, ok := sel.Exprs[1].Expr.(*FuncCall)
	if !ok || fc.Over == nil {
		t.Fatalf("expected window FuncCall, got %#v", sel.Exprs[1].Expr)
	}
	if fc.Name != "row_number" {
		t.Errorf("name = %q", fc.Name)
	}
	if len(fc.Over.PartitionBy) != 1 || len(fc.Over.OrderBy) != 1 {
		t.Fatalf("partition/order = %d/%d", len(fc.Over.PartitionBy), len(fc.Over.OrderBy))
	}
	o := fc.Over.OrderBy[0]
	if !o.Desc || !o.NullsSet || !o.NullsLast {
		t.Errorf("order item = %+v", o)
	}
	if fc.Over.Frame != nil {
		t.Errorf("unexpected frame")
	}
}

func TestParseWindowFrames(t *testing.T) {
	cases := []struct {
		src  string
		want WindowFrame
	}{
		{
			"sum(v) OVER (ORDER BY ts ROWS BETWEEN 3 PRECEDING AND CURRENT ROW)",
			WindowFrame{Rows: true, Start: FrameBound{Preceding: true}, End: FrameBound{Current: true}},
		},
		{
			"sum(v) OVER (ORDER BY ts ROWS BETWEEN UNBOUNDED PRECEDING AND 2 FOLLOWING)",
			WindowFrame{Rows: true, Start: FrameBound{Unbounded: true, Preceding: true}, End: FrameBound{}},
		},
		{
			"sum(v) OVER (ORDER BY ts ROWS 5 PRECEDING)",
			WindowFrame{Rows: true, Start: FrameBound{Preceding: true}, End: FrameBound{Current: true}},
		},
		{
			"sum(v) OVER (ORDER BY ts RANGE BETWEEN UNBOUNDED PRECEDING AND UNBOUNDED FOLLOWING)",
			WindowFrame{Start: FrameBound{Unbounded: true, Preceding: true}, End: FrameBound{Unbounded: true}},
		},
	}
	for _, tc := range cases {
		sel := parseSelect(t, "SELECT "+tc.src+" FROM t")
		fc := sel.Exprs[0].Expr.(*FuncCall)
		if fc.Over == nil || fc.Over.Frame == nil {
			t.Fatalf("%s: no frame parsed", tc.src)
		}
		f := fc.Over.Frame
		if f.Rows != tc.want.Rows {
			t.Errorf("%s: Rows = %v", tc.src, f.Rows)
		}
		checkBound := func(got, want FrameBound, which string) {
			if got.Unbounded != want.Unbounded || got.Current != want.Current || got.Preceding != want.Preceding {
				t.Errorf("%s: %s bound = %+v, want %+v", tc.src, which, got, want)
			}
		}
		checkBound(f.Start, tc.want.Start, "start")
		checkBound(f.End, tc.want.End, "end")
	}
}

func TestParseWindowInExpression(t *testing.T) {
	sel := parseSelect(t, "SELECT rank() OVER (ORDER BY v) + 1 AS r, lag(v, 2, 0) OVER (PARTITION BY a, b) FROM t ORDER BY sum(x) OVER (PARTITION BY a)")
	if _, ok := sel.Exprs[0].Expr.(*Binary); !ok {
		t.Errorf("window call did not nest in arithmetic: %#v", sel.Exprs[0].Expr)
	}
	lag := sel.Exprs[1].Expr.(*FuncCall)
	if len(lag.Args) != 3 || len(lag.Over.PartitionBy) != 2 {
		t.Errorf("lag parse: args=%d partitions=%d", len(lag.Args), len(lag.Over.PartitionBy))
	}
	ord := sel.OrderBy[0].Expr.(*FuncCall)
	if ord.Over == nil {
		t.Errorf("ORDER BY window call lost its OVER clause")
	}
}

func TestParseWindowErrors(t *testing.T) {
	for _, src := range []string{
		"SELECT sum(v) OVER (PARTITION v) FROM t",               // missing BY
		"SELECT sum(v) OVER (ROWS BETWEEN 1 PRECEDING) FROM t",  // BETWEEN needs AND
		"SELECT sum(v) OVER (ORDER BY v ROWS UNBOUNDED) FROM t", // direction required
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

// TestWindowWordsStayIdentifiers: the window-clause words are contextual
// — schemas and queries may keep using them as column or table names,
// and `OVER` without a following parenthesis is still an alias.
func TestWindowWordsStayIdentifiers(t *testing.T) {
	if _, err := ParseOne("CREATE TABLE t (row INTEGER, range INTEGER, current INTEGER, rows INTEGER)"); err != nil {
		t.Fatalf("window words rejected as column names: %v", err)
	}
	if _, err := ParseOne("SELECT row, range + current FROM t WHERE rows > 0 ORDER BY partition"); err != nil {
		t.Fatalf("window words rejected in expressions: %v", err)
	}
	sel := parseSelect(t, "SELECT sum(v) over FROM t")
	if sel.Exprs[0].Alias != "over" {
		t.Fatalf("OVER without '(' should alias, got %+v", sel.Exprs[0])
	}
	// A column named rows may even be a window order key, with a real
	// frame following it.
	sel = parseSelect(t, "SELECT sum(v) OVER (ORDER BY rows ROWS 2 PRECEDING) FROM t")
	fc := sel.Exprs[0].Expr.(*FuncCall)
	if fc.Over == nil || fc.Over.Frame == nil || !fc.Over.Frame.Rows {
		t.Fatalf("contextual frame after `rows` column mis-parsed: %+v", fc.Over)
	}
}

// TestParseBigValuesFast is the regression test for the bulk-INSERT
// parse path: a 10k-row VALUES list must parse in well under a second
// (the fast literal path skips the precedence-climbing descent per
// value).
func TestParseBigValuesFast(t *testing.T) {
	const rows = 10_000
	var sb strings.Builder
	sb.WriteString("INSERT INTO t (a, b, c) VALUES ")
	for i := 0; i < rows; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "(%d, 'name-%d', -%d.25)", i, i, i)
	}
	src := sb.String()
	start := time.Now()
	stmts, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	ins := stmts[0].(*InsertStmt)
	if len(ins.Rows) != rows {
		t.Fatalf("parsed %d rows, want %d", len(ins.Rows), rows)
	}
	// Every value must have taken the literal fast path.
	for c, e := range ins.Rows[rows-1] {
		lit, ok := e.(*Literal)
		if !ok {
			t.Fatalf("row value %d parsed as %T, want *Literal", c, e)
		}
		if c == 2 && (lit.Val.Type != types.Double || lit.Val.F64 >= 0) {
			t.Fatalf("negative double literal mis-parsed: %+v", lit.Val)
		}
	}
	if elapsed > time.Second {
		t.Fatalf("10k-row INSERT parse took %v, want < 1s", elapsed)
	}
	t.Logf("10k-row INSERT parsed in %v", elapsed)
}

// TestParseValuesFallback: non-literal VALUES items still parse through
// the full expression grammar.
func TestParseValuesFallback(t *testing.T) {
	stmt, err := ParseOne("INSERT INTO t VALUES (1 + 2, upper('x'), -v, CAST(7 AS DOUBLE))")
	if err != nil {
		t.Fatal(err)
	}
	row := stmt.(*InsertStmt).Rows[0]
	if _, ok := row[0].(*Binary); !ok {
		t.Errorf("1 + 2 parsed as %T", row[0])
	}
	if _, ok := row[1].(*FuncCall); !ok {
		t.Errorf("upper('x') parsed as %T", row[1])
	}
	if _, ok := row[2].(*Unary); !ok {
		t.Errorf("-v parsed as %T", row[2])
	}
	if _, ok := row[3].(*Cast); !ok {
		t.Errorf("CAST parsed as %T", row[3])
	}
}
