package wal

import (
	"os"
	"path/filepath"
	"testing"
)

func openTemp(t *testing.T) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.wal")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return l, path
}

func TestAppendAndReplay(t *testing.T) {
	l, path := openTemp(t)
	recs1 := []Record{
		{Type: RecCreateTable, Payload: []byte("t1")},
		{Type: RecInsert, Payload: []byte("data1")},
	}
	if err := l.AppendCommit(recs1, 2); err != nil {
		t.Fatal(err)
	}
	recs2 := []Record{{Type: RecDelete, Payload: []byte("rows")}}
	if err := l.AppendCommit(recs2, 3); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	txns, err := l2.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(txns) != 2 {
		t.Fatalf("replayed %d txns, want 2", len(txns))
	}
	if txns[0].CommitTS != 2 || txns[1].CommitTS != 3 {
		t.Fatalf("commit timestamps: %d, %d", txns[0].CommitTS, txns[1].CommitTS)
	}
	if len(txns[0].Records) != 2 || string(txns[0].Records[1].Payload) != "data1" {
		t.Fatalf("first txn: %+v", txns[0])
	}
}

func TestTornTailDiscarded(t *testing.T) {
	l, path := openTemp(t)
	l.AppendCommit([]Record{{Type: RecInsert, Payload: []byte("committed")}}, 2)
	size := l.Size()
	l.AppendCommit([]Record{{Type: RecInsert, Payload: []byte("torn-victim")}}, 3)
	l.Close()

	// Truncate mid-second-transaction: simulates a crash during the
	// commit write.
	if err := os.Truncate(path, size+7); err != nil {
		t.Fatal(err)
	}
	l2, _ := Open(path)
	defer l2.Close()
	txns, err := l2.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(txns) != 1 {
		t.Fatalf("replayed %d txns, want 1 (torn tail dropped)", len(txns))
	}
}

func TestCorruptionMidLogReported(t *testing.T) {
	l, path := openTemp(t)
	l.AppendCommit([]Record{
		{Type: RecInsert, Payload: []byte("aaaa")},
		{Type: RecInsert, Payload: []byte("bbbb")},
	}, 2)
	l.Close()

	raw, _ := os.ReadFile(path)
	// Corrupt the second record's payload (inside the transaction).
	raw[12+5+12+2] ^= 0xFF
	os.WriteFile(path, raw, 0o644)

	l2, _ := Open(path)
	defer l2.Close()
	if _, err := l2.Replay(); err == nil {
		t.Fatal("mid-transaction corruption not reported")
	}
}

func TestTruncate(t *testing.T) {
	l, _ := openTemp(t)
	defer l.Close()
	l.AppendCommit([]Record{{Type: RecInsert, Payload: []byte("x")}}, 2)
	if l.Size() == 0 {
		t.Fatal("size should be non-zero")
	}
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	if l.Size() != 0 {
		t.Fatal("size should be zero after truncate")
	}
	txns, err := l.Replay()
	if err != nil || len(txns) != 0 {
		t.Fatalf("replay after truncate: %d txns, %v", len(txns), err)
	}
}

func TestNilLogIsNoop(t *testing.T) {
	var l *Log
	if err := l.AppendCommit([]Record{{Type: RecInsert}}, 2); err != nil {
		t.Fatal(err)
	}
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	txns, err := l.Replay()
	if err != nil || txns != nil {
		t.Fatal("nil log should replay nothing")
	}
	if l.Size() != 0 || l.Path() != "" {
		t.Fatal("nil log accessors")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyTransaction(t *testing.T) {
	l, _ := openTemp(t)
	defer l.Close()
	if err := l.AppendCommit(nil, 5); err != nil {
		t.Fatal(err)
	}
	txns, err := l.Replay()
	if err != nil || len(txns) != 1 || txns[0].CommitTS != 5 || len(txns[0].Records) != 0 {
		t.Fatalf("empty txn replay: %+v %v", txns, err)
	}
}
