// Package wal implements the write-ahead log (paper §6): the WAL lives
// in a separate file next to the database and is consumed — truncated —
// by checkpoints. Committed transactions append their records followed
// by a commit marker in one durable write, so recovery replays exactly
// the committed prefix; a torn tail (crash mid-commit) is detected by
// per-record CRCs and discarded.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/checksum"
)

// RecordType tags each WAL record.
type RecordType byte

// The WAL record kinds. Payload layouts are owned by internal/core,
// which encodes and decodes them; the WAL itself only frames bytes.
const (
	RecCreateTable RecordType = iota + 1
	RecDropTable
	RecCreateView
	RecDropView
	RecInsert
	RecUpdate
	RecDelete
	RecCommit
)

// Record is one framed WAL entry.
type Record struct {
	Type    RecordType
	Payload []byte
}

// Log is an append-only record log over a single file. Nil *Log is a
// valid no-op log (in-memory databases).
type Log struct {
	mu   sync.Mutex
	f    *os.File
	path string
	size int64
}

// Open opens or creates the WAL file at path.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	return &Log{f: f, path: path, size: st.Size()}, nil
}

// Path returns the WAL file path.
func (l *Log) Path() string {
	if l == nil {
		return ""
	}
	return l.path
}

// Size returns the WAL's current byte size (for checkpoint heuristics).
func (l *Log) Size() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// AppendCommit durably appends a transaction's records followed by a
// commit marker. The fsync happens once, after the commit marker, which
// is the transaction's durability point.
func (l *Log) AppendCommit(records []Record, commitTS uint64) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var buf []byte
	for _, r := range records {
		buf = appendFramed(buf, r)
	}
	var ts [8]byte
	binary.LittleEndian.PutUint64(ts[:], commitTS)
	buf = appendFramed(buf, Record{Type: RecCommit, Payload: ts[:]})
	if _, err := l.f.WriteAt(buf, l.size); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.size += int64(len(buf))
	return nil
}

// frame: len u32 | crc u64 | type u8 | payload
func appendFramed(dst []byte, r Record) []byte {
	body := make([]byte, 1+len(r.Payload))
	body[0] = byte(r.Type)
	copy(body[1:], r.Payload)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(body)))
	dst = binary.LittleEndian.AppendUint64(dst, checksum.Sum(body))
	return append(dst, body...)
}

// CommittedTxn is one fully committed transaction recovered from the log.
type CommittedTxn struct {
	Records  []Record
	CommitTS uint64
}

// Replay scans the log and returns every fully committed transaction in
// commit order. Torn or corrupt tails end replay silently (they are, by
// construction, uncommitted); corruption *before* the last commit marker
// is reported as an error since committed data would be lost.
func (l *Log) Replay() ([]CommittedTxn, error) {
	if l == nil {
		return nil, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	data := make([]byte, l.size)
	if _, err := l.f.ReadAt(data, 0); err != nil && !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("wal: read: %w", err)
	}
	var (
		out     []CommittedTxn
		pending []Record
	)
	off := 0
	for off < len(data) {
		if len(data)-off < 12 {
			break // torn frame header
		}
		length := int(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint64(data[off+4:])
		if length < 1 || off+12+length > len(data) {
			break // torn frame body
		}
		body := data[off+12 : off+12+length]
		if checksum.Sum(body) != crc {
			if len(pending) == 0 {
				break // corruption at a txn boundary: treat as torn tail
			}
			return out, fmt.Errorf("wal: corrupt record at offset %d inside a transaction", off)
		}
		rec := Record{Type: RecordType(body[0]), Payload: append([]byte(nil), body[1:]...)}
		off += 12 + length
		if rec.Type == RecCommit {
			if len(rec.Payload) != 8 {
				return out, fmt.Errorf("wal: malformed commit marker")
			}
			out = append(out, CommittedTxn{
				Records:  pending,
				CommitTS: binary.LittleEndian.Uint64(rec.Payload),
			})
			pending = nil
			continue
		}
		pending = append(pending, rec)
	}
	return out, nil
}

// Truncate empties the log; called after a successful checkpoint has
// made all logged changes durable in the main file.
func (l *Log) Truncate() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	l.size = 0
	return l.f.Sync()
}

// Close closes the WAL file.
func (l *Log) Close() error {
	if l == nil {
		return nil
	}
	return l.f.Close()
}
