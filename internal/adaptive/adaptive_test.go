package adaptive

import (
	"math/rand"
	"testing"

	"repro/internal/compress"
)

func TestPolicyThresholds(t *testing.T) {
	m := NewMonitor()
	p := NewPolicy(m, 1000)
	cases := []struct {
		appRAM int64
		want   compress.Level
	}{
		{0, compress.None},
		{499, compress.None},
		{500, compress.Light},
		{749, compress.Light},
		{750, compress.Heavy},
		{1000, compress.Heavy},
	}
	for _, c := range cases {
		m.SetAppUsage(Usage{AppRAM: c.appRAM})
		if got := p.CompressionLevel(); got != c.want {
			t.Errorf("appRAM=%d: level %v, want %v", c.appRAM, got, c.want)
		}
	}
}

func TestPolicyUnlimited(t *testing.T) {
	p := NewPolicy(NewMonitor(), 0)
	if p.CompressionLevel() != compress.None {
		t.Fatal("unlimited policy should not compress")
	}
	if p.PreferMergeJoin(1 << 40) {
		t.Fatal("unlimited policy should not prefer merge join")
	}
}

func TestPreferMergeJoin(t *testing.T) {
	m := NewMonitor()
	p := NewPolicy(m, 1000)
	m.SetAppUsage(Usage{AppRAM: 800})
	if !p.PreferMergeJoin(200) {
		t.Fatal("200-byte build with 200 free should prefer merge")
	}
	m.SetAppUsage(Usage{AppRAM: 100})
	if p.PreferMergeJoin(200) {
		t.Fatal("small build with plenty of free RAM should hash")
	}
}

func TestCompressedIntermediateLifecycle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]int64, 100_000)
	for i := range data {
		data[i] = rng.Int63n(50)
	}
	ci := NewCompressedIntermediate(append([]int64(nil), data...))
	raw := ci.FootprintBytes()
	if raw != int64(len(data))*8 {
		t.Fatalf("raw footprint %d", raw)
	}
	if _, err := ci.SetLevel(compress.Light); err != nil {
		t.Fatal(err)
	}
	light := ci.FootprintBytes()
	if light >= raw {
		t.Fatalf("light compression grew footprint: %d >= %d", light, raw)
	}
	if _, err := ci.SetLevel(compress.Heavy); err != nil {
		t.Fatal(err)
	}
	heavy := ci.FootprintBytes()
	if heavy >= raw {
		t.Fatalf("heavy compression grew footprint: %d", heavy)
	}
	// Back to raw: contents must be intact.
	if _, err := ci.SetLevel(compress.None); err != nil {
		t.Fatal(err)
	}
	got, err := ci.Values()
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("value %d corrupted through compression cycle", i)
		}
	}
}

func TestCompressedIntermediateSelect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := make([]int64, 20_000)
	for i := range data {
		data[i] = rng.Int63n(64) - 32
	}
	ci := NewCompressedIntermediate(append([]int64(nil), data...))
	ops := []compress.CmpOp{compress.CmpEq, compress.CmpNe, compress.CmpLt, compress.CmpLe, compress.CmpGt, compress.CmpGe}
	for _, level := range []compress.Level{compress.None, compress.Light, compress.Heavy} {
		if _, err := ci.SetLevel(level); err != nil {
			t.Fatal(err)
		}
		for _, op := range ops {
			for _, c := range []int64{-40, -1, 0, 17, 63} {
				got, err := ci.Select(op, c)
				if err != nil {
					t.Fatalf("level %v: %v", level, err)
				}
				want := selectInt64Slice(data, op, c)
				if len(got) != len(want) {
					t.Fatalf("level %v op %d c %d: %d matches, want %d", level, op, c, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("level %v op %d c %d: index %d = %d, want %d", level, op, c, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestSetLevelIdempotent(t *testing.T) {
	ci := NewCompressedIntermediate([]int64{1, 2, 3})
	d, err := ci.SetLevel(compress.None)
	if err != nil || d != 0 {
		t.Fatalf("no-op SetLevel: %v %v", d, err)
	}
}

func TestSimulateFigure1Shape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := make([]int64, 200_000)
	for i := range data {
		data[i] = rng.Int63n(100)
	}
	const total = 1 << 30
	points, err := SimulateFigure1(Figure1Config{
		TotalRAM:   total,
		Values:     data,
		AppProfile: RampProfile(total/10, total*9/10, 3, 5, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Shape: starts at None, reaches Heavy at the peak, returns to None.
	if points[0].Level != compress.None {
		t.Fatalf("starts at %v", points[0].Level)
	}
	sawHeavy := false
	var heavyRAM, noneRAM int64
	for _, p := range points {
		if p.Level == compress.Heavy {
			sawHeavy = true
			heavyRAM = p.DBMSRAM
		}
		if p.Level == compress.None {
			noneRAM = p.DBMSRAM
		}
	}
	if !sawHeavy {
		t.Fatal("never reached heavy compression at peak app RAM")
	}
	if last := points[len(points)-1]; last.Level != compress.None {
		t.Fatalf("ends at %v", last.Level)
	}
	if heavyRAM >= noneRAM {
		t.Fatalf("heavy footprint %d not below raw %d", heavyRAM, noneRAM)
	}
}

func TestRampProfileShape(t *testing.T) {
	p := RampProfile(10, 100, 2, 3, 2)
	if len(p) != 2+3+2+3+2 {
		t.Fatalf("profile length %d", len(p))
	}
	if p[0] != 10 || p[len(p)-1] != 10 {
		t.Fatal("profile should start and end idle")
	}
	max := int64(0)
	for _, v := range p {
		if v > max {
			max = v
		}
	}
	if max != 100 {
		t.Fatalf("peak %d", max)
	}
}

func TestSelfRAMPositive(t *testing.T) {
	if SelfRAM() <= 0 {
		t.Fatal("SelfRAM returned non-positive")
	}
}
