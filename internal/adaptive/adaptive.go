// Package adaptive implements the paper's cooperation machinery (§4):
// because the embedded DBMS shares the machine with its host
// application, it monitors the application's resource usage and reacts —
// compressing in-memory intermediates harder as the application's RAM
// need grows (Figure 1), and trading the RAM-hungry hash join for the
// CPU/IO-hungry out-of-core merge join under memory pressure.
package adaptive

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/compress"
)

// Usage is an observation of the host application's resource
// consumption.
type Usage struct {
	AppRAM int64   // bytes of RAM the application is using
	AppCPU float64 // fraction [0,1] of CPU the application is using
}

// Monitor tracks the most recent usage observation. In a real deployment
// the feed comes from OS counters; experiments and the host application
// push observations via SetAppUsage (see DESIGN.md substitutions).
type Monitor struct {
	mu  sync.RWMutex
	cur Usage
}

// NewMonitor returns a monitor with zero usage.
func NewMonitor() *Monitor { return &Monitor{} }

// SetAppUsage records the application's current resource usage.
func (m *Monitor) SetAppUsage(u Usage) {
	m.mu.Lock()
	m.cur = u
	m.mu.Unlock()
}

// AppUsage returns the most recent observation.
func (m *Monitor) AppUsage() Usage {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.cur
}

// SelfRAM samples the Go runtime's current heap footprint — the DBMS's
// own share of the machine.
func SelfRAM() int64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapAlloc)
}

// Policy converts usage observations into engine decisions.
type Policy struct {
	Monitor *Monitor
	// TotalRAM is the machine's memory the application and DBMS share.
	TotalRAM int64
	// LightAt and HeavyAt are the application-usage fractions of
	// TotalRAM at which the engine switches to light and heavy
	// compression of intermediates.
	LightAt float64
	HeavyAt float64
}

// NewPolicy returns a policy with the default thresholds (light
// compression once the app uses 50% of RAM, heavy at 75%).
func NewPolicy(m *Monitor, totalRAM int64) *Policy {
	return &Policy{Monitor: m, TotalRAM: totalRAM, LightAt: 0.50, HeavyAt: 0.75}
}

// CompressionLevel picks the intermediate-compression level for the
// current application pressure (Figure 1's reactive pattern).
func (p *Policy) CompressionLevel() compress.Level {
	if p.TotalRAM <= 0 {
		return compress.None
	}
	frac := float64(p.Monitor.AppUsage().AppRAM) / float64(p.TotalRAM)
	switch {
	case frac >= p.HeavyAt:
		return compress.Heavy
	case frac >= p.LightAt:
		return compress.Light
	default:
		return compress.None
	}
}

// PreferMergeJoin reports whether an equi-join with the given estimated
// build-side size should use the out-of-core merge join: either the
// build would not leave the application enough RAM, or the application
// is already CPU-idle but RAM-hungry (§4's hash→merge trade).
func (p *Policy) PreferMergeJoin(buildBytes int64) bool {
	if p.TotalRAM <= 0 {
		return false
	}
	u := p.Monitor.AppUsage()
	free := p.TotalRAM - u.AppRAM
	return buildBytes > free/2
}

// CompressedIntermediate is an in-memory intermediate structure (e.g. an
// aggregation hash table's payload) that re-encodes itself when the
// policy's compression level changes — the mechanism behind Figure 1.
type CompressedIntermediate struct {
	mu    sync.Mutex
	level compress.Level
	raw   []int64 // kept only at level None
	enc   []byte  // kept at Light/Heavy
}

// NewCompressedIntermediate wraps data (takes ownership).
func NewCompressedIntermediate(data []int64) *CompressedIntermediate {
	return &CompressedIntermediate{level: compress.None, raw: data}
}

// Level returns the current encoding level.
func (c *CompressedIntermediate) Level() compress.Level {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.level
}

// FootprintBytes returns the structure's current resident size.
func (c *CompressedIntermediate) FootprintBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.level == compress.None {
		return int64(len(c.raw)) * 8
	}
	return int64(len(c.enc))
}

// SetLevel re-encodes to the requested level, returning the CPU time
// spent — the cycles the DBMS trades for the application's RAM.
func (c *CompressedIntermediate) SetLevel(l compress.Level) (time.Duration, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if l == c.level {
		return 0, nil
	}
	start := time.Now()
	// Decode to raw first if needed.
	if c.level != compress.None {
		raw, err := compress.DecompressInt64(c.enc)
		if err != nil {
			return 0, err
		}
		c.raw = raw
		c.enc = nil
	}
	if l != compress.None {
		c.enc = compress.CompressInt64(c.raw, l)
		c.raw = nil
	}
	c.level = l
	return time.Since(start), nil
}

// Select evaluates "value op c" over the intermediate and returns the
// indexes of matching entries. At Light the payload stays compressed
// and the predicate runs over the encoding itself — one comparison per
// RLE run, or a packed-domain compare for frame-of-reference — so the
// structure is queryable without giving back the RAM the policy just
// reclaimed. Heavy (flate) and None fall back to a plain scan.
func (c *CompressedIntermediate) Select(op compress.CmpOp, cval int64) ([]int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.level == compress.None {
		return selectInt64Slice(c.raw, op, cval), nil
	}
	if n, ok := compress.Int64Count(c.enc); ok {
		match := make([]bool, n)
		for i := range match {
			match[i] = true
		}
		if compress.SelectInt64(c.enc, op, cval, match) {
			sel := make([]int, 0, n)
			for i, m := range match {
				if m {
					sel = append(sel, i)
				}
			}
			return sel, nil
		}
	}
	raw, err := compress.DecompressInt64(c.enc)
	if err != nil {
		return nil, err
	}
	return selectInt64Slice(raw, op, cval), nil
}

func selectInt64Slice(vals []int64, op compress.CmpOp, c int64) []int {
	sel := make([]int, 0, len(vals))
	for i, v := range vals {
		cmp := 0
		switch {
		case v < c:
			cmp = -1
		case v > c:
			cmp = 1
		}
		if compress.OpHolds(op, cmp) {
			sel = append(sel, i)
		}
	}
	return sel
}

// Values decodes the current contents (for correctness checks and for
// the DBMS's own operators to consume).
func (c *CompressedIntermediate) Values() ([]int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.level == compress.None {
		out := make([]int64, len(c.raw))
		copy(out, c.raw)
		return out, nil
	}
	return compress.DecompressInt64(c.enc)
}

// Figure1Point is one timestep of the reactive-compression experiment.
type Figure1Point struct {
	Step     int
	AppRAM   int64          // application's RAM use (driven by the scenario)
	DBMSRAM  int64          // DBMS intermediate footprint after reacting
	TotalRAM int64          // AppRAM + DBMSRAM
	Level    compress.Level // level chosen by the policy
	CPU      time.Duration  // re-encoding cost paid this step
}

// Figure1Config parameterizes the Figure 1 reproduction.
type Figure1Config struct {
	TotalRAM   int64   // machine RAM in bytes
	Values     []int64 // the DBMS's intermediate data
	AppProfile []int64 // application RAM usage per step
}

// SimulateFigure1 replays the paper's Figure 1 scenario: the application
// ramps its RAM usage up and back down; the DBMS's policy reacts by
// compressing its intermediate none→light→heavy and relaxing again.
func SimulateFigure1(cfg Figure1Config) ([]Figure1Point, error) {
	monitor := NewMonitor()
	policy := NewPolicy(monitor, cfg.TotalRAM)
	inter := NewCompressedIntermediate(append([]int64(nil), cfg.Values...))
	out := make([]Figure1Point, 0, len(cfg.AppProfile))
	for step, appRAM := range cfg.AppProfile {
		monitor.SetAppUsage(Usage{AppRAM: appRAM})
		level := policy.CompressionLevel()
		cpu, err := inter.SetLevel(level)
		if err != nil {
			return nil, err
		}
		dbms := inter.FootprintBytes()
		out = append(out, Figure1Point{
			Step:     step,
			AppRAM:   appRAM,
			DBMSRAM:  dbms,
			TotalRAM: appRAM + dbms,
			Level:    level,
			CPU:      cpu,
		})
	}
	return out, nil
}

// RampProfile builds a symmetric app-RAM profile: idle, ramp up to peak,
// hold, ramp down — the shape of Figure 1's application curve.
func RampProfile(idle, peak int64, idleSteps, rampSteps, holdSteps int) []int64 {
	var out []int64
	for i := 0; i < idleSteps; i++ {
		out = append(out, idle)
	}
	for i := 1; i <= rampSteps; i++ {
		out = append(out, idle+(peak-idle)*int64(i)/int64(rampSteps))
	}
	for i := 0; i < holdSteps; i++ {
		out = append(out, peak)
	}
	for i := rampSteps - 1; i >= 0; i-- {
		out = append(out, idle+(peak-idle)*int64(i)/int64(rampSteps))
	}
	for i := 0; i < idleSteps; i++ {
		out = append(out, idle)
	}
	return out
}
