// Package txn implements HyPer-style serializable multi-version
// concurrency control (Neumann et al., SIGMOD'15), the scheme the paper
// adopts for DuckDB (§6): writers update data in place immediately and
// keep the previous state in undo buffers; readers reconstruct their
// snapshot by applying undo records of changes they must not see. Long
// OLAP reads therefore never block concurrent ETL writes.
//
// Timestamps: live transactions get IDs from a high range (≥ TxnIDStart)
// so a version stamped with a transaction ID is invisible to everyone
// but its creator; at commit each change is re-stamped with a small,
// monotonically increasing commit timestamp. Visibility for a reader
// with snapshot S is then simply stamp ≤ S (or stamp == own ID).
package txn

import (
	"errors"
	"fmt"
	"sync"
)

// TxnIDStart is the first live-transaction ID. Commit timestamps stay
// far below it, so "stamp ≥ TxnIDStart" means "uncommitted".
const TxnIDStart uint64 = 1 << 62

// Aborted is the stamp given to versions created by rolled-back
// transactions: invisible to everyone forever.
const Aborted uint64 = ^uint64(0)

// EpochTS stamps data that predates all transactions (bulk-loaded or
// recovered rows): visible to every snapshot.
const EpochTS uint64 = 1

// ErrConflict is returned when a write-write conflict forces an abort
// (first-updater-wins serializability).
var ErrConflict = errors.New("transaction conflict: row was modified by a concurrent transaction")

// ErrDone is returned when a finished transaction is used again.
var ErrDone = errors.New("transaction has already committed or rolled back")

// UndoAction is one entry in a transaction's undo buffer. On commit the
// action re-stamps its versions with the commit timestamp; on rollback
// it restores the previous state.
type UndoAction interface {
	Commit(commitTS uint64)
	Rollback()
}

// LogRecord is a WAL record queued by the transaction's writes and
// flushed at commit. The txn package treats it as opaque.
type LogRecord struct {
	Type    byte
	Payload []byte
}

// Transaction is one unit of ACID work.
type Transaction struct {
	id      uint64
	startTS uint64
	mgr     *Manager
	undo    []UndoAction
	log     []LogRecord
	done    bool
	mu      sync.Mutex
}

// ID returns the transaction's live ID.
func (t *Transaction) ID() uint64 { return t.id }

// StartTS returns the snapshot timestamp: the newest commit visible.
func (t *Transaction) StartTS() uint64 { return t.startTS }

// Done reports whether the transaction has finished.
func (t *Transaction) Done() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done
}

// Sees reports whether a version stamp is visible to this transaction:
// its own writes, or writes committed at or before its snapshot.
func (t *Transaction) Sees(stamp uint64) bool {
	return stamp == t.id || stamp <= t.startTS
}

// PushUndo appends an undo action to the transaction's undo buffer.
func (t *Transaction) PushUndo(a UndoAction) {
	t.mu.Lock()
	t.undo = append(t.undo, a)
	t.mu.Unlock()
}

// AppendLog queues a WAL record to be flushed if the transaction commits.
func (t *Transaction) AppendLog(recType byte, payload []byte) {
	t.mu.Lock()
	t.log = append(t.log, LogRecord{Type: recType, Payload: payload})
	t.mu.Unlock()
}

// HasWrites reports whether the transaction has queued any changes.
func (t *Transaction) HasWrites() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.undo) > 0 || len(t.log) > 0
}

// CommitFlush is the durability hook the Manager calls under the commit
// lock: it must make the log records durable (WAL append + fsync) before
// the commit becomes visible. Errors abort the transaction.
type CommitFlush func(log []LogRecord, commitTS uint64) error

// Manager hands out transactions and serializes commit processing.
type Manager struct {
	mu       sync.Mutex
	commitTS uint64 // last assigned commit timestamp
	nextID   uint64
	active   map[uint64]*Transaction
	flush    CommitFlush // may be nil (in-memory database)
}

// NewManager returns a Manager whose first commit gets timestamp
// EpochTS+1. flush may be nil for volatile databases.
func NewManager(flush CommitFlush) *Manager {
	return &Manager{
		commitTS: EpochTS,
		nextID:   TxnIDStart,
		active:   make(map[uint64]*Transaction),
		flush:    flush,
	}
}

// SetFlush replaces the commit durability hook.
func (m *Manager) SetFlush(f CommitFlush) {
	m.mu.Lock()
	m.flush = f
	m.mu.Unlock()
}

// Begin starts a transaction whose snapshot is the latest commit.
func (m *Manager) Begin() *Transaction {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := &Transaction{
		id:      m.nextID,
		startTS: m.commitTS,
		mgr:     m,
	}
	m.nextID++
	m.active[t.id] = t
	return t
}

// ActiveCount returns the number of in-flight transactions.
func (m *Manager) ActiveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active)
}

// LatestCommitTS returns the newest commit timestamp.
func (m *Manager) LatestCommitTS() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.commitTS
}

// OldestVisibleTS returns the highest timestamp every active and future
// transaction can see; undo versions at or below it are garbage.
func (m *Manager) OldestVisibleTS() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	oldest := m.commitTS
	for _, t := range m.active {
		if t.startTS < oldest {
			oldest = t.startTS
		}
	}
	return oldest
}

// Commit makes the transaction's changes durable and visible. The commit
// lock serializes: timestamp assignment, the WAL flush, and the
// re-stamping of versions, so the WAL's commit order equals timestamp
// order. A flush failure rolls the transaction back and returns the
// error.
func (m *Manager) Commit(t *Transaction) (uint64, error) {
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return 0, ErrDone
	}
	undo, log := t.undo, t.log
	t.mu.Unlock()

	m.mu.Lock()
	ts := m.commitTS + 1
	if m.flush != nil && len(log) > 0 {
		if err := m.flush(log, ts); err != nil {
			m.mu.Unlock()
			m.Rollback(t)
			return 0, fmt.Errorf("commit aborted, WAL flush failed: %w", err)
		}
	}
	m.commitTS = ts
	delete(m.active, t.id)
	m.mu.Unlock()

	for _, a := range undo {
		a.Commit(ts)
	}
	t.mu.Lock()
	t.done = true
	t.undo, t.log = nil, nil
	t.mu.Unlock()
	return ts, nil
}

// Quiesce runs fn while holding the commit lock: no transaction can
// begin or commit until fn returns. fn receives a read snapshot of the
// latest committed state and the number of in-flight transactions — the
// checkpointer uses both. The snapshot must not be committed or rolled
// back.
func (m *Manager) Quiesce(fn func(snap *Transaction, inFlight int) error) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := &Transaction{id: m.nextID, startTS: m.commitTS, mgr: m}
	m.nextID++
	return fn(snap, len(m.active))
}

// Rollback undoes every change the transaction made, newest first.
func (m *Manager) Rollback(t *Transaction) {
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return
	}
	undo := t.undo
	t.done = true
	t.undo, t.log = nil, nil
	t.mu.Unlock()

	for i := len(undo) - 1; i >= 0; i-- {
		undo[i].Rollback()
	}
	m.mu.Lock()
	delete(m.active, t.id)
	m.mu.Unlock()
}
