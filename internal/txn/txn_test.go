package txn

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

type recordingAction struct {
	committed  uint64
	rolledBack bool
}

func (a *recordingAction) Commit(ts uint64) { a.committed = ts }
func (a *recordingAction) Rollback()        { a.rolledBack = true }

func TestTimestampsMonotonic(t *testing.T) {
	m := NewManager(nil)
	var last uint64
	for i := 0; i < 10; i++ {
		tx := m.Begin()
		ts, err := m.Commit(tx)
		if err != nil {
			t.Fatal(err)
		}
		if ts <= last {
			t.Fatalf("commit ts %d not after %d", ts, last)
		}
		last = ts
	}
}

func TestVisibilityRules(t *testing.T) {
	m := NewManager(nil)
	t1 := m.Begin()
	if !t1.Sees(EpochTS) {
		t.Fatal("epoch data must be visible")
	}
	if !t1.Sees(t1.ID()) {
		t.Fatal("own writes must be visible")
	}
	t2 := m.Begin()
	if t1.Sees(t2.ID()) || t2.Sees(t1.ID()) {
		t.Fatal("other transactions' live writes visible")
	}
	if t1.Sees(Aborted) {
		t.Fatal("aborted stamp visible")
	}
	// A commit after t1 began is invisible to t1.
	ts, _ := m.Commit(t2)
	if t1.Sees(ts) {
		t.Fatal("later commit visible to older snapshot")
	}
	t3 := m.Begin()
	if !t3.Sees(ts) {
		t.Fatal("commit invisible to newer snapshot")
	}
}

func TestCommitStampsUndoActions(t *testing.T) {
	m := NewManager(nil)
	tx := m.Begin()
	a := &recordingAction{}
	tx.PushUndo(a)
	ts, err := m.Commit(tx)
	if err != nil {
		t.Fatal(err)
	}
	if a.committed != ts || a.rolledBack {
		t.Fatalf("action state: %+v", a)
	}
}

func TestRollbackRunsInReverse(t *testing.T) {
	m := NewManager(nil)
	tx := m.Begin()
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		tx.PushUndo(&funcAction{rollback: func() { order = append(order, i) }})
	}
	m.Rollback(tx)
	if fmt.Sprint(order) != "[2 1 0]" {
		t.Fatalf("rollback order %v", order)
	}
	if !tx.Done() {
		t.Fatal("not done after rollback")
	}
}

type funcAction struct{ rollback func() }

func (a *funcAction) Commit(uint64) {}
func (a *funcAction) Rollback()     { a.rollback() }

func TestDoubleCommitRejected(t *testing.T) {
	m := NewManager(nil)
	tx := m.Begin()
	m.Commit(tx)
	if _, err := m.Commit(tx); !errors.Is(err, ErrDone) {
		t.Fatalf("double commit: %v", err)
	}
	m.Rollback(tx) // must be a no-op, not a panic
}

func TestFlushFailureAborts(t *testing.T) {
	boom := errors.New("disk full")
	m := NewManager(func(log []LogRecord, ts uint64) error { return boom })
	tx := m.Begin()
	a := &recordingAction{}
	tx.PushUndo(a)
	tx.AppendLog(1, []byte("payload"))
	if _, err := m.Commit(tx); !errors.Is(err, boom) {
		t.Fatalf("flush error not surfaced: %v", err)
	}
	if !a.rolledBack {
		t.Fatal("failed commit did not roll back")
	}
	if m.ActiveCount() != 0 {
		t.Fatal("transaction leaked")
	}
}

func TestFlushReceivesRecordsAndTS(t *testing.T) {
	var gotTS uint64
	var gotRecords int
	m := NewManager(func(log []LogRecord, ts uint64) error {
		gotTS = ts
		gotRecords = len(log)
		return nil
	})
	tx := m.Begin()
	tx.AppendLog(1, []byte("a"))
	tx.AppendLog(2, []byte("b"))
	ts, _ := m.Commit(tx)
	if gotTS != ts || gotRecords != 2 {
		t.Fatalf("flush saw ts=%d records=%d", gotTS, gotRecords)
	}
}

func TestReadOnlyCommitSkipsFlush(t *testing.T) {
	called := false
	m := NewManager(func(log []LogRecord, ts uint64) error {
		called = true
		return nil
	})
	tx := m.Begin()
	if _, err := m.Commit(tx); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("flush called for a read-only transaction")
	}
}

func TestOldestVisibleTS(t *testing.T) {
	m := NewManager(nil)
	t1 := m.Begin()
	base := t1.StartTS()
	t2 := m.Begin()
	m.Commit(t2)
	if got := m.OldestVisibleTS(); got != base {
		t.Fatalf("oldest = %d, want %d", got, base)
	}
	m.Rollback(t1)
	if got := m.OldestVisibleTS(); got != m.LatestCommitTS() {
		t.Fatalf("oldest after release = %d, want %d", got, m.LatestCommitTS())
	}
}

func TestQuiesceBlocksCommits(t *testing.T) {
	m := NewManager(nil)
	tx := m.Begin()
	inQuiesce := make(chan struct{})
	release := make(chan struct{})
	done := make(chan uint64, 1)
	go func() {
		m.Quiesce(func(snap *Transaction, inFlight int) error {
			if inFlight != 1 {
				t.Errorf("inFlight = %d, want 1", inFlight)
			}
			close(inQuiesce)
			<-release
			return nil
		})
	}()
	<-inQuiesce
	go func() {
		ts, _ := m.Commit(tx)
		done <- ts
	}()
	select {
	case <-done:
		t.Fatal("commit completed during quiesce")
	default:
	}
	close(release)
	if ts := <-done; ts == 0 {
		t.Fatal("commit failed after quiesce")
	}
}

func TestConcurrentBeginCommit(t *testing.T) {
	m := NewManager(nil)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				tx := m.Begin()
				if j%3 == 0 {
					m.Rollback(tx)
				} else {
					m.Commit(tx)
				}
			}
		}()
	}
	wg.Wait()
	if m.ActiveCount() != 0 {
		t.Fatalf("%d transactions leaked", m.ActiveCount())
	}
}
