package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package ready for analysis. Only
// non-test GoFiles are loaded: the analyzers encode invariants of the
// engine itself, and test helpers legitimately do things (unsorted
// debug dumps, discarded cleanup errors) the engine must not.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Dir        string
	Standard   bool
	GoFiles    []string
	Imports    []string
}

// LoadPatterns resolves the given package patterns (e.g. "./...")
// relative to dir with the go tool, then parses and type-checks every
// matched module package plus its in-module dependencies using only
// the standard library (go/parser + go/types; stdlib imports resolve
// through the source importer). It returns the packages matched by the
// patterns, in dependency order.
func LoadPatterns(dir string, patterns []string) ([]*Package, error) {
	roots, err := goList(dir, patterns, false)
	if err != nil {
		return nil, err
	}
	closure, err := goList(dir, patterns, true)
	if err != nil {
		return nil, err
	}
	rootSet := make(map[string]bool, len(roots))
	for _, r := range roots {
		rootSet[r.ImportPath] = true
	}

	inModule := make(map[string]*listPkg, len(closure))
	for _, p := range closure {
		if !p.Standard {
			inModule[p.ImportPath] = p
		}
	}
	order := topoSort(inModule)

	fset := token.NewFileSet()
	checked := make(map[string]*types.Package, len(order))
	imp := &chainImporter{
		checked: checked,
		source:  importer.ForCompiler(fset, "source", nil),
	}
	var out []*Package
	for _, lp := range order {
		pkg, err := checkPackage(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		checked[lp.ImportPath] = pkg.Types
		if rootSet[lp.ImportPath] {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// LoadDir parses and type-checks the single package rooted at dir
// (every non-test .go file), resolving imports from the standard
// library only. Fixture tests use this: testdata packages are invisible
// to the go tool, so they cannot be loaded through go list.
func LoadDir(dir string) (*Package, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	lp := &listPkg{ImportPath: filepath.Base(dir), Dir: dir}
	for _, m := range matches {
		base := filepath.Base(m)
		if strings.HasSuffix(base, "_test.go") {
			continue
		}
		lp.GoFiles = append(lp.GoFiles, base)
	}
	if len(lp.GoFiles) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	fset := token.NewFileSet()
	imp := &chainImporter{
		checked: map[string]*types.Package{},
		source:  importer.ForCompiler(fset, "source", nil),
	}
	return checkPackage(fset, imp, lp)
}

func checkPackage(fset *token.FileSet, imp types.ImporterFrom, lp *listPkg) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", lp.ImportPath, err)
	}
	return &Package{
		PkgPath: lp.ImportPath,
		Dir:     lp.Dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// chainImporter serves already-checked module packages from its cache
// and everything else (the standard library) from the source importer,
// sharing one FileSet so positions stay coherent.
type chainImporter struct {
	checked map[string]*types.Package
	source  types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	return c.ImportFrom(path, "", 0)
}

func (c *chainImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := c.checked[path]; ok {
		return p, nil
	}
	if from, ok := c.source.(types.ImporterFrom); ok {
		return from.ImportFrom(path, srcDir, mode)
	}
	return c.source.Import(path)
}

func goList(dir string, patterns []string, deps bool) ([]*listPkg, error) {
	args := []string{"list", "-json"}
	if deps {
		args = append(args, "-deps")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listPkg
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// topoSort orders packages dependency-first. go list -deps already
// emits that order, but the contract is undocumented enough that the
// loader re-derives it.
func topoSort(pkgs map[string]*listPkg) []*listPkg {
	order := make([]*listPkg, 0, len(pkgs))
	state := make(map[string]int, len(pkgs)) // 0 unvisited, 1 visiting, 2 done
	var visit func(path string)
	visit = func(path string) {
		p, ok := pkgs[path]
		if !ok || state[path] != 0 {
			return // stdlib, already emitted, or a cycle go build would reject
		}
		state[path] = 1
		for _, imp := range p.Imports {
			visit(imp)
		}
		state[path] = 2
		order = append(order, p)
	}
	// Deterministic iteration: visit in sorted import-path order.
	paths := make([]string, 0, len(pkgs))
	for path := range pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		visit(path)
	}
	return order
}
