package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Erracc flags discarded errors on the engine's durability and spill
// I/O surfaces: calls whose last result is an error, used as a bare
// statement (or deferred), where the callee is an os.File method, an
// os file-manipulation function, or any function of the WAL, storage,
// external-sort or CSV packages. A swallowed error on these paths turns
// a short write or failed fsync into silent data loss. Deliberate
// discards must be explicit: assign to `_` (the error truly cannot
// matter) or suppress with //lint:ignore erracc <reason>.
var Erracc = &Analyzer{
	Name: "erracc",
	Doc:  "discarded error on a spill/WAL/checkpoint I/O path",
	Run:  runErracc,
}

// erraccPkgSuffixes are the module packages whose error returns are
// load-bearing for durability. Matched by import-path suffix so the
// rule is independent of the module name.
var erraccPkgSuffixes = []string{
	"internal/wal",
	"internal/storage",
	"internal/extsort",
	"internal/csvio",
}

func runErracc(pass *Pass) {
	info := pass.Info
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, _ = s.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = s.Call
			case *ast.GoStmt:
				call = s.Call
			}
			if call == nil {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || !lastResultIsError(fn) {
				return true
			}
			if why, scoped := erraccScope(fn); scoped {
				pass.Reportf(call.Pos(), "discarded error from %s (%s): on spill/WAL/checkpoint paths a swallowed error is silent data loss; handle it, or discard explicitly with `_ =`", calleeDisplay(fn), why)
			}
			return true
		})
	}
}

// erraccScope decides whether fn's errors are on an I/O path the
// engine must not ignore.
func erraccScope(fn *types.Func) (string, bool) {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := types.Unalias(sig.Recv().Type())
		if p, ok := t.(*types.Pointer); ok {
			t = types.Unalias(p.Elem())
		}
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "os" && obj.Name() == "File" {
				return "os.File method", true
			}
		}
	}
	if fn.Pkg() == nil {
		return "", false
	}
	path := fn.Pkg().Path()
	if path == "os" {
		switch fn.Name() {
		case "Remove", "RemoveAll", "Rename", "Truncate", "Mkdir", "MkdirAll":
			return "os file operation", true
		}
		return "", false
	}
	for _, suf := range erraccPkgSuffixes {
		if path == suf || strings.HasSuffix(path, "/"+suf) {
			return "package " + suf, true
		}
	}
	return "", false
}

func calleeDisplay(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n := namedTypeName(sig.Recv().Type()); n != "" {
			return n + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
