package analysis

import (
	"go/ast"
	"go/types"
)

// walkStack traverses root pre-order, passing each node along with the
// stack of its ancestors (outermost first, excluding the node itself).
// Returning false prunes the subtree.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}

// baseIdentObj resolves the object of the left-most identifier of a
// possibly-chained selector expression (x in x.a.b[i].c), or nil.
func baseIdentObj(info *types.Info, expr ast.Expr) types.Object {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return info.ObjectOf(e)
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.CallExpr:
			expr = e.Fun
		default:
			return nil
		}
	}
}

// selectedField returns the *types.Var of the struct field a selector
// expression refers to, or nil when sel is not a field selection.
func selectedField(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	f, _ := s.Obj().(*types.Var)
	return f
}

// namedTypeName unwraps pointers and aliases and returns the name of
// the underlying named type, or "".
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// calleeFunc resolves the called function or method object of a call
// expression, or nil (builtin, func value, type conversion).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.ObjectOf(fun).(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.ObjectOf(fun.Sel).(*types.Func)
		return f
	}
	return nil
}

// isPkgCall reports whether call invokes pkgPath.name (a package-level
// function, matched by full import path suffix so fixture stubs can
// stand in for engine packages).
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	f := calleeFunc(info, call)
	if f == nil || f.Name() != name || f.Pkg() == nil {
		return false
	}
	return f.Pkg().Path() == pkgPath
}

// recvTypeName returns the name of the named type of a method callee's
// receiver, or "".
func recvTypeName(info *types.Info, call *ast.CallExpr) string {
	f := calleeFunc(info, call)
	if f == nil {
		return ""
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	return namedTypeName(sig.Recv().Type())
}

// returnsOnlyError reports whether the function signature's results are
// exactly (error) or end in error.
func lastResultIsError(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// enclosingFuncs yields every FuncDecl and, nested beneath it, each
// FuncLit, so analyzers can treat a literal's body as part of its
// declaring function's scope.
func funcBodies(pkg *Package) []funcScope {
	var out []funcScope
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, funcScope{decl: fd, file: f})
		}
	}
	return out
}

type funcScope struct {
	decl *ast.FuncDecl
	file *ast.File
}
