package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Hotpath checks functions annotated with a `//quack:hotpath` doc
// comment — the per-row/per-morsel loops in internal/exec,
// internal/table and internal/vector. Inside a marked function (and
// any function literal nested in it) it flags:
//
//   - time.Now calls outside an `x != nil` profiling guard — wall-clock
//     reads cost a vDSO call per row when profiling is off;
//   - fmt.Sprintf/Sprint/Sprintln/Errorf anywhere except as a panic
//     argument — formatting allocates on every row (panic paths are
//     cold by definition);
//   - make() inside a for/range loop — a fresh allocation per
//     iteration; hoist the buffer out of the loop and reuse it;
//   - calls through a profiler hook (*Profiler / *OpProfile values)
//     with no nil guard — the profiling-off contract is one pointer
//     test, which only holds when every hook call sits behind one.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "allocation/clock/unguarded-hook work in //quack:hotpath functions",
	Run:  runHotpath,
}

// hotpathMarker is the doc-comment line that opts a function into the
// check.
const hotpathMarker = "//quack:hotpath"

func runHotpath(pass *Pass) {
	for _, fs := range funcBodies(pass.Package) {
		if !isHotpath(fs.decl) {
			continue
		}
		checkHotFunc(pass, fs.decl.Body)
	}
}

func isHotpath(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if strings.TrimSpace(c.Text) == hotpathMarker {
			return true
		}
	}
	return false
}

func checkHotFunc(pass *Pass, body *ast.BlockStmt) {
	info := pass.Info
	walkStack(body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPkgCall(info, call, "time", "Now") {
			if !nilGuarded(info, stack, nil) {
				pass.Reportf(call.Pos(), "time.Now in a //quack:hotpath function outside a profiling nil-guard: wrap it in `if <hook> != nil { ... }` so the profiling-off cost stays one pointer test")
			}
			return true
		}
		if f := calleeFunc(info, call); f != nil && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
			switch f.Name() {
			case "Sprintf", "Sprint", "Sprintln", "Errorf":
				if !insidePanic(info, stack) {
					pass.Reportf(call.Pos(), "fmt.%s in a //quack:hotpath function allocates per row; move formatting off the hot path (panic arguments are exempt)", f.Name())
				}
			}
			return true
		}
		if isBuiltin(info, call, "make") && insideLoop(stack, body) {
			pass.Reportf(call.Pos(), "make() inside a loop in a //quack:hotpath function allocates per iteration; hoist the buffer out of the loop and reuse it")
			return true
		}
		if hook := hookBase(info, call); hook != nil && !nilGuarded(info, stack, hook) {
			pass.Reportf(call.Pos(), "profiler hook call without a nil guard in a //quack:hotpath function: guard with `if %s != nil` (a nil hook is the profiling-off state)", exprString(hook))
		}
		return true
	})
}

func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == name
}

// insideLoop reports whether the node (whose ancestor stack is given)
// sits inside a for or range statement within body.
func insideLoop(stack []ast.Node, body *ast.BlockStmt) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		}
		if stack[i] == body {
			return false
		}
	}
	return false
}

func insidePanic(info *types.Info, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if call, ok := stack[i].(*ast.CallExpr); ok && isBuiltin(info, call, "panic") {
			return true
		}
	}
	return false
}

// hookBase returns the sub-expression of a method call's receiver
// chain whose static type is a profiler hook (*Profiler or
// *OpProfile), or nil. For `slot.Rows.Add(1)` it returns `slot`.
func hookBase(info *types.Info, call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	for expr := ast.Expr(sel.X); expr != nil; {
		if isHookType(info.TypeOf(expr)) {
			return expr
		}
		switch e := ast.Unparen(expr).(type) {
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.CallExpr:
			expr = nil
		default:
			expr = nil
		}
	}
	return nil
}

func isHookType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		switch namedTypeName(p.Elem()) {
		case "Profiler", "OpProfile":
			return true
		}
	}
	return false
}

// nilGuarded reports whether the node with the given ancestor stack is
// protected by a nil check: either an enclosing `if x != nil { ... }`
// (guardExpr nil accepts any nil comparison; otherwise the compared
// expression must match guardExpr textually), or a preceding
// `if x == nil { return/continue/break }` in an enclosing block.
func nilGuarded(info *types.Info, stack []ast.Node, guardExpr ast.Expr) bool {
	want := ""
	if guardExpr != nil {
		want = exprString(guardExpr)
	}
	for i := len(stack) - 1; i >= 0; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		// Only guards whose body contains the call count; a call in the
		// else branch of `if x != nil` is the unguarded path.
		if i+1 < len(stack) && stack[i+1] != ifs.Body {
			continue
		}
		if condHasNilCheck(ifs.Cond, token.NEQ, want) {
			return true
		}
	}
	// Early-bailout form: a prior statement in an enclosing block reads
	// `if x == nil { return }`.
	for i := len(stack) - 1; i >= 0; i-- {
		block, ok := stack[i].(*ast.BlockStmt)
		if !ok {
			continue
		}
		var next ast.Node
		if i+1 < len(stack) {
			next = stack[i+1]
		}
		for _, st := range block.List {
			if next != nil && st == next {
				break
			}
			ifs, ok := st.(*ast.IfStmt)
			if !ok || !endsInBailout(ifs.Body) {
				continue
			}
			if condHasNilCheck(ifs.Cond, token.EQL, want) {
				return true
			}
		}
	}
	return false
}

func endsInBailout(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	switch s := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE || s.Tok == token.BREAK
	}
	return false
}

// condHasNilCheck reports whether cond contains `expr <op> nil` (either
// operand order), where expr matches want ("" matches any expression).
func condHasNilCheck(cond ast.Expr, op token.Token, want string) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok || b.Op != op {
			return true
		}
		var other ast.Expr
		if isNilIdent(b.X) {
			other = b.Y
		} else if isNilIdent(b.Y) {
			other = b.X
		} else {
			return true
		}
		if want == "" || exprString(other) == want {
			found = true
		}
		return !found
	})
	return found
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

func exprString(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	}
	return "<expr>"
}
