package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches the golden-diagnostic markers in fixture sources:
//
//	expr // want `regex`
//
// The analyzer under test must report a diagnostic on that line whose
// message matches the regex, and must report nothing anywhere else.
var wantRe = regexp.MustCompile("// want `([^`]+)`")

type expectation struct {
	file string // base name
	line int
	re   *regexp.Regexp
	hit  bool
}

func scanWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	for _, path := range matches {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regex %q: %v", path, i+1, m[1], err)
				}
				wants = append(wants, &expectation{file: filepath.Base(path), line: i + 1, re: re})
			}
		}
	}
	return wants
}

// TestFixtures runs each analyzer over its own fixture package and
// checks the diagnostics against the // want markers, both ways: every
// diagnostic must be expected and every expectation must fire.
func TestFixtures(t *testing.T) {
	for _, a := range All() {
		t.Run(a.Name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", a.Name)
			pkg, err := LoadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			res := Run([]*Package{pkg}, []*Analyzer{a})
			wants := scanWants(t, dir)
			if len(wants) == 0 {
				t.Fatal("fixture has no // want markers: it demonstrates nothing")
			}
			for _, d := range res.Diags {
				matched := false
				for _, w := range wants {
					if !w.hit && filepath.Base(d.File) == w.file && d.Line == w.line && w.re.MatchString(d.Message) {
						w.hit = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("%s:%d: no diagnostic matching `%s`", w.file, w.line, w.re)
				}
			}
		})
	}
}

// TestLintIgnore checks the suppression contract: a directive naming
// the analyzer and carrying a reason silences (and counts) its
// diagnostic, a directive naming the wrong analyzer does not, and a
// directive without a reason is itself a diagnostic.
func TestLintIgnore(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "lintignore"))
	if err != nil {
		t.Fatal(err)
	}
	res := Run([]*Package{pkg}, All())

	if len(res.Suppressed) != 1 {
		t.Fatalf("suppressed = %v, want exactly 1", res.Suppressed)
	}
	if got, want := res.Suppressed[0].SuppressReason, "best-effort temp cleanup in a fixture"; got != want {
		t.Errorf("suppress reason = %q, want %q", got, want)
	}
	if res.Suppressed[0].Analyzer != "erracc" {
		t.Errorf("suppressed analyzer = %q, want erracc", res.Suppressed[0].Analyzer)
	}

	byAnalyzer := map[string]int{}
	for _, d := range res.Diags {
		byAnalyzer[d.Analyzer]++
	}
	if len(res.Diags) != 2 || byAnalyzer["lintignore"] != 1 || byAnalyzer["erracc"] != 1 {
		t.Errorf("active diagnostics = %v, want one lintignore (missing reason) and one erracc (wrong-analyzer directive)", res.Diags)
	}
}

// TestCleanCorpus pins the real tree at zero diagnostics: the suite is
// only trustworthy while the default answer stays "clean", so any new
// violation (or analyzer false positive) fails here before it fails in
// CI.
func TestCleanCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	pkgs, err := LoadPatterns(filepath.Join("..", ".."), []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("LoadPatterns matched no packages")
	}
	res := Run(pkgs, All())
	for _, d := range res.Diags {
		t.Errorf("corpus diagnostic: %s", d)
	}
	for _, s := range res.Suppressed {
		if s.SuppressReason == "" {
			t.Errorf("suppression without a reason: %s", s)
		}
	}
	t.Logf("%d packages, %d suppressions honored", len(pkgs), len(res.Suppressed))
}
