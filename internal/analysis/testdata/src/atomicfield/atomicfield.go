// Package atomicfield exercises the atomicfield analyzer: struct
// fields mixing sync/atomic and plain access.
package atomicfield

import "sync/atomic"

type counterHolder struct {
	flag uint64
}

func (c *counterHolder) bump() {
	atomic.AddUint64(&c.flag, 1)
}

// racyRead reads the flag without the atomic the writers use — a data
// race even if the caller holds a lock the atomic writers do not take.
func (c *counterHolder) racyRead() uint64 {
	return c.flag // want `plain access of flag, which is accessed with atomic\.AddUint64`
}

type segment struct {
	insertID []uint64
}

func (s *segment) stamp(i int, id uint64) {
	atomic.StoreUint64(&s.insertID[i], id)
}

func (s *segment) racyElem(i int) uint64 {
	return s.insertID[i] // want `plain element access of insertID`
}

func (s *segment) racySum() uint64 {
	var sum uint64
	for _, v := range s.insertID { // want `ranging over the values of insertID`
		sum += v
	}
	return sum
}

// headerOps stays legal at element granularity: nil checks, len and
// whole-slice assignment touch the header, not the racing elements.
func (s *segment) headerOps(n int) int {
	if s.insertID == nil {
		s.insertID = make([]uint64, n)
	}
	return len(s.insertID)
}

var _ = []any{(*counterHolder).bump, (*counterHolder).racyRead, (*segment).stamp, (*segment).racyElem, (*segment).racySum, (*segment).headerOps}
