// Package lintignore exercises suppression directives: a well-formed
// //lint:ignore silences its diagnostic (and is counted), a directive
// naming the wrong analyzer does not, and a directive without a reason
// is itself a diagnostic.
package lintignore

import "os"

func suppressedRemove(path string) {
	//lint:ignore erracc best-effort temp cleanup in a fixture
	os.Remove(path)
}

func wrongAnalyzer(path string) {
	//lint:ignore detorder directive names the wrong analyzer
	os.Remove(path)
}

func missingReason(path string) {
	//lint:ignore erracc
	_ = path
}

var _ = []any{suppressedRemove, wrongAnalyzer, missingReason}
