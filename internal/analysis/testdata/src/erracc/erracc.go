// Package erracc exercises the erracc analyzer: discarded errors on
// durability and spill I/O surfaces.
package erracc

import "os"

// flushBad swallows the Close error: on a spill path this is silent
// data loss.
func flushBad(f *os.File) {
	f.Close() // want `discarded error from File\.Close \(os\.File method\)`
}

func removeBad(path string) {
	os.Remove(path) // want `discarded error from os\.Remove \(os file operation\)`
}

func deferBad(f *os.File) {
	defer f.Sync() // want `discarded error from File\.Sync \(os\.File method\)`
}

// closeExplicit is the sanctioned deliberate discard.
func closeExplicit(f *os.File) {
	_ = f.Close()
}

// closeChecked propagates the error.
func closeChecked(f *os.File) error {
	return f.Close()
}

var _ = []any{flushBad, removeBad, deferBad, closeExplicit, closeChecked}
