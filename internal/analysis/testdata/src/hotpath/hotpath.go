// Package hotpath exercises the hotpath analyzer: allocation, clock
// and unguarded-hook work inside //quack:hotpath functions.
package hotpath

import (
	"fmt"
	"sync/atomic"
	"time"
)

// OpProfile mirrors the engine's per-operator profile slot: the
// analyzer recognizes hook values by this type name.
type OpProfile struct {
	Rows   atomic.Int64
	BusyNs atomic.Int64
}

type op struct {
	slot *OpProfile
}

//quack:hotpath
func (o *op) badClock() int64 {
	t0 := time.Now() // want `time\.Now in a //quack:hotpath function outside a profiling nil-guard`
	return t0.UnixNano()
}

//quack:hotpath
func (o *op) goodClock() {
	if o.slot != nil {
		t0 := time.Now()
		defer func() { o.slot.BusyNs.Add(time.Since(t0).Nanoseconds()) }()
	}
}

//quack:hotpath
func (o *op) badFormat(v int) string {
	return fmt.Sprintf("row %d", v) // want `fmt\.Sprintf in a //quack:hotpath function allocates per row`
}

// goodPanic may format: panic paths are cold by definition.
//
//quack:hotpath
func (o *op) goodPanic(n, max int) {
	if n > max {
		panic(fmt.Sprintf("row %d out of range %d", n, max))
	}
}

//quack:hotpath
func badAlloc(rows [][]int) int {
	total := 0
	for range rows {
		buf := make([]int, 8) // want `make\(\) inside a loop in a //quack:hotpath function`
		total += len(buf)
	}
	return total
}

// goodAlloc hoists the buffer out of the loop and reuses it.
//
//quack:hotpath
func goodAlloc(rows [][]int) int {
	buf := make([]int, 0, 8)
	total := 0
	for _, r := range rows {
		buf = append(buf, r...)
		total += len(buf)
		buf = buf[:0]
	}
	return total
}

//quack:hotpath
func (o *op) badHook(n int) {
	o.slot.Rows.Add(int64(n)) // want `profiler hook call without a nil guard`
}

// goodHook uses the early-bailout guard form.
//
//quack:hotpath
func (o *op) goodHook(n int) {
	if o.slot == nil {
		return
	}
	o.slot.Rows.Add(int64(n))
}

// coldFormat is unmarked: the analyzer leaves it alone.
func coldFormat(v int) string {
	return fmt.Sprintf("row %d", v)
}

var _ = []any{(*op).badClock, (*op).goodClock, (*op).badFormat, (*op).goodPanic, badAlloc, goodAlloc, (*op).badHook, (*op).goodHook, coldFormat}
