// Package pairedres exercises the pairedres analyzer: pool
// Reserve/Alloc without Release, file opens without Close.
package pairedres

import (
	"os"
	"sync/atomic"
)

// BufferPool stands in for the engine's buffer pool: the analyzer
// matches acquisition/release pairing by the type name.
type BufferPool struct{ used int64 }

func (p *BufferPool) Reserve(n int64) bool { p.used += n; return true }
func (p *BufferPool) Alloc(n int64) []byte { return make([]byte, n) }
func (p *BufferPool) Release(n int64)      { p.used -= n }

// reserveLeak is the seeded violation: Reserve with no Release and no
// ledger update — the reservation shrinks the budget forever.
func reserveLeak(p *BufferPool, n int64) bool {
	return p.Reserve(n) // want `pool Reserve with no Release and no reserved-ledger update`
}

func allocLeak(p *BufferPool) []byte {
	return p.Alloc(64) // want `pool Alloc with no Release and no reserved-ledger update`
}

// reservePaired releases in the same function.
func reservePaired(p *BufferPool, n int64) {
	if !p.Reserve(n) {
		return
	}
	defer p.Release(n)
}

type spillRun struct {
	pool     *BufferPool
	reserved int64
}

// grow hands pairing duty to the type's Close path via the reserved
// ledger.
func (r *spillRun) grow(n int64) {
	if r.pool.Reserve(n) {
		r.reserved += n
	}
}

type parRun struct {
	pool        *BufferPool
	reservedPar atomic.Int64
}

// grow updates the ledger through an atomic method call.
func (r *parRun) grow(n int64) {
	if r.pool.Reserve(n) {
		r.reservedPar.Add(n)
	}
}

// openLeak never closes the descriptor and never hands it off.
func openLeak(path string) error {
	f, err := os.Open(path) // want `file opened here is never closed and never escapes`
	if err != nil {
		return err
	}
	buf := make([]byte, 8)
	_, _ = f.Read(buf)
	return nil
}

// openClosed pairs the open with a deferred Close.
func openClosed(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	return nil
}

// openEscapes hands ownership to the caller.
func openEscapes(path string) (*os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return f, nil
}

var _ = []any{reserveLeak, allocLeak, reservePaired, (*spillRun).grow, (*parRun).grow, openLeak, openClosed, openEscapes}
