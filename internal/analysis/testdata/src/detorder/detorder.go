// Package detorder exercises the detorder analyzer: map iteration
// feeding ordered output without an intervening sort.
package detorder

import (
	"fmt"
	"os"
	"sort"
)

// explainBad is the seeded violation class from EXPLAIN ANALYZE:
// per-operator timings keyed by name, printed straight out of the map.
func explainBad(timings map[string]int64) {
	for op, ns := range timings {
		fmt.Fprintf(os.Stdout, "%s: %dns\n", op, ns) // want `fmt\.Fprintf inside map iteration emits in random order`
	}
}

func appendBad(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append inside map iteration builds "keys" in random order`
	}
	return keys
}

func sendBad(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send inside map iteration`
	}
}

// RunWriter stands in for the engine's ordered emitters: any method
// named Write*/Append*/Emit* counts as an ordered sink.
type RunWriter struct{}

func (w *RunWriter) WriteRow(k string) {}

func methodSinkBad(m map[string]int, w *RunWriter) {
	for k := range m {
		w.WriteRow(k) // want `RunWriter\.WriteRow inside map iteration emits in random order`
	}
}

// collectThenSort is the sanctioned pattern: the slice is sorted in the
// same function before anyone observes its order.
func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// perKeyBucket appends to a slice declared inside the loop body: no
// order accumulates across iterations.
func perKeyBucket(m map[string][]int) map[string][]int {
	out := map[string][]int{}
	for k, vs := range m {
		dst := out[k]
		dst = append(dst, vs...)
		out[k] = dst
	}
	return out
}

var _ = []any{explainBad, appendBad, sendBad, methodSinkBad, collectThenSort, perKeyBucket}
