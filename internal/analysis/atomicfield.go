package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Atomicfield flags struct fields that are accessed through sync/atomic
// in one place and by plain load/store in another. Mixing the two is a
// data race even when the plain access sits under a mutex the atomic
// readers do not take — the PR 7 checksum-flag bug class. Fields whose
// atomic accesses address slice elements (&s.f[i]) are tracked at
// element granularity: header operations (nil checks, len, reslicing,
// whole-slice assignment) stay legal, plain element reads/writes do
// not.
var Atomicfield = &Analyzer{
	Name: "atomicfield",
	Doc:  "struct field mixing sync/atomic and plain access",
	Run:  runAtomicfield,
}

type atomicUse struct {
	elem bool   // atomics address elements of a slice/array field
	via  string // one atomic callsite, for the message
}

func runAtomicfield(pass *Pass) {
	info := pass.Info
	// Pass A: which fields are accessed atomically, and how.
	fields := map[*types.Var]*atomicUse{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(info, call) || len(call.Args) == 0 {
				return true
			}
			un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				return true
			}
			target := ast.Unparen(un.X)
			elem := false
			if ix, ok := target.(*ast.IndexExpr); ok {
				target = ast.Unparen(ix.X)
				elem = true
			}
			sel, ok := target.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fv := selectedField(info, sel)
			if fv == nil {
				return true
			}
			if prev, ok := fields[fv]; !ok {
				fields[fv] = &atomicUse{elem: elem, via: atomicCallName(info, call)}
			} else {
				prev.elem = prev.elem || elem
			}
			return true
		})
	}
	if len(fields) == 0 {
		return
	}
	// Pass B: find plain accesses to those fields.
	for _, f := range pass.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fv := selectedField(info, sel)
			use, tracked := fields[fv]
			if !tracked {
				return true
			}
			if insideAtomicArg(info, stack) {
				return true
			}
			if use.elem {
				checkElemAccess(pass, sel, stack, use)
			} else {
				checkScalarAccess(pass, sel, stack, use)
			}
			return true
		})
	}
}

// checkElemAccess flags plain element reads/writes (x.f[i], range with
// a value variable) of a field whose elements are accessed atomically.
func checkElemAccess(pass *Pass, sel *ast.SelectorExpr, stack []ast.Node, use *atomicUse) {
	if len(stack) == 0 {
		return
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.IndexExpr:
		if parent.X == sel {
			pass.Reportf(sel.Pos(), "plain element access of %s, whose elements are accessed with %s elsewhere: this races with the lock-free atomic readers; use the atomic accessor", sel.Sel.Name, use.via)
		}
	case *ast.RangeStmt:
		if parent.X == sel && parent.Value != nil {
			pass.Reportf(sel.Pos(), "ranging over the values of %s, whose elements are accessed with %s elsewhere: element reads race with atomic writers; index and load atomically", sel.Sel.Name, use.via)
		}
	}
}

// checkScalarAccess flags any plain read or write of a scalar field
// that is accessed atomically elsewhere, except composite-literal
// initialization (the value is private until published).
func checkScalarAccess(pass *Pass, sel *ast.SelectorExpr, stack []ast.Node, use *atomicUse) {
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.CompositeLit); ok {
			return
		}
	}
	pass.Reportf(sel.Pos(), "plain access of %s, which is accessed with %s elsewhere: mixed atomic/plain access is a data race; use sync/atomic consistently (or an atomic.* typed field)", sel.Sel.Name, use.via)
}

// insideAtomicArg reports whether the selector sits inside the &arg of
// a sync/atomic call (that is the sanctioned access).
func insideAtomicArg(info *types.Info, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if call, ok := stack[i].(*ast.CallExpr); ok {
			return isAtomicCall(info, call)
		}
	}
	return false
}

func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync/atomic" {
		return false
	}
	return hasAnyPrefix(f.Name(), "Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or")
}

func atomicCallName(info *types.Info, call *ast.CallExpr) string {
	f := calleeFunc(info, call)
	if f == nil {
		return "sync/atomic"
	}
	return "atomic." + f.Name()
}
