package analysis

import (
	"go/ast"
	"go/types"
)

// Detorder flags iteration over a map whose body feeds an ordered
// output — a writer, a chunk/row emitter, a channel, or a slice that is
// never sorted in the same function. Go randomizes map iteration order,
// so any such flow breaks the engine's bit-identical-results guarantee
// (EXPLAIN text, metrics exposition, serialized state, merge inputs).
// The sanctioned pattern is collect-then-sort: append the keys to a
// slice, sort it, then iterate the slice.
var Detorder = &Analyzer{
	Name: "detorder",
	Doc:  "map iteration feeding ordered output without an intervening sort",
	Run:  runDetorder,
}

func runDetorder(pass *Pass) {
	info := pass.Info
	for _, fs := range funcBodies(pass.Package) {
		body := fs.decl.Body
		// All sort calls in the function, keyed by the object sorted.
		sorted := sortedObjects(info, body)
		ast.Inspect(body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if _, isMap := info.TypeOf(rs.X).Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRangeBody(pass, rs, sorted)
			return true
		})
	}
}

// sortedObjects returns the set of objects that appear as arguments to
// a sort.* or slices.Sort* call anywhere in the function body.
func sortedObjects(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeFunc(info, call)
		if f == nil || f.Pkg() == nil {
			return true
		}
		if p := f.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if obj := argObject(info, arg); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// argObject resolves the object a sort/append argument refers to: the
// field for selectors, the variable for identifiers.
func argObject(info *types.Info, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return info.ObjectOf(e)
	case *ast.SelectorExpr:
		if f := selectedField(info, e); f != nil {
			return f
		}
		return info.ObjectOf(e.Sel)
	}
	return nil
}

func checkMapRangeBody(pass *Pass, rs *ast.RangeStmt, sorted map[types.Object]bool) {
	info := pass.Info
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(s.Pos(), "channel send inside map iteration: receiver observes a random order; collect into a slice and sort before sending")
		case *ast.AssignStmt:
			// x = append(x, ...) where x is never sorted in this function.
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return true
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok || !isBuiltinAppend(info, call) {
				return true
			}
			target := argObject(info, s.Lhs[0])
			if target == nil || sorted[target] {
				return true
			}
			// A slice declared inside the loop body is a per-iteration
			// bucket (dst := m[k]; dst = append(dst, ...); m[k] = dst):
			// no order accumulates across iterations.
			if target.Pos() >= rs.Pos() && target.Pos() < rs.End() {
				return true
			}
			pass.Reportf(s.Pos(), "append inside map iteration builds %q in random order and it is never sorted in this function; sort it before use or sort the keys first", targetName(s.Lhs[0]))
		case *ast.CallExpr:
			if name, sink := orderedSink(info, s); sink {
				pass.Reportf(s.Pos(), "%s inside map iteration emits in random order; iterate sorted keys instead", name)
			}
		}
		return true
	})
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

func targetName(expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return "value"
}

// orderedSink reports whether call writes to an order-sensitive output:
// fmt print functions and Write*/Append*/Emit* methods (writers,
// builders, chunk emitters, run writers).
func orderedSink(info *types.Info, call *ast.CallExpr) (string, bool) {
	f := calleeFunc(info, call)
	if f == nil {
		return "", false
	}
	name := f.Name()
	if f.Pkg() != nil && f.Pkg().Path() == "fmt" {
		switch name {
		case "Fprintf", "Fprint", "Fprintln", "Printf", "Print", "Println":
			return "fmt." + name, true
		}
		return "", false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	if hasAnyPrefix(name, "Write", "Append", "Emit") {
		recv := namedTypeName(sig.Recv().Type())
		if recv == "" {
			recv = "receiver"
		}
		return recv + "." + name, true
	}
	return "", false
}

func hasAnyPrefix(s string, prefixes ...string) bool {
	for _, p := range prefixes {
		if len(s) >= len(p) && s[:len(p)] == p {
			return true
		}
	}
	return false
}
