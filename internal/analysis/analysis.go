// Package analysis implements quack-lint: a suite of static analyzers
// that encode the engine's invariants — deterministic output ordering,
// paired resource accounting, consistent atomic access, allocation-free
// hot paths and checked I/O errors — on top of the standard library's
// go/parser and go/types only. Each analyzer is a separate file with a
// golden-diagnostic fixture package under testdata/src; the clean-corpus
// test pins the real tree at zero diagnostics.
//
// Suppression: a diagnostic may be silenced with a directive comment
//
//	//lint:ignore <analyzer> <reason>
//
// on the flagged line or the line directly above it. The reason is
// mandatory — a directive without one is itself a diagnostic — and the
// CLI counts every suppression it honors, so waivers stay visible.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one invariant check. Run inspects the package through
// pass and reports findings via pass.Reportf.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(pass *Pass)
}

// Pass carries one package through one analyzer.
type Pass struct {
	*Package
	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`

	// SuppressReason is set when a lint:ignore directive silenced the
	// diagnostic; such diagnostics move to Result.Suppressed.
	SuppressReason string `json:"suppress_reason,omitempty"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Result splits a run's findings into active diagnostics (fail the
// build) and honored suppressions (reported, counted, non-fatal).
type Result struct {
	Diags      []Diagnostic
	Suppressed []Diagnostic
}

// Run applies every analyzer to every package and resolves suppression
// directives. Malformed directives surface as "lintignore" diagnostics.
func Run(pkgs []*Package, analyzers []*Analyzer) Result {
	var raw []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Package: pkg, analyzer: a, diags: &raw}
			a.Run(pass)
		}
	}
	// Resolve suppressions: a directive matches when it names the
	// analyzer (or "all") and sits on the diagnostic's line or the line
	// above it in the same file.
	var res Result
	directives := map[string]map[int]*ignoreDirective{}
	for _, pkg := range pkgs {
		dirs, malformed := scanDirectives(pkg)
		res.Diags = append(res.Diags, malformed...)
		for file, byLine := range dirs {
			directives[file] = byLine
		}
	}
	for _, d := range raw {
		if dir := matchDirective(directives[d.Pos.Filename], d); dir != nil {
			d.SuppressReason = dir.reason
			res.Suppressed = append(res.Suppressed, fill(d))
			continue
		}
		res.Diags = append(res.Diags, fill(d))
	}
	sortDiags(res.Diags)
	sortDiags(res.Suppressed)
	return res
}

func fill(d Diagnostic) Diagnostic {
	d.File = d.Pos.Filename
	d.Line = d.Pos.Line
	d.Col = d.Pos.Column
	return d
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzers []string
	reason    string
}

func (d *ignoreDirective) matches(analyzer string) bool {
	for _, a := range d.analyzers {
		if a == analyzer || a == "all" {
			return true
		}
	}
	return false
}

var ignoreRe = regexp.MustCompile(`^//lint:ignore(\s+(\S+))?(\s+(.*\S))?\s*$`)

// scanDirectives collects lint:ignore directives per file keyed by
// line, and returns diagnostics for malformed ones (missing analyzer
// name or missing reason).
func scanDirectives(pkg *Package) (map[string]map[int]*ignoreDirective, []Diagnostic) {
	out := map[string]map[int]*ignoreDirective{}
	var malformed []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//lint:ignore") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil || m[2] == "" || m[4] == "" {
					malformed = append(malformed, fill(Diagnostic{
						Pos:      pos,
						Analyzer: "lintignore",
						Message:  "malformed //lint:ignore directive: want \"//lint:ignore <analyzer>[,<analyzer>] <reason>\" with a non-empty reason",
					}))
					continue
				}
				dir := &ignoreDirective{
					analyzers: strings.Split(m[2], ","),
					reason:    m[4],
				}
				if out[pos.Filename] == nil {
					out[pos.Filename] = map[int]*ignoreDirective{}
				}
				out[pos.Filename][pos.Line] = dir
			}
		}
	}
	return out, malformed
}

func matchDirective(byLine map[int]*ignoreDirective, d Diagnostic) *ignoreDirective {
	if byLine == nil {
		return nil
	}
	if dir := byLine[d.Pos.Line]; dir != nil && dir.matches(d.Analyzer) {
		return dir
	}
	if dir := byLine[d.Pos.Line-1]; dir != nil && dir.matches(d.Analyzer) {
		return dir
	}
	return nil
}

// All returns every engine-invariant analyzer in the suite.
func All() []*Analyzer {
	return []*Analyzer{
		Detorder,
		Pairedres,
		Atomicfield,
		Hotpath,
		Erracc,
	}
}

// forEachFunc invokes fn for every function declaration and function
// literal in the package, with the declaration the literal is nested
// in (decl is nil for literals in package-level var initializers).
func forEachFunc(pkg *Package, fn func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd, fd.Body)
			}
		}
	}
}
