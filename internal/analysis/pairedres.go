package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Pairedres flags unpaired resource acquisition: a buffer-pool
// Reserve/Alloc with no Release (and no update of a reserved-bytes
// ledger field that defers the release to Close) in the same function,
// and an os file open whose handle is neither closed nor stored away.
// The engine's memory budget is enforced entirely by Reserve/Release
// pairing — a leaked reservation permanently shrinks the budget for
// every query on the database; a leaked fd does the same to the
// process.
var Pairedres = &Analyzer{
	Name: "pairedres",
	Doc:  "pool Reserve/Alloc without Release, file open without Close",
	Run:  runPairedres,
}

func runPairedres(pass *Pass) {
	for _, fs := range funcBodies(pass.Package) {
		if poolMethod(pass, fs.decl) {
			continue // the pool's own implementation balances internally
		}
		checkPoolPairing(pass, fs.decl.Body)
		checkFilePairing(pass, fs.decl.Body)
	}
}

// poolMethod reports whether decl is a method on a *Pool type.
func poolMethod(pass *Pass, decl *ast.FuncDecl) bool {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return false
	}
	return strings.Contains(namedTypeName(pass.Info.TypeOf(decl.Recv.List[0].Type)), "Pool")
}

func checkPoolPairing(pass *Pass, body *ast.BlockStmt) {
	info := pass.Info
	var acquires []*ast.CallExpr
	released := false
	ledger := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			// Ledger updates can be atomic: h.reservedPar.Add(need).
			if sel, ok := ast.Unparen(s.Fun).(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Add", "Sub", "Store":
					if ledgerName(sel.X) {
						ledger = true
					}
				}
			}
			recv := recvTypeName(info, s)
			if !strings.Contains(recv, "Pool") {
				return true
			}
			switch methodName(s) {
			case "Reserve", "Alloc":
				acquires = append(acquires, s)
			case "Release", "Free", "Freed":
				released = true
			}
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if ledgerName(lhs) {
					ledger = true
				}
			}
		case *ast.IncDecStmt:
			if ledgerName(s.X) {
				ledger = true
			}
		}
		return true
	})
	if released || ledger {
		return
	}
	for _, call := range acquires {
		pass.Reportf(call.Pos(), "pool %s with no Release and no reserved-ledger update in this function: the reservation leaks and shrinks the engine budget for every later query", methodName(call))
	}
}

func methodName(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return ""
}

// ledgerName reports whether an assignment target looks like a
// reservation ledger (s.reserved += n, c.accounted = x): the idiom
// that hands pairing duty to the type's Close/release path.
func ledgerName(expr ast.Expr) bool {
	var name string
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	default:
		return false
	}
	name = strings.ToLower(name)
	return strings.Contains(name, "reserved") || strings.Contains(name, "accounted")
}

// checkFilePairing flags os.Open/Create/OpenFile/CreateTemp results
// that are neither closed nor escape the function (returned, stored in
// a struct or field, or passed to another call).
func checkFilePairing(pass *Pass, body *ast.BlockStmt) {
	info := pass.Info
	type opened struct {
		obj  types.Object
		call *ast.CallExpr
	}
	var opens []opened
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isFileOpen(info, call) {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			if obj := info.ObjectOf(id); obj != nil {
				opens = append(opens, opened{obj: obj, call: call})
			}
		}
		return true
	})
	for _, o := range opens {
		if fileHandled(info, body, o.obj, o.call) {
			continue
		}
		pass.Reportf(o.call.Pos(), "file opened here is never closed and never escapes this function: the descriptor leaks (spill/WAL paths must pair every open with a Close)")
	}
}

func isFileOpen(info *types.Info, call *ast.CallExpr) bool {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "os" {
		return false
	}
	switch f.Name() {
	case "Open", "Create", "OpenFile", "CreateTemp":
		return true
	}
	return false
}

// fileHandled reports whether obj (an opened file) is closed or
// escapes: Close called on it, used in a composite literal, assigned
// to a field, returned, or passed as an argument to any call other
// than its own methods.
func fileHandled(info *types.Info, body *ast.BlockStmt, obj types.Object, open *ast.CallExpr) bool {
	handled := false
	ast.Inspect(body, func(n ast.Node) bool {
		if handled {
			return false
		}
		switch s := n.(type) {
		case *ast.CallExpr:
			if s == open {
				return false
			}
			// f.Close() / f.Sync() keep it local; Close specifically
			// resolves the pairing. Passing f to another function hands
			// ownership off.
			if sel, ok := ast.Unparen(s.Fun).(*ast.SelectorExpr); ok {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && info.ObjectOf(id) == obj {
					if sel.Sel.Name == "Close" {
						handled = true
					}
					return true
				}
			}
			for _, arg := range s.Args {
				if usesObject(info, arg, obj) {
					handled = true
				}
			}
		case *ast.CompositeLit:
			for _, el := range s.Elts {
				if usesObject(info, el, obj) {
					handled = true
				}
			}
			return false
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if usesObject(info, r, obj) {
					handled = true
				}
			}
			return false
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				if _, isField := ast.Unparen(lhs).(*ast.SelectorExpr); isField && i < len(s.Rhs) && usesObject(info, s.Rhs[i], obj) {
					handled = true
				}
			}
			if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
				if _, isField := ast.Unparen(s.Lhs[0]).(*ast.SelectorExpr); isField && usesObject(info, s.Rhs[0], obj) {
					handled = true
				}
			}
		}
		return true
	})
	return handled
}

func usesObject(info *types.Info, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}
