package catalog

import (
	"testing"

	"repro/internal/storage"
	"repro/internal/table"
	"repro/internal/types"
)

func sampleTable(name string) *Table {
	cols := []Column{
		{Name: "id", Type: types.BigInt, NotNull: true},
		{Name: "name", Type: types.Varchar},
	}
	t := &Table{Name: name, Columns: cols}
	t.Data = table.New(t.Types(), nil)
	return t
}

func TestCreateLookupDrop(t *testing.T) {
	c := New()
	if err := c.CreateTable(sampleTable("users")); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable(sampleTable("users")); err == nil {
		t.Fatal("duplicate table accepted")
	}
	// Case-insensitive lookup.
	tbl, err := c.Table("USERS")
	if err != nil || tbl.Name != "users" {
		t.Fatalf("%v %v", tbl, err)
	}
	if !c.HasTable("Users") {
		t.Fatal("HasTable case sensitivity")
	}
	if _, err := c.DropTable("users"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Table("users"); err == nil {
		t.Fatal("dropped table found")
	}
}

func TestViewsAndNameCollisions(t *testing.T) {
	c := New()
	if err := c.CreateView(&View{Name: "v", SQL: "SELECT 1"}); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable(sampleTable("v")); err == nil {
		t.Fatal("table with view's name accepted")
	}
	if err := c.CreateView(&View{Name: "v", SQL: "SELECT 2"}); err == nil {
		t.Fatal("duplicate view accepted")
	}
	v, ok := c.View("V")
	if !ok || v.SQL != "SELECT 1" {
		t.Fatalf("%+v %v", v, ok)
	}
	if err := c.DropView("v"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropView("v"); err == nil {
		t.Fatal("double view drop accepted")
	}
}

func TestColumnIndex(t *testing.T) {
	tbl := sampleTable("t")
	if tbl.ColumnIndex("NAME") != 1 || tbl.ColumnIndex("id") != 0 || tbl.ColumnIndex("ghost") != -1 {
		t.Fatal("column index resolution")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	c := New()
	tbl := sampleTable("events")
	tbl.DiskRows = 12345
	tbl.ColChains = []storage.BlockID{7, storage.InvalidBlock}
	tbl.ChainBlocks = make([][]storage.BlockID, 2)
	if err := c.CreateTable(tbl); err != nil {
		t.Fatal(err)
	}
	c.CreateView(&View{Name: "recent", SQL: "SELECT * FROM events"})

	payload := c.Serialize()
	tables, views, err := Deserialize(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(views) != 1 {
		t.Fatalf("%d tables %d views", len(tables), len(views))
	}
	got := tables[0]
	if got.Name != "events" || got.DiskRows != 12345 {
		t.Fatalf("%+v", got)
	}
	if got.Columns[0].Name != "id" || !got.Columns[0].NotNull || got.Columns[1].Type != types.Varchar {
		t.Fatalf("columns: %+v", got.Columns)
	}
	if got.ColChains[0] != 7 || got.ColChains[1] != storage.InvalidBlock {
		t.Fatalf("chains: %+v", got.ColChains)
	}
	if views[0].SQL != "SELECT * FROM events" {
		t.Fatalf("view: %+v", views[0])
	}
}

func TestDeserializeCorrupt(t *testing.T) {
	c := New()
	c.CreateTable(sampleTable("t"))
	payload := c.Serialize()
	for _, cut := range []int{1, 5, len(payload) / 2} {
		if _, _, err := Deserialize(payload[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestListingsSorted(t *testing.T) {
	c := New()
	c.CreateTable(sampleTable("zebra"))
	c.CreateTable(sampleTable("apple"))
	tabs := c.Tables()
	if len(tabs) != 2 || tabs[0].Name != "apple" || tabs[1].Name != "zebra" {
		t.Fatalf("%v", tabs)
	}
}
