// Package catalog manages QuackDB's schema objects: tables (with their
// column definitions and persistent column chains) and views. The
// catalog serializes into the storage file's root block chain at every
// checkpoint (paper §6: "the first block contains a header that points
// to the table catalog").
package catalog

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/storage"
	"repro/internal/table"
	"repro/internal/types"
)

// Column describes one table column.
type Column struct {
	Name    string
	Type    types.Type
	NotNull bool
}

// Table is a catalog entry for one base table.
type Table struct {
	Name    string
	Columns []Column
	Data    *table.DataTable

	// Persistence state, maintained by the checkpointer.
	DiskRows    int64
	ColChains   []storage.BlockID   // chain head per column (InvalidBlock = none)
	ChainBlocks [][]storage.BlockID // every block of each column chain
	// Stats are the per-segment zone maps of the persisted image,
	// Stats[c][i] covering segment i of column c. They ride in the catalog
	// chain so a cold open restores zone maps without touching any column
	// chain (stats are loaded, never recomputed).
	Stats [][]table.ColStats
}

// ColumnIndex returns the position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Types returns the column types in order.
func (t *Table) Types() []types.Type {
	out := make([]types.Type, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = c.Type
	}
	return out
}

// View is a named stored query.
type View struct {
	Name string
	SQL  string // the view's SELECT statement text
}

// Catalog is the set of schema objects. Names are case-insensitive.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
	views  map[string]*View
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables: make(map[string]*Table),
		views:  make(map[string]*View),
	}
}

func key(name string) string { return strings.ToLower(name) }

// CreateTable registers a table entry.
func (c *Catalog) CreateTable(t *Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(t.Name)
	if _, ok := c.tables[k]; ok {
		return fmt.Errorf("table %q already exists", t.Name)
	}
	if _, ok := c.views[k]; ok {
		return fmt.Errorf("view %q already exists", t.Name)
	}
	if len(t.ColChains) == 0 {
		t.ColChains = make([]storage.BlockID, len(t.Columns))
		for i := range t.ColChains {
			t.ColChains[i] = storage.InvalidBlock
		}
		t.ChainBlocks = make([][]storage.BlockID, len(t.Columns))
	}
	c.tables[k] = t
	return nil
}

// DropTable removes a table and returns its entry (for block freeing).
func (c *Catalog) DropTable(name string) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[key(name)]
	if !ok {
		return nil, fmt.Errorf("table %q does not exist", name)
	}
	delete(c.tables, key(name))
	return t, nil
}

// Table looks up a table by name.
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[key(name)]
	if !ok {
		return nil, fmt.Errorf("table %q does not exist", name)
	}
	return t, nil
}

// HasTable reports whether a table exists.
func (c *Catalog) HasTable(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.tables[key(name)]
	return ok
}

// Tables returns all tables sorted by name.
func (c *Catalog) Tables() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CreateView registers a view.
func (c *Catalog) CreateView(v *View) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(v.Name)
	if _, ok := c.views[k]; ok {
		return fmt.Errorf("view %q already exists", v.Name)
	}
	if _, ok := c.tables[k]; ok {
		return fmt.Errorf("table %q already exists", v.Name)
	}
	c.views[k] = v
	return nil
}

// DropView removes a view.
func (c *Catalog) DropView(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.views[key(name)]; !ok {
		return fmt.Errorf("view %q does not exist", name)
	}
	delete(c.views, key(name))
	return nil
}

// View looks up a view by name.
func (c *Catalog) View(name string) (*View, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.views[key(name)]
	return v, ok
}

// Views returns all views sorted by name.
func (c *Catalog) Views() []*View {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*View, 0, len(c.views))
	for _, v := range c.views {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ---- serialization (checkpoint root chain payload) ----

// Serialize encodes the catalog: table schemas with their column chain
// heads and view definitions. DataTable contents are not included; they
// live in the per-column chains.
func (c *Catalog) Serialize() []byte {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []byte
	tables := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		tables = append(tables, t)
	}
	sort.Slice(tables, func(i, j int) bool { return tables[i].Name < tables[j].Name })
	out = binary.LittleEndian.AppendUint32(out, uint32(len(tables)))
	for _, t := range tables {
		out = appendString(out, t.Name)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(t.Columns)))
		for _, col := range t.Columns {
			out = appendString(out, col.Name)
			out = append(out, byte(col.Type))
			if col.NotNull {
				out = append(out, 1)
			} else {
				out = append(out, 0)
			}
		}
		out = binary.LittleEndian.AppendUint64(out, uint64(t.DiskRows))
		for i := range t.Columns {
			head := storage.InvalidBlock
			if i < len(t.ColChains) {
				head = t.ColChains[i]
			}
			out = binary.LittleEndian.AppendUint64(out, uint64(head))
		}
		for i, col := range t.Columns {
			var stats []table.ColStats
			if i < len(t.Stats) {
				stats = t.Stats[i]
			}
			out = table.AppendColStats(out, col.Type, stats)
		}
	}
	views := make([]*View, 0, len(c.views))
	for _, v := range c.views {
		views = append(views, v)
	}
	sort.Slice(views, func(i, j int) bool { return views[i].Name < views[j].Name })
	out = binary.LittleEndian.AppendUint32(out, uint32(len(views)))
	for _, v := range views {
		out = appendString(out, v.Name)
		out = appendString(out, v.SQL)
	}
	return out
}

// DeserializedTable is the schema-level result of parsing a catalog
// payload; the caller wires up DataTables and loaders.
type DeserializedTable struct {
	Name      string
	Columns   []Column
	DiskRows  int64
	ColChains []storage.BlockID
	Stats     [][]table.ColStats
}

// Deserialize parses a catalog payload.
func Deserialize(data []byte) ([]DeserializedTable, []View, error) {
	r := &reader{data: data}
	nt := r.u32()
	tables := make([]DeserializedTable, 0, nt)
	for i := uint32(0); i < nt && r.err == nil; i++ {
		var t DeserializedTable
		t.Name = r.str()
		nc := r.u32()
		for j := uint32(0); j < nc && r.err == nil; j++ {
			col := Column{Name: r.str(), Type: types.Type(r.u8())}
			col.NotNull = r.u8() == 1
			t.Columns = append(t.Columns, col)
		}
		t.DiskRows = int64(r.u64())
		for j := 0; j < len(t.Columns) && r.err == nil; j++ {
			t.ColChains = append(t.ColChains, storage.BlockID(r.u64()))
		}
		for j := 0; j < len(t.Columns) && r.err == nil; j++ {
			stats, rest, err := table.DecodeColStats(r.data, t.Columns[j].Type)
			if err != nil {
				r.err = err
				break
			}
			r.data = rest
			t.Stats = append(t.Stats, stats)
		}
		tables = append(tables, t)
	}
	nv := r.u32()
	views := make([]View, 0, nv)
	for i := uint32(0); i < nv && r.err == nil; i++ {
		views = append(views, View{Name: r.str(), SQL: r.str()})
	}
	if r.err != nil {
		return nil, nil, fmt.Errorf("catalog: corrupt payload: %w", r.err)
	}
	return tables, views, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

type reader struct {
	data []byte
	err  error
}

func (r *reader) take(n int) []byte {
	if r.err != nil || len(r.data) < n {
		if r.err == nil {
			r.err = fmt.Errorf("truncated at %d remaining bytes, need %d", len(r.data), n)
		}
		return nil
	}
	out := r.data[:n]
	r.data = r.data[n:]
	return out
}

func (r *reader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) str() string {
	n := r.u32()
	b := r.take(int(n))
	return string(b)
}
