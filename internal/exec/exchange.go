package exec

import (
	"sync"

	"repro/internal/plan"
	"repro/internal/vector"
)

// exchangeOp repartitions a single-threaded chunk stream — typically a
// pipeline breaker's output (sort, aggregate, union) — across a worker
// pool running per-worker stages (filter, project), so the plan above a
// breaker no longer collapses to one thread. A producer goroutine pulls
// the child (operators are not safe for concurrent Next) and deals
// chunks round-robin-by-arrival to the workers; each worker runs its own
// stage instances and posts results.
//
// With ordered=true the consumer reassembles results in input-chunk
// order, so the operator is row-for-row transparent: filter and project
// stages are row-wise, making the output exactly what the sequential
// operator chain would produce. ordered=false hands chunks back in
// completion order for consumers that re-aggregate or re-sort anyway.
type exchangeOp struct {
	child   Operator
	stages  []stageFactory
	ordered bool

	feed    chan exItem
	results chan exResult
	cancel  chan struct{}

	// buf is the shared ordered-merge state machine: a ticket is taken
	// before feeding a chunk and returned when that chunk's results are
	// emitted, so the reorder buffer holds at most its window depth in
	// entries even when one worker stalls on an expensive chunk.
	buf *reorderBuf

	cancelOnce sync.Once
	closeOnce  sync.Once
	inner      sync.WaitGroup // producer + workers
	all        sync.WaitGroup // inner + the results-closing watcher

	drained bool
	failed  error
	started bool
	workers int
	probe   stage // one stage instance consulted by the split policy
}

// exItem is one work unit of the child's stream, tagged with its
// position: chunk rows [lo, hi). Oversized breaker chunks (a huge
// window partition) are fed as several slice items over one shared
// chunk so they no longer serialize on a single worker.
type exItem struct {
	seq    int
	chunk  *vector.Chunk
	lo, hi int
}

// exResult is one processed chunk: the stages' output for input seq
// (empty when every row was filtered out), or an error. seq is -1 for a
// producer (child.Next) error.
type exResult struct {
	seq    int
	chunks []*vector.Chunk
	err    error
}

func newExchangeOp(child Operator, stages []stageFactory, ordered bool) *exchangeOp {
	return &exchangeOp{child: child, stages: stages, ordered: ordered}
}

func (e *exchangeOp) Open(ctx *Context) error {
	return e.child.Open(ctx)
}

// start spawns the producer, the worker pool and the watcher that closes
// the results channel once all of them are done.
func (e *exchangeOp) start(ctx *Context) {
	e.started = true
	workers := ctx.Threads
	if workers < 1 {
		workers = 1
	}
	e.workers = workers
	if len(e.stages) > 0 {
		e.probe = e.stages[0]()
	}
	depth := workers * 4
	e.feed = make(chan exItem, depth)
	e.results = make(chan exResult, depth)
	e.buf = newReorderBuf(depth)
	e.cancel = make(chan struct{})
	e.drained = false

	e.inner.Add(1)
	e.all.Add(1)
	go e.producer(ctx)
	for i := 0; i < workers; i++ {
		e.inner.Add(1)
		e.all.Add(1)
		go e.worker(ctx)
	}
	e.all.Add(1)
	go func() {
		defer e.all.Done()
		e.inner.Wait()
		close(e.results)
	}()
}

func (e *exchangeOp) producer(ctx *Context) {
	defer e.inner.Done()
	defer e.all.Done()
	seq := 0
	for {
		chunk, err := e.child.Next(ctx)
		if err != nil {
			select {
			case e.results <- exResult{seq: -1, err: err}:
			case <-e.cancel:
			}
			return
		}
		if chunk == nil {
			close(e.feed)
			return
		}
		for _, it := range e.splitChunk(chunk, seq) {
			if !e.buf.acquire(e.cancel) {
				return
			}
			select {
			case e.feed <- it:
			case <-e.cancel:
				return
			}
			seq++
		}
	}
}

// splitChunk turns one child chunk into work items. Engine-sized chunks
// pass through whole; an oversized chunk — only pipeline breakers emit
// them, e.g. the window operator's one-chunk-per-partition stream — is
// re-split into ChunkCapacity-aligned slices capped at 4 per worker, so
// a single huge partition spreads across the pool instead of pinning
// one worker while the rest idle. Slices share the chunk; workers
// evaluate their own row range (sliceStage) or copy it out. Alignment
// to ChunkCapacity keeps the re-assembled output's chunk boundaries
// exactly those of the unsplit evaluation. Splitting is ordered-mode
// only: slices must reassemble by seq.
func (e *exchangeOp) splitChunk(chunk *vector.Chunk, seq int) []exItem {
	n := chunk.Len()
	if !e.ordered || n <= vector.ChunkCapacity {
		return []exItem{{seq: seq, chunk: chunk, lo: 0, hi: n}}
	}
	if ss, ok := e.probe.(sliceStage); ok && !ss.wantSlices(n) {
		return []exItem{{seq: seq, chunk: chunk, lo: 0, hi: n}}
	}
	units := (n + vector.ChunkCapacity - 1) / vector.ChunkCapacity
	if max := e.workers * 4; units > max {
		units = max
	}
	size := (n + units - 1) / units
	size = (size + vector.ChunkCapacity - 1) / vector.ChunkCapacity * vector.ChunkCapacity
	items := make([]exItem, 0, units)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		items = append(items, exItem{seq: seq, chunk: chunk, lo: lo, hi: hi})
		seq++
	}
	return items
}

func (e *exchangeOp) worker(ctx *Context) {
	defer e.inner.Done()
	defer e.all.Done()
	stages := make([]stage, len(e.stages))
	for i, f := range e.stages {
		stages[i] = f()
	}
	for {
		var it exItem
		var ok bool
		select {
		case <-e.cancel:
			return
		case it, ok = <-e.feed:
			if !ok {
				return
			}
		}
		var out []*vector.Chunk
		err := runItem(ctx, stages, it, func(c *vector.Chunk) error {
			if c.Len() > 0 {
				out = append(out, c)
			}
			return nil
		})
		select {
		case e.results <- exResult{seq: it.seq, chunks: out, err: err}:
		case <-e.cancel:
			return
		}
		if err != nil {
			return
		}
	}
}

// sliceStage is a stage that can evaluate a row range of a chunk
// in-place — the window eval stage computes rows [lo, hi) of a
// partition without copying it. Stages without it get a copied
// sub-chunk instead. wantSlices lets the stage veto splitting when
// range evaluation cannot win: a growing-frame window re-folds its
// whole prefix per slice (the fold is inherently serial), so slicing
// those would burn CPU for no wall-clock gain.
type sliceStage interface {
	stage
	wantSlices(n int) bool
	runSlice(ctx *Context, c *vector.Chunk, lo, hi int, emit func(*vector.Chunk) error) error
}

// runItem threads one work item through the stages. Whole chunks take
// the plain path; slices go to the first stage's native range support
// when it has one, else the rows are copied out first.
func runItem(ctx *Context, stages []stage, it exItem, sink func(*vector.Chunk) error) error {
	if it.lo == 0 && it.hi == it.chunk.Len() {
		return runStages(ctx, stages, it.chunk, sink)
	}
	if len(stages) > 0 {
		if ss, ok := stages[0].(sliceStage); ok {
			rest := stages[1:]
			return ss.runSlice(ctx, it.chunk, it.lo, it.hi, func(out *vector.Chunk) error {
				return runStages(ctx, rest, out, sink)
			})
		}
	}
	sub := vector.NewChunk(it.chunk.Types())
	for ci, col := range sub.Cols {
		col.AppendRange(it.chunk.Cols[ci], it.lo, it.hi-it.lo)
	}
	sub.SetLen(it.hi - it.lo)
	return runStages(ctx, stages, sub, sink)
}

// Next reassembles the workers' output. In ordered mode out-of-order
// results wait in a reorder buffer bounded by the window tickets: at
// most cap(window) chunks are in flight between producer and emission.
func (e *exchangeOp) Next(ctx *Context) (*vector.Chunk, error) {
	if e.failed != nil {
		return nil, e.failed
	}
	if !e.started {
		e.start(ctx)
	}
	for {
		if out, ok := e.buf.pop(); ok {
			return out, nil
		}
		if e.ordered {
			if e.buf.advance() { // emitted: lets the producer feed another chunk
				continue
			}
			if e.drained {
				if e.buf.parked() == 0 {
					return nil, nil
				}
				// Every fed seq posted a result, so a gap can only be a
				// seq that produced no chunks before an error path; skip.
				e.buf.skip()
				continue
			}
		} else if e.drained {
			return nil, nil
		}
		res, ok := <-e.results
		if !ok {
			e.drained = true
			continue
		}
		if res.err != nil {
			e.failed = res.err
			return nil, res.err
		}
		if e.ordered {
			e.buf.park(res.seq, res.chunks)
		} else {
			e.buf.enqueue(res.chunks)
		}
	}
}

// cancelWorkers asks the producer and outstanding workers to stop.
func (e *exchangeOp) cancelWorkers() {
	e.cancelOnce.Do(func() {
		if e.cancel != nil {
			close(e.cancel)
		}
	})
}

// Close cancels the pool, joins every goroutine and closes the child.
func (e *exchangeOp) Close(ctx *Context) {
	e.closeOnce.Do(func() {
		if e.started {
			e.cancelWorkers()
			e.all.Wait()
		}
		if e.buf != nil {
			e.buf.drop()
		}
		e.child.Close(ctx)
	})
}

// buildExchange recognizes a Filter/Project chain sitting on top of a
// pipeline breaker (sort, aggregate, UNION ALL) and compiles it into an
// exchange: the breaker is built normally (possibly itself parallel) and
// the chain's stages run on the exchange's worker pool instead of
// single-threaded operators. The ordered merge keeps output identical to
// the sequential chain. Returns ok=false when the shape does not match.
func buildExchange(node plan.Node, threads int) (Operator, bool, error) {
	var stages []stageFactory
	cur := node
peel:
	for {
		switch n := cur.(type) {
		case *plan.FilterNode:
			cond := n.Cond
			stages = append(stages, func() stage { return &filterStage{cond: cond} })
			cur = n.Child
		case *plan.ProjectNode:
			exprs := n.Exprs
			stages = append(stages, func() stage { return &projectStage{exprs: exprs} })
			cur = n.Child
		default:
			break peel
		}
	}
	if len(stages) == 0 {
		return nil, false, nil
	}
	switch cur.(type) {
	case *plan.SortNode, *plan.AggNode, *plan.UnionAllNode, *plan.WindowNode:
	default:
		return nil, false, nil
	}
	base, err := build(cur, threads)
	if err != nil {
		return nil, true, err
	}
	// Stages were collected top-down; the exchange applies them in child
	// → parent order.
	for i, j := 0, len(stages)-1; i < j; i, j = i+1, j-1 {
		stages[i], stages[j] = stages[j], stages[i]
	}
	return newExchangeOp(base, stages, true), true, nil
}
