package exec

import (
	"sync"
	"sync/atomic"

	"repro/internal/plan"
	"repro/internal/sched"
	"repro/internal/vector"
)

// exchangeOp repartitions a single-threaded chunk stream — typically a
// pipeline breaker's output (sort, aggregate, union) — across the
// engine-wide scheduler running per-item stages (filter, project), so
// the plan above a breaker no longer collapses to one thread. The
// consumer itself pulls the child (operators are not safe for
// concurrent Next) whenever the ticket window has room and submits each
// chunk as a one-shot scheduler task; tasks draw stage instances from a
// free list, so scratch buffers are reused without any goroutine owning
// them.
//
// With ordered=true the consumer reassembles results in input-chunk
// order, so the operator is row-for-row transparent: filter and project
// stages are row-wise, making the output exactly what the sequential
// operator chain would produce. ordered=false hands chunks back in
// completion order for consumers that re-aggregate or re-sort anyway.
type exchangeOp struct {
	child   Operator
	stages  []stageFactory
	ordered bool

	results chan exResult
	free    chan []stage // reusable per-task stage instances

	// buf is the shared ordered-merge state machine: a ticket is taken
	// before feeding a chunk and returned when that chunk's results are
	// emitted, so the reorder buffer holds at most its window depth in
	// entries even when one task stalls on an expensive chunk.
	buf *reorderBuf

	q         *sched.Query
	cancelled atomic.Bool
	closeOnce sync.Once

	seq       int      // next item sequence to feed
	pending   []exItem // split items not yet submitted
	inflight  int      // submitted items whose results are unreceived
	childDone bool

	failed  error
	started bool
	workers int
	probe   stage // one stage instance consulted by the split policy
}

// exItem is one work unit of the child's stream, tagged with its
// position: chunk rows [lo, hi). Oversized breaker chunks (a huge
// window partition) are fed as several slice items over one shared
// chunk so they no longer serialize on a single worker.
type exItem struct {
	seq    int
	chunk  *vector.Chunk
	lo, hi int
}

// exResult is one processed chunk: the stages' output for input seq
// (empty when every row was filtered out), or an error.
type exResult struct {
	seq    int
	chunks []*vector.Chunk
	err    error
}

func newExchangeOp(child Operator, stages []stageFactory, ordered bool) *exchangeOp {
	return &exchangeOp{child: child, stages: stages, ordered: ordered}
}

func (e *exchangeOp) Open(ctx *Context) error {
	return e.child.Open(ctx)
}

func (e *exchangeOp) start(ctx *Context) {
	e.started = true
	workers := ctx.Threads
	if workers < 1 {
		workers = 1
	}
	e.workers = workers
	if len(e.stages) > 0 {
		e.probe = e.stages[0]()
	}
	depth := workers * 4
	e.results = make(chan exResult, depth) // cap = tickets: sends never block
	e.free = make(chan []stage, depth)
	e.buf = newReorderBuf(depth)
	e.q = ctx.queryTasks()
}

// takeStages pops a reusable stage set or builds a fresh one. Stage
// instances carry only per-chunk scratch, so any task may use any set —
// exclusively, which the free list guarantees.
func (e *exchangeOp) takeStages() []stage {
	select {
	case s := <-e.free:
		return s
	default:
	}
	s := make([]stage, len(e.stages))
	for i, f := range e.stages {
		s[i] = f()
	}
	return s
}

func (e *exchangeOp) putStages(s []stage) {
	select {
	case e.free <- s:
	default:
	}
}

// submit schedules one item. The item holds a window ticket, and the
// results channel has one slot per ticket, so the task's send cannot
// block a pool worker.
func (e *exchangeOp) submit(ctx *Context, it exItem) {
	e.inflight++
	e.q.Submit(func() {
		if e.cancelled.Load() {
			e.results <- exResult{seq: it.seq}
			return
		}
		stages := e.takeStages()
		var out []*vector.Chunk
		err := runItem(ctx, stages, it, func(c *vector.Chunk) error {
			if c.Len() > 0 {
				out = append(out, c)
			}
			return nil
		})
		e.putStages(stages)
		e.results <- exResult{seq: it.seq, chunks: out, err: err}
	})
}

// nextItem returns the next work item, pulling the child inline (on the
// consumer goroutine) and splitting oversized chunks as needed. ok is
// false when the child is exhausted.
func (e *exchangeOp) nextItem(ctx *Context) (exItem, bool, error) {
	for len(e.pending) == 0 {
		chunk, err := e.child.Next(ctx)
		if err != nil {
			return exItem{}, false, err
		}
		if chunk == nil {
			return exItem{}, false, nil
		}
		e.pending = e.splitChunk(chunk, e.seq)
		e.seq += len(e.pending)
	}
	it := e.pending[0]
	e.pending = e.pending[1:]
	return it, true, nil
}

// splitChunk turns one child chunk into work items. Engine-sized chunks
// pass through whole; an oversized chunk — only pipeline breakers emit
// them, e.g. the window operator's one-chunk-per-partition stream — is
// re-split into ChunkCapacity-aligned slices capped at 4 per worker, so
// a single huge partition spreads across the pool instead of pinning
// one worker while the rest idle. Slices share the chunk; tasks
// evaluate their own row range (sliceStage) or copy it out. Alignment
// to ChunkCapacity keeps the re-assembled output's chunk boundaries
// exactly those of the unsplit evaluation. Splitting is ordered-mode
// only: slices must reassemble by seq.
func (e *exchangeOp) splitChunk(chunk *vector.Chunk, seq int) []exItem {
	n := chunk.Len()
	if !e.ordered || n <= vector.ChunkCapacity {
		return []exItem{{seq: seq, chunk: chunk, lo: 0, hi: n}}
	}
	if ss, ok := e.probe.(sliceStage); ok && !ss.wantSlices(n) {
		return []exItem{{seq: seq, chunk: chunk, lo: 0, hi: n}}
	}
	units := (n + vector.ChunkCapacity - 1) / vector.ChunkCapacity
	if max := e.workers * 4; units > max {
		units = max
	}
	size := (n + units - 1) / units
	size = (size + vector.ChunkCapacity - 1) / vector.ChunkCapacity * vector.ChunkCapacity
	items := make([]exItem, 0, units)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		items = append(items, exItem{seq: seq, chunk: chunk, lo: lo, hi: hi})
		seq++
	}
	return items
}

// sliceStage is a stage that can evaluate a row range of a chunk
// in-place — the window eval stage computes rows [lo, hi) of a
// partition without copying it. Stages without it get a copied
// sub-chunk instead. wantSlices lets the stage veto splitting when
// range evaluation cannot win: a growing-frame window re-folds its
// whole prefix per slice (the fold is inherently serial), so slicing
// those would burn CPU for no wall-clock gain.
type sliceStage interface {
	stage
	wantSlices(n int) bool
	runSlice(ctx *Context, c *vector.Chunk, lo, hi int, emit func(*vector.Chunk) error) error
}

// runItem threads one work item through the stages. Whole chunks take
// the plain path; slices go to the first stage's native range support
// when it has one, else the rows are copied out first.
func runItem(ctx *Context, stages []stage, it exItem, sink func(*vector.Chunk) error) error {
	if it.lo == 0 && it.hi == it.chunk.Len() {
		return runStages(ctx, stages, it.chunk, sink)
	}
	if len(stages) > 0 {
		if ss, ok := stages[0].(sliceStage); ok {
			rest := stages[1:]
			return ss.runSlice(ctx, it.chunk, it.lo, it.hi, func(out *vector.Chunk) error {
				return runStages(ctx, rest, out, sink)
			})
		}
	}
	sub := vector.NewChunk(it.chunk.Types())
	for ci, col := range sub.Cols {
		col.AppendRange(it.chunk.Cols[ci], it.lo, it.hi-it.lo)
	}
	sub.SetLen(it.hi - it.lo)
	return runStages(ctx, stages, sub, sink)
}

// Next drives the exchange: it feeds the child's chunks to the
// scheduler while the ticket window has room, then reassembles the
// results. In ordered mode out-of-order results wait in a reorder
// buffer bounded by the window tickets: at most cap(window) chunks are
// in flight between feed and emission.
func (e *exchangeOp) Next(ctx *Context) (*vector.Chunk, error) {
	if e.failed != nil {
		return nil, e.failed
	}
	if !e.started {
		e.start(ctx)
	}
	for {
		if out, ok := e.buf.pop(); ok {
			return out, nil
		}
		if e.ordered && e.buf.advance() {
			continue
		}
		if !e.childDone && e.buf.tryAcquire() {
			it, ok, err := e.nextItem(ctx)
			if err != nil {
				e.buf.release()
				e.failed = err
				return nil, err
			}
			if !ok {
				e.buf.release()
				e.childDone = true
				continue
			}
			e.submit(ctx, it)
			continue
		}
		if e.inflight > 0 {
			res := <-e.results
			e.inflight--
			if res.err != nil {
				e.failed = res.err
				return nil, res.err
			}
			if e.ordered {
				e.buf.park(res.seq, res.chunks)
			} else {
				e.buf.enqueue(res.chunks)
			}
			continue
		}
		// Nothing in flight and either the child is done or the window
		// is exhausted by parked sequences; a remaining gap can only be
		// a seq abandoned by an error path.
		if e.ordered && e.buf.parked() > 0 {
			e.buf.skip()
			continue
		}
		return nil, nil
	}
}

// Close drains outstanding tasks and closes the child. Queued tasks
// observe the cancel flag and post empty results immediately; every
// submitted item posts exactly one result, so the drain terminates.
func (e *exchangeOp) Close(ctx *Context) {
	e.closeOnce.Do(func() {
		if e.started {
			e.cancelled.Store(true)
			for e.inflight > 0 {
				<-e.results
				e.inflight--
			}
		}
		if e.buf != nil {
			e.buf.drop()
		}
		e.child.Close(ctx)
	})
}

// buildExchange recognizes a Filter/Project chain sitting on top of a
// pipeline breaker (sort, aggregate, UNION ALL) and compiles it into an
// exchange: the breaker is built normally (possibly itself parallel) and
// the chain's stages run on the exchange's worker pool instead of
// single-threaded operators. The ordered merge keeps output identical to
// the sequential chain. Returns ok=false when the shape does not match.
func buildExchange(node plan.Node, threads int, prof *Profiler) (Operator, bool, error) {
	var stages []stageFactory
	cur := node
peel:
	for {
		switch n := cur.(type) {
		case *plan.FilterNode:
			cond := n.Cond
			stages = append(stages, profFactory(prof.Slot(n),
				func() stage { return &filterStage{cond: cond} }))
			cur = n.Child
		case *plan.ProjectNode:
			exprs := n.Exprs
			stages = append(stages, profFactory(prof.Slot(n),
				func() stage { return &projectStage{exprs: exprs} }))
			cur = n.Child
		default:
			break peel
		}
	}
	if len(stages) == 0 {
		return nil, false, nil
	}
	switch cur.(type) {
	case *plan.SortNode, *plan.AggNode, *plan.UnionAllNode, *plan.WindowNode:
	default:
		return nil, false, nil
	}
	base, err := build(cur, threads, prof)
	if err != nil {
		return nil, true, err
	}
	// Stages were collected top-down; the exchange applies them in child
	// → parent order.
	for i, j := 0, len(stages)-1; i < j; i, j = i+1, j-1 {
		stages[i], stages[j] = stages[j], stages[i]
	}
	// The top node's stage already counts rows; the wrapper adds wall
	// time at the exchange boundary.
	return prof.wrap(newExchangeOp(base, stages, true), node, false), true, nil
}
