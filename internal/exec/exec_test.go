package exec

import (
	"errors"
	"testing"

	"repro/internal/buffer"
	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/table"
	"repro/internal/txn"
	"repro/internal/types"
	"repro/internal/vector"
)

func valuesNode(vals ...int64) *plan.ValuesNode {
	n := &plan.ValuesNode{Cols: []plan.ColInfo{{Name: "v", Type: types.BigInt}}}
	for _, v := range vals {
		n.Rows = append(n.Rows, []types.Value{types.NewBigInt(v)})
	}
	return n
}

func collectInts(t *testing.T, ctx *Context, op Operator) []int64 {
	t.Helper()
	chunks, err := Collect(ctx, op)
	if err != nil {
		t.Fatal(err)
	}
	var out []int64
	for _, c := range chunks {
		for r := 0; r < c.Len(); r++ {
			out = append(out, c.Cols[0].I64[r])
		}
	}
	return out
}

func testCtx() *Context {
	return &Context{Txn: txn.NewManager(nil).Begin(), TmpDir: ""}
}

func TestValuesAndLimit(t *testing.T) {
	node := &plan.LimitNode{Child: valuesNode(1, 2, 3, 4, 5), Limit: 2, Offset: 1}
	op, err := Build(node)
	if err != nil {
		t.Fatal(err)
	}
	got := collectInts(t, testCtx(), op)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("limit/offset: %v", got)
	}
}

func TestUnionOperator(t *testing.T) {
	node := &plan.UnionAllNode{Inputs: []plan.Node{valuesNode(1), valuesNode(2, 3)}}
	op, err := Build(node)
	if err != nil {
		t.Fatal(err)
	}
	got := collectInts(t, testCtx(), op)
	if len(got) != 3 {
		t.Fatalf("union: %v", got)
	}
}

func TestFilterOperator(t *testing.T) {
	cond := &expr.Compare{Op: expr.CmpGt,
		L: &expr.ColRef{Idx: 0, Typ: types.BigInt},
		R: &expr.Const{Val: types.NewBigInt(2)}}
	node := &plan.FilterNode{Child: valuesNode(1, 2, 3, 4), Cond: cond}
	op, err := Build(node)
	if err != nil {
		t.Fatal(err)
	}
	got := collectInts(t, testCtx(), op)
	if len(got) != 2 || got[0] != 3 {
		t.Fatalf("filter: %v", got)
	}
}

// buildJoinFixture creates two single-column tables joined on v: the
// left holds values 1..leftN, the right 1..rightN, so the join yields
// min(leftN, rightN) rows.
func buildJoinFixture(t *testing.T, leftN, rightN int) (*plan.JoinNode, *txn.Manager) {
	t.Helper()
	mgr := txn.NewManager(nil)
	mk := func(name string, n int) *catalog.Table {
		entry := &catalog.Table{Name: name, Columns: []catalog.Column{{Name: "v", Type: types.BigInt}}}
		entry.Data = table.New(entry.Types(), nil)
		tx := mgr.Begin()
		c := vector.NewChunk(entry.Types())
		for v := 1; v <= n; v++ {
			c.AppendRow(types.NewBigInt(int64(v)))
			if c.Len() == vector.ChunkCapacity {
				if err := entry.Data.Append(tx, c); err != nil {
					t.Fatal(err)
				}
				c = vector.NewChunk(entry.Types())
			}
		}
		if err := entry.Data.Append(tx, c); err != nil {
			t.Fatal(err)
		}
		if _, err := mgr.Commit(tx); err != nil {
			t.Fatal(err)
		}
		return entry
	}
	left := mk("l", leftN)
	right := mk("r", rightN)
	join := &plan.JoinNode{
		Left:      &plan.ScanNode{Table: left, TableAlias: "l", Columns: []int{0}},
		Right:     &plan.ScanNode{Table: right, TableAlias: "r", Columns: []int{0}},
		Type:      plan.JoinInner,
		LeftKeys:  []expr.Expr{&expr.ColRef{Idx: 0, Typ: types.BigInt}},
		RightKeys: []expr.Expr{&expr.ColRef{Idx: 0, Typ: types.BigInt}},
	}
	return join, mgr
}

func countRows(chunks []*vector.Chunk) int {
	rows := 0
	for _, c := range chunks {
		rows += c.Len()
	}
	return rows
}

func TestHashAndMergeJoinAgree(t *testing.T) {
	for _, strategy := range []JoinStrategy{JoinForceHash, JoinForceMerge} {
		join, mgr := buildJoinFixture(t, 3000, 2000)
		op, err := Build(join)
		if err != nil {
			t.Fatal(err)
		}
		ctx := &Context{Txn: mgr.Begin(), JoinStrategy: strategy, TmpDir: t.TempDir()}
		chunks, err := Collect(ctx, op)
		if err != nil {
			t.Fatalf("strategy %v: %v", strategy, err)
		}
		if rows := countRows(chunks); rows != 2000 {
			t.Fatalf("strategy %v: %d rows, want 2000", strategy, rows)
		}
	}
}

func TestAutoJoinFallsBackUnderMemoryPressure(t *testing.T) {
	// The 50k-row build needs ~2MB with the hash table; a 128KB limit
	// forces the merge fallback, whose sorted runs spill to disk.
	pool := buffer.NewPool(128<<10, nil)
	join, mgr := buildJoinFixture(t, 10, 50_000)
	op, err := Build(join)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &Context{Txn: mgr.Begin(), Pool: pool, JoinStrategy: JoinAuto, TmpDir: t.TempDir()}
	chunks, err := Collect(ctx, op)
	if err != nil {
		t.Fatalf("auto join under pressure: %v", err)
	}
	if rows := countRows(chunks); rows != 10 {
		t.Fatalf("fallback join returned %d rows, want 10", rows)
	}
	if pool.Used() != 0 {
		t.Fatalf("pool leak after fallback: %d", pool.Used())
	}
}

func TestLeftJoinUnderHardLimitErrors(t *testing.T) {
	// LEFT joins have no out-of-core fallback; under a hard limit the
	// budget violation must surface instead of silently overcommitting.
	pool := buffer.NewPool(64<<10, nil)
	join, mgr := buildJoinFixture(t, 10, 50_000)
	join.Type = plan.JoinLeft
	op, err := Build(join)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &Context{Txn: mgr.Begin(), Pool: pool, JoinStrategy: JoinAuto, TmpDir: t.TempDir()}
	_, err = Collect(ctx, op)
	if err == nil || !errors.Is(err, buffer.ErrOutOfMemory) {
		t.Fatalf("LEFT join under hard limit: %v", err)
	}
}

func TestEncodeKeyRowDistinguishesNulls(t *testing.T) {
	v := vector.NewLen(types.BigInt, 2)
	v.I64[0] = 0
	v.SetNull(1)
	k0 := string(encodeKeyRow(nil, []*vector.Vector{v}, 0))
	k1 := string(encodeKeyRow(nil, []*vector.Vector{v}, 1))
	if k0 == k1 {
		t.Fatal("NULL and zero encode equally")
	}
}
