package exec

import (
	"sort"

	"repro/internal/plan"
	"repro/internal/types"
)

// rowWindow evaluates a WindowNode tuple-at-a-time for the E6 ablation
// baseline: rows are materialized, stable-sorted by (partition keys,
// order keys) — insertion order is the hidden tiebreak, exactly the
// vectorized engine's (partition, order, position) total order — cut
// into partitions, and every function is computed with boxed per-row
// accumulation. Frame semantics are shared with the vectorized engine
// through frameBoundsFn, and DOUBLE aggregates fold left-to-right in
// partition order, so the output matches the chunked executors
// bit-for-bit, row order included.
type rowWindow struct {
	child RowIterator
	node  *plan.WindowNode

	out   [][]types.Value
	pos   int
	built bool
}

func (w *rowWindow) Open(ctx *Context) error {
	w.out, w.pos, w.built = nil, 0, false
	return w.child.Open(ctx)
}

func (w *rowWindow) NextRow(ctx *Context) ([]types.Value, error) {
	if !w.built {
		if err := w.build(ctx); err != nil {
			return nil, err
		}
		w.built = true
	}
	if w.pos >= len(w.out) {
		return nil, nil
	}
	row := w.out[w.pos]
	w.pos++
	return row, nil
}

func (w *rowWindow) Close(ctx *Context) {
	w.out = nil
	w.child.Close(ctx)
}

// cmpKeyVal orders two key values under (desc, nullsFirst); NULLs group
// per the flag independent of direction, like extsort.CompareRows.
func cmpKeyVal(a, b types.Value, desc, nullsFirst bool) int {
	if a.Null || b.Null {
		switch {
		case a.Null && b.Null:
			return 0
		case a.Null == nullsFirst:
			return -1
		default:
			return 1
		}
	}
	c := types.Compare(a, b)
	if desc {
		return -c
	}
	return c
}

func (w *rowWindow) build(ctx *Context) error {
	var rows [][]types.Value
	var pks, oks [][]types.Value
	for {
		row, err := w.child.NextRow(ctx)
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		pk := make([]types.Value, len(w.node.PartitionBy))
		for i, e := range w.node.PartitionBy {
			v, err := EvalRow(e, row)
			if err != nil {
				return err
			}
			pk[i] = v
		}
		ok := make([]types.Value, len(w.node.OrderBy))
		for i, k := range w.node.OrderBy {
			v, err := EvalRow(k.Expr, row)
			if err != nil {
				return err
			}
			ok[i] = v
		}
		rows = append(rows, row)
		pks = append(pks, pk)
		oks = append(oks, ok)
	}

	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	cmp := func(a, b int) int {
		for k := range w.node.PartitionBy {
			if c := cmpKeyVal(pks[a][k], pks[b][k], false, true); c != 0 {
				return c
			}
		}
		for k, key := range w.node.OrderBy {
			if c := cmpKeyVal(oks[a][k], oks[b][k], key.Desc, key.NullsFirst); c != 0 {
				return c
			}
		}
		return 0
	}
	sort.SliceStable(idx, func(i, j int) bool { return cmp(idx[i], idx[j]) < 0 })

	samePart := func(a, b int) bool {
		for k := range w.node.PartitionBy {
			va, vb := pks[a][k], pks[b][k]
			if va.Null != vb.Null || (!va.Null && types.Compare(va, vb) != 0) {
				return false
			}
		}
		return true
	}
	for start := 0; start < len(idx); {
		end := start + 1
		for end < len(idx) && samePart(idx[start], idx[end]) {
			end++
		}
		if err := w.evalPartition(rows, oks, idx[start:end]); err != nil {
			return err
		}
		start = end
	}
	return nil
}

// evalPartition appends the partition's output rows (payload plus one
// value per function) in sorted order.
func (w *rowWindow) evalPartition(rows, oks [][]types.Value, part []int) error {
	n := len(part)
	samePeer := func(a, b int) bool {
		for k := range w.node.OrderBy {
			va, vb := oks[a][k], oks[b][k]
			if va.Null != vb.Null || (!va.Null && types.Compare(va, vb) != 0) {
				return false
			}
		}
		return true
	}
	peerStart := make([]int, n)
	peerEnd := make([]int, n)
	dense := make([]int64, n)
	gs, rk := 0, int64(1)
	for i := 0; i < n; i++ {
		if i > 0 && !samePeer(part[i-1], part[i]) {
			for k := gs; k < i; k++ {
				peerEnd[k] = i - 1
			}
			gs = i
			rk++
		}
		peerStart[i] = gs
		dense[i] = rk
	}
	for k := gs; k < n; k++ {
		peerEnd[k] = n - 1
	}

	cols := make([][]types.Value, len(w.node.Funcs))
	for j, f := range w.node.Funcs {
		var args []types.Value
		if f.Arg != nil {
			args = make([]types.Value, n)
			for i, r := range part {
				v, err := EvalRow(f.Arg, rows[r])
				if err != nil {
					return err
				}
				args[i] = v
			}
		}
		out := make([]types.Value, n)
		switch f.Func {
		case "row_number":
			for i := 0; i < n; i++ {
				out[i] = types.NewBigInt(int64(i) + 1)
			}
		case "rank":
			for i := 0; i < n; i++ {
				out[i] = types.NewBigInt(int64(peerStart[i]) + 1)
			}
		case "dense_rank":
			for i := 0; i < n; i++ {
				out[i] = types.NewBigInt(dense[i])
			}
		case "lag", "lead":
			off := int(f.Offset)
			if f.Func == "lag" {
				off = -off
			}
			for i := 0; i < n; i++ {
				j := i + off
				switch {
				case j < 0 || j >= n:
					out[i] = f.Default
				case args[j].Null:
					out[i] = types.NewNull(f.Type)
				default:
					out[i] = args[j]
				}
			}
		default: // count, sum, avg, min, max
			bounds, _ := frameBoundsFn(w.node.Frame, n, peerStart, peerEnd, len(w.node.OrderBy) > 0)
			for i := 0; i < n; i++ {
				lo, hi := bounds(i)
				if lo < 0 {
					lo = 0
				}
				if hi > n-1 {
					hi = n - 1
				}
				out[i] = rowFrameAgg(&w.node.Funcs[j], args, lo, hi)
			}
		}
		cols[j] = out
	}

	for i, r := range part {
		out := make([]types.Value, 0, len(rows[r])+len(cols))
		out = append(out, rows[r]...)
		for j := range cols {
			out = append(out, cols[j][i])
		}
		w.out = append(w.out, out)
	}
	return nil
}

// rowFrameAgg folds one frame [lo, hi] left-to-right over boxed values,
// mirroring frameAcc's semantics (NULLs skipped; empty frames yield
// NULL, count 0).
func rowFrameAgg(f *plan.WindowFunc, args []types.Value, lo, hi int) types.Value {
	var (
		count   int64
		sumI    int64
		sumF    float64
		best    types.Value
		bestSet bool
	)
	for r := lo; r <= hi; r++ {
		if args == nil { // count(*)
			count++
			continue
		}
		v := args[r]
		if v.Null {
			continue
		}
		count++
		switch f.Func {
		case "sum", "avg":
			switch v.Type {
			case types.Double:
				sumF += v.F64
			case types.Boolean:
				if v.Bool {
					sumI++
				}
			default:
				sumI += v.AsInt()
			}
		case "min", "max":
			if !bestSet {
				best, bestSet = v, true
				continue
			}
			c := types.Compare(v, best)
			if (f.Func == "max" && c > 0) || (f.Func == "min" && c < 0) {
				best = v
			}
		}
	}
	switch f.Func {
	case "count":
		return types.NewBigInt(count)
	case "sum":
		if count == 0 {
			return types.NewNull(f.Type)
		}
		if f.Type == types.Double {
			return types.NewDouble(sumF)
		}
		return types.NewBigInt(sumI)
	case "avg":
		if count == 0 {
			return types.NewNull(types.Double)
		}
		if f.Arg != nil && f.Arg.Type() == types.Double {
			return types.NewDouble(sumF / float64(count))
		}
		return types.NewDouble(float64(sumI) / float64(count))
	default: // min, max
		if !bestSet {
			return types.NewNull(f.Type)
		}
		return best
	}
}

var _ RowIterator = (*rowWindow)(nil)
