package exec

import (
	"fmt"
	"testing"

	"repro/internal/buffer"
	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/table"
	"repro/internal/txn"
	"repro/internal/types"
	"repro/internal/vector"
)

// buildFactTable appends n rows of (v BIGINT) with v = row index.
func buildFactTable(t *testing.T, mgr *txn.Manager, n int) *catalog.Table {
	t.Helper()
	entry := &catalog.Table{Name: "t", Columns: []catalog.Column{{Name: "v", Type: types.BigInt}}}
	entry.Data = table.New(entry.Types(), nil)
	tx := mgr.Begin()
	c := vector.NewChunk(entry.Types())
	for v := 0; v < n; v++ {
		c.AppendRow(types.NewBigInt(int64(v)))
		if c.Len() == vector.ChunkCapacity {
			if err := entry.Data.Append(tx, c); err != nil {
				t.Fatal(err)
			}
			c = vector.NewChunk(entry.Types())
		}
	}
	if c.Len() > 0 {
		if err := entry.Data.Append(tx, c); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := mgr.Commit(tx); err != nil {
		t.Fatal(err)
	}
	return entry
}

func collectAll(t *testing.T, ctx *Context, op Operator) []*vector.Chunk {
	t.Helper()
	chunks, err := Collect(ctx, op)
	if err != nil {
		t.Fatal(err)
	}
	return chunks
}

// TestParallelScanPreservesOrder: the ordered merge must reproduce the
// sequential chunk stream exactly for a filtered, projected scan.
func TestParallelScanPreservesOrder(t *testing.T) {
	mgr := txn.NewManager(nil)
	entry := buildFactTable(t, mgr, 20*int(vector.ChunkCapacity)+321)
	node := plan.Node(&plan.ProjectNode{
		Child: &plan.FilterNode{
			Child: &plan.ScanNode{Table: entry, Columns: []int{0}},
			Cond: &expr.Compare{Op: expr.CmpEq,
				L: &expr.Arith{Op: expr.OpMod, L: &expr.ColRef{Idx: 0, Typ: types.BigInt}, R: &expr.Const{Val: types.NewBigInt(3)}, Typ: types.BigInt},
				R: &expr.Const{Val: types.NewBigInt(0)}},
		},
		Exprs: []expr.Expr{&expr.Arith{Op: expr.OpMul, L: &expr.ColRef{Idx: 0, Typ: types.BigInt}, R: &expr.Const{Val: types.NewBigInt(2)}, Typ: types.BigInt}},
		Names: []string{"doubled"},
	})

	render := func(threads int) string {
		op, err := BuildParallel(node, threads)
		if err != nil {
			t.Fatal(err)
		}
		if threads > 1 {
			if _, ok := op.(*parScanOp); !ok {
				t.Fatalf("threads=%d built %T, want *parScanOp", threads, op)
			}
		}
		ctx := &Context{Txn: mgr.Begin(), Threads: threads}
		out := ""
		for _, c := range collectAll(t, ctx, op) {
			out += fmt.Sprint(c.Cols[0].I64[:c.Len()], "|")
		}
		return out
	}
	want := render(1)
	for _, threads := range []int{2, 3, 8} {
		if got := render(threads); got != want {
			t.Fatalf("threads=%d stream diverges:\n got: %.200s\nwant: %.200s", threads, got, want)
		}
	}
}

// TestParallelAggMatchesSequential: worker-local partial aggregates
// must merge to the sequential aggregate's exact output, including the
// first-seen group emission order.
func TestParallelAggMatchesSequential(t *testing.T) {
	mgr := txn.NewManager(nil)
	entry := buildFactTable(t, mgr, 50_000)
	mkNode := func() plan.Node {
		return &plan.AggNode{
			Child:   &plan.ScanNode{Table: entry, Columns: []int{0}},
			GroupBy: []expr.Expr{&expr.Arith{Op: expr.OpMod, L: &expr.ColRef{Idx: 0, Typ: types.BigInt}, R: &expr.Const{Val: types.NewBigInt(37)}, Typ: types.BigInt}},
			Names:   []string{"g"},
			Aggs: []plan.AggSpec{
				{Func: "count", Type: types.BigInt, Name: "n"},
				{Func: "sum", Arg: &expr.ColRef{Idx: 0, Typ: types.BigInt}, Type: types.BigInt, Name: "s"},
				{Func: "min", Arg: &expr.ColRef{Idx: 0, Typ: types.BigInt}, Type: types.BigInt, Name: "lo"},
				{Func: "max", Arg: &expr.ColRef{Idx: 0, Typ: types.BigInt}, Type: types.BigInt, Name: "hi"},
			},
		}
	}
	render := func(threads int) string {
		op, err := BuildParallel(mkNode(), threads)
		if err != nil {
			t.Fatal(err)
		}
		if threads > 1 {
			if _, ok := op.(*parAggOp); !ok {
				t.Fatalf("threads=%d built %T, want *parAggOp", threads, op)
			}
		}
		ctx := &Context{Txn: mgr.Begin(), Threads: threads}
		out := ""
		for _, c := range collectAll(t, ctx, op) {
			for r := 0; r < c.Len(); r++ {
				out += fmt.Sprint(c.Row(r), ";")
			}
		}
		return out
	}
	want := render(1)
	for _, threads := range []int{2, 4} {
		if got := render(threads); got != want {
			t.Fatalf("threads=%d agg diverges:\n got: %.200s\nwant: %.200s", threads, got, want)
		}
	}
}

// TestParallelScanEarlyClose: a limit above a parallel scan abandons
// the stream early; Close must cancel the workers without deadlocking.
func TestParallelScanEarlyClose(t *testing.T) {
	mgr := txn.NewManager(nil)
	entry := buildFactTable(t, mgr, 30_000)
	node := &plan.LimitNode{
		Child: &plan.ScanNode{Table: entry, Columns: []int{0}},
		Limit: 5,
	}
	op, err := BuildParallel(node, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &Context{Txn: mgr.Begin(), Threads: 4}
	chunks := collectAll(t, ctx, op)
	if rows := countRows(chunks); rows != 5 {
		t.Fatalf("limit over parallel scan: %d rows, want 5", rows)
	}
}

// TestParallelHashJoinMatchesSequential covers the partitioned build
// and the in-worker probe at several thread counts.
func TestParallelHashJoinMatchesSequential(t *testing.T) {
	join, mgr := buildJoinFixture(t, 9_000, 6_000)
	render := func(threads int) string {
		op, err := BuildParallel(join, threads)
		if err != nil {
			t.Fatal(err)
		}
		ctx := &Context{Txn: mgr.Begin(), Threads: threads, JoinStrategy: JoinForceHash}
		out := ""
		for _, c := range collectAll(t, ctx, op) {
			for r := 0; r < c.Len(); r++ {
				out += fmt.Sprint(c.Row(r), ";")
			}
		}
		return out
	}
	want := render(1)
	for _, threads := range []int{2, 4} {
		if got := render(threads); got != want {
			t.Fatalf("threads=%d join diverges", threads)
		}
	}
}

// TestParallelAutoJoinStillFallsBack: with a tight memory budget the
// Auto strategy must still degrade to the merge join even when both
// children are parallel pipelines.
func TestParallelAutoJoinStillFallsBack(t *testing.T) {
	pool := buffer.NewPool(128<<10, nil)
	join, mgr := buildJoinFixture(t, 10, 50_000)
	op, err := BuildParallel(join, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &Context{Txn: mgr.Begin(), Pool: pool, Threads: 4, JoinStrategy: JoinAuto, TmpDir: t.TempDir()}
	chunks, err := Collect(ctx, op)
	if err != nil {
		t.Fatal(err)
	}
	if rows := countRows(chunks); rows != 10 {
		t.Fatalf("fallback join: %d rows, want 10", rows)
	}
	// The abandoned hash join and the merge join must both have
	// returned their pool reservations.
	if used := pool.Used(); used != 0 {
		t.Fatalf("pool reservation leak after fallback: %d bytes still reserved", used)
	}
}
