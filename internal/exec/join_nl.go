package exec

import (
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/types"
	"repro/internal/vector"
)

// nlJoinOp is the nested-loop join used for CROSS joins and non-equi
// conditions. The right side is materialized; each left chunk is paired
// against every right row.
type nlJoinOp struct {
	left, right Operator
	node        *plan.JoinNode
	cond        expr.Expr

	rightChunks []*vector.Chunk
	outTypes    []types.Type
	nl, nr      int
	queue       []*vector.Chunk
	done        bool
}

func newNLJoin(left, right Operator, n *plan.JoinNode, cond expr.Expr) *nlJoinOp {
	return &nlJoinOp{left: left, right: right, node: n, cond: cond}
}

func (j *nlJoinOp) Open(ctx *Context) error {
	j.nl = len(j.node.Left.Schema())
	j.nr = len(j.node.Right.Schema())
	j.outTypes = schemaTypes(j.node.Schema())
	if err := openAndDrain(ctx, j.right, func(c *vector.Chunk) error {
		j.rightChunks = append(j.rightChunks, c)
		return nil
	}); err != nil {
		return err
	}
	return j.left.Open(ctx)
}

func (j *nlJoinOp) Next(ctx *Context) (*vector.Chunk, error) {
	for len(j.queue) == 0 {
		if j.done {
			return nil, nil
		}
		probe, err := j.left.Next(ctx)
		if err != nil {
			return nil, err
		}
		if probe == nil {
			j.done = true
			return nil, nil
		}
		if err := j.processProbe(probe); err != nil {
			return nil, err
		}
	}
	out := j.queue[0]
	j.queue = j.queue[1:]
	return out, nil
}

func (j *nlJoinOp) processProbe(probe *vector.Chunk) error {
	n := probe.Len()
	matched := make([]bool, n)
	cand := vector.NewChunk(j.outTypes)
	var candProbe []int

	flush := func() error {
		if cand.Len() == 0 {
			return nil
		}
		keep := cand
		probeRows := candProbe
		if j.cond != nil {
			mask, err := j.cond.Eval(cand)
			if err != nil {
				return err
			}
			sel := expr.SelectTrue(mask, nil)
			if len(sel) < cand.Len() {
				filtered := vector.NewChunk(j.outTypes)
				cand.CompactInto(filtered, sel)
				keep = filtered
				probeRows = make([]int, len(sel))
				for i, s := range sel {
					probeRows[i] = candProbe[s]
				}
			}
		}
		for _, pr := range probeRows {
			matched[pr] = true
		}
		if keep.Len() > 0 {
			j.queue = append(j.queue, keep)
		}
		cand = vector.NewChunk(j.outTypes)
		candProbe = nil
		return nil
	}

	for r := 0; r < n; r++ {
		for _, rc := range j.rightChunks {
			for br := 0; br < rc.Len(); br++ {
				row := cand.Len()
				cand.SetLen(row + 1)
				for c := 0; c < j.nl; c++ {
					if probe.Cols[c].IsNull(r) {
						cand.Cols[c].SetNull(row)
					} else {
						cand.Cols[c].Set(row, probe.Cols[c].Get(r))
					}
				}
				for c := 0; c < j.nr; c++ {
					if rc.Cols[c].IsNull(br) {
						cand.Cols[j.nl+c].SetNull(row)
					} else {
						cand.Cols[j.nl+c].Set(row, rc.Cols[c].Get(br))
					}
				}
				candProbe = append(candProbe, r)
				if cand.Len() == vector.ChunkCapacity {
					if err := flush(); err != nil {
						return err
					}
				}
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}

	if j.node.Type == plan.JoinLeft {
		outer := vector.NewChunk(j.outTypes)
		for r := 0; r < n; r++ {
			if matched[r] {
				continue
			}
			row := outer.Len()
			outer.SetLen(row + 1)
			for c := 0; c < j.nl; c++ {
				if probe.Cols[c].IsNull(r) {
					outer.Cols[c].SetNull(row)
				} else {
					outer.Cols[c].Set(row, probe.Cols[c].Get(r))
				}
			}
			for c := 0; c < j.nr; c++ {
				outer.Cols[j.nl+c].SetNull(row)
			}
			if outer.Len() == vector.ChunkCapacity {
				j.queue = append(j.queue, outer)
				outer = vector.NewChunk(j.outTypes)
			}
		}
		if outer.Len() > 0 {
			j.queue = append(j.queue, outer)
		}
	}
	return nil
}

func (j *nlJoinOp) Close(ctx *Context) {
	j.rightChunks = nil
	j.left.Close(ctx)
	j.right.Close(ctx)
}
