// Package exec is QuackDB's vectorized "Vector Volcano" execution engine
// (paper §6): pull-based physical operators exchanging 1024-row chunks
// of column slices. Query execution commences by pulling the first chunk
// from the root operator, which recursively pulls from its children down
// to the table scans. The client application itself acts as the true
// root: it polls the engine for chunks, which are handed over without
// copying (§5).
//
// # Morsel-driven parallelism
//
// An embedded engine must use all of the host's hardware (§6), so plans
// are decomposed into pipelines: maximal scan→filter→project chains
// terminated by pipeline breakers (hash aggregate and hash join builds,
// sorts, the result sink). A parallelizable pipeline runs on a worker
// pool; workers draw table segments ("morsels") from a shared atomic
// counter, keeping every core busy without up-front range partitioning.
// Operator state is thread-local — each worker owns partial aggregate
// hash tables and partitioned join-build tables — and is merged once at
// the pipeline breaker. Streaming pipelines reassemble their output in
// morsel order, and breaker merges order groups by first appearance and
// join matches by build position, so a parallel plan returns chunks in
// exactly the order the single-threaded engine would (Context.Threads
// = 1 is the always-available correctness baseline). Plan shapes outside
// the pipeline whitelist simply fall back to the sequential operators.
//
// The package also houses the join-strategy decision the paper's
// cooperation section describes (§4): an equi-join prefers an in-memory
// hash join, but when the build side does not fit the buffer pool's
// budget it degrades to an out-of-core merge join — fewer resident
// bytes, more CPU and disk IO.
package exec

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/buffer"
	"repro/internal/plan"
	"repro/internal/sched"
	"repro/internal/txn"
	"repro/internal/types"
	"repro/internal/vector"
)

// JoinStrategy selects the physical equi-join implementation.
type JoinStrategy int

// Join strategies. Auto asks the buffer pool whether the estimated build
// side fits and falls back to merge join when it does not.
const (
	JoinAuto JoinStrategy = iota
	JoinForceHash
	JoinForceMerge
)

// Logger receives the logical change records the engine queues into the
// transaction's WAL buffer. The core layer implements it with the real
// WAL encoding; tests may pass nil (no logging).
type Logger interface {
	LogInsert(tx *txn.Transaction, table string, chunk *vector.Chunk)
	LogUpdate(tx *txn.Transaction, table string, col int, rowIDs []int64, vals *vector.Vector)
	LogDelete(tx *txn.Transaction, table string, rowIDs []int64)
}

// Stats aggregates engine-level execution counters. One instance lives
// for the lifetime of a database and is shared by every query context;
// the core layer surfaces the counters through PRAGMAs.
type Stats struct {
	// AggSpillPartitions counts aggregation partition-spill events: a
	// hash-aggregation partition whose accumulator states were written
	// to a sorted state run because the memory budget was exceeded.
	AggSpillPartitions atomic.Int64
	// AggSpilledBytes totals the bytes written to aggregation state
	// runs.
	AggSpilledBytes atomic.Int64
	// SegmentsScanned counts table-scan segments that were materialized;
	// SegmentsSkipped counts segments refuted by zone maps (or their
	// compressed payloads) without being touched.
	SegmentsScanned atomic.Int64
	SegmentsSkipped atomic.Int64
	// SegmentsEncodedExec counts scanned segments whose pushed filters
	// executed directly over the compressed payloads (also counted in
	// SegmentsScanned); RowsEncodedSelected totals the rows those
	// segments selected and gathered instead of decoding fully.
	SegmentsEncodedExec atomic.Int64
	RowsEncodedSelected atomic.Int64
	// SortSpilledBytes totals the bytes external sorts (ORDER BY, window
	// sorts) wrote to spill runs under a memory budget.
	SortSpilledBytes atomic.Int64
}

// Context carries per-query execution state.
type Context struct {
	Txn    *txn.Transaction
	Pool   *buffer.Pool
	Logger Logger
	TmpDir string
	// Stats receives engine-level counters when set (database-shared).
	Stats *Stats
	// JoinStrategy overrides the adaptive join choice (experiments).
	JoinStrategy JoinStrategy
	// DisableZoneMaps turns off zone-map segment skipping (the
	// differential baseline: results must be byte-identical either way).
	DisableZoneMaps bool
	// DisableEncodedExec turns off encoded execution: predicates over
	// still-compressed segments with late materialization. Same
	// differential contract as DisableZoneMaps. Encoded execution rides
	// on the pushed zone filters, so disabling zone maps disables it too.
	DisableEncodedExec bool
	// SortBudget caps the in-memory footprint of sorts; <=0 derives it
	// from the pool limit.
	SortBudget int64
	// Threads sizes the worker state of parallel pipelines (morsel
	// scanners, partial tables, merge ranges); <=1 runs every operator
	// single-threaded. It must match the value the plan was built with
	// (BuildParallel). Execution itself runs on Sched's engine-wide
	// pool, so Threads bounds a query's task width, not its goroutines.
	Threads int
	// Sched is the engine-wide worker pool shared by every session of a
	// database. nil falls back to a process-global default pool sized at
	// GOMAXPROCS (bare test contexts).
	Sched *sched.Scheduler
	// Query is this query's scheduler account (fair share + priority).
	// Lazily created on first use; the core layer pre-creates it with
	// the session's PRAGMA priority.
	Query *sched.Query
	// Priority seeds the lazily created Query (0 = default weight).
	Priority int
	// Prof, when non-nil, collects this query's per-operator profile
	// (EXPLAIN ANALYZE / PRAGMA profiling). The tree must have been
	// built with BuildParallelProfiled using the same Profiler. nil is
	// the off state: no hooks fire, nothing allocates.
	Prof *Profiler
	// QStats, when non-nil, receives the per-query roll-ups the
	// slow-query log reports.
	QStats *QueryStats
}

var (
	defSchedOnce sync.Once
	defSched     *sched.Scheduler
)

// defaultSched is the process-global pool used by contexts without an
// engine (direct exec tests). Sized at GOMAXPROCS like core.Open.
func defaultSched() *sched.Scheduler {
	defSchedOnce.Do(func() { defSched = sched.New(runtime.GOMAXPROCS(0)) })
	return defSched
}

// queryTasks returns the query's scheduling account, creating it on the
// session goroutine at first use. Operators capture the result at start
// time and submit all their steps through it.
func (c *Context) queryTasks() *sched.Query {
	if c.Query == nil {
		s := c.Sched
		if s == nil {
			s = defaultSched()
		}
		c.Query = s.NewQuery(c.Priority)
	}
	return c.Query
}

func (c *Context) sortBudget() int64 {
	if c.SortBudget > 0 {
		return c.SortBudget
	}
	if c.Pool != nil {
		if l := c.Pool.Limit(); l > 0 {
			return l / 2
		}
	}
	return 0 // unlimited, no spill
}

// Operator is a pull-based physical operator.
type Operator interface {
	// Open prepares the operator (and its children) for execution.
	Open(ctx *Context) error
	// Next returns the next chunk, or nil when exhausted.
	Next(ctx *Context) (*vector.Chunk, error)
	// Close releases resources. Idempotent.
	Close(ctx *Context)
}

// Build translates a logical plan into a single-threaded physical
// operator tree.
func Build(node plan.Node) (Operator, error) { return build(node, 1, nil) }

// BuildParallel translates a logical plan into a physical operator tree
// whose parallelizable pipelines run on worker pools of the given size.
// The returned tree must be executed with a Context whose Threads field
// carries the same value. threads <= 1 is identical to Build.
func BuildParallel(node plan.Node, threads int) (Operator, error) {
	return build(node, threads, nil)
}

// BuildParallelProfiled is BuildParallel with profiling hooks compiled
// into the tree: operators are wrapped with their plan node's profile
// slot and pipeline stages count rows per node. prof must come from
// NewProfiler over the same (optimized) plan, and the executing Context
// must carry it in Prof. A nil prof is identical to BuildParallel.
func BuildParallelProfiled(node plan.Node, threads int, prof *Profiler) (Operator, error) {
	return build(node, threads, prof)
}

// HasAggregate reports whether the plan contains a hash aggregation.
// EXPLAIN uses it to note that an enforced memory_limit makes the
// operator spill partition-wise state runs instead of degrading (the
// pre-spill engine pinned budgeted parallel aggregation to one worker).
func HasAggregate(node plan.Node) bool {
	if _, ok := node.(*plan.AggNode); ok {
		return true
	}
	for _, c := range node.Children() {
		if HasAggregate(c) {
			return true
		}
	}
	return false
}

func build(node plan.Node, threads int, prof *Profiler) (Operator, error) {
	if threads > 1 {
		// A maximal scan→filter→project chain becomes one morsel-driven
		// parallel pipeline streaming into whatever sits above it. The
		// pipeline operator is never wrapped: its per-node row counts
		// come from stage hooks and the morsel claim site, and parents
		// (the hash join) type-assert on *parScanOp to attach stages.
		if spec := compilePipeline(node, prof); spec != nil {
			return newParScanOp(spec), nil
		}
		// A hash aggregate directly over such a chain breaks the
		// pipeline with worker-local partial aggregation instead.
		// DISTINCT aggregates participate: their per-worker value sets
		// merge by set union.
		if n, ok := node.(*plan.AggNode); ok {
			if spec := compilePipeline(n.Child, prof); spec != nil {
				return prof.wrap(newParAggOp(spec, n), n, true), nil
			}
		}
		// A sort over such a chain builds per-worker sorted runs and
		// k-way merges them at the breaker.
		if n, ok := node.(*plan.SortNode); ok {
			if spec := compilePipeline(n.Child, prof); spec != nil {
				return prof.wrap(newParSortOp(spec, n), n, true), nil
			}
		}
		// A window over such a chain sorts per worker too, and evaluates
		// its partitions on an exchange pool.
		if n, ok := node.(*plan.WindowNode); ok {
			if spec := compilePipeline(n.Child, prof); spec != nil {
				return prof.wrap(newParWindowOp(spec, n), n, true), nil
			}
		}
		// Filter/project chains stranded above a breaker (HAVING over an
		// aggregate, the projection stripping hidden sort columns, ...)
		// run on an exchange instead of single-threaded operators.
		if op, ok, err := buildExchange(node, threads, prof); ok {
			return op, err
		}
	}
	switch n := node.(type) {
	case *plan.ScanNode:
		return prof.wrap(newScanOp(n), n, true), nil
	case *plan.FilterNode:
		child, err := build(n.Child, threads, prof)
		if err != nil {
			return nil, err
		}
		return prof.wrap(&filterOp{child: child, cond: n.Cond}, n, true), nil
	case *plan.ProjectNode:
		child, err := build(n.Child, threads, prof)
		if err != nil {
			return nil, err
		}
		return prof.wrap(&projectOp{child: child, exprs: n.Exprs, types: schemaTypes(n.Schema())}, n, true), nil
	case *plan.JoinNode:
		left, err := build(n.Left, threads, prof)
		if err != nil {
			return nil, err
		}
		right, err := build(n.Right, threads, prof)
		if err != nil {
			return nil, err
		}
		if len(n.LeftKeys) == 0 {
			if n.Type == plan.JoinCross && n.Extra == nil {
				return prof.wrap(newNLJoin(left, right, n, nil), n, true), nil
			}
			return prof.wrap(newNLJoin(left, right, n, n.Extra), n, true), nil
		}
		return prof.wrap(newEquiJoin(left, right, n), n, true), nil
	case *plan.AggNode:
		child, err := build(n.Child, threads, prof)
		if err != nil {
			return nil, err
		}
		return prof.wrap(newAggOp(child, n), n, true), nil
	case *plan.SortNode:
		child, err := build(n.Child, threads, prof)
		if err != nil {
			return nil, err
		}
		return prof.wrap(newSortOp(child, n), n, true), nil
	case *plan.WindowNode:
		child, err := build(n.Child, threads, prof)
		if err != nil {
			return nil, err
		}
		return prof.wrap(newWindowOp(child, n), n, true), nil
	case *plan.LimitNode:
		child, err := build(n.Child, threads, prof)
		if err != nil {
			return nil, err
		}
		return prof.wrap(&limitOp{child: child, limit: n.Limit, offset: n.Offset}, n, true), nil
	case *plan.UnionAllNode:
		ops := make([]Operator, len(n.Inputs))
		for i, in := range n.Inputs {
			op, err := build(in, threads, prof)
			if err != nil {
				return nil, err
			}
			ops[i] = op
		}
		return prof.wrap(&unionOp{inputs: ops}, n, true), nil
	case *plan.ValuesNode:
		return prof.wrap(&valuesOp{node: n}, n, true), nil
	case *plan.InsertNode:
		// DML input scans run parallel like any query: the morsel source
		// snapshots the segment list at open, so an INSERT ... SELECT
		// reading its own target inserts exactly the pre-existing rows,
		// and the ordered merge keeps the consumed row order identical to
		// the sequential plan. The write itself stays on the consumer.
		child, err := build(n.Child, threads, prof)
		if err != nil {
			return nil, err
		}
		return prof.wrap(&insertOp{child: child, table: n.Table}, n, true), nil
	case *plan.UpdateNode:
		// UPDATE/DELETE materialize every row id before touching the
		// table (Halloween protection), so their filter scans can fan
		// out across workers too.
		child, err := build(n.Child, threads, prof)
		if err != nil {
			return nil, err
		}
		return prof.wrap(&updateOp{child: child, node: n}, n, true), nil
	case *plan.DeleteNode:
		child, err := build(n.Child, threads, prof)
		if err != nil {
			return nil, err
		}
		return prof.wrap(&deleteOp{child: child, table: n.Table}, n, true), nil
	default:
		return nil, fmt.Errorf("exec: no operator for %T", node)
	}
}

// Run drains an operator tree, invoking sink for every chunk. It opens
// and closes the tree.
func Run(ctx *Context, op Operator, sink func(*vector.Chunk) error) error {
	if err := op.Open(ctx); err != nil {
		op.Close(ctx)
		return err
	}
	defer op.Close(ctx)
	for {
		chunk, err := op.Next(ctx)
		if err != nil {
			return err
		}
		if chunk == nil {
			return nil
		}
		if sink != nil {
			if err := sink(chunk); err != nil {
				return err
			}
		}
	}
}

// Collect drains an operator tree into a slice of chunks.
func Collect(ctx *Context, op Operator) ([]*vector.Chunk, error) {
	var out []*vector.Chunk
	err := Run(ctx, op, func(c *vector.Chunk) error {
		out = append(out, c)
		return nil
	})
	return out, err
}

func schemaTypes(cols []plan.ColInfo) []types.Type {
	out := make([]types.Type, len(cols))
	for i, c := range cols {
		out[i] = c.Type
	}
	return out
}

// errStop is used internally to stop Run early (limit).
var errStop = errors.New("stop")
