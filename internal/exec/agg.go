package exec

import (
	"sort"

	"repro/internal/plan"
	"repro/internal/types"
	"repro/internal/vector"
)

// aggState is the accumulator for one group.
type aggState struct {
	groupKey []types.Value // materialized group column values
	accs     []accumulator
	// firstPos is the packed (morsel, row) position where the group was
	// first seen; emission orders the merged groups by it to reproduce
	// the single-threaded first-seen order.
	firstPos int64
	// touch is seq+1 of the last morsel that updated the group. A state
	// touched by the in-flight morsel is never spilled: spilling it would
	// split that morsel's DOUBLE subtotal across two partials and change
	// the reduction tree (see agg_spill.go).
	touch int64
	// accounted is the budget charged beyond the flat per-group estimate
	// (per-morsel DOUBLE subtotals, DISTINCT sets).
	accounted int64
}

// extraBytes estimates the state's accumulator growth beyond the flat
// per-group estimate.
func (st *aggState) extraBytes() int64 {
	var n int64
	for j := range st.accs {
		acc := &st.accs[j]
		n += int64(len(acc.subF))*16 + acc.distBytes
	}
	return n
}

// accumulator is one aggregate's running state.
//
// DOUBLE sums are morsel-wise two-level reductions: rows of one chunk
// accumulate into curF, which folds into sumF at chunk boundaries (or
// is retained per morsel by the parallel aggregate and folded in morsel
// order at the merge). Both engines therefore evaluate the exact same
// floating-point reduction tree, so results are bit-identical at every
// thread count despite FP addition being non-associative.
type accumulator struct {
	count     int64
	sumI      int64
	sumF      float64
	curF      float64     // in-progress per-chunk DOUBLE subtotal
	curMorsel int64       // 1 + seq of curF's chunk; 0 = no pending subtotal
	subF      []fsub      // retained per-morsel subtotals (parallel build only)
	best      types.Value // min/max
	bestSet   bool
	// distinct (non-nil for DISTINCT aggregates) holds the encoded set
	// of values seen; no scalar state accumulates until finish, which
	// folds the set in sorted-key order. That makes worker partials
	// mergeable by plain set union, and the fold order — hence the
	// DOUBLE reduction tree — deterministic at every thread count.
	// distBytes tracks the set's estimated footprint for the budget.
	distinct  map[string]struct{}
	distBytes int64
}

// fsub is one morsel's DOUBLE subtotal.
type fsub struct {
	seq int64
	sum float64
}

// addF accumulates a DOUBLE value seen in chunk seq.
func (a *accumulator) addF(v float64, seq int64, retain bool) {
	if a.curMorsel != seq+1 {
		a.flushF(retain)
		a.curMorsel = seq + 1
	}
	a.curF += v
}

// flushF finishes the pending per-chunk subtotal: folding it into sumF
// (sequential, arrival order == morsel order) or retaining it for the
// ordered merge (parallel workers).
func (a *accumulator) flushF(retain bool) {
	if a.curMorsel == 0 {
		return
	}
	if retain {
		a.subF = append(a.subF, fsub{seq: a.curMorsel - 1, sum: a.curF})
	} else {
		a.sumF += a.curF
	}
	a.curF = 0
	a.curMorsel = 0
}

// foldSubF folds the retained per-morsel subtotals into sumF in morsel
// order, reproducing the sequential engine's reduction exactly.
func (a *accumulator) foldSubF() {
	if len(a.subF) == 0 {
		return
	}
	sort.Slice(a.subF, func(i, j int) bool { return a.subF[i].seq < a.subF[j].seq })
	for _, s := range a.subF {
		a.sumF += s.sum
	}
	a.subF = nil
}

// aggOp is the blocking hash aggregation operator. On the first Next it
// drains its child, accumulating into a partitioned hash table (see
// agg_spill.go: under an enforced memory budget the table spills
// partitions to sorted state runs instead of failing), then streams the
// merged groups in first-seen order. Accumulation is vectorized: group
// states are resolved for a whole chunk first, then each aggregate runs
// a tight typed loop over the chunk (the per-value switch is hoisted out
// of the row loop).
type aggOp struct {
	child Operator
	node  *plan.AggNode

	table *aggTable
	fin   *aggFinish
	built bool
}

func newAggOp(child Operator, n *plan.AggNode) *aggOp {
	return &aggOp{child: child, node: n}
}

func (a *aggOp) Open(ctx *Context) error {
	a.table = nil
	a.fin = nil
	a.built = false
	return a.child.Open(ctx)
}

func (a *aggOp) Next(ctx *Context) (*vector.Chunk, error) {
	if !a.built {
		if err := a.build(ctx); err != nil {
			return nil, err
		}
		a.built = true
	}
	return a.fin.next()
}

func (a *aggOp) build(ctx *Context) error {
	a.table = newAggTable(ctx, a.node, false, 1)
	var chunkSeq int
	for {
		chunk, err := a.child.Next(ctx)
		if err != nil {
			return err
		}
		if chunk == nil {
			break
		}
		if err := a.table.accumulate(ctx, chunkSeq, chunk); err != nil {
			return err
		}
		chunkSeq++
	}
	fin, err := finishAggTables(ctx, a.node, []*aggTable{a.table})
	if err != nil {
		return err
	}
	a.fin = fin
	return nil
}

func groupTypes(n *plan.AggNode) []types.Type {
	out := make([]types.Type, len(n.GroupBy))
	for i, g := range n.GroupBy {
		out[i] = g.Type()
	}
	return out
}

// updateAggChunk accumulates one aggregate over a whole chunk with the
// type/function dispatch hoisted out of the row loop. seq identifies
// the chunk (its morsel sequence number for parallel pipelines, any
// monotone counter otherwise); retain marks parallel workers, whose
// DOUBLE subtotals are kept per morsel for the ordered merge.
func updateAggChunk(spec plan.AggSpec, j int, states []*aggState, arg *vector.Vector, seq int64, retain bool) {
	if spec.Arg == nil { // count(*)
		for _, st := range states {
			st.accs[j].count++
		}
		return
	}
	if spec.Distinct {
		for r, st := range states {
			updateAgg(spec, &st.accs[j], arg, r)
		}
		return
	}
	allValid := arg.Valid.AllValid()
	switch spec.Func {
	case "count":
		if allValid {
			for _, st := range states {
				st.accs[j].count++
			}
			return
		}
		for r, st := range states {
			if arg.Valid.IsValid(r) {
				st.accs[j].count++
			}
		}
	case "sum", "avg":
		switch arg.Type {
		case types.Integer:
			for r, st := range states {
				if allValid || arg.Valid.IsValid(r) {
					acc := &st.accs[j]
					acc.count++
					acc.sumI += int64(arg.I32[r])
				}
			}
		case types.BigInt, types.Timestamp:
			for r, st := range states {
				if allValid || arg.Valid.IsValid(r) {
					acc := &st.accs[j]
					acc.count++
					acc.sumI += arg.I64[r]
				}
			}
		case types.Double:
			for r, st := range states {
				if allValid || arg.Valid.IsValid(r) {
					acc := &st.accs[j]
					acc.count++
					acc.addF(arg.F64[r], seq, retain)
				}
			}
		case types.Boolean:
			for r, st := range states {
				if allValid || arg.Valid.IsValid(r) {
					acc := &st.accs[j]
					acc.count++
					if arg.Bools[r] {
						acc.sumI++
					}
				}
			}
		}
	case "min", "max":
		for r, st := range states {
			updateAgg(spec, &st.accs[j], arg, r)
		}
	}
}

func updateAgg(spec plan.AggSpec, acc *accumulator, arg *vector.Vector, r int) {
	if spec.Arg == nil { // count(*)
		acc.count++
		return
	}
	if arg.IsNull(r) {
		return
	}
	if acc.distinct != nil {
		k := string(encodeKeyRow(nil, []*vector.Vector{arg}, r))
		if _, ok := acc.distinct[k]; !ok {
			acc.distinct[k] = struct{}{}
			acc.distBytes += int64(len(k)) + 16
		}
		return
	}
	switch spec.Func {
	case "count":
		acc.count++
	case "sum", "avg":
		acc.count++
		switch arg.Type {
		case types.Integer:
			acc.sumI += int64(arg.I32[r])
		case types.BigInt, types.Timestamp:
			acc.sumI += arg.I64[r]
		case types.Boolean:
			if arg.Bools[r] {
				acc.sumI++
			}
		case types.Double:
			acc.sumF += arg.F64[r]
		}
	case "min", "max":
		v := arg.Get(r)
		if !acc.bestSet {
			acc.best = v
			acc.bestSet = true
			return
		}
		c := types.Compare(v, acc.best)
		if (spec.Func == "max" && c > 0) || (spec.Func == "min" && c < 0) {
			acc.best = v
		}
	}
}

func finishAgg(spec plan.AggSpec, acc *accumulator) types.Value {
	if acc.distinct != nil {
		return finishDistinct(spec, acc)
	}
	switch spec.Func {
	case "count":
		return types.NewBigInt(acc.count)
	case "sum":
		if acc.count == 0 {
			return types.NewNull(spec.Type)
		}
		if spec.Type == types.Double {
			return types.NewDouble(acc.sumF)
		}
		return types.NewBigInt(acc.sumI)
	case "avg":
		if acc.count == 0 {
			return types.NewNull(types.Double)
		}
		total := acc.sumF
		if total == 0 && acc.sumI != 0 {
			total = float64(acc.sumI)
		} else if acc.sumI != 0 {
			total += float64(acc.sumI)
		}
		return types.NewDouble(total / float64(acc.count))
	case "min", "max":
		if !acc.bestSet {
			return types.NewNull(spec.Type)
		}
		return acc.best
	default:
		return types.NewNull(spec.Type)
	}
}

// finishDistinct folds a DISTINCT aggregate's value set. The fold walks
// the encoded keys in sorted order — any fixed order works for
// count/min/max, and for DOUBLE sums it pins the reduction tree, so the
// result is identical no matter which workers collected which values.
func finishDistinct(spec plan.AggSpec, acc *accumulator) types.Value {
	if len(acc.distinct) == 0 {
		if spec.Func == "count" {
			return types.NewBigInt(0)
		}
		return types.NewNull(spec.Type)
	}
	if spec.Func == "count" {
		return types.NewBigInt(int64(len(acc.distinct)))
	}
	keys := make([]string, 0, len(acc.distinct))
	for k := range acc.distinct {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	argType := spec.Arg.Type()
	var (
		sumI int64
		sumF float64
		best types.Value
	)
	for i, k := range keys {
		v := decodeValueKey(k, argType)
		switch spec.Func {
		case "sum", "avg":
			switch argType {
			case types.Double:
				sumF += v.F64
			case types.Boolean:
				if v.Bool {
					sumI++
				}
			default:
				sumI += v.I64
			}
		case "min", "max":
			if i == 0 {
				best = v
				continue
			}
			c := types.Compare(v, best)
			if (spec.Func == "max" && c > 0) || (spec.Func == "min" && c < 0) {
				best = v
			}
		}
	}
	n := int64(len(acc.distinct))
	switch spec.Func {
	case "sum":
		if spec.Type == types.Double {
			return types.NewDouble(sumF)
		}
		return types.NewBigInt(sumI)
	case "avg":
		total := sumF
		if argType != types.Double {
			total = float64(sumI)
		}
		return types.NewDouble(total / float64(n))
	case "min", "max":
		return best
	default:
		return types.NewNull(spec.Type)
	}
}

func (a *aggOp) Close(ctx *Context) {
	if a.fin != nil {
		a.fin.close()
		a.fin = nil
	}
	if a.table != nil {
		a.table.close()
		a.table = nil
	}
	a.child.Close(ctx)
}
