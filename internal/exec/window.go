package exec

import (
	"fmt"

	"repro/internal/extsort"
	"repro/internal/plan"
	"repro/internal/types"
	"repro/internal/vector"
)

// The window operator evaluates fn(...) OVER (PARTITION BY ... ORDER BY
// ... [frame]) in three phases sharing one total order:
//
//  1. Extend: every input row is widened with its evaluated partition
//     keys, order keys and a hidden packed (chunk, row) position, then
//     fed to the external sorter keyed by (partition, order, position).
//     The hidden position makes the sort a total order, so the sorted
//     stream — and with it every downstream value — is bit-identical at
//     every thread count. The parallel build runs this phase on the
//     morsel pipeline with one sorter per worker (splitting the sort
//     budget, like the parallel ORDER BY) and k-way merges all runs.
//  2. Cut: the merged stream is split into partitions wherever the
//     partition keys change (windowPartitionOp emits one chunk per
//     partition).
//  3. Evaluate: windowEvalStage computes every function over one
//     partition and emits the payload plus the new columns. In the
//     parallel plan the stage runs on the exchange's worker pool —
//     partitions are evaluated concurrently and the exchange's
//     reorder-merge re-emits them in partition order.
//
// Output order is (partition keys, order keys, input position): the
// deterministic order both the sequential and parallel builds produce.

// windowLayout fixes the column layout of the extended sort rows:
// payload columns first, then partition keys, order keys and the hidden
// position column.
type windowLayout struct {
	np  int // payload (child schema) columns
	npk int // partition key columns
	nok int // order key columns
}

func layoutOf(n *plan.WindowNode) windowLayout {
	return windowLayout{np: len(n.Child.Schema()), npk: len(n.PartitionBy), nok: len(n.OrderBy)}
}

// extTypes returns the extended row schema fed to the sorter.
func (l windowLayout) extTypes(n *plan.WindowNode) []types.Type {
	out := make([]types.Type, 0, l.np+l.npk+l.nok+1)
	out = append(out, schemaTypes(n.Child.Schema())...)
	for _, e := range n.PartitionBy {
		out = append(out, e.Type())
	}
	for _, k := range n.OrderBy {
		out = append(out, k.Expr.Type())
	}
	return append(out, types.BigInt)
}

// sortKeys orders rows by partition (NULLs grouped first), then the
// user's order keys, then the hidden input position.
func (l windowLayout) sortKeys(n *plan.WindowNode) []extsort.Key {
	keys := make([]extsort.Key, 0, l.npk+l.nok+1)
	for i := 0; i < l.npk; i++ {
		keys = append(keys, extsort.Key{Col: l.np + i, NullsFirst: true})
	}
	for i, k := range n.OrderBy {
		keys = append(keys, extsort.Key{Col: l.np + l.npk + i, Desc: k.Desc, NullsFirst: k.NullsFirst})
	}
	return append(keys, extsort.Key{Col: l.np + l.npk + l.nok})
}

// partKeys compares rows on the partition columns only.
func (l windowLayout) partKeys() []extsort.Key {
	keys := make([]extsort.Key, l.npk)
	for i := range keys {
		keys[i] = extsort.Key{Col: l.np + i, NullsFirst: true}
	}
	return keys
}

// partitionCutter splits a sorted (partition, order, position) chunk
// stream into one chunk per partition: runs of rows equal on the
// partition keys are contiguous in sorted input, so the cutter
// bulk-copies each run and emits whenever the keys change. It is used
// by the sequential window operator on the consumer thread and by every
// partitioned-merge worker on its own key range (range boundaries snap
// to partition-key boundaries, so no partition straddles two workers).
type partitionCutter struct {
	partKeys []extsort.Key
	npk      int

	part    *vector.Chunk // partition under accumulation
	prev    *vector.Chunk // chunk/row of the previously appended row
	prevRow int
}

func newPartitionCutter(lay windowLayout) *partitionCutter {
	return &partitionCutter{partKeys: lay.partKeys(), npk: lay.npk}
}

// feed cuts one sorted chunk, emitting every partition it completes.
func (pc *partitionCutter) feed(c *vector.Chunk, emit func(*vector.Chunk) error) error {
	n := c.Len()
	pos := 0
	for pos < n {
		if pc.part != nil && pc.part.Len() > 0 && pc.npk > 0 &&
			extsort.CompareRows(pc.prev, pc.prevRow, c, pos, pc.partKeys) != 0 {
			out := pc.part
			pc.part = nil
			if err := emit(out); err != nil {
				return err
			}
		}
		// Extend the run of rows sharing this row's partition and
		// bulk-copy it.
		end := pos + 1
		if pc.npk > 0 {
			for end < n && extsort.CompareRows(c, end-1, c, end, pc.partKeys) == 0 {
				end++
			}
		} else {
			end = n
		}
		if pc.part == nil {
			pc.part = vector.NewChunk(c.Types())
		}
		for ci, col := range pc.part.Cols {
			col.AppendRange(c.Cols[ci], pos, end-pos)
		}
		pc.part.SetLen(pc.part.Cols[0].Len())
		pc.prev, pc.prevRow = c, end-1
		pos = end
	}
	return nil
}

// flush emits the final partition, if any.
func (pc *partitionCutter) flush(emit func(*vector.Chunk) error) error {
	if pc.part == nil || pc.part.Len() == 0 {
		pc.part = nil
		return nil
	}
	out := pc.part
	pc.part = nil
	return emit(out)
}

// windowPartitionOp produces the partition stream of a WindowNode: the
// input (a built child operator, or a morsel pipeline whose workers
// each feed their own sorter) is sorted by (partition, order, position)
// and emitted as one chunk per partition, in sorted order. Partition
// chunks keep the extended layout; the eval stage strips it.
//
// With threads > 1 and a PARTITION BY, the merge phase itself
// partitions: key ranges snapped to partition-key boundaries are merged
// AND cut by N workers concurrently, and the stream re-emits whole
// partitions in order — the cutting no longer runs on the consumer.
type windowPartitionOp struct {
	node *plan.WindowNode
	lay  windowLayout

	child Operator   // sequential source (exactly one of child/scan is set)
	scan  *parScanOp // parallel pipeline source

	iter  *extsort.Iterator
	merge *parMergeStream // partitioned merge+cut (nil: cut on consumer)
	built bool

	cutter  *partitionCutter
	queue   []*vector.Chunk // completed partitions awaiting emission
	flushed bool
}

func newWindowPartitionOp(n *plan.WindowNode, child Operator, scan *parScanOp) *windowPartitionOp {
	return &windowPartitionOp{node: n, lay: layoutOf(n), child: child, scan: scan}
}

func (w *windowPartitionOp) Open(ctx *Context) error {
	w.built = false
	w.iter = nil
	w.merge = nil
	w.cutter = nil
	w.queue = nil
	w.flushed = false
	if w.child != nil {
		return w.child.Open(ctx)
	}
	return w.scan.Open(ctx)
}

// extend widens a chunk with the evaluated partition keys, order keys
// and the hidden packed (seq, row) position.
func (w *windowPartitionOp) extend(chunk *vector.Chunk, seq int) (*vector.Chunk, error) {
	cols := make([]*vector.Vector, 0, w.lay.np+w.lay.npk+w.lay.nok+1)
	cols = append(cols, chunk.Cols...)
	for _, e := range w.node.PartitionBy {
		v, err := e.Eval(chunk)
		if err != nil {
			return nil, err
		}
		cols = append(cols, v)
	}
	for _, k := range w.node.OrderBy {
		v, err := k.Expr.Eval(chunk)
		if err != nil {
			return nil, err
		}
		cols = append(cols, v)
	}
	tie := vector.NewLen(types.BigInt, chunk.Len())
	for r := 0; r < chunk.Len(); r++ {
		tie.I64[r] = packAggPos(seq, r)
	}
	cols = append(cols, tie)
	ext := &vector.Chunk{Cols: cols}
	ext.SetLen(chunk.Len())
	return ext, nil
}

func (w *windowPartitionOp) build(ctx *Context) error {
	extTypes := w.lay.extTypes(w.node)
	keys := w.lay.sortKeys(w.node)

	if w.child != nil {
		sorter := extsort.NewSorter(extTypes, keys, ctx.sortBudget(), ctx.TmpDir)
		if ctx.Pool != nil {
			sorter.SetPool(ctx.Pool)
		}
		seq := 0
		for {
			chunk, err := w.child.Next(ctx)
			if err != nil {
				sorter.Close()
				return err
			}
			if chunk == nil {
				break
			}
			if chunk.Len() == 0 {
				continue
			}
			ext, err := w.extend(chunk, seq)
			if err != nil {
				sorter.Close()
				return err
			}
			if err := sorter.Add(ext); err != nil {
				sorter.Close()
				return err
			}
			seq++
		}
		iter, err := sorter.Finish()
		if err != nil {
			sorter.Close()
			return err
		}
		recordSortSpill(ctx, w.node, sorter.SpilledBytes())
		w.iter = iter
		return nil
	}

	// Parallel build: each pipeline worker extends its morsels and feeds
	// its own sorter (splitting the budget like the parallel ORDER BY);
	// the k-way merge of every worker's runs reproduces the total order.
	workers := w.scan.workerCount(ctx)
	budget := ctx.sortBudget()
	if budget > 0 && workers > 1 {
		budget /= int64(workers)
		if budget < 1 {
			budget = 1
		}
	}
	var sorters []*extsort.Sorter
	_, err := w.scan.consume(ctx, func(wk int) func(int, *vector.Chunk) error {
		sorter := extsort.NewSorter(extTypes, keys, budget, ctx.TmpDir)
		if ctx.Pool != nil {
			sorter.SetPool(ctx.Pool)
		}
		sorters = append(sorters, sorter)
		return func(seq int, chunk *vector.Chunk) error {
			ext, err := w.extend(chunk, seq)
			if err != nil {
				return err
			}
			return sorter.Add(ext)
		}
	})
	if err != nil {
		for _, sorter := range sorters {
			sorter.Close()
		}
		return err
	}
	iter, err := extsort.MergeFinish(sorters)
	if err != nil {
		for _, sorter := range sorters {
			sorter.Close()
		}
		return err
	}
	var spilled int64
	for _, sorter := range sorters {
		spilled += sorter.SpilledBytes()
	}
	recordSortSpill(ctx, w.node, spilled)
	w.iter = iter

	// Partitioned merge: cut the key domain on the partition-key prefix
	// so every window partition lands wholly inside one range, then let
	// each range worker merge its cursors AND cut partitions — both the
	// k-way merge and the partition cutting leave the consumer thread.
	if ctx.Threads > 1 && w.lay.npk > 0 {
		parts, err := iter.PartitionMerge(ctx.Threads, w.lay.partKeys())
		if err != nil {
			iter.Close()
			w.iter = nil
			return err
		}
		if len(parts) > 1 {
			lay := w.lay
			w.merge = newParMergeStream(ctx, parts, func(wk int, part *extsort.Iterator) rangeCursor {
				return &partitionCutCursor{part: part, cutter: newPartitionCutter(lay)}
			})
		}
	}
	return nil
}

// partitionCutCursor adapts the partition cutter to the pull-based
// mergeCursor the partitioned merge runs on the scheduler: each Next
// feeds range chunks to the cutter until at least one whole partition
// is queued, then emits queued partitions one at a time.
type partitionCutCursor struct {
	part   *extsort.Iterator
	cutter *partitionCutter
	queue  []*vector.Chunk
	done   bool
}

func (pc *partitionCutCursor) enq(c *vector.Chunk) error {
	pc.queue = append(pc.queue, c)
	return nil
}

func (pc *partitionCutCursor) Next() (*vector.Chunk, error) {
	for {
		if len(pc.queue) > 0 {
			c := pc.queue[0]
			pc.queue = pc.queue[1:]
			return c, nil
		}
		if pc.done {
			return nil, nil
		}
		c, err := pc.part.Next()
		if err != nil {
			return nil, err
		}
		if c == nil {
			pc.done = true
			if err := pc.cutter.flush(pc.enq); err != nil {
				return nil, err
			}
			continue
		}
		if c.Len() == 0 {
			continue
		}
		if err := pc.cutter.feed(c, pc.enq); err != nil {
			return nil, err
		}
	}
}

// Next emits the next partition as one chunk in the extended layout.
func (w *windowPartitionOp) Next(ctx *Context) (*vector.Chunk, error) {
	if !w.built {
		if err := w.build(ctx); err != nil {
			return nil, err
		}
		w.built = true
		w.cutter = newPartitionCutter(w.lay)
	}
	if w.merge != nil {
		// Merge workers already cut; the stream is whole partitions in
		// partition order.
		return w.merge.Next()
	}
	enq := func(p *vector.Chunk) error {
		w.queue = append(w.queue, p)
		return nil
	}
	for {
		if len(w.queue) > 0 {
			out := w.queue[0]
			w.queue = w.queue[1:]
			return out, nil
		}
		if w.flushed {
			return nil, nil
		}
		c, err := w.iter.Next()
		if err != nil {
			return nil, err
		}
		if c == nil {
			w.cutter.flush(enq) //nolint:errcheck // enq cannot fail
			w.flushed = true
			continue
		}
		if c.Len() == 0 {
			continue
		}
		w.cutter.feed(c, enq) //nolint:errcheck // enq cannot fail
	}
}

// mergeRows reports rows emitted per merge-phase worker (test hook;
// valid after the stream has drained).
func (w *windowPartitionOp) mergeRows() []int64 {
	if w.merge == nil {
		return nil
	}
	return w.merge.rows
}

func (w *windowPartitionOp) Close(ctx *Context) {
	if w.merge != nil {
		w.merge.Close() // join range workers before their files close
		w.merge = nil
	}
	if w.iter != nil {
		w.iter.Close()
		w.iter = nil
	}
	w.cutter, w.queue = nil, nil
	if w.child != nil {
		w.child.Close(ctx)
	} else {
		w.scan.Close(ctx)
	}
}

// windowEvalStage computes every window function over one partition
// chunk and emits the payload columns plus the function results, sliced
// back to engine-sized chunks. Instances are stateless apart from the
// shared immutable node, so the exchange runs them concurrently across
// partitions.
type windowEvalStage struct {
	node     *plan.WindowNode
	lay      windowLayout
	outTypes []types.Type
}

func newWindowEvalStage(n *plan.WindowNode) *windowEvalStage {
	lay := layoutOf(n)
	outTypes := append([]types.Type(nil), schemaTypes(n.Child.Schema())...)
	for _, f := range n.Funcs {
		outTypes = append(outTypes, f.Type)
	}
	return &windowEvalStage{node: n, lay: lay, outTypes: outTypes}
}

func (w *windowEvalStage) run(ctx *Context, part *vector.Chunk, emit func(*vector.Chunk) error) error {
	return w.runSlice(ctx, part, 0, part.Len(), emit)
}

// wantSlices reports whether splitting an oversized partition across
// workers can actually beat one worker. Only general (non-growing)
// frames qualify: their O(n·width) per-row rescans divide cleanly by
// row range. Growing frames (the SQL default) fold a serial prefix —
// every slice would redo the rows before it — and ranking/lag do O(n)
// total anyway, so for those the whole partition stays one work item.
// Every slice also redoes the O(n) per-partition setup (peer groups,
// argument evaluation), so bounded frames must additionally be wide
// enough to amortize it — narrow frames stay unsplit.
func (w *windowEvalStage) wantSlices(int) bool {
	f := w.node.Frame
	if !f.Set || (f.Start.Unbounded && f.Start.Preceding) {
		return false
	}
	hasAgg := false
	for _, fn := range w.node.Funcs {
		switch fn.Func {
		case "count", "sum", "avg", "min", "max":
			hasAgg = true
		}
	}
	if !hasAgg {
		return false
	}
	if f.End.Unbounded {
		return true // width ~ n: rescans dominate any setup
	}
	if !f.Rows {
		return false // RANGE general frames: peer-group width, unknown
	}
	// ROWS with bounded offsets: width in rows, signed by direction.
	back, fwd := int64(0), int64(0)
	if f.Start.Preceding {
		back = f.Start.Offset
	} else if !f.Start.Current {
		back = -f.Start.Offset
	}
	if !f.End.Preceding && !f.End.Current {
		fwd = f.End.Offset
	} else if f.End.Preceding {
		fwd = -f.End.Offset
	}
	// The per-slice setup is ~2 full-partition passes and the split cap
	// is 4 items/worker; width >= 64 amortizes it up to 16 workers.
	return back+fwd+1 >= 64
}

// runSlice evaluates rows [lo, hi) of one partition chunk — the
// exchange splits oversized partitions into such slices so several
// workers evaluate one huge partition concurrently. Values are
// bit-identical to whole-partition evaluation: ranking and peer data
// derive from the full partition, and growing frames re-accumulate
// their prefix left-to-right from row 0 (same DOUBLE fold order).
// Slice bounds are ChunkCapacity-aligned, so emission chunk boundaries
// equal the unsplit operator's.
func (w *windowEvalStage) runSlice(ctx *Context, part *vector.Chunk, lo, hi int, emit func(*vector.Chunk) error) error {
	outs, err := evalWindowPartitionSlice(w.node, w.lay, part, lo, hi)
	if err != nil {
		return err
	}
	for base := lo; base < hi; base += vector.ChunkCapacity {
		m := hi - base
		if m > vector.ChunkCapacity {
			m = vector.ChunkCapacity
		}
		out := vector.NewChunk(w.outTypes)
		for c := 0; c < w.lay.np; c++ {
			out.Cols[c].AppendRange(part.Cols[c], base, m)
		}
		for j, ov := range outs {
			out.Cols[w.lay.np+j].AppendRange(ov, base-lo, m)
		}
		out.SetLen(m)
		if err := emit(out); err != nil {
			return err
		}
	}
	return nil
}

// stageOp applies per-worker stages inline on a single thread — the
// sequential counterpart of running them on an exchange pool.
type stageOp struct {
	child  Operator
	stages []stage
	queue  []*vector.Chunk
}

func (s *stageOp) Open(ctx *Context) error {
	s.queue = nil
	return s.child.Open(ctx)
}

func (s *stageOp) Next(ctx *Context) (*vector.Chunk, error) {
	for {
		if len(s.queue) > 0 {
			out := s.queue[0]
			s.queue = s.queue[1:]
			return out, nil
		}
		chunk, err := s.child.Next(ctx)
		if err != nil || chunk == nil {
			return nil, err
		}
		err = runStages(ctx, s.stages, chunk, func(out *vector.Chunk) error {
			if out.Len() > 0 {
				s.queue = append(s.queue, out)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
}

func (s *stageOp) Close(ctx *Context) { s.child.Close(ctx) }

// newWindowOp builds the sequential window operator.
func newWindowOp(child Operator, n *plan.WindowNode) Operator {
	return &stageOp{
		child:  newWindowPartitionOp(n, child, nil),
		stages: []stage{newWindowEvalStage(n)},
	}
}

// newParWindowOp builds the parallel window operator over a morsel
// pipeline: per-worker sorters feed the merged partition stream, and
// the eval stage runs on the exchange's pool with its ordered merge
// keeping emission in partition order.
func newParWindowOp(spec *pipelineSpec, n *plan.WindowNode) Operator {
	src := newWindowPartitionOp(n, nil, newParScanOp(spec))
	return newExchangeOp(src, []stageFactory{func() stage { return newWindowEvalStage(n) }}, true)
}

// ---- per-partition evaluation ----

// evalWindowPartitionSlice computes every window function for rows
// [lo, hi) of one partition (rows already in (order keys, input
// position) order), returning one result vector of length hi-lo per
// function. Ranking, peer groups and frame bounds always derive from
// the whole partition, so any slicing of [0, n) yields bit-identical
// values — including non-associative DOUBLE sums, which are always
// folded left-to-right from the partition start.
func evalWindowPartitionSlice(node *plan.WindowNode, lay windowLayout, part *vector.Chunk, lo, hi int) ([]*vector.Vector, error) {
	n := part.Len()
	m := hi - lo

	peerStart, peerEnd, dense := peerGroups(part, lay, n)

	outs := make([]*vector.Vector, len(node.Funcs))
	for j, f := range node.Funcs {
		var arg *vector.Vector
		if f.Arg != nil {
			// Evaluate against the shared partition chunk directly —
			// args only reference the payload prefix, and concurrent
			// slice workers must not mutate the chunk (a projected
			// sub-chunk's SetLen would materialize shared masks).
			v, err := f.Arg.Eval(part)
			if err != nil {
				return nil, err
			}
			arg = v
		}
		switch f.Func {
		case "row_number":
			out := vector.NewLen(types.BigInt, m)
			for i := lo; i < hi; i++ {
				out.I64[i-lo] = int64(i) + 1
			}
			outs[j] = out
		case "rank":
			out := vector.NewLen(types.BigInt, m)
			for i := lo; i < hi; i++ {
				out.I64[i-lo] = int64(peerStart[i]) + 1
			}
			outs[j] = out
		case "dense_rank":
			out := vector.NewLen(types.BigInt, m)
			copy(out.I64, dense[lo:hi])
			outs[j] = out
		case "lag", "lead":
			outs[j] = evalShift(f, arg, n, lo, hi)
		case "count", "sum", "avg", "min", "max":
			bounds, growing := frameBoundsFn(node.Frame, n, peerStart, peerEnd, lay.nok > 0)
			outs[j] = evalFrameAgg(f, arg, n, lo, hi, bounds, growing)
		default:
			return nil, fmt.Errorf("exec: unknown window function %q", f.Func)
		}
	}
	return outs, nil
}

// peerGroups computes, for every row of the partition, the first and
// last index of its ORDER BY peer group and its dense rank. Without
// order keys the whole partition is one peer group.
func peerGroups(part *vector.Chunk, lay windowLayout, n int) (peerStart, peerEnd []int, dense []int64) {
	peerStart = make([]int, n)
	peerEnd = make([]int, n)
	dense = make([]int64, n)
	if lay.nok == 0 {
		for i := 0; i < n; i++ {
			peerEnd[i] = n - 1
			dense[i] = 1
		}
		return
	}
	ordKeys := make([]extsort.Key, lay.nok)
	for i := range ordKeys {
		ordKeys[i] = extsort.Key{Col: lay.np + lay.npk + i}
	}
	groupStart := 0
	rank := int64(1)
	for i := 0; i < n; i++ {
		if i > 0 && extsort.CompareRows(part, i-1, part, i, ordKeys) != 0 {
			for k := groupStart; k < i; k++ {
				peerEnd[k] = i - 1
			}
			groupStart = i
			rank++
		}
		peerStart[i] = groupStart
		dense[i] = rank
	}
	for k := groupStart; k < n; k++ {
		peerEnd[k] = n - 1
	}
	return
}

// evalShift computes lag/lead for partition rows [lo, hi).
func evalShift(f plan.WindowFunc, arg *vector.Vector, n, lo, hi int) *vector.Vector {
	out := vector.NewLen(f.Type, hi-lo)
	off := int(f.Offset)
	if f.Func == "lag" {
		off = -off
	}
	for i := lo; i < hi; i++ {
		j := i + off
		o := i - lo
		if j < 0 || j >= n {
			out.Set(o, f.Default)
			continue
		}
		if arg.IsNull(j) {
			out.SetNull(o)
			continue
		}
		if arg.Type == f.Type {
			out.SetFrom(o, arg, j)
		} else { // NULL-typed argument: every row is NULL, unreachable
			out.Set(o, arg.Get(j))
		}
	}
	return out
}

// frameBoundsFn resolves the node's frame into a per-row [lo, hi] row
// interval (unclamped). growing reports that lo is pinned at 0 and hi
// never decreases, enabling the incremental accumulation path.
func frameBoundsFn(frame plan.WindowFrame, n int, peerStart, peerEnd []int, hasOrder bool) (func(i int) (int, int), bool) {
	if !frame.Set {
		if !hasOrder {
			// Whole partition.
			return func(int) (int, int) { return 0, n - 1 }, true
		}
		// SQL default: RANGE UNBOUNDED PRECEDING .. CURRENT ROW — the
		// running frame including the current row's peers.
		return func(i int) (int, int) { return 0, peerEnd[i] }, true
	}
	resolve := func(b plan.FrameBound, start bool) func(i int) int {
		switch {
		case b.Unbounded && b.Preceding:
			return func(int) int { return 0 }
		case b.Unbounded:
			return func(int) int { return n - 1 }
		case b.Current:
			if frame.Rows {
				return func(i int) int { return i }
			}
			if start {
				return func(i int) int { return peerStart[i] }
			}
			return func(i int) int { return peerEnd[i] }
		case b.Preceding:
			off := int(b.Offset)
			return func(i int) int { return i - off }
		default:
			off := int(b.Offset)
			return func(i int) int { return i + off }
		}
	}
	lo := resolve(frame.Start, true)
	hi := resolve(frame.End, false)
	growing := frame.Start.Unbounded && frame.Start.Preceding
	return func(i int) (int, int) { return lo(i), hi(i) }, growing
}

// frameAcc is the running state of one frame aggregate.
type frameAcc struct {
	count   int64
	sumI    int64
	sumF    float64
	best    types.Value
	bestSet bool
}

func (a *frameAcc) reset() { *a = frameAcc{} }

func (a *frameAcc) add(f *plan.WindowFunc, arg *vector.Vector, r int) {
	if arg == nil { // count(*)
		a.count++
		return
	}
	if arg.IsNull(r) {
		return
	}
	a.count++
	switch f.Func {
	case "sum", "avg":
		switch arg.Type {
		case types.Integer:
			a.sumI += int64(arg.I32[r])
		case types.BigInt, types.Timestamp:
			a.sumI += arg.I64[r]
		case types.Boolean:
			if arg.Bools[r] {
				a.sumI++
			}
		case types.Double:
			a.sumF += arg.F64[r]
		}
	case "min", "max":
		v := arg.Get(r)
		if !a.bestSet {
			a.best, a.bestSet = v, true
			return
		}
		c := types.Compare(v, a.best)
		if (f.Func == "max" && c > 0) || (f.Func == "min" && c < 0) {
			a.best = v
		}
	}
}

func (a *frameAcc) finish(f *plan.WindowFunc, arg *vector.Vector, out *vector.Vector, i int) {
	switch f.Func {
	case "count":
		out.I64[i] = a.count
	case "sum":
		if a.count == 0 {
			out.SetNull(i)
		} else if f.Type == types.Double {
			out.F64[i] = a.sumF
		} else {
			out.I64[i] = a.sumI
		}
	case "avg":
		if a.count == 0 {
			out.SetNull(i)
		} else if arg != nil && arg.Type == types.Double {
			out.F64[i] = a.sumF / float64(a.count)
		} else {
			out.F64[i] = float64(a.sumI) / float64(a.count)
		}
	case "min", "max":
		if !a.bestSet {
			out.SetNull(i)
		} else {
			out.Set(i, a.best)
		}
	}
}

// evalFrameAgg computes one aggregate over the frames of partition rows
// [lo, hi). Growing frames accumulate incrementally left-to-right from
// the partition start (identical to direct iteration, including the
// DOUBLE reduction order, whatever the slice bounds); general frames
// are re-scanned per row, so slices divide their O(n·width) cost
// cleanly across workers.
func evalFrameAgg(f plan.WindowFunc, arg *vector.Vector, n, lo, hi int, bounds func(i int) (int, int), growing bool) *vector.Vector {
	out := vector.NewLen(f.Type, hi-lo)
	var acc frameAcc
	if growing {
		cur := 0
		for i := 0; i < hi; i++ {
			_, fhi := bounds(i)
			if fhi > n-1 {
				fhi = n - 1
			}
			for cur <= fhi {
				acc.add(&f, arg, cur)
				cur++
			}
			if i >= lo {
				acc.finish(&f, arg, out, i-lo)
			}
		}
		return out
	}
	for i := lo; i < hi; i++ {
		flo, fhi := bounds(i)
		if flo < 0 {
			flo = 0
		}
		if fhi > n-1 {
			fhi = n - 1
		}
		acc.reset()
		for r := flo; r <= fhi; r++ {
			acc.add(&f, arg, r)
		}
		acc.finish(&f, arg, out, i-lo)
	}
	return out
}
