package exec

import (
	"errors"
	"sync"

	"repro/internal/extsort"
	"repro/internal/vector"
)

// reorderBuf is the ordered-merge state machine shared by the operators
// that fan work out to a pool and must re-emit the results in a
// deterministic sequence order: the morsel-ordered parallel scan
// (parScanOp), the exchange operator and the parallel window operator's
// partition merge (which runs on the exchange). It bounds how far
// producers may run ahead of the merge point: a ticket is taken
// (acquire) before work is submitted and returned when that sequence's
// results are emitted, so the reorder buffer holds at most cap(window)
// entries even under scheduling skew.
//
// The consumer side is single-threaded: park stashes a completed
// sequence, advance promotes the next expected sequence's chunks to the
// emission queue (returning its ticket), and pop drains the queue.
type reorderBuf struct {
	window  chan struct{}
	pending map[int][]*vector.Chunk
	queue   []*vector.Chunk
	nextSeq int
}

func newReorderBuf(depth int) *reorderBuf {
	return &reorderBuf{
		window:  make(chan struct{}, depth),
		pending: make(map[int][]*vector.Chunk, depth),
	}
}

// acquire takes a ticket, or reports false if cancel fires first.
func (b *reorderBuf) acquire(cancel <-chan struct{}) bool {
	select {
	case b.window <- struct{}{}:
		return true
	case <-cancel:
		return false
	}
}

// release returns a ticket without emitting anything (a producer that
// acquired one but claimed no work).
func (b *reorderBuf) release() { <-b.window }

// park stores one sequence's result chunks for ordered emission.
func (b *reorderBuf) park(seq int, chunks []*vector.Chunk) { b.pending[seq] = chunks }

// parked reports how many sequences await emission.
func (b *reorderBuf) parked() int { return len(b.pending) }

// seq returns the next sequence number the merge is waiting for.
func (b *reorderBuf) seq() int { return b.nextSeq }

// skip abandons the next expected sequence (a gap left by a producer
// error path that never posted it).
func (b *reorderBuf) skip() { b.nextSeq++ }

// pop returns the next queued chunk, if any.
func (b *reorderBuf) pop() (*vector.Chunk, bool) {
	if len(b.queue) == 0 {
		return nil, false
	}
	c := b.queue[0]
	b.queue = b.queue[1:]
	return c, true
}

// enqueue bypasses sequencing and queues chunks for emission directly
// (completion-order mode), returning the producer's ticket.
func (b *reorderBuf) enqueue(chunks []*vector.Chunk) {
	b.release()
	b.queue = chunks
}

// advance promotes the next expected sequence's parked chunks to the
// emission queue and returns its ticket. It reports false when that
// sequence has not arrived yet.
func (b *reorderBuf) advance() bool {
	chunks, ok := b.pending[b.nextSeq]
	if !ok {
		return false
	}
	delete(b.pending, b.nextSeq)
	b.nextSeq++
	b.release()
	b.queue = chunks
	return true
}

// drop frees the buffered chunks (shutdown).
func (b *reorderBuf) drop() {
	b.pending = nil
	b.queue = nil
}

// ---- partitioned-merge re-emission ----

// errMergeCancelled tells a merge worker its consumer went away.
var errMergeCancelled = errors.New("exec: merge cancelled")

// mergeStreamDepth bounds how many chunks each range worker may run
// ahead of the in-order consumer.
const mergeStreamDepth = 4

type mergeMsg struct {
	chunk *vector.Chunk
	err   error
}

// parMergeStream is the consumer side of the partitioned merge: N
// workers each loser-tree-merge one disjoint key range (an Iterator
// from extsort.PartitionMerge, optionally transformed — the window
// operator cuts partitions on the way out) and the stream re-emits
// their chunks in range order, which is the exact order the
// single-threaded merge would produce. Each worker's channel bounds how
// far it runs ahead, like the reorder buffer's ticket window; unlike
// the reorder buffer the per-range queues stream, so range i+1 makes
// progress while range i is still being emitted.
type parMergeStream struct {
	outs   []chan mergeMsg
	cancel chan struct{}
	once   sync.Once
	wg     sync.WaitGroup
	cur    int
	err    error

	// rows counts rows emitted per range worker. Written worker-locally;
	// read only after the stream is drained or Closed (wg joined).
	rows []int64
}

// mergeDrain pulls one key-range iterator dry, pushing output chunks to
// emit. Implementations run on the worker goroutine.
type mergeDrain func(w int, part *extsort.Iterator, emit func(*vector.Chunk) error) error

func newParMergeStream(parts []*extsort.Iterator, drain mergeDrain) *parMergeStream {
	s := &parMergeStream{
		outs:   make([]chan mergeMsg, len(parts)),
		cancel: make(chan struct{}),
		rows:   make([]int64, len(parts)),
	}
	for i := range parts {
		s.outs[i] = make(chan mergeMsg, mergeStreamDepth)
		s.wg.Add(1)
		go func(w int, part *extsort.Iterator) {
			defer s.wg.Done()
			defer close(s.outs[w])
			// Drop the range's cursors when done: boundary-capped clones
			// may still hold a loaded (pool-accounted) chunk. The shared
			// parent keeps the underlying files open.
			defer part.Close()
			emit := func(c *vector.Chunk) error {
				if c == nil || c.Len() == 0 {
					return nil
				}
				select {
				case s.outs[w] <- mergeMsg{chunk: c}:
					s.rows[w] += int64(c.Len())
					return nil
				case <-s.cancel:
					return errMergeCancelled
				}
			}
			if err := drain(w, part, emit); err != nil && err != errMergeCancelled {
				select {
				case s.outs[w] <- mergeMsg{err: err}:
				case <-s.cancel:
				}
			}
		}(i, parts[i])
	}
	return s
}

// Next returns the next chunk in global key order, or nil at the end.
func (s *parMergeStream) Next() (*vector.Chunk, error) {
	if s.err != nil {
		return nil, s.err
	}
	for s.cur < len(s.outs) {
		msg, ok := <-s.outs[s.cur]
		if !ok {
			s.cur++
			continue
		}
		if msg.err != nil {
			s.err = msg.err
			return nil, msg.err
		}
		return msg.chunk, nil
	}
	return nil, nil
}

// Close cancels outstanding workers and joins them. It must be called
// before the parent iterator (which owns the shared run files) closes.
func (s *parMergeStream) Close() {
	s.once.Do(func() { close(s.cancel) })
	s.wg.Wait()
}

// drainMergeChunks is the plain mergeDrain: forward sorted chunks as-is.
func drainMergeChunks(_ int, part *extsort.Iterator, emit func(*vector.Chunk) error) error {
	for {
		c, err := part.Next()
		if err != nil {
			return err
		}
		if c == nil {
			return nil
		}
		if err := emit(c); err != nil {
			return err
		}
	}
}
