package exec

import (
	"repro/internal/vector"
)

// reorderBuf is the ordered-merge state machine shared by the operators
// that fan work out to a pool and must re-emit the results in a
// deterministic sequence order: the morsel-ordered parallel scan
// (parScanOp), the exchange operator and the parallel window operator's
// partition merge (which runs on the exchange). It bounds how far
// producers may run ahead of the merge point: a ticket is taken
// (acquire) before work is submitted and returned when that sequence's
// results are emitted, so the reorder buffer holds at most cap(window)
// entries even under scheduling skew.
//
// The consumer side is single-threaded: park stashes a completed
// sequence, advance promotes the next expected sequence's chunks to the
// emission queue (returning its ticket), and pop drains the queue.
type reorderBuf struct {
	window  chan struct{}
	pending map[int][]*vector.Chunk
	queue   []*vector.Chunk
	nextSeq int
}

func newReorderBuf(depth int) *reorderBuf {
	return &reorderBuf{
		window:  make(chan struct{}, depth),
		pending: make(map[int][]*vector.Chunk, depth),
	}
}

// acquire takes a ticket, or reports false if cancel fires first.
func (b *reorderBuf) acquire(cancel <-chan struct{}) bool {
	select {
	case b.window <- struct{}{}:
		return true
	case <-cancel:
		return false
	}
}

// release returns a ticket without emitting anything (a producer that
// acquired one but claimed no work).
func (b *reorderBuf) release() { <-b.window }

// park stores one sequence's result chunks for ordered emission.
func (b *reorderBuf) park(seq int, chunks []*vector.Chunk) { b.pending[seq] = chunks }

// parked reports how many sequences await emission.
func (b *reorderBuf) parked() int { return len(b.pending) }

// seq returns the next sequence number the merge is waiting for.
func (b *reorderBuf) seq() int { return b.nextSeq }

// skip abandons the next expected sequence (a gap left by a producer
// error path that never posted it).
func (b *reorderBuf) skip() { b.nextSeq++ }

// pop returns the next queued chunk, if any.
func (b *reorderBuf) pop() (*vector.Chunk, bool) {
	if len(b.queue) == 0 {
		return nil, false
	}
	c := b.queue[0]
	b.queue = b.queue[1:]
	return c, true
}

// enqueue bypasses sequencing and queues chunks for emission directly
// (completion-order mode), returning the producer's ticket.
func (b *reorderBuf) enqueue(chunks []*vector.Chunk) {
	b.release()
	b.queue = chunks
}

// advance promotes the next expected sequence's parked chunks to the
// emission queue and returns its ticket. It reports false when that
// sequence has not arrived yet.
func (b *reorderBuf) advance() bool {
	chunks, ok := b.pending[b.nextSeq]
	if !ok {
		return false
	}
	delete(b.pending, b.nextSeq)
	b.nextSeq++
	b.release()
	b.queue = chunks
	return true
}

// drop frees the buffered chunks (shutdown).
func (b *reorderBuf) drop() {
	b.pending = nil
	b.queue = nil
}
