package exec

import (
	"sync"
	"sync/atomic"

	"repro/internal/extsort"
	"repro/internal/sched"
	"repro/internal/vector"
)

// reorderBuf is the ordered-merge state machine shared by the operators
// that fan work out to the scheduler and must re-emit the results in a
// deterministic sequence order: the morsel-ordered parallel scan
// (parScanOp), the exchange operator and the parallel window operator's
// partition merge (which runs on the exchange). It bounds how far
// producers may run ahead of the merge point: a ticket is taken
// (tryAcquire) before work is submitted and returned when that
// sequence's results are emitted, so the reorder buffer holds at most
// cap(window) entries even under scheduling skew.
//
// The consumer side is single-threaded: park stashes a completed
// sequence, advance promotes the next expected sequence's chunks to the
// emission queue (returning its ticket), and pop drains the queue.
type reorderBuf struct {
	window  chan struct{}
	pending map[int][]*vector.Chunk
	queue   []*vector.Chunk
	nextSeq int
}

func newReorderBuf(depth int) *reorderBuf {
	return &reorderBuf{
		window:  make(chan struct{}, depth),
		pending: make(map[int][]*vector.Chunk, depth),
	}
}

// tryAcquire takes a ticket if one is free. Scheduler steps must not
// block, so a producer that misses parks itself instead of waiting.
func (b *reorderBuf) tryAcquire() bool {
	select {
	case b.window <- struct{}{}:
		return true
	default:
		return false
	}
}

// release returns a ticket without emitting anything (a producer that
// acquired one but claimed no work).
func (b *reorderBuf) release() { <-b.window }

// park stores one sequence's result chunks for ordered emission.
func (b *reorderBuf) park(seq int, chunks []*vector.Chunk) { b.pending[seq] = chunks }

// parked reports how many sequences await emission.
func (b *reorderBuf) parked() int { return len(b.pending) }

// seq returns the next sequence number the merge is waiting for.
func (b *reorderBuf) seq() int { return b.nextSeq }

// skip abandons the next expected sequence (a gap left by a producer
// error path that never posted it).
func (b *reorderBuf) skip() { b.nextSeq++ }

// pop returns the next queued chunk, if any.
func (b *reorderBuf) pop() (*vector.Chunk, bool) {
	if len(b.queue) == 0 {
		return nil, false
	}
	c := b.queue[0]
	b.queue = b.queue[1:]
	return c, true
}

// enqueue bypasses sequencing and queues chunks for emission directly
// (completion-order mode), returning the producer's ticket.
func (b *reorderBuf) enqueue(chunks []*vector.Chunk) {
	b.release()
	b.queue = chunks
}

// advance promotes the next expected sequence's parked chunks to the
// emission queue and returns its ticket. It reports false when that
// sequence has not arrived yet.
func (b *reorderBuf) advance() bool {
	chunks, ok := b.pending[b.nextSeq]
	if !ok {
		return false
	}
	delete(b.pending, b.nextSeq)
	b.nextSeq++
	b.release()
	b.queue = chunks
	return true
}

// drop frees the buffered chunks (shutdown).
func (b *reorderBuf) drop() {
	b.pending = nil
	b.queue = nil
}

// ---- partitioned-merge re-emission ----

// mergeStreamDepth bounds how many chunks each range may run ahead of
// the in-order consumer.
const mergeStreamDepth = 4

type mergeMsg struct {
	chunk *vector.Chunk
	err   error
}

// rangeCursor produces one key range's output chunks in order: either
// an extsort partition iterator directly, or a transforming wrapper
// (the window operator cuts partitions on the way out). nil means the
// range is exhausted. Steps call it from pool workers, one chunk per
// step.
type rangeCursor interface {
	Next() (*vector.Chunk, error)
}

// parMergeStream is the consumer side of the partitioned merge: N
// ranges each loser-tree-merge one disjoint key range (an Iterator from
// extsort.PartitionMerge, optionally transformed) and the stream
// re-emits their chunks in range order, which is the exact order the
// single-threaded merge would produce. Each range runs as a
// re-submitting scheduler step producing one chunk at a time; its
// channel bounds how far it runs ahead, and a range whose channel is
// full parks — costing the shared pool nothing — until the consumer
// drains it.
type parMergeStream struct {
	outs   []chan mergeMsg
	ranges []*mergeRange
	q      *sched.Query
	cancel atomic.Bool
	wg     sync.WaitGroup
	cur    int
	err    error
	closed bool

	// rows counts rows emitted per range. Written by the range's own
	// step chain; read only after the stream is drained or Closed.
	rows []int64
}

// mergeRange is one key range's task state. Exactly one step is
// outstanding per range at any time (queued, running or parked), so
// finish runs exactly once.
type mergeRange struct {
	s      *parMergeStream
	w      int
	part   *extsort.Iterator
	cur    rangeCursor
	mu     sync.Mutex
	parked bool
}

func newParMergeStream(ctx *Context, parts []*extsort.Iterator, mkCursor func(w int, part *extsort.Iterator) rangeCursor) *parMergeStream {
	s := &parMergeStream{
		outs:   make([]chan mergeMsg, len(parts)),
		ranges: make([]*mergeRange, len(parts)),
		q:      ctx.queryTasks(),
		rows:   make([]int64, len(parts)),
	}
	for i := range parts {
		s.outs[i] = make(chan mergeMsg, mergeStreamDepth)
		s.ranges[i] = &mergeRange{s: s, w: i, part: parts[i], cur: mkCursor(i, parts[i])}
		s.wg.Add(1)
		s.q.Submit(s.ranges[i].step)
	}
	return s
}

// finish retires the range: the channel close is the consumer's
// end-of-range signal, and dropping the range's cursors releases any
// loaded (pool-accounted) chunk of its boundary-capped clones. The
// shared parent keeps the underlying files open.
func (r *mergeRange) finish() {
	close(r.s.outs[r.w])
	r.part.Close()
	r.s.wg.Done()
}

// step produces one chunk. The channel-room check happens before the
// cursor runs and the step is the channel's only sender, so the send
// can never block a pool worker; a full channel parks the range until
// the consumer frees a slot.
func (r *mergeRange) step() {
	s := r.s
	if s.cancel.Load() {
		r.finish()
		return
	}
	r.mu.Lock()
	if len(s.outs[r.w]) == cap(s.outs[r.w]) {
		r.parked = true
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()
	c, err := r.cur.Next()
	if err != nil {
		s.outs[r.w] <- mergeMsg{err: err}
		r.finish()
		return
	}
	if c == nil {
		r.finish()
		return
	}
	if c.Len() > 0 {
		s.rows[r.w] += int64(c.Len())
		s.outs[r.w] <- mergeMsg{chunk: c}
	}
	s.q.Submit(r.step)
}

// unpark re-submits a parked range after the consumer freed a slot.
func (s *parMergeStream) unpark(w int) {
	r := s.ranges[w]
	r.mu.Lock()
	if r.parked && !s.cancel.Load() {
		r.parked = false
		s.q.Submit(r.step)
	}
	r.mu.Unlock()
}

// Next returns the next chunk in global key order, or nil at the end.
func (s *parMergeStream) Next() (*vector.Chunk, error) {
	if s.err != nil {
		return nil, s.err
	}
	for s.cur < len(s.outs) {
		msg, ok := <-s.outs[s.cur]
		if !ok {
			s.cur++
			continue
		}
		s.unpark(s.cur)
		if msg.err != nil {
			s.err = msg.err
			return nil, msg.err
		}
		return msg.chunk, nil
	}
	return nil, nil
}

// Close cancels outstanding range steps and joins them. It must be
// called before the parent iterator (which owns the shared run files)
// closes.
func (s *parMergeStream) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.cancel.Store(true)
	for _, r := range s.ranges {
		r.mu.Lock()
		if r.parked {
			r.parked = false
			s.q.Submit(r.step)
		}
		r.mu.Unlock()
	}
	s.wg.Wait()
}

// chunkCursor is the plain rangeCursor: forward sorted chunks as-is.
func chunkCursor(_ int, part *extsort.Iterator) rangeCursor { return part }
