package exec

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/table"
	"repro/internal/types"
	"repro/internal/vector"
)

// This file implements a classic tuple-at-a-time Volcano interpreter
// over the same logical plans — the baseline the paper's §6 design
// choice (vectorized interpreted execution) is measured against in
// experiment E6. Every operator produces one row of boxed values per
// call and every expression is re-interpreted per row, which is exactly
// the per-value overhead the chunked engine amortizes away.

// RowIterator produces one row at a time; nil row means exhausted.
type RowIterator interface {
	Open(ctx *Context) error
	NextRow(ctx *Context) ([]types.Value, error)
	Close(ctx *Context)
}

// BuildRows translates a logical plan into tuple-at-a-time operators.
// Only the read-only core (scan, filter, project, aggregate, sort,
// window, limit) is supported — enough for the engine-comparison
// experiments.
func BuildRows(node plan.Node) (RowIterator, error) {
	switch n := node.(type) {
	case *plan.ScanNode:
		return &rowScan{node: n}, nil
	case *plan.FilterNode:
		child, err := BuildRows(n.Child)
		if err != nil {
			return nil, err
		}
		return &rowFilter{child: child, cond: n.Cond}, nil
	case *plan.ProjectNode:
		child, err := BuildRows(n.Child)
		if err != nil {
			return nil, err
		}
		return &rowProject{child: child, exprs: n.Exprs}, nil
	case *plan.AggNode:
		child, err := BuildRows(n.Child)
		if err != nil {
			return nil, err
		}
		return &rowAgg{child: child, node: n}, nil
	case *plan.SortNode:
		child, err := BuildRows(n.Child)
		if err != nil {
			return nil, err
		}
		return &rowSort{child: child, node: n}, nil
	case *plan.WindowNode:
		child, err := BuildRows(n.Child)
		if err != nil {
			return nil, err
		}
		return &rowWindow{child: child, node: n}, nil
	case *plan.LimitNode:
		child, err := BuildRows(n.Child)
		if err != nil {
			return nil, err
		}
		return &rowLimit{child: child, limit: n.Limit, offset: n.Offset}, nil
	default:
		return nil, fmt.Errorf("exec: row engine does not support %T", node)
	}
}

// RunRows drains a row iterator, invoking sink per row.
func RunRows(ctx *Context, it RowIterator, sink func([]types.Value) error) error {
	if err := it.Open(ctx); err != nil {
		it.Close(ctx)
		return err
	}
	defer it.Close(ctx)
	for {
		row, err := it.NextRow(ctx)
		if err != nil {
			return err
		}
		if row == nil {
			return nil
		}
		if sink != nil {
			if err := sink(row); err != nil {
				return err
			}
		}
	}
}

// rowScan iterates the table one row at a time (through the chunked
// snapshot scanner, materializing each row into boxed values).
type rowScan struct {
	node    *plan.ScanNode
	scanner *table.Scanner
	chunk   *vector.Chunk
	pos     int
}

func (s *rowScan) Open(ctx *Context) error {
	sc, err := s.node.Table.Data.NewScanner(ctx.Txn, table.ScanOptions{
		Columns:    s.node.Columns,
		WithRowIDs: s.node.WithRowID,
	})
	if err != nil {
		return err
	}
	s.scanner = sc
	return nil
}

func (s *rowScan) NextRow(ctx *Context) ([]types.Value, error) {
	for {
		if s.chunk == nil || s.pos >= s.chunk.Len() {
			chunk, err := s.scanner.Next()
			if err != nil {
				return nil, err
			}
			if chunk == nil {
				return nil, nil
			}
			s.chunk = chunk
			s.pos = 0
		}
		row := s.chunk.Row(s.pos)
		s.pos++
		if s.node.Filter != nil {
			v, err := EvalRow(s.node.Filter, row)
			if err != nil {
				return nil, err
			}
			if v.Null || !v.Bool {
				continue
			}
		}
		return row, nil
	}
}

func (s *rowScan) Close(ctx *Context) {
	if s.scanner != nil {
		s.scanner.Close()
		s.scanner = nil
	}
}

type rowFilter struct {
	child RowIterator
	cond  expr.Expr
}

func (f *rowFilter) Open(ctx *Context) error { return f.child.Open(ctx) }

func (f *rowFilter) NextRow(ctx *Context) ([]types.Value, error) {
	for {
		row, err := f.child.NextRow(ctx)
		if err != nil || row == nil {
			return nil, err
		}
		v, err := EvalRow(f.cond, row)
		if err != nil {
			return nil, err
		}
		if !v.Null && v.Bool {
			return row, nil
		}
	}
}

func (f *rowFilter) Close(ctx *Context) { f.child.Close(ctx) }

type rowProject struct {
	child RowIterator
	exprs []expr.Expr
}

func (p *rowProject) Open(ctx *Context) error { return p.child.Open(ctx) }

func (p *rowProject) NextRow(ctx *Context) ([]types.Value, error) {
	row, err := p.child.NextRow(ctx)
	if err != nil || row == nil {
		return nil, err
	}
	out := make([]types.Value, len(p.exprs))
	for i, e := range p.exprs {
		v, err := EvalRow(e, row)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func (p *rowProject) Close(ctx *Context) { p.child.Close(ctx) }

type rowLimit struct {
	child           RowIterator
	limit, offset   int64
	passed, skipped int64
}

func (l *rowLimit) Open(ctx *Context) error {
	l.passed, l.skipped = 0, 0
	return l.child.Open(ctx)
}

func (l *rowLimit) NextRow(ctx *Context) ([]types.Value, error) {
	for {
		if l.limit >= 0 && l.passed >= l.limit {
			return nil, nil
		}
		row, err := l.child.NextRow(ctx)
		if err != nil || row == nil {
			return nil, err
		}
		if l.skipped < l.offset {
			l.skipped++
			continue
		}
		l.passed++
		return row, nil
	}
}

func (l *rowLimit) Close(ctx *Context) { l.child.Close(ctx) }

// rowSort materializes and sorts rows in memory (tuple-at-a-time
// engines cannot stream sorts either; this keeps the baseline honest
// without duplicating the external sorter).
type rowSort struct {
	child RowIterator
	node  *plan.SortNode
	rows  [][]types.Value
	pos   int
	built bool
}

func (s *rowSort) Open(ctx *Context) error {
	s.rows, s.pos, s.built = nil, 0, false
	return s.child.Open(ctx)
}

func (s *rowSort) NextRow(ctx *Context) ([]types.Value, error) {
	if !s.built {
		for {
			row, err := s.child.NextRow(ctx)
			if err != nil {
				return nil, err
			}
			if row == nil {
				break
			}
			s.rows = append(s.rows, row)
		}
		var sortErr error
		sort.SliceStable(s.rows, func(i, j int) bool {
			for _, k := range s.node.Keys {
				a, err := EvalRow(k.Expr, s.rows[i])
				if err != nil {
					sortErr = err
					return false
				}
				b, err := EvalRow(k.Expr, s.rows[j])
				if err != nil {
					sortErr = err
					return false
				}
				if a.Null || b.Null {
					if a.Null && b.Null {
						continue
					}
					return a.Null == k.NullsFirst
				}
				c := types.Compare(a, b)
				if c == 0 {
					continue
				}
				if k.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		if sortErr != nil {
			return nil, sortErr
		}
		s.built = true
	}
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	row := s.rows[s.pos]
	s.pos++
	return row, nil
}

func (s *rowSort) Close(ctx *Context) { s.child.Close(ctx) }

// rowAgg is the tuple-at-a-time hash aggregate. Documented divergence
// from the vectorized engine: as the E6 ablation baseline it does not
// enforce the memory budget and never spills — its whole point is to
// measure the unoptimized per-row execution model, and threading the
// partitioned spill machinery (agg_spill.go) through it would time that
// machinery instead. Budgeted workloads belong to the vectorized engine;
// the differential tests therefore compare the two only on unbudgeted
// databases.
type rowAgg struct {
	child  RowIterator
	node   *plan.AggNode
	groups map[string]*aggState
	order  []string
	pos    int
	built  bool
}

func (a *rowAgg) Open(ctx *Context) error {
	a.groups = make(map[string]*aggState)
	a.order = nil
	a.pos = 0
	a.built = false
	return a.child.Open(ctx)
}

func (a *rowAgg) NextRow(ctx *Context) ([]types.Value, error) {
	if !a.built {
		if err := a.build(ctx); err != nil {
			return nil, err
		}
		a.built = true
	}
	if a.pos >= len(a.order) {
		return nil, nil
	}
	st := a.groups[a.order[a.pos]]
	a.pos++
	ng := len(a.node.GroupBy)
	out := make([]types.Value, ng+len(a.node.Aggs))
	copy(out, st.groupKey)
	for j, spec := range a.node.Aggs {
		out[ng+j] = finishAgg(spec, &st.accs[j])
	}
	return out, nil
}

func (a *rowAgg) build(ctx *Context) error {
	ng := len(a.node.GroupBy)
	na := len(a.node.Aggs)
	var sb strings.Builder
	for {
		row, err := a.child.NextRow(ctx)
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		gvals := make([]types.Value, ng)
		sb.Reset()
		for i, g := range a.node.GroupBy {
			v, err := EvalRow(g, row)
			if err != nil {
				return err
			}
			gvals[i] = v
			if v.Null {
				sb.WriteString("\x00N")
			} else {
				sb.WriteString("\x01")
				sb.WriteString(v.String())
				sb.WriteString("\x00")
			}
		}
		key := sb.String()
		st, ok := a.groups[key]
		if !ok {
			st = &aggState{groupKey: gvals, accs: make([]accumulator, na)}
			for j, spec := range a.node.Aggs {
				if spec.Distinct {
					st.accs[j].distinct = make(map[string]struct{})
				}
			}
			a.groups[key] = st
			a.order = append(a.order, key)
		}
		for j, spec := range a.node.Aggs {
			if err := updateAggRow(spec, &st.accs[j], row); err != nil {
				return err
			}
		}
	}
	if ng == 0 && len(a.order) == 0 {
		st := &aggState{accs: make([]accumulator, na)}
		a.groups[""] = st
		a.order = append(a.order, "")
	}
	return nil
}

func updateAggRow(spec plan.AggSpec, acc *accumulator, row []types.Value) error {
	if spec.Arg == nil {
		acc.count++
		return nil
	}
	v, err := EvalRow(spec.Arg, row)
	if err != nil {
		return err
	}
	if v.Null {
		return nil
	}
	if acc.distinct != nil {
		// Same encoded-set representation as the vectorized engine; the
		// shared finishAgg folds it deterministically.
		acc.distinct[string(encodeValueKey(nil, v))] = struct{}{}
		return nil
	}
	switch spec.Func {
	case "count":
		acc.count++
	case "sum", "avg":
		acc.count++
		if v.Type == types.Double {
			acc.sumF += v.F64
		} else {
			acc.sumI += v.AsInt()
		}
	case "min", "max":
		if !acc.bestSet {
			acc.best, acc.bestSet = v, true
			return nil
		}
		c := types.Compare(v, acc.best)
		if (spec.Func == "max" && c > 0) || (spec.Func == "min" && c < 0) {
			acc.best = v
		}
	}
	return nil
}

func (a *rowAgg) Close(ctx *Context) {
	a.groups = nil
	a.child.Close(ctx)
}

// EvalRow interprets a bound expression over one boxed row — the
// tuple-at-a-time evaluation the vectorized engine exists to avoid.
func EvalRow(e expr.Expr, row []types.Value) (types.Value, error) {
	switch e := e.(type) {
	case *expr.Const:
		return e.Val, nil
	case *expr.ColRef:
		if e.Idx >= len(row) {
			return types.Value{}, fmt.Errorf("row engine: column %d out of range", e.Idx)
		}
		return row[e.Idx], nil
	case *expr.CastExpr:
		v, err := EvalRow(e.X, row)
		if err != nil {
			return types.Value{}, err
		}
		return v.Cast(e.To)
	case *expr.Neg:
		v, err := EvalRow(e.X, row)
		if err != nil || v.Null {
			return v, err
		}
		switch v.Type {
		case types.Double:
			return types.NewDouble(-v.F64), nil
		case types.Integer:
			return types.NewInt(int32(-v.I64)), nil
		default:
			return types.NewBigInt(-v.I64), nil
		}
	case *expr.Compare:
		l, err := EvalRow(e.L, row)
		if err != nil {
			return types.Value{}, err
		}
		r, err := EvalRow(e.R, row)
		if err != nil {
			return types.Value{}, err
		}
		if l.Null || r.Null {
			return types.NewNull(types.Boolean), nil
		}
		c := types.Compare(l, r)
		var out bool
		switch e.Op {
		case expr.CmpEq:
			out = c == 0
		case expr.CmpNe:
			out = c != 0
		case expr.CmpLt:
			out = c < 0
		case expr.CmpLe:
			out = c <= 0
		case expr.CmpGt:
			out = c > 0
		default:
			out = c >= 0
		}
		return types.NewBool(out), nil
	case *expr.Arith:
		l, err := EvalRow(e.L, row)
		if err != nil {
			return types.Value{}, err
		}
		r, err := EvalRow(e.R, row)
		if err != nil {
			return types.Value{}, err
		}
		if l.Null || r.Null {
			return types.NewNull(e.Typ), nil
		}
		if e.Typ == types.Double {
			lf, rf := l.AsFloat(), r.AsFloat()
			switch e.Op {
			case expr.OpAdd:
				return types.NewDouble(lf + rf), nil
			case expr.OpSub:
				return types.NewDouble(lf - rf), nil
			case expr.OpMul:
				return types.NewDouble(lf * rf), nil
			case expr.OpDiv:
				return types.NewDouble(lf / rf), nil
			default:
				return types.Value{}, fmt.Errorf("%% on DOUBLE")
			}
		}
		li, ri := l.AsInt(), r.AsInt()
		var out int64
		switch e.Op {
		case expr.OpAdd:
			out = li + ri
		case expr.OpSub:
			out = li - ri
		case expr.OpMul:
			out = li * ri
		case expr.OpDiv:
			if ri == 0 {
				return types.Value{}, fmt.Errorf("division by zero")
			}
			out = li / ri
		default:
			if ri == 0 {
				return types.Value{}, fmt.Errorf("modulo by zero")
			}
			out = li % ri
		}
		if e.Typ == types.Integer {
			return types.NewInt(int32(out)), nil
		}
		return types.NewBigInt(out), nil
	case *expr.Logic:
		l, err := EvalRow(e.L, row)
		if err != nil {
			return types.Value{}, err
		}
		r, err := EvalRow(e.R, row)
		if err != nil {
			return types.Value{}, err
		}
		lb, rb := !l.Null && l.Bool, !r.Null && r.Bool
		if e.Op == expr.OpAnd {
			if (!l.Null && !lb) || (!r.Null && !rb) {
				return types.NewBool(false), nil
			}
			if l.Null || r.Null {
				return types.NewNull(types.Boolean), nil
			}
			return types.NewBool(true), nil
		}
		if lb || rb {
			return types.NewBool(true), nil
		}
		if l.Null || r.Null {
			return types.NewNull(types.Boolean), nil
		}
		return types.NewBool(false), nil
	case *expr.Not:
		v, err := EvalRow(e.X, row)
		if err != nil || v.Null {
			return v, err
		}
		return types.NewBool(!v.Bool), nil
	case *expr.IsNull:
		v, err := EvalRow(e.X, row)
		if err != nil {
			return types.Value{}, err
		}
		return types.NewBool(v.Null != e.Not), nil
	default:
		// Rare node types fall back to vectorized evaluation over a
		// single-row chunk.
		one := rowToChunk(row)
		v, err := e.Eval(one)
		if err != nil {
			return types.Value{}, err
		}
		return v.Get(0), nil
	}
}

func rowToChunk(row []types.Value) *vector.Chunk {
	c := &vector.Chunk{Cols: make([]*vector.Vector, len(row))}
	for i, v := range row {
		t := v.Type
		if t == types.Null || t == types.Invalid {
			t = types.BigInt
		}
		vec := vector.NewLen(t, 1)
		vec.Set(0, v)
		c.Cols[i] = vec
	}
	c.SetLen(1)
	return c
}

// compile-time interface checks
var (
	_ RowIterator = (*rowScan)(nil)
	_ RowIterator = (*rowFilter)(nil)
	_ RowIterator = (*rowProject)(nil)
	_ RowIterator = (*rowAgg)(nil)
	_ RowIterator = (*rowLimit)(nil)
)
