package exec

import (
	"repro/internal/expr"
	"repro/internal/extsort"
	"repro/internal/plan"
	"repro/internal/types"
	"repro/internal/vector"
)

// sortOp implements ORDER BY via the external sorter: key columns are
// appended to the payload, rows are sorted (spilling to disk past the
// budget), and the payload columns are streamed back in order.
type sortOp struct {
	child Operator
	node  *plan.SortNode

	iter    *extsort.Iterator
	np      int // payload column count
	started bool
}

func newSortOp(child Operator, n *plan.SortNode) *sortOp {
	return &sortOp{child: child, node: n}
}

func (s *sortOp) Open(ctx *Context) error {
	s.started = false
	s.iter = nil
	return s.child.Open(ctx)
}

func (s *sortOp) Next(ctx *Context) (*vector.Chunk, error) {
	if !s.started {
		if err := s.build(ctx); err != nil {
			return nil, err
		}
		s.started = true
	}
	chunk, err := s.iter.Next()
	if err != nil || chunk == nil {
		return nil, err
	}
	// Strip the appended key columns.
	out := &vector.Chunk{Cols: chunk.Cols[:s.np]}
	out.SetLen(chunk.Len())
	return out, nil
}

func (s *sortOp) build(ctx *Context) error {
	payload := schemaTypes(s.node.Child.Schema())
	s.np = len(payload)
	extTypes := append(append([]types.Type(nil), payload...), keyTypesOf(s.node)...)
	keys := make([]extsort.Key, len(s.node.Keys))
	for i, k := range s.node.Keys {
		keys[i] = extsort.Key{Col: s.np + i, Desc: k.Desc, NullsFirst: k.NullsFirst}
	}
	sorter := extsort.NewSorter(extTypes, keys, ctx.sortBudget(), ctx.TmpDir)
	if ctx.Pool != nil {
		sorter.SetPool(ctx.Pool)
	}
	for {
		chunk, err := s.child.Next(ctx)
		if err != nil {
			return err
		}
		if chunk == nil {
			break
		}
		ext, err := extendWithKeys(chunk, keyExprsOf(s.node))
		if err != nil {
			return err
		}
		if err := sorter.Add(ext); err != nil {
			return err
		}
	}
	iter, err := sorter.Finish()
	if err != nil {
		return err
	}
	recordSortSpill(ctx, s.node, sorter.SpilledBytes())
	s.iter = iter
	return nil
}

func keyTypesOf(n *plan.SortNode) []types.Type {
	out := make([]types.Type, len(n.Keys))
	for i, k := range n.Keys {
		out[i] = k.Expr.Type()
	}
	return out
}

// keyExprsOf returns the sort keys' expressions, ready for
// extendWithKeys (shared with the merge join's run builder).
func keyExprsOf(n *plan.SortNode) []expr.Expr {
	out := make([]expr.Expr, len(n.Keys))
	for i, k := range n.Keys {
		out[i] = k.Expr
	}
	return out
}

func (s *sortOp) Close(ctx *Context) {
	if s.iter != nil {
		s.iter.Close()
		s.iter = nil
	}
	s.child.Close(ctx)
}
