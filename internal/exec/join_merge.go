package exec

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/extsort"
	"repro/internal/plan"
	"repro/internal/types"
	"repro/internal/vector"
)

// mergeJoinOp is the out-of-core sort-merge equi-join (inner only): both
// inputs are extended with their key columns, sorted externally (runs
// spill to disk beyond the budget), and merged. Peak memory is bounded
// by the sort budget instead of the build side's size — the cooperative
// fallback of §4.
type mergeJoinOp struct {
	left, right Operator
	node        *plan.JoinNode
	prefetched  []*vector.Chunk // right chunks already pulled by a failed hash build
	rightOpen   bool            // right child is already open (fallback path)

	nl, nr   int
	nk       int
	outTypes []types.Type

	lIter, rIter *extsort.Iterator
	lCur, rCur   *mergeCursor
	rGroup       []*vector.Chunk // buffered right group with current key
	rGroupRows   int
	queue        []*vector.Chunk
	done         bool
}

func newMergeJoin(left, right Operator, n *plan.JoinNode, prefetched []*vector.Chunk) *mergeJoinOp {
	return &mergeJoinOp{left: left, right: right, node: n, prefetched: prefetched}
}

func (m *mergeJoinOp) Open(ctx *Context) error {
	if m.node.Type == plan.JoinLeft {
		return fmt.Errorf("exec: merge join does not support LEFT joins")
	}
	m.nl = len(m.node.Left.Schema())
	m.nr = len(m.node.Right.Schema())
	m.nk = len(m.node.LeftKeys)
	m.outTypes = schemaTypes(m.node.Schema())

	budget := ctx.sortBudget()
	keys := make([]extsort.Key, m.nk)
	keyTypes := make([]types.Type, m.nk)
	for i, k := range m.node.LeftKeys {
		keyTypes[i] = k.Type()
	}

	// Sort the right side (keys appended after the payload columns).
	rTypes := append(schemaTypes(m.node.Right.Schema()), keyTypes...)
	for i := range keys {
		keys[i] = extsort.Key{Col: m.nr + i}
	}
	rSorter := extsort.NewSorter(rTypes, keys, budget, ctx.TmpDir)
	if ctx.Pool != nil {
		rSorter.SetPool(ctx.Pool)
	}
	feed := func(chunk *vector.Chunk) error {
		ext, err := extendWithKeys(chunk, m.node.RightKeys)
		if err != nil {
			return err
		}
		return rSorter.Add(ext)
	}
	for _, chunk := range m.prefetched {
		if err := feed(chunk); err != nil {
			return err
		}
	}
	m.prefetched = nil
	if m.rightOpen {
		// Fallback from a failed hash build: the right child is already
		// open and partially drained; continue where it stopped.
		if err := drain(ctx, m.right, feed); err != nil {
			return err
		}
	} else if err := openAndDrain(ctx, m.right, feed); err != nil {
		return err
	}
	rIter, err := rSorter.Finish()
	if err != nil {
		return err
	}
	m.rIter = rIter

	// Sort the left side.
	lTypes := append(schemaTypes(m.node.Left.Schema()), keyTypes...)
	lKeys := make([]extsort.Key, m.nk)
	for i := range lKeys {
		lKeys[i] = extsort.Key{Col: m.nl + i}
	}
	lSorter := extsort.NewSorter(lTypes, lKeys, budget, ctx.TmpDir)
	if ctx.Pool != nil {
		lSorter.SetPool(ctx.Pool)
	}
	if err := openAndDrain(ctx, m.left, func(chunk *vector.Chunk) error {
		ext, err := extendWithKeys(chunk, m.node.LeftKeys)
		if err != nil {
			return err
		}
		return lSorter.Add(ext)
	}); err != nil {
		return err
	}
	lIter, err := lSorter.Finish()
	if err != nil {
		return err
	}
	m.lIter = lIter

	m.lCur = &mergeCursor{iter: m.lIter}
	m.rCur = &mergeCursor{iter: m.rIter}
	if err := m.lCur.init(); err != nil {
		return err
	}
	return m.rCur.init()
}

// openAndDrain opens op and feeds every chunk to fn.
func openAndDrain(ctx *Context, op Operator, fn func(*vector.Chunk) error) error {
	if err := op.Open(ctx); err != nil {
		return err
	}
	return drain(ctx, op, fn)
}

// drain feeds every remaining chunk of an already-open operator to fn.
func drain(ctx *Context, op Operator, fn func(*vector.Chunk) error) error {
	for {
		chunk, err := op.Next(ctx)
		if err != nil {
			return err
		}
		if chunk == nil {
			return nil
		}
		if err := fn(chunk); err != nil {
			return err
		}
	}
}

// extendWithKeys appends the evaluated key columns to the chunk.
func extendWithKeys(chunk *vector.Chunk, keys []expr.Expr) (*vector.Chunk, error) {
	out := &vector.Chunk{Cols: make([]*vector.Vector, 0, len(chunk.Cols)+len(keys))}
	out.Cols = append(out.Cols, chunk.Cols...)
	for _, k := range keys {
		v, err := k.Eval(chunk)
		if err != nil {
			return nil, err
		}
		out.Cols = append(out.Cols, v)
	}
	out.SetLen(chunk.Len())
	return out, nil
}

type mergeCursor struct {
	iter  *extsort.Iterator
	chunk *vector.Chunk
	row   int
}

func (c *mergeCursor) init() error { return c.loadIfNeeded() }

func (c *mergeCursor) loadIfNeeded() error {
	for c.chunk == nil || c.row >= c.chunk.Len() {
		next, err := c.iter.Next()
		if err != nil {
			return err
		}
		if next == nil {
			c.chunk = nil
			return nil
		}
		c.chunk = next
		c.row = 0
	}
	return nil
}

func (c *mergeCursor) exhausted() bool { return c.chunk == nil }

func (c *mergeCursor) advance() error {
	c.row++
	return c.loadIfNeeded()
}

// compareCursors compares the current keys of the two sides. Keys
// occupy the trailing nk columns on both sides.
func (m *mergeJoinOp) compareCursors() int {
	for i := 0; i < m.nk; i++ {
		lv := m.lCur.chunk.Cols[m.nl+i]
		rv := m.rCur.chunk.Cols[m.nr+i]
		ln, rn := lv.IsNull(m.lCur.row), rv.IsNull(m.rCur.row)
		if ln || rn {
			// NULL keys never join; order NULLs last so they drain.
			if ln && rn {
				continue
			}
			if ln {
				return 1
			}
			return -1
		}
		c := extsort.CompareRows(
			&vector.Chunk{Cols: []*vector.Vector{lv}},
			m.lCur.row,
			&vector.Chunk{Cols: []*vector.Vector{rv}},
			m.rCur.row,
			[]extsort.Key{{Col: 0}},
		)
		if c != 0 {
			return c
		}
	}
	return 0
}

// keysAreNull reports whether any key of the cursor's current row is
// NULL (such rows never match).
func keysAreNull(c *mergeCursor, payloadCols, nk int) bool {
	for i := 0; i < nk; i++ {
		if c.chunk.Cols[payloadCols+i].IsNull(c.row) {
			return true
		}
	}
	return false
}

func (m *mergeJoinOp) Next(ctx *Context) (*vector.Chunk, error) {
	for len(m.queue) == 0 {
		if m.done {
			return nil, nil
		}
		if err := m.step(); err != nil {
			return nil, err
		}
	}
	out := m.queue[0]
	m.queue = m.queue[1:]
	return out, nil
}

// step advances the merge by one key group.
func (m *mergeJoinOp) step() error {
	for {
		if m.lCur.exhausted() || m.rCur.exhausted() {
			m.done = true
			return nil
		}
		if keysAreNull(m.lCur, m.nl, m.nk) {
			if err := m.lCur.advance(); err != nil {
				return err
			}
			continue
		}
		if keysAreNull(m.rCur, m.nr, m.nk) {
			if err := m.rCur.advance(); err != nil {
				return err
			}
			continue
		}
		c := m.compareCursors()
		switch {
		case c < 0:
			if err := m.lCur.advance(); err != nil {
				return err
			}
		case c > 0:
			if err := m.rCur.advance(); err != nil {
				return err
			}
		default:
			return m.emitGroup()
		}
	}
}

// emitGroup collects the right rows equal to the current key, then
// streams left rows with that key against them.
func (m *mergeJoinOp) emitGroup() error {
	// Snapshot the key from the left cursor (values survive advancing).
	keyVals := make([]types.Value, m.nk)
	for i := 0; i < m.nk; i++ {
		keyVals[i] = m.lCur.chunk.Cols[m.nl+i].Get(m.lCur.row)
	}
	sameKey := func(c *mergeCursor, payloadCols int) bool {
		if c.exhausted() {
			return false
		}
		for i := 0; i < m.nk; i++ {
			col := c.chunk.Cols[payloadCols+i]
			if col.IsNull(c.row) {
				return false
			}
			if types.Compare(col.Get(c.row), keyVals[i]) != 0 {
				return false
			}
		}
		return true
	}

	// Buffer the right group (bounded by key-group size).
	rTypes := make([]types.Type, m.nr)
	for i := 0; i < m.nr; i++ {
		rTypes[i] = m.rCur.chunk.Cols[i].Type
	}
	group := vector.NewChunk(rTypes)
	var groups []*vector.Chunk
	for sameKey(m.rCur, m.nr) {
		row := group.Len()
		group.SetLen(row + 1)
		for ci := 0; ci < m.nr; ci++ {
			if m.rCur.chunk.Cols[ci].IsNull(m.rCur.row) {
				group.Cols[ci].SetNull(row)
			} else {
				group.Cols[ci].Set(row, m.rCur.chunk.Cols[ci].Get(m.rCur.row))
			}
		}
		if group.Len() == vector.ChunkCapacity {
			groups = append(groups, group)
			group = vector.NewChunk(rTypes)
		}
		if err := m.rCur.advance(); err != nil {
			return err
		}
	}
	if group.Len() > 0 {
		groups = append(groups, group)
	}

	out := vector.NewChunk(m.outTypes)
	for sameKey(m.lCur, m.nl) {
		for _, g := range groups {
			for gr := 0; gr < g.Len(); gr++ {
				row := out.Len()
				out.SetLen(row + 1)
				for c := 0; c < m.nl; c++ {
					if m.lCur.chunk.Cols[c].IsNull(m.lCur.row) {
						out.Cols[c].SetNull(row)
					} else {
						out.Cols[c].Set(row, m.lCur.chunk.Cols[c].Get(m.lCur.row))
					}
				}
				for c := 0; c < m.nr; c++ {
					if g.Cols[c].IsNull(gr) {
						out.Cols[m.nl+c].SetNull(row)
					} else {
						out.Cols[m.nl+c].Set(row, g.Cols[c].Get(gr))
					}
				}
				if out.Len() == vector.ChunkCapacity {
					if err := m.flushFiltered(out); err != nil {
						return err
					}
					out = vector.NewChunk(m.outTypes)
				}
			}
		}
		if err := m.lCur.advance(); err != nil {
			return err
		}
	}
	return m.flushFiltered(out)
}

func (m *mergeJoinOp) flushFiltered(out *vector.Chunk) error {
	if out.Len() == 0 {
		return nil
	}
	if m.node.Extra != nil {
		mask, err := m.node.Extra.Eval(out)
		if err != nil {
			return err
		}
		sel := expr.SelectTrue(mask, nil)
		if len(sel) == 0 {
			return nil
		}
		if len(sel) < out.Len() {
			filtered := vector.NewChunk(m.outTypes)
			out.CompactInto(filtered, sel)
			out = filtered
		}
	}
	m.queue = append(m.queue, out)
	return nil
}

func (m *mergeJoinOp) Close(ctx *Context) {
	if m.lIter != nil {
		m.lIter.Close()
	}
	if m.rIter != nil {
		m.rIter.Close()
	}
	m.left.Close(ctx)
	m.right.Close(ctx)
}
