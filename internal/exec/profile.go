package exec

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/plan"
	"repro/internal/vector"
)

// OpProfile is one operator's slot in a query profile. The profile tree
// mirrors the optimized plan tree — not the physical operator tree — so
// its shape is identical at every thread count; workers of a parallel
// pipeline all add into the same slot's atomics, and row counts come
// out equal to the sequential run's by the engine's determinism
// guarantee.
type OpProfile struct {
	Name     string
	Children []*OpProfile

	// WallNs is inclusive wall time observed at the operator boundary
	// (Open+Next+Close, children included). Pipeline-collapsed operators
	// report BusyNs instead: the summed worker time spent scanning and
	// running stages.
	WallNs atomic.Int64
	BusyNs atomic.Int64

	Rows    atomic.Int64
	Chunks  atomic.Int64
	Morsels atomic.Int64

	SegsScanned atomic.Int64
	SegsSkipped atomic.Int64
	// SegsEncoded counts scanned segments that executed encoded;
	// DecodedRows vs SelectedRows contrasts rows materialized against
	// rows emitted — equal on the encoded path (late materialization),
	// decoded >= selected on the full-decode path.
	SegsEncoded  atomic.Int64
	DecodedRows  atomic.Int64
	SelectedRows atomic.Int64

	SpillBytes atomic.Int64
	SpillParts atomic.Int64
}

// Profiler collects one query's profile. A nil *Profiler is the "off"
// state: every hook is a nil check and no allocation happens anywhere
// on the query path.
type Profiler struct {
	Root  *OpProfile
	slots map[plan.Node]*OpProfile
}

// NewProfiler builds the profile tree mirroring an optimized plan.
func NewProfiler(root plan.Node) *Profiler {
	p := &Profiler{slots: make(map[plan.Node]*OpProfile)}
	p.Root = p.mirror(root)
	return p
}

func (p *Profiler) mirror(n plan.Node) *OpProfile {
	slot := &OpProfile{Name: n.Explain()}
	p.slots[n] = slot
	for _, c := range n.Children() {
		slot.Children = append(slot.Children, p.mirror(c))
	}
	return slot
}

// Slot returns the profile slot for a plan node, or nil when profiling
// is off (nil receiver) or the node is not part of the mirrored plan.
func (p *Profiler) Slot(n plan.Node) *OpProfile {
	if p == nil {
		return nil
	}
	return p.slots[n]
}

// wrap decorates a physical operator with its plan node's profile slot.
// countRows=false is for operators whose output rows are already
// counted by pipeline stages (the exchange) — the wrapper then records
// wall time only.
func (p *Profiler) wrap(op Operator, n plan.Node, countRows bool) Operator {
	slot := p.Slot(n)
	if slot == nil {
		return op
	}
	return &profOp{inner: op, slot: slot, countRows: countRows}
}

// profOp times an operator at its pull boundary and counts the chunks
// it emits. Wall time is inclusive of children, like every EXPLAIN
// ANALYZE the authors have ever read.
type profOp struct {
	inner     Operator
	slot      *OpProfile
	countRows bool
}

func (p *profOp) Open(ctx *Context) error {
	t0 := time.Now()
	err := p.inner.Open(ctx)
	p.slot.WallNs.Add(time.Since(t0).Nanoseconds())
	return err
}

func (p *profOp) Next(ctx *Context) (*vector.Chunk, error) {
	t0 := time.Now()
	chunk, err := p.inner.Next(ctx)
	p.slot.WallNs.Add(time.Since(t0).Nanoseconds())
	if chunk != nil && p.countRows {
		p.slot.Rows.Add(int64(chunk.Len()))
		p.slot.Chunks.Add(1)
	}
	return chunk, err
}

func (p *profOp) Close(ctx *Context) {
	t0 := time.Now()
	p.inner.Close(ctx)
	p.slot.WallNs.Add(time.Since(t0).Nanoseconds())
}

// profFactory wraps a stage factory so every chunk the stage emits is
// counted into slot. Stage wrapping is how pipeline-collapsed plan
// nodes (filters and projections that became morsel-pipeline or
// exchange stages) keep per-node row counts that match the sequential
// operators exactly. Row-transparent wrapping only — never applied to
// sliceStage implementors.
func profFactory(slot *OpProfile, f stageFactory) stageFactory {
	if slot == nil {
		return f
	}
	return func() stage { return &profStage{inner: f(), slot: slot} }
}

type profStage struct {
	inner stage
	slot  *OpProfile
}

func (s *profStage) run(ctx *Context, c *vector.Chunk, emit func(*vector.Chunk) error) error {
	return s.inner.run(ctx, c, func(out *vector.Chunk) error {
		s.slot.Rows.Add(int64(out.Len()))
		s.slot.Chunks.Add(1)
		return emit(out)
	})
}

// recordSortSpill books bytes an operator's external sorters spilled:
// into the engine-wide counter, the query's stats (slow-query log) and
// the operator's profile slot. All three sinks are optional.
func recordSortSpill(ctx *Context, n plan.Node, bytes int64) {
	if bytes <= 0 {
		return
	}
	if ctx.Stats != nil {
		ctx.Stats.SortSpilledBytes.Add(bytes)
	}
	if ctx.QStats != nil {
		ctx.QStats.SpillBytes.Add(bytes)
	}
	if slot := ctx.Prof.Slot(n); slot != nil {
		slot.SpillBytes.Add(bytes)
	}
}

// QueryStats is the per-query roll-up consulted by the slow-query log.
// Allocated only when profiling or the slow-query log is active.
type QueryStats struct {
	SpillBytes atomic.Int64
}

// OpProfileSnap is the plain (JSON-marshalable) snapshot of a profile
// slot, taken after the query finished.
type OpProfileSnap struct {
	Name            string           `json:"name"`
	WallNs          int64            `json:"wall_ns,omitempty"`
	BusyNs          int64            `json:"busy_ns,omitempty"`
	Rows            int64            `json:"rows"`
	Chunks          int64            `json:"chunks,omitempty"`
	Morsels         int64            `json:"morsels,omitempty"`
	SegmentsScanned int64            `json:"segments_scanned,omitempty"`
	SegmentsSkipped int64            `json:"segments_skipped,omitempty"`
	SegmentsEncoded int64            `json:"segments_encoded,omitempty"`
	DecodedRows     int64            `json:"decoded_rows,omitempty"`
	SelectedRows    int64            `json:"selected_rows,omitempty"`
	SpillBytes      int64            `json:"spill_bytes,omitempty"`
	SpillPartitions int64            `json:"spill_partitions,omitempty"`
	Children        []*OpProfileSnap `json:"children,omitempty"`
}

// Snapshot returns the profile tree as plain values.
func (p *Profiler) Snapshot() *OpProfileSnap {
	if p == nil || p.Root == nil {
		return nil
	}
	return snapOp(p.Root)
}

func snapOp(o *OpProfile) *OpProfileSnap {
	s := &OpProfileSnap{
		Name:            o.Name,
		WallNs:          o.WallNs.Load(),
		BusyNs:          o.BusyNs.Load(),
		Rows:            o.Rows.Load(),
		Chunks:          o.Chunks.Load(),
		Morsels:         o.Morsels.Load(),
		SegmentsScanned: o.SegsScanned.Load(),
		SegmentsSkipped: o.SegsSkipped.Load(),
		SegmentsEncoded: o.SegsEncoded.Load(),
		DecodedRows:     o.DecodedRows.Load(),
		SelectedRows:    o.SelectedRows.Load(),
		SpillBytes:      o.SpillBytes.Load(),
		SpillPartitions: o.SpillParts.Load(),
	}
	for _, c := range o.Children {
		s.Children = append(s.Children, snapOp(c))
	}
	return s
}

// Totals sums the counters the engine also tracks globally, so callers
// can reconcile a set of per-query profiles against the metrics
// registry.
func (s *OpProfileSnap) Totals() (segsScanned, segsSkipped, spillBytes int64) {
	if s == nil {
		return 0, 0, 0
	}
	segsScanned, segsSkipped, spillBytes = s.SegmentsScanned, s.SegmentsSkipped, s.SpillBytes
	for _, c := range s.Children {
		a, b, sp := c.Totals()
		segsScanned += a
		segsSkipped += b
		spillBytes += sp
	}
	return segsScanned, segsSkipped, spillBytes
}

// WriteTree renders the snapshot as an indented text tree — the body of
// EXPLAIN ANALYZE.
func (s *OpProfileSnap) WriteTree(sb *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		sb.WriteString("  ")
	}
	sb.WriteString(s.Name)
	sb.WriteString("  [")
	fmt.Fprintf(sb, "rows=%d", s.Rows)
	if ns := s.WallNs; ns > 0 {
		fmt.Fprintf(sb, " time=%s", fmtDur(ns))
	}
	if ns := s.BusyNs; ns > 0 {
		fmt.Fprintf(sb, " busy=%s", fmtDur(ns))
	}
	if s.Morsels > 0 {
		fmt.Fprintf(sb, " morsels=%d", s.Morsels)
	}
	if s.SegmentsScanned > 0 || s.SegmentsSkipped > 0 {
		fmt.Fprintf(sb, " segs=%d/%d scanned/skipped", s.SegmentsScanned, s.SegmentsSkipped)
	}
	if s.SegmentsEncoded > 0 {
		fmt.Fprintf(sb, " enc=%d", s.SegmentsEncoded)
	}
	if s.DecodedRows > 0 || s.SelectedRows > 0 {
		fmt.Fprintf(sb, " decoded=%d selected=%d", s.DecodedRows, s.SelectedRows)
	}
	if s.SpillBytes > 0 {
		fmt.Fprintf(sb, " spilled=%dB", s.SpillBytes)
	}
	if s.SpillPartitions > 0 {
		fmt.Fprintf(sb, " spill_parts=%d", s.SpillPartitions)
	}
	sb.WriteString("]\n")
	for _, c := range s.Children {
		c.WriteTree(sb, depth+1)
	}
}

func fmtDur(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

// FmtDur renders a nanosecond span the way the profile tree does
// (callers composing EXPLAIN ANALYZE phase lines).
func FmtDur(ns int64) string { return fmtDur(ns) }
