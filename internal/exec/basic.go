package exec

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/table"
	"repro/internal/types"
	"repro/internal/vector"
)

// ---- scan ----

// scanOp reads a base table through an MVCC snapshot scanner, applying
// the pushed-down filter inside the scan.
type scanOp struct {
	node    *plan.ScanNode
	scanner *table.Scanner
	selBuf  []int
}

func newScanOp(n *plan.ScanNode) *scanOp { return &scanOp{node: n} }

// scanOptions assembles the table-layer options for a scan node: the
// projected columns, the zone-map-eligible conjuncts of the pushed
// filter (unless the context disables skipping) and the database-shared
// segment counters.
func scanOptions(ctx *Context, n *plan.ScanNode) table.ScanOptions {
	opts := table.ScanOptions{Columns: n.Columns, WithRowIDs: n.WithRowID}
	if !ctx.DisableZoneMaps {
		opts.ZoneFilters = plan.ScanZoneFilters(n)
		opts.EncodedExec = !ctx.DisableEncodedExec
	}
	if ctx.Stats != nil {
		opts.SegsScanned = &ctx.Stats.SegmentsScanned
		opts.SegsSkipped = &ctx.Stats.SegmentsSkipped
		opts.SegsEncoded = &ctx.Stats.SegmentsEncodedExec
		opts.RowsEncSelected = &ctx.Stats.RowsEncodedSelected
	}
	if slot := ctx.Prof.Slot(n); slot != nil {
		opts.ProfSegsScanned = &slot.SegsScanned
		opts.ProfSegsSkipped = &slot.SegsSkipped
		opts.ProfSegsEncoded = &slot.SegsEncoded
		opts.ProfDecodedRows = &slot.DecodedRows
		opts.ProfSelectedRows = &slot.SelectedRows
	}
	return opts
}

func (s *scanOp) Open(ctx *Context) error {
	sc, err := s.node.Table.Data.NewScanner(ctx.Txn, scanOptions(ctx, s.node))
	if err != nil {
		return err
	}
	s.scanner = sc
	return nil
}

func (s *scanOp) Next(ctx *Context) (*vector.Chunk, error) {
	for {
		chunk, err := s.scanner.Next()
		if err != nil || chunk == nil {
			return nil, err
		}
		if s.node.Filter == nil {
			return chunk, nil
		}
		mask, err := s.node.Filter.Eval(chunk)
		if err != nil {
			return nil, err
		}
		s.selBuf = expr.SelectTrue(mask, s.selBuf)
		if len(s.selBuf) == 0 {
			continue
		}
		if len(s.selBuf) == chunk.Len() {
			return chunk, nil
		}
		out := vector.NewChunk(chunk.Types())
		chunk.CompactInto(out, s.selBuf)
		return out, nil
	}
}

func (s *scanOp) Close(ctx *Context) {
	if s.scanner != nil {
		s.scanner.Close()
		s.scanner = nil
	}
}

// ---- filter ----

type filterOp struct {
	child  Operator
	cond   expr.Expr
	selBuf []int
}

func (f *filterOp) Open(ctx *Context) error { return f.child.Open(ctx) }

func (f *filterOp) Next(ctx *Context) (*vector.Chunk, error) {
	for {
		chunk, err := f.child.Next(ctx)
		if err != nil || chunk == nil {
			return nil, err
		}
		mask, err := f.cond.Eval(chunk)
		if err != nil {
			return nil, err
		}
		f.selBuf = expr.SelectTrue(mask, f.selBuf)
		if len(f.selBuf) == 0 {
			continue
		}
		if len(f.selBuf) == chunk.Len() {
			return chunk, nil
		}
		out := vector.NewChunk(chunk.Types())
		chunk.CompactInto(out, f.selBuf)
		return out, nil
	}
}

func (f *filterOp) Close(ctx *Context) { f.child.Close(ctx) }

// ---- project ----

type projectOp struct {
	child Operator
	exprs []expr.Expr
	types []types.Type
}

func (p *projectOp) Open(ctx *Context) error { return p.child.Open(ctx) }

func (p *projectOp) Next(ctx *Context) (*vector.Chunk, error) {
	chunk, err := p.child.Next(ctx)
	if err != nil || chunk == nil {
		return nil, err
	}
	out := &vector.Chunk{Cols: make([]*vector.Vector, len(p.exprs))}
	for i, e := range p.exprs {
		v, err := e.Eval(chunk)
		if err != nil {
			return nil, err
		}
		out.Cols[i] = v
	}
	out.SetLen(chunk.Len())
	return out, nil
}

func (p *projectOp) Close(ctx *Context) { p.child.Close(ctx) }

// ---- values ----

type valuesOp struct {
	node *plan.ValuesNode
	pos  int
}

func (v *valuesOp) Open(ctx *Context) error {
	v.pos = 0
	return nil
}

func (v *valuesOp) Next(ctx *Context) (*vector.Chunk, error) {
	if v.pos >= len(v.node.Rows) {
		return nil, nil
	}
	out := vector.NewChunk(schemaTypes(v.node.Cols))
	for v.pos < len(v.node.Rows) && out.Len() < vector.ChunkCapacity {
		out.AppendRow(v.node.Rows[v.pos]...)
		v.pos++
	}
	return out, nil
}

func (v *valuesOp) Close(ctx *Context) {}

// ---- limit ----

type limitOp struct {
	child   Operator
	limit   int64
	offset  int64
	skipped int64
	emitted int64
}

func (l *limitOp) Open(ctx *Context) error {
	l.skipped, l.emitted = 0, 0
	return l.child.Open(ctx)
}

func (l *limitOp) Next(ctx *Context) (*vector.Chunk, error) {
	for {
		if l.limit >= 0 && l.emitted >= l.limit {
			return nil, nil
		}
		chunk, err := l.child.Next(ctx)
		if err != nil || chunk == nil {
			return nil, err
		}
		n := int64(chunk.Len())
		// Apply OFFSET.
		if l.skipped < l.offset {
			if l.skipped+n <= l.offset {
				l.skipped += n
				continue
			}
			drop := int(l.offset - l.skipped)
			l.skipped = l.offset
			sel := make([]int, 0, chunk.Len()-drop)
			for i := drop; i < chunk.Len(); i++ {
				sel = append(sel, i)
			}
			out := vector.NewChunk(chunk.Types())
			chunk.CompactInto(out, sel)
			chunk = out
			n = int64(chunk.Len())
		}
		if l.limit >= 0 && l.emitted+n > l.limit {
			keep := int(l.limit - l.emitted)
			sel := make([]int, keep)
			for i := range sel {
				sel[i] = i
			}
			out := vector.NewChunk(chunk.Types())
			chunk.CompactInto(out, sel)
			chunk = out
			n = int64(keep)
		}
		l.emitted += n
		return chunk, nil
	}
}

func (l *limitOp) Close(ctx *Context) { l.child.Close(ctx) }

// ---- union all ----

type unionOp struct {
	inputs []Operator
	cur    int
}

func (u *unionOp) Open(ctx *Context) error {
	u.cur = 0
	for _, in := range u.inputs {
		if err := in.Open(ctx); err != nil {
			return err
		}
	}
	return nil
}

func (u *unionOp) Next(ctx *Context) (*vector.Chunk, error) {
	for u.cur < len(u.inputs) {
		chunk, err := u.inputs[u.cur].Next(ctx)
		if err != nil {
			return nil, err
		}
		if chunk != nil {
			return chunk, nil
		}
		u.cur++
	}
	return nil, nil
}

func (u *unionOp) Close(ctx *Context) {
	for _, in := range u.inputs {
		in.Close(ctx)
	}
}

// ---- insert / update / delete ----

type insertOp struct {
	child Operator
	table *catalog.Table
	done  bool
	count int64
}

func (i *insertOp) Open(ctx *Context) error { return i.child.Open(ctx) }

func (i *insertOp) Next(ctx *Context) (*vector.Chunk, error) {
	if i.done {
		return nil, nil
	}
	i.done = true
	notNull := make([]int, 0)
	for idx, col := range i.table.Columns {
		if col.NotNull {
			notNull = append(notNull, idx)
		}
	}
	for {
		chunk, err := i.child.Next(ctx)
		if err != nil {
			return nil, err
		}
		if chunk == nil {
			break
		}
		for _, c := range notNull {
			col := chunk.Cols[c]
			for r := 0; r < chunk.Len(); r++ {
				if col.IsNull(r) {
					return nil, fmt.Errorf("NOT NULL constraint violated: column %q", i.table.Columns[c].Name)
				}
			}
		}
		if err := i.table.Data.Append(ctx.Txn, chunk); err != nil {
			return nil, err
		}
		if ctx.Logger != nil {
			ctx.Logger.LogInsert(ctx.Txn, i.table.Name, chunk)
		}
		i.count += int64(chunk.Len())
	}
	return countChunk(i.count), nil
}

func (i *insertOp) Close(ctx *Context) { i.child.Close(ctx) }

type updateOp struct {
	child Operator
	node  *plan.UpdateNode
	done  bool
}

func (u *updateOp) Open(ctx *Context) error { return u.child.Open(ctx) }

func (u *updateOp) Next(ctx *Context) (*vector.Chunk, error) {
	if u.done {
		return nil, nil
	}
	u.done = true
	// Materialize all (rowid, new values) pairs before touching the
	// table: the scan must not observe its own updates (Halloween
	// problem).
	var rowIDs []int64
	newVals := make([]*vector.Vector, len(u.node.SetExprs))
	for i, e := range u.node.SetExprs {
		newVals[i] = vector.New(e.Type(), 0)
	}
	ridIdx := -1
	for {
		chunk, err := u.child.Next(ctx)
		if err != nil {
			return nil, err
		}
		if chunk == nil {
			break
		}
		if ridIdx < 0 {
			ridIdx = chunk.NumCols() - 1
		}
		rid := chunk.Cols[ridIdx]
		for r := 0; r < chunk.Len(); r++ {
			rowIDs = append(rowIDs, rid.I64[r])
		}
		for i, e := range u.node.SetExprs {
			v, err := e.Eval(chunk)
			if err != nil {
				return nil, err
			}
			newVals[i].AppendRange(v, 0, chunk.Len())
		}
	}
	tbl := u.node.Table
	for i, colIdx := range u.node.SetCols {
		if tbl.Columns[colIdx].NotNull {
			for r := 0; r < newVals[i].Len(); r++ {
				if newVals[i].IsNull(r) {
					return nil, fmt.Errorf("NOT NULL constraint violated: column %q", tbl.Columns[colIdx].Name)
				}
			}
		}
	}
	var count int64
	for i, colIdx := range u.node.SetCols {
		n, err := tbl.Data.Update(ctx.Txn, colIdx, rowIDs, newVals[i])
		if err != nil {
			return nil, err
		}
		if ctx.Logger != nil {
			ctx.Logger.LogUpdate(ctx.Txn, tbl.Name, colIdx, rowIDs, newVals[i])
		}
		count = n
	}
	if len(u.node.SetCols) == 0 {
		count = 0
	}
	return countChunk(count), nil
}

func (u *updateOp) Close(ctx *Context) { u.child.Close(ctx) }

type deleteOp struct {
	child Operator
	table *catalog.Table
	done  bool
}

func (d *deleteOp) Open(ctx *Context) error { return d.child.Open(ctx) }

func (d *deleteOp) Next(ctx *Context) (*vector.Chunk, error) {
	if d.done {
		return nil, nil
	}
	d.done = true
	var rowIDs []int64
	for {
		chunk, err := d.child.Next(ctx)
		if err != nil {
			return nil, err
		}
		if chunk == nil {
			break
		}
		rid := chunk.Cols[chunk.NumCols()-1]
		for r := 0; r < chunk.Len(); r++ {
			rowIDs = append(rowIDs, rid.I64[r])
		}
	}
	count, err := d.table.Data.Delete(ctx.Txn, rowIDs)
	if err != nil {
		return nil, err
	}
	if ctx.Logger != nil && len(rowIDs) > 0 {
		ctx.Logger.LogDelete(ctx.Txn, d.table.Name, rowIDs)
	}
	return countChunk(count), nil
}

func (d *deleteOp) Close(ctx *Context) { d.child.Close(ctx) }

func countChunk(n int64) *vector.Chunk {
	out := vector.NewChunk([]types.Type{types.BigInt})
	out.AppendRow(types.NewBigInt(n))
	return out
}
