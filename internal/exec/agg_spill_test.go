package exec

import (
	"errors"
	"fmt"
	"math"
	"os"
	"testing"

	"repro/internal/buffer"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/txn"
	"repro/internal/types"
	"repro/internal/vector"
)

// mkAggNode builds
//
//	SELECT v / div, count(*), sum(v), sum(v * 0.25), min(v), count(DISTINCT v % 17)
//	FROM t GROUP BY v / div
//
// over the single-column fact table: an integer sum, a DOUBLE sum (the
// reduction-tree-sensitive case) and a DISTINCT set all in one node.
// Dividing (rather than modding) the sequential v keeps the number of
// distinct groups per morsel bounded by SegRows/div — states the
// in-flight morsel touches can never spill, so a tiny budget must still
// exceed workers x (groups per morsel) x rowEstimate.
func mkAggNode(t *testing.T, n, div int, mgr *txn.Manager) *plan.AggNode {
	t.Helper()
	entry := buildFactTable(t, mgr, n)
	col := func() expr.Expr { return &expr.ColRef{Idx: 0, Typ: types.BigInt} }
	mod := func(m int64) expr.Expr {
		return &expr.Arith{Op: expr.OpMod, L: col(), R: &expr.Const{Val: types.NewBigInt(m)}, Typ: types.BigInt}
	}
	dbl := &expr.Arith{
		Op:  expr.OpMul,
		L:   &expr.CastExpr{X: col(), To: types.Double},
		R:   &expr.Const{Val: types.NewDouble(0.25)},
		Typ: types.Double,
	}
	grp := &expr.Arith{Op: expr.OpDiv, L: col(), R: &expr.Const{Val: types.NewBigInt(int64(div))}, Typ: types.BigInt}
	return &plan.AggNode{
		Child:   &plan.ScanNode{Table: entry, Columns: []int{0}},
		GroupBy: []expr.Expr{grp},
		Names:   []string{"g"},
		Aggs: []plan.AggSpec{
			{Func: "count", Type: types.BigInt, Name: "c"},
			{Func: "sum", Arg: col(), Type: types.BigInt, Name: "s"},
			{Func: "sum", Arg: dbl, Type: types.Double, Name: "sf"},
			{Func: "min", Arg: col(), Type: types.BigInt, Name: "m"},
			{Func: "count", Arg: mod(17), Distinct: true, Type: types.BigInt, Name: "cd"},
		},
	}
}

func renderAgg(t *testing.T, node plan.Node, ctx *Context) string {
	t.Helper()
	op, err := BuildParallel(node, ctx.Threads)
	if err != nil {
		t.Fatal(err)
	}
	out := ""
	for _, c := range collectAll(t, ctx, op) {
		for r := 0; r < c.Len(); r++ {
			out += fmt.Sprint(c.Row(r), ";")
		}
	}
	return out
}

// TestAggSpillMatchesUnbudgeted: a budget tight enough to force
// multi-round spills must not change a single output bit — values, row
// order and DOUBLE reduction trees — at any thread count.
func TestAggSpillMatchesUnbudgeted(t *testing.T) {
	mgr := txn.NewManager(nil)
	node := mkAggNode(t, 60_000, 8, mgr)
	want := renderAgg(t, node, &Context{Txn: mgr.Begin(), Threads: 1, TmpDir: t.TempDir()})
	for _, threads := range []int{1, 2, 8} {
		pool := buffer.NewPool(1<<20, nil)
		ctx := &Context{Txn: mgr.Begin(), Threads: threads, Pool: pool, TmpDir: t.TempDir(), Stats: &Stats{}}
		got := renderAgg(t, node, ctx)
		if got != want {
			t.Fatalf("threads=%d budgeted aggregation diverges:\n got: %.300s\nwant: %.300s", threads, got, want)
		}
		if threads > 1 && ctx.Stats.AggSpillPartitions.Load() == 0 {
			t.Fatalf("threads=%d: no partition spills under a 1MB budget over ~7500 groups", threads)
		}
		if used := pool.Used(); used != 0 {
			t.Fatalf("threads=%d: %d bytes still reserved after Close", threads, used)
		}
	}
}

// TestParAggSpillUsesWorkers: under an enforced budget the parallel
// aggregation must keep fanning out — the old engine degraded to one
// worker — and must take the spilled partition-merge finish. Asserted
// via worker row counters, as the merge split was in PR 4 (the dev
// container is 1-CPU, so wall clock proves nothing).
func TestParAggSpillUsesWorkers(t *testing.T) {
	const rows = 60_000
	mgr := txn.NewManager(nil)
	node := mkAggNode(t, rows, 8, mgr)
	op, err := BuildParallel(node, 8)
	if err != nil {
		t.Fatal(err)
	}
	pa, ok := op.(*parAggOp)
	if !ok {
		t.Fatalf("built %T, want *parAggOp", op)
	}
	pool := buffer.NewPool(1<<20, nil)
	ctx := &Context{Txn: mgr.Begin(), Threads: 8, Pool: pool, TmpDir: t.TempDir(), Stats: &Stats{}}
	if err := op.Open(ctx); err != nil {
		t.Fatal(err)
	}
	groups := 0
	for {
		c, err := op.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if c == nil {
			break
		}
		groups += c.Len()
	}
	workerRows := pa.workerRows()
	mergeGroups := pa.mergeGroups()
	op.Close(ctx)
	if groups != 7500 {
		t.Fatalf("emitted %d groups, want 7500", groups)
	}
	busy := 0
	var total int64
	for _, n := range workerRows {
		if n > 0 {
			busy++
		}
		total += n
	}
	if busy < 2 {
		t.Fatalf("budgeted aggregation accumulated on %d workers (%v), want >= 2", busy, workerRows)
	}
	if total != rows {
		t.Fatalf("workers accumulated %d rows total, want %d (%v)", total, rows, workerRows)
	}
	if mergeGroups == nil {
		t.Fatal("finish took the in-memory path; expected the spilled partition merge")
	}
	mergeBusy, mergeTotal := 0, int64(0)
	for _, n := range mergeGroups {
		if n > 0 {
			mergeBusy++
		}
		mergeTotal += n
	}
	if mergeBusy < 2 {
		t.Fatalf("partition merge ran on %d finish workers (%v), want >= 2", mergeBusy, mergeGroups)
	}
	if mergeTotal != 7500 {
		t.Fatalf("finish workers merged %d groups, want 7500 (%v)", mergeTotal, mergeGroups)
	}
	if ctx.Stats.AggSpillPartitions.Load() == 0 {
		t.Fatal("no spill events recorded")
	}
}

// TestAggSpillEarlyCloseNoLeak: closing a budgeted aggregation before
// draining it must release every pool reservation and every spill-file
// fd — state runs and the finish phase's output-sorter runs alike
// (mirroring the PR 4 extsort early-close test).
func TestAggSpillEarlyCloseNoLeak(t *testing.T) {
	mgr := txn.NewManager(nil)
	node := mkAggNode(t, 60_000, 8, mgr)
	op, err := BuildParallel(node, 4)
	if err != nil {
		t.Fatal(err)
	}
	pa := op.(*parAggOp)
	pool := buffer.NewPool(1<<20, nil)
	ctx := &Context{Txn: mgr.Begin(), Threads: 4, Pool: pool, TmpDir: t.TempDir(), Stats: &Stats{}}
	if err := op.Open(ctx); err != nil {
		t.Fatal(err)
	}
	// One Next builds (accumulate + spill + merge) and emits the first
	// chunk; then abandon the stream.
	if _, err := op.Next(ctx); err != nil {
		t.Fatal(err)
	}
	var files []*os.File
	nruns := 0
	for _, tbl := range pa.tables {
		for p := range tbl.parts {
			nruns += len(tbl.parts[p].runs)
		}
		if tbl.spillFile != nil {
			files = append(files, tbl.spillFile.File())
		}
	}
	if nruns == 0 || len(files) == 0 {
		t.Fatal("no state runs spilled; the fixture no longer exercises the spill path")
	}
	op.Close(ctx)
	if used := pool.Used(); used != 0 {
		t.Fatalf("early close leaked %d reserved bytes", used)
	}
	for _, f := range files {
		if err := f.Close(); !errors.Is(err, os.ErrClosed) {
			t.Fatalf("state-run file still open after Close (close returned %v)", err)
		}
	}
}

// TestAggStateCodecRoundtrip: the spilled-state codec must preserve the
// exact accumulator contents — DOUBLE subtotal leaves bit for bit,
// DISTINCT sets, min/max values — across a round trip.
func TestAggStateCodecRoundtrip(t *testing.T) {
	col := &expr.ColRef{Idx: 0, Typ: types.Double}
	aggs := []plan.AggSpec{
		{Func: "count", Type: types.BigInt},
		{Func: "sum", Arg: col, Type: types.Double},
		{Func: "min", Arg: col, Type: types.Double},
		{Func: "sum", Arg: col, Distinct: true, Type: types.Double},
	}
	st := &aggState{accs: make([]accumulator, len(aggs)), firstPos: packAggPos(7, 42)}
	st.accs[0].count = 12345
	st.accs[1].count = 3
	st.accs[1].subF = []fsub{{seq: 2, sum: 0.1 + 0.2}, {seq: 9, sum: math.Inf(-1)}, {seq: 11, sum: math.NaN()}}
	st.accs[2].bestSet = true
	st.accs[2].best = types.NewDouble(-0.0)
	st.accs[3].distinct = map[string]struct{}{}
	for _, v := range []float64{1.5, -2.25, math.NaN()} {
		k := string(encodeValueKey(nil, types.NewDouble(v)))
		st.accs[3].distinct[k] = struct{}{}
		st.accs[3].distBytes += int64(len(k)) + 16
	}

	payload := encodeAggState(nil, st, aggs)
	got, err := decodeAggState(payload, aggs)
	if err != nil {
		t.Fatal(err)
	}
	if got.firstPos != st.firstPos {
		t.Fatalf("firstPos = %d, want %d", got.firstPos, st.firstPos)
	}
	if got.accs[0].count != 12345 {
		t.Fatalf("count = %d", got.accs[0].count)
	}
	if len(got.accs[1].subF) != 3 {
		t.Fatalf("subF = %v", got.accs[1].subF)
	}
	for i, s := range got.accs[1].subF {
		if s.seq != st.accs[1].subF[i].seq ||
			math.Float64bits(s.sum) != math.Float64bits(st.accs[1].subF[i].sum) {
			t.Fatalf("subF[%d] = %+v, want %+v", i, s, st.accs[1].subF[i])
		}
	}
	if !got.accs[2].bestSet || math.Float64bits(got.accs[2].best.F64) != math.Float64bits(-0.0) {
		t.Fatalf("best = %+v", got.accs[2].best)
	}
	if len(got.accs[3].distinct) != 3 || got.accs[3].distBytes != st.accs[3].distBytes {
		t.Fatalf("distinct = %v (%d bytes)", got.accs[3].distinct, got.accs[3].distBytes)
	}
	// Truncated payloads must error, not panic.
	for cut := 0; cut < len(payload); cut += 3 {
		if _, err := decodeAggState(payload[:cut], aggs); err == nil {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}
}

// TestDecodeGroupKeyRoundtrip: decodeGroupKey must invert encodeKeyRow
// for every group-key type, including NULLs, empty strings and NaN.
func TestDecodeGroupKeyRoundtrip(t *testing.T) {
	ts := []types.Type{types.Boolean, types.Integer, types.BigInt, types.Double, types.Varchar, types.Timestamp}
	rows := [][]types.Value{
		{types.NewBool(true), types.NewInt(-7), types.NewBigInt(1 << 40), types.NewDouble(math.NaN()), types.NewVarchar("héllo"), types.NewTimestamp(99)},
		{types.NewNull(types.Boolean), types.NewNull(types.Integer), types.NewNull(types.BigInt), types.NewDouble(-0.0), types.NewVarchar(""), types.NewNull(types.Timestamp)},
	}
	for _, row := range rows {
		vecs := make([]*vector.Vector, len(ts))
		for i, typ := range ts {
			vecs[i] = vector.New(typ, 1)
			vecs[i].SetLen(1)
			vecs[i].Set(0, row[i])
		}
		key := encodeKeyRow(nil, vecs, 0)
		vals, err := decodeGroupKey(string(key), ts)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(vals) != fmt.Sprint(row) {
			t.Fatalf("roundtrip: got %v, want %v", vals, row)
		}
		// Truncations must error, not panic.
		for cut := 0; cut < len(key); cut += 2 {
			if _, err := decodeGroupKey(string(key[:cut]), ts); err == nil {
				t.Fatalf("truncated key (%d bytes) decoded cleanly", cut)
			}
		}
	}
}

// TestAggSpillRunCorruptionPropagates: a corrupted state run must
// surface as a query error from the finish merge, and Close must still
// release every file and reservation afterwards.
func TestAggSpillRunCorruptionPropagates(t *testing.T) {
	mgr := txn.NewManager(nil)
	node := mkAggNode(t, 60_000, 8, mgr)
	pool := buffer.NewPool(1<<20, nil)
	ctx := &Context{Txn: mgr.Begin(), Threads: 1, Pool: pool, TmpDir: t.TempDir(), Stats: &Stats{}}

	// Drive the table directly so corruption lands between spill and
	// merge: accumulate everything, corrupt one run, then finish.
	tbl := newAggTable(ctx, node, false, 1)
	scan, err := Build(node.Child)
	if err != nil {
		t.Fatal(err)
	}
	if err := scan.Open(ctx); err != nil {
		t.Fatal(err)
	}
	seq := 0
	for {
		c, err := scan.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if c == nil {
			break
		}
		if err := tbl.accumulate(ctx, seq, c); err != nil {
			t.Fatal(err)
		}
		seq++
	}
	scan.Close(ctx)
	if tbl.spills == 0 || tbl.spillFile == nil {
		t.Fatal("no runs spilled")
	}
	// Corrupt the first run's first block-length header: an absurd size
	// the cursor must reject.
	spillF := tbl.spillFile.File()
	if _, err := spillF.WriteAt([]byte{0xff, 0xff, 0xff, 0x7f}, 0); err != nil {
		t.Fatal(err)
	}
	fin, err := finishAggTables(ctx, node, []*aggTable{tbl})
	if err == nil {
		for {
			c, nerr := fin.next()
			if nerr != nil {
				err = nerr
				break
			}
			if c == nil {
				break
			}
		}
		fin.close()
	}
	tbl.close()
	if err == nil {
		t.Fatal("corrupted state run did not error")
	}
	if used := pool.Used(); used != 0 {
		t.Fatalf("error path leaked %d reserved bytes", used)
	}
	if cerr := spillF.Close(); !errors.Is(cerr, os.ErrClosed) {
		t.Fatalf("spill file left open after error close (close returned %v)", cerr)
	}
}
