package exec

import (
	"fmt"
	"sort"

	"repro/internal/plan"
	"repro/internal/table"
	"repro/internal/types"
	"repro/internal/vector"
)

// parAggOp is the parallel hash aggregation pipeline breaker: each
// worker of the child pipeline accumulates into its own thread-local
// hash table (no sharing, no locks on the hot path), and the partials
// are merged once when the pipeline drains. Every group records the
// packed (morsel, row) position of its first appearance; merging keeps
// the minimum, and emission sorts by it — reproducing exactly the
// first-seen group order of the single-threaded aggregate. DISTINCT
// aggregates accumulate only their per-group value sets, which merge by
// set union and fold deterministically at finish.
type parAggOp struct {
	scan *parScanOp
	node *plan.AggNode

	groups   map[string]*aggState
	order    []string
	emitPos  int
	built    bool
	reserved int64
}

func newParAggOp(spec *pipelineSpec, n *plan.AggNode) *parAggOp {
	return &parAggOp{scan: newParScanOp(spec), node: n}
}

// aggWorker is one worker's thread-local accumulation state.
type aggWorker struct {
	groups   map[string]*aggState
	keyBuf   []byte
	stBuf    []*aggState
	reserved int64
}

func (a *parAggOp) Open(ctx *Context) error {
	a.groups = make(map[string]*aggState)
	a.order = nil
	a.emitPos = 0
	a.built = false
	a.reserved = 0
	return nil
}

func (a *parAggOp) Next(ctx *Context) (*vector.Chunk, error) {
	if !a.built {
		if err := a.build(ctx); err != nil {
			return nil, err
		}
		a.built = true
	}
	if a.emitPos >= len(a.order) {
		return nil, nil
	}
	out := vector.NewChunk(schemaTypes(a.node.Schema()))
	ng := len(a.node.GroupBy)
	for a.emitPos < len(a.order) && out.Len() < vector.ChunkCapacity {
		st := a.groups[a.order[a.emitPos]]
		a.emitPos++
		row := out.Len()
		out.SetLen(row + 1)
		for i, gv := range st.groupKey {
			out.Cols[i].Set(row, gv)
		}
		for j, spec := range a.node.Aggs {
			out.Cols[ng+j].Set(row, finishAgg(spec, &st.accs[j]))
		}
	}
	return out, nil
}

func (a *parAggOp) build(ctx *Context) error {
	ng := len(a.node.GroupBy)
	na := len(a.node.Aggs)
	rowEstimate := keyBytesEstimate(groupTypes(a.node)) + int64(na)*48 + 64

	// Thread-local hash tables genuinely hold up to workers×groups
	// states, so under an enforced memory budget a query that fits at
	// threads=1 could fail at N. Keep the budgeted envelope identical
	// to the sequential engine by running one worker; graceful
	// degradation (spilling partials) is a ROADMAP item. The fallback
	// is surfaced, not silent: it counts into the database stats
	// (PRAGMA parallel_agg_fallbacks), is noted by EXPLAIN, and warns.
	if ctx.Pool != nil && ctx.Pool.Limit() > 0 {
		a.scan.limitWorkers = 1
		if ctx.Threads > 1 {
			if ctx.Stats != nil {
				ctx.Stats.AggBudgetFallbacks.Add(1)
			}
			if ctx.Warnf != nil {
				ctx.Warnf("parallel aggregation fell back to 1 worker under memory_limit (thread-local tables would need workers x groups states); see PRAGMA parallel_agg_fallbacks")
			}
		}
	}

	// mkSink runs on the coordinating goroutine, and the partials are
	// only read back after consume has joined every worker, so the
	// workers slice needs no locking.
	var workers []*aggWorker
	_, err := a.scan.consume(ctx, func(w int) func(int, *vector.Chunk) error {
		aw := &aggWorker{groups: make(map[string]*aggState)}
		workers = append(workers, aw)
		return func(seq int, chunk *vector.Chunk) error {
			return a.accumulate(ctx, aw, seq, chunk, rowEstimate)
		}
	})
	for _, aw := range workers {
		a.reserved += aw.reserved
	}
	if err != nil {
		return err
	}

	// Merge the thread-local partials, keeping the earliest first-seen
	// position per group. Pending DOUBLE subtotals are first flushed to
	// the workers' per-morsel lists, then folded in morsel order below —
	// the same reduction tree the sequential aggregate evaluates.
	for _, aw := range workers {
		for _, st := range aw.groups {
			for j := range st.accs {
				st.accs[j].flushF(true)
			}
		}
	}
	for _, aw := range workers {
		for key, st := range aw.groups {
			dst, ok := a.groups[key]
			if !ok {
				a.groups[key] = st
				continue
			}
			if st.firstPos < dst.firstPos {
				dst.firstPos = st.firstPos
			}
			for j := range a.node.Aggs {
				mergeAccumulator(a.node.Aggs[j], &dst.accs[j], &st.accs[j])
			}
		}
	}
	for _, st := range a.groups {
		for j := range st.accs {
			st.accs[j].foldSubF()
		}
	}
	a.order = make([]string, 0, len(a.groups))
	for key := range a.groups {
		a.order = append(a.order, key)
	}
	sort.Slice(a.order, func(i, j int) bool {
		return a.groups[a.order[i]].firstPos < a.groups[a.order[j]].firstPos
	})

	// A global aggregation (no GROUP BY) over zero rows still yields
	// one row: count = 0, other aggregates NULL.
	if ng == 0 && len(a.order) == 0 {
		a.groups[""] = &aggState{accs: make([]accumulator, na)}
		a.order = append(a.order, "")
	}
	return nil
}

// accumulate folds one morsel's chunk into the worker's partial state.
// It mirrors the sequential aggregate's build loop.
func (a *parAggOp) accumulate(ctx *Context, aw *aggWorker, seq int, chunk *vector.Chunk, rowEstimate int64) error {
	ng := len(a.node.GroupBy)
	na := len(a.node.Aggs)
	n := chunk.Len()
	groupVecs := make([]*vector.Vector, ng)
	for i, g := range a.node.GroupBy {
		v, err := g.Eval(chunk)
		if err != nil {
			return err
		}
		groupVecs[i] = v
	}
	argVecs := make([]*vector.Vector, na)
	for j, spec := range a.node.Aggs {
		if spec.Arg != nil {
			v, err := spec.Arg.Eval(chunk)
			if err != nil {
				return err
			}
			argVecs[j] = v
		}
	}
	if cap(aw.stBuf) < n {
		aw.stBuf = make([]*aggState, n)
	}
	states := aw.stBuf[:n]
	for r := 0; r < n; r++ {
		aw.keyBuf = encodeKeyRow(aw.keyBuf[:0], groupVecs, r)
		st, ok := aw.groups[string(aw.keyBuf)]
		if !ok {
			key := string(aw.keyBuf)
			if ctx.Pool != nil {
				if err := ctx.Pool.Reserve(rowEstimate); err != nil {
					return fmt.Errorf("aggregation exceeded memory budget: %w", err)
				}
				aw.reserved += rowEstimate
			}
			st = &aggState{
				groupKey: make([]types.Value, ng),
				accs:     make([]accumulator, na),
				firstPos: packAggPos(seq, r),
			}
			for i := range groupVecs {
				st.groupKey[i] = groupVecs[i].Get(r)
			}
			for j, spec := range a.node.Aggs {
				if spec.Distinct {
					st.accs[j].distinct = make(map[string]struct{})
				}
			}
			aw.groups[key] = st
		}
		states[r] = st
	}
	for j, spec := range a.node.Aggs {
		updateAggChunk(spec, j, states, argVecs[j], int64(seq), true)
	}
	return nil
}

// packAggPos packs a (sequence, row) pair into one ordered int64. The
// 16-bit row field must hold any morsel row index (bounded by
// table.SegRows) and any per-chunk row index (bounded by
// vector.ChunkCapacity — the window operator's extend path); the
// compile-time guards below fail if either bound outgrows it.
func packAggPos(seq, row int) int64 { return int64(seq)<<16 | int64(row) }

var (
	_ [1<<16 - table.SegRows]struct{}
	_ [1<<16 - vector.ChunkCapacity]struct{}
)

// mergeAccumulator folds src into dst. DISTINCT accumulators hold only
// their value sets, so merging is a plain set union (finish folds the
// union in sorted-key order). DOUBLE subtotals are concatenated, not
// summed — foldSubF orders them by morsel afterwards.
func mergeAccumulator(spec plan.AggSpec, dst, src *accumulator) {
	if src.distinct != nil {
		if dst.distinct == nil {
			dst.distinct = src.distinct
		} else {
			for k := range src.distinct {
				dst.distinct[k] = struct{}{}
			}
		}
		return
	}
	dst.count += src.count
	dst.sumI += src.sumI
	dst.subF = append(dst.subF, src.subF...)
	if src.bestSet {
		if !dst.bestSet {
			dst.best = src.best
			dst.bestSet = true
		} else {
			c := types.Compare(src.best, dst.best)
			if (spec.Func == "max" && c > 0) || (spec.Func == "min" && c < 0) {
				dst.best = src.best
			}
		}
	}
}

func (a *parAggOp) Close(ctx *Context) {
	if ctx.Pool != nil && a.reserved > 0 {
		ctx.Pool.Release(a.reserved)
		a.reserved = 0
	}
	a.groups = nil
	a.order = nil
	a.scan.Close(ctx)
}
