package exec

import (
	"repro/internal/plan"
	"repro/internal/table"
	"repro/internal/types"
	"repro/internal/vector"
)

// parAggOp is the parallel hash aggregation pipeline breaker: each
// worker of the child pipeline accumulates into its own thread-local
// partitioned hash table (no sharing, no locks on the hot path), and the
// partials are merged once when the pipeline drains. Every group records
// the packed (morsel, row) position of its first appearance; merging
// keeps the minimum, and emission orders by it — reproducing exactly the
// first-seen group order of the single-threaded aggregate. DISTINCT
// aggregates accumulate only their per-group value sets, which merge by
// set union and fold deterministically at finish.
//
// Under an enforced memory budget the workers spill partitions to
// sorted state runs and the finish phase merges resident partials with
// the runs partition-by-partition across ctx.Threads workers (see
// agg_spill.go) — the memory envelope stays bounded at every worker
// count, so a budget no longer degrades the aggregation to one worker.
type parAggOp struct {
	scan *parScanOp
	node *plan.AggNode

	tables []*aggTable
	fin    *aggFinish
	built  bool
}

func newParAggOp(spec *pipelineSpec, n *plan.AggNode) *parAggOp {
	return &parAggOp{scan: newParScanOp(spec), node: n}
}

func (a *parAggOp) Open(ctx *Context) error {
	a.tables = nil
	a.fin = nil
	a.built = false
	return nil
}

func (a *parAggOp) Next(ctx *Context) (*vector.Chunk, error) {
	if !a.built {
		if err := a.build(ctx); err != nil {
			return nil, err
		}
		a.built = true
	}
	return a.fin.next()
}

func (a *parAggOp) build(ctx *Context) error {
	// Open the source first so the worker count (bounded by morsels) is
	// known and each table's proactive-shed share of the budget reflects
	// the actual number of sibling tables.
	if err := a.scan.Open(ctx); err != nil {
		return err
	}
	// Budget floor: states touched by an in-flight morsel never spill,
	// so every worker must be able to hold one morsel's worth of
	// distinct groups resident. Clamp the worker count to what the
	// budget admits instead of letting reservation hard-fail (EXPLAIN
	// surfaces the clamp as a NOTE).
	if ctx.Pool != nil {
		if lim := ctx.Pool.Limit(); lim > 0 {
			a.scan.maxWorkers = AggWorkersAdmitted(lim, ctx.Threads, a.node)
		}
	}
	workers := a.scan.workerCount(ctx)
	// mkSink runs on the coordinating goroutine, and the partials are
	// only read back after consume has joined every worker, so the
	// tables slice needs no locking.
	_, err := a.scan.consume(ctx, func(w int) func(int, *vector.Chunk) error {
		t := newAggTable(ctx, a.node, true, workers)
		a.tables = append(a.tables, t)
		return func(seq int, chunk *vector.Chunk) error {
			return t.accumulate(ctx, seq, chunk)
		}
	})
	if err != nil {
		return err
	}
	fin, err := finishAggTables(ctx, a.node, a.tables)
	if err != nil {
		return err
	}
	a.fin = fin
	return nil
}

// AggWorkersAdmitted reports how many parallel accumulation workers an
// enforced memory budget admits for this aggregation. States touched by
// the morsel a worker is accumulating can never spill, so in the worst
// case (every morsel row a distinct group) each worker pins SegRows ×
// per-group state bytes that spilling cannot reclaim; admitting only
// limit / that many workers keeps the unspillable total inside the
// budget instead of letting reservation hard-fail mid-query. Real
// workloads repeat groups across rows, so the clamp binds only when the
// budget is within a few morsels' worth of states. EXPLAIN uses the
// same formula to surface the clamp.
func AggWorkersAdmitted(limit int64, threads int, n *plan.AggNode) int {
	if threads < 1 {
		threads = 1
	}
	if limit <= 0 || threads == 1 {
		return threads
	}
	rowEstimate := keyBytesEstimate(groupTypes(n)) + int64(len(n.Aggs))*48 + 64
	floor := int64(table.SegRows) * rowEstimate
	// Keep one floor's worth of headroom: the flat estimate is exact for
	// the states themselves but covers none of the chunk buffers, spill
	// block buffers or resident shed thresholds sharing the budget, and
	// filling the limit to the byte with unspillable state flips the
	// hard floor at the slightest timing skew.
	w := int(limit/floor) - 1
	if w < 1 {
		w = 1
	}
	if w > threads {
		w = threads
	}
	return w
}

// FindAggregate returns the first hash aggregation in the plan, if any
// (EXPLAIN consults it for the worker-clamp NOTE).
func FindAggregate(node plan.Node) *plan.AggNode {
	if n, ok := node.(*plan.AggNode); ok {
		return n
	}
	for _, c := range node.Children() {
		if n := FindAggregate(c); n != nil {
			return n
		}
	}
	return nil
}

// workerRows reports rows accumulated per build worker (test hook).
func (a *parAggOp) workerRows() []int64 {
	out := make([]int64, len(a.tables))
	for i, t := range a.tables {
		out[i] = t.rows
	}
	return out
}

// mergeGroups reports groups merged per finish worker on the spilled
// path (test hook; nil when the finish ran in memory).
func (a *parAggOp) mergeGroups() []int64 {
	if a.fin == nil {
		return nil
	}
	return a.fin.mergeGroups
}

// packAggPos packs a (sequence, row) pair into one ordered int64. The
// 16-bit row field must hold any morsel row index (bounded by
// table.SegRows) and any per-chunk row index (bounded by
// vector.ChunkCapacity — the window operator's extend path); the
// compile-time guards below fail if either bound outgrows it.
func packAggPos(seq, row int) int64 { return int64(seq)<<16 | int64(row) }

var (
	_ [1<<16 - table.SegRows]struct{}
	_ [1<<16 - vector.ChunkCapacity]struct{}
)

// mergeAccumulator folds src into dst. DISTINCT accumulators hold only
// their value sets, so merging is a plain set union (finish folds the
// union in sorted-key order). DOUBLE subtotals are concatenated, not
// summed — foldSubF orders them by morsel afterwards.
func mergeAccumulator(spec plan.AggSpec, dst, src *accumulator) {
	if src.distinct != nil {
		if dst.distinct == nil {
			dst.distinct = src.distinct
			dst.distBytes = src.distBytes
		} else {
			for k := range src.distinct {
				if _, ok := dst.distinct[k]; !ok {
					dst.distinct[k] = struct{}{}
					dst.distBytes += int64(len(k)) + 16
				}
			}
		}
		return
	}
	dst.count += src.count
	dst.sumI += src.sumI
	dst.subF = append(dst.subF, src.subF...)
	if src.bestSet {
		if !dst.bestSet {
			dst.best = src.best
			dst.bestSet = true
		} else {
			c := types.Compare(src.best, dst.best)
			if (spec.Func == "max" && c > 0) || (spec.Func == "min" && c < 0) {
				dst.best = src.best
			}
		}
	}
}

func (a *parAggOp) Close(ctx *Context) {
	if a.fin != nil {
		a.fin.close()
		a.fin = nil
	}
	for _, t := range a.tables {
		t.close()
	}
	a.tables = nil
	a.scan.Close(ctx)
}
