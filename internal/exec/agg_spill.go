package exec

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/buffer"
	"repro/internal/extsort"
	"repro/internal/plan"
	"repro/internal/types"
	"repro/internal/vector"
)

// Partition-wise (grace) hash aggregation. Every accumulation thread —
// the sequential aggOp or one parAggOp pipeline worker — hash-partitions
// its groups into a fixed fan-out of sub-tables on the group-key hash.
// Under an enforced memory budget a partition whose states no longer fit
// is spilled to a sorted-key state run (extsort.StateRun) and its budget
// returned; the finish phase spills each table's resident remainder and
// merges every partition's runs partition-by-partition across
// ctx.Threads workers. This replaces the old degraded mode that pinned
// budgeted parallel aggregation to one worker.
//
// Determinism at every thread count and every budget:
//   - counts, integer sums, min/max and DISTINCT value sets merge
//     order-insensitively (set union; min/max are idempotent folds);
//   - DOUBLE sums retain one subtotal per (group, morsel) — a morsel is
//     processed by exactly one worker and a spill never splits the
//     in-flight morsel's subtotal (states touched by the current morsel
//     are not spillable), so the merged subtotal list has unique morsel
//     seqs and foldSubF replays the sequential reduction tree exactly;
//   - emission orders groups by firstPos, the packed (morsel, row)
//     position of first appearance — unique per group — reproducing the
//     sequential first-seen order; the spilled path routes finished rows
//     through per-worker extsort sorters keyed on firstPos and one
//     MergeFinish stream, so even the output sort is memory-bounded.

// aggFanout is the radix fan-out of the partitioned tables. 16 keeps the
// per-table overhead trivial while letting the finish phase parallelize
// and a spill reclaim ~1/16 of the budget at a time.
const aggFanout = 16

// aggPartOf maps an encoded group key to its partition (FNV-1a). It
// depends only on the key bytes, so every worker routes a group to the
// same partition.
func aggPartOf(key []byte) int {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return int(h & (aggFanout - 1))
}

// aggPart is one radix partition of a thread's hash table: its resident
// states and the sorted state runs spilled so far.
type aggPart struct {
	groups map[string]*aggState
	runs   []*extsort.StateRun
}

// aggTable is one accumulation thread's partitioned hash table. It is
// not safe for concurrent use; the parallel aggregate builds one per
// worker and merges them at finish.
type aggTable struct {
	node        *plan.AggNode
	groupTypes  []types.Type
	rowEstimate int64
	pool        *buffer.Pool
	tmpDir      string
	stats       *Stats
	prof        *OpProfile  // aggregate node's profile slot (nil off)
	qstats      *QueryStats // per-query roll-up for the slow log (nil off)
	// spillable marks an enforced budget: reservation failures spill a
	// partition instead of failing the query.
	spillable bool
	// softCap is this table's share of the budget (limit / 2·tables).
	// Crossing it sheds partitions proactively at the next chunk
	// boundary, so one thread's resident states cannot crowd out its
	// siblings' unspillable in-flight morsels from the shared pool.
	softCap int64
	// retain keeps per-morsel DOUBLE subtotals for the ordered merge
	// (parallel workers always; any table that may spill, since a spilled
	// partial must carry its exact reduction-tree leaves).
	retain bool

	parts    [aggFanout]aggPart
	curTouch int64 // seq+1 of the morsel being accumulated
	// spillFile backs every run this table spills (one fd per thread,
	// however many spill rounds happen); created on first spill.
	spillFile *extsort.StateSpillFile
	keyBuf    []byte
	payBuf    []byte
	stBuf     []*aggState
	reserved  int64
	rows      int64 // rows accumulated (worker-split test hook)
	spills    int64
}

// newAggTable builds one accumulation thread's table. tables is how
// many sibling tables share the budget (1 for the sequential aggOp,
// the worker count for parAggOp), sizing the proactive-shed share so a
// lone sequential aggregate keeps half the budget instead of spilling
// at 1/(2·threads) of it.
func newAggTable(ctx *Context, n *plan.AggNode, retain bool, tables int) *aggTable {
	t := &aggTable{
		node:       n,
		groupTypes: groupTypes(n),
		pool:       ctx.Pool,
		tmpDir:     ctx.TmpDir,
		stats:      ctx.Stats,
		prof:       ctx.Prof.Slot(n),
		qstats:     ctx.QStats,
	}
	t.rowEstimate = keyBytesEstimate(t.groupTypes) + int64(len(n.Aggs))*48 + 64
	t.spillable = ctx.Pool != nil && ctx.Pool.Limit() > 0
	t.retain = retain || t.spillable
	if t.spillable {
		div := int64(2 * tables)
		if div < 2 {
			div = 2
		}
		t.softCap = ctx.Pool.Limit() / div
		if t.softCap < 1 {
			t.softCap = 1
		}
	}
	for p := range t.parts {
		t.parts[p].groups = make(map[string]*aggState)
	}
	return t
}

// accumulate folds one chunk into the table. seq identifies the chunk's
// morsel (sequential callers pass a monotone chunk counter); all chunks
// of one morsel must be accumulated consecutively.
func (t *aggTable) accumulate(ctx *Context, seq int, chunk *vector.Chunk) error {
	ng := len(t.node.GroupBy)
	na := len(t.node.Aggs)
	n := chunk.Len()
	t.curTouch = int64(seq) + 1
	if t.spillable && t.reserved > t.softCap {
		if err := t.shed(); err != nil {
			return err
		}
	}
	groupVecs := make([]*vector.Vector, ng)
	for i, g := range t.node.GroupBy {
		v, err := g.Eval(chunk)
		if err != nil {
			return err
		}
		groupVecs[i] = v
	}
	argVecs := make([]*vector.Vector, na)
	for j, spec := range t.node.Aggs {
		if spec.Arg != nil {
			v, err := spec.Arg.Eval(chunk)
			if err != nil {
				return err
			}
			argVecs[j] = v
		}
	}
	if cap(t.stBuf) < n {
		t.stBuf = make([]*aggState, n)
	}
	states := t.stBuf[:n]
	for r := 0; r < n; r++ {
		t.keyBuf = encodeKeyRow(t.keyBuf[:0], groupVecs, r)
		p := aggPartOf(t.keyBuf)
		part := &t.parts[p]
		// map lookup with string(bytes) is allocation-free; the key is
		// only materialized for new groups.
		st, ok := part.groups[string(t.keyBuf)]
		if !ok {
			key := string(t.keyBuf)
			if err := t.reserve(t.rowEstimate); err != nil {
				return err
			}
			st = &aggState{
				groupKey: make([]types.Value, ng),
				accs:     make([]accumulator, na),
				firstPos: packAggPos(seq, r),
			}
			for i := range groupVecs {
				st.groupKey[i] = groupVecs[i].Get(r)
			}
			for j, spec := range t.node.Aggs {
				if spec.Distinct {
					st.accs[j].distinct = make(map[string]struct{})
				}
			}
			part.groups[key] = st
		}
		st.touch = t.curTouch
		states[r] = st
	}
	for j, spec := range t.node.Aggs {
		updateAggChunk(spec, j, states, argVecs[j], int64(seq), t.retain)
	}
	t.rows += int64(n)
	if t.spillable {
		return t.chargeExtras(states)
	}
	return nil
}

// chargeExtras settles the budget for accumulator growth beyond the flat
// per-group estimate — DOUBLE per-morsel subtotals and DISTINCT value
// sets — for the states the last chunk touched. Without it, a handful of
// long-lived groups could grow far past the budget without ever
// tripping a new-group reservation.
func (t *aggTable) chargeExtras(states []*aggState) error {
	for _, st := range states {
		extra := st.extraBytes()
		if extra == st.accounted {
			continue // duplicate visit in this chunk, or no growth
		}
		delta := extra - st.accounted
		if err := t.reserve(delta); err != nil {
			return err
		}
		st.accounted = extra
	}
	return nil
}

// reserve claims budget, spilling partitions (largest reclaimable first)
// until the reservation fits. States touched by the in-flight morsel are
// never spilled — a spill must not split a (group, morsel) DOUBLE
// subtotal — so a reservation can still fail when a single morsel's
// working set alone exceeds the budget.
func (t *aggTable) reserve(n int64) error {
	if t.pool == nil || n == 0 {
		return nil
	}
	if t.pool.Reserve(n) == nil {
		t.reserved += n
		return nil
	}
	if !t.spillable {
		return fmt.Errorf("aggregation exceeded memory budget: %w", buffer.ErrOutOfMemory)
	}
	for {
		spilled, err := t.spillOne()
		if err != nil {
			return err
		}
		if !spilled {
			return fmt.Errorf("aggregation exceeded memory budget (one morsel's distinct groups alone overflow it): %w", buffer.ErrOutOfMemory)
		}
		if t.pool.Reserve(n) == nil {
			t.reserved += n
			return nil
		}
	}
}

// shed spills partitions until the table is back under its budget
// share. Unlike reserve's failure path it tolerates running out of
// spillable partitions — the in-flight morsel's states legitimately
// stay resident.
func (t *aggTable) shed() error {
	for t.reserved > t.softCap {
		spilled, err := t.spillOne()
		if err != nil {
			return err
		}
		if !spilled {
			return nil
		}
	}
	return nil
}

// spillOne spills the partition with the most reclaimable bytes,
// reporting false when nothing is spillable.
func (t *aggTable) spillOne() (bool, error) {
	best, bestBytes := -1, int64(0)
	for p := range t.parts {
		var b int64
		for _, st := range t.parts[p].groups {
			if st.touch != t.curTouch {
				b += t.rowEstimate + st.accounted
			}
		}
		if b > bestBytes {
			best, bestBytes = p, b
		}
	}
	if best < 0 {
		return false, nil
	}
	return true, t.spillPart(best)
}

// spillPart serializes partition p's spillable states to a sorted-key
// state run and returns their budget.
func (t *aggTable) spillPart(p int) error {
	part := &t.parts[p]
	keys := make([]string, 0, len(part.groups))
	for k, st := range part.groups {
		if st.touch != t.curTouch {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	if t.spillFile == nil {
		sf, err := extsort.NewStateSpillFile(t.tmpDir)
		if err != nil {
			return err
		}
		sf.SetPool(t.pool)
		t.spillFile = sf
	}
	w, err := t.spillFile.NewRun()
	if err != nil {
		return err
	}
	var freed int64
	for _, k := range keys {
		st := part.groups[k]
		for j := range st.accs {
			st.accs[j].flushF(true)
		}
		t.payBuf = encodeAggState(t.payBuf[:0], st, t.node.Aggs)
		if err := w.Append([]byte(k), t.payBuf); err != nil {
			w.Abort()
			return err
		}
		freed += t.rowEstimate + st.accounted
		delete(part.groups, k)
	}
	run, err := w.Finish()
	if err != nil {
		return err
	}
	part.runs = append(part.runs, run)
	t.reserved -= freed
	t.pool.Release(freed)
	t.spills++
	if t.stats != nil {
		t.stats.AggSpillPartitions.Add(1)
		t.stats.AggSpilledBytes.Add(run.Bytes())
	}
	if t.prof != nil {
		t.prof.SpillParts.Add(1)
		t.prof.SpillBytes.Add(run.Bytes())
	}
	if t.qstats != nil {
		t.qstats.SpillBytes.Add(run.Bytes())
	}
	return nil
}

// spillAll spills every partition's remaining resident states. The
// finish phase calls it (nothing is in flight anymore) so the merge
// streams from runs with O(block) memory and the output sorters inherit
// the whole budget.
func (t *aggTable) spillAll() error {
	t.curTouch = 0 // no morsel in flight; every state is spillable
	for p := range t.parts {
		if len(t.parts[p].groups) == 0 {
			continue
		}
		if err := t.spillPart(p); err != nil {
			return err
		}
	}
	return nil
}

// close releases the table's budget and spill file. Idempotent.
func (t *aggTable) close() {
	for p := range t.parts {
		t.parts[p].runs = nil
		t.parts[p].groups = nil
	}
	if t.spillFile != nil {
		t.spillFile.Close()
		t.spillFile = nil
	}
	if t.pool != nil && t.reserved > 0 {
		t.pool.Release(t.reserved)
	}
	t.reserved = 0
}

// ---- spilled-state codec ----

// encodeAggState serializes one group's accumulators. DOUBLE subtotals
// are stored as their exact (morsel seq, bits) leaves and DISTINCT sets
// as sorted encoded values, so a round trip loses nothing the
// deterministic finish fold depends on.
func encodeAggState(buf []byte, st *aggState, aggs []plan.AggSpec) []byte {
	buf = binary.AppendVarint(buf, st.firstPos)
	for j := range aggs {
		acc := &st.accs[j]
		if acc.distinct != nil {
			buf = append(buf, 1)
			keys := make([]string, 0, len(acc.distinct))
			for k := range acc.distinct {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			buf = binary.AppendUvarint(buf, uint64(len(keys)))
			for _, k := range keys {
				buf = binary.AppendUvarint(buf, uint64(len(k)))
				buf = append(buf, k...)
			}
			continue
		}
		buf = append(buf, 0)
		buf = binary.AppendVarint(buf, acc.count)
		buf = binary.AppendVarint(buf, acc.sumI)
		buf = binary.AppendUvarint(buf, uint64(len(acc.subF)))
		for _, s := range acc.subF {
			buf = binary.AppendVarint(buf, s.seq)
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.sum))
		}
		if acc.bestSet {
			buf = append(buf, 1)
			vk := encodeValueKey(nil, acc.best)
			buf = binary.AppendUvarint(buf, uint64(len(vk)))
			buf = append(buf, vk...)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

// stateReader decodes encodeAggState payloads with one sticky error.
type stateReader struct {
	b   []byte
	pos int
	err error
}

func (r *stateReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("agg spill: corrupt state payload")
	}
}

func (r *stateReader) byte() byte {
	if r.err != nil || r.pos >= len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.pos]
	r.pos++
	return v
}

func (r *stateReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.pos:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.pos += n
	return v
}

func (r *stateReader) uvarint() int {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 || v > uint64(len(r.b)) {
		r.fail()
		return 0
	}
	r.pos += n
	return int(v)
}

func (r *stateReader) bytes(n int) []byte {
	if r.err != nil || n < 0 || r.pos+n > len(r.b) {
		r.fail()
		return nil
	}
	v := r.b[r.pos : r.pos+n]
	r.pos += n
	return v
}

func (r *stateReader) u64() uint64 {
	b := r.bytes(8)
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func decodeAggState(payload []byte, aggs []plan.AggSpec) (*aggState, error) {
	r := &stateReader{b: payload}
	st := &aggState{accs: make([]accumulator, len(aggs))}
	st.firstPos = r.varint()
	for j := range aggs {
		acc := &st.accs[j]
		if r.byte() == 1 {
			n := r.uvarint()
			acc.distinct = make(map[string]struct{}, n)
			for i := 0; i < n && r.err == nil; i++ {
				k := string(r.bytes(r.uvarint()))
				acc.distinct[k] = struct{}{}
				acc.distBytes += int64(len(k)) + 16
			}
			continue
		}
		acc.count = r.varint()
		acc.sumI = r.varint()
		ns := r.uvarint()
		acc.subF = make([]fsub, 0, ns)
		for i := 0; i < ns && r.err == nil; i++ {
			seq := r.varint()
			sum := math.Float64frombits(r.u64())
			acc.subF = append(acc.subF, fsub{seq: seq, sum: sum})
		}
		if r.byte() == 1 {
			vk := r.bytes(r.uvarint())
			if r.err == nil {
				acc.best = decodeValueKey(string(vk), aggs[j].Arg.Type())
				acc.bestSet = true
			}
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	return st, nil
}

// ---- finish phase ----

// aggFinish streams the merged groups of one or more aggTables in
// first-seen (firstPos) order. Without spills it emits straight from the
// merged in-memory states; with spills it streams a MergeFinish iterator
// over per-worker firstPos-keyed sorters fed by the partition merges.
type aggFinish struct {
	node   *plan.AggNode
	ng, na int

	states []*aggState // in-memory path, sorted by firstPos
	pos    int

	iter *extsort.Iterator // spilled path

	mergeGroups []int64 // groups merged per finish worker (test hook)
}

// finishAggTables merges the tables (one per accumulation thread) into
// an emission stream. On success ownership of any output-sorter files
// moves to the returned finish; the tables themselves (reservations,
// state runs) stay owned by the caller and must outlive the stream.
func finishAggTables(ctx *Context, node *plan.AggNode, tables []*aggTable) (*aggFinish, error) {
	ng, na := len(node.GroupBy), len(node.Aggs)
	f := &aggFinish{node: node, ng: ng, na: na}

	// Flush pending per-chunk DOUBLE subtotals before any merge.
	spilled := false
	for _, t := range tables {
		if t.spills > 0 {
			spilled = true
		}
		for p := range t.parts {
			for _, st := range t.parts[p].groups {
				for j := range st.accs {
					st.accs[j].flushF(t.retain)
				}
			}
		}
	}

	if !spilled {
		f.states = mergeResidentTables(node, tables)
		if ng == 0 && len(f.states) == 0 {
			f.states = append(f.states, emptyGlobalState(node))
		}
		return f, nil
	}

	// Spill the remaining resident partials too: the merge then streams
	// every partition from sorted runs with O(block) memory, and the
	// budget the resident states held moves to the output sorters (which
	// spill in turn if even the finished groups exceed it).
	for _, t := range tables {
		if err := t.spillAll(); err != nil {
			return nil, err
		}
	}

	// Partition-wise merge across ctx.Threads workers: worker w merges
	// partitions w, w+W, ... and appends finished rows (group values,
	// aggregate results, firstPos) to its own firstPos-keyed sorter.
	// MergeFinish then streams one globally ordered result — the same
	// first-seen order the in-memory path emits, whatever the partition
	// assignment, because firstPos is unique per group.
	outTypes := append(schemaTypes(node.Schema()), types.BigInt)
	sortKeys := []extsort.Key{{Col: ng + na}}
	workers := ctx.Threads
	if workers > aggFanout {
		workers = aggFanout
	}
	if workers < 1 {
		workers = 1
	}
	budget := ctx.sortBudget()
	if budget > 0 && workers > 1 {
		budget /= int64(workers)
		if budget < 1 {
			budget = 1
		}
	}
	sorters := make([]*extsort.Sorter, workers)
	for w := range sorters {
		sorters[w] = extsort.NewSorter(outTypes, sortKeys, budget, ctx.TmpDir)
		if ctx.Pool != nil {
			sorters[w].SetPool(ctx.Pool)
		}
	}
	// Worker w's task merges partitions w, w+W, ... one partition per
	// scheduler step (re-submitting between partitions), so long merges
	// share the pool fairly with other queries.
	f.mergeGroups = make([]int64, workers)
	var (
		mu       sync.Mutex
		firstErr error
	)
	remaining := workers
	done := make(chan struct{})
	q := ctx.queryTasks()
	for w := 0; w < workers; w++ {
		w := w
		p := w
		var task func()
		task = func() {
			mu.Lock()
			stop := firstErr != nil
			mu.Unlock()
			if stop || p >= aggFanout {
				mu.Lock()
				remaining--
				if remaining == 0 {
					close(done)
				}
				mu.Unlock()
				return
			}
			if err := mergeAggPartition(p, node, tables, outTypes, sorters[w], &f.mergeGroups[w]); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				remaining--
				if remaining == 0 {
					close(done)
				}
				mu.Unlock()
				return
			}
			p += workers
			q.Submit(task)
		}
		q.Submit(task)
	}
	<-done
	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		for _, s := range sorters {
			s.Close()
		}
		return nil, err
	}
	iter, err := extsort.MergeFinish(sorters)
	if err != nil {
		for _, s := range sorters {
			s.Close()
		}
		return nil, err
	}
	f.iter = iter
	return f, nil
}

// mergeResidentTables merges the tables' resident states in memory
// (spill-free finish), keeping the earliest first-seen position per
// group. States migrate into the first table's maps; reservation
// ownership stays with the tables. The returned states are sorted by
// first-seen position — the map iteration order they are collected in
// must never reach the emission stream.
func mergeResidentTables(node *plan.AggNode, tables []*aggTable) []*aggState {
	var states []*aggState
	for p := 0; p < aggFanout; p++ {
		base := tables[0].parts[p].groups
		for _, t := range tables[1:] {
			for key, st := range t.parts[p].groups {
				dst, ok := base[key]
				if !ok {
					base[key] = st
					continue
				}
				if st.firstPos < dst.firstPos {
					dst.firstPos = st.firstPos
				}
				for j := range node.Aggs {
					mergeAccumulator(node.Aggs[j], &dst.accs[j], &st.accs[j])
				}
			}
		}
		for _, st := range base {
			for j := range st.accs {
				st.accs[j].foldSubF()
			}
			states = append(states, st)
		}
	}
	sort.Slice(states, func(i, j int) bool { return states[i].firstPos < states[j].firstPos })
	return states
}

// emptyGlobalState is the one row a global aggregation (no GROUP BY)
// yields over zero rows: count = 0, other aggregates NULL.
func emptyGlobalState(node *plan.AggNode) *aggState {
	st := &aggState{accs: make([]accumulator, len(node.Aggs))}
	for j, spec := range node.Aggs {
		if spec.Distinct {
			st.accs[j].distinct = make(map[string]struct{})
		}
	}
	return st
}

// runStateSource streams one spilled run's partial states in key order.
// (Resident states never reach the partition merge: the spilled finish
// path spills every table's remainder first, so runs are the only
// sources.)
type runStateSource struct {
	cur  *extsort.StateCursor
	aggs []plan.AggSpec
	done bool
}

func (s *runStateSource) advance() error {
	ok, err := s.cur.Next()
	if err != nil {
		return err
	}
	s.done = !ok
	return nil
}

func (s *runStateSource) curKey() ([]byte, bool) {
	if s.done {
		return nil, false
	}
	return s.cur.Key(), true
}

func (s *runStateSource) take() (*aggState, error) {
	st, err := decodeAggState(s.cur.State(), s.aggs)
	if err != nil {
		return nil, err
	}
	return st, s.advance()
}

// mergeAggPartition k-way merges one partition's spilled runs across
// all tables in group-key order, folds each group's partials and
// appends the finished row to the worker's output sorter.
func mergeAggPartition(p int, node *plan.AggNode, tables []*aggTable, outTypes []types.Type, sorter *extsort.Sorter, groupsMerged *int64) error {
	ng, na := len(node.GroupBy), len(node.Aggs)
	gts := groupTypes(node)
	var srcs []*runStateSource
	defer func() {
		// Release every cursor's read-back block reservation; drained
		// cursors already did, so this only matters on error exits.
		for _, s := range srcs {
			s.cur.Close()
		}
	}()
	for _, t := range tables {
		for _, run := range t.parts[p].runs {
			rs := &runStateSource{cur: run.Cursor(), aggs: node.Aggs}
			srcs = append(srcs, rs)
			if err := rs.advance(); err != nil {
				return err
			}
		}
	}

	out := vector.NewChunk(outTypes)
	flush := func() error {
		if out.Len() == 0 {
			return nil
		}
		if err := sorter.Add(out); err != nil {
			return err
		}
		out = vector.NewChunk(outTypes)
		return nil
	}
	var minKey []byte
	for {
		// Find the smallest current key, then take-and-merge every source
		// holding it. Merge order between sources is irrelevant: counts,
		// integer sums, min/max and set unions commute, and DOUBLE
		// subtotal lists are re-sorted by morsel seq before folding.
		minKey = minKey[:0]
		found := false
		for _, s := range srcs {
			k, ok := s.curKey()
			if !ok {
				continue
			}
			if !found || bytes.Compare(k, minKey) < 0 {
				minKey = append(minKey[:0], k...)
				found = true
			}
		}
		if !found {
			break
		}
		var merged *aggState
		for _, s := range srcs {
			k, ok := s.curKey()
			if !ok || !bytes.Equal(k, minKey) {
				continue
			}
			st, err := s.take()
			if err != nil {
				return err
			}
			if merged == nil {
				merged = st
				continue
			}
			if st.firstPos < merged.firstPos {
				merged.firstPos = st.firstPos
			}
			for j := range node.Aggs {
				mergeAccumulator(node.Aggs[j], &merged.accs[j], &st.accs[j])
			}
		}
		for j := range merged.accs {
			merged.accs[j].foldSubF()
		}
		if merged.groupKey == nil {
			vals, err := decodeGroupKey(string(minKey), gts)
			if err != nil {
				return err
			}
			merged.groupKey = vals
		}
		row := out.Len()
		out.SetLen(row + 1)
		for i, gv := range merged.groupKey {
			out.Cols[i].Set(row, gv)
		}
		for j, spec := range node.Aggs {
			out.Cols[ng+j].Set(row, finishAgg(spec, &merged.accs[j]))
		}
		out.Cols[ng+na].Set(row, types.NewBigInt(merged.firstPos))
		*groupsMerged++
		if out.Len() == vector.ChunkCapacity {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// next emits the next chunk of finished groups in firstPos order.
func (f *aggFinish) next() (*vector.Chunk, error) {
	if f.iter != nil {
		c, err := f.iter.Next()
		if err != nil || c == nil {
			return nil, err
		}
		// Strip the hidden firstPos sort column.
		out := &vector.Chunk{Cols: c.Cols[:f.ng+f.na]}
		out.SetLen(c.Len())
		return out, nil
	}
	if f.pos >= len(f.states) {
		return nil, nil
	}
	out := vector.NewChunk(schemaTypes(f.node.Schema()))
	for f.pos < len(f.states) && out.Len() < vector.ChunkCapacity {
		st := f.states[f.pos]
		f.pos++
		row := out.Len()
		out.SetLen(row + 1)
		for i, gv := range st.groupKey {
			out.Cols[i].Set(row, gv)
		}
		for j, spec := range f.node.Aggs {
			out.Cols[f.ng+j].Set(row, finishAgg(spec, &st.accs[j]))
		}
	}
	return out, nil
}

// close releases the output-sorter files and reservations. Idempotent;
// the input tables are closed by their owning operator.
func (f *aggFinish) close() {
	if f.iter != nil {
		f.iter.Close()
		f.iter = nil
	}
	f.states = nil
}
