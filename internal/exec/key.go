package exec

import (
	"encoding/binary"
	"math"

	"repro/internal/types"
	"repro/internal/vector"
)

// encodeKeyRow appends a canonical byte encoding of row r across the
// given vectors to buf. Equal rows encode equally; a NULL marker keeps
// NULLs distinct from every value (group-by treats NULLs as equal to
// each other, per SQL).
func encodeKeyRow(buf []byte, vecs []*vector.Vector, r int) []byte {
	for _, v := range vecs {
		if v.IsNull(r) {
			buf = append(buf, 0)
			continue
		}
		buf = append(buf, 1)
		switch v.Type {
		case types.Boolean:
			if v.Bools[r] {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		case types.Integer:
			buf = binary.LittleEndian.AppendUint32(buf, uint32(v.I32[r]))
		case types.BigInt, types.Timestamp:
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v.I64[r]))
		case types.Double:
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F64[r]))
		case types.Varchar:
			s := v.Str[r]
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
			buf = append(buf, s...)
		}
	}
	return buf
}

// keyBytesEstimate estimates the per-row key size for pool accounting.
func keyBytesEstimate(ts []types.Type) int64 {
	var n int64
	for _, t := range ts {
		switch t {
		case types.Varchar:
			n += 24
		case types.Boolean:
			n += 2
		case types.Integer:
			n += 5
		default:
			n += 9
		}
	}
	return n
}
