package exec

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/types"
	"repro/internal/vector"
)

// encodeKeyRow appends a canonical byte encoding of row r across the
// given vectors to buf. Equal rows encode equally; a NULL marker keeps
// NULLs distinct from every value (group-by treats NULLs as equal to
// each other, per SQL).
func encodeKeyRow(buf []byte, vecs []*vector.Vector, r int) []byte {
	for _, v := range vecs {
		if v.IsNull(r) {
			buf = append(buf, 0)
			continue
		}
		buf = append(buf, 1)
		switch v.Type {
		case types.Boolean:
			if v.Bools[r] {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		case types.Integer:
			buf = binary.LittleEndian.AppendUint32(buf, uint32(v.I32[r]))
		case types.BigInt, types.Timestamp:
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v.I64[r]))
		case types.Double:
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F64[r]))
		case types.Varchar:
			s := v.Str[r]
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
			buf = append(buf, s...)
		}
	}
	return buf
}

// encodeValueKey appends the canonical encoding of one non-NULL boxed
// value, matching encodeKeyRow's per-value layout (so the vectorized
// and row engines build identical DISTINCT sets).
func encodeValueKey(buf []byte, v types.Value) []byte {
	buf = append(buf, 1)
	switch v.Type {
	case types.Boolean:
		if v.Bool {
			return append(buf, 1)
		}
		return append(buf, 0)
	case types.Integer:
		return binary.LittleEndian.AppendUint32(buf, uint32(int32(v.I64)))
	case types.BigInt, types.Timestamp:
		return binary.LittleEndian.AppendUint64(buf, uint64(v.I64))
	case types.Double:
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F64))
	case types.Varchar:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.Str)))
		return append(buf, v.Str...)
	}
	return buf
}

// decodeValueKey decodes one value previously encoded by encodeValueKey
// / encodeKeyRow. DISTINCT sets never hold NULLs, so the validity byte
// is always 1.
func decodeValueKey(key string, t types.Type) types.Value {
	b := key[1:] // skip the validity marker
	switch t {
	case types.Boolean:
		return types.NewBool(b[0] != 0)
	case types.Integer:
		return types.NewInt(int32(binary.LittleEndian.Uint32([]byte(b))))
	case types.BigInt:
		return types.NewBigInt(int64(binary.LittleEndian.Uint64([]byte(b))))
	case types.Timestamp:
		return types.NewTimestamp(int64(binary.LittleEndian.Uint64([]byte(b))))
	case types.Double:
		return types.NewDouble(math.Float64frombits(binary.LittleEndian.Uint64([]byte(b))))
	case types.Varchar:
		return types.NewVarchar(b[4:])
	}
	return types.NewNull(t)
}

// decodeGroupKey decodes a full group key produced by encodeKeyRow back
// into boxed values (the spilled-aggregation merge rebuilds group
// columns for states whose in-memory copy was evicted to disk).
func decodeGroupKey(key string, ts []types.Type) ([]types.Value, error) {
	vals := make([]types.Value, len(ts))
	pos := 0
	fail := func() ([]types.Value, error) {
		return nil, fmt.Errorf("agg spill: corrupt group key")
	}
	for i, t := range ts {
		if pos >= len(key) {
			return fail()
		}
		if key[pos] == 0 {
			vals[i] = types.NewNull(t)
			pos++
			continue
		}
		pos++
		var width int
		switch t {
		case types.Boolean:
			width = 1
		case types.Integer:
			width = 4
		case types.Varchar:
			if pos+4 > len(key) {
				return fail()
			}
			width = 4 + int(binary.LittleEndian.Uint32([]byte(key[pos:pos+4])))
		default:
			width = 8
		}
		if pos+width > len(key) {
			return fail()
		}
		switch t {
		case types.Boolean:
			vals[i] = types.NewBool(key[pos] != 0)
		case types.Integer:
			vals[i] = types.NewInt(int32(binary.LittleEndian.Uint32([]byte(key[pos : pos+4]))))
		case types.BigInt:
			vals[i] = types.NewBigInt(int64(binary.LittleEndian.Uint64([]byte(key[pos : pos+8]))))
		case types.Timestamp:
			vals[i] = types.NewTimestamp(int64(binary.LittleEndian.Uint64([]byte(key[pos : pos+8]))))
		case types.Double:
			vals[i] = types.NewDouble(math.Float64frombits(binary.LittleEndian.Uint64([]byte(key[pos : pos+8]))))
		case types.Varchar:
			vals[i] = types.NewVarchar(key[pos+4 : pos+width])
		default:
			return fail()
		}
		pos += width
	}
	if pos != len(key) {
		return fail()
	}
	return vals, nil
}

// keyBytesEstimate estimates the per-row key size for pool accounting.
func keyBytesEstimate(ts []types.Type) int64 {
	var n int64
	for _, t := range ts {
		switch t {
		case types.Varchar:
			n += 24
		case types.Boolean:
			n += 2
		case types.Integer:
			n += 5
		default:
			n += 9
		}
	}
	return n
}
