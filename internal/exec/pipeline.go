package exec

import (
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/vector"
)

// A stage is one per-worker transform of a morsel-driven pipeline:
// it receives one chunk and emits zero or more chunks downstream.
// Stage instances are worker-local (they may carry scratch buffers);
// the expressions they evaluate are shared and immutable.
type stage interface {
	run(ctx *Context, c *vector.Chunk, emit func(*vector.Chunk) error) error
}

// stageFactory builds a fresh stage instance for one worker.
type stageFactory func() stage

// pipelineSpec describes a parallelizable streaming pipeline: a base
// table scan whose segments are the morsels, followed by per-worker
// stages (filter, project, join probe). A pipeline never reorders or
// buffers rows, so running its stages over morsels in segment order
// reproduces exactly the chunk stream of the sequential operator chain.
type pipelineSpec struct {
	scan   *plan.ScanNode
	stages []stageFactory

	// scanSlot is the scan node's profile slot when the query is
	// profiled (nil otherwise): workers add morsel counts and busy time
	// there. countScanRows means the raw morsel chunks are the scan
	// node's output (no filter was pushed into the scan) and the claim
	// site counts their rows; with a pushed filter the wrapped filter
	// stage counts the post-filter rows instead, matching the
	// sequential scan operator exactly.
	scanSlot      *OpProfile
	countScanRows bool
}

// newStages instantiates the pipeline's stages for one worker.
func (p *pipelineSpec) newStages() []stage {
	out := make([]stage, len(p.stages))
	for i, f := range p.stages {
		out[i] = f()
	}
	return out
}

// compilePipeline decomposes a plan subtree into a morsel-driven
// pipeline, or returns nil when the subtree contains a pipeline breaker
// (aggregate, join, sort, limit, ...) or a non-table source. Filters
// pushed into the scan become the pipeline's first stage. When prof is
// non-nil every stage is wrapped with its plan node's profile slot so
// per-node row counts survive the pipeline collapse.
func compilePipeline(node plan.Node, prof *Profiler) *pipelineSpec {
	switch n := node.(type) {
	case *plan.ScanNode:
		spec := &pipelineSpec{scan: n, scanSlot: prof.Slot(n), countScanRows: true}
		if f := n.Filter; f != nil {
			// The pushed filter is part of the scan node's semantics: the
			// scan slot counts post-filter rows, exactly what the
			// sequential scan operator emits.
			spec.countScanRows = false
			spec.stages = append(spec.stages, profFactory(spec.scanSlot,
				func() stage { return &filterStage{cond: f} }))
		}
		return spec
	case *plan.FilterNode:
		spec := compilePipeline(n.Child, prof)
		if spec == nil {
			return nil
		}
		cond := n.Cond
		spec.stages = append(spec.stages, profFactory(prof.Slot(n),
			func() stage { return &filterStage{cond: cond} }))
		return spec
	case *plan.ProjectNode:
		spec := compilePipeline(n.Child, prof)
		if spec == nil {
			return nil
		}
		exprs := n.Exprs
		spec.stages = append(spec.stages, profFactory(prof.Slot(n),
			func() stage { return &projectStage{exprs: exprs} }))
		return spec
	default:
		return nil
	}
}

// runStages threads a chunk through the stages, fanning emitted chunks
// into sink.
//
//quack:hotpath
func runStages(ctx *Context, stages []stage, c *vector.Chunk, sink func(*vector.Chunk) error) error {
	if len(stages) == 0 {
		return sink(c)
	}
	rest := stages[1:]
	return stages[0].run(ctx, c, func(out *vector.Chunk) error {
		return runStages(ctx, rest, out, sink)
	})
}

// filterStage keeps rows where cond is TRUE; morsels with no surviving
// rows are dropped.
type filterStage struct {
	cond   expr.Expr
	selBuf []int
}

//quack:hotpath
func (f *filterStage) run(ctx *Context, c *vector.Chunk, emit func(*vector.Chunk) error) error {
	mask, err := f.cond.Eval(c)
	if err != nil {
		return err
	}
	f.selBuf = expr.SelectTrue(mask, f.selBuf)
	if len(f.selBuf) == 0 {
		return nil
	}
	if len(f.selBuf) == c.Len() {
		return emit(c)
	}
	out := vector.NewChunk(c.Types())
	c.CompactInto(out, f.selBuf)
	return emit(out)
}

// projectStage computes expressions over the chunk.
type projectStage struct {
	exprs []expr.Expr
}

//quack:hotpath
func (p *projectStage) run(ctx *Context, c *vector.Chunk, emit func(*vector.Chunk) error) error {
	out := &vector.Chunk{Cols: make([]*vector.Vector, len(p.exprs))}
	for i, e := range p.exprs {
		v, err := e.Eval(c)
		if err != nil {
			return err
		}
		out.Cols[i] = v
	}
	out.SetLen(c.Len())
	return emit(out)
}
