package exec

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/buffer"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/types"
	"repro/internal/vector"
)

// newEquiJoin returns the adaptive equi-join operator: it builds an
// in-memory hash table when the build side fits the buffer pool budget,
// and degrades to the out-of-core merge join when it does not — the §4
// RAM-versus-CPU trade-off. LEFT joins always use the hash
// implementation (merge join here is inner-only).
func newEquiJoin(left, right Operator, n *plan.JoinNode) Operator {
	return &equiJoinOp{left: left, right: right, node: n}
}

type equiJoinOp struct {
	left, right Operator
	node        *plan.JoinNode
	impl        Operator
}

func (j *equiJoinOp) Open(ctx *Context) error {
	strategy := ctx.JoinStrategy
	if j.node.Type == plan.JoinLeft && strategy == JoinAuto {
		// LEFT joins have no merge fallback: run the hash join with the
		// budget enforced so an oversized build surfaces as an error
		// instead of silently starving the application.
		hj := newHashJoin(j.left, j.right, j.node, nil, true)
		j.impl = hj
		return hj.Open(ctx)
	}
	switch strategy {
	case JoinForceMerge:
		if j.node.Type == plan.JoinLeft {
			return fmt.Errorf("exec: merge join does not support LEFT joins")
		}
		j.impl = newMergeJoin(j.left, j.right, j.node, nil)
		return j.impl.Open(ctx)
	case JoinForceHash:
		j.impl = newHashJoin(j.left, j.right, j.node, nil, false)
		return j.impl.Open(ctx)
	default:
		// Register the hash join as the implementation before opening:
		// if Open fails for a reason other than memory pressure, Close
		// must still reach it to release its pool reservations.
		hj := newHashJoin(j.left, j.right, j.node, nil, true)
		j.impl = hj
		err := hj.Open(ctx)
		if err == nil {
			return nil
		}
		if !errors.Is(err, buffer.ErrOutOfMemory) {
			return err
		}
		// The build side exceeded the memory budget: hand the chunks
		// already pulled from the right child to a merge join, which
		// sorts with spill-to-disk instead of holding a hash table. The
		// right child stays open; the merge join continues its stream.
		prefetched := hj.takeBuild(ctx)
		mj := newMergeJoin(j.left, j.right, j.node, prefetched)
		mj.rightOpen = true
		j.impl = mj
		return mj.Open(ctx)
	}
}

func (j *equiJoinOp) Next(ctx *Context) (*vector.Chunk, error) { return j.impl.Next(ctx) }

func (j *equiJoinOp) Close(ctx *Context) {
	if j.impl != nil {
		j.impl.Close(ctx)
		return
	}
	j.left.Close(ctx)
	j.right.Close(ctx)
}

// buildRef packs (chunk, row) into one int64.
type buildRef int64

func makeRef(chunk, row int) buildRef { return buildRef(int64(chunk)<<20 | int64(row)) }
func (r buildRef) chunk() int         { return int(int64(r) >> 20) }
func (r buildRef) row() int           { return int(int64(r) & (1<<20 - 1)) }

type hashJoinOp struct {
	left, right Operator
	node        *plan.JoinNode
	enforce     bool // respect the pool budget (Auto mode)

	buildChunks []*vector.Chunk
	ht          map[string][]buildRef
	// parts is the partitioned hash table a parallel build produces
	// instead of ht: partition p holds the keys with hashKey(key)%P==p.
	parts    []map[string][]buildRef
	reserved int64
	// reservedPar accumulates the parallel build workers' reservations.
	reservedPar atomic.Int64
	rightTypes  []types.Type
	outTypes    []types.Type
	nl          int // left column count

	// probePar is set when the probe side is a parallel pipeline: the
	// probe stage runs inside its workers and Next pulls the merged,
	// morsel-ordered join output straight from it.
	probePar *parScanOp

	queue    []*vector.Chunk
	done     bool
	keyBuf   []byte
	leftOpen bool
}

func newHashJoin(left, right Operator, n *plan.JoinNode, prefetched []*vector.Chunk, enforce bool) *hashJoinOp {
	return &hashJoinOp{
		left: left, right: right, node: n,
		buildChunks: prefetched, enforce: enforce,
	}
}

// takeBuild hands the materialized build chunks to a fallback strategy
// and releases the hash table's pool reservations (the fallback does
// its own accounting).
func (h *hashJoinOp) takeBuild(ctx *Context) []*vector.Chunk {
	if ctx.Pool != nil {
		if h.reserved > 0 {
			ctx.Pool.Release(h.reserved)
			h.reserved = 0
		}
		if r := h.reservedPar.Swap(0); r > 0 {
			ctx.Pool.Release(r)
		}
	}
	out := h.buildChunks
	h.buildChunks = nil
	h.ht = nil
	return out
}

func (h *hashJoinOp) Open(ctx *Context) error {
	h.nl = len(h.node.Left.Schema())
	h.outTypes = schemaTypes(h.node.Schema())
	h.rightTypes = schemaTypes(h.node.Right.Schema())

	// Build phase. A parallel pipeline on the build side gets the
	// thread-local partitioned build — except when the memory budget is
	// enforced (Auto mode with a limit), where the sequential build's
	// deterministic chunk accounting keeps the merge-join fallback
	// exact. The build-side parScanOp still scans in parallel either
	// way; only the hash-table insertion differs.
	enforced := h.enforce && ctx.Pool != nil && ctx.Pool.Limit() > 0
	if pr, ok := h.right.(*parScanOp); ok && ctx.Threads > 1 && !enforced && len(h.buildChunks) == 0 {
		if err := h.parallelBuild(ctx, pr); err != nil {
			return err
		}
	} else if err := h.sequentialBuild(ctx); err != nil {
		return err
	}

	// Probe phase: a parallel pipeline on the probe side gets the probe
	// stage attached to its workers; the hash table is read-only now.
	// Attach only after the probe source opened successfully — an Open
	// failure falls back to the merge join, which must get the pipeline
	// without the stage.
	if err := h.left.Open(ctx); err != nil {
		return err
	}
	h.leftOpen = true
	if pl, ok := h.left.(*parScanOp); ok && ctx.Threads > 1 {
		pl.attachStages(func() stage { return &probeStage{h: h} })
		h.probePar = pl
	}
	return nil
}

func (h *hashJoinOp) sequentialBuild(ctx *Context) error {
	h.ht = make(map[string][]buildRef)
	if err := h.right.Open(ctx); err != nil {
		return err
	}
	refOverhead := int64(24)
	insert := func(ci int, chunk *vector.Chunk) error {
		keys := make([]*vector.Vector, len(h.node.RightKeys))
		for i, k := range h.node.RightKeys {
			v, err := k.Eval(chunk)
			if err != nil {
				return err
			}
			keys[i] = v
		}
		for r := 0; r < chunk.Len(); r++ {
			if anyNull(keys, r) {
				continue // NULL keys never match
			}
			h.keyBuf = encodeKeyRow(h.keyBuf[:0], keys, r)
			h.ht[string(h.keyBuf)] = append(h.ht[string(h.keyBuf)], makeRef(ci, r))
		}
		return nil
	}
	for ci, chunk := range h.buildChunks {
		if err := insert(ci, chunk); err != nil {
			return err
		}
	}
	for {
		chunk, err := h.right.Next(ctx)
		if err != nil {
			return err
		}
		if chunk == nil {
			break
		}
		if ctx.Pool != nil {
			need := chunkHeapBytes(chunk) + int64(chunk.Len())*refOverhead
			if err := ctx.Pool.Reserve(need); err != nil {
				if !h.enforce {
					// Forced hash join: account what fits, keep going.
					h.buildChunks = append(h.buildChunks, chunk)
					if err := insert(len(h.buildChunks)-1, chunk); err != nil {
						return err
					}
					continue
				}
				h.buildChunks = append(h.buildChunks, chunk)
				if h.reserved > 0 {
					ctx.Pool.Release(h.reserved)
					h.reserved = 0
				}
				return err // ErrOutOfMemory → caller falls back
			}
			h.reserved += need
		}
		h.buildChunks = append(h.buildChunks, chunk)
		if err := insert(len(h.buildChunks)-1, chunk); err != nil {
			return err
		}
	}
	return nil
}

// parallelBuild drains the build-side pipeline with thread-local
// partitioned hash tables: each worker routes its rows by key hash into
// P per-worker partitions, and P merge tasks then combine the workers'
// slices of one partition each. Bucket ref lists are sorted into global
// build order afterwards, so probe output is byte-identical to the
// sequential build's.
func (h *hashJoinOp) parallelBuild(ctx *Context, pr *parScanOp) error {
	// Open the source first so the partition count is bounded by the
	// actual worker count (morsel-capped), not the raw Threads setting.
	if pr.src == nil {
		if err := pr.openSource(ctx); err != nil {
			return err
		}
	}
	nparts := pr.workerCount(ctx)
	refOverhead := int64(24)

	type buildWorker struct {
		chunks []*vector.Chunk
		seqs   []int
		parts  []map[string][]buildRef // refs use worker-local chunk indexes
		keyBuf []byte
	}
	var workers []*buildWorker
	_, err := pr.consume(ctx, func(w int) func(int, *vector.Chunk) error {
		bw := &buildWorker{parts: make([]map[string][]buildRef, nparts)}
		for p := range bw.parts {
			bw.parts[p] = make(map[string][]buildRef)
		}
		workers = append(workers, bw)
		return func(seq int, chunk *vector.Chunk) error {
			if ctx.Pool != nil {
				need := chunkHeapBytes(chunk) + int64(chunk.Len())*refOverhead
				// Unenforced build: account what fits, keep going.
				if err := ctx.Pool.Reserve(need); err == nil {
					h.reservedPar.Add(need)
				}
			}
			local := len(bw.chunks)
			bw.chunks = append(bw.chunks, chunk)
			bw.seqs = append(bw.seqs, seq)
			keys := make([]*vector.Vector, len(h.node.RightKeys))
			for i, k := range h.node.RightKeys {
				v, err := k.Eval(chunk)
				if err != nil {
					return err
				}
				keys[i] = v
			}
			for r := 0; r < chunk.Len(); r++ {
				if anyNull(keys, r) {
					continue // NULL keys never match
				}
				bw.keyBuf = encodeKeyRow(bw.keyBuf[:0], keys, r)
				m := bw.parts[hashKey(bw.keyBuf)%uint64(nparts)]
				m[string(bw.keyBuf)] = append(m[string(bw.keyBuf)], makeRef(local, r))
			}
			return nil
		}
	})
	if err != nil {
		return err
	}

	// Renumber the workers' chunks into global build order (by morsel
	// sequence) — the order the sequential build would have seen.
	type chunkPos struct{ w, local, seq int }
	var all []chunkPos
	for w, bw := range workers {
		for local, seq := range bw.seqs {
			all = append(all, chunkPos{w: w, local: local, seq: seq})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	globalIdx := make([][]int, len(workers))
	for w, bw := range workers {
		globalIdx[w] = make([]int, len(bw.chunks))
	}
	h.buildChunks = make([]*vector.Chunk, len(all))
	for g, cp := range all {
		h.buildChunks[g] = workers[cp.w].chunks[cp.local]
		globalIdx[cp.w][cp.local] = g
	}

	// Merge: one scheduler task per partition, partitions in parallel
	// on the engine-wide pool (pure compute; tasks never block).
	h.parts = make([]map[string][]buildRef, nparts)
	var wg sync.WaitGroup
	q := ctx.queryTasks()
	for p := 0; p < nparts; p++ {
		p := p
		wg.Add(1)
		q.Submit(func() {
			defer wg.Done()
			merged := make(map[string][]buildRef)
			for w, bw := range workers {
				gi := globalIdx[w]
				for key, refs := range bw.parts[p] {
					dst := merged[key]
					for _, ref := range refs {
						dst = append(dst, makeRef(gi[ref.chunk()], ref.row()))
					}
					merged[key] = dst
				}
			}
			// Packed refs order exactly as (global chunk, row).
			for _, refs := range merged {
				sort.Slice(refs, func(i, j int) bool { return refs[i] < refs[j] })
			}
			h.parts[p] = merged
		})
	}
	wg.Wait()
	return nil
}

// lookup returns the build rows matching an encoded key, in global
// build order, regardless of which build produced the table.
func (h *hashJoinOp) lookup(key []byte) []buildRef {
	if h.parts != nil {
		return h.parts[hashKey(key)%uint64(len(h.parts))][string(key)]
	}
	return h.ht[string(key)]
}

// hashKey is FNV-1a; it only routes keys to partitions (the partition
// maps still compare full keys).
func hashKey(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

func anyNull(vecs []*vector.Vector, r int) bool {
	for _, v := range vecs {
		if v.IsNull(r) {
			return true
		}
	}
	return false
}

func (h *hashJoinOp) Next(ctx *Context) (*vector.Chunk, error) {
	if h.probePar != nil {
		// The probe runs inside the left pipeline's workers; its merged
		// output is already in morsel order.
		return h.probePar.Next(ctx)
	}
	for len(h.queue) == 0 {
		if h.done {
			return nil, nil
		}
		probe, err := h.left.Next(ctx)
		if err != nil {
			return nil, err
		}
		if probe == nil {
			h.done = true
			return nil, nil
		}
		h.keyBuf, err = h.probeChunk(probe, h.keyBuf, func(c *vector.Chunk) error {
			h.queue = append(h.queue, c)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	out := h.queue[0]
	h.queue = h.queue[1:]
	return out, nil
}

// probeStage probes the shared (read-only) hash table from inside a
// parallel pipeline worker. Each worker owns its stage instance, so the
// key buffer never contends.
type probeStage struct {
	h      *hashJoinOp
	keyBuf []byte
}

func (ps *probeStage) run(ctx *Context, c *vector.Chunk, emit func(*vector.Chunk) error) error {
	var err error
	ps.keyBuf, err = ps.h.probeChunk(c, ps.keyBuf, emit)
	return err
}

// probeChunk joins one probe chunk against the build table, emitting
// matched (and, for LEFT joins, padded unmatched) chunks. It only reads
// shared state, so any number of workers may run it concurrently with
// their own key buffers.
func (h *hashJoinOp) probeChunk(probe *vector.Chunk, keyBuf []byte, emit func(*vector.Chunk) error) ([]byte, error) {
	keys := make([]*vector.Vector, len(h.node.LeftKeys))
	for i, k := range h.node.LeftKeys {
		v, err := k.Eval(probe)
		if err != nil {
			return keyBuf, err
		}
		keys[i] = v
	}
	n := probe.Len()
	matched := make([]bool, n)

	cand := vector.NewChunk(h.outTypes)
	var candProbe []int
	flush := func() error {
		if cand.Len() == 0 {
			return nil
		}
		keep := cand
		probeRows := candProbe
		if h.node.Extra != nil {
			mask, err := h.node.Extra.Eval(cand)
			if err != nil {
				return err
			}
			sel := expr.SelectTrue(mask, nil)
			if len(sel) < cand.Len() {
				filtered := vector.NewChunk(h.outTypes)
				cand.CompactInto(filtered, sel)
				keep = filtered
				probeRows = make([]int, len(sel))
				for i, s := range sel {
					probeRows[i] = candProbe[s]
				}
			}
		}
		for _, pr := range probeRows {
			matched[pr] = true
		}
		if keep.Len() > 0 {
			if err := emit(keep); err != nil {
				return err
			}
		}
		cand = vector.NewChunk(h.outTypes)
		candProbe = nil
		return nil
	}

	for r := 0; r < n; r++ {
		if anyNull(keys, r) {
			continue
		}
		keyBuf = encodeKeyRow(keyBuf[:0], keys, r)
		for _, ref := range h.lookup(keyBuf) {
			bc := h.buildChunks[ref.chunk()]
			br := ref.row()
			row := cand.Len()
			cand.SetLen(row + 1)
			for c := 0; c < h.nl; c++ {
				if probe.Cols[c].IsNull(r) {
					cand.Cols[c].SetNull(row)
				} else {
					cand.Cols[c].Set(row, probe.Cols[c].Get(r))
				}
			}
			for c := 0; c < len(h.rightTypes); c++ {
				if bc.Cols[c].IsNull(br) {
					cand.Cols[h.nl+c].SetNull(row)
				} else {
					cand.Cols[h.nl+c].Set(row, bc.Cols[c].Get(br))
				}
			}
			candProbe = append(candProbe, r)
			if cand.Len() == vector.ChunkCapacity {
				if err := flush(); err != nil {
					return keyBuf, err
				}
			}
		}
	}
	if err := flush(); err != nil {
		return keyBuf, err
	}

	if h.node.Type == plan.JoinLeft {
		outer := vector.NewChunk(h.outTypes)
		for r := 0; r < n; r++ {
			if matched[r] {
				continue
			}
			row := outer.Len()
			outer.SetLen(row + 1)
			for c := 0; c < h.nl; c++ {
				if probe.Cols[c].IsNull(r) {
					outer.Cols[c].SetNull(row)
				} else {
					outer.Cols[c].Set(row, probe.Cols[c].Get(r))
				}
			}
			for c := 0; c < len(h.rightTypes); c++ {
				outer.Cols[h.nl+c].SetNull(row)
			}
			if outer.Len() == vector.ChunkCapacity {
				if err := emit(outer); err != nil {
					return keyBuf, err
				}
				outer = vector.NewChunk(h.outTypes)
			}
		}
		if outer.Len() > 0 {
			if err := emit(outer); err != nil {
				return keyBuf, err
			}
		}
	}
	return keyBuf, nil
}

func (h *hashJoinOp) Close(ctx *Context) {
	if ctx.Pool != nil && h.reserved > 0 {
		ctx.Pool.Release(h.reserved)
		h.reserved = 0
	}
	if ctx.Pool != nil {
		if r := h.reservedPar.Swap(0); r > 0 {
			ctx.Pool.Release(r)
		}
	}
	h.ht = nil
	h.parts = nil
	h.buildChunks = nil
	if h.leftOpen {
		h.left.Close(ctx)
	}
	h.right.Close(ctx)
}

// chunkHeapBytes estimates a chunk's resident size for pool accounting.
func chunkHeapBytes(c *vector.Chunk) int64 {
	var total int64
	for _, col := range c.Cols {
		n := int64(col.Len())
		switch col.Type {
		case types.Varchar:
			for _, s := range col.Str {
				total += int64(len(s)) + 16
			}
		case types.Boolean:
			total += n
		case types.Integer:
			total += 4 * n
		default:
			total += 8 * n
		}
	}
	return total
}
