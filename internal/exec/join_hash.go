package exec

import (
	"errors"
	"fmt"

	"repro/internal/buffer"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/types"
	"repro/internal/vector"
)

// newEquiJoin returns the adaptive equi-join operator: it builds an
// in-memory hash table when the build side fits the buffer pool budget,
// and degrades to the out-of-core merge join when it does not — the §4
// RAM-versus-CPU trade-off. LEFT joins always use the hash
// implementation (merge join here is inner-only).
func newEquiJoin(left, right Operator, n *plan.JoinNode) Operator {
	return &equiJoinOp{left: left, right: right, node: n}
}

type equiJoinOp struct {
	left, right Operator
	node        *plan.JoinNode
	impl        Operator
}

func (j *equiJoinOp) Open(ctx *Context) error {
	strategy := ctx.JoinStrategy
	if j.node.Type == plan.JoinLeft && strategy == JoinAuto {
		// LEFT joins have no merge fallback: run the hash join with the
		// budget enforced so an oversized build surfaces as an error
		// instead of silently starving the application.
		hj := newHashJoin(j.left, j.right, j.node, nil, true)
		j.impl = hj
		return hj.Open(ctx)
	}
	switch strategy {
	case JoinForceMerge:
		if j.node.Type == plan.JoinLeft {
			return fmt.Errorf("exec: merge join does not support LEFT joins")
		}
		j.impl = newMergeJoin(j.left, j.right, j.node, nil)
		return j.impl.Open(ctx)
	case JoinForceHash:
		j.impl = newHashJoin(j.left, j.right, j.node, nil, false)
		return j.impl.Open(ctx)
	default:
		hj := newHashJoin(j.left, j.right, j.node, nil, true)
		err := hj.Open(ctx)
		if err == nil {
			j.impl = hj
			return nil
		}
		if !errors.Is(err, buffer.ErrOutOfMemory) {
			return err
		}
		// The build side exceeded the memory budget: hand the chunks
		// already pulled from the right child to a merge join, which
		// sorts with spill-to-disk instead of holding a hash table. The
		// right child stays open; the merge join continues its stream.
		prefetched := hj.takeBuild()
		mj := newMergeJoin(j.left, j.right, j.node, prefetched)
		mj.rightOpen = true
		j.impl = mj
		return mj.Open(ctx)
	}
}

func (j *equiJoinOp) Next(ctx *Context) (*vector.Chunk, error) { return j.impl.Next(ctx) }

func (j *equiJoinOp) Close(ctx *Context) {
	if j.impl != nil {
		j.impl.Close(ctx)
		return
	}
	j.left.Close(ctx)
	j.right.Close(ctx)
}

// buildRef packs (chunk, row) into one int64.
type buildRef int64

func makeRef(chunk, row int) buildRef { return buildRef(int64(chunk)<<20 | int64(row)) }
func (r buildRef) chunk() int         { return int(int64(r) >> 20) }
func (r buildRef) row() int           { return int(int64(r) & (1<<20 - 1)) }

type hashJoinOp struct {
	left, right Operator
	node        *plan.JoinNode
	enforce     bool // respect the pool budget (Auto mode)

	buildChunks []*vector.Chunk
	ht          map[string][]buildRef
	reserved    int64
	rightTypes  []types.Type
	outTypes    []types.Type
	nl          int // left column count

	queue    []*vector.Chunk
	done     bool
	keyBuf   []byte
	leftOpen bool
}

func newHashJoin(left, right Operator, n *plan.JoinNode, prefetched []*vector.Chunk, enforce bool) *hashJoinOp {
	return &hashJoinOp{
		left: left, right: right, node: n,
		buildChunks: prefetched, enforce: enforce,
	}
}

// takeBuild hands the materialized build chunks to a fallback strategy
// and releases the hash table's reservations.
func (h *hashJoinOp) takeBuild() []*vector.Chunk {
	out := h.buildChunks
	h.buildChunks = nil
	h.ht = nil
	return out
}

func (h *hashJoinOp) Open(ctx *Context) error {
	h.nl = len(h.node.Left.Schema())
	h.outTypes = schemaTypes(h.node.Schema())
	h.rightTypes = schemaTypes(h.node.Right.Schema())
	h.ht = make(map[string][]buildRef)
	if err := h.right.Open(ctx); err != nil {
		return err
	}

	// Build phase: drain the right child into the hash table.
	refOverhead := int64(24)
	insert := func(ci int, chunk *vector.Chunk) error {
		keys := make([]*vector.Vector, len(h.node.RightKeys))
		for i, k := range h.node.RightKeys {
			v, err := k.Eval(chunk)
			if err != nil {
				return err
			}
			keys[i] = v
		}
		for r := 0; r < chunk.Len(); r++ {
			if anyNull(keys, r) {
				continue // NULL keys never match
			}
			h.keyBuf = encodeKeyRow(h.keyBuf[:0], keys, r)
			h.ht[string(h.keyBuf)] = append(h.ht[string(h.keyBuf)], makeRef(ci, r))
		}
		return nil
	}
	for ci, chunk := range h.buildChunks {
		if err := insert(ci, chunk); err != nil {
			return err
		}
	}
	for {
		chunk, err := h.right.Next(ctx)
		if err != nil {
			return err
		}
		if chunk == nil {
			break
		}
		if ctx.Pool != nil {
			need := chunkHeapBytes(chunk) + int64(chunk.Len())*refOverhead
			if err := ctx.Pool.Reserve(need); err != nil {
				if !h.enforce {
					// Forced hash join: account what fits, keep going.
					h.buildChunks = append(h.buildChunks, chunk)
					if err := insert(len(h.buildChunks)-1, chunk); err != nil {
						return err
					}
					continue
				}
				h.buildChunks = append(h.buildChunks, chunk)
				if h.reserved > 0 {
					ctx.Pool.Release(h.reserved)
					h.reserved = 0
				}
				return err // ErrOutOfMemory → caller falls back
			}
			h.reserved += need
		}
		h.buildChunks = append(h.buildChunks, chunk)
		if err := insert(len(h.buildChunks)-1, chunk); err != nil {
			return err
		}
	}
	if err := h.left.Open(ctx); err != nil {
		return err
	}
	h.leftOpen = true
	return nil
}

func anyNull(vecs []*vector.Vector, r int) bool {
	for _, v := range vecs {
		if v.IsNull(r) {
			return true
		}
	}
	return false
}

func (h *hashJoinOp) Next(ctx *Context) (*vector.Chunk, error) {
	for len(h.queue) == 0 {
		if h.done {
			return nil, nil
		}
		probe, err := h.left.Next(ctx)
		if err != nil {
			return nil, err
		}
		if probe == nil {
			h.done = true
			return nil, nil
		}
		if err := h.processProbe(probe); err != nil {
			return nil, err
		}
	}
	out := h.queue[0]
	h.queue = h.queue[1:]
	return out, nil
}

func (h *hashJoinOp) processProbe(probe *vector.Chunk) error {
	keys := make([]*vector.Vector, len(h.node.LeftKeys))
	for i, k := range h.node.LeftKeys {
		v, err := k.Eval(probe)
		if err != nil {
			return err
		}
		keys[i] = v
	}
	n := probe.Len()
	matched := make([]bool, n)

	cand := vector.NewChunk(h.outTypes)
	var candProbe []int
	flush := func() error {
		if cand.Len() == 0 {
			return nil
		}
		keep := cand
		probeRows := candProbe
		if h.node.Extra != nil {
			mask, err := h.node.Extra.Eval(cand)
			if err != nil {
				return err
			}
			sel := expr.SelectTrue(mask, nil)
			if len(sel) < cand.Len() {
				filtered := vector.NewChunk(h.outTypes)
				cand.CompactInto(filtered, sel)
				keep = filtered
				probeRows = make([]int, len(sel))
				for i, s := range sel {
					probeRows[i] = candProbe[s]
				}
			}
		}
		for _, pr := range probeRows {
			matched[pr] = true
		}
		if keep.Len() > 0 {
			h.queue = append(h.queue, keep)
		}
		cand = vector.NewChunk(h.outTypes)
		candProbe = nil
		return nil
	}

	for r := 0; r < n; r++ {
		if anyNull(keys, r) {
			continue
		}
		h.keyBuf = encodeKeyRow(h.keyBuf[:0], keys, r)
		for _, ref := range h.ht[string(h.keyBuf)] {
			bc := h.buildChunks[ref.chunk()]
			br := ref.row()
			row := cand.Len()
			cand.SetLen(row + 1)
			for c := 0; c < h.nl; c++ {
				if probe.Cols[c].IsNull(r) {
					cand.Cols[c].SetNull(row)
				} else {
					cand.Cols[c].Set(row, probe.Cols[c].Get(r))
				}
			}
			for c := 0; c < len(h.rightTypes); c++ {
				if bc.Cols[c].IsNull(br) {
					cand.Cols[h.nl+c].SetNull(row)
				} else {
					cand.Cols[h.nl+c].Set(row, bc.Cols[c].Get(br))
				}
			}
			candProbe = append(candProbe, r)
			if cand.Len() == vector.ChunkCapacity {
				if err := flush(); err != nil {
					return err
				}
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}

	if h.node.Type == plan.JoinLeft {
		outer := vector.NewChunk(h.outTypes)
		for r := 0; r < n; r++ {
			if matched[r] {
				continue
			}
			row := outer.Len()
			outer.SetLen(row + 1)
			for c := 0; c < h.nl; c++ {
				if probe.Cols[c].IsNull(r) {
					outer.Cols[c].SetNull(row)
				} else {
					outer.Cols[c].Set(row, probe.Cols[c].Get(r))
				}
			}
			for c := 0; c < len(h.rightTypes); c++ {
				outer.Cols[h.nl+c].SetNull(row)
			}
			if outer.Len() == vector.ChunkCapacity {
				h.queue = append(h.queue, outer)
				outer = vector.NewChunk(h.outTypes)
			}
		}
		if outer.Len() > 0 {
			h.queue = append(h.queue, outer)
		}
	}
	return nil
}

func (h *hashJoinOp) Close(ctx *Context) {
	if ctx.Pool != nil && h.reserved > 0 {
		ctx.Pool.Release(h.reserved)
		h.reserved = 0
	}
	h.ht = nil
	h.buildChunks = nil
	if h.leftOpen {
		h.left.Close(ctx)
	}
	h.right.Close(ctx)
}

// chunkHeapBytes estimates a chunk's resident size for pool accounting.
func chunkHeapBytes(c *vector.Chunk) int64 {
	var total int64
	for _, col := range c.Cols {
		n := int64(col.Len())
		switch col.Type {
		case types.Varchar:
			for _, s := range col.Str {
				total += int64(len(s)) + 16
			}
		case types.Boolean:
			total += n
		case types.Integer:
			total += 4 * n
		default:
			total += 8 * n
		}
	}
	return total
}
