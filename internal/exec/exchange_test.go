package exec

import (
	"fmt"
	"testing"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/txn"
	"repro/internal/types"
	"repro/internal/vector"
)

// mkHavingPlan builds Project(Filter(Agg(Scan))) — the HAVING shape that
// strands a filter and a projection above the aggregation breaker.
func mkHavingPlan(t *testing.T, rows int) (plan.Node, *txn.Manager) {
	t.Helper()
	mgr := txn.NewManager(nil)
	entry := buildFactTable(t, mgr, rows)
	col := func() expr.Expr { return &expr.ColRef{Idx: 0, Typ: types.BigInt} }
	agg := &plan.AggNode{
		Child:   &plan.ScanNode{Table: entry, Columns: []int{0}},
		GroupBy: []expr.Expr{&expr.Arith{Op: expr.OpMod, L: col(), R: &expr.Const{Val: types.NewBigInt(53)}, Typ: types.BigInt}},
		Names:   []string{"g"},
		Aggs: []plan.AggSpec{
			{Func: "count", Type: types.BigInt, Name: "n"},
			{Func: "sum", Arg: col(), Type: types.BigInt, Name: "s"},
		},
	}
	filter := &plan.FilterNode{
		Child: agg,
		Cond: &expr.Compare{Op: expr.CmpGt,
			L: &expr.ColRef{Idx: 1, Typ: types.BigInt},
			R: &expr.Const{Val: types.NewBigInt(100)}},
	}
	proj := &plan.ProjectNode{
		Child: filter,
		Exprs: []expr.Expr{
			&expr.ColRef{Idx: 0, Typ: types.BigInt},
			&expr.Arith{Op: expr.OpMul, L: &expr.ColRef{Idx: 2, Typ: types.BigInt}, R: &expr.Const{Val: types.NewBigInt(2)}, Typ: types.BigInt},
		},
		Names: []string{"g", "s2"},
	}
	return proj, mgr
}

func renderPlan(t *testing.T, node plan.Node, ctx *Context) string {
	t.Helper()
	op, err := BuildParallel(node, ctx.Threads)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Threads > 1 {
		if _, ok := op.(*exchangeOp); !ok {
			t.Fatalf("threads=%d built %T, want *exchangeOp", ctx.Threads, op)
		}
	}
	out := ""
	for _, c := range collectAll(t, ctx, op) {
		for r := 0; r < c.Len(); r++ {
			out += fmt.Sprint(c.Row(r), ";")
		}
	}
	return out
}

// TestExchangeMatchesSequential: the ordered exchange over a breaker
// must reproduce the sequential operator chain's stream exactly.
func TestExchangeMatchesSequential(t *testing.T) {
	node, mgr := mkHavingPlan(t, 40_000)
	want := renderPlan(t, node, &Context{Txn: mgr.Begin(), Threads: 1})
	if want == "" {
		t.Fatal("fixture produced no rows")
	}
	for _, threads := range []int{2, 4, 8} {
		got := renderPlan(t, node, &Context{Txn: mgr.Begin(), Threads: threads})
		if got != want {
			t.Fatalf("threads=%d exchange diverges:\n got: %.300s\nwant: %.300s", threads, got, want)
		}
	}
}

// TestExchangeAboveSortStripsHiddenColumns mirrors the planner shape of
// ORDER BY over a non-output column: a stripping projection above the
// sort breaker, which the exchange must run in parallel while keeping
// the sorted order intact.
func TestExchangeAboveSort(t *testing.T) {
	mgr := txn.NewManager(nil)
	node, _ := mkSortNode(t, 25_000, mgr)
	strip := &plan.ProjectNode{
		Child: node,
		Exprs: []expr.Expr{&expr.Arith{Op: expr.OpAdd,
			L: &expr.ColRef{Idx: 0, Typ: types.BigInt},
			R: &expr.Const{Val: types.NewBigInt(1)}, Typ: types.BigInt}},
		Names: []string{"v1"},
	}
	render := func(threads int) string {
		op, err := BuildParallel(strip, threads)
		if err != nil {
			t.Fatal(err)
		}
		if threads > 1 {
			ex, ok := op.(*exchangeOp)
			if !ok {
				t.Fatalf("threads=%d built %T, want *exchangeOp", threads, op)
			}
			if _, ok := ex.child.(*parSortOp); !ok {
				t.Fatalf("exchange child is %T, want *parSortOp", ex.child)
			}
		}
		out := ""
		for _, c := range collectAll(t, &Context{Txn: mgr.Begin(), Threads: threads}, op) {
			out += fmt.Sprint(c.Cols[0].I64[:c.Len()], "|")
		}
		return out
	}
	want := render(1)
	for _, threads := range []int{2, 8} {
		if got := render(threads); got != want {
			t.Fatalf("threads=%d diverges:\n got: %.200s\nwant: %.200s", threads, got, want)
		}
	}
}

// TestExchangeEarlyClose: a limit above the exchange abandons the
// stream; Close must join the producer, workers and watcher without
// deadlocking.
func TestExchangeEarlyClose(t *testing.T) {
	node, mgr := mkHavingPlan(t, 60_000)
	limited := &plan.LimitNode{Child: node, Limit: 2}
	op, err := BuildParallel(limited, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &Context{Txn: mgr.Begin(), Threads: 4}
	chunks := collectAll(t, ctx, op)
	if rows := countRows(chunks); rows != 2 {
		t.Fatalf("limit over exchange: %d rows, want 2", rows)
	}
}

// TestExchangeErrorPropagates: a failing stage expression inside an
// exchange worker must surface as the query error.
func TestExchangeErrorPropagates(t *testing.T) {
	mgr := txn.NewManager(nil)
	entry := buildFactTable(t, mgr, 20_000)
	col := func() expr.Expr { return &expr.ColRef{Idx: 0, Typ: types.BigInt} }
	agg := &plan.AggNode{
		Child:   &plan.ScanNode{Table: entry, Columns: []int{0}},
		GroupBy: []expr.Expr{&expr.Arith{Op: expr.OpMod, L: col(), R: &expr.Const{Val: types.NewBigInt(11)}, Typ: types.BigInt}},
		Names:   []string{"g"},
		Aggs:    []plan.AggSpec{{Func: "min", Arg: col(), Type: types.BigInt, Name: "lo"}},
	}
	proj := &plan.ProjectNode{
		Child: agg,
		// lo % (g - g) divides by zero for every group.
		Exprs: []expr.Expr{&expr.Arith{Op: expr.OpMod,
			L:   &expr.ColRef{Idx: 1, Typ: types.BigInt},
			R:   &expr.Arith{Op: expr.OpSub, L: &expr.ColRef{Idx: 0, Typ: types.BigInt}, R: &expr.ColRef{Idx: 0, Typ: types.BigInt}, Typ: types.BigInt},
			Typ: types.BigInt}},
		Names: []string{"boom"},
	}
	for _, threads := range []int{1, 4} {
		op, err := BuildParallel(proj, threads)
		if err != nil {
			t.Fatal(err)
		}
		ctx := &Context{Txn: mgr.Begin(), Threads: threads}
		if _, err := Collect(ctx, op); err == nil {
			t.Fatalf("threads=%d: stage error did not propagate", threads)
		}
	}
}

// TestExchangeUnordered: completion-order delivery must still hand every
// chunk through exactly once.
func TestExchangeUnordered(t *testing.T) {
	mgr := txn.NewManager(nil)
	entry := buildFactTable(t, mgr, 30_000)
	scan := &plan.ScanNode{Table: entry, Columns: []int{0}}
	base, err := Build(scan)
	if err != nil {
		t.Fatal(err)
	}
	ex := newExchangeOp(base, []stageFactory{func() stage {
		return &projectStage{exprs: []expr.Expr{&expr.ColRef{Idx: 0, Typ: types.BigInt}}}
	}}, false)
	ctx := &Context{Txn: mgr.Begin(), Threads: 4}
	var sum, n int64
	if err := Run(ctx, ex, func(c *vector.Chunk) error {
		for r := 0; r < c.Len(); r++ {
			sum += c.Cols[0].I64[r]
			n++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 30_000 || sum != 30_000*29_999/2 {
		t.Fatalf("unordered exchange lost rows: n=%d sum=%d", n, sum)
	}
}
