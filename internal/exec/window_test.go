package exec

import (
	"fmt"
	"testing"

	"repro/internal/buffer"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/txn"
	"repro/internal/types"
	"repro/internal/vector"
)

// mkWindowNode builds
//
//	row_number() OVER (PARTITION BY v % 7 ORDER BY v % 97),
//	sum(v)       OVER (same spec),
//	lag(v)       OVER (same spec)
//
// over the single-column fact table. The tie-heavy order key makes the
// hidden input-position tiebreak decide placements, and lag reads
// across those ties — any nondeterminism in the sorted order shows up
// immediately.
func mkWindowNode(t *testing.T, n int, mgr *txn.Manager) *plan.WindowNode {
	t.Helper()
	entry := buildFactTable(t, mgr, n)
	col := func() expr.Expr { return &expr.ColRef{Idx: 0, Typ: types.BigInt} }
	mod := func(m int64) expr.Expr {
		return &expr.Arith{Op: expr.OpMod, L: col(), R: &expr.Const{Val: types.NewBigInt(m)}, Typ: types.BigInt}
	}
	return &plan.WindowNode{
		Child:       &plan.ScanNode{Table: entry, Columns: []int{0}},
		PartitionBy: []expr.Expr{mod(7)},
		OrderBy:     []plan.SortKey{{Expr: mod(97)}},
		Funcs: []plan.WindowFunc{
			{Func: "row_number", Type: types.BigInt, Name: "rn"},
			{Func: "sum", Arg: col(), Type: types.BigInt, Name: "s"},
			{Func: "lag", Arg: col(), Offset: 1, Default: types.NewNull(types.BigInt), Type: types.BigInt, Name: "l"},
		},
	}
}

func renderWindow(t *testing.T, node plan.Node, ctx *Context) string {
	t.Helper()
	op, err := BuildParallel(node, ctx.Threads)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Threads > 1 {
		if _, ok := op.(*exchangeOp); !ok {
			t.Fatalf("threads=%d built %T, want exchange-wrapped window", ctx.Threads, op)
		}
	}
	out := ""
	for _, c := range collectAll(t, ctx, op) {
		for r := 0; r < c.Len(); r++ {
			out += fmt.Sprint(c.Row(r), ";")
		}
	}
	return out
}

// TestParallelWindowMatchesSequential: the exchange-evaluated window
// over per-worker sorted runs must be bit-identical — values and row
// order — to the single-threaded operator.
func TestParallelWindowMatchesSequential(t *testing.T) {
	mgr := txn.NewManager(nil)
	node := mkWindowNode(t, 30_000, mgr)
	want := renderWindow(t, node, &Context{Txn: mgr.Begin(), Threads: 1})
	for _, threads := range []int{2, 3, 8} {
		got := renderWindow(t, node, &Context{Txn: mgr.Begin(), Threads: threads})
		if got != want {
			t.Fatalf("threads=%d window diverges:\n got: %.200s\nwant: %.200s", threads, got, want)
		}
	}
}

// TestParallelWindowSpillDifferential: a tiny sort budget forces every
// worker's window sorter to spill runs; the merged result must equal
// the unconstrained one and all pool reservations must drain.
func TestParallelWindowSpillDifferential(t *testing.T) {
	mgr := txn.NewManager(nil)
	node := mkWindowNode(t, 40_000, mgr)
	want := renderWindow(t, node, &Context{Txn: mgr.Begin(), Threads: 1})
	for _, threads := range []int{1, 4} {
		pool := buffer.NewPool(0, nil)
		ctx := &Context{Txn: mgr.Begin(), Threads: threads, Pool: pool,
			SortBudget: 32 << 10, TmpDir: t.TempDir()}
		got := renderWindow(t, node, ctx)
		if got != want {
			t.Fatalf("threads=%d spilling window diverges", threads)
		}
		if used := pool.Used(); used != 0 {
			t.Fatalf("threads=%d: %d bytes still reserved after drain", threads, used)
		}
	}
}

// TestParallelWindowEarlyClose: a limit above the window abandons the
// stream mid-partition; Close must cancel the pipeline and exchange
// workers without deadlocking or leaking reservations.
func TestParallelWindowEarlyClose(t *testing.T) {
	mgr := txn.NewManager(nil)
	node := mkWindowNode(t, 20_000, mgr)
	limited := &plan.LimitNode{Child: node, Limit: 5}
	op, err := BuildParallel(limited, 4)
	if err != nil {
		t.Fatal(err)
	}
	pool := buffer.NewPool(0, nil)
	ctx := &Context{Txn: mgr.Begin(), Threads: 4, Pool: pool, SortBudget: 16 << 10, TmpDir: t.TempDir()}
	chunks := collectAll(t, ctx, op)
	if rows := countRows(chunks); rows != 5 {
		t.Fatalf("limit over parallel window: %d rows, want 5", rows)
	}
	if used := pool.Used(); used != 0 {
		t.Fatalf("pool leak after early close: %d bytes", used)
	}
}

// TestParallelWindowErrorPropagates: a failing partition expression
// inside a worker must surface as the query error at every thread count
// and leave no goroutines stuck.
func TestParallelWindowErrorPropagates(t *testing.T) {
	mgr := txn.NewManager(nil)
	entry := buildFactTable(t, mgr, 10_000)
	col := func() expr.Expr { return &expr.ColRef{Idx: 0, Typ: types.BigInt} }
	node := &plan.WindowNode{
		Child: &plan.ScanNode{Table: entry, Columns: []int{0}},
		PartitionBy: []expr.Expr{&expr.Arith{Op: expr.OpMod, L: col(),
			R: &expr.Arith{Op: expr.OpSub, L: col(), R: col(), Typ: types.BigInt}, Typ: types.BigInt}},
		Funcs: []plan.WindowFunc{{Func: "row_number", Type: types.BigInt, Name: "rn"}},
	}
	for _, threads := range []int{1, 4} {
		op, err := BuildParallel(node, threads)
		if err != nil {
			t.Fatal(err)
		}
		ctx := &Context{Txn: mgr.Begin(), Threads: threads}
		if _, err := Collect(ctx, op); err == nil {
			t.Fatalf("threads=%d: modulo by zero in partition key did not error", threads)
		}
	}
}

// TestWindowFrameEdgeCases drives the frame evaluator directly over one
// partition: empty frames, frames past the partition edge, and the
// peers-inclusive default frame.
func TestWindowFrameEdgeCases(t *testing.T) {
	mgr := txn.NewManager(nil)
	entry := buildFactTable(t, mgr, 10)
	col := func() expr.Expr { return &expr.ColRef{Idx: 0, Typ: types.BigInt} }
	frame := func(startOff, endOff int64, startPrec, endPrec bool) plan.WindowFrame {
		return plan.WindowFrame{Set: true, Rows: true,
			Start: plan.FrameBound{Offset: startOff, Preceding: startPrec},
			End:   plan.FrameBound{Offset: endOff, Preceding: endPrec}}
	}
	cases := []struct {
		frame plan.WindowFrame
		want  []string // sum(v) per row v=0..9 ordered by v
	}{
		{ // 2 FOLLOWING .. 3 FOLLOWING: empty at the tail
			frame(2, 3, false, false),
			[]string{"5", "7", "9", "11", "13", "15", "17", "9", "NULL", "NULL"},
		},
		{ // 3 PRECEDING .. 2 PRECEDING: empty at the head
			frame(3, 2, true, true),
			[]string{"NULL", "NULL", "0", "1", "3", "5", "7", "9", "11", "13"},
		},
		{ // 0 PRECEDING .. 0 FOLLOWING: exactly the current row
			frame(0, 0, true, false),
			[]string{"0", "1", "2", "3", "4", "5", "6", "7", "8", "9"},
		},
	}
	for ci, tc := range cases {
		node := &plan.WindowNode{
			Child:   &plan.ScanNode{Table: entry, Columns: []int{0}},
			OrderBy: []plan.SortKey{{Expr: col()}},
			Frame:   tc.frame,
			Funcs:   []plan.WindowFunc{{Func: "sum", Arg: col(), Type: types.BigInt, Name: "s"}},
		}
		op, err := Build(node)
		if err != nil {
			t.Fatal(err)
		}
		ctx := &Context{Txn: mgr.Begin(), Threads: 1}
		var got []string
		for _, c := range collectAll(t, ctx, op) {
			for r := 0; r < c.Len(); r++ {
				got = append(got, c.Cols[1].Get(r).String())
			}
		}
		if fmt.Sprint(got) != fmt.Sprint(tc.want) {
			t.Errorf("case %d: got %v, want %v", ci, got, tc.want)
		}
	}
}

// TestParallelWindowMergePartitioned: with a PARTITION BY, the window's
// merge AND partition cutting must run on the range workers; asserted
// via worker row counters (1-CPU hosts can't show wall-clock speedup).
func TestParallelWindowMergePartitioned(t *testing.T) {
	const rows = 30_000
	mgr := txn.NewManager(nil)
	node := mkWindowNode(t, rows, mgr)
	op, err := BuildParallel(node, 8)
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := op.(*exchangeOp)
	if !ok {
		t.Fatalf("built %T, want *exchangeOp", op)
	}
	wp, ok := ex.child.(*windowPartitionOp)
	if !ok {
		t.Fatalf("exchange child is %T, want *windowPartitionOp", ex.child)
	}
	ctx := &Context{Txn: mgr.Begin(), Threads: 8}
	if err := op.Open(ctx); err != nil {
		t.Fatal(err)
	}
	total := 0
	for {
		c, err := op.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if c == nil {
			break
		}
		total += c.Len()
	}
	counts := wp.mergeRows()
	op.Close(ctx)
	if total != rows {
		t.Fatalf("drained %d rows, want %d", total, rows)
	}
	if counts == nil {
		t.Fatal("window merge did not partition (PartitionMerge declined)")
	}
	nonzero := 0
	var sum int64
	for _, n := range counts {
		if n > 0 {
			nonzero++
		}
		sum += n
	}
	if nonzero < 2 {
		t.Fatalf("window merge+cut ran on %d workers (range rows %v), want >= 2", nonzero, counts)
	}
	if sum != rows {
		t.Fatalf("range workers cut %d rows total, want %d (%v)", sum, rows, counts)
	}
}

// TestExchangeSplitsOversizedChunks: a window with one huge partition
// (empty PARTITION BY) produces a single oversized partition chunk; the
// exchange must re-split it into ChunkCapacity-aligned slice items and
// the sliced evaluation must stay bit-identical to sequential.
func TestExchangeSplitsOversizedChunks(t *testing.T) {
	const rows = 20_000
	mgr := txn.NewManager(nil)
	entry := buildFactTable(t, mgr, rows)
	col := func() expr.Expr { return &expr.ColRef{Idx: 0, Typ: types.BigInt} }
	mod := func(m int64) expr.Expr {
		return &expr.Arith{Op: expr.OpMod, L: col(), R: &expr.Const{Val: types.NewBigInt(m)}, Typ: types.BigInt}
	}
	node := &plan.WindowNode{
		Child:   &plan.ScanNode{Table: entry, Columns: []int{0}},
		OrderBy: []plan.SortKey{{Expr: mod(97)}},
		// General (non-growing) wide frame: slices split its O(n*width)
		// rescan across workers (width 201 passes the wantSlices gate).
		Frame: plan.WindowFrame{Set: true, Rows: true,
			Start: plan.FrameBound{Offset: 100, Preceding: true},
			End:   plan.FrameBound{Offset: 100}},
		Funcs: []plan.WindowFunc{
			{Func: "row_number", Type: types.BigInt, Name: "rn"},
			{Func: "rank", Type: types.BigInt, Name: "rk"},
			{Func: "sum", Arg: col(), Type: types.BigInt, Name: "s"},
			{Func: "min", Arg: col(), Type: types.BigInt, Name: "m"},
		},
	}
	want := renderWindow(t, node, &Context{Txn: mgr.Begin(), Threads: 1})
	for _, threads := range []int{2, 8} {
		got := renderWindow(t, node, &Context{Txn: mgr.Begin(), Threads: threads})
		if got != want {
			t.Fatalf("threads=%d sliced huge-partition eval diverges:\n got: %.200s\nwant: %.200s", threads, got, want)
		}
	}
}

// TestSplitChunkPolicy pins the re-split shape: ChunkCapacity alignment
// (so output chunk boundaries match unsplit evaluation), a 4-per-worker
// item cap, and pass-through for engine-sized chunks.
func TestSplitChunkPolicy(t *testing.T) {
	e := &exchangeOp{ordered: true, workers: 2}
	mk := func(n int) *vector.Chunk {
		c := vector.NewChunk([]types.Type{types.BigInt})
		for i := 0; i < n; i++ {
			c.AppendRow(types.NewBigInt(int64(i)))
		}
		return c
	}
	if items := e.splitChunk(mk(vector.ChunkCapacity), 7); len(items) != 1 || items[0].seq != 7 {
		t.Fatalf("engine-sized chunk split: %v", items)
	}
	huge := mk(20 * vector.ChunkCapacity)
	items := e.splitChunk(huge, 0)
	if len(items) < 2 || len(items) > 8 { // capped at workers*4
		t.Fatalf("%d items, want 2..8", len(items))
	}
	last := 0
	for i, it := range items {
		if it.seq != i {
			t.Fatalf("item %d seq %d", i, it.seq)
		}
		if it.lo != last {
			t.Fatalf("item %d starts at %d, want %d", i, it.lo, last)
		}
		if it.lo%vector.ChunkCapacity != 0 {
			t.Fatalf("item %d not ChunkCapacity-aligned: %d", i, it.lo)
		}
		last = it.hi
	}
	if last != huge.Len() {
		t.Fatalf("items cover %d rows, want %d", last, huge.Len())
	}
	e.ordered = false
	if items := e.splitChunk(huge, 0); len(items) != 1 {
		t.Fatalf("unordered mode split a chunk into %d items", len(items))
	}
}
