package exec

import (
	"fmt"
	"testing"

	"repro/internal/buffer"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/txn"
	"repro/internal/types"
)

// mkSortNode builds ORDER BY (v % 97) ASC, v DESC over the fact table:
// the first key is tie-heavy so the hidden tiebreak column really
// decides placements.
func mkSortNode(t *testing.T, n int, mgr *txn.Manager) (*plan.SortNode, *txn.Manager) {
	t.Helper()
	entry := buildFactTable(t, mgr, n)
	col := func() expr.Expr { return &expr.ColRef{Idx: 0, Typ: types.BigInt} }
	return &plan.SortNode{
		Child: &plan.ScanNode{Table: entry, Columns: []int{0}},
		Keys: []plan.SortKey{
			{Expr: &expr.Arith{Op: expr.OpMod, L: col(), R: &expr.Const{Val: types.NewBigInt(97)}, Typ: types.BigInt}},
			{Expr: col(), Desc: true},
		},
	}, mgr
}

func renderSort(t *testing.T, node plan.Node, ctx *Context) string {
	t.Helper()
	op, err := BuildParallel(node, ctx.Threads)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Threads > 1 {
		if _, ok := op.(*parSortOp); !ok {
			t.Fatalf("threads=%d built %T, want *parSortOp", ctx.Threads, op)
		}
	}
	out := ""
	for _, c := range collectAll(t, ctx, op) {
		out += fmt.Sprint(c.Cols[0].I64[:c.Len()], "|")
	}
	return out
}

// TestParallelSortMatchesSequential: per-worker runs merged at the
// breaker must reproduce the sequential stable sort bit-identically,
// including the order of key-equal rows.
func TestParallelSortMatchesSequential(t *testing.T) {
	node, mgr := mkSortNode(t, 30_000, txn.NewManager(nil))
	want := renderSort(t, node, &Context{Txn: mgr.Begin(), Threads: 1})
	for _, threads := range []int{2, 3, 8} {
		got := renderSort(t, node, &Context{Txn: mgr.Begin(), Threads: threads})
		if got != want {
			t.Fatalf("threads=%d sort diverges:\n got: %.200s\nwant: %.200s", threads, got, want)
		}
	}
}

// TestParallelSortSpillDifferential: with a tiny sort budget every
// worker spills multiple runs to disk; the merged disk result must equal
// the unconstrained in-memory result, and all pool reservations must be
// returned.
func TestParallelSortSpillDifferential(t *testing.T) {
	node, mgr := mkSortNode(t, 40_000, txn.NewManager(nil))
	want := renderSort(t, node, &Context{Txn: mgr.Begin(), Threads: 1})
	for _, threads := range []int{1, 4} {
		pool := buffer.NewPool(0, nil)
		ctx := &Context{Txn: mgr.Begin(), Threads: threads, Pool: pool,
			SortBudget: 32 << 10, TmpDir: t.TempDir()}
		got := renderSort(t, node, ctx)
		if got != want {
			t.Fatalf("threads=%d spilling sort diverges:\n got: %.200s\nwant: %.200s", threads, got, want)
		}
		if used := pool.Used(); used != 0 {
			t.Fatalf("threads=%d: %d bytes still reserved after drain", threads, used)
		}
	}
}

// TestParallelSortEarlyClose: a limit above the parallel sort abandons
// the stream; Close must cancel the pipeline workers and release the
// sorter's temp state without deadlocking.
func TestParallelSortEarlyClose(t *testing.T) {
	node, mgr := mkSortNode(t, 20_000, txn.NewManager(nil))
	limited := &plan.LimitNode{Child: node, Limit: 3}
	op, err := BuildParallel(limited, 4)
	if err != nil {
		t.Fatal(err)
	}
	pool := buffer.NewPool(0, nil)
	ctx := &Context{Txn: mgr.Begin(), Threads: 4, Pool: pool, SortBudget: 16 << 10, TmpDir: t.TempDir()}
	chunks := collectAll(t, ctx, op)
	if rows := countRows(chunks); rows != 3 {
		t.Fatalf("limit over parallel sort: %d rows, want 3", rows)
	}
	if used := pool.Used(); used != 0 {
		t.Fatalf("pool leak after early close: %d bytes", used)
	}
}

// TestParallelSortErrorPropagates: a failing key expression inside a
// sort worker must surface as the query error at every thread count.
func TestParallelSortErrorPropagates(t *testing.T) {
	mgr := txn.NewManager(nil)
	entry := buildFactTable(t, mgr, 10_000)
	col := func() expr.Expr { return &expr.ColRef{Idx: 0, Typ: types.BigInt} }
	node := &plan.SortNode{
		Child: &plan.ScanNode{Table: entry, Columns: []int{0}},
		Keys: []plan.SortKey{{Expr: &expr.Arith{Op: expr.OpMod, L: col(),
			R: &expr.Arith{Op: expr.OpSub, L: col(), R: col(), Typ: types.BigInt}, Typ: types.BigInt}}},
	}
	for _, threads := range []int{1, 4} {
		op, err := BuildParallel(node, threads)
		if err != nil {
			t.Fatal(err)
		}
		ctx := &Context{Txn: mgr.Begin(), Threads: threads}
		if _, err := Collect(ctx, op); err == nil {
			t.Fatalf("threads=%d: modulo by zero in sort key did not error", threads)
		}
	}
}

// TestParallelSortMergePartitioned: the merge phase must actually run
// partitioned — on a 1-CPU host wall-clock speedup is unobservable, so
// this asserts the work split instead: several range workers each
// merged a non-trivial share of the rows, and the repacked stream still
// matches the sequential merge (covered by MatchesSequential above).
func TestParallelSortMergePartitioned(t *testing.T) {
	const rows = 30_000
	node, mgr := mkSortNode(t, rows, txn.NewManager(nil))
	op, err := BuildParallel(node, 8)
	if err != nil {
		t.Fatal(err)
	}
	ps, ok := op.(*parSortOp)
	if !ok {
		t.Fatalf("built %T, want *parSortOp", op)
	}
	ctx := &Context{Txn: mgr.Begin(), Threads: 8}
	if err := op.Open(ctx); err != nil {
		t.Fatal(err)
	}
	total := 0
	for {
		c, err := op.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if c == nil {
			break
		}
		total += c.Len()
	}
	counts := ps.mergeRows()
	op.Close(ctx)
	if total != rows {
		t.Fatalf("drained %d rows, want %d", total, rows)
	}
	if counts == nil {
		t.Fatal("merge phase did not partition (PartitionMerge declined)")
	}
	nonzero := 0
	var sum int64
	for _, n := range counts {
		if n > 0 {
			nonzero++
		}
		sum += n
	}
	if nonzero < 2 {
		t.Fatalf("merge ran on %d workers (range rows %v), want >= 2", nonzero, counts)
	}
	if sum != rows {
		t.Fatalf("range workers merged %d rows total, want %d (%v)", sum, rows, counts)
	}
}
