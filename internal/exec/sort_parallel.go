package exec

import (
	"repro/internal/extsort"
	"repro/internal/plan"
	"repro/internal/types"
	"repro/internal/vector"
)

// parSortOp is the morsel-parallel ORDER BY pipeline breaker: each
// worker of the child pipeline evaluates the sort keys and feeds its own
// external sorter (building sorted runs independently, sharing the sort
// budget and buffer pool), and Finish k-way merges every worker's runs
// and in-memory buffers through the extsort merge machinery.
//
// Determinism: rows carry a hidden tiebreak key — their packed
// (morsel, row) position — appended after the user's sort keys. The
// sequential sortOp is a stable sort over the morsel-ordered stream, so
// key-equal rows emerge in exactly (morsel, row) order there too; with
// the tiebreak the merged order is a total order independent of which
// worker sorted which morsel, making output bit-identical at every
// thread count.
type parSortOp struct {
	scan *parScanOp
	node *plan.SortNode

	iter    *extsort.Iterator
	np      int // payload column count
	started bool
}

func newParSortOp(spec *pipelineSpec, n *plan.SortNode) *parSortOp {
	return &parSortOp{scan: newParScanOp(spec), node: n}
}

func (s *parSortOp) Open(ctx *Context) error {
	s.started = false
	s.iter = nil
	return nil
}

func (s *parSortOp) Next(ctx *Context) (*vector.Chunk, error) {
	if !s.started {
		if err := s.build(ctx); err != nil {
			return nil, err
		}
		s.started = true
	}
	chunk, err := s.iter.Next()
	if err != nil || chunk == nil {
		return nil, err
	}
	// Strip the appended key and tiebreak columns.
	out := &vector.Chunk{Cols: chunk.Cols[:s.np]}
	out.SetLen(chunk.Len())
	return out, nil
}

func (s *parSortOp) build(ctx *Context) error {
	payload := schemaTypes(s.node.Child.Schema())
	s.np = len(payload)
	nk := len(s.node.Keys)
	extTypes := append(append([]types.Type(nil), payload...), keyTypesOf(s.node)...)
	extTypes = append(extTypes, types.BigInt) // hidden (morsel, row) tiebreak
	keys := make([]extsort.Key, nk+1)
	for i, k := range s.node.Keys {
		keys[i] = extsort.Key{Col: s.np + i, Desc: k.Desc, NullsFirst: k.NullsFirst}
	}
	keys[nk] = extsort.Key{Col: s.np + nk}

	// Open the source first so the worker count (bounded by morsels) is
	// known and the budget can be split across the actual pool size,
	// keeping the memory envelope equal to the sequential sorter's.
	if err := s.scan.Open(ctx); err != nil {
		return err
	}
	workers := s.scan.workerCount(ctx)
	budget := ctx.sortBudget()
	if budget > 0 && workers > 1 {
		budget /= int64(workers)
		if budget < 1 {
			budget = 1
		}
	}

	// mkSink runs on the coordinating goroutine and the sorters are only
	// merged after consume has joined every worker, so the slice needs
	// no locking; the shared buffer pool is internally synchronized.
	var sorters []*extsort.Sorter
	_, err := s.scan.consume(ctx, func(w int) func(int, *vector.Chunk) error {
		sorter := extsort.NewSorter(extTypes, keys, budget, ctx.TmpDir)
		if ctx.Pool != nil {
			sorter.SetPool(ctx.Pool)
		}
		sorters = append(sorters, sorter)
		keyExprs := keyExprsOf(s.node)
		return func(seq int, chunk *vector.Chunk) error {
			ext, err := extendWithKeys(chunk, keyExprs)
			if err != nil {
				return err
			}
			tie := vector.NewLen(types.BigInt, chunk.Len())
			for r := 0; r < chunk.Len(); r++ {
				tie.I64[r] = packAggPos(seq, r)
			}
			ext.Cols = append(ext.Cols, tie)
			return sorter.Add(ext)
		}
	})
	if err != nil {
		for _, sorter := range sorters {
			sorter.Close()
		}
		return err
	}
	iter, err := extsort.MergeFinish(sorters)
	if err != nil {
		for _, sorter := range sorters {
			sorter.Close()
		}
		return err
	}
	s.iter = iter
	return nil
}

func (s *parSortOp) Close(ctx *Context) {
	if s.iter != nil {
		s.iter.Close()
		s.iter = nil
	}
	s.scan.Close(ctx)
}
