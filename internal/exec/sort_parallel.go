package exec

import (
	"repro/internal/extsort"
	"repro/internal/plan"
	"repro/internal/types"
	"repro/internal/vector"
)

// parSortOp is the morsel-parallel ORDER BY pipeline breaker: each
// worker of the child pipeline evaluates the sort keys and feeds its own
// external sorter (building sorted runs independently, sharing the sort
// budget and buffer pool), and Finish k-way merges every worker's runs
// and in-memory buffers through the extsort merge machinery.
//
// Determinism: rows carry a hidden tiebreak key — their packed
// (morsel, row) position — appended after the user's sort keys. The
// sequential sortOp is a stable sort over the morsel-ordered stream, so
// key-equal rows emerge in exactly (morsel, row) order there too; with
// the tiebreak the merged order is a total order independent of which
// worker sorted which morsel, making output bit-identical at every
// thread count.
type parSortOp struct {
	scan *parScanOp
	node *plan.SortNode

	iter    *extsort.Iterator
	merge   *parMergeStream // partitioned merge phase (nil: serial merge)
	carry   *vector.Chunk   // repack buffer aligning chunk boundaries
	rem     *vector.Chunk   // unconsumed tail of the last merged chunk
	remPos  int
	np      int // payload column count
	started bool
}

func newParSortOp(spec *pipelineSpec, n *plan.SortNode) *parSortOp {
	return &parSortOp{scan: newParScanOp(spec), node: n}
}

func (s *parSortOp) Open(ctx *Context) error {
	s.started = false
	s.iter = nil
	s.merge = nil
	s.carry = nil
	s.rem, s.remPos = nil, 0
	return nil
}

func (s *parSortOp) Next(ctx *Context) (*vector.Chunk, error) {
	if !s.started {
		if err := s.build(ctx); err != nil {
			return nil, err
		}
		s.started = true
	}
	chunk, err := s.nextSorted()
	if err != nil || chunk == nil {
		return nil, err
	}
	// Strip the appended key and tiebreak columns.
	out := &vector.Chunk{Cols: chunk.Cols[:s.np]}
	out.SetLen(chunk.Len())
	return out, nil
}

// nextSorted streams the merge phase. The partitioned merge emits a
// partial chunk at every range boundary, so its output is repacked into
// full ChunkCapacity chunks — the exact boundaries the serial merge
// produces, keeping the operator's chunk stream identical at every
// thread count.
func (s *parSortOp) nextSorted() (*vector.Chunk, error) {
	if s.merge == nil {
		return s.iter.Next()
	}
	for {
		if s.rem != nil {
			if s.carry == nil && s.remPos == 0 && s.rem.Len() == vector.ChunkCapacity {
				out := s.rem
				s.rem = nil
				return out, nil
			}
			if s.carry == nil {
				s.carry = vector.NewChunk(s.rem.Types())
			}
			take := vector.ChunkCapacity - s.carry.Len()
			if rest := s.rem.Len() - s.remPos; take > rest {
				take = rest
			}
			for ci, col := range s.carry.Cols {
				col.AppendRange(s.rem.Cols[ci], s.remPos, take)
			}
			s.carry.SetLen(s.carry.Cols[0].Len())
			s.remPos += take
			if s.remPos == s.rem.Len() {
				s.rem = nil
			}
			if s.carry.Len() == vector.ChunkCapacity {
				out := s.carry
				s.carry = nil
				return out, nil
			}
			continue
		}
		c, err := s.merge.Next()
		if err != nil {
			return nil, err
		}
		if c == nil { // tail: the stream's only partial chunk
			out := s.carry
			s.carry = nil
			return out, nil
		}
		s.rem, s.remPos = c, 0
	}
}

func (s *parSortOp) build(ctx *Context) error {
	payload := schemaTypes(s.node.Child.Schema())
	s.np = len(payload)
	nk := len(s.node.Keys)
	extTypes := append(append([]types.Type(nil), payload...), keyTypesOf(s.node)...)
	extTypes = append(extTypes, types.BigInt) // hidden (morsel, row) tiebreak
	keys := make([]extsort.Key, nk+1)
	for i, k := range s.node.Keys {
		keys[i] = extsort.Key{Col: s.np + i, Desc: k.Desc, NullsFirst: k.NullsFirst}
	}
	keys[nk] = extsort.Key{Col: s.np + nk}

	// Open the source first so the worker count (bounded by morsels) is
	// known and the budget can be split across the actual pool size,
	// keeping the memory envelope equal to the sequential sorter's.
	if err := s.scan.Open(ctx); err != nil {
		return err
	}
	workers := s.scan.workerCount(ctx)
	budget := ctx.sortBudget()
	if budget > 0 && workers > 1 {
		budget /= int64(workers)
		if budget < 1 {
			budget = 1
		}
	}

	// mkSink runs on the coordinating goroutine and the sorters are only
	// merged after consume has joined every worker, so the slice needs
	// no locking; the shared buffer pool is internally synchronized.
	var sorters []*extsort.Sorter
	_, err := s.scan.consume(ctx, func(w int) func(int, *vector.Chunk) error {
		sorter := extsort.NewSorter(extTypes, keys, budget, ctx.TmpDir)
		if ctx.Pool != nil {
			sorter.SetPool(ctx.Pool)
		}
		sorters = append(sorters, sorter)
		keyExprs := keyExprsOf(s.node)
		return func(seq int, chunk *vector.Chunk) error {
			ext, err := extendWithKeys(chunk, keyExprs)
			if err != nil {
				return err
			}
			tie := vector.NewLen(types.BigInt, chunk.Len())
			for r := 0; r < chunk.Len(); r++ {
				tie.I64[r] = packAggPos(seq, r)
			}
			ext.Cols = append(ext.Cols, tie)
			return sorter.Add(ext)
		}
	})
	if err != nil {
		for _, sorter := range sorters {
			sorter.Close()
		}
		return err
	}
	iter, err := extsort.MergeFinish(sorters)
	if err != nil {
		for _, sorter := range sorters {
			sorter.Close()
		}
		return err
	}
	var spilled int64
	for _, sorter := range sorters {
		spilled += sorter.SpilledBytes()
	}
	recordSortSpill(ctx, s.node, spilled)
	s.iter = iter

	// Partitioned merge phase: split the cursors' key domain at sampled
	// quantiles and let ctx.Threads workers each loser-tree-merge their
	// own range. The hidden tiebreak makes the keys a total order, so
	// ranges are exact and the re-emitted concatenation is bit-identical
	// to the serial merge. PartitionMerge returns nil on skew/tiny
	// inputs — then the serial loser-tree merge stands.
	if ctx.Threads > 1 {
		parts, err := iter.PartitionMerge(ctx.Threads, keys)
		if err != nil {
			iter.Close()
			s.iter = nil
			return err
		}
		if len(parts) > 1 {
			s.merge = newParMergeStream(ctx, parts, chunkCursor)
		}
	}
	return nil
}

// mergeRows reports rows emitted per merge-phase worker (test hook;
// valid after the stream has drained).
func (s *parSortOp) mergeRows() []int64 {
	if s.merge == nil {
		return nil
	}
	return s.merge.rows
}

func (s *parSortOp) Close(ctx *Context) {
	if s.merge != nil {
		s.merge.Close() // join range workers before their files close
		s.merge = nil
	}
	if s.iter != nil {
		s.iter.Close()
		s.iter = nil
	}
	s.carry, s.rem = nil, nil
	s.scan.Close(ctx)
}
