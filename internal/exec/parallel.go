package exec

import (
	"sync"
	"time"

	"repro/internal/sched"
	"repro/internal/table"
	"repro/internal/vector"
)

// parResult is one processed morsel: its dense sequence number and the
// chunks its pipeline emitted (empty when every row was filtered out).
type parResult struct {
	seq    int
	chunks []*vector.Chunk
	err    error
}

// parScanOp executes a morsel-driven pipeline on the engine-wide
// scheduler. The operator keeps Threads worker states (a morsel scanner
// plus private stage instances each); every state advances by short
// re-submitting steps — claim a morsel, run the stages, post the result
// — so the actual goroutines belong to the shared pool and a query
// never spawns its own. The operator's Next reassembles the chunks in
// morsel order, so consumers observe exactly the chunk stream the
// sequential scan→filter→project chain would produce — parallelism
// never changes row order.
//
// Flow control: a worker state takes a reorder-buffer ticket before
// claiming a morsel and the merger returns it when that morsel is
// emitted. A state that finds no ticket parks (costing the pool
// nothing) and is re-submitted by the consumer when it frees one; the
// results channel's capacity equals the ticket window, so a step's send
// never blocks a pool worker.
//
// The operator has a second execution mode for pipeline breakers:
// consume() pushes every worker state's chunks straight into a
// worker-local sink (a partial aggregate or a join build partition)
// without the ordering barrier.
type parScanOp struct {
	spec  *pipelineSpec
	extra []stageFactory // stages attached by a parent (join probe)

	src     *table.MorselSource
	results chan parResult

	mu        sync.Mutex
	idle      *sync.Cond    // signalled when active reaches zero
	parked    []*scanWorker // states waiting for a ticket
	active    int           // states queued or running on the pool
	cancelled bool

	closeOnce sync.Once

	// buf is the shared ordered-merge state machine: workers take a
	// ticket before claiming a morsel and the merger returns it when
	// that morsel is emitted, so the reorder buffer holds at most its
	// window depth in morsels even under scheduling skew.
	buf *reorderBuf

	// maxWorkers, when >0, caps the worker-state count below
	// ctx.Threads — the aggregation budget floor clamps through it.
	maxWorkers int

	nmorsel int
	failed  error
	started bool
}

// scanWorker is one worker state: a morsel scanner and private stage
// instances. Its step method is the unit the scheduler runs.
type scanWorker struct {
	op     *parScanOp
	ctx    *Context
	ms     *table.MorselScanner
	stages []stage
	q      *sched.Query
}

func newParScanOp(spec *pipelineSpec) *parScanOp { return &parScanOp{spec: spec} }

// attachStages appends per-worker stages to the pipeline (the hash join
// attaches its probe stage). Must be called before the first Next or
// consume — workers snapshot their stages when they start.
func (p *parScanOp) attachStages(f ...stageFactory) { p.extra = append(p.extra, f...) }

// workerCount sizes the worker state: no more states than morsels, at
// least 1, capped by maxWorkers when a budget clamp is in force.
func (p *parScanOp) workerCount(ctx *Context) int {
	w := ctx.Threads
	if p.maxWorkers > 0 && w > p.maxWorkers {
		w = p.maxWorkers
	}
	if w > p.nmorsel {
		w = p.nmorsel
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (p *parScanOp) openSource(ctx *Context) error {
	src, err := p.spec.scan.Table.Data.NewMorselSource(ctx.Txn, scanOptions(ctx, p.spec.scan))
	if err != nil {
		return err
	}
	p.src = src
	p.nmorsel = src.NumMorsels()
	return nil
}

func (p *parScanOp) workerStages() []stage {
	stages := p.spec.newStages()
	for _, f := range p.extra {
		stages = append(stages, f())
	}
	return stages
}

// Open acquires the morsel source (pinning the scanned columns, which
// can fail under a memory budget). Workers start lazily on the first
// Next, so parents may still attach stages after a successful Open.
func (p *parScanOp) Open(ctx *Context) error {
	if p.src != nil {
		return nil // reopened by a join fallback; keep the source
	}
	return p.openSource(ctx)
}

// start submits the worker states feeding the ordered merge.
func (p *parScanOp) start(ctx *Context) {
	p.started = true
	workers := p.workerCount(ctx)
	win := workers * 4
	p.results = make(chan parResult, win) // cap = tickets: sends never block
	p.buf = newReorderBuf(win)
	p.idle = sync.NewCond(&p.mu)
	q := ctx.queryTasks()
	p.active = workers
	for i := 0; i < workers; i++ {
		w := &scanWorker{op: p, ctx: ctx, ms: p.src.Worker(), stages: p.workerStages(), q: q}
		q.Submit(w.step)
	}
}

// exitLocked retires one worker state. Caller holds p.mu.
func (p *parScanOp) exitLocked() {
	p.active--
	if p.active == 0 {
		p.idle.Broadcast()
	}
}

// step processes one morsel and re-submits itself. It never blocks on
// the pool: a missing ticket parks the state instead, and the results
// channel always has room for ticket holders.
//
//quack:hotpath
func (w *scanWorker) step() {
	p := w.op
	p.mu.Lock()
	if p.cancelled {
		p.exitLocked()
		p.mu.Unlock()
		return
	}
	if !p.buf.tryAcquire() {
		p.parked = append(p.parked, w)
		p.exitLocked()
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	slot := p.spec.scanSlot
	var t0 time.Time
	if slot != nil {
		t0 = time.Now()
	}
	seq, chunk, err := w.ms.Next()
	if seq < 0 && err == nil {
		p.mu.Lock()
		p.buf.release() // no morsel claimed; return the ticket
		p.exitLocked()
		p.mu.Unlock()
		return
	}
	if slot != nil {
		slot.Morsels.Add(1)
		if chunk != nil && p.spec.countScanRows {
			slot.Rows.Add(int64(chunk.Len()))
			slot.Chunks.Add(1)
		}
	}
	var out []*vector.Chunk
	if err == nil && chunk != nil {
		err = runStages(w.ctx, w.stages, chunk, func(c *vector.Chunk) error {
			if c.Len() > 0 {
				out = append(out, c)
			}
			return nil
		})
	}
	if slot != nil {
		slot.BusyNs.Add(time.Since(t0).Nanoseconds())
	}
	p.results <- parResult{seq: seq, chunks: out, err: err}
	if err != nil {
		p.mu.Lock()
		p.exitLocked()
		p.mu.Unlock()
		return
	}
	w.q.Submit(w.step)
}

// unparkOne re-submits one parked worker state after the consumer freed
// a ticket. Spurious unparks are harmless: the state parks again.
func (p *parScanOp) unparkOne() {
	p.mu.Lock()
	if !p.cancelled && len(p.parked) > 0 {
		w := p.parked[len(p.parked)-1]
		p.parked = p.parked[:len(p.parked)-1]
		p.active++
		w.q.Submit(w.step)
	}
	p.mu.Unlock()
}

// Next implements Operator: it emits the workers' chunks in morsel
// order. Out-of-order results are parked in a bounded reorder buffer
// (claims require tickets, so at most the window depth in morsels is
// ever buffered).
func (p *parScanOp) Next(ctx *Context) (*vector.Chunk, error) {
	if p.failed != nil {
		return nil, p.failed
	}
	if !p.started {
		p.start(ctx)
	}
	for {
		if out, ok := p.buf.pop(); ok {
			return out, nil
		}
		if p.buf.seq() >= p.nmorsel {
			return nil, nil
		}
		if p.buf.advance() { // freed a ticket: let a parked state claim it
			p.unparkOne()
			continue
		}
		res := <-p.results
		if res.err != nil {
			p.failed = res.err
			return nil, res.err
		}
		p.buf.park(res.seq, res.chunks)
	}
}

// Close stops the worker states and releases the morsel source. Queued
// steps observe the cancel flag and retire; parked states are dropped
// without costing the pool a slot.
func (p *parScanOp) Close(ctx *Context) {
	p.closeOnce.Do(func() {
		if p.started {
			p.mu.Lock()
			p.cancelled = true
			p.parked = nil
			for p.active > 0 {
				p.idle.Wait()
			}
			p.mu.Unlock()
		}
		if p.src != nil {
			p.src.Close()
		}
		if p.buf != nil {
			p.buf.drop()
		}
	})
}

// consume runs the pipeline in sink mode for pipeline breakers: worker
// state w pushes each (seq, chunk) it produces into the sink mkSink(w)
// returned for it, with no ordering barrier. It returns the number of
// worker states (= number of sinks created). consume replaces
// Open/Next; Close must still be called to release the source.
//
// Each state is a re-submitting step, so the FIFO round-robins morsels
// across states even on a one-worker pool — partial sinks stay spread
// the way per-state goroutines would have spread them.
func (p *parScanOp) consume(ctx *Context, mkSink func(w int) func(seq int, c *vector.Chunk) error) (int, error) {
	if p.src == nil {
		if err := p.openSource(ctx); err != nil {
			return 0, err
		}
	}
	p.started = true
	workers := p.workerCount(ctx)
	q := ctx.queryTasks()
	var (
		mu        sync.Mutex
		firstErr  error
		cancelled bool
	)
	remaining := workers
	done := make(chan struct{})
	finish := func() {
		mu.Lock()
		remaining--
		if remaining == 0 {
			close(done)
		}
		mu.Unlock()
	}
	for i := 0; i < workers; i++ {
		sink := mkSink(i)
		ms := p.src.Worker()
		stages := p.workerStages()
		var step func()
		step = func() {
			mu.Lock()
			stop := cancelled
			mu.Unlock()
			if stop {
				finish()
				return
			}
			slot := p.spec.scanSlot
			var t0 time.Time
			if slot != nil {
				t0 = time.Now()
			}
			seq, chunk, err := ms.Next()
			if seq < 0 && err == nil {
				finish()
				return
			}
			if slot != nil {
				slot.Morsels.Add(1)
				if chunk != nil && p.spec.countScanRows {
					slot.Rows.Add(int64(chunk.Len()))
					slot.Chunks.Add(1)
				}
			}
			if err == nil && chunk != nil {
				err = runStages(ctx, stages, chunk, func(c *vector.Chunk) error {
					if c.Len() == 0 {
						return nil
					}
					return sink(seq, c)
				})
			}
			if slot != nil {
				slot.BusyNs.Add(time.Since(t0).Nanoseconds())
			}
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				cancelled = true
				mu.Unlock()
				finish()
				return
			}
			q.Submit(step)
		}
		q.Submit(step)
	}
	<-done
	mu.Lock()
	err := firstErr
	mu.Unlock()
	return workers, err
}
