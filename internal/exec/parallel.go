package exec

import (
	"sync"

	"repro/internal/table"
	"repro/internal/vector"
)

// parResult is one processed morsel: its dense sequence number and the
// chunks its pipeline emitted (empty when every row was filtered out).
type parResult struct {
	seq    int
	chunks []*vector.Chunk
	err    error
}

// parScanOp executes a morsel-driven pipeline with a worker pool. Each
// worker draws segments from a shared MorselSource, runs its own stage
// instances over them, and posts the results; the operator's Next
// reassembles the chunks in morsel order, so consumers observe exactly
// the chunk stream the sequential scan→filter→project chain would
// produce — parallelism never changes row order.
//
// The operator has a second execution mode for pipeline breakers:
// consume() pushes every worker's chunks straight into a worker-local
// sink (a partial aggregate or a join build partition) without the
// ordering barrier.
type parScanOp struct {
	spec  *pipelineSpec
	extra []stageFactory // stages attached by a parent (join probe)

	src        *table.MorselSource
	results    chan parResult
	cancel     chan struct{}
	cancelOnce sync.Once
	closeOnce  sync.Once
	wg         sync.WaitGroup

	// buf is the shared ordered-merge state machine: workers take a
	// ticket before claiming a morsel and the merger returns it when
	// that morsel is emitted, so the reorder buffer holds at most its
	// window depth in morsels even under scheduling skew.
	buf *reorderBuf

	nmorsel int
	failed  error
	started bool
}

func newParScanOp(spec *pipelineSpec) *parScanOp { return &parScanOp{spec: spec} }

// attachStages appends per-worker stages to the pipeline (the hash join
// attaches its probe stage). Must be called before the first Next or
// consume — workers snapshot their stages when they start.
func (p *parScanOp) attachStages(f ...stageFactory) { p.extra = append(p.extra, f...) }

// workerCount sizes the pool: no more workers than morsels, at least 1.
func (p *parScanOp) workerCount(ctx *Context) int {
	w := ctx.Threads
	if w > p.nmorsel {
		w = p.nmorsel
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (p *parScanOp) openSource(ctx *Context) error {
	src, err := p.spec.scan.Table.Data.NewMorselSource(ctx.Txn, scanOptions(ctx, p.spec.scan))
	if err != nil {
		return err
	}
	p.src = src
	p.nmorsel = src.NumMorsels()
	return nil
}

func (p *parScanOp) workerStages() []stage {
	stages := p.spec.newStages()
	for _, f := range p.extra {
		stages = append(stages, f())
	}
	return stages
}

// Open acquires the morsel source (pinning the scanned columns, which
// can fail under a memory budget). Workers spawn lazily on the first
// Next, so parents may still attach stages after a successful Open.
func (p *parScanOp) Open(ctx *Context) error {
	if p.src != nil {
		return nil // reopened by a join fallback; keep the source
	}
	return p.openSource(ctx)
}

// start spawns the worker pool feeding the ordered merge.
func (p *parScanOp) start(ctx *Context) {
	p.started = true
	workers := p.workerCount(ctx)
	win := workers * 4
	p.results = make(chan parResult, win)
	p.buf = newReorderBuf(win)
	p.cancel = make(chan struct{})
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker(ctx)
	}
}

func (p *parScanOp) worker(ctx *Context) {
	defer p.wg.Done()
	ms := p.src.Worker()
	stages := p.workerStages()
	for {
		if !p.buf.acquire(p.cancel) {
			return
		}
		seq, chunk, err := ms.Next()
		if seq < 0 && err == nil {
			p.buf.release() // no morsel claimed; return the ticket
			return
		}
		var out []*vector.Chunk
		if err == nil && chunk != nil {
			err = runStages(ctx, stages, chunk, func(c *vector.Chunk) error {
				if c.Len() > 0 {
					out = append(out, c)
				}
				return nil
			})
		}
		select {
		case p.results <- parResult{seq: seq, chunks: out, err: err}:
		case <-p.cancel:
			return
		}
		if err != nil {
			return
		}
	}
}

// Next implements Operator: it emits the workers' chunks in morsel
// order. Out-of-order results are parked in a bounded reorder buffer
// (workers block on the results channel, so at most workers+capacity
// morsels are ever buffered).
func (p *parScanOp) Next(ctx *Context) (*vector.Chunk, error) {
	if p.failed != nil {
		return nil, p.failed
	}
	if !p.started {
		p.start(ctx)
	}
	for {
		if out, ok := p.buf.pop(); ok {
			return out, nil
		}
		if p.buf.seq() >= p.nmorsel {
			return nil, nil
		}
		if p.buf.advance() { // emitted: lets a worker claim another morsel
			continue
		}
		res := <-p.results
		if res.err != nil {
			p.failed = res.err
			return nil, res.err
		}
		p.buf.park(res.seq, res.chunks)
	}
}

// cancelWorkers asks outstanding workers to stop at their next step.
func (p *parScanOp) cancelWorkers() {
	p.cancelOnce.Do(func() {
		if p.cancel != nil {
			close(p.cancel)
		}
	})
}

// Close cancels outstanding workers and releases the morsel source.
func (p *parScanOp) Close(ctx *Context) {
	p.closeOnce.Do(func() {
		p.cancelWorkers()
		p.wg.Wait()
		if p.src != nil {
			p.src.Close()
		}
		if p.buf != nil {
			p.buf.drop()
		}
	})
}

// consume runs the pipeline in sink mode for pipeline breakers: worker
// w pushes each (seq, chunk) it produces into the sink mkSink(w)
// returned for it, with no ordering barrier. It returns the number of
// workers spawned (= number of sinks created). consume replaces
// Open/Next; Close must still be called to release the source.
func (p *parScanOp) consume(ctx *Context, mkSink func(w int) func(seq int, c *vector.Chunk) error) (int, error) {
	if p.src == nil {
		if err := p.openSource(ctx); err != nil {
			return 0, err
		}
	}
	p.started = true
	workers := p.workerCount(ctx)
	p.cancel = make(chan struct{})
	errCh := make(chan error, workers)
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		sink := mkSink(i)
		go func() {
			defer p.wg.Done()
			ms := p.src.Worker()
			stages := p.workerStages()
			for {
				select {
				case <-p.cancel:
					return
				default:
				}
				seq, chunk, err := ms.Next()
				if seq < 0 && err == nil {
					return
				}
				if err == nil && chunk != nil {
					err = runStages(ctx, stages, chunk, func(c *vector.Chunk) error {
						if c.Len() == 0 {
							return nil
						}
						return sink(seq, c)
					})
				}
				if err != nil {
					errCh <- err
					p.cancelWorkers()
					return
				}
			}
		}()
	}
	p.wg.Wait()
	select {
	case err := <-errCh:
		return workers, err
	default:
		return workers, nil
	}
}
