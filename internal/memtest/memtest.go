// Package memtest implements the buffer-allocation memory tests from
// paper §3/§6: before the buffer manager hands out a buffer, the region
// is exercised with a "moving inversions" pattern test (the memtest86
// algorithm the paper cites) to detect stuck bits and coupling faults.
// Regions that fail are quarantined so the DBMS avoids broken memory
// instead of silently corrupting data.
package memtest

import (
	"sync"
)

// Patterns used by the moving-inversions test. Each pattern is written
// forward and verified/inverted backward, which also catches
// address-decoding faults and simple cell-coupling faults.
var patterns = []byte{0x00, 0xFF, 0x55, 0xAA, 0x0F, 0xF0}

// FaultHook lets tests and the fault injector simulate broken RAM: it is
// invoked between write and read-back passes and may mutate the buffer.
// A nil hook means healthy memory.
type FaultHook func(buf []byte)

// Tester runs moving-inversion tests over buffers and tracks quarantined
// regions. It is safe for concurrent use.
type Tester struct {
	mu          sync.Mutex
	hook        FaultHook
	tested      int64 // buffers tested
	failures    int64 // buffers that failed
	quarantined int64 // bytes quarantined
}

// NewTester returns a Tester. hook may be nil (healthy memory).
func NewTester(hook FaultHook) *Tester { return &Tester{hook: hook} }

// SetFaultHook replaces the fault hook (nil = healthy memory).
func (t *Tester) SetFaultHook(h FaultHook) {
	t.mu.Lock()
	t.hook = h
	t.mu.Unlock()
}

// Stats reports buffers tested, buffers failed and bytes quarantined.
func (t *Tester) Stats() (tested, failures, quarantinedBytes int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tested, t.failures, t.quarantined
}

// Test runs the moving-inversions algorithm over buf and reports whether
// the memory behaved correctly. buf's prior contents are destroyed; on
// success it is left zeroed.
func (t *Tester) Test(buf []byte) bool {
	t.mu.Lock()
	hook := t.hook
	t.tested++
	t.mu.Unlock()

	ok := movingInversions(buf, hook)
	if !ok {
		t.mu.Lock()
		t.failures++
		t.quarantined += int64(len(buf))
		t.mu.Unlock()
		return false
	}
	for i := range buf {
		buf[i] = 0
	}
	return true
}

// movingInversions writes each pattern forward, lets the (simulated)
// hardware act, then reads backward verifying and writing the inverted
// pattern, then verifies the inversion forward.
func movingInversions(buf []byte, hook FaultHook) bool {
	for _, p := range patterns {
		for i := range buf {
			buf[i] = p
		}
		if hook != nil {
			hook(buf)
		}
		inv := ^p
		for i := len(buf) - 1; i >= 0; i-- {
			if buf[i] != p {
				return false
			}
			buf[i] = inv
		}
		if hook != nil {
			hook(buf)
		}
		for i := range buf {
			if buf[i] != inv {
				return false
			}
		}
	}
	return true
}
