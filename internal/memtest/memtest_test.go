package memtest

import (
	"testing"

	"repro/internal/faults"
)

func TestHealthyMemoryPasses(t *testing.T) {
	tester := NewTester(nil)
	buf := make([]byte, 4096)
	for i := range buf {
		buf[i] = byte(i)
	}
	if !tester.Test(buf) {
		t.Fatal("healthy memory failed the test")
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("buffer not zeroed at %d", i)
		}
	}
	tested, failures, quarantined := tester.Stats()
	if tested != 1 || failures != 0 || quarantined != 0 {
		t.Fatalf("stats: %d %d %d", tested, failures, quarantined)
	}
}

func TestStuckBitDetected(t *testing.T) {
	tester := NewTester(faults.StuckBitRegion(100, 3))
	buf := make([]byte, 4096)
	if tester.Test(buf) {
		t.Fatal("stuck bit went undetected")
	}
	_, failures, quarantined := tester.Stats()
	if failures != 1 || quarantined != 4096 {
		t.Fatalf("stats after failure: %d %d", failures, quarantined)
	}
}

func TestStuckBitAtEveryPosition(t *testing.T) {
	for _, offset := range []int{0, 1, 63, 64, 1000, 4095} {
		for _, bit := range []uint{0, 4, 7} {
			tester := NewTester(faults.StuckBitRegion(offset, bit))
			if tester.Test(make([]byte, 4096)) {
				t.Errorf("stuck bit at offset %d bit %d undetected", offset, bit)
			}
		}
	}
}

func TestIntermittentFaultDetected(t *testing.T) {
	// An intermittent fault firing every 3rd pass is still caught
	// because moving inversions makes 12 passes over the buffer.
	tester := NewTester(faults.IntermittentFlip(500, 2, 3))
	if tester.Test(make([]byte, 2048)) {
		t.Fatal("intermittent fault went undetected")
	}
}

func TestSetFaultHookSwapsBehaviour(t *testing.T) {
	tester := NewTester(faults.StuckBitRegion(0, 0))
	if tester.Test(make([]byte, 128)) {
		t.Fatal("faulty hook passed")
	}
	tester.SetFaultHook(nil)
	if !tester.Test(make([]byte, 128)) {
		t.Fatal("healthy memory failed after clearing hook")
	}
}

func TestEmptyBuffer(t *testing.T) {
	tester := NewTester(nil)
	if !tester.Test(nil) {
		t.Fatal("empty buffer should pass")
	}
}
