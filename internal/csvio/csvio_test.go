package csvio

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/types"
	"repro/internal/vector"
)

func writeFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadTyped(t *testing.T) {
	path := writeFile(t, "id,name,score\n1,ann,2.5\n2,bob,\n3,,9.75\n")
	r, err := NewReader(path, []types.Type{types.BigInt, types.Varchar, types.Double}, Options{Header: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	chunk, err := r.NextChunk()
	if err != nil {
		t.Fatal(err)
	}
	if chunk.Len() != 3 {
		t.Fatalf("%d rows", chunk.Len())
	}
	if chunk.Cols[0].I64[0] != 1 || chunk.Cols[1].Str[0] != "ann" || chunk.Cols[2].F64[0] != 2.5 {
		t.Fatalf("row 0: %v", chunk.Row(0))
	}
	// Empty numeric field → NULL; empty varchar → empty string.
	if !chunk.Cols[2].IsNull(1) {
		t.Fatal("empty double should be NULL")
	}
	if chunk.Cols[1].IsNull(2) || chunk.Cols[1].Str[2] != "" {
		t.Fatal("empty varchar should stay empty string")
	}
	if next, _ := r.NextChunk(); next != nil {
		t.Fatal("expected EOF")
	}
}

func TestReadBadValue(t *testing.T) {
	path := writeFile(t, "1\nduck\n")
	r, err := NewReader(path, []types.Type{types.BigInt}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.NextChunk(); err == nil {
		t.Fatal("unparseable value accepted")
	}
}

func TestReadWrongArity(t *testing.T) {
	path := writeFile(t, "1,2\n3\n")
	r, err := NewReader(path, []types.Type{types.BigInt, types.BigInt}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.NextChunk(); err == nil {
		t.Fatal("ragged row accepted")
	}
}

func TestCustomDelimiterAndNullLiteral(t *testing.T) {
	path := writeFile(t, "1;NA\n2;x\n")
	r, err := NewReader(path, []types.Type{types.BigInt, types.Varchar}, Options{Delimiter: ';', NullLiteral: "NA"})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	chunk, err := r.NextChunk()
	if err != nil {
		t.Fatal(err)
	}
	if !chunk.Cols[1].IsNull(0) || chunk.Cols[1].Str[1] != "x" {
		t.Fatalf("null literal handling: %v %v", chunk.Row(0), chunk.Row(1))
	}
}

func TestWriteRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	w, err := NewWriter(path, []string{"a", "b"}, Options{Header: true})
	if err != nil {
		t.Fatal(err)
	}
	chunk := vector.NewChunk([]types.Type{types.BigInt, types.Varchar})
	chunk.AppendRow(types.NewBigInt(1), types.NewVarchar("x,with comma"))
	chunk.AppendRow(types.NewNull(types.BigInt), types.NewVarchar("y"))
	if err := w.WriteChunk(chunk); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(path, []types.Type{types.BigInt, types.Varchar}, Options{Header: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := r.NextChunk()
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.Cols[1].Str[0] != "x,with comma" || !got.Cols[0].IsNull(1) {
		t.Fatalf("round trip: %v %v", got.Row(0), got.Row(1))
	}
}

func TestInferTypes(t *testing.T) {
	path := writeFile(t, "id,price,label\n1,2.5,abc\n2,3,def\n")
	names, typs, err := InferTypes(path, Options{Header: true}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if names[0] != "id" || names[2] != "label" {
		t.Fatalf("names: %v", names)
	}
	want := []types.Type{types.BigInt, types.Double, types.Varchar}
	for i := range want {
		if typs[i] != want[i] {
			t.Fatalf("column %d inferred %v, want %v", i, typs[i], want[i])
		}
	}
}

func TestStreamingChunks(t *testing.T) {
	var sb []byte
	for i := 0; i < 3000; i++ {
		sb = append(sb, []byte("7\n")...)
	}
	path := writeFile(t, string(sb))
	r, err := NewReader(path, []types.Type{types.BigInt}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	total := 0
	chunks := 0
	for {
		c, err := r.NextChunk()
		if err != nil {
			t.Fatal(err)
		}
		if c == nil {
			break
		}
		total += c.Len()
		chunks++
	}
	if total != 3000 || chunks < 3 {
		t.Fatalf("total=%d chunks=%d", total, chunks)
	}
}
