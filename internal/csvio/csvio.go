// Package csvio implements CSV import and export for the ETL workflows
// of paper §2: the database can directly scan existing CSV files,
// reshape the result and append it to a persistent table (COPY t FROM
// 'file.csv'), with out-of-core streaming — files are decoded chunk by
// chunk, never fully materialized.
package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/types"
	"repro/internal/vector"
)

// Reader streams a CSV file as chunks typed against a table schema.
type Reader struct {
	f        *os.File
	cr       *csv.Reader
	colTypes []types.Type
	row      int64
	nullLit  string
}

// Options configures CSV parsing.
type Options struct {
	Delimiter rune
	Header    bool
	// NullLiteral is treated as NULL (in addition to the empty string).
	NullLiteral string
}

// NewReader opens path for streaming chunked reads.
func NewReader(path string, colTypes []types.Type, opts Options) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("csv: %w", err)
	}
	cr := csv.NewReader(f)
	if opts.Delimiter != 0 {
		cr.Comma = opts.Delimiter
	}
	cr.FieldsPerRecord = len(colTypes)
	cr.ReuseRecord = true
	r := &Reader{f: f, cr: cr, colTypes: colTypes}
	if opts.Header {
		if _, err := cr.Read(); err != nil && err != io.EOF {
			_ = f.Close()
			return nil, fmt.Errorf("csv: header: %w", err)
		}
	}
	r.nullLit = opts.NullLiteral
	return r, nil
}

// NextChunk returns up to ChunkCapacity parsed rows, or nil at EOF.
func (r *Reader) NextChunk() (*vector.Chunk, error) {
	chunk := vector.NewChunk(r.colTypes)
	for chunk.Len() < vector.ChunkCapacity {
		rec, err := r.cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("csv: row %d: %w", r.row+1, err)
		}
		r.row++
		row := chunk.Len()
		chunk.SetLen(row + 1)
		for c, field := range rec {
			v, err := parseField(field, r.colTypes[c], r.nullLit)
			if err != nil {
				return nil, fmt.Errorf("csv: row %d, column %d: %w", r.row, c+1, err)
			}
			chunk.Cols[c].Set(row, v)
		}
	}
	if chunk.Len() == 0 {
		return nil, nil
	}
	return chunk, nil
}

// Close releases the file.
func (r *Reader) Close() error { return r.f.Close() }

func parseField(field string, t types.Type, nullLit string) (types.Value, error) {
	if nullLit != "" && field == nullLit {
		return types.NewNull(t), nil
	}
	if field == "" && t != types.Varchar {
		return types.NewNull(t), nil
	}
	return types.NewVarchar(field).Cast(t)
}

// Writer streams chunks into a CSV file.
type Writer struct {
	f  *os.File
	cw *csv.Writer
}

// NewWriter creates (truncates) path and optionally writes a header row.
func NewWriter(path string, colNames []string, opts Options) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("csv: %w", err)
	}
	cw := csv.NewWriter(f)
	if opts.Delimiter != 0 {
		cw.Comma = opts.Delimiter
	}
	w := &Writer{f: f, cw: cw}
	if opts.Header {
		if err := cw.Write(colNames); err != nil {
			_ = f.Close()
			return nil, err
		}
	}
	return w, nil
}

// WriteChunk appends every row of the chunk.
func (w *Writer) WriteChunk(c *vector.Chunk) error {
	rec := make([]string, c.NumCols())
	for r := 0; r < c.Len(); r++ {
		for i, col := range c.Cols {
			if col.IsNull(r) {
				rec[i] = ""
			} else {
				rec[i] = col.Get(r).String()
			}
		}
		if err := w.cw.Write(rec); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes and closes the file.
func (w *Writer) Close() error {
	w.cw.Flush()
	if err := w.cw.Error(); err != nil {
		_ = w.f.Close()
		return err
	}
	return w.f.Close()
}

// InferTypes samples the first rows of a CSV file and guesses column
// types (BIGINT → DOUBLE → VARCHAR fallback). Used by tooling when
// importing into a new table.
func InferTypes(path string, opts Options, sampleRows int) ([]string, []types.Type, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer func() { _ = f.Close() }()
	cr := csv.NewReader(f)
	if opts.Delimiter != 0 {
		cr.Comma = opts.Delimiter
	}
	first, err := cr.Read()
	if err != nil {
		return nil, nil, fmt.Errorf("csv: empty file: %w", err)
	}
	var names []string
	ncols := len(first)
	var sample [][]string
	if opts.Header {
		names = append([]string(nil), first...)
	} else {
		for i := range first {
			names = append(names, fmt.Sprintf("column%d", i))
		}
		sample = append(sample, append([]string(nil), first...))
	}
	for len(sample) < sampleRows {
		rec, err := cr.Read()
		if err != nil {
			break
		}
		sample = append(sample, append([]string(nil), rec...))
	}
	out := make([]types.Type, ncols)
	for c := 0; c < ncols; c++ {
		t := types.BigInt
		for _, row := range sample {
			if c >= len(row) || row[c] == "" {
				continue
			}
			v := strings.TrimSpace(row[c])
			if t == types.BigInt {
				if _, err := types.NewVarchar(v).Cast(types.BigInt); err != nil {
					t = types.Double
				}
			}
			if t == types.Double {
				if _, err := types.NewVarchar(v).Cast(types.Double); err != nil {
					t = types.Varchar
					break
				}
			}
		}
		out[c] = t
	}
	return names, out, nil
}
