package buffer

import (
	"errors"
	"testing"

	"repro/internal/faults"
	"repro/internal/memtest"
)

func TestReserveRelease(t *testing.T) {
	p := NewPool(1000, nil)
	if err := p.Reserve(600); err != nil {
		t.Fatal(err)
	}
	if err := p.Reserve(500); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("over-limit reservation: %v", err)
	}
	p.Release(600)
	if p.Used() != 0 {
		t.Fatalf("used = %d", p.Used())
	}
	if err := p.Reserve(900); err != nil {
		t.Fatal(err)
	}
}

func TestUnlimitedPool(t *testing.T) {
	p := NewPool(0, nil)
	if err := p.Reserve(1 << 40); err != nil {
		t.Fatal(err)
	}
}

func TestPeakTracking(t *testing.T) {
	p := NewPool(0, nil)
	p.Reserve(100)
	p.Reserve(200)
	p.Release(250)
	if p.Peak() != 300 {
		t.Fatalf("peak = %d, want 300", p.Peak())
	}
	p.ResetPeak()
	if p.Peak() != 50 {
		t.Fatalf("peak after reset = %d, want 50", p.Peak())
	}
}

type fakeEvictable struct {
	bytes   int64
	pinned  bool
	evicted bool
}

func (f *fakeEvictable) Evict() (int64, bool) {
	if f.pinned {
		return 0, false
	}
	f.evicted = true
	return f.bytes, true
}

func TestEvictionUnderPressure(t *testing.T) {
	p := NewPool(1000, nil)
	cached := &fakeEvictable{bytes: 400}
	p.Reserve(400)
	p.AddEvictable(cached)
	p.Reserve(500)
	// 900 used; a 300-byte reservation must evict the cache entry.
	if err := p.Reserve(300); err != nil {
		t.Fatal(err)
	}
	if !cached.evicted {
		t.Fatal("cache entry not evicted")
	}
	if p.Used() != 800 { // 900 - 400 + 300
		t.Fatalf("used = %d", p.Used())
	}
	if p.Evictions() != 1 {
		t.Fatalf("evictions = %d", p.Evictions())
	}
}

func TestPinnedEntriesSurviveEviction(t *testing.T) {
	p := NewPool(1000, nil)
	pinned := &fakeEvictable{bytes: 500, pinned: true}
	p.Reserve(500)
	p.AddEvictable(pinned)
	if err := p.Reserve(800); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("expected OOM with only pinned cache: %v", err)
	}
	if pinned.evicted {
		t.Fatal("pinned entry evicted")
	}
}

func TestRemoveEvictable(t *testing.T) {
	p := NewPool(1000, nil)
	e := &fakeEvictable{bytes: 500}
	p.Reserve(500)
	p.AddEvictable(e)
	p.RemoveEvictable(e)
	if err := p.Reserve(800); !errors.Is(err, ErrOutOfMemory) {
		t.Fatal("removed entry still evicted")
	}
}

func TestAllocateWithMemTest(t *testing.T) {
	p := NewPool(1<<20, memtest.NewTester(nil))
	p.EnableMemTest(true)
	buf, err := p.Allocate(4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != 4096 || p.Used() != 4096 {
		t.Fatalf("len=%d used=%d", len(buf), p.Used())
	}
	p.Freed(buf)
	if p.Used() != 0 {
		t.Fatal("not released")
	}
}

func TestAllocateBrokenMemoryQuarantined(t *testing.T) {
	tester := memtest.NewTester(faults.StuckBitRegion(10, 1))
	p := NewPool(1<<20, tester)
	p.EnableMemTest(true)
	if _, err := p.Allocate(1024); !errors.Is(err, ErrBadMemory) {
		t.Fatalf("broken memory not reported: %v", err)
	}
	// Reservations for quarantined buffers are not returned.
	if p.Used() != 3*1024 {
		t.Fatalf("quarantined bytes = %d, want 3072", p.Used())
	}
}

func TestNegativeReservation(t *testing.T) {
	p := NewPool(0, nil)
	if err := p.Reserve(-5); err == nil {
		t.Fatal("negative reservation accepted")
	}
}

func TestTryReserve(t *testing.T) {
	p := NewPool(100, nil)
	if !p.TryReserve(50) {
		t.Fatal("should fit")
	}
	if p.TryReserve(51) {
		t.Fatal("should not fit")
	}
}
