// Package buffer implements QuackDB's buffer manager. Unlike a
// traditional OLAP server that assumes it owns the machine, an embedded
// database must cooperate with its host application (paper §4): the pool
// enforces a hard, user-configurable memory limit, evicts clean cached
// column data under pressure, and lets operators ask for budget before
// building large intermediates so they can degrade gracefully (e.g. a
// hash join switching to an out-of-core merge join) instead of starving
// the application.
//
// The pool also integrates the paper's §3/§6 resilience plan: buffers
// can be run through a moving-inversions memory test on allocation, so
// broken RAM regions are detected and quarantined instead of silently
// corrupting query state.
package buffer

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/memtest"
)

// ErrOutOfMemory is returned when a reservation cannot be satisfied
// within the configured limit even after evicting everything evictable.
// Operators treat it as a signal to switch to an out-of-core strategy.
var ErrOutOfMemory = errors.New("buffer: memory limit exceeded")

// ErrBadMemory is returned when freshly allocated memory repeatedly
// fails the moving-inversions test: the machine's RAM is broken and
// continuing would risk silent data corruption (§3).
var ErrBadMemory = errors.New("buffer: memory failed allocation-time test; hardware fault suspected")

// Evictable is cached state the pool may drop under memory pressure —
// typically a clean, reloadable column. Evict returns the bytes freed,
// or ok=false if the state is pinned or dirty.
type Evictable interface {
	Evict() (bytes int64, ok bool)
}

// Pool tracks and limits the database's memory use.
type Pool struct {
	mu        sync.Mutex
	limit     int64
	used      int64
	peak      int64
	evictions int64
	cached    []Evictable
	tester    *memtest.Tester
	testAlloc bool
}

// NewPool returns a pool with the given byte limit (0 or negative means
// unlimited). tester may be nil; memory testing starts disabled.
func NewPool(limit int64, tester *memtest.Tester) *Pool {
	if tester == nil {
		tester = memtest.NewTester(nil)
	}
	return &Pool{limit: limit, tester: tester}
}

// SetLimit changes the memory limit (0 or negative = unlimited). It does
// not evict retroactively; the next reservation under pressure will.
func (p *Pool) SetLimit(limit int64) {
	p.mu.Lock()
	p.limit = limit
	p.mu.Unlock()
}

// Limit returns the configured limit (≤0 = unlimited).
func (p *Pool) Limit() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.limit
}

// Used returns current reserved bytes.
func (p *Pool) Used() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.used
}

// Peak returns the high-water mark since the last ResetPeak.
func (p *Pool) Peak() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.peak
}

// ResetPeak resets the high-water mark to current usage.
func (p *Pool) ResetPeak() {
	p.mu.Lock()
	p.peak = p.used
	p.mu.Unlock()
}

// Evictions returns how many cache entries have been evicted.
func (p *Pool) Evictions() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.evictions
}

// EnableMemTest toggles allocation-time moving-inversions testing.
func (p *Pool) EnableMemTest(on bool) {
	p.mu.Lock()
	p.testAlloc = on
	p.mu.Unlock()
}

// Tester exposes the memory tester (for fault-injection hooks and stats).
func (p *Pool) Tester() *memtest.Tester { return p.tester }

// AddEvictable registers reloadable cached state (LRU order: oldest
// first).
func (p *Pool) AddEvictable(e Evictable) {
	p.mu.Lock()
	p.cached = append(p.cached, e)
	p.mu.Unlock()
}

// RemoveEvictable unregisters cached state (e.g. it became dirty).
func (p *Pool) RemoveEvictable(e Evictable) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, c := range p.cached {
		if c == e {
			p.cached = append(p.cached[:i], p.cached[i+1:]...)
			return
		}
	}
}

// Reserve claims n bytes of budget, evicting cached state if needed.
func (p *Pool) Reserve(n int64) error {
	if n < 0 {
		return fmt.Errorf("buffer: negative reservation %d", n)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.limit > 0 && p.used+n > p.limit {
		p.evictLocked(p.used + n - p.limit)
		if p.used+n > p.limit {
			return fmt.Errorf("%w: need %d bytes, %d in use, limit %d", ErrOutOfMemory, n, p.used, p.limit)
		}
	}
	p.used += n
	if p.used > p.peak {
		p.peak = p.used
	}
	return nil
}

// TryReserve is Reserve that reports success instead of evicting hard:
// callers use it to probe whether an in-memory strategy fits.
func (p *Pool) TryReserve(n int64) bool {
	return p.Reserve(n) == nil
}

// Release returns n bytes of budget.
func (p *Pool) Release(n int64) {
	p.mu.Lock()
	p.used -= n
	if p.used < 0 {
		p.used = 0
	}
	p.mu.Unlock()
}

// evictLocked drops cached entries (oldest first) until at least need
// bytes were freed or nothing evictable remains.
func (p *Pool) evictLocked(need int64) {
	var freed int64
	remaining := p.cached[:0]
	for i, e := range p.cached {
		if freed >= need {
			remaining = append(remaining, p.cached[i:]...)
			break
		}
		bytes, ok := e.Evict()
		if ok {
			freed += bytes
			p.used -= bytes
			p.evictions++
		} else {
			remaining = append(remaining, e)
		}
	}
	p.cached = remaining
	if p.used < 0 {
		p.used = 0
	}
}

// Allocate reserves and returns a zeroed buffer of n bytes. If memory
// testing is enabled the buffer is verified with moving inversions
// first; a buffer that fails is quarantined (its reservation is not
// returned) and a replacement is tried, up to three times.
func (p *Pool) Allocate(n int) ([]byte, error) {
	p.mu.Lock()
	test := p.testAlloc
	p.mu.Unlock()
	for attempt := 0; attempt < 3; attempt++ {
		if err := p.Reserve(int64(n)); err != nil {
			return nil, err
		}
		buf := make([]byte, n)
		if !test || p.tester.Test(buf) {
			return buf, nil
		}
		// Quarantine: keep the reservation so the broken region is
		// never reused, and try a fresh allocation.
	}
	return nil, ErrBadMemory
}

// Freed releases a buffer obtained from Allocate.
func (p *Pool) Freed(buf []byte) { p.Release(int64(len(buf))) }
