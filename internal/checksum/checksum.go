// Package checksum provides the block checksums that protect QuackDB's
// persistent storage against silent corruption (paper §3/§6): every
// 256 KB block is checksummed as it is written and verified as it is
// read, so bit rot on consumer-grade disks surfaces as an error instead
// of silently corrupting query results.
package checksum

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
)

// table uses the ECMA polynomial, the conventional choice for storage
// integrity checks.
var table = crc64.MakeTable(crc64.ECMA)

// Size is the number of bytes a serialized checksum occupies.
const Size = 8

// Sum returns the CRC-64/ECMA checksum of data.
func Sum(data []byte) uint64 { return crc64.Checksum(data, table) }

// Verify recomputes the checksum of data and compares it to want.
func Verify(data []byte, want uint64) error {
	if got := Sum(data); got != want {
		return &Error{Want: want, Got: got}
	}
	return nil
}

// Put writes sum into the first 8 bytes of dst (little endian).
func Put(dst []byte, sum uint64) { binary.LittleEndian.PutUint64(dst, sum) }

// Get reads a checksum from the first 8 bytes of src.
func Get(src []byte) uint64 { return binary.LittleEndian.Uint64(src) }

// Frame checksums payload and returns checksum||payload.
func Frame(payload []byte) []byte {
	out := make([]byte, Size+len(payload))
	Put(out, Sum(payload))
	copy(out[Size:], payload)
	return out
}

// Unframe verifies a checksum||payload frame and returns the payload.
// The returned slice aliases frame.
func Unframe(frame []byte) ([]byte, error) {
	if len(frame) < Size {
		return nil, fmt.Errorf("checksum: frame too short (%d bytes)", len(frame))
	}
	payload := frame[Size:]
	if err := Verify(payload, Get(frame)); err != nil {
		return nil, err
	}
	return payload, nil
}

// Error reports a checksum mismatch: the block was corrupted between
// write and read (disk bit rot, torn write, or an in-flight RAM flip).
type Error struct {
	Want, Got uint64
}

func (e *Error) Error() string {
	return fmt.Sprintf("checksum mismatch: stored %016x, computed %016x (block corrupted)", e.Want, e.Got)
}
