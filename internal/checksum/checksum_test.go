package checksum

import (
	"testing"
	"testing/quick"
)

func TestSumVerify(t *testing.T) {
	data := []byte("the quick brown fox")
	sum := Sum(data)
	if err := Verify(data, sum); err != nil {
		t.Fatal(err)
	}
	data[3] ^= 1
	if err := Verify(data, sum); err == nil {
		t.Fatal("corruption not detected")
	}
}

func TestFrameUnframe(t *testing.T) {
	payload := []byte("payload bytes")
	frame := Frame(payload)
	got, err := Unframe(frame)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("got %q", got)
	}
	frame[Size+2] ^= 0x80
	if _, err := Unframe(frame); err == nil {
		t.Fatal("corrupted frame accepted")
	}
	if _, err := Unframe(frame[:Size-1]); err == nil {
		t.Fatal("short frame accepted")
	}
}

func TestEveryBitMatters(t *testing.T) {
	// Flipping any single bit in a small payload changes the checksum.
	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		sum := Sum(data)
		for i := 0; i < len(data)*8; i += 7 { // sample bits
			data[i/8] ^= 1 << (i % 8)
			changed := Sum(data) != sum
			data[i/8] ^= 1 << (i % 8)
			if !changed {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	buf := make([]byte, Size)
	Put(buf, 0xDEADBEEFCAFEF00D)
	if Get(buf) != 0xDEADBEEFCAFEF00D {
		t.Fatal("Put/Get mismatch")
	}
}

func TestErrorMessage(t *testing.T) {
	err := &Error{Want: 1, Got: 2}
	if err.Error() == "" {
		t.Fatal("empty message")
	}
}
