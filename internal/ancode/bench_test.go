package ancode

import (
	"math/rand"
	"testing"
)

func benchData(n int) ([]int64, []int64) {
	rng := rand.New(rand.NewSource(1))
	plain := make([]int64, n)
	for i := range plain {
		plain[i] = rng.Int63n(1 << 20)
	}
	c := MustNew(DefaultA)
	enc := make([]int64, n)
	c.EncodeSlice(enc, plain)
	return plain, enc
}

var sinkI64 int64

func BenchmarkPlainSum(b *testing.B) {
	plain, _ := benchData(1 << 20)
	b.SetBytes(8 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var s int64
		for _, v := range plain {
			s += v
		}
		sinkI64 = s
	}
}

func BenchmarkHardenedSum(b *testing.B) {
	_, enc := benchData(1 << 20)
	c := MustNew(DefaultA)
	b.SetBytes(8 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, corrupt := c.SumDecoded(enc)
		if corrupt >= 0 {
			b.Fatal("false corruption")
		}
		sinkI64 = s
	}
}

func BenchmarkCheckOnly(b *testing.B) {
	_, enc := benchData(1 << 20)
	c := MustNew(DefaultA)
	b.SetBytes(8 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.CheckSlice(enc) >= 0 {
			b.Fatal("false corruption")
		}
	}
}
