// Package ancode implements AN-code hardening for in-memory integer
// data, following Kolditz et al. (SIGMOD'18) as discussed in paper §3:
// every value v is stored as v*A for a fixed odd constant A, so a random
// bit flip in RAM turns the word into a non-multiple of A with
// probability (A-1)/A and is detected by a cheap modulo check during the
// scan. The paper reports 1.1x-1.6x overhead for this class of scheme;
// experiment E3 measures ours.
//
// The code space is the 64-bit integers; values must satisfy
// |v| ≤ MaxValue = MaxInt64/A so that v*A does not wrap (wrapping would
// make every word a "codeword", defeating detection). MaxValue for the
// default A is ≈ 1.4e16, ample for analytical columns.
package ancode

import (
	"fmt"
	"math"
)

// DefaultA is the default encoding constant. 641 is a prime "super-A"
// from the AN-coding literature: no power of two is a multiple of it, so
// every single bit flip within the valid domain is detected, and random
// multi-bit corruption escapes with probability only 1/A ≈ 0.16%.
const DefaultA int64 = 641

// Codec encodes and checks AN-coded int64 words.
type Codec struct {
	a   int64
	max int64 // largest encodable magnitude
}

// New returns a codec for constant a, which must be odd and > 1.
func New(a int64) (*Codec, error) {
	if a <= 1 || a%2 == 0 {
		return nil, fmt.Errorf("ancode: constant A must be odd and > 1, got %d", a)
	}
	return &Codec{a: a, max: math.MaxInt64 / a}, nil
}

// MustNew is New for known-good constants.
func MustNew(a int64) *Codec {
	c, err := New(a)
	if err != nil {
		panic(err)
	}
	return c
}

// A returns the encoding constant.
func (c *Codec) A() int64 { return c.a }

// MaxValue returns the largest magnitude the codec can encode without
// overflow.
func (c *Codec) MaxValue() int64 { return c.max }

// Encode returns v*A. Values outside ±MaxValue wrap and lose
// protection; use EncodeChecked when the domain is not known.
func (c *Codec) Encode(v int64) int64 { return v * c.a }

// EncodeChecked is Encode with a domain check.
func (c *Codec) EncodeChecked(v int64) (int64, error) {
	if v > c.max || v < -c.max {
		return 0, fmt.Errorf("ancode: value %d outside encodable domain ±%d", v, c.max)
	}
	return v * c.a, nil
}

// Decode returns the original value of a valid codeword.
func (c *Codec) Decode(enc int64) int64 { return enc / c.a }

// Check reports whether enc is a valid codeword (an exact multiple of A).
func (c *Codec) Check(enc int64) bool { return enc%c.a == 0 }

// EncodeSlice encodes src into dst (which may alias src).
func (c *Codec) EncodeSlice(dst, src []int64) {
	a := c.a
	for i, v := range src {
		dst[i] = v * a
	}
}

// DecodeSlice decodes src into dst without checking.
func (c *Codec) DecodeSlice(dst, src []int64) {
	a := c.a
	for i, v := range src {
		dst[i] = v / a
	}
}

// CheckSlice verifies all words and returns the index of the first
// corrupted word, or -1 if all are valid codewords.
//
// The hot kernels below are specialized for DefaultA: with the divisor
// known at compile time the compiler strength-reduces the divide into a
// multiply+shift, which is what keeps the hardening overhead in the
// small-constant-factor range the paper cites.
func (c *Codec) CheckSlice(enc []int64) int {
	if c.a == DefaultA {
		return checkSliceDefault(enc)
	}
	a := c.a
	for i, v := range enc {
		if v%a != 0 {
			return i
		}
	}
	return -1
}

// Lemire divisibility: for odd A, x (unsigned) is a multiple of A iff
// x * inverse(A) mod 2^64 ≤ (2^64-1)/A — and for valid multiples that
// same product IS the exact quotient. One multiply gives both the
// integrity check and the decode.
const (
	invDefaultA uint64 = 18417966001831689601 // inverse of 641 mod 2^64
	quotLimitA  uint64 = ^uint64(0) / uint64(DefaultA)
)

func checkSliceDefault(enc []int64) int {
	for i, v := range enc {
		w := uint64(v)
		if v < 0 {
			w = uint64(-v)
		}
		if w*invDefaultA > quotLimitA {
			return i
		}
	}
	return -1
}

// SumDecoded sums the decoded values of enc while verifying each word —
// the fused scan+check kernel used by resilient aggregation. It returns
// the sum and the index of the first corrupt word (-1 if clean).
func (c *Codec) SumDecoded(enc []int64) (sum int64, corrupt int) {
	if c.a == DefaultA {
		return sumDecodedDefault(enc)
	}
	a := c.a
	for i, v := range enc {
		q := v / a
		if v-q*a != 0 {
			return 0, i
		}
		sum += q
	}
	return sum, -1
}

func sumDecodedDefault(enc []int64) (sum int64, corrupt int) {
	// Branchless abs/sign-restore and 4-way unrolling with independent
	// accumulators keep the check+decode pipeline at a few cycles per
	// value instead of serializing on one chain.
	var s0, s1, s2, s3 int64
	i := 0
	for ; i+4 <= len(enc); i += 4 {
		v0, v1, v2, v3 := enc[i], enc[i+1], enc[i+2], enc[i+3]
		m0, m1, m2, m3 := v0>>63, v1>>63, v2>>63, v3>>63
		q0 := uint64((v0^m0)-m0) * invDefaultA
		q1 := uint64((v1^m1)-m1) * invDefaultA
		q2 := uint64((v2^m2)-m2) * invDefaultA
		q3 := uint64((v3^m3)-m3) * invDefaultA
		if q0 > quotLimitA || q1 > quotLimitA || q2 > quotLimitA || q3 > quotLimitA {
			break // rare: locate the exact word below
		}
		s0 += (int64(q0) ^ m0) - m0
		s1 += (int64(q1) ^ m1) - m1
		s2 += (int64(q2) ^ m2) - m2
		s3 += (int64(q3) ^ m3) - m3
	}
	sum = s0 + s1 + s2 + s3
	for ; i < len(enc); i++ {
		v := enc[i]
		m := v >> 63
		q := uint64((v^m)-m) * invDefaultA
		if q > quotLimitA {
			return 0, i
		}
		sum += (int64(q) ^ m) - m
	}
	return sum, -1
}

// CorruptionError reports a detected in-memory bit flip.
type CorruptionError struct {
	Index int
	Word  int64
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("ancode: word %d (0x%016x) is not a valid codeword: in-memory corruption detected", e.Index, uint64(e.Word))
}
