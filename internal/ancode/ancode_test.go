package ancode

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeIdentity(t *testing.T) {
	c := MustNew(DefaultA)
	for _, v := range []int64{0, 1, -1, 42, -999, 1 << 40, -(1 << 40), c.MaxValue(), -c.MaxValue()} {
		enc := c.Encode(v)
		if got := c.Decode(enc); got != v {
			t.Errorf("decode(encode(%d)) = %d", v, got)
		}
		if !c.Check(enc) {
			t.Errorf("valid codeword %d rejected", v)
		}
	}
}

func TestInverseProperty(t *testing.T) {
	c := MustNew(DefaultA)
	f := func(raw int64) bool {
		v := raw % c.MaxValue() // stay inside the encodable domain
		return c.Decode(c.Encode(v)) == v && c.Check(c.Encode(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeChecked(t *testing.T) {
	c := MustNew(DefaultA)
	if _, err := c.EncodeChecked(c.MaxValue() + 1); err == nil {
		t.Error("out-of-domain value accepted")
	}
	if _, err := c.EncodeChecked(42); err != nil {
		t.Errorf("in-domain value rejected: %v", err)
	}
}

func TestSingleBitFlipsAlwaysDetected(t *testing.T) {
	// With A = 641, any single bit flip in a 64-bit word leaves a
	// non-multiple of A: 2^k mod 641 != 0 for all k.
	c := MustNew(DefaultA)
	values := []int64{0, 1, -1, 123456789, -987654321, 1 << 50}
	for _, v := range values {
		enc := c.Encode(v)
		for bit := 0; bit < 64; bit++ {
			corrupted := enc ^ (1 << uint(bit))
			if c.Check(corrupted) {
				t.Fatalf("flip of bit %d in encode(%d) undetected", bit, v)
			}
		}
	}
}

func TestDoubleBitFlipDetectionRate(t *testing.T) {
	c := MustNew(DefaultA)
	rng := rand.New(rand.NewSource(11))
	const trials = 20000
	missed := 0
	for i := 0; i < trials; i++ {
		v := rng.Int63n(1 << 40)
		enc := c.Encode(v)
		b1 := uint(rng.Intn(64))
		b2 := uint(rng.Intn(64))
		corrupted := enc ^ (1 << b1) ^ (1 << b2)
		if corrupted != enc && c.Check(corrupted) {
			missed++
		}
	}
	// The expected undetected fraction is ~1/A ≈ 0.156%; allow 1%.
	if float64(missed)/trials > 0.01 {
		t.Fatalf("%d/%d double flips undetected", missed, trials)
	}
}

func TestCheckSliceFindsCorruption(t *testing.T) {
	c := MustNew(DefaultA)
	data := make([]int64, 1000)
	for i := range data {
		data[i] = int64(i * 3)
	}
	enc := make([]int64, len(data))
	c.EncodeSlice(enc, data)
	if idx := c.CheckSlice(enc); idx != -1 {
		t.Fatalf("clean slice reported corrupt at %d", idx)
	}
	enc[637] ^= 1 << 13
	if idx := c.CheckSlice(enc); idx != 637 {
		t.Fatalf("corruption at 637 reported at %d", idx)
	}
}

func TestSumDecoded(t *testing.T) {
	c := MustNew(DefaultA)
	data := []int64{1, 2, 3, 4, 5}
	enc := make([]int64, len(data))
	c.EncodeSlice(enc, data)
	sum, corrupt := c.SumDecoded(enc)
	if corrupt != -1 || sum != 15 {
		t.Fatalf("sum=%d corrupt=%d", sum, corrupt)
	}
	enc[2] ^= 1 << 7
	if _, corrupt := c.SumDecoded(enc); corrupt != 2 {
		t.Fatalf("corruption not found: %d", corrupt)
	}
}

func TestDecodeSliceRoundTrip(t *testing.T) {
	c := MustNew(DefaultA)
	data := []int64{-5, 0, 7, 1 << 33}
	enc := make([]int64, len(data))
	dec := make([]int64, len(data))
	c.EncodeSlice(enc, data)
	c.DecodeSlice(dec, enc)
	for i := range data {
		if dec[i] != data[i] {
			t.Fatalf("row %d: %d != %d", i, dec[i], data[i])
		}
	}
}

func TestNewValidation(t *testing.T) {
	for _, a := range []int64{0, 1, 2, 640, -3} {
		if _, err := New(a); err == nil {
			t.Errorf("A=%d accepted", a)
		}
	}
	if _, err := New(641); err != nil {
		t.Errorf("A=641 rejected: %v", err)
	}
}

func TestCorruptionError(t *testing.T) {
	err := &CorruptionError{Index: 3, Word: 0x1234}
	if err.Error() == "" {
		t.Fatal("empty error message")
	}
}
