package table

import (
	"fmt"
	"sync/atomic"

	"repro/internal/txn"
	"repro/internal/types"
	"repro/internal/vector"
)

// ScanOptions configures a table scan.
type ScanOptions struct {
	// Columns lists the columns to materialize, in output order.
	// nil means all columns. Scanning a subset never touches (or loads)
	// the other columns — the paper's partitioned-column requirement.
	Columns []int
	// WithRowIDs appends a BIGINT row-id column after the projected
	// columns; UPDATE and DELETE plans use it to address rows.
	WithRowIDs bool
	// ZoneFilters are scan-eligible conjuncts of the pushed predicate.
	// Segments whose zone maps (or compressed payloads) refute one are
	// skipped without being materialized. Skipping is purely an
	// optimization — callers must still apply the full predicate per
	// row, so results are exact whether or not a segment was skipped.
	ZoneFilters []ZoneFilter
	// EncodedExec lets the scan evaluate Exact zone filters directly
	// over still-compressed segment payloads and materialize only the
	// selected rows (encexec.go). Purely an execution strategy: the
	// surviving rows, their order and their chunk boundaries are
	// identical with it on or off.
	EncodedExec bool
	// SegsScanned/SegsSkipped, when non-nil, count the segments the scan
	// materialized vs. refuted (EXPLAIN/PRAGMA observability).
	SegsScanned *atomic.Int64
	SegsSkipped *atomic.Int64
	// SegsEncoded counts the scanned segments that executed encoded
	// (also counted in SegsScanned); RowsEncSelected counts the rows
	// those segments selected and gathered.
	SegsEncoded     *atomic.Int64
	RowsEncSelected *atomic.Int64
	// ProfSegsScanned/ProfSegsSkipped are the same counts routed into a
	// per-query profile slot (EXPLAIN ANALYZE); nil when the query is
	// not profiled.
	ProfSegsScanned *atomic.Int64
	ProfSegsSkipped *atomic.Int64
	ProfSegsEncoded *atomic.Int64
	// ProfDecodedRows/ProfSelectedRows contrast how many rows the scan
	// materialized against how many it emitted: the decoded path
	// materializes every segment row before visibility and filtering,
	// the encoded path only the selected rows.
	ProfDecodedRows  *atomic.Int64
	ProfSelectedRows *atomic.Int64
}

// countScanned/countSkipped book one segment into every wired counter.
//
//quack:hotpath
func (o *ScanOptions) countScanned() {
	if o.SegsScanned != nil {
		o.SegsScanned.Add(1)
	}
	if o.ProfSegsScanned != nil {
		o.ProfSegsScanned.Add(1)
	}
}

//quack:hotpath
func (o *ScanOptions) countSkipped() {
	if o.SegsSkipped != nil {
		o.SegsSkipped.Add(1)
	}
	if o.ProfSegsSkipped != nil {
		o.ProfSegsSkipped.Add(1)
	}
}

// countEncoded books one encoded-executed segment and its selected rows
// (callers also call countScanned — encoded segments are scanned ones).
//
//quack:hotpath
func (o *ScanOptions) countEncoded(rows int) {
	if o.SegsEncoded != nil {
		o.SegsEncoded.Add(1)
	}
	if o.RowsEncSelected != nil {
		o.RowsEncSelected.Add(int64(rows))
	}
	if o.ProfSegsEncoded != nil {
		o.ProfSegsEncoded.Add(1)
	}
	if o.ProfDecodedRows != nil {
		o.ProfDecodedRows.Add(int64(rows))
	}
	if o.ProfSelectedRows != nil {
		o.ProfSelectedRows.Add(int64(rows))
	}
}

// countMaterialized books a decoded-path segment: every segment row was
// materialized, emitted rows survived visibility.
//
//quack:hotpath
func (o *ScanOptions) countMaterialized(decoded, selected int) {
	if o.ProfDecodedRows != nil {
		o.ProfDecodedRows.Add(int64(decoded))
	}
	if o.ProfSelectedRows != nil {
		o.ProfSelectedRows.Add(int64(selected))
	}
}

// segReader holds the per-reader state needed to materialize one
// segment's snapshot: the projected columns, the transaction whose
// snapshot is reconstructed, and scratch buffers. It is shared by the
// sequential Scanner and the morsel workers of a parallel scan; each
// reader owns its own scratch, so readers never contend.
type segReader struct {
	t       *DataTable
	tx      *txn.Transaction
	cols    []int
	rowIDs  bool
	filters []ZoneFilter
	pos     []int32
	sel     []int
	// Encoded-execution scratch, allocated on first use: the combined
	// match vector, the per-filter kernel scratch, and the int64 gather
	// buffer (encexec.go).
	match  []bool
	kmatch []bool
	gather []int64
}

func newSegReader(t *DataTable, tx *txn.Transaction, cols []int, rowIDs bool, filters []ZoneFilter) segReader {
	return segReader{
		t:       t,
		tx:      tx,
		cols:    cols,
		rowIDs:  rowIDs,
		filters: filters,
		pos:     make([]int32, SegRows),
		sel:     make([]int, 0, SegRows),
	}
}

// outputTypes returns the reader's chunk schema.
func (s *segReader) outputTypes() []types.Type {
	out := make([]types.Type, 0, len(s.cols)+1)
	for _, c := range s.cols {
		out = append(out, s.t.typs[c])
	}
	if s.rowIDs {
		out = append(out, types.BigInt)
	}
	return out
}

// scanSegment materializes the snapshot-visible rows of one segment as
// a chunk, or nil when no row is visible. maxRows caps how deep into the
// segment the reader looks: scans pass the row count snapshotted at open
// so rows appended afterwards — even by the scanning transaction itself —
// stay invisible to this statement.
func (s *segReader) scanSegment(seg *segment, base int64, maxRows int) *vector.Chunk {
	seg.mu.RLock()
	defer seg.mu.RUnlock()

	n := seg.n
	if n > maxRows {
		n = maxRows
	}
	s.sel = s.sel[:0]
	for r := 0; r < n; r++ {
		if !s.tx.Sees(seg.loadInsert(r)) {
			continue
		}
		if d := seg.loadDelete(r); d != 0 && s.tx.Sees(d) {
			continue
		}
		s.sel = append(s.sel, r)
	}
	if len(s.sel) == 0 {
		return nil
	}

	chunk := vector.NewChunk(s.outputTypes())
	for oi, c := range s.cols {
		seg.cols[c].CompactInto(chunk.Cols[oi], s.sel)
	}
	chunk.SetLen(len(s.sel))
	s.applyUndo(seg, chunk)
	s.fillRowIDs(chunk, base)
	return chunk
}

// applyUndo rewrites chunk cells whose current value this snapshot must
// not see back to their undo-chain versions. Caller holds seg.mu and
// has chunk rows parallel to s.sel.
func (s *segReader) applyUndo(seg *segment, chunk *vector.Chunk) {
	posBuilt := false
	for oi, c := range s.cols {
		for node := seg.updates[c]; node != nil; node = node.next {
			if s.tx.Sees(node.stamp.Load()) {
				continue
			}
			if !posBuilt {
				for i := range s.pos {
					s.pos[i] = -1
				}
				for outIdx, r := range s.sel {
					s.pos[r] = int32(outIdx)
				}
				posBuilt = true
			}
			for j, r := range node.rows {
				if p := s.pos[r]; p >= 0 {
					chunk.Cols[oi].Set(int(p), node.old.Get(j))
				}
			}
		}
	}
}

// fillRowIDs writes the synthetic row-id column when requested.
func (s *segReader) fillRowIDs(chunk *vector.Chunk, base int64) {
	if !s.rowIDs {
		return
	}
	ridCol := chunk.Cols[len(s.cols)]
	for outIdx, r := range s.sel {
		ridCol.I64[outIdx] = base + int64(r)
	}
}

// resolveColumns expands a nil column list to all columns and validates.
func (t *DataTable) resolveColumns(cols []int) ([]int, error) {
	if cols == nil {
		cols = make([]int, len(t.typs))
		for i := range cols {
			cols[i] = i
		}
	}
	for _, c := range cols {
		if c < 0 || c >= len(t.typs) {
			return nil, fmt.Errorf("table: scan of column %d of %d-column table", c, len(t.typs))
		}
	}
	return cols, nil
}

// Scanner iterates a snapshot of the table, one chunk per segment.
// It reconstructs the transaction's snapshot from insert/delete stamps
// and the update undo chains, so concurrent writers never block it.
// The segment list and per-segment row counts are snapshotted at open
// (like MorselSource), so the scan is a statement snapshot: rows the
// scanning transaction itself appends while the scan runs are not
// discovered — a self-referencing INSERT INTO t SELECT ... FROM t
// terminates after exactly the pre-existing rows.
type Scanner struct {
	segReader
	segs    []*segment
	ns      []int
	segIdx  int
	opts    ScanOptions
	release func()
	closed  bool
}

// NewScanner pins the projected columns and returns a scanner. Callers
// must Close it to release the pins.
func (t *DataTable) NewScanner(tx *txn.Transaction, opts ScanOptions) (*Scanner, error) {
	cols, err := t.resolveColumns(opts.Columns)
	if err != nil {
		return nil, err
	}
	release, err := t.PinColumns(cols)
	if err != nil {
		return nil, err
	}
	segs, ns := t.snapshotSegments()
	return &Scanner{
		segReader: newSegReader(t, tx, cols, opts.WithRowIDs, opts.ZoneFilters),
		segs:      segs,
		ns:        ns,
		opts:      opts,
		release:   release,
	}, nil
}

// OutputTypes returns the scanner's chunk schema.
func (s *Scanner) OutputTypes() []types.Type { return s.outputTypes() }

// Next returns the next non-empty chunk, or nil when the scan is done.
// Segments refuted by the pushed zone filters are skipped without being
// materialized.
func (s *Scanner) Next() (*vector.Chunk, error) {
	if s.closed {
		return nil, nil
	}
	for s.segIdx < len(s.segs) {
		seg := s.segs[s.segIdx]
		base := int64(s.segIdx) * SegRows
		maxRows := s.ns[s.segIdx]
		s.segIdx++

		if len(s.opts.ZoneFilters) > 0 && segRefuted(s.t, seg, s.opts.ZoneFilters) {
			s.opts.countSkipped()
			continue
		}
		if s.opts.EncodedExec {
			if chunk, selected, ok := s.scanSegmentEncoded(seg, base, maxRows); ok {
				s.opts.countScanned()
				s.opts.countEncoded(selected)
				if chunk != nil {
					return chunk, nil
				}
				continue
			}
		}
		if err := s.t.materializeSegCols(seg, s.cols); err != nil {
			return nil, err
		}
		s.opts.countScanned()
		chunk := s.scanSegment(seg, base, maxRows)
		if chunk != nil {
			s.opts.countMaterialized(maxRows, chunk.Len())
			return chunk, nil
		}
		s.opts.countMaterialized(maxRows, 0)
	}
	return nil, nil
}

// Close releases the scanner's column pins.
func (s *Scanner) Close() {
	if !s.closed {
		s.closed = true
		s.release()
	}
}
