package table

import (
	"sort"
	"sync"
	"testing"

	"repro/internal/txn"
	"repro/internal/types"
)

// TestMorselSourceCoversEverySegmentOnce: concurrent workers must
// jointly claim each morsel exactly once and reconstruct the same rows
// the sequential scanner sees.
func TestMorselSourceCoversEverySegmentOnce(t *testing.T) {
	mgr := txn.NewManager(nil)
	dt := New([]types.Type{types.BigInt}, nil)
	writer := mgr.Begin()
	const rows = 10*SegRows + 17
	for base := 0; base < rows; base += SegRows {
		n := SegRows
		if rows-base < n {
			n = rows - base
		}
		c := rangeChunk(n)
		for r := 0; r < n; r++ {
			c.Cols[0].I64[r] = int64(base + r)
		}
		if err := dt.Append(writer, c); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := mgr.Commit(writer); err != nil {
		t.Fatal(err)
	}

	reader := mgr.Begin()
	src, err := dt.NewMorselSource(reader, ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if got, want := src.NumMorsels(), 11; got != want {
		t.Fatalf("NumMorsels = %d, want %d", got, want)
	}

	var mu sync.Mutex
	seqs := map[int]int{}
	var vals []int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ms := src.Worker()
			for {
				seq, chunk, err := ms.Next()
				if err != nil {
					t.Error(err)
					return
				}
				if seq < 0 {
					return
				}
				mu.Lock()
				seqs[seq]++
				if chunk != nil {
					vals = append(vals, chunk.Cols[0].I64[:chunk.Len()]...)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	if len(seqs) != src.NumMorsels() {
		t.Fatalf("claimed %d distinct morsels, want %d", len(seqs), src.NumMorsels())
	}
	for seq, n := range seqs {
		if n != 1 {
			t.Fatalf("morsel %d claimed %d times", seq, n)
		}
	}
	if len(vals) != rows {
		t.Fatalf("scanned %d rows, want %d", len(vals), rows)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for i, v := range vals {
		if v != int64(i) {
			t.Fatalf("row %d = %d", i, v)
		}
	}
}

// TestMorselSourceSnapshotsSegments: segments appended after the source
// was created are not handed out, and MVCC visibility still applies.
func TestMorselSourceSnapshotsSegments(t *testing.T) {
	mgr := txn.NewManager(nil)
	dt := New([]types.Type{types.BigInt}, nil)
	w1 := mgr.Begin()
	dt.Append(w1, intChunk(1, 2, 3))
	mgr.Commit(w1)

	reader := mgr.Begin()
	src, err := dt.NewMorselSource(reader, ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	// Fill the first segment and beyond after the snapshot: the extra
	// segments must not appear, and the newer rows in the first segment
	// are invisible to the reader's snapshot anyway.
	w2 := mgr.Begin()
	dt.Append(w2, rangeChunk(2*SegRows))
	mgr.Commit(w2)

	ms := src.Worker()
	var total int
	for {
		seq, chunk, err := ms.Next()
		if err != nil {
			t.Fatal(err)
		}
		if seq < 0 {
			break
		}
		if chunk != nil {
			total += chunk.Len()
		}
	}
	if total != 3 {
		t.Fatalf("snapshot scan saw %d rows, want 3", total)
	}
}
