package table

import (
	"sync/atomic"

	"repro/internal/txn"
	"repro/internal/types"
	"repro/internal/vector"
)

// MorselSource hands out table segments ("morsels") to the workers of a
// parallel scan. The segment list and per-segment row counts are
// snapshotted at creation, so every worker sees the same, fixed set of
// morsels regardless of concurrent (or the transaction's own) appends;
// MVCC visibility is still reconstructed per row, so the scan observes
// exactly the rows its transaction's snapshot allows. Workers
// draw the next unclaimed segment from a shared atomic counter — the
// morsel-driven scheduling that keeps all cores busy without any
// up-front range partitioning.
//
// The source pins the projected columns once for all workers; Close
// releases the pins. A MorselSource is safe for concurrent use; the
// MorselScanner values it hands out are not (one per worker).
type MorselSource struct {
	t       *DataTable
	tx      *txn.Transaction
	cols    []int
	rowIDs  bool
	opts    ScanOptions
	segs    []*segment
	ns      []int // per-segment row counts at snapshot time
	release func()
	next    atomic.Int64
	closed  atomic.Bool
}

// NewMorselSource pins the projected columns and snapshots the segment
// list for a parallel scan. Callers must Close it to release the pins.
func (t *DataTable) NewMorselSource(tx *txn.Transaction, opts ScanOptions) (*MorselSource, error) {
	cols, err := t.resolveColumns(opts.Columns)
	if err != nil {
		return nil, err
	}
	release, err := t.PinColumns(cols)
	if err != nil {
		return nil, err
	}
	segs, ns := t.snapshotSegments()
	return &MorselSource{
		t:       t,
		tx:      tx,
		cols:    cols,
		rowIDs:  opts.WithRowIDs,
		opts:    opts,
		segs:    segs,
		ns:      ns,
		release: release,
	}, nil
}

// OutputTypes returns the chunk schema every worker produces.
func (m *MorselSource) OutputTypes() []types.Type {
	r := segReader{t: m.t, cols: m.cols, rowIDs: m.rowIDs}
	return r.outputTypes()
}

// NumMorsels returns the total number of morsels the source will hand
// out. Sequence numbers are dense in [0, NumMorsels).
func (m *MorselSource) NumMorsels() int { return len(m.segs) }

// Worker returns a new scanner drawing morsels from the shared counter.
// Each worker goroutine must use its own.
func (m *MorselSource) Worker() *MorselScanner {
	return &MorselScanner{
		segReader: newSegReader(m.t, m.tx, m.cols, m.rowIDs, m.opts.ZoneFilters),
		src:       m,
	}
}

// Close releases the column pins. Idempotent.
func (m *MorselSource) Close() {
	if !m.closed.Swap(true) {
		m.release()
	}
}

// MorselScanner is one worker's view of a MorselSource.
type MorselScanner struct {
	segReader
	src *MorselSource
}

// Next claims the next unclaimed morsel and materializes it. It returns
// the morsel's sequence number and its snapshot-visible rows; the chunk
// is nil when the morsel holds no visible rows or its zone maps refute
// the pushed filters (the sequence number is still consumed either way,
// so callers can account for every morsel — skipping changes which
// morsels do work, never the merged output). seq is -1 when the source
// is exhausted.
//
//quack:hotpath
func (w *MorselScanner) Next() (seq int, chunk *vector.Chunk, err error) {
	idx := w.src.next.Add(1) - 1
	if idx >= int64(len(w.src.segs)) {
		return -1, nil, nil
	}
	seg := w.src.segs[idx]
	if len(w.src.opts.ZoneFilters) > 0 && segRefuted(w.src.t, seg, w.src.opts.ZoneFilters) {
		w.src.opts.countSkipped()
		return int(idx), nil, nil
	}
	if w.src.opts.EncodedExec {
		if chunk, selected, ok := w.scanSegmentEncoded(seg, idx*SegRows, w.src.ns[idx]); ok {
			w.src.opts.countScanned()
			w.src.opts.countEncoded(selected)
			return int(idx), chunk, nil
		}
	}
	if err := w.src.t.materializeSegCols(seg, w.src.cols); err != nil {
		return int(idx), nil, err
	}
	w.src.opts.countScanned()
	chunk = w.scanSegment(seg, idx*SegRows, w.src.ns[idx])
	rows := 0
	if chunk != nil {
		rows = chunk.Len()
	}
	w.src.opts.countMaterialized(w.src.ns[idx], rows)
	return int(idx), chunk, nil
}
