package table

import (
	"math"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"repro/internal/compress"
	"repro/internal/types"
	"repro/internal/vector"
)

// fuzzIters resolves the iteration count for a fuzz loop: the
// QUACK_FUZZ_ITERS environment variable when set (the nightly workflow
// raises it), def otherwise.
func fuzzIters(def int) int {
	if env := os.Getenv("QUACK_FUZZ_ITERS"); env != "" {
		if n, err := strconv.Atoi(env); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// refMatch is the decode-then-filter reference: SQL comparison
// semantics over the decoded vector (NULL never satisfies a
// comparison; types.Compare promotes int/double pairs through the
// engine's total FP order).
func refMatch(v *vector.Vector, i int, f ZoneFilter) bool {
	switch f.Op {
	case ZoneIsNull:
		return v.IsNull(i)
	case ZoneNotNull:
		return !v.IsNull(i)
	}
	if f.Val.Null || v.IsNull(i) {
		return false
	}
	return compress.OpHolds(cmpOpFor(f.Op), types.Compare(v.Get(i), f.Val))
}

// fuzzVector builds one segment-sized column with an encoder-stressing
// shape (constant, runs, ramps across FOR width edges, wide random,
// int64/int32 extremes, NaN/±Inf doubles) and NULL pattern (none,
// sparse, leading, all).
func fuzzVector(rng *rand.Rand, typ types.Type, n int) *vector.Vector {
	v := vector.New(typ, SegRows)
	v.SetLen(n)
	shape := rng.Intn(5)
	for i := 0; i < n; i++ {
		var x int64
		switch shape {
		case 0: // constant
			x = 42
		case 1: // short runs
			x = int64(i/(1+rng.Intn(3)*8+1)) % 17
		case 2: // ramp: FOR with width near a bit boundary
			x = int64(-100 + i)
		case 3: // wide random
			x = rng.Int63() - rng.Int63()
		default: // extremes mixed in
			switch rng.Intn(4) {
			case 0:
				x = math.MaxInt64
			case 1:
				x = math.MinInt64
			default:
				x = int64(rng.Intn(1000))
			}
		}
		switch typ {
		case types.BigInt, types.Timestamp:
			v.I64[i] = x
		case types.Integer:
			v.I32[i] = int32(x)
		case types.Double:
			switch rng.Intn(12) {
			case 0:
				v.F64[i] = math.NaN()
			case 1:
				v.F64[i] = math.Inf(1)
			case 2:
				v.F64[i] = math.Inf(-1)
			default:
				v.F64[i] = float64(x%1000) / 4
			}
		case types.Varchar:
			v.Str[i] = "v" + strconv.Itoa(int(((x%7)+7)%7))
		case types.Boolean:
			v.Bools[i] = x&1 == 0
		}
	}
	switch rng.Intn(4) {
	case 1: // sparse NULLs
		for i := 0; i < n; i++ {
			if rng.Intn(5) == 0 {
				v.SetNull(i)
			}
		}
	case 2: // leading NULLs (the encoded fill value aliases a later row)
		for i := 0; i < n/3; i++ {
			v.SetNull(i)
		}
	case 3: // all NULL
		for i := 0; i < n; i++ {
			v.SetNull(i)
		}
	}
	return v
}

// fuzzConst draws a comparison constant for the column type, biased
// toward values present in the data and the edges the kernels rewrite
// (domain bounds, non-integral doubles, NaN/Inf, NULL).
func fuzzConst(rng *rand.Rand, typ types.Type, v *vector.Vector, n int) types.Value {
	if rng.Intn(12) == 0 {
		return types.NewNull(typ)
	}
	if n > 0 && rng.Intn(2) == 0 {
		i := rng.Intn(n)
		if !v.IsNull(i) {
			val := v.Get(i)
			if val.Type == types.Double && rng.Intn(2) == 0 {
				val.F64 += 0.5 // just off a stored value
			}
			return val
		}
	}
	switch typ {
	case types.Integer:
		if rng.Intn(3) == 0 {
			// Double constants are pushable against INTEGER columns; the
			// kernel must mirror the promoted-to-float comparison exactly.
			switch rng.Intn(5) {
			case 0:
				return types.NewDouble(math.NaN())
			case 1:
				return types.NewDouble(math.Inf(1 - 2*rng.Intn(2)))
			case 2:
				return types.NewDouble(float64(rng.Intn(200)-100) + 0.5)
			default:
				return types.NewDouble(float64(rng.Intn(200) - 100))
			}
		}
		return types.NewBigInt(int64(rng.Intn(2000) - 1000))
	case types.BigInt, types.Timestamp:
		switch rng.Intn(5) {
		case 0:
			return types.NewBigInt(math.MaxInt64)
		case 1:
			return types.NewBigInt(math.MinInt64)
		default:
			return types.NewBigInt(rng.Int63() - rng.Int63())
		}
	case types.Double:
		switch rng.Intn(6) {
		case 0:
			return types.NewDouble(math.NaN())
		case 1:
			return types.NewDouble(math.Inf(1 - 2*rng.Intn(2)))
		default:
			return types.NewDouble(float64(rng.Intn(1000)-500) / 4)
		}
	default: // Varchar
		return types.NewVarchar("v" + strconv.Itoa(rng.Intn(9)))
	}
}

// TestEncodedKernelEquivalenceFuzz pins the selection-vector
// determinism rule: for every encoding (dictionary, FOR across
// width/overflow edges, RLE, plain), every operator and every constant
// the planner can push, encSelect must agree with decode-then-filter
// row for row — including NULL slots (whose encoded fill value aliases
// a real value) and NaN/±Inf under the engine's total FP order — and
// gatherEncoded must reproduce exactly the selected rows.
func TestEncodedKernelEquivalenceFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	typs := []types.Type{types.BigInt, types.Integer, types.Double, types.Varchar, types.Timestamp, types.Boolean}
	ops := []ZoneOp{ZoneEq, ZoneNe, ZoneLt, ZoneLe, ZoneGt, ZoneGe, ZoneIsNull, ZoneNotNull}
	iters := fuzzIters(400)
	for trial := 0; trial < iters; trial++ {
		typ := typs[trial%len(typs)]
		n := 1 + rng.Intn(SegRows)
		v := fuzzVector(rng, typ, n)
		payload := encodeSegColumn(v, n)
		decoded, err := decodeSegColumn(payload, typ)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}

		op := ops[rng.Intn(len(ops))]
		f := ZoneFilter{Col: 0, Op: op, Exact: true}
		if op != ZoneIsNull && op != ZoneNotNull {
			f.Val = fuzzConst(rng, typ, v, n)
		}

		selectable := encSelectable(payload, typ, f)
		match := make([]bool, n)
		for i := range match {
			match[i] = true
		}
		got := encSelect(payload, typ, f, match)
		if selectable && !got {
			t.Fatalf("trial %d (%v %v): encSelectable said yes, encSelect declined", trial, typ, f.Op)
		}
		if !got {
			continue // declined filters are simply not applied — always safe
		}
		sel := make([]int, 0, n)
		for i := 0; i < n; i++ {
			want := refMatch(decoded, i, f)
			if match[i] != want {
				t.Fatalf("trial %d (%v %v const=%v) row %d (val=%v null=%v): kernel=%v reference=%v",
					trial, typ, f.Op, f.Val, i, decoded.Get(i), decoded.IsNull(i), match[i], want)
			}
			if match[i] {
				sel = append(sel, i)
			}
		}

		// Late materialization must reproduce exactly the selected rows.
		r := segReader{t: &DataTable{typs: []types.Type{typ}}, sel: sel}
		out := vector.New(typ, SegRows)
		if !r.gatherEncoded(payload, typ, out) {
			t.Fatalf("trial %d (%v): gather declined a light payload", trial, typ)
		}
		for k, row := range sel {
			if out.IsNull(k) != decoded.IsNull(row) {
				t.Fatalf("trial %d row %d: gathered null=%v want %v", trial, row, out.IsNull(k), decoded.IsNull(row))
			}
			if !out.IsNull(k) && types.Compare(out.Get(k), decoded.Get(row)) != 0 {
				t.Fatalf("trial %d row %d: gathered %v want %v", trial, row, out.Get(k), decoded.Get(row))
			}
		}
	}
}

// TestEncSelectDeclinesDoubleOn64Bit pins the precision rule: double
// constants against the 64-bit int family must decline (float64
// promotion rounds values above 2^53, so an integer-domain rewrite
// could disagree with the engine's comparison).
func TestEncSelectDeclinesDoubleOn64Bit(t *testing.T) {
	v := vector.New(types.BigInt, SegRows)
	v.SetLen(4)
	huge := int64(1) << 55
	copy(v.I64, []int64{huge, huge + 1, 0, -1})
	payload := encodeSegColumn(v, 4)
	f := ZoneFilter{Col: 0, Op: ZoneEq, Val: types.NewDouble(float64(huge)), Exact: true}
	if encSelectable(payload, types.BigInt, f) {
		t.Fatal("encSelectable accepted a double constant on a BIGINT column")
	}
	match := []bool{true, true, true, true}
	if encSelect(payload, types.BigInt, f, match) {
		t.Fatal("encSelect accepted a double constant on a BIGINT column")
	}
}
