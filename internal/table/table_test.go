package table

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/txn"
	"repro/internal/types"
	"repro/internal/vector"
)

func intChunk(vals ...int64) *vector.Chunk {
	c := vector.NewChunk([]types.Type{types.BigInt})
	for _, v := range vals {
		c.AppendRow(types.NewBigInt(v))
	}
	return c
}

func rangeChunk(n int) *vector.Chunk {
	c := vector.NewChunk([]types.Type{types.BigInt})
	for i := 0; i < n; i++ {
		c.AppendRow(types.NewBigInt(int64(i)))
	}
	return c
}

func scanAll(t *testing.T, dt *DataTable, tx *txn.Transaction, withRowIDs bool) [][]int64 {
	t.Helper()
	sc, err := dt.NewScanner(tx, ScanOptions{WithRowIDs: withRowIDs})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	var out [][]int64
	for {
		chunk, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if chunk == nil {
			return out
		}
		for r := 0; r < chunk.Len(); r++ {
			row := make([]int64, chunk.NumCols())
			for c := 0; c < chunk.NumCols(); c++ {
				if chunk.Cols[c].IsNull(r) {
					row[c] = -1 << 62
				} else {
					row[c] = chunk.Cols[c].I64[r]
				}
			}
			out = append(out, row)
		}
	}
}

func sumCol(t *testing.T, dt *DataTable, tx *txn.Transaction) int64 {
	t.Helper()
	var sum int64
	for _, row := range scanAll(t, dt, tx, false) {
		if row[0] != -1<<62 {
			sum += row[0]
		}
	}
	return sum
}

func TestAppendVisibility(t *testing.T) {
	mgr := txn.NewManager(nil)
	dt := New([]types.Type{types.BigInt}, nil)

	writer := mgr.Begin()
	if err := dt.Append(writer, intChunk(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	// Uncommitted rows: invisible to others, visible to the writer.
	other := mgr.Begin()
	if n := dt.CountVisible(other); n != 0 {
		t.Fatalf("dirty read: %d rows", n)
	}
	if n := dt.CountVisible(writer); n != 3 {
		t.Fatalf("own rows invisible: %d", n)
	}
	if _, err := mgr.Commit(writer); err != nil {
		t.Fatal(err)
	}
	// Old snapshot still sees nothing; a new one sees all.
	if n := dt.CountVisible(other); n != 0 {
		t.Fatalf("snapshot moved: %d", n)
	}
	fresh := mgr.Begin()
	if n := dt.CountVisible(fresh); n != 3 {
		t.Fatalf("committed rows missing: %d", n)
	}
}

func TestAppendRollback(t *testing.T) {
	mgr := txn.NewManager(nil)
	dt := New([]types.Type{types.BigInt}, nil)
	writer := mgr.Begin()
	dt.Append(writer, intChunk(1, 2, 3))
	mgr.Rollback(writer)
	fresh := mgr.Begin()
	if n := dt.CountVisible(fresh); n != 0 {
		t.Fatalf("aborted rows visible: %d", n)
	}
	if !dt.LayoutDiverged() {
		t.Fatal("aborted append should diverge layout")
	}
}

func TestUpdateSnapshotReconstruction(t *testing.T) {
	mgr := txn.NewManager(nil)
	dt := New([]types.Type{types.BigInt}, nil)
	setup := mgr.Begin()
	dt.Append(setup, intChunk(10, 20, 30))
	mgr.Commit(setup)

	oldSnap := mgr.Begin() // sees 10+20+30 = 60

	writer := mgr.Begin()
	vals := vector.New(types.BigInt, 0)
	vals.Append(types.NewBigInt(100))
	if _, err := dt.Update(writer, 0, []int64{1}, vals); err != nil {
		t.Fatal(err)
	}
	// Writer sees its own update; old snapshot does not.
	if got := sumCol(t, dt, writer); got != 140 {
		t.Fatalf("writer sum = %d, want 140", got)
	}
	if got := sumCol(t, dt, oldSnap); got != 60 {
		t.Fatalf("old snapshot sum = %d, want 60", got)
	}
	mgr.Commit(writer)
	if got := sumCol(t, dt, oldSnap); got != 60 {
		t.Fatalf("old snapshot moved after commit: %d", got)
	}
	fresh := mgr.Begin()
	if got := sumCol(t, dt, fresh); got != 140 {
		t.Fatalf("fresh sum = %d, want 140", got)
	}
}

func TestUpdateRollbackRestoresValues(t *testing.T) {
	mgr := txn.NewManager(nil)
	dt := New([]types.Type{types.BigInt}, nil)
	setup := mgr.Begin()
	dt.Append(setup, intChunk(5, 6))
	mgr.Commit(setup)

	writer := mgr.Begin()
	vals := vector.New(types.BigInt, 0)
	vals.Append(types.NewBigInt(999))
	vals.Append(types.NewBigInt(888))
	dt.Update(writer, 0, []int64{0, 1}, vals)
	mgr.Rollback(writer)

	fresh := mgr.Begin()
	rows := scanAll(t, dt, fresh, false)
	if rows[0][0] != 5 || rows[1][0] != 6 {
		t.Fatalf("rollback failed: %v", rows)
	}
}

func TestWriteWriteConflictOnOverlap(t *testing.T) {
	mgr := txn.NewManager(nil)
	dt := New([]types.Type{types.BigInt}, nil)
	setup := mgr.Begin()
	dt.Append(setup, intChunk(1, 2, 3, 4))
	mgr.Commit(setup)

	t1 := mgr.Begin()
	t2 := mgr.Begin()
	one := vector.New(types.BigInt, 0)
	one.Append(types.NewBigInt(11))
	if _, err := dt.Update(t1, 0, []int64{1}, one); err != nil {
		t.Fatal(err)
	}
	// Disjoint rows: no conflict.
	two := vector.New(types.BigInt, 0)
	two.Append(types.NewBigInt(22))
	if _, err := dt.Update(t2, 0, []int64{2}, two); err != nil {
		t.Fatalf("disjoint update conflicted: %v", err)
	}
	// Overlapping row: conflict.
	tri := vector.New(types.BigInt, 0)
	tri.Append(types.NewBigInt(33))
	if _, err := dt.Update(t2, 0, []int64{1}, tri); !errors.Is(err, txn.ErrConflict) {
		t.Fatalf("expected conflict, got %v", err)
	}
	mgr.Commit(t1)
	mgr.Commit(t2)
	fresh := mgr.Begin()
	rows := scanAll(t, dt, fresh, false)
	want := fmt.Sprint([][]int64{{1}, {11}, {22}, {4}})
	if fmt.Sprint(rows) != want {
		t.Fatalf("got %v want %v", rows, want)
	}
}

func TestConflictWithCommittedNewerVersion(t *testing.T) {
	// First-updater-wins also applies to already-committed updates
	// newer than the transaction's snapshot.
	mgr := txn.NewManager(nil)
	dt := New([]types.Type{types.BigInt}, nil)
	setup := mgr.Begin()
	dt.Append(setup, intChunk(1))
	mgr.Commit(setup)

	early := mgr.Begin() // snapshot before the next commit
	late := mgr.Begin()
	v := vector.New(types.BigInt, 0)
	v.Append(types.NewBigInt(2))
	dt.Update(late, 0, []int64{0}, v)
	mgr.Commit(late)

	v2 := vector.New(types.BigInt, 0)
	v2.Append(types.NewBigInt(3))
	if _, err := dt.Update(early, 0, []int64{0}, v2); !errors.Is(err, txn.ErrConflict) {
		t.Fatalf("lost update allowed: %v", err)
	}
}

func TestDeleteVisibilityAndConflict(t *testing.T) {
	mgr := txn.NewManager(nil)
	dt := New([]types.Type{types.BigInt}, nil)
	setup := mgr.Begin()
	dt.Append(setup, intChunk(1, 2, 3))
	mgr.Commit(setup)

	snap := mgr.Begin()
	deleter := mgr.Begin()
	if n, err := dt.Delete(deleter, []int64{1}); err != nil || n != 1 {
		t.Fatalf("delete: %d %v", n, err)
	}
	if n := dt.CountVisible(snap); n != 3 {
		t.Fatalf("uncommitted delete visible: %d", n)
	}
	if n := dt.CountVisible(deleter); n != 2 {
		t.Fatalf("own delete invisible: %d", n)
	}
	// Concurrent delete of the same row conflicts.
	other := mgr.Begin()
	if _, err := dt.Delete(other, []int64{1}); !errors.Is(err, txn.ErrConflict) {
		t.Fatalf("double delete allowed: %v", err)
	}
	mgr.Commit(deleter)
	// Deleting an already-visible-deleted row is a no-op.
	fresh := mgr.Begin()
	if n, err := dt.Delete(fresh, []int64{1}); err != nil || n != 0 {
		t.Fatalf("redelete: %d %v", n, err)
	}
}

func TestDeleteRollback(t *testing.T) {
	mgr := txn.NewManager(nil)
	dt := New([]types.Type{types.BigInt}, nil)
	setup := mgr.Begin()
	dt.Append(setup, intChunk(7))
	mgr.Commit(setup)
	d := mgr.Begin()
	dt.Delete(d, []int64{0})
	mgr.Rollback(d)
	fresh := mgr.Begin()
	if n := dt.CountVisible(fresh); n != 1 {
		t.Fatalf("rolled-back delete stuck: %d rows", n)
	}
}

func TestUpdateOfDeletedRowConflicts(t *testing.T) {
	mgr := txn.NewManager(nil)
	dt := New([]types.Type{types.BigInt}, nil)
	setup := mgr.Begin()
	dt.Append(setup, intChunk(1))
	mgr.Commit(setup)
	deleter := mgr.Begin()
	dt.Delete(deleter, []int64{0})
	updater := mgr.Begin()
	v := vector.New(types.BigInt, 0)
	v.Append(types.NewBigInt(9))
	if _, err := dt.Update(updater, 0, []int64{0}, v); !errors.Is(err, txn.ErrConflict) {
		t.Fatalf("update of concurrently deleted row: %v", err)
	}
}

func TestMultiSegmentAppendAndRowIDs(t *testing.T) {
	mgr := txn.NewManager(nil)
	dt := New([]types.Type{types.BigInt}, nil)
	setup := mgr.Begin()
	dt.Append(setup, rangeChunk(SegRows*2+100)) // spans 3 segments
	mgr.Commit(setup)

	fresh := mgr.Begin()
	rows := scanAll(t, dt, fresh, true)
	if len(rows) != SegRows*2+100 {
		t.Fatalf("%d rows", len(rows))
	}
	for i, row := range rows {
		if row[1] != int64(i) {
			t.Fatalf("row %d has rowid %d", i, row[1])
		}
		if row[0] != int64(i%vector.ChunkCapacity+((i/vector.ChunkCapacity)*vector.ChunkCapacity))%int64(SegRows*2+100) && false {
			t.Fatal("unreachable")
		}
	}
}

func TestColumnGranularUpdateLeavesOthersUntouched(t *testing.T) {
	mgr := txn.NewManager(nil)
	dt := New([]types.Type{types.BigInt, types.BigInt, types.BigInt}, nil)
	setup := mgr.Begin()
	c := vector.NewChunk(dt.Types())
	for i := 0; i < 10; i++ {
		c.AppendRow(types.NewBigInt(int64(i)), types.NewBigInt(int64(i*10)), types.NewBigInt(int64(i*100)))
	}
	dt.Append(setup, c)
	mgr.Commit(setup)

	w := mgr.Begin()
	v := vector.New(types.BigInt, 0)
	v.Append(types.NewBigInt(-1))
	dt.Update(w, 1, []int64{5}, v)
	mgr.Commit(w)

	if !dt.ColDirty(1) || dt.ColDirty(0) || dt.ColDirty(2) {
		t.Fatal("dirty flags wrong: only column 1 was updated")
	}
}

func TestVacuumPrunesChains(t *testing.T) {
	mgr := txn.NewManager(nil)
	dt := New([]types.Type{types.BigInt}, nil)
	setup := mgr.Begin()
	dt.Append(setup, intChunk(1))
	mgr.Commit(setup)

	for i := 0; i < 10; i++ {
		w := mgr.Begin()
		v := vector.New(types.BigInt, 0)
		v.Append(types.NewBigInt(int64(i)))
		if _, err := dt.Update(w, 0, []int64{0}, v); err != nil {
			t.Fatal(err)
		}
		mgr.Commit(w)
	}
	if n := chainLen(dt, 0); n != 10 {
		t.Fatalf("chain length %d, want 10", n)
	}
	dt.Vacuum(mgr.OldestVisibleTS())
	if n := chainLen(dt, 0); n != 0 {
		t.Fatalf("chain length after vacuum %d, want 0", n)
	}
	fresh := mgr.Begin()
	if got := sumCol(t, dt, fresh); got != 9 {
		t.Fatalf("value lost in vacuum: %d", got)
	}
}

// TestVacuumKeepsNeededVersions: versions an active snapshot still needs
// survive vacuum.
func TestVacuumKeepsNeededVersions(t *testing.T) {
	mgr := txn.NewManager(nil)
	dt := New([]types.Type{types.BigInt}, nil)
	setup := mgr.Begin()
	dt.Append(setup, intChunk(1))
	mgr.Commit(setup)

	old := mgr.Begin() // holds the old snapshot
	w := mgr.Begin()
	v := vector.New(types.BigInt, 0)
	v.Append(types.NewBigInt(2))
	dt.Update(w, 0, []int64{0}, v)
	mgr.Commit(w)

	dt.Vacuum(mgr.OldestVisibleTS())
	if got := sumCol(t, dt, old); got != 1 {
		t.Fatalf("old snapshot sees %d after vacuum, want 1", got)
	}
	mgr.Rollback(old)
	dt.Vacuum(mgr.OldestVisibleTS())
	if n := chainLen(dt, 0); n != 0 {
		t.Fatalf("chain not pruned after snapshot release: %d", n)
	}
}

func chainLen(dt *DataTable, col int) int {
	dt.mu.RLock()
	defer dt.mu.RUnlock()
	n := 0
	for _, s := range dt.segs {
		s.mu.RLock()
		for node := s.updates[col]; node != nil; node = node.next {
			n++
		}
		s.mu.RUnlock()
	}
	return n
}

func TestSerializeColumnRoundTrip(t *testing.T) {
	mgr := txn.NewManager(nil)
	dt := New([]types.Type{types.BigInt}, nil)
	setup := mgr.Begin()
	dt.Append(setup, rangeChunk(SegRows+500))
	mgr.Commit(setup)
	// Delete a few rows: they must not be serialized.
	d := mgr.Begin()
	dt.Delete(d, []int64{0, 1, 2})
	mgr.Commit(d)

	snap := mgr.Begin()
	payload, rows, stats, err := dt.SerializeColumn(snap, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rows != int64(SegRows+500-3) {
		t.Fatalf("serialized %d rows", rows)
	}
	if len(stats) != 2 || !stats[0].Valid || !stats[0].HasMinMax {
		t.Fatalf("missing serialized stats: %+v", stats)
	}
	if stats[0].Min.I64 != 3 || stats[1].Max.I64 != int64(SegRows+500-1) {
		t.Fatalf("stats bounds wrong: %+v", stats)
	}
	segs, bytes, err := DecodeColumnSegments(payload)
	if err != nil {
		t.Fatal(err)
	}
	if bytes <= 0 {
		t.Fatal("zero byte estimate")
	}
	total := 0
	for _, sv := range segs {
		total += sv.Len()
	}
	if int64(total) != rows {
		t.Fatalf("decoded %d rows, want %d", total, rows)
	}
	if segs[0].I64[0] != 3 {
		t.Fatalf("first surviving row = %d, want 3", segs[0].I64[0])
	}
}

func TestScanProjection(t *testing.T) {
	mgr := txn.NewManager(nil)
	dt := New([]types.Type{types.BigInt, types.Varchar}, nil)
	setup := mgr.Begin()
	c := vector.NewChunk(dt.Types())
	c.AppendRow(types.NewBigInt(1), types.NewVarchar("a"))
	dt.Append(setup, c)
	mgr.Commit(setup)

	fresh := mgr.Begin()
	sc, err := dt.NewScanner(fresh, ScanOptions{Columns: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	chunk, err := sc.Next()
	if err != nil || chunk == nil {
		t.Fatal(err)
	}
	if chunk.NumCols() != 1 || chunk.Cols[0].Str[0] != "a" {
		t.Fatalf("projection wrong: %v", chunk.Row(0))
	}
}

func TestScanInvalidColumn(t *testing.T) {
	dt := New([]types.Type{types.BigInt}, nil)
	mgr := txn.NewManager(nil)
	if _, err := dt.NewScanner(mgr.Begin(), ScanOptions{Columns: []int{5}}); err == nil {
		t.Fatal("out-of-range column accepted")
	}
}
