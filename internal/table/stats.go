package table

import (
	"encoding/binary"
	"fmt"

	"repro/internal/txn"
	"repro/internal/types"
)

// Zone maps: per-segment, per-column statistics maintained at append
// time and widened (never narrowed) by in-place updates, so they are a
// conservative superset of every value any snapshot can reconstruct —
// including undo-chain old values, uncommitted appends and rows whose
// delete is not yet visible. A scan may therefore skip a segment whose
// stats refute a pushed predicate without changing the result: the
// predicate is still re-applied per row on the segments that survive.

// ColStats are the zone-map statistics of one column of one segment.
type ColStats struct {
	// Valid is false when the segment's contents are unknown (a cold
	// segment whose checkpoint predates zone maps); invalid stats never
	// refute anything.
	Valid bool
	// HasMinMax is false while no non-null value was ever observed.
	HasMinMax bool
	// Min and Max bound the non-null values under the engine's total
	// order (types.Compare: NaN greatest, NaN == NaN).
	Min, Max types.Value
	// NullCount and NonNullCount are upper bounds that never undercount:
	// updates only ever increment them, so NullCount == 0 still proves
	// "no version of any row is NULL" (and symmetrically for NonNull).
	NullCount    int64
	NonNullCount int64
	// DistinctHint is a rough all-distinct flag: true when the non-null
	// values of an integer-family column form a dense range. Advisory
	// only — never used for skipping.
	DistinctHint bool
}

// widenValue folds one observed value into the stats.
func (st *ColStats) widenValue(v types.Value) {
	if !st.Valid {
		return
	}
	if v.Null {
		st.NullCount++
		return
	}
	st.NonNullCount++
	if !st.HasMinMax {
		st.Min, st.Max = v, v
		st.HasMinMax = true
	} else {
		if types.Compare(v, st.Min) < 0 {
			st.Min = v
		}
		if types.Compare(v, st.Max) > 0 {
			st.Max = v
		}
	}
	st.refreshDistinctHint()
}

func (st *ColStats) refreshDistinctHint() {
	switch st.Min.Type {
	case types.Integer, types.BigInt, types.Timestamp:
		span := st.Max.I64 - st.Min.I64
		st.DistinctHint = span >= 0 && span+1 == st.NonNullCount
	default:
		st.DistinctHint = false
	}
}

// ZoneOp is the operator of a scan-eligible conjunct.
type ZoneOp uint8

// Zone-map predicate operators.
const (
	ZoneEq ZoneOp = iota
	ZoneNe
	ZoneLt
	ZoneLe
	ZoneGt
	ZoneGe
	ZoneIsNull
	ZoneNotNull
)

// String renders the operator for EXPLAIN output.
func (o ZoneOp) String() string {
	return [...]string{"=", "<>", "<", "<=", ">", ">=", " IS NULL", " IS NOT NULL"}[o]
}

// ZoneFilter is one pushed conjunct a scan can test against zone maps:
// column Op constant (Val is unset for the null tests). Col is a table
// column index, not an output position.
type ZoneFilter struct {
	Col int
	Op  ZoneOp
	Val types.Value
	// Exact marks a conjunct whose row-level truth is exactly
	// "column Op Val" under the engine's comparison semantics — not
	// merely implied by it. Refutation (a superset test) is safe either
	// way, but only exact filters may drive encoded-execution selection
	// kernels: an inexact filter could drop rows the full predicate
	// would keep. See CONTRIBUTING.md "Engine invariants".
	Exact bool
}

// String renders the filter for EXPLAIN output; name is the column name.
func (f ZoneFilter) String(name string) string {
	switch f.Op {
	case ZoneIsNull, ZoneNotNull:
		return name + f.Op.String()
	default:
		return name + f.Op.String() + f.Val.String()
	}
}

// zoneComparable reports whether stats of type a can be ordered against
// a constant of type b by types.Compare.
func zoneComparable(a, b types.Type) bool {
	intFam := func(t types.Type) bool {
		return t == types.Integer || t == types.BigInt || t == types.Timestamp
	}
	switch {
	case a == types.Varchar || b == types.Varchar:
		return a == types.Varchar && b == types.Varchar
	case a == types.Double || b == types.Double:
		return (a == types.Double || intFam(a)) && (b == types.Double || intFam(b))
	default:
		return intFam(a) && intFam(b)
	}
}

// Refutes reports whether the stats prove no visible row of the segment
// can satisfy f. Comparisons against NULL never hold, so a null constant
// refutes every comparison.
func (st *ColStats) Refutes(f ZoneFilter) bool {
	if !st.Valid {
		return false
	}
	switch f.Op {
	case ZoneIsNull:
		return st.NullCount == 0
	case ZoneNotNull:
		return st.NonNullCount == 0
	}
	if f.Val.Null {
		return true
	}
	if !st.HasMinMax {
		// Every row is NULL; no comparison passes.
		return true
	}
	if !zoneComparable(st.Min.Type, f.Val.Type) {
		return false
	}
	switch f.Op {
	case ZoneEq:
		return types.Compare(f.Val, st.Min) < 0 || types.Compare(f.Val, st.Max) > 0
	case ZoneNe:
		return types.Compare(st.Min, f.Val) == 0 && types.Compare(st.Max, f.Val) == 0
	case ZoneLt:
		return types.Compare(st.Min, f.Val) >= 0
	case ZoneLe:
		return types.Compare(st.Min, f.Val) > 0
	case ZoneGt:
		return types.Compare(st.Max, f.Val) <= 0
	case ZoneGe:
		return types.Compare(st.Max, f.Val) < 0
	}
	return false
}

// ---- serialization (catalog checkpoint image) ----

const (
	statsFlagValid    = 1 << 0
	statsFlagMinMax   = 1 << 1
	statsFlagDistinct = 1 << 2
)

// AppendColStats serializes one column's per-segment stats. typ is the
// column's logical type (it fixes the Min/Max encoding).
func AppendColStats(dst []byte, typ types.Type, stats []ColStats) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(stats)))
	for _, st := range stats {
		var flags byte
		if st.Valid {
			flags |= statsFlagValid
		}
		if st.HasMinMax {
			flags |= statsFlagMinMax
		}
		if st.DistinctHint {
			flags |= statsFlagDistinct
		}
		dst = append(dst, flags)
		if !st.Valid {
			continue
		}
		dst = binary.AppendUvarint(dst, uint64(st.NullCount))
		dst = binary.AppendUvarint(dst, uint64(st.NonNullCount))
		if !st.HasMinMax {
			continue
		}
		dst = appendStatValue(dst, typ, st.Min)
		dst = appendStatValue(dst, typ, st.Max)
	}
	return dst
}

func appendStatValue(dst []byte, typ types.Type, v types.Value) []byte {
	switch typ {
	case types.Double:
		return binary.LittleEndian.AppendUint64(dst, uint64(floatBits(v.F64)))
	case types.Varchar:
		dst = binary.AppendUvarint(dst, uint64(len(v.Str)))
		return append(dst, v.Str...)
	case types.Boolean:
		if v.Bool {
			return append(dst, 1)
		}
		return append(dst, 0)
	default:
		return binary.AppendVarint(dst, v.I64)
	}
}

// DecodeColStats reverses AppendColStats, returning the stats and the
// remaining buffer.
func DecodeColStats(src []byte, typ types.Type) ([]ColStats, []byte, error) {
	n, k := binary.Uvarint(src)
	if k <= 0 {
		return nil, nil, fmt.Errorf("table: bad stats header")
	}
	src = src[k:]
	out := make([]ColStats, n)
	for i := range out {
		if len(src) < 1 {
			return nil, nil, fmt.Errorf("table: stats truncated")
		}
		flags := src[0]
		src = src[1:]
		st := &out[i]
		st.Valid = flags&statsFlagValid != 0
		st.HasMinMax = flags&statsFlagMinMax != 0
		st.DistinctHint = flags&statsFlagDistinct != 0
		if !st.Valid {
			st.HasMinMax = false
			continue
		}
		var err error
		if st.NullCount, src, err = decodeStatCount(src); err != nil {
			return nil, nil, err
		}
		if st.NonNullCount, src, err = decodeStatCount(src); err != nil {
			return nil, nil, err
		}
		if !st.HasMinMax {
			continue
		}
		if st.Min, src, err = decodeStatValue(src, typ); err != nil {
			return nil, nil, err
		}
		if st.Max, src, err = decodeStatValue(src, typ); err != nil {
			return nil, nil, err
		}
	}
	return out, src, nil
}

func decodeStatCount(src []byte) (int64, []byte, error) {
	v, k := binary.Uvarint(src)
	if k <= 0 {
		return 0, nil, fmt.Errorf("table: stats count truncated")
	}
	return int64(v), src[k:], nil
}

func decodeStatValue(src []byte, typ types.Type) (types.Value, []byte, error) {
	switch typ {
	case types.Double:
		if len(src) < 8 {
			return types.Value{}, nil, fmt.Errorf("table: stats value truncated")
		}
		return types.NewDouble(floatFromBits(int64(binary.LittleEndian.Uint64(src)))), src[8:], nil
	case types.Varchar:
		l, k := binary.Uvarint(src)
		if k <= 0 || uint64(len(src)-k) < l {
			return types.Value{}, nil, fmt.Errorf("table: stats value truncated")
		}
		return types.NewVarchar(string(src[k : k+int(l)])), src[k+int(l):], nil
	case types.Boolean:
		if len(src) < 1 {
			return types.Value{}, nil, fmt.Errorf("table: stats value truncated")
		}
		return types.NewBool(src[0] != 0), src[1:], nil
	default:
		v, k := binary.Varint(src)
		if k <= 0 {
			return types.Value{}, nil, fmt.Errorf("table: stats value truncated")
		}
		return types.Value{Type: typ, I64: v}, src[k:], nil
	}
}

// ---- table-level access ----

// SetSegmentStats installs catalog-loaded stats: stats[c][i] is column
// c of segment i. Columns or segments beyond the recorded counts keep
// invalid stats (never skipped). Called once at open, before any scan.
func (t *DataTable) SetSegmentStats(stats [][]ColStats) {
	t.mu.RLock()
	segs := t.segs
	t.mu.RUnlock()
	for c := range stats {
		if c >= len(t.typs) {
			break
		}
		for i, st := range stats[c] {
			if i >= len(segs) {
				break
			}
			s := segs[i]
			s.mu.Lock()
			s.stats[c] = st
			s.mu.Unlock()
		}
	}
}

// SegmentStats snapshots the current stats of column c, one entry per
// segment (used by the checkpointer for tables whose layout matches the
// disk image).
func (t *DataTable) SegmentStats(c int) []ColStats {
	t.mu.RLock()
	segs := t.segs
	t.mu.RUnlock()
	out := make([]ColStats, len(segs))
	for i, s := range segs {
		s.mu.RLock()
		out[i] = s.stats[c]
		s.mu.RUnlock()
	}
	return out
}

// RebuildStats recomputes every segment's per-column zone-map
// statistics exactly from the versions still reachable by some active
// or future snapshot (PRAGMA rebuild_stats). Runtime maintenance only
// ever widens stats — a committed delete or a rolled-back append
// leaves its values covered forever — so over time the maps drift
// toward uselessness on churned tables; this narrows them back.
// Excluded are rows whose append rolled back and rows whose delete is
// committed and visible to every snapshot at or above oldestVisible;
// still-linked undo versions are included (Vacuum prunes the ones
// nobody can read).
func (t *DataTable) RebuildStats(oldestVisible uint64) error {
	cols := make([]int, len(t.typs))
	for i := range cols {
		cols[i] = i
	}
	// Pinning keeps every column resident (decoded or encoded) for the
	// duration; encoded segments are decoded transiently below without
	// disturbing their pooled compressed form.
	release, err := t.PinColumns(cols)
	if err != nil {
		return err
	}
	defer release()
	t.mu.RLock()
	segs := t.segs
	t.mu.RUnlock()
	for _, s := range segs {
		// The write lock spans the scan and the install: a concurrent
		// update widening the old stats between the two would otherwise
		// be lost, leaving the maps able to refute a live value.
		s.mu.Lock()
		err := s.rebuildStatsLocked(t.typs, oldestVisible)
		s.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// rebuildStatsLocked recomputes one segment's stats. Caller holds s.mu.
func (s *segment) rebuildStatsLocked(typs []types.Type, oldestVisible uint64) error {
	live := make([]bool, s.n)
	for r := 0; r < s.n; r++ {
		if s.loadInsert(r) == txn.Aborted {
			continue // rolled-back append: no snapshot reads the slot
		}
		if d := s.loadDelete(r); d != 0 && d < txn.TxnIDStart && d <= oldestVisible {
			continue // delete committed and visible to every snapshot
		}
		live[r] = true
	}
	for c := range typs {
		data := s.cols[c]
		if data == nil && s.enc != nil && s.enc[c] != nil {
			v, err := decodeSegColumn(s.enc[c], typs[c])
			if err != nil {
				return fmt.Errorf("table: rebuild stats: %w", err)
			}
			data = v
		}
		if data == nil && s.n > 0 {
			continue // nothing to recompute from; keep the old stats
		}
		st := ColStats{Valid: true}
		if data != nil {
			n := s.n
			if data.Len() < n {
				n = data.Len()
			}
			for r := 0; r < n; r++ {
				if live[r] {
					st.widenValue(data.Get(r))
				}
			}
		}
		// Undo versions still reachable by old snapshots stay covered.
		for nd := s.updates[c]; nd != nil; nd = nd.next {
			for j := range nd.rows {
				st.widenValue(nd.old.Get(j))
			}
		}
		s.stats[c] = st
	}
	return nil
}

// ZoneSkipInfo evaluates filters against every segment's zone maps and
// returns how many of the total segments would be skipped. EXPLAIN uses
// it; the counts match what an immediately-following scan would do.
func (t *DataTable) ZoneSkipInfo(filters []ZoneFilter) (skipped, total int) {
	segs, _ := t.snapshotSegments()
	for _, s := range segs {
		if segRefuted(t, s, filters) {
			skipped++
		}
	}
	return skipped, len(segs)
}

// segRefuted reports whether any pushed filter is refuted for segment s,
// first by the zone-map stats, then — for columns still resident in
// their compressed form — directly on the encoded payload (dictionary
// membership, FOR/RLE bounds) without decompressing it.
func segRefuted(t *DataTable, s *segment, filters []ZoneFilter) bool {
	if len(filters) == 0 {
		return false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, f := range filters {
		if f.Col >= len(s.stats) {
			continue
		}
		if s.stats[f.Col].Refutes(f) {
			return true
		}
		if s.enc != nil && f.Col < len(s.enc) && s.enc[f.Col] != nil {
			if encRefutes(s.enc[f.Col], t.typs[f.Col], f) {
				return true
			}
		}
	}
	return false
}
