package table

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"

	"repro/internal/compress"
	"repro/internal/types"
	"repro/internal/vector"
)

// Per-segment compressed column payloads. A checkpoint serializes every
// column segment by segment with the light typed encodings (FOR/RLE for
// the int64 family, dictionary coding for strings); a cold open keeps
// the payloads compressed in memory and decodes a segment only when a
// scan actually has to materialize it. Pushed predicates are evaluated
// directly on the encoded form first (encRefutes), so a selective scan
// skips refuted segments without ever touching their bytes.
//
// Payload layout:
//
//	kind u8 | n uvarint | nullFlag u8 [| (n+7)/8 validity bytes] | body
//
// The validity bytes are present only when the segment has NULLs (bit
// set = valid). NULL slots are encoded as the segment's first non-null
// value so they never widen the compressed-domain bounds; decode
// restores NULL-ness from the validity bytes.
const (
	segEncInt64  byte = iota // BigInt/Timestamp: CompressInt64 body
	segEncInt32              // Integer: CompressInt64 body (widened)
	segEncDouble             // Double: 8n little-endian IEEE bits
	segEncBool               // Boolean: (n+7)/8 packed bits
	segEncDict               // Varchar: AppendStringDict body
)

func floatBits(f float64) int64     { return int64(math.Float64bits(f)) }
func floatFromBits(b int64) float64 { return math.Float64frombits(uint64(b)) }

// encodeSegColumn serializes the first n rows of v.
func encodeSegColumn(v *vector.Vector, n int) []byte {
	out := make([]byte, 0, 64)
	var kind byte
	switch v.Type {
	case types.BigInt, types.Timestamp:
		kind = segEncInt64
	case types.Integer:
		kind = segEncInt32
	case types.Double:
		kind = segEncDouble
	case types.Boolean:
		kind = segEncBool
	case types.Varchar:
		kind = segEncDict
	default:
		panic(fmt.Sprintf("table: cannot encode segment of type %v", v.Type))
	}
	out = append(out, kind)
	out = binary.AppendUvarint(out, uint64(n))

	hasNull := false
	for i := 0; i < n; i++ {
		if v.IsNull(i) {
			hasNull = true
			break
		}
	}
	if hasNull {
		out = append(out, 1)
		mask := make([]byte, (n+7)/8)
		for i := 0; i < n; i++ {
			if !v.IsNull(i) {
				mask[i>>3] |= 1 << uint(i&7)
			}
		}
		out = append(out, mask...)
	} else {
		out = append(out, 0)
	}

	switch kind {
	case segEncInt64, segEncInt32:
		vals := make([]int64, n)
		var fill int64
		for i := 0; i < n; i++ {
			if !v.IsNull(i) {
				if kind == segEncInt32 {
					fill = int64(v.I32[i])
				} else {
					fill = v.I64[i]
				}
				break
			}
		}
		for i := 0; i < n; i++ {
			switch {
			case v.IsNull(i):
				vals[i] = fill
			case kind == segEncInt32:
				vals[i] = int64(v.I32[i])
			default:
				vals[i] = v.I64[i]
			}
		}
		out = append(out, compress.CompressInt64(vals, compress.Light)...)
	case segEncDouble:
		for i := 0; i < n; i++ {
			out = binary.LittleEndian.AppendUint64(out, uint64(floatBits(v.F64[i])))
		}
	case segEncBool:
		body := make([]byte, (n+7)/8)
		for i := 0; i < n; i++ {
			if !v.IsNull(i) && v.Bools[i] {
				body[i>>3] |= 1 << uint(i&7)
			}
		}
		out = append(out, body...)
	case segEncDict:
		strs := make([]string, n)
		var fill string
		for i := 0; i < n; i++ {
			if !v.IsNull(i) {
				fill = v.Str[i]
				break
			}
		}
		for i := 0; i < n; i++ {
			if v.IsNull(i) {
				strs[i] = fill
			} else {
				strs[i] = v.Str[i]
			}
		}
		out = compress.AppendStringDict(out, compress.EncodeStrings(strs))
	}
	return out
}

// segEncHeader parses the shared prefix: row count, validity bytes (nil
// when all valid) and the body.
func segEncHeader(data []byte) (kind byte, n int, mask, body []byte, err error) {
	if len(data) < 2 {
		return 0, 0, nil, nil, fmt.Errorf("table: segment payload truncated")
	}
	kind = data[0]
	un, k := binary.Uvarint(data[1:])
	if k <= 0 {
		return 0, 0, nil, nil, fmt.Errorf("table: segment payload header")
	}
	n = int(un)
	rest := data[1+k:]
	if len(rest) < 1 {
		return 0, 0, nil, nil, fmt.Errorf("table: segment payload truncated")
	}
	nullFlag := rest[0]
	rest = rest[1:]
	if nullFlag == 1 {
		mb := (n + 7) / 8
		if len(rest) < mb {
			return 0, 0, nil, nil, fmt.Errorf("table: segment validity truncated")
		}
		mask = rest[:mb]
		rest = rest[mb:]
	}
	return kind, n, mask, rest, nil
}

// decodeSegColumn reverses encodeSegColumn into a vector with capacity
// for SegRows rows (so in-place tail appends can continue into it).
func decodeSegColumn(data []byte, typ types.Type) (*vector.Vector, error) {
	kind, n, mask, body, err := segEncHeader(data)
	if err != nil {
		return nil, err
	}
	v := vector.New(typ, SegRows)
	v.SetLen(n)
	switch kind {
	case segEncInt64, segEncInt32:
		vals, err := compress.DecompressInt64(body)
		if err != nil {
			return nil, fmt.Errorf("table: segment int payload: %w", err)
		}
		if len(vals) != n {
			return nil, fmt.Errorf("table: segment has %d values, want %d", len(vals), n)
		}
		if kind == segEncInt32 {
			if typ != types.Integer {
				return nil, fmt.Errorf("table: int32 payload for %v column", typ)
			}
			for i, x := range vals {
				v.I32[i] = int32(x)
			}
		} else {
			if typ != types.BigInt && typ != types.Timestamp {
				return nil, fmt.Errorf("table: int64 payload for %v column", typ)
			}
			copy(v.I64, vals)
		}
	case segEncDouble:
		if typ != types.Double {
			return nil, fmt.Errorf("table: double payload for %v column", typ)
		}
		if len(body) < 8*n {
			return nil, fmt.Errorf("table: segment double payload truncated")
		}
		for i := 0; i < n; i++ {
			v.F64[i] = floatFromBits(int64(binary.LittleEndian.Uint64(body[8*i:])))
		}
	case segEncBool:
		if typ != types.Boolean {
			return nil, fmt.Errorf("table: bool payload for %v column", typ)
		}
		if len(body) < (n+7)/8 {
			return nil, fmt.Errorf("table: segment bool payload truncated")
		}
		for i := 0; i < n; i++ {
			v.Bools[i] = body[i>>3]&(1<<uint(i&7)) != 0
		}
	case segEncDict:
		if typ != types.Varchar {
			return nil, fmt.Errorf("table: dict payload for %v column", typ)
		}
		d, _, err := compress.DecodeStringDict(body)
		if err != nil {
			return nil, fmt.Errorf("table: segment dict payload: %w", err)
		}
		if len(d.Indexes) != n {
			return nil, fmt.Errorf("table: segment has %d values, want %d", len(d.Indexes), n)
		}
		for i, idx := range d.Indexes {
			if idx < 0 || idx >= int64(len(d.Values)) {
				return nil, fmt.Errorf("table: dict index out of range")
			}
			v.Str[i] = d.Values[idx]
		}
	default:
		return nil, fmt.Errorf("table: unknown segment encoding %d", kind)
	}
	if mask != nil {
		for i := 0; i < n; i++ {
			if mask[i>>3]&(1<<uint(i&7)) == 0 {
				v.SetNull(i)
			}
		}
	}
	return v, nil
}

// encRefutes evaluates one pushed conjunct directly over a compressed
// segment payload and reports whether it proves no row can match —
// dictionary membership for string equality, FOR-header / RLE-run
// bounds for the int64 family — all without decompressing the segment.
// Encoded payloads are immutable (any in-place write materializes the
// segment first), so they cover every version a snapshot can see.
func encRefutes(data []byte, typ types.Type, f ZoneFilter) bool {
	kind, n, mask, body, err := segEncHeader(data)
	if err != nil || n == 0 {
		return false
	}
	validCount := n
	if mask != nil {
		validCount = 0
		for _, b := range mask {
			validCount += bits.OnesCount8(b)
		}
	}
	switch f.Op {
	case ZoneIsNull:
		return mask == nil // no validity bytes ⇒ no NULLs
	case ZoneNotNull:
		return validCount == 0
	}
	if f.Val.Null {
		return true
	}
	if validCount == 0 {
		return true // all NULL: no comparison passes
	}
	switch kind {
	case segEncInt64, segEncInt32:
		if f.Val.Type != types.Integer && f.Val.Type != types.BigInt && f.Val.Type != types.Timestamp {
			return false
		}
		lo, hi, ok := compress.Int64Bounds(body)
		if !ok {
			return false
		}
		c := f.Val.I64
		switch f.Op {
		case ZoneEq:
			return c < lo || c > hi
		case ZoneNe:
			return lo == hi && lo == c && mask == nil
		case ZoneLt:
			return lo >= c
		case ZoneLe:
			return lo > c
		case ZoneGt:
			return hi <= c
		case ZoneGe:
			return hi < c
		}
	case segEncDict:
		if f.Val.Type != types.Varchar {
			return false
		}
		values, _, _, err := compress.DecodeStringDictValues(body)
		if err != nil {
			return false
		}
		// NULL slots alias a real dictionary entry, so the dictionary is
		// a superset of the non-null values: "no entry satisfies the
		// predicate" proves no row does.
		c := f.Val.Str
		for _, s := range values {
			var sat bool
			switch f.Op {
			case ZoneEq:
				sat = s == c
			case ZoneNe:
				sat = s != c
			case ZoneLt:
				sat = s < c
			case ZoneLe:
				sat = s <= c
			case ZoneGt:
				sat = s > c
			case ZoneGe:
				sat = s >= c
			}
			if sat {
				return false
			}
		}
		return true
	}
	return false
}

// encSegBytes is the accounted footprint of an encoded payload.
func encSegBytes(data []byte) int64 { return int64(len(data)) }
