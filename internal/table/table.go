// Package table implements QuackDB's columnar table storage with
// HyPer-style MVCC (paper §2/§6). Tables are partitioned into fixed-size
// row segments; each column of each segment is a vector. Bulk updates
// are column-granular — updating one column never rewrites or copies the
// others — and deletes affect whole rows, exactly the access pattern the
// paper identifies for ETL workloads. Updates happen in place with the
// previous values kept in per-column undo chains; appends and deletes
// are tracked with per-row insert/delete stamps. Readers reconstruct
// their snapshot from the stamps and undo chains without blocking
// writers.
package table

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/buffer"
	"repro/internal/obs"
	"repro/internal/txn"
	"repro/internal/types"
	"repro/internal/vector"
)

// SegRows is the number of row slots per segment; scans emit one chunk
// per segment, so it matches the engine's vector size.
const SegRows = vector.ChunkCapacity

// undoNode is one update to a set of rows of one column of one segment.
// rows/old are immutable after creation; stamp transitions txnID →
// commitTS (or Aborted) atomically; next is guarded by the segment lock.
type undoNode struct {
	stamp atomic.Uint64
	rows  []int32        // row offsets within the segment, ascending
	old   *vector.Vector // previous values, parallel to rows
	next  *undoNode
}

// segment holds SegRows rows of every column plus their version state.
type segment struct {
	mu   sync.RWMutex
	cols []*vector.Vector // nil when the column is not loaded/materialized
	// enc[c] is the column's still-compressed checkpoint payload; non-nil
	// only for cold-loaded segments that no scan has materialized yet.
	// Encoded payloads are immutable: every write path materializes the
	// column first. nil for segments that never came from disk.
	enc [][]byte
	n   int // rows in use

	// stats[c] are column c's zone-map statistics (widen-only superset
	// of every version of every row; see stats.go).
	stats []ColStats

	// insertID==nil means every row is stamped insertAll.
	insertID  []uint64
	insertAll uint64
	// deleteID==nil means no row was ever deleted.
	deleteID []uint64
	// updates[c] heads the undo chain of column c (newest first).
	updates []*undoNode
}

func newSegment(ncols int) *segment {
	s := &segment{
		cols:      make([]*vector.Vector, ncols),
		stats:     make([]ColStats, ncols),
		updates:   make([]*undoNode, ncols),
		insertAll: txn.EpochTS,
	}
	for c := range s.stats {
		s.stats[c].Valid = true // fresh empty segment: stats track appends
	}
	return s
}

//quack:hotpath
func (s *segment) loadInsert(r int) uint64 {
	if s.insertID == nil {
		return s.insertAll
	}
	return atomic.LoadUint64(&s.insertID[r])
}

//quack:hotpath
func (s *segment) loadDelete(r int) uint64 {
	if s.deleteID == nil {
		return 0
	}
	return atomic.LoadUint64(&s.deleteID[r])
}

// materializeInsertIDs switches from the compact all-equal representation
// to per-row stamps (first append into a recovered segment).
func (s *segment) materializeInsertIDs() {
	if s.insertID != nil {
		return
	}
	ids := make([]uint64, SegRows)
	for i := 0; i < s.n; i++ {
		ids[i] = s.insertAll
	}
	s.insertID = ids
}

func (s *segment) materializeDeleteIDs() {
	if s.deleteID == nil {
		s.deleteID = make([]uint64, SegRows)
	}
}

// ColumnLoader reads one column's persistent data, returning one
// still-compressed payload per segment (see encseg.go) plus the encoded
// byte footprint. Fresh tables have no loader.
type ColumnLoader func(col int) (encSegs [][]byte, bytes int64, err error)

// colState tracks lazy loading and eviction of one column.
type colState struct {
	loaded bool
	dirty  bool // updated since last checkpoint → must be rewritten, unevictable
	pins   int64
	bytes  int64
}

// DataTable is the in-memory + persistent storage of one table.
type DataTable struct {
	mu   sync.RWMutex // guards segs growth and rowCount
	typs []types.Type
	segs []*segment

	rowCount int64 // allocated row slots (including uncommitted/aborted)
	diskRows int64 // rows covered by the persistent chains

	loadMu      sync.Mutex // guards colState and (un)loading transitions
	cols        []colState
	loader      ColumnLoader
	pool        *buffer.Pool // may be nil (no accounting)
	appendDirty atomic.Bool  // rows appended since last checkpoint
	deleteDirty atomic.Bool  // rows deleted since last checkpoint

	// layoutDiverged is set once the in-memory row layout can differ
	// from a compacted checkpoint image (a delete committed or an
	// append rolled back). Diverged tables keep their columns resident:
	// reloading from disk would shift row positions.
	layoutDiverged atomic.Bool

	// decodeBytes, when set, counts the decoded bytes segment
	// materialization produces (engine metrics; sharded because every
	// morsel worker of a cold scan hits it).
	decodeBytes *obs.ShardedCounter
}

// SetDecodeCounter wires the engine-wide bytes-decompressed metric.
// Call before the table is scanned; nil disables counting.
func (t *DataTable) SetDecodeCounter(c *obs.ShardedCounter) { t.decodeBytes = c }

// New creates an empty table with the given column types.
func New(typs []types.Type, pool *buffer.Pool) *DataTable {
	t := &DataTable{
		typs: append([]types.Type(nil), typs...),
		cols: make([]colState, len(typs)),
		pool: pool,
	}
	for i := range t.cols {
		t.cols[i].loaded = true // nothing to load
	}
	return t
}

// NewPersisted creates a table whose first diskRows rows live on disk
// and are loaded lazily per column through loader.
func NewPersisted(typs []types.Type, diskRows int64, loader ColumnLoader, pool *buffer.Pool) *DataTable {
	t := &DataTable{
		typs:     append([]types.Type(nil), typs...),
		cols:     make([]colState, len(typs)),
		loader:   loader,
		pool:     pool,
		diskRows: diskRows,
		rowCount: diskRows,
	}
	nsegs := int((diskRows + SegRows - 1) / SegRows)
	t.segs = make([]*segment, nsegs)
	remaining := diskRows
	for i := range t.segs {
		s := newSegment(len(typs))
		s.enc = make([][]byte, len(typs))
		for c := range s.stats {
			// Unknown contents until catalog stats arrive (SetSegmentStats).
			s.stats[c] = ColStats{}
		}
		s.n = int(minI64(remaining, SegRows))
		remaining -= int64(s.n)
		t.segs[i] = s
	}
	return t
}

// Types returns the column types.
func (t *DataTable) Types() []types.Type { return t.typs }

// NumRows returns the number of allocated row slots (including rows not
// visible to a given snapshot).
func (t *DataTable) NumRows() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rowCount
}

// snapshotSegments returns the segment list and per-segment row counts
// at call time. A scan bounded by them observes no rows appended
// afterwards — not even by its own transaction — which is what makes a
// self-referencing INSERT ... SELECT terminate instead of chasing its
// own appends.
func (t *DataTable) snapshotSegments() ([]*segment, []int) {
	t.mu.RLock()
	segs := t.segs
	t.mu.RUnlock()
	ns := make([]int, len(segs))
	for i, s := range segs {
		s.mu.RLock()
		ns[i] = s.n
		s.mu.RUnlock()
	}
	return segs, ns
}

// CountVisible counts the rows visible to tx (a full visibility scan).
func (t *DataTable) CountVisible(tx *txn.Transaction) int64 {
	t.mu.RLock()
	segs := t.segs
	t.mu.RUnlock()
	var total int64
	for _, s := range segs {
		s.mu.RLock()
		for r := 0; r < s.n; r++ {
			if tx.Sees(s.loadInsert(r)) {
				if d := s.loadDelete(r); d == 0 || !tx.Sees(d) {
					total++
				}
			}
		}
		s.mu.RUnlock()
	}
	return total
}

// AppendDirty reports whether rows were appended since the last
// checkpoint reset.
func (t *DataTable) AppendDirty() bool { return t.appendDirty.Load() }

// DeleteDirty reports whether rows were deleted since the last
// checkpoint reset.
func (t *DataTable) DeleteDirty() bool { return t.deleteDirty.Load() }

// ColDirty reports whether column c was updated since the last
// checkpoint reset.
func (t *DataTable) ColDirty(c int) bool {
	t.loadMu.Lock()
	defer t.loadMu.Unlock()
	return t.cols[c].dirty
}

// LayoutDiverged reports whether in-memory row positions may no longer
// match a compacted on-disk image.
func (t *DataTable) LayoutDiverged() bool { return t.layoutDiverged.Load() }

// SetDiskRows records how many rows the persistent image covers; called
// by the checkpointer when the on-disk layout matches memory.
func (t *DataTable) SetDiskRows(n int64) {
	t.mu.Lock()
	t.diskRows = n
	t.mu.Unlock()
}

// DiskRows returns the row count covered by the persistent image.
func (t *DataTable) DiskRows() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.diskRows
}

// ResetDirty clears all dirty flags (called after a checkpoint wrote the
// table).
func (t *DataTable) ResetDirty() {
	t.appendDirty.Store(false)
	t.deleteDirty.Store(false)
	t.loadMu.Lock()
	for i := range t.cols {
		t.cols[i].dirty = false
	}
	t.loadMu.Unlock()
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// ---- column loading / pinning / eviction ----

// PinColumns ensures the given columns are resident and pins them until
// the returned release function is called.
func (t *DataTable) PinColumns(cols []int) (release func(), err error) {
	pinned := make([]int, 0, len(cols))
	unpin := func() {
		t.loadMu.Lock()
		for _, c := range pinned {
			t.cols[c].pins--
		}
		t.loadMu.Unlock()
	}
	for _, c := range cols {
		if err := t.ensureLoaded(c); err != nil {
			unpin()
			return nil, err
		}
		pinned = append(pinned, c)
	}
	return unpin, nil
}

// ensureLoaded loads column c from disk if needed and takes one pin.
func (t *DataTable) ensureLoaded(c int) error {
	t.loadMu.Lock()
	if t.cols[c].loaded {
		t.cols[c].pins++
		t.loadMu.Unlock()
		return nil
	}
	t.loadMu.Unlock()

	// Load outside loadMu so pool eviction callbacks can take it. The
	// loader returns the still-compressed per-segment payloads; segments
	// stay encoded until a scan or write materializes them.
	encSegs, bytes, err := t.loader(c)
	if err != nil {
		return fmt.Errorf("table: load column %d: %w", c, err)
	}
	if t.pool != nil {
		if err := t.pool.Reserve(bytes); err != nil {
			return err
		}
	}

	t.loadMu.Lock()
	defer t.loadMu.Unlock()
	if t.cols[c].loaded { // lost a load race; drop our copy
		if t.pool != nil {
			t.pool.Release(bytes)
		}
		t.cols[c].pins++
		return nil
	}
	t.mu.RLock()
	nDiskSegs := int((t.diskRows + SegRows - 1) / SegRows)
	if len(encSegs) != nDiskSegs {
		t.mu.RUnlock()
		if t.pool != nil {
			t.pool.Release(bytes)
		}
		return fmt.Errorf("table: column %d loader returned %d segments, want %d", c, len(encSegs), nDiskSegs)
	}
	for i, enc := range encSegs {
		s := t.segs[i]
		s.mu.Lock()
		if s.enc == nil {
			s.enc = make([][]byte, len(t.typs))
		}
		s.enc[c] = enc
		s.mu.Unlock()
	}
	t.mu.RUnlock()
	t.cols[c].loaded = true
	t.cols[c].bytes = bytes
	t.cols[c].pins++
	if t.pool != nil {
		t.pool.AddEvictable(&columnHandle{t: t, col: c})
	}
	return nil
}

// materializeSegCols decodes the given columns of one segment if they
// are still in their compressed checkpoint form, swapping the encoded
// footprint for the decoded one in the buffer pool. Zone-map-refuted
// segments never reach this point — that is what lets a selective scan
// skip a cold segment without touching its bytes.
//
// Decode and the pool reservation happen OUTSIDE loadMu: the pool's
// eviction callback takes loadMu via TryLock, so reserving under it
// made every column of this table unevictable for the duration — a
// tight budget then hard-failed a scan that eviction of an unpinned
// column would have satisfied. The cost is that two scanners hitting
// the same cold segment may both decode it; the loser discards its copy
// and releases its reservation at install time.
func (t *DataTable) materializeSegCols(seg *segment, cols []int) error {
	seg.mu.RLock()
	need := false
	if seg.enc != nil {
		for _, c := range cols {
			if seg.enc[c] != nil {
				need = true
				break
			}
		}
	}
	seg.mu.RUnlock()
	if !need {
		return nil
	}
	for _, c := range cols {
		seg.mu.RLock()
		var enc []byte
		if seg.enc != nil {
			enc = seg.enc[c]
		}
		n := seg.n
		seg.mu.RUnlock()
		if enc == nil {
			continue
		}
		v, err := decodeSegColumn(enc, t.typs[c])
		if err != nil {
			return fmt.Errorf("table: materialize column %d: %w", c, err)
		}
		if t.decodeBytes != nil {
			t.decodeBytes.Add(vectorBytes(v))
		}
		if v.Len() != n {
			// Writes always materialize first, so an encoded segment's row
			// count cannot have drifted from its payload.
			return fmt.Errorf("table: segment holds %d rows, payload %d", n, v.Len())
		}
		delta := vectorBytes(v) - encSegBytes(enc)
		accounted := delta
		if t.pool != nil && delta > 0 {
			if err := t.pool.Reserve(delta); err != nil {
				// A scan must materialize a surviving segment to read it —
				// a pipeline leaf has no spill alternative — so residency
				// accounting is best-effort under pressure, like the merge
				// read-back cursors: Reserve already tried eviction, and
				// the morsel proceeds unaccounted rather than failing the
				// query. Spilling operators downstream still enforce the
				// budget hard.
				accounted = 0
			}
		}
		t.loadMu.Lock()
		seg.mu.Lock()
		if seg.enc == nil || seg.enc[c] == nil {
			// Lost the decode race: another scanner installed this column
			// while we worked. Drop our copy and its reservation.
			seg.mu.Unlock()
			t.loadMu.Unlock()
			if t.pool != nil && accounted > 0 {
				t.pool.Release(accounted)
			}
			continue
		}
		seg.cols[c] = v
		seg.enc[c] = nil
		seg.mu.Unlock()
		if t.pool != nil && accounted < 0 {
			t.pool.Release(-accounted)
		}
		t.cols[c].bytes += accounted
		t.loadMu.Unlock()
	}
	return nil
}

// columnHandle lets the buffer pool evict a clean, unpinned column.
type columnHandle struct {
	t   *DataTable
	col int
}

// Evict drops the column's in-memory data if it is clean, unpinned and
// fully reloadable from disk. Uses TryLock to avoid lock-order inversion
// with the pool.
func (h *columnHandle) Evict() (int64, bool) {
	t := h.t
	if !t.loadMu.TryLock() {
		return 0, false
	}
	defer t.loadMu.Unlock()
	cs := &t.cols[h.col]
	if !cs.loaded || cs.pins > 0 || cs.dirty || t.appendDirty.Load() || t.layoutDiverged.Load() {
		return 0, false
	}
	t.mu.RLock()
	// A column with live undo chains cannot be dropped: concurrent
	// snapshots still reconstruct old values through them.
	for _, s := range t.segs {
		s.mu.RLock()
		hasChain := s.updates[h.col] != nil
		s.mu.RUnlock()
		if hasChain {
			t.mu.RUnlock()
			return 0, false
		}
	}
	for _, s := range t.segs {
		s.mu.Lock()
		s.cols[h.col] = nil
		if s.enc != nil {
			s.enc[h.col] = nil
		}
		s.mu.Unlock()
	}
	t.mu.RUnlock()
	cs.loaded = false
	bytes := cs.bytes
	cs.bytes = 0
	return bytes, true
}

// ---- appends ----

// appendAction stamps appended rows at commit/rollback.
type appendAction struct {
	t     *DataTable
	seg   *segment
	first int // first row offset
	count int
}

func (a *appendAction) Commit(ts uint64) {
	for i := 0; i < a.count; i++ {
		atomic.StoreUint64(&a.seg.insertID[a.first+i], ts)
	}
}

func (a *appendAction) Rollback() {
	for i := 0; i < a.count; i++ {
		atomic.StoreUint64(&a.seg.insertID[a.first+i], txn.Aborted)
	}
	a.t.layoutDiverged.Store(true)
}

// Append bulk-appends a chunk on behalf of tx. The rows become visible
// to others when tx commits. All columns must be resident (appends touch
// every column), which Append ensures.
func (t *DataTable) Append(tx *txn.Transaction, chunk *vector.Chunk) error {
	if chunk.NumCols() != len(t.typs) {
		return fmt.Errorf("table: append of %d columns into %d-column table", chunk.NumCols(), len(t.typs))
	}
	cols := make([]int, len(t.typs))
	for i := range cols {
		cols[i] = i
	}
	release, err := t.PinColumns(cols)
	if err != nil {
		return err
	}
	defer release()
	if err := t.materializeTail(cols); err != nil {
		return err
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	t.appendDirty.Store(true)
	row := 0
	for row < chunk.Len() {
		var s *segment
		if len(t.segs) > 0 {
			s = t.segs[len(t.segs)-1]
		}
		if s == nil || s.n == SegRows {
			s = newSegment(len(t.typs))
			for c, typ := range t.typs {
				s.cols[c] = vector.New(typ, SegRows)
			}
			t.segs = append(t.segs, s)
		}
		s.mu.Lock()
		if s.cols[0] == nil && len(t.typs) > 0 {
			// Recovered segment whose data pages were never needed yet;
			// appends require residency, which PinColumns plus
			// materializeTail guaranteed, so this cannot happen — guard
			// anyway.
			s.mu.Unlock()
			return fmt.Errorf("table: append into unloaded segment")
		}
		s.materializeInsertIDs()
		k := SegRows - s.n
		if rem := chunk.Len() - row; rem < k {
			k = rem
		}
		first := s.n
		for i := 0; i < k; i++ {
			for c := range t.typs {
				s.cols[c].AppendFrom(chunk.Cols[c], row+i)
			}
			// Atomic like every other insertID access: concurrent
			// scanners read these stamps lock-free via loadInsert.
			atomic.StoreUint64(&s.insertID[first+i], tx.ID())
		}
		s.n += k
		s.widenStats(chunk, row, k)
		s.mu.Unlock()
		tx.PushUndo(&appendAction{t: t, seg: s, first: first, count: k})
		row += k
		t.rowCount += int64(k)
	}
	return nil
}

// materializeTail decodes the last segment if it is still compressed:
// appends write into it in place. Called before taking t.mu (lock
// order: loadMu before t.mu). Full tail segments never receive appends,
// but decoding one is harmless.
func (t *DataTable) materializeTail(cols []int) error {
	t.mu.RLock()
	var tail *segment
	if len(t.segs) > 0 {
		tail = t.segs[len(t.segs)-1]
	}
	t.mu.RUnlock()
	if tail == nil {
		return nil
	}
	return t.materializeSegCols(tail, cols)
}

// widenStats folds k appended rows (chunk rows [row, row+k)) into the
// segment's zone maps. Caller holds s.mu.
func (s *segment) widenStats(chunk *vector.Chunk, row, k int) {
	for c := range s.stats {
		st := &s.stats[c]
		for i := 0; i < k; i++ {
			st.widenValue(chunk.Cols[c].Get(row + i))
		}
	}
}

// AppendCommitted bulk-appends rows that are immediately visible to
// everyone (bulk load, WAL recovery). stamp is usually txn.EpochTS.
func (t *DataTable) AppendCommitted(chunk *vector.Chunk, stamp uint64) error {
	if chunk.NumCols() != len(t.typs) {
		return fmt.Errorf("table: append of %d columns into %d-column table", chunk.NumCols(), len(t.typs))
	}
	cols := make([]int, len(t.typs))
	for i := range cols {
		cols[i] = i
	}
	release, err := t.PinColumns(cols)
	if err != nil {
		return err
	}
	defer release()
	if err := t.materializeTail(cols); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.appendDirty.Store(true)
	row := 0
	for row < chunk.Len() {
		var s *segment
		if len(t.segs) > 0 {
			s = t.segs[len(t.segs)-1]
		}
		if s == nil || s.n == SegRows {
			s = newSegment(len(t.typs))
			for c, typ := range t.typs {
				s.cols[c] = vector.New(typ, SegRows)
			}
			t.segs = append(t.segs, s)
		}
		s.mu.Lock()
		if stamp != s.insertAll {
			s.materializeInsertIDs()
		}
		k := SegRows - s.n
		if rem := chunk.Len() - row; rem < k {
			k = rem
		}
		first := s.n
		for i := 0; i < k; i++ {
			for c := range t.typs {
				s.cols[c].AppendFrom(chunk.Cols[c], row+i)
			}
			if s.insertID != nil {
				atomic.StoreUint64(&s.insertID[first+i], stamp)
			}
		}
		s.n += k
		s.widenStats(chunk, row, k)
		s.mu.Unlock()
		row += k
		t.rowCount += int64(k)
	}
	return nil
}

// ---- deletes ----

type deleteAction struct {
	seg  *segment
	rows []int32
}

func (a *deleteAction) Commit(ts uint64) {
	for _, r := range a.rows {
		atomic.StoreUint64(&a.seg.deleteID[r], ts)
	}
}

func (a *deleteAction) Rollback() {
	for _, r := range a.rows {
		atomic.StoreUint64(&a.seg.deleteID[r], 0)
	}
}

// Delete marks the given rows (global row ids, ascending) deleted on
// behalf of tx. Rows already deleted in tx's snapshot are skipped; rows
// deleted by a concurrent uncommitted or later-committed transaction
// cause ErrConflict. Returns the number of rows actually deleted.
func (t *DataTable) Delete(tx *txn.Transaction, rowIDs []int64) (int64, error) {
	t.mu.RLock()
	segs := t.segs
	t.mu.RUnlock()
	var deleted int64
	i := 0
	for i < len(rowIDs) {
		segIdx := int(rowIDs[i] / SegRows)
		if segIdx >= len(segs) {
			return deleted, fmt.Errorf("table: row id %d out of range", rowIDs[i])
		}
		s := segs[segIdx]
		var batch []int32
		s.mu.Lock()
		s.materializeDeleteIDs()
		for ; i < len(rowIDs) && int(rowIDs[i]/SegRows) == segIdx; i++ {
			r := int32(rowIDs[i] % SegRows)
			// Atomic: deleteAction.Commit/Rollback store these stamps
			// and scanners load them without taking s.mu.
			cur := atomic.LoadUint64(&s.deleteID[r])
			if cur != 0 {
				if tx.Sees(cur) {
					continue // already deleted in our snapshot
				}
				s.mu.Unlock()
				return deleted, txn.ErrConflict
			}
			atomic.StoreUint64(&s.deleteID[r], tx.ID())
			batch = append(batch, r)
		}
		s.mu.Unlock()
		if len(batch) > 0 {
			tx.PushUndo(&deleteAction{seg: s, rows: batch})
			deleted += int64(len(batch))
		}
	}
	if deleted > 0 {
		t.deleteDirty.Store(true)
		t.layoutDiverged.Store(true)
	}
	return deleted, nil
}

// ---- updates ----

type updateAction struct {
	t    *DataTable
	seg  *segment
	col  int
	node *undoNode
}

func (a *updateAction) Commit(ts uint64) { a.node.stamp.Store(ts) }

// Rollback restores the previous values and unlinks the node.
func (a *updateAction) Rollback() {
	s := a.seg
	s.mu.Lock()
	defer s.mu.Unlock()
	data := s.cols[a.col]
	for j, r := range a.node.rows {
		data.Set(int(r), a.node.old.Get(j))
	}
	// Unlink from the chain.
	if s.updates[a.col] == a.node {
		s.updates[a.col] = a.node.next
		return
	}
	for n := s.updates[a.col]; n != nil; n = n.next {
		if n.next == a.node {
			n.next = a.node.next
			return
		}
	}
}

// Update overwrites column col at the given rows (global row ids,
// ascending) with vals, in place, keeping the old values in an undo
// chain. Only this column is touched — the paper's column-granular bulk
// update. Concurrently modified rows cause ErrConflict. Returns the
// number of rows updated.
func (t *DataTable) Update(tx *txn.Transaction, col int, rowIDs []int64, vals *vector.Vector) (int64, error) {
	if col < 0 || col >= len(t.typs) {
		return 0, fmt.Errorf("table: update of column %d of %d-column table", col, len(t.typs))
	}
	if vals.Len() != len(rowIDs) {
		return 0, fmt.Errorf("table: update with %d values for %d rows", vals.Len(), len(rowIDs))
	}
	release, err := t.PinColumns([]int{col})
	if err != nil {
		return 0, err
	}
	defer release()

	t.mu.RLock()
	segs := t.segs
	t.mu.RUnlock()

	var updated int64
	i := 0
	for i < len(rowIDs) {
		segIdx := int(rowIDs[i] / SegRows)
		if segIdx >= len(segs) {
			return updated, fmt.Errorf("table: row id %d out of range", rowIDs[i])
		}
		s := segs[segIdx]
		start := i
		for ; i < len(rowIDs) && int(rowIDs[i]/SegRows) == segIdx; i++ {
		}
		batchIDs := rowIDs[start:i]

		// In-place writes require the decoded form (and invalidate the
		// immutability encoded payloads rely on).
		if err := t.materializeSegCols(s, []int{col}); err != nil {
			return updated, err
		}

		s.mu.Lock()
		// Write-write conflict checks: the rows must not have been
		// touched by a transaction we cannot see (first-updater-wins).
		conflict := false
		for _, rid := range batchIDs {
			r := int32(rid % SegRows)
			if d := s.loadDelete(int(r)); d != 0 && !tx.Sees(d) {
				conflict = true
				break
			}
		}
		if !conflict {
		chainCheck:
			for n := s.updates[col]; n != nil; n = n.next {
				st := n.stamp.Load()
				if tx.Sees(st) {
					continue
				}
				// Invisible node: any row overlap is a conflict.
				for _, rid := range batchIDs {
					r := int32(rid % SegRows)
					if containsRow(n.rows, r) {
						conflict = true
						break chainCheck
					}
				}
			}
		}
		if conflict {
			s.mu.Unlock()
			return updated, txn.ErrConflict
		}

		data := s.cols[col]
		node := &undoNode{
			rows: make([]int32, len(batchIDs)),
			old:  vector.New(t.typs[col], len(batchIDs)),
		}
		node.stamp.Store(tx.ID())
		st := &s.stats[col]
		for j, rid := range batchIDs {
			r := int(rid % SegRows)
			node.rows[j] = int32(r)
			node.old.AppendFrom(data, r)
			data.SetFrom(r, vals, start+j)
			// Widen the zone map with the new value; the old value was
			// already covered, so the stats stay a superset of every
			// version reachable through the undo chain.
			st.widenValue(vals.Get(start + j))
		}
		node.next = s.updates[col]
		s.updates[col] = node
		s.mu.Unlock()

		tx.PushUndo(&updateAction{t: t, seg: s, col: col, node: node})
		updated += int64(len(batchIDs))
	}
	if updated > 0 {
		t.loadMu.Lock()
		t.cols[col].dirty = true
		t.loadMu.Unlock()
	}
	return updated, nil
}

func containsRow(rows []int32, r int32) bool {
	// rows is ascending; binary search.
	lo, hi := 0, len(rows)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case rows[mid] < r:
			lo = mid + 1
		case rows[mid] > r:
			hi = mid
		default:
			return true
		}
	}
	return false
}

// ---- vacuum ----

// Vacuum drops undo versions no active or future transaction can need:
// nodes whose commit stamp is at or below oldestVisible. It also
// collapses uniform insert stamps back to the compact representation.
func (t *DataTable) Vacuum(oldestVisible uint64) {
	t.mu.RLock()
	segs := t.segs
	t.mu.RUnlock()
	for _, s := range segs {
		s.mu.Lock()
		for c := range s.updates {
			// Keep nodes with stamp > oldestVisible (still needed) or
			// uncommitted (≥ TxnIDStart, which is > oldestVisible).
			// Nodes are relinked in place — live transactions hold
			// pointers to them for commit stamping and rollback.
			var head, tail *undoNode
			n := s.updates[c]
			for n != nil {
				next := n.next
				if n.stamp.Load() > oldestVisible {
					n.next = nil
					if tail == nil {
						head = n
					} else {
						tail.next = n
					}
					tail = n
				}
				n = next
			}
			s.updates[c] = head
		}
		if s.insertID != nil && s.n > 0 {
			uniform := true
			first := atomic.LoadUint64(&s.insertID[0])
			if first > oldestVisible {
				uniform = false
			}
			for r := 1; uniform && r < s.n; r++ {
				if atomic.LoadUint64(&s.insertID[r]) != first {
					uniform = false
				}
			}
			if uniform && s.n == SegRows {
				s.insertAll = first
				s.insertID = nil
			}
		}
		s.mu.Unlock()
	}
}
