package table

import (
	"encoding/binary"
	"math"
	"strings"

	"repro/internal/compress"
	"repro/internal/types"
	"repro/internal/vector"
)

// Encoded execution: pushed exact conjuncts are evaluated directly over
// a cold segment's compressed payloads — dictionary membership decided
// once per unique string and applied to the packed code array, integer
// range predicates rewritten into the frame-of-reference delta domain,
// RLE runs decided with one comparison per run — and only the rows that
// survive are materialized (late materialization). The segment itself
// stays compressed: the gathered chunk is transient, so a selective
// scan no longer swaps whole decoded segments into memory.
//
// The path is engaged per segment and falls back to full
// materialization whenever a filter or a projected column cannot be
// handled on the encoded form. Selection must be EXACT, not merely
// conservative: kernels drop rows before the row-level filter ever sees
// them, so a kernel that disagrees with the engine's comparison
// semantics (types.Compare / types.CompareFloat, NULL never matches a
// comparison) would change results. Inexact conjuncts must not set
// ZoneFilter.Exact; unsupported ones are simply not applied here and
// the downstream filter evaluates them on the gathered rows.

// cmpOpFor maps the comparison zone ops onto the kernel ops. Callers
// must exclude ZoneIsNull/ZoneNotNull first.
func cmpOpFor(op ZoneOp) compress.CmpOp {
	switch op {
	case ZoneEq:
		return compress.CmpEq
	case ZoneNe:
		return compress.CmpNe
	case ZoneLt:
		return compress.CmpLt
	case ZoneLe:
		return compress.CmpLe
	case ZoneGt:
		return compress.CmpGt
	default:
		return compress.CmpGe
	}
}

// int64Domain rewrites an int-family comparison constant into the
// column's int64 domain. Double constants (pushed only against INTEGER
// columns, whose values float64 represents exactly) translate by
// floor/ceil so the integer comparison is equivalent to the engine's
// promoted-to-float comparison; NaN/±Inf and out-of-range constants
// degenerate to match-all/match-none. ok=false declines the filter.
func int64Domain(f ZoneFilter) (c int64, op compress.CmpOp, all, none, ok bool) {
	op = cmpOpFor(f.Op)
	switch f.Val.Type {
	case types.Integer, types.BigInt, types.Timestamp:
		return f.Val.I64, op, false, false, true
	case types.Double:
		v := f.Val.F64
		// Under the engine's total FP order every finite value is less
		// than +Inf and NaN; greater than -Inf.
		if math.IsNaN(v) || math.IsInf(v, 1) {
			return constAgainstExtreme(op, true)
		}
		if math.IsInf(v, -1) {
			return constAgainstExtreme(op, false)
		}
		if v >= 9.223372036854775808e18 { // 2^63: beyond every int64
			return constAgainstExtreme(op, true)
		}
		if v < -9.223372036854775808e18 {
			return constAgainstExtreme(op, false)
		}
		if v == math.Trunc(v) {
			return int64(v), op, false, false, true
		}
		// Non-integral: no value is equal; order against the neighbors.
		switch op {
		case compress.CmpEq:
			return 0, op, false, true, true
		case compress.CmpNe:
			return 0, op, true, false, true
		case compress.CmpLt, compress.CmpLe:
			return int64(math.Floor(v)), compress.CmpLe, false, false, true
		default: // Gt, Ge
			return int64(math.Ceil(v)), compress.CmpGe, false, false, true
		}
	}
	return 0, op, false, false, false
}

// constAgainstExtreme answers "value op c" when c is above (high=true)
// or below every column value.
func constAgainstExtreme(op compress.CmpOp, high bool) (int64, compress.CmpOp, bool, bool, bool) {
	var matches bool // does every value satisfy the comparison?
	if high {
		matches = op == compress.CmpNe || op == compress.CmpLt || op == compress.CmpLe
	} else {
		matches = op == compress.CmpNe || op == compress.CmpGt || op == compress.CmpGe
	}
	if matches {
		return 0, op, true, false, true
	}
	return 0, op, false, true, true
}

// encSelectable reports whether encSelect can evaluate f over this
// payload without decoding it. Mirrors encSelect's type/scheme checks;
// keep the two in sync.
func encSelectable(data []byte, typ types.Type, f ZoneFilter) bool {
	kind, _, _, body, err := segEncHeader(data)
	if err != nil {
		return false
	}
	if f.Op == ZoneIsNull || f.Op == ZoneNotNull || f.Val.Null {
		return true // answered from the validity mask alone
	}
	switch kind {
	case segEncInt64, segEncInt32:
		switch f.Val.Type {
		case types.Integer, types.BigInt, types.Timestamp:
			return compress.Int64SchemeSelectable(body)
		case types.Double:
			// Exact only when every column value is exact in float64;
			// INTEGER (int32) is, the 64-bit family is not.
			return kind == segEncInt32 && compress.Int64SchemeSelectable(body)
		}
		return false
	case segEncDouble:
		switch f.Val.Type {
		case types.Double, types.Integer, types.BigInt, types.Timestamp:
			return true
		}
		return false
	case segEncDict:
		return f.Val.Type == types.Varchar
	default:
		return false
	}
}

// encSelect intersects match[:payload rows] with filter f evaluated
// over the encoded payload, under the engine's comparison semantics
// (total FP order, NULL never satisfies a comparison). Returns false —
// with match contents unspecified — when the payload cannot be handled;
// callers evaluate into a scratch vector and intersect on success.
func encSelect(data []byte, typ types.Type, f ZoneFilter, match []bool) bool {
	kind, n, mask, body, err := segEncHeader(data)
	if err != nil || n > len(match) {
		return false
	}
	validBit := func(i int) bool {
		return mask == nil || mask[i>>3]&(1<<uint(i&7)) != 0
	}
	switch f.Op {
	case ZoneIsNull:
		for i := 0; i < n; i++ {
			if match[i] && validBit(i) {
				match[i] = false
			}
		}
		return true
	case ZoneNotNull:
		if mask != nil {
			for i := 0; i < n; i++ {
				if match[i] && !validBit(i) {
					match[i] = false
				}
			}
		}
		return true
	}
	if f.Val.Null {
		// A comparison with NULL is never TRUE.
		for i := 0; i < n; i++ {
			match[i] = false
		}
		return true
	}
	switch kind {
	case segEncInt64, segEncInt32:
		if f.Val.Type == types.Double && kind != segEncInt32 {
			return false // float promotion rounds 64-bit values
		}
		c, op, all, none, ok := int64Domain(f)
		if !ok {
			return false
		}
		switch {
		case none:
			for i := 0; i < n; i++ {
				match[i] = false
			}
			return true
		case all:
			// Every non-null value matches; only the mask filters below.
		default:
			if !compress.SelectInt64(body, op, c, match[:n]) {
				return false
			}
		}
	case segEncDouble:
		var c float64
		switch f.Val.Type {
		case types.Double:
			c = f.Val.F64
		case types.Integer, types.BigInt, types.Timestamp:
			c = float64(f.Val.I64)
		default:
			return false
		}
		if len(body) < 8*n {
			return false
		}
		op := cmpOpFor(f.Op)
		for i := 0; i < n; i++ {
			if !match[i] {
				continue
			}
			v := floatFromBits(int64(binary.LittleEndian.Uint64(body[8*i:])))
			if !compress.OpHolds(op, types.CompareFloat(v, c)) {
				match[i] = false
			}
		}
	case segEncDict:
		if f.Val.Type != types.Varchar {
			return false
		}
		values, idxPayload, _, err := compress.DecodeStringDictValues(body)
		if err != nil {
			return false
		}
		// One comparison per unique string; the packed code array is
		// scanned without decoding a single value.
		op := cmpOpFor(f.Op)
		member := make([]bool, len(values))
		for k, s := range values {
			member[k] = compress.OpHolds(op, strings.Compare(s, f.Val.Str))
		}
		if !compress.SelectInt64In(idxPayload, member, match[:n]) {
			return false
		}
	default:
		return false
	}
	// NULL slots are encoded as a real fill value that may have matched;
	// a comparison over NULL is never TRUE, so intersect with validity.
	if mask != nil {
		for i := 0; i < n; i++ {
			if match[i] && !validBit(i) {
				match[i] = false
			}
		}
	}
	return true
}

// encGatherable reports whether gatherEncoded can materialize selected
// rows from this payload (the light schemes; DEFLATE has no random
// access).
func encGatherable(data []byte) bool {
	kind, _, _, body, err := segEncHeader(data)
	if err != nil {
		return false
	}
	switch kind {
	case segEncInt64, segEncInt32:
		return compress.Int64SchemeSelectable(body)
	case segEncDouble, segEncBool, segEncDict:
		return true
	default:
		return false
	}
}

// gatherEncoded decodes only the rows in s.sel from an encoded payload
// into dst — the late-materialization step. dst is a fresh vector from
// the reader's output chunk.
func (s *segReader) gatherEncoded(data []byte, typ types.Type, dst *vector.Vector) bool {
	kind, n, mask, body, err := segEncHeader(data)
	if err != nil {
		return false
	}
	m := len(s.sel)
	if m > 0 && s.sel[m-1] >= n {
		return false
	}
	dst.SetLen(m)
	switch kind {
	case segEncInt64:
		if typ != types.BigInt && typ != types.Timestamp {
			return false
		}
		if !compress.GatherInt64(body, s.sel, dst.I64[:m]) {
			return false
		}
	case segEncInt32:
		if typ != types.Integer {
			return false
		}
		if s.gather == nil {
			s.gather = make([]int64, SegRows)
		}
		if !compress.GatherInt64(body, s.sel, s.gather[:m]) {
			return false
		}
		for k := 0; k < m; k++ {
			dst.I32[k] = int32(s.gather[k])
		}
	case segEncDouble:
		if typ != types.Double || len(body) < 8*n {
			return false
		}
		for k, r := range s.sel {
			dst.F64[k] = floatFromBits(int64(binary.LittleEndian.Uint64(body[8*r:])))
		}
	case segEncBool:
		if typ != types.Boolean || len(body) < (n+7)/8 {
			return false
		}
		for k, r := range s.sel {
			dst.Bools[k] = body[r>>3]&(1<<uint(r&7)) != 0
		}
	case segEncDict:
		if typ != types.Varchar {
			return false
		}
		values, idxPayload, _, err := compress.DecodeStringDictValues(body)
		if err != nil {
			return false
		}
		if s.gather == nil {
			s.gather = make([]int64, SegRows)
		}
		if !compress.GatherInt64(idxPayload, s.sel, s.gather[:m]) {
			return false
		}
		for k := 0; k < m; k++ {
			idx := s.gather[k]
			if idx < 0 || idx >= int64(len(values)) {
				return false
			}
			dst.Str[k] = values[idx]
		}
	default:
		return false
	}
	if mask != nil {
		for k, r := range s.sel {
			if mask[r>>3]&(1<<uint(r&7)) == 0 {
				dst.SetNull(k)
			}
		}
	}
	return true
}

// scanSegmentEncoded is the encoded-execution counterpart of
// scanSegment: it evaluates the exact pushed conjuncts over the
// segment's compressed payloads and gathers only the surviving rows,
// leaving the segment itself compressed. ok=false means the segment
// must take the materialize-and-scan path (nothing was counted);
// ok=true with a nil chunk means the path ran and selected no rows.
//
// Correctness: kernels are exact for the conjuncts they apply
// (encSelect), unsupported conjuncts are simply not applied, and the
// caller's row-level filter still evaluates the full predicate — so the
// surviving rows, their order and their chunk boundaries are identical
// to the decoded path at every thread count.
func (s *segReader) scanSegmentEncoded(seg *segment, base int64, maxRows int) (chunk *vector.Chunk, selected int, ok bool) {
	seg.mu.RLock()
	defer seg.mu.RUnlock()
	if seg.enc == nil {
		return nil, 0, false
	}
	// At least one exact conjunct must be evaluable over a still-encoded
	// column — without one there is nothing to select on.
	hasKernel := false
	for _, f := range s.filters {
		if f.Exact && f.Col < len(seg.enc) && seg.enc[f.Col] != nil &&
			encSelectable(seg.enc[f.Col], s.t.typs[f.Col], f) {
			hasKernel = true
			break
		}
	}
	if !hasKernel {
		return nil, 0, false
	}
	// Every projected column must be decoded already or gatherable.
	for _, c := range s.cols {
		if seg.cols[c] == nil && (seg.enc[c] == nil || !encGatherable(seg.enc[c])) {
			return nil, 0, false
		}
	}

	n := seg.n
	if n > maxRows {
		n = maxRows
	}
	// Snapshot visibility, exactly as scanSegment reconstructs it.
	s.sel = s.sel[:0]
	for r := 0; r < n; r++ {
		if !s.tx.Sees(seg.loadInsert(r)) {
			continue
		}
		if d := seg.loadDelete(r); d != 0 && s.tx.Sees(d) {
			continue
		}
		s.sel = append(s.sel, r)
	}

	// Evaluate each supported conjunct into a scratch vector and
	// intersect; a kernel that declines mid-way (corrupt payload) leaves
	// the combined match untouched.
	if s.match == nil {
		s.match = make([]bool, SegRows)
		s.kmatch = make([]bool, SegRows)
	}
	match, kmatch := s.match[:SegRows], s.kmatch[:SegRows]
	applied := false
	for _, f := range s.filters {
		if !f.Exact || f.Col >= len(seg.enc) || seg.enc[f.Col] == nil {
			continue
		}
		if !encSelectable(seg.enc[f.Col], s.t.typs[f.Col], f) {
			continue
		}
		for i := 0; i < n; i++ {
			kmatch[i] = true
		}
		if !encSelect(seg.enc[f.Col], s.t.typs[f.Col], f, kmatch[:n]) {
			continue
		}
		if !applied {
			copy(match[:n], kmatch[:n])
			applied = true
		} else {
			for i := 0; i < n; i++ {
				if match[i] && !kmatch[i] {
					match[i] = false
				}
			}
		}
	}
	if !applied {
		// Every candidate declined at evaluation time; let the decode
		// path run (and surface payload errors properly).
		return nil, 0, false
	}

	// Late materialization: keep only the selected visible rows.
	k := 0
	for _, r := range s.sel {
		if match[r] {
			s.sel[k] = r
			k++
		}
	}
	s.sel = s.sel[:k]
	if k == 0 {
		return nil, 0, true
	}

	chunk = vector.NewChunk(s.outputTypes())
	for oi, c := range s.cols {
		if seg.cols[c] != nil {
			seg.cols[c].CompactInto(chunk.Cols[oi], s.sel)
		} else if !s.gatherEncoded(seg.enc[c], s.t.typs[c], chunk.Cols[oi]) {
			return nil, 0, false
		}
	}
	chunk.SetLen(k)
	s.applyUndo(seg, chunk)
	s.fillRowIDs(chunk, base)
	return chunk, k, true
}

// EncExecInfo reports, for the segments filters do not refute, how many
// would currently execute encoded (at least one exact conjunct
// evaluable over a still-compressed column) vs. decode fully. EXPLAIN
// uses it; the split matches what an immediately-following scan with
// encoded execution enabled would do for these filter columns.
func (t *DataTable) EncExecInfo(filters []ZoneFilter) (encoded, total int) {
	segs, _ := t.snapshotSegments()
	for _, s := range segs {
		if segRefuted(t, s, filters) {
			continue
		}
		total++
		s.mu.RLock()
		for _, f := range filters {
			if f.Exact && s.enc != nil && f.Col < len(s.enc) && s.enc[f.Col] != nil &&
				encSelectable(s.enc[f.Col], t.typs[f.Col], f) {
				encoded++
				break
			}
		}
		s.mu.RUnlock()
	}
	return encoded, total
}
