package table

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"repro/internal/txn"
	"repro/internal/types"
	"repro/internal/vector"
)

// Column persistence: each column of each table is serialized
// independently into its own block chain, so a checkpoint can rewrite
// only the columns that changed (paper §2: "when some columns in a table
// are changed, the unchanged columns should not be rewritten").
//
// Payload layout:
//
//	u64 rowCount | u32 nsegs | per segment: u32 len | encoded payload
//
// Each segment payload uses the light typed encodings (encseg.go), so a
// cold open can keep the segments compressed in memory and a predicated
// scan can refute them without decompression.

// SerializeColumn encodes the rows of column c visible to tx, in row
// order, segment by segment. It returns the payload, the number of rows
// encoded, and the exact zone-map stats of each serialized segment (the
// image the catalog persists so cold opens keep their zone maps).
func (t *DataTable) SerializeColumn(tx *txn.Transaction, c int) ([]byte, int64, []ColStats, error) {
	sc, err := t.NewScanner(tx, ScanOptions{Columns: []int{c}})
	if err != nil {
		return nil, 0, nil, err
	}
	defer sc.Close()
	all := vector.New(t.typs[c], 0)
	for {
		chunk, err := sc.Next()
		if err != nil {
			return nil, 0, nil, err
		}
		if chunk == nil {
			break
		}
		all.AppendRange(chunk.Cols[0], 0, chunk.Len())
	}
	rows := int64(all.Len())
	nsegs := int((rows + SegRows - 1) / SegRows)
	out := make([]byte, 12, 12+16*nsegs)
	binary.LittleEndian.PutUint64(out, uint64(rows))
	binary.LittleEndian.PutUint32(out[8:], uint32(nsegs))
	stats := make([]ColStats, 0, nsegs)
	seg := vector.New(t.typs[c], SegRows)
	for start := int64(0); start < rows; start += SegRows {
		count := int(minI64(SegRows, rows-start))
		seg.SetLen(0)
		seg.Valid.Reset()
		seg.AppendRange(all, int(start), count)
		enc := encodeSegColumn(seg, count)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(enc)))
		out = append(out, enc...)
		st := ColStats{Valid: true}
		for i := 0; i < count; i++ {
			st.widenValue(seg.Get(i))
		}
		stats = append(stats, st)
	}
	return out, rows, stats, nil
}

// ParseColumnPayload splits a serialized column into its per-segment
// encoded payloads without decoding them, plus their byte footprint.
func ParseColumnPayload(data []byte) ([][]byte, int64, error) {
	if len(data) < 12 {
		return nil, 0, fmt.Errorf("table: column payload truncated")
	}
	rows := int64(binary.LittleEndian.Uint64(data))
	nsegs := int(binary.LittleEndian.Uint32(data[8:]))
	if want := int((rows + SegRows - 1) / SegRows); nsegs != want {
		return nil, 0, fmt.Errorf("table: column declares %d segments for %d rows", nsegs, rows)
	}
	data = data[12:]
	segs := make([][]byte, 0, nsegs)
	var bytes int64
	for i := 0; i < nsegs; i++ {
		if len(data) < 4 {
			return nil, 0, fmt.Errorf("table: column payload truncated")
		}
		l := int(binary.LittleEndian.Uint32(data))
		data = data[4:]
		if len(data) < l {
			return nil, 0, fmt.Errorf("table: segment payload truncated")
		}
		segs = append(segs, data[:l])
		bytes += int64(l)
		data = data[l:]
	}
	return segs, bytes, nil
}

// DecodeColumnSegments parses a serialized column into per-segment
// decoded vectors and reports the decoded in-memory byte footprint
// (round-trip checks; the engine itself loads lazily via
// ParseColumnPayload).
func DecodeColumnSegments(data []byte) ([]*vector.Vector, int64, error) {
	if len(data) < 8 {
		return nil, 0, fmt.Errorf("table: column payload truncated")
	}
	rows := int64(binary.LittleEndian.Uint64(data))
	encSegs, _, err := ParseColumnPayload(data)
	if err != nil {
		return nil, 0, err
	}
	segs := make([]*vector.Vector, 0, len(encSegs))
	var bytes int64
	var total int64
	for _, enc := range encSegs {
		if len(enc) == 0 {
			return nil, 0, fmt.Errorf("table: empty segment payload")
		}
		typ, err := segPayloadType(enc)
		if err != nil {
			return nil, 0, err
		}
		sv, err := decodeSegColumn(enc, typ)
		if err != nil {
			return nil, 0, err
		}
		segs = append(segs, sv)
		bytes += vectorBytes(sv)
		total += int64(sv.Len())
	}
	if total != rows {
		return nil, 0, fmt.Errorf("table: column declares %d rows, payload has %d", rows, total)
	}
	return segs, bytes, nil
}

// segPayloadType infers the logical type a payload decodes to. Integer
// and Timestamp narrow from the same families; the round-trip helpers
// only need a compatible payload type.
func segPayloadType(enc []byte) (types.Type, error) {
	switch enc[0] {
	case segEncInt64:
		return types.BigInt, nil
	case segEncInt32:
		return types.Integer, nil
	case segEncDouble:
		return types.Double, nil
	case segEncBool:
		return types.Boolean, nil
	case segEncDict:
		return types.Varchar, nil
	default:
		return types.Invalid, fmt.Errorf("table: unknown segment encoding %d", enc[0])
	}
}

// vectorBytes estimates a vector's heap footprint for buffer accounting.
func vectorBytes(v *vector.Vector) int64 {
	n := int64(v.Len())
	switch v.Type {
	case types.Varchar:
		var b int64
		for _, s := range v.Str {
			b += int64(len(s)) + 16
		}
		return b
	case types.Boolean:
		return n
	case types.Integer:
		return 4 * n
	default:
		return 8 * n
	}
}

// ---- recovery application (single-threaded, already-committed) ----

// ApplyCommittedDelete marks rows deleted with the given commit stamp
// during WAL replay.
func (t *DataTable) ApplyCommittedDelete(rowIDs []int64, stamp uint64) error {
	t.mu.RLock()
	segs := t.segs
	t.mu.RUnlock()
	for _, rid := range rowIDs {
		segIdx := int(rid / SegRows)
		if segIdx >= len(segs) {
			return fmt.Errorf("table: recovery delete of row %d out of range", rid)
		}
		s := segs[segIdx]
		s.mu.Lock()
		s.materializeDeleteIDs()
		atomic.StoreUint64(&s.deleteID[rid%SegRows], stamp)
		s.mu.Unlock()
	}
	t.deleteDirty.Store(true)
	t.layoutDiverged.Store(true)
	return nil
}

// ApplyCommittedUpdate overwrites column col at the given rows during
// WAL replay. No undo chain is created: replay is single-threaded and
// all replayed transactions are committed.
func (t *DataTable) ApplyCommittedUpdate(col int, rowIDs []int64, vals *vector.Vector) error {
	release, err := t.PinColumns([]int{col})
	if err != nil {
		return err
	}
	defer release()
	t.mu.RLock()
	segs := t.segs
	t.mu.RUnlock()
	for j, rid := range rowIDs {
		segIdx := int(rid / SegRows)
		if segIdx >= len(segs) {
			return fmt.Errorf("table: recovery update of row %d out of range", rid)
		}
		s := segs[segIdx]
		if err := t.materializeSegCols(s, []int{col}); err != nil {
			return err
		}
		s.mu.Lock()
		s.cols[col].Set(int(rid%SegRows), vals.Get(j))
		s.stats[col].widenValue(vals.Get(j))
		s.mu.Unlock()
	}
	t.loadMu.Lock()
	t.cols[col].dirty = true
	t.loadMu.Unlock()
	return nil
}
