package table

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"repro/internal/compress"
	"repro/internal/txn"
	"repro/internal/types"
	"repro/internal/vector"
)

// Column persistence: each column of each table is serialized
// independently into its own block chain, so a checkpoint can rewrite
// only the columns that changed (paper §2: "when some columns in a table
// are changed, the unchanged columns should not be rewritten").
//
// Payload layout: u64 rowCount | compress.CompressBytes(EncodeVector(...)).

// SerializeColumn encodes the rows of column c visible to tx, in row
// order, using light compression. It returns the payload and the number
// of rows encoded.
func (t *DataTable) SerializeColumn(tx *txn.Transaction, c int) ([]byte, int64, error) {
	sc, err := t.NewScanner(tx, ScanOptions{Columns: []int{c}})
	if err != nil {
		return nil, 0, err
	}
	defer sc.Close()
	all := vector.New(t.typs[c], 0)
	for {
		chunk, err := sc.Next()
		if err != nil {
			return nil, 0, err
		}
		if chunk == nil {
			break
		}
		all.AppendRange(chunk.Cols[0], 0, chunk.Len())
	}
	raw := vector.EncodeVector(nil, all)
	payload := compress.CompressBytes(raw, compress.Light)
	out := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint64(out, uint64(all.Len()))
	return append(out, payload...), int64(all.Len()), nil
}

// DecodeColumnSegments parses a serialized column into per-segment
// vectors and reports the approximate in-memory byte footprint.
func DecodeColumnSegments(data []byte) ([]*vector.Vector, int64, error) {
	if len(data) < 8 {
		return nil, 0, fmt.Errorf("table: column payload truncated")
	}
	rows := int64(binary.LittleEndian.Uint64(data))
	raw, err := compress.DecompressBytes(data[8:])
	if err != nil {
		return nil, 0, fmt.Errorf("table: column decompress: %w", err)
	}
	full, _, err := vector.DecodeVector(raw)
	if err != nil {
		return nil, 0, fmt.Errorf("table: column decode: %w", err)
	}
	if int64(full.Len()) != rows {
		return nil, 0, fmt.Errorf("table: column declares %d rows, payload has %d", rows, full.Len())
	}
	var segs []*vector.Vector
	var bytes int64
	for start := int64(0); start < rows; start += SegRows {
		count := int(minI64(SegRows, rows-start))
		sv := vector.New(full.Type, SegRows)
		sv.SetLen(0)
		sv.AppendRange(full, int(start), count)
		segs = append(segs, sv)
		bytes += vectorBytes(sv)
	}
	if rows == 0 {
		segs = []*vector.Vector{}
	}
	return segs, bytes, nil
}

// vectorBytes estimates a vector's heap footprint for buffer accounting.
func vectorBytes(v *vector.Vector) int64 {
	n := int64(v.Len())
	switch v.Type {
	case types.Varchar:
		var b int64
		for _, s := range v.Str {
			b += int64(len(s)) + 16
		}
		return b
	case types.Boolean:
		return n
	case types.Integer:
		return 4 * n
	default:
		return 8 * n
	}
}

// ---- recovery application (single-threaded, already-committed) ----

// ApplyCommittedDelete marks rows deleted with the given commit stamp
// during WAL replay.
func (t *DataTable) ApplyCommittedDelete(rowIDs []int64, stamp uint64) error {
	t.mu.RLock()
	segs := t.segs
	t.mu.RUnlock()
	for _, rid := range rowIDs {
		segIdx := int(rid / SegRows)
		if segIdx >= len(segs) {
			return fmt.Errorf("table: recovery delete of row %d out of range", rid)
		}
		s := segs[segIdx]
		s.mu.Lock()
		s.materializeDeleteIDs()
		atomic.StoreUint64(&s.deleteID[rid%SegRows], stamp)
		s.mu.Unlock()
	}
	t.deleteDirty.Store(true)
	t.layoutDiverged.Store(true)
	return nil
}

// ApplyCommittedUpdate overwrites column col at the given rows during
// WAL replay. No undo chain is created: replay is single-threaded and
// all replayed transactions are committed.
func (t *DataTable) ApplyCommittedUpdate(col int, rowIDs []int64, vals *vector.Vector) error {
	release, err := t.PinColumns([]int{col})
	if err != nil {
		return err
	}
	defer release()
	t.mu.RLock()
	segs := t.segs
	t.mu.RUnlock()
	for j, rid := range rowIDs {
		segIdx := int(rid / SegRows)
		if segIdx >= len(segs) {
			return fmt.Errorf("table: recovery update of row %d out of range", rid)
		}
		s := segs[segIdx]
		s.mu.Lock()
		s.cols[col].Set(int(rid%SegRows), vals.Get(j))
		s.mu.Unlock()
	}
	t.loadMu.Lock()
	t.cols[col].dirty = true
	t.loadMu.Unlock()
	return nil
}
