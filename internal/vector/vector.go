// Package vector implements QuackDB's columnar in-memory representation:
// typed column vectors with validity masks, and DataChunks — the
// horizontal slices of column data that flow through the "Vector Volcano"
// execution engine and across the client API without copying.
package vector

import (
	"fmt"

	"repro/internal/types"
)

// ChunkCapacity is the number of rows processed per vectorized step.
// One chunk of a few cache-resident columns is the unit of work for every
// operator, amortizing interpretation overhead over 1024 values.
const ChunkCapacity = 1024

// Bitmask is a validity mask: bit i set means row i holds a valid
// (non-NULL) value. A nil mask means "all valid", so fully-valid columns
// pay no masking cost.
type Bitmask struct {
	words []uint64
}

// MaskWords returns how many 64-bit words a mask over n rows needs.
func MaskWords(n int) int { return (n + 63) / 64 }

// AllValid reports whether no bit has been cleared (nil mask).
func (m *Bitmask) AllValid() bool { return m.words == nil }

// IsValid reports whether row i is valid. Rows beyond the materialized
// words were never invalidated (SetInvalid/SetValid grow the mask), so
// they are valid — vectors longer than the materialized prefix (e.g.
// window partition buffers) read correctly.
func (m *Bitmask) IsValid(i int) bool {
	if m.words == nil || i>>6 >= len(m.words) {
		return true
	}
	return m.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// SetInvalid marks row i NULL, materializing the mask on first use.
func (m *Bitmask) SetInvalid(i int) {
	m.materialize(i + 1)
	m.words[i>>6] &^= 1 << (uint(i) & 63)
}

// SetValid marks row i valid.
func (m *Bitmask) SetValid(i int) {
	if m.words == nil {
		return // already all-valid
	}
	m.ensure(i + 1)
	m.words[i>>6] |= 1 << (uint(i) & 63)
}

// Set marks row i valid or invalid.
func (m *Bitmask) Set(i int, valid bool) {
	if valid {
		m.SetValid(i)
	} else {
		m.SetInvalid(i)
	}
}

// Reset returns the mask to the all-valid state.
func (m *Bitmask) Reset() { m.words = nil }

// CountValid returns the number of valid rows among the first n.
func (m *Bitmask) CountValid(n int) int {
	if m.words == nil {
		return n
	}
	count := 0
	for i := 0; i < n; i++ {
		if m.IsValid(i) {
			count++
		}
	}
	return count
}

// CopyFrom makes this mask an exact copy of src over n rows.
func (m *Bitmask) CopyFrom(src *Bitmask, n int) {
	if src.words == nil {
		m.words = nil
		return
	}
	w := MaskWords(n)
	if cap(m.words) < w {
		m.words = make([]uint64, w)
	} else {
		m.words = m.words[:w]
	}
	copy(m.words, src.words[:min(w, len(src.words))])
	for i := len(src.words); i < w; i++ {
		m.words[i] = ^uint64(0)
	}
}

func (m *Bitmask) materialize(n int) {
	if m.words == nil {
		w := MaskWords(maxInt(n, ChunkCapacity))
		m.words = make([]uint64, w)
		for i := range m.words {
			m.words[i] = ^uint64(0)
		}
		return
	}
	m.ensure(n)
}

func (m *Bitmask) ensure(n int) {
	w := MaskWords(n)
	for len(m.words) < w {
		m.words = append(m.words, ^uint64(0))
	}
}

// Vector is a typed column slice with a validity mask. The physical
// payload lives in exactly one of the typed slices according to Type;
// BIGINT and TIMESTAMP share the int64 payload.
type Vector struct {
	Type  types.Type
	Valid Bitmask

	Bools []bool
	I32   []int32
	I64   []int64
	F64   []float64
	Str   []string

	length int
}

// New returns a vector of the given type with capacity for n rows.
func New(t types.Type, n int) *Vector {
	v := &Vector{Type: t}
	v.grow(n)
	v.length = 0
	return v
}

// NewLen returns a zeroed vector of the given type with length n.
func NewLen(t types.Type, n int) *Vector {
	v := New(t, n)
	v.length = n
	return v
}

// growCap doubles capacity so repeated appends stay amortized O(1).
func growCap(have, need int) int {
	if c := 2 * have; c > need {
		return c
	}
	return need
}

func (v *Vector) grow(n int) {
	switch v.Type {
	case types.Boolean:
		if cap(v.Bools) < n {
			nb := make([]bool, n, growCap(cap(v.Bools), n))
			copy(nb, v.Bools)
			v.Bools = nb
		}
		v.Bools = v.Bools[:n]
	case types.Integer:
		if cap(v.I32) < n {
			ni := make([]int32, n, growCap(cap(v.I32), n))
			copy(ni, v.I32)
			v.I32 = ni
		}
		v.I32 = v.I32[:n]
	case types.BigInt, types.Timestamp:
		if cap(v.I64) < n {
			ni := make([]int64, n, growCap(cap(v.I64), n))
			copy(ni, v.I64)
			v.I64 = ni
		}
		v.I64 = v.I64[:n]
	case types.Double:
		if cap(v.F64) < n {
			nf := make([]float64, n, growCap(cap(v.F64), n))
			copy(nf, v.F64)
			v.F64 = nf
		}
		v.F64 = v.F64[:n]
	case types.Varchar:
		if cap(v.Str) < n {
			ns := make([]string, n, growCap(cap(v.Str), n))
			copy(ns, v.Str)
			v.Str = ns
		}
		v.Str = v.Str[:n]
	case types.Null:
		// NULL vectors carry no payload.
	default:
		panic(fmt.Sprintf("vector.New: invalid type %v", v.Type))
	}
}

// Len returns the number of rows in the vector.
func (v *Vector) Len() int { return v.length }

// SetLen sets the row count, growing payload storage as needed.
func (v *Vector) SetLen(n int) {
	v.grow(n)
	v.length = n
}

// Reset empties the vector for reuse, keeping allocated capacity.
func (v *Vector) Reset() {
	v.length = 0
	v.Valid.Reset()
	v.Bools = v.Bools[:0]
	v.I32 = v.I32[:0]
	v.I64 = v.I64[:0]
	v.F64 = v.F64[:0]
	v.Str = v.Str[:0]
}

// IsNull reports whether row i is NULL.
func (v *Vector) IsNull(i int) bool { return !v.Valid.IsValid(i) }

// SetNull marks row i NULL.
func (v *Vector) SetNull(i int) { v.Valid.SetInvalid(i) }

// Get materializes row i as a Value. Not for hot paths.
func (v *Vector) Get(i int) types.Value {
	if v.IsNull(i) || v.Type == types.Null {
		return types.NewNull(v.Type)
	}
	switch v.Type {
	case types.Boolean:
		return types.NewBool(v.Bools[i])
	case types.Integer:
		return types.NewInt(v.I32[i])
	case types.BigInt:
		return types.NewBigInt(v.I64[i])
	case types.Timestamp:
		return types.NewTimestamp(v.I64[i])
	case types.Double:
		return types.NewDouble(v.F64[i])
	case types.Varchar:
		return types.NewVarchar(v.Str[i])
	}
	panic("vector.Get: invalid type")
}

// Set stores a Value at row i, which must be within the current length.
// The value's type must match the vector's (NULLs of any type allowed).
func (v *Vector) Set(i int, val types.Value) {
	if val.Null || val.Type == types.Null {
		v.SetNull(i)
		return
	}
	v.Valid.SetValid(i)
	switch v.Type {
	case types.Boolean:
		v.Bools[i] = val.Bool
	case types.Integer:
		v.I32[i] = int32(val.I64)
	case types.BigInt, types.Timestamp:
		v.I64[i] = val.I64
	case types.Double:
		v.F64[i] = val.F64
	case types.Varchar:
		v.Str[i] = val.Str
	default:
		panic("vector.Set: invalid type")
	}
}

// Append adds a Value at the end of the vector.
func (v *Vector) Append(val types.Value) {
	i := v.length
	v.SetLen(i + 1)
	v.Set(i, val)
}

// SetFrom copies row srcRow of src into row dstRow without boxing.
// Types must match; dstRow must be within the current length.
func (v *Vector) SetFrom(dstRow int, src *Vector, srcRow int) {
	if src.IsNull(srcRow) {
		v.SetNull(dstRow)
		return
	}
	v.Valid.SetValid(dstRow)
	switch v.Type {
	case types.Boolean:
		v.Bools[dstRow] = src.Bools[srcRow]
	case types.Integer:
		v.I32[dstRow] = src.I32[srcRow]
	case types.BigInt, types.Timestamp:
		v.I64[dstRow] = src.I64[srcRow]
	case types.Double:
		v.F64[dstRow] = src.F64[srcRow]
	case types.Varchar:
		v.Str[dstRow] = src.Str[srcRow]
	}
}

// AppendFrom appends row srcRow of src to this vector. Types must match.
//
//quack:hotpath
func (v *Vector) AppendFrom(src *Vector, srcRow int) {
	i := v.length
	v.SetLen(i + 1)
	if src.IsNull(srcRow) {
		v.SetNull(i)
		return
	}
	v.Valid.SetValid(i)
	switch v.Type {
	case types.Boolean:
		v.Bools[i] = src.Bools[srcRow]
	case types.Integer:
		v.I32[i] = src.I32[srcRow]
	case types.BigInt, types.Timestamp:
		v.I64[i] = src.I64[srcRow]
	case types.Double:
		v.F64[i] = src.F64[srcRow]
	case types.Varchar:
		v.Str[i] = src.Str[srcRow]
	}
}

// CopyFrom makes this vector an exact copy of src.
func (v *Vector) CopyFrom(src *Vector) {
	v.Type = src.Type
	v.SetLen(src.length)
	copy(v.Bools, src.Bools)
	copy(v.I32, src.I32)
	copy(v.I64, src.I64)
	copy(v.F64, src.F64)
	copy(v.Str, src.Str)
	v.Valid.CopyFrom(&src.Valid, src.length)
}

// AppendRange bulk-appends count rows of src starting at srcStart.
func (v *Vector) AppendRange(src *Vector, srcStart, count int) {
	base := v.length
	v.SetLen(base + count)
	switch v.Type {
	case types.Boolean:
		copy(v.Bools[base:], src.Bools[srcStart:srcStart+count])
	case types.Integer:
		copy(v.I32[base:], src.I32[srcStart:srcStart+count])
	case types.BigInt, types.Timestamp:
		copy(v.I64[base:], src.I64[srcStart:srcStart+count])
	case types.Double:
		copy(v.F64[base:], src.F64[srcStart:srcStart+count])
	case types.Varchar:
		copy(v.Str[base:], src.Str[srcStart:srcStart+count])
	}
	if !src.Valid.AllValid() {
		for i := 0; i < count; i++ {
			if !src.Valid.IsValid(srcStart + i) {
				v.Valid.SetInvalid(base + i)
			}
		}
	}
}

// CompactInto writes the rows selected by sel into dst, in order.
func (v *Vector) CompactInto(dst *Vector, sel []int) {
	dst.Type = v.Type
	dst.SetLen(len(sel))
	dst.Valid.Reset()
	switch v.Type {
	case types.Boolean:
		for o, i := range sel {
			dst.Bools[o] = v.Bools[i]
		}
	case types.Integer:
		for o, i := range sel {
			dst.I32[o] = v.I32[i]
		}
	case types.BigInt, types.Timestamp:
		for o, i := range sel {
			dst.I64[o] = v.I64[i]
		}
	case types.Double:
		for o, i := range sel {
			dst.F64[o] = v.F64[i]
		}
	case types.Varchar:
		for o, i := range sel {
			dst.Str[o] = v.Str[i]
		}
	}
	if !v.Valid.AllValid() {
		for o, i := range sel {
			if !v.Valid.IsValid(i) {
				dst.Valid.SetInvalid(o)
			}
		}
	}
}

// Chunk is a horizontal subset of a result set, query intermediate or
// base table: a set of column slices of equal length. Chunks are the
// handover unit between operators and to the client application.
type Chunk struct {
	Cols []*Vector
	n    int
}

// NewChunk returns an empty chunk with one vector per column type, each
// with ChunkCapacity capacity.
func NewChunk(colTypes []types.Type) *Chunk {
	c := &Chunk{Cols: make([]*Vector, len(colTypes))}
	for i, t := range colTypes {
		c.Cols[i] = New(t, ChunkCapacity)
	}
	return c
}

// Len returns the number of rows in the chunk.
func (c *Chunk) Len() int { return c.n }

// SetLen sets the chunk's row count, resizing every column.
func (c *Chunk) SetLen(n int) {
	for _, col := range c.Cols {
		col.SetLen(n)
	}
	c.n = n
}

// NumCols returns the number of columns.
func (c *Chunk) NumCols() int { return len(c.Cols) }

// Types returns the column types.
func (c *Chunk) Types() []types.Type {
	ts := make([]types.Type, len(c.Cols))
	for i, col := range c.Cols {
		ts[i] = col.Type
	}
	return ts
}

// Reset empties the chunk for reuse.
func (c *Chunk) Reset() {
	for _, col := range c.Cols {
		col.Reset()
	}
	c.n = 0
}

// AppendRow appends one row of values (one per column).
func (c *Chunk) AppendRow(vals ...types.Value) {
	if len(vals) != len(c.Cols) {
		panic(fmt.Sprintf("AppendRow: %d values for %d columns", len(vals), len(c.Cols)))
	}
	for i, v := range vals {
		c.Cols[i].Append(v)
	}
	c.n++
}

// AppendRowFrom appends row srcRow of src (same schema) to this chunk.
//
//quack:hotpath
func (c *Chunk) AppendRowFrom(src *Chunk, srcRow int) {
	for i, col := range c.Cols {
		col.AppendFrom(src.Cols[i], srcRow)
	}
	c.n++
}

// Row materializes row i as values. Not for hot paths.
func (c *Chunk) Row(i int) []types.Value {
	out := make([]types.Value, len(c.Cols))
	for j, col := range c.Cols {
		out[j] = col.Get(i)
	}
	return out
}

// CompactInto writes the selected rows of c into dst (same schema).
func (c *Chunk) CompactInto(dst *Chunk, sel []int) {
	for i, col := range c.Cols {
		col.CompactInto(dst.Cols[i], sel)
	}
	dst.n = len(sel)
}

// Compact keeps only the selected rows, in place (via a scratch chunk).
func (c *Chunk) Compact(sel []int) {
	scratch := NewChunk(c.Types())
	c.CompactInto(scratch, sel)
	*c = *scratch
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
