package vector

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/types"
)

// Binary codec for vectors and chunks, shared by the WAL, the storage
// checkpointer and the external-sort spill files. Layout per vector:
//
//	type u8 | n u32 | maskFlag u8 [| mask words] | payload
//
// Varchar payloads are length-prefixed strings; fixed-width payloads are
// little-endian arrays.

// EncodeVector appends the serialized form of v to dst and returns it.
func EncodeVector(dst []byte, v *Vector) []byte {
	n := v.Len()
	dst = append(dst, byte(v.Type))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	if v.Valid.AllValid() {
		dst = append(dst, 0)
	} else {
		dst = append(dst, 1)
		words := MaskWords(n)
		for w := 0; w < words; w++ {
			var word uint64
			if w < len(v.Valid.words) {
				word = v.Valid.words[w]
			} else {
				word = ^uint64(0)
			}
			dst = binary.LittleEndian.AppendUint64(dst, word)
		}
	}
	switch v.Type {
	case types.Boolean:
		for i := 0; i < n; i++ {
			b := byte(0)
			if v.Bools[i] {
				b = 1
			}
			dst = append(dst, b)
		}
	case types.Integer:
		for i := 0; i < n; i++ {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(v.I32[i]))
		}
	case types.BigInt, types.Timestamp:
		for i := 0; i < n; i++ {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v.I64[i]))
		}
	case types.Double:
		for i := 0; i < n; i++ {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(int64Bits(v.F64[i])))
		}
	case types.Varchar:
		for i := 0; i < n; i++ {
			dst = binary.AppendUvarint(dst, uint64(len(v.Str[i])))
			dst = append(dst, v.Str[i]...)
		}
	case types.Null:
		// no payload
	}
	return dst
}

// DecodeVector parses one vector from src, returning it and the rest of
// the buffer.
func DecodeVector(src []byte) (*Vector, []byte, error) {
	if len(src) < 6 {
		return nil, nil, fmt.Errorf("vector: truncated header")
	}
	t := types.Type(src[0])
	n := int(binary.LittleEndian.Uint32(src[1:]))
	maskFlag := src[5]
	src = src[6:]
	v := NewLen(t, n)
	if maskFlag == 1 {
		words := MaskWords(n)
		if len(src) < 8*words {
			return nil, nil, fmt.Errorf("vector: truncated mask")
		}
		v.Valid.words = make([]uint64, words)
		for w := 0; w < words; w++ {
			v.Valid.words[w] = binary.LittleEndian.Uint64(src[8*w:])
		}
		src = src[8*words:]
	}
	switch t {
	case types.Boolean:
		if len(src) < n {
			return nil, nil, fmt.Errorf("vector: truncated bool payload")
		}
		for i := 0; i < n; i++ {
			v.Bools[i] = src[i] != 0
		}
		src = src[n:]
	case types.Integer:
		if len(src) < 4*n {
			return nil, nil, fmt.Errorf("vector: truncated int32 payload")
		}
		for i := 0; i < n; i++ {
			v.I32[i] = int32(binary.LittleEndian.Uint32(src[4*i:]))
		}
		src = src[4*n:]
	case types.BigInt, types.Timestamp:
		if len(src) < 8*n {
			return nil, nil, fmt.Errorf("vector: truncated int64 payload")
		}
		for i := 0; i < n; i++ {
			v.I64[i] = int64(binary.LittleEndian.Uint64(src[8*i:]))
		}
		src = src[8*n:]
	case types.Double:
		if len(src) < 8*n {
			return nil, nil, fmt.Errorf("vector: truncated double payload")
		}
		for i := 0; i < n; i++ {
			v.F64[i] = floatFromBits(int64(binary.LittleEndian.Uint64(src[8*i:])))
		}
		src = src[8*n:]
	case types.Varchar:
		for i := 0; i < n; i++ {
			l, k := binary.Uvarint(src)
			if k <= 0 || uint64(len(src)-k) < l {
				return nil, nil, fmt.Errorf("vector: truncated string payload")
			}
			v.Str[i] = string(src[k : k+int(l)])
			src = src[k+int(l):]
		}
	case types.Null:
	default:
		return nil, nil, fmt.Errorf("vector: unknown type tag %d", t)
	}
	return v, src, nil
}

// EncodeChunk appends the serialized chunk (column count + vectors).
func EncodeChunk(dst []byte, c *Chunk) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(c.Cols)))
	for _, col := range c.Cols {
		dst = EncodeVector(dst, col)
	}
	return dst
}

// DecodeChunk parses one chunk from src, returning it and the rest.
func DecodeChunk(src []byte) (*Chunk, []byte, error) {
	if len(src) < 4 {
		return nil, nil, fmt.Errorf("chunk: truncated header")
	}
	nCols := int(binary.LittleEndian.Uint32(src))
	src = src[4:]
	c := &Chunk{Cols: make([]*Vector, nCols)}
	for i := 0; i < nCols; i++ {
		v, rest, err := DecodeVector(src)
		if err != nil {
			return nil, nil, err
		}
		c.Cols[i] = v
		src = rest
	}
	if nCols > 0 {
		c.n = c.Cols[0].Len()
	}
	return c, src, nil
}

func int64Bits(f float64) uint64    { return math.Float64bits(f) }
func floatFromBits(b int64) float64 { return math.Float64frombits(uint64(b)) }
