package vector

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func TestBitmaskBasics(t *testing.T) {
	var m Bitmask
	if !m.AllValid() {
		t.Fatal("fresh mask should be all-valid")
	}
	for i := 0; i < 200; i++ {
		if !m.IsValid(i) {
			t.Fatalf("row %d should be valid", i)
		}
	}
	m.SetInvalid(5)
	m.SetInvalid(64)
	m.SetInvalid(129)
	if m.AllValid() {
		t.Fatal("mask should be materialized")
	}
	for i := 0; i < 200; i++ {
		want := i != 5 && i != 64 && i != 129
		if m.IsValid(i) != want {
			t.Fatalf("row %d: valid=%v want %v", i, m.IsValid(i), want)
		}
	}
	m.SetValid(64)
	if !m.IsValid(64) {
		t.Fatal("SetValid failed")
	}
	if got := m.CountValid(200); got != 198 {
		t.Fatalf("CountValid = %d, want 198", got)
	}
	m.Reset()
	if !m.IsValid(5) {
		t.Fatal("Reset failed")
	}
}

func TestBitmaskProperty(t *testing.T) {
	// Randomized: mask behaves like a []bool.
	f := func(ops []uint16) bool {
		var m Bitmask
		ref := make(map[int]bool) // false = invalid
		for _, op := range ops {
			idx := int(op % 512)
			if op%2 == 0 {
				m.SetInvalid(idx)
				ref[idx] = false
			} else {
				m.SetValid(idx)
				ref[idx] = true
			}
		}
		for i := 0; i < 512; i++ {
			want, touched := ref[i], false
			if _, ok := ref[i]; ok {
				touched = true
			}
			if !touched {
				want = true
			}
			if m.IsValid(i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVectorSetGetAllTypes(t *testing.T) {
	cases := []types.Value{
		types.NewBool(true),
		types.NewInt(-42),
		types.NewBigInt(1 << 40),
		types.NewDouble(3.5),
		types.NewVarchar("hello"),
		types.NewTimestamp(1700000000000000),
	}
	for _, val := range cases {
		v := NewLen(val.Type, 4)
		v.Set(2, val)
		got := v.Get(2)
		if !types.Equal(got, val) {
			t.Errorf("%s: got %v want %v", val.Type, got, val)
		}
		v.SetNull(2)
		if !v.Get(2).Null {
			t.Errorf("%s: SetNull failed", val.Type)
		}
	}
}

func TestVectorAppendAndRange(t *testing.T) {
	src := New(types.BigInt, 0)
	for i := 0; i < 100; i++ {
		if i%10 == 0 {
			src.Append(types.NewNull(types.BigInt))
		} else {
			src.Append(types.NewBigInt(int64(i)))
		}
	}
	dst := New(types.BigInt, 0)
	dst.AppendRange(src, 10, 50)
	if dst.Len() != 50 {
		t.Fatalf("len=%d", dst.Len())
	}
	for i := 0; i < 50; i++ {
		want := src.Get(10 + i)
		if !types.Equal(dst.Get(i), want) {
			t.Fatalf("row %d: got %v want %v", i, dst.Get(i), want)
		}
	}
}

func TestCompactInto(t *testing.T) {
	v := New(types.Varchar, 0)
	for i := 0; i < 10; i++ {
		v.Append(types.NewVarchar(string(rune('a' + i))))
	}
	v.SetNull(3)
	var out Vector
	v.CompactInto(&out, []int{1, 3, 5})
	if out.Len() != 3 {
		t.Fatalf("len=%d", out.Len())
	}
	if out.Str[0] != "b" || out.Str[2] != "f" {
		t.Fatalf("wrong values: %v", out.Str)
	}
	if !out.IsNull(1) || out.IsNull(0) {
		t.Fatal("validity not compacted")
	}
}

func TestChunkRoundTripCodec(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	chunk := NewChunk([]types.Type{types.Boolean, types.Integer, types.BigInt, types.Double, types.Varchar, types.Timestamp})
	for i := 0; i < 777; i++ {
		vals := []types.Value{
			types.NewBool(rng.Intn(2) == 0),
			types.NewInt(int32(rng.Int63())),
			types.NewBigInt(rng.Int63()),
			types.NewDouble(rng.NormFloat64()),
			types.NewVarchar(randString(rng)),
			types.NewTimestamp(rng.Int63n(1 << 50)),
		}
		for c := range vals {
			if rng.Intn(7) == 0 {
				vals[c] = types.NewNull(vals[c].Type)
			}
		}
		chunk.AppendRow(vals...)
	}
	enc := EncodeChunk(nil, chunk)
	dec, rest, err := DecodeChunk(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	if dec.Len() != chunk.Len() || dec.NumCols() != chunk.NumCols() {
		t.Fatalf("shape mismatch: %dx%d vs %dx%d", dec.Len(), dec.NumCols(), chunk.Len(), chunk.NumCols())
	}
	for r := 0; r < chunk.Len(); r++ {
		for c := 0; c < chunk.NumCols(); c++ {
			a, b := chunk.Cols[c].Get(r), dec.Cols[c].Get(r)
			if !types.Equal(a, b) {
				t.Fatalf("row %d col %d: %v != %v", r, c, a, b)
			}
		}
	}
}

func TestCodecSpecialFloats(t *testing.T) {
	v := New(types.Double, 0)
	for _, f := range []float64{math.Inf(1), math.Inf(-1), math.NaN(), -0.0, math.MaxFloat64} {
		v.Append(types.NewDouble(f))
	}
	enc := EncodeVector(nil, v)
	dec, _, err := DecodeVector(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < v.Len(); i++ {
		a, b := v.F64[i], dec.F64[i]
		if math.IsNaN(a) != math.IsNaN(b) {
			t.Fatalf("NaN mismatch at %d", i)
		}
		if !math.IsNaN(a) && math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("bits differ at %d: %x vs %x", i, math.Float64bits(a), math.Float64bits(b))
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	v := NewLen(types.BigInt, 100)
	enc := EncodeVector(nil, v)
	for _, cut := range []int{0, 1, 5, len(enc) / 2, len(enc) - 1} {
		if _, _, err := DecodeVector(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestChunkAppendRowFrom(t *testing.T) {
	src := NewChunk([]types.Type{types.BigInt, types.Varchar})
	src.AppendRow(types.NewBigInt(1), types.NewVarchar("x"))
	src.AppendRow(types.NewNull(types.BigInt), types.NewVarchar("y"))
	dst := NewChunk(src.Types())
	dst.AppendRowFrom(src, 1)
	if dst.Len() != 1 || !dst.Cols[0].IsNull(0) || dst.Cols[1].Str[0] != "y" {
		t.Fatalf("AppendRowFrom wrong: %v", dst.Row(0))
	}
}

func TestVectorCodecProperty(t *testing.T) {
	f := func(vals []int64, nullEvery uint8) bool {
		v := New(types.BigInt, 0)
		for i, x := range vals {
			if nullEvery > 0 && i%(int(nullEvery)+1) == 0 {
				v.Append(types.NewNull(types.BigInt))
			} else {
				v.Append(types.NewBigInt(x))
			}
		}
		enc := EncodeVector(nil, v)
		dec, rest, err := DecodeVector(enc)
		if err != nil || len(rest) != 0 || dec.Len() != v.Len() {
			return false
		}
		for i := 0; i < v.Len(); i++ {
			if !types.Equal(v.Get(i), dec.Get(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func randString(rng *rand.Rand) string {
	n := rng.Intn(20)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('!' + rng.Intn(90))
	}
	return string(b)
}

func TestTypesOfChunk(t *testing.T) {
	c := NewChunk([]types.Type{types.Integer, types.Double})
	if !reflect.DeepEqual(c.Types(), []types.Type{types.Integer, types.Double}) {
		t.Fatal("Types mismatch")
	}
}
