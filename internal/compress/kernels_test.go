package compress

import (
	"math"
	"math/rand"
	"testing"
)

// kernelShapes covers the encoder's decision space: constant (FOR
// width 0 or a single RLE run), short runs (RLE wins), dense ramps
// (FOR with interesting widths), wide random (raw or width-64 FOR) and
// extreme magnitudes (delta overflow edges).
func kernelShapes(rng *rand.Rand) map[string][]int64 {
	ramp := make([]int64, 300)
	for i := range ramp {
		ramp[i] = -150 + int64(i)
	}
	runs := make([]int64, 0, 256)
	for v := int64(0); v < 16; v++ {
		for j := 0; j < 16; j++ {
			runs = append(runs, v*7-40)
		}
	}
	wide := make([]int64, 257)
	for i := range wide {
		wide[i] = rng.Int63() - rng.Int63()
	}
	width7 := make([]int64, 200)
	for i := range width7 {
		width7[i] = 1000 + rng.Int63n(128) // span 127 -> width 7
	}
	return map[string][]int64{
		"empty":    {},
		"constant": {42, 42, 42, 42, 42},
		"ramp":     ramp,
		"runs":     runs,
		"wide":     wide,
		"width7":   width7,
		"extremes": {math.MinInt64, -1, 0, 1, math.MaxInt64, math.MinInt64, math.MaxInt64},
	}
}

func encodings(src []int64) map[string][]byte {
	return map[string][]byte{
		"raw":   CompressInt64(src, None),
		"light": CompressInt64(src, Light),
		"rle":   rleEncode(src),
		"for":   forEncode(src),
	}
}

func TestSelectInt64MatchesDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ops := []CmpOp{CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe}
	for shape, src := range kernelShapes(rng) {
		consts := []int64{0, 1, -1, 42, 1000, 1063, math.MinInt64, math.MaxInt64}
		if len(src) > 0 {
			consts = append(consts, src[0], src[len(src)/2], src[len(src)-1]+1)
		}
		for encName, payload := range encodings(src) {
			for _, op := range ops {
				for _, c := range consts {
					match := make([]bool, len(src))
					for i := range match {
						match[i] = true
					}
					if !SelectInt64(payload, op, c, match) {
						t.Fatalf("%s/%s op=%d c=%d: kernel declined a light scheme", shape, encName, op, c)
					}
					for i, v := range src {
						if want := holdsI64(op, v, c); match[i] != want {
							t.Fatalf("%s/%s op=%d c=%d row %d (v=%d): got %v want %v",
								shape, encName, op, c, i, v, match[i], want)
						}
					}
				}
			}
		}
	}
}

func TestSelectInt64Intersects(t *testing.T) {
	src := []int64{1, 2, 3, 4, 5, 6}
	payload := forEncode(src)
	match := []bool{true, false, true, false, true, true}
	if !SelectInt64(payload, CmpGe, 3, match) {
		t.Fatal("kernel declined")
	}
	want := []bool{false, false, true, false, true, true}
	for i := range want {
		if match[i] != want[i] {
			t.Fatalf("row %d: got %v want %v", i, match[i], want[i])
		}
	}
}

func TestSelectInt64DeclinesFlate(t *testing.T) {
	src := make([]int64, 100)
	payload := CompressInt64(src, Heavy)
	if payload[0] != schemeFlate && payload[0] != schemeFlateLight {
		t.Skip("heavy picked a light scheme for this input")
	}
	match := make([]bool, len(src))
	if SelectInt64(payload, CmpEq, 0, match) {
		t.Fatal("kernel accepted a DEFLATE payload")
	}
	if Int64SchemeSelectable(payload) {
		t.Fatal("Int64SchemeSelectable true for DEFLATE")
	}
}

func TestSelectInt64InMatchesDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(12)
		codes := make([]int64, 200)
		for i := range codes {
			codes[i] = int64(rng.Intn(k))
		}
		member := make([]bool, k)
		for i := range member {
			member[i] = rng.Intn(2) == 0
		}
		for encName, payload := range encodings(codes) {
			match := make([]bool, len(codes))
			for i := range match {
				match[i] = true
			}
			if !SelectInt64In(payload, member, match) {
				t.Fatalf("trial %d %s: kernel declined", trial, encName)
			}
			for i, v := range codes {
				if match[i] != member[v] {
					t.Fatalf("trial %d %s row %d: got %v want %v", trial, encName, i, match[i], member[v])
				}
			}
		}
	}
}

func TestSelectInt64InRejectsOutOfRange(t *testing.T) {
	payload := CompressInt64([]int64{0, 1, 2, 3}, Light)
	match := make([]bool, 4)
	if SelectInt64In(payload, []bool{true, true}, match) {
		t.Fatal("kernel accepted codes beyond the member table")
	}
}

func TestGatherInt64MatchesDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for shape, src := range kernelShapes(rng) {
		if len(src) == 0 {
			continue
		}
		sels := [][]int{
			{},
			{0},
			{len(src) - 1},
			{0, len(src) - 1},
		}
		var every, sparse []int
		for i := range src {
			every = append(every, i)
			if i%7 == 3 {
				sparse = append(sparse, i)
			}
		}
		sels = append(sels, every, sparse)
		for encName, payload := range encodings(src) {
			for si, sel := range sels {
				out := make([]int64, len(sel))
				if !GatherInt64(payload, sel, out) {
					t.Fatalf("%s/%s sel %d: gather declined", shape, encName, si)
				}
				for k, r := range sel {
					if out[k] != src[r] {
						t.Fatalf("%s/%s sel %d row %d: got %d want %d", shape, encName, si, r, out[k], src[r])
					}
				}
			}
		}
	}
}

func TestGatherInt64Bounds(t *testing.T) {
	payload := CompressInt64([]int64{1, 2, 3}, Light)
	if GatherInt64(payload, []int{3}, make([]int64, 1)) {
		t.Fatal("gather accepted an out-of-range row index")
	}
	if GatherInt64(payload, []int{0, 1}, make([]int64, 1)) {
		t.Fatal("gather accepted an undersized output buffer")
	}
}
