package compress

import (
	"encoding/binary"
)

// Selection kernels: evaluate a comparison predicate directly over a
// CompressInt64 payload, producing a per-row match vector without
// materializing the column. Frame-of-reference payloads rewrite the
// constant into the delta domain once and compare the packed offsets
// unsigned; RLE payloads compare once per run; raw payloads scan the
// stored words. DEFLATE schemes decline (ok=false) — entropy-coded
// buffers have no cheap per-row access — and callers fall back to
// decompression.
//
// All kernels intersect: they only ever clear bits of match, never set
// them, so a caller can AND several predicates into one vector. On
// ok=false the contents of match are unspecified; evaluate into a
// scratch vector and intersect only on success.

// CmpOp is the comparison operator a selection kernel applies,
// value-versus-constant.
type CmpOp uint8

// Comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// OpHolds reports whether op accepts a comparison outcome cmp, where
// cmp is negative/zero/positive for value less-than/equal/greater-than
// the constant. It is how callers apply a CmpOp to domains the kernels
// do not handle natively (strings, total-ordered floats).
func OpHolds(op CmpOp, cmp int) bool {
	switch op {
	case CmpEq:
		return cmp == 0
	case CmpNe:
		return cmp != 0
	case CmpLt:
		return cmp < 0
	case CmpLe:
		return cmp <= 0
	case CmpGt:
		return cmp > 0
	default:
		return cmp >= 0
	}
}

func holdsI64(op CmpOp, v, c int64) bool {
	switch op {
	case CmpEq:
		return v == c
	case CmpNe:
		return v != c
	case CmpLt:
		return v < c
	case CmpLe:
		return v <= c
	case CmpGt:
		return v > c
	default:
		return v >= c
	}
}

func holdsU64(op CmpOp, v, c uint64) bool {
	switch op {
	case CmpEq:
		return v == c
	case CmpNe:
		return v != c
	case CmpLt:
		return v < c
	case CmpLe:
		return v <= c
	case CmpGt:
		return v > c
	default:
		return v >= c
	}
}

// SelectInt64 intersects match with the predicate "value op c" over a
// CompressInt64 payload. match must cover the payload's row count.
func SelectInt64(data []byte, op CmpOp, c int64, match []bool) bool {
	if len(data) == 0 {
		return false
	}
	switch data[0] {
	case schemeRaw:
		return selectRaw(data[1:], op, c, match)
	case schemeRLE:
		return selectRLE(data[1:], op, c, match)
	case schemeFOR:
		return selectFOR(data[1:], op, c, match)
	default:
		return false
	}
}

func selectRaw(body []byte, op CmpOp, c int64, match []bool) bool {
	n, k := binary.Uvarint(body)
	if k <= 0 || n > uint64(len(match)) || uint64(len(body)-k) < 8*n {
		return false
	}
	body = body[k:]
	for i := uint64(0); i < n; i++ {
		if match[i] && !holdsI64(op, int64(binary.LittleEndian.Uint64(body[8*i:])), c) {
			match[i] = false
		}
	}
	return true
}

func selectRLE(body []byte, op CmpOp, c int64, match []bool) bool {
	n, k := binary.Uvarint(body)
	if k <= 0 || n > uint64(len(match)) {
		return false
	}
	body = body[k:]
	var at uint64
	for at < n {
		runLen, k1 := binary.Uvarint(body)
		if k1 <= 0 {
			return false
		}
		body = body[k1:]
		val, k2 := binary.Varint(body)
		if k2 <= 0 {
			return false
		}
		body = body[k2:]
		if at+runLen > n {
			return false
		}
		// One comparison decides the whole run.
		if !holdsI64(op, val, c) {
			for i := at; i < at+runLen; i++ {
				match[i] = false
			}
		}
		at += runLen
	}
	return true
}

// forHeader parses a FOR body into (n, minV, width, packed deltas).
func forHeader(body []byte) (n uint64, minV int64, width int, packed []byte, ok bool) {
	n, k := binary.Uvarint(body)
	if k <= 0 {
		return 0, 0, 0, nil, false
	}
	body = body[k:]
	if n == 0 {
		return 0, 0, 0, nil, true
	}
	minV, k2 := binary.Varint(body)
	if k2 <= 0 || len(body) <= k2 {
		return 0, 0, 0, nil, false
	}
	width = int(body[k2])
	packed = body[k2+1:]
	if width > 64 || uint64(len(packed)) < (n*uint64(width)+7)/8 {
		return 0, 0, 0, nil, false
	}
	return n, minV, width, packed, true
}

// forDelta extracts the width-bit field starting at bitPos from the
// LSB-first packed stream — one 64-bit load plus shift/mask instead of
// a per-bit walk. Callers guarantee the field lies inside packed (the
// forHeader length check).
func forDelta(packed []byte, bitPos, width int) uint64 {
	byteOff := bitPos >> 3
	shift := uint(bitPos & 7)
	var w uint64
	if byteOff+8 <= len(packed) {
		w = binary.LittleEndian.Uint64(packed[byteOff:])
	} else {
		// Tail: fewer than 8 bytes remain, and they hold every bit of
		// the field, so assemble what is there.
		for j := len(packed) - 1; j >= byteOff; j-- {
			w = w<<8 | uint64(packed[j])
		}
	}
	v := w >> shift
	if got := 64 - int(shift); width > got {
		// The field spills into a 9th byte (width close to 64 with a
		// nonzero shift); it exists because the field fits in packed.
		v |= uint64(packed[byteOff+8]) << uint(got)
	}
	if width < 64 {
		v &= (uint64(1) << uint(width)) - 1
	}
	return v
}

func selectFOR(body []byte, op CmpOp, c int64, match []bool) bool {
	n, minV, width, packed, ok := forHeader(body)
	if !ok || n > uint64(len(match)) {
		return false
	}
	if n == 0 {
		return true
	}
	if width == 0 {
		// Constant column: one comparison decides every row.
		if !holdsI64(op, minV, c) {
			clearMatch(match, n)
		}
		return true
	}
	// Rewrite c into the delta domain: v = minV + delta with delta in
	// [0, maxDelta], so "v op c" becomes an unsigned comparison of the
	// packed deltas against c-minV — unless c falls outside the frame,
	// in which case the header alone answers for every row.
	if c < minV {
		// Every value is >= minV > c.
		switch op {
		case CmpEq, CmpLt, CmpLe:
			clearMatch(match, n)
		}
		return true
	}
	maxDelta := ^uint64(0)
	if width < 64 {
		maxDelta = (uint64(1) << uint(width)) - 1
	}
	// Exact even when c-minV overflows int64: two's-complement
	// subtraction yields the true unsigned difference for c >= minV.
	cDelta := uint64(c) - uint64(minV)
	if cDelta > maxDelta {
		// Every value is <= minV+maxDelta < c.
		switch op {
		case CmpEq, CmpGt, CmpGe:
			clearMatch(match, n)
		}
		return true
	}
	for i := uint64(0); i < n; i++ {
		if !match[i] {
			continue
		}
		if !holdsU64(op, forDelta(packed, int(i)*width, width), cDelta) {
			match[i] = false
		}
	}
	return true
}

func clearMatch(match []bool, n uint64) {
	for i := uint64(0); i < n; i++ {
		match[i] = false
	}
}

// SelectInt64In intersects match with per-value membership: row i
// survives iff member[v_i]. Values must index member — the dictionary
// code case, where the predicate was evaluated once per unique string
// and the packed code array is scanned without decoding. Out-of-range
// values decline (corrupt payload; the decode path reports it).
func SelectInt64In(data []byte, member []bool, match []bool) bool {
	if len(data) == 0 {
		return false
	}
	switch data[0] {
	case schemeRaw:
		body := data[1:]
		n, k := binary.Uvarint(body)
		if k <= 0 || n > uint64(len(match)) || uint64(len(body)-k) < 8*n {
			return false
		}
		body = body[k:]
		for i := uint64(0); i < n; i++ {
			v := int64(binary.LittleEndian.Uint64(body[8*i:]))
			if v < 0 || v >= int64(len(member)) {
				return false
			}
			if match[i] && !member[v] {
				match[i] = false
			}
		}
		return true
	case schemeRLE:
		body := data[1:]
		n, k := binary.Uvarint(body)
		if k <= 0 || n > uint64(len(match)) {
			return false
		}
		body = body[k:]
		var at uint64
		for at < n {
			runLen, k1 := binary.Uvarint(body)
			if k1 <= 0 {
				return false
			}
			body = body[k1:]
			val, k2 := binary.Varint(body)
			if k2 <= 0 {
				return false
			}
			body = body[k2:]
			if at+runLen > n || val < 0 || val >= int64(len(member)) {
				return false
			}
			if !member[val] {
				for i := at; i < at+runLen; i++ {
					match[i] = false
				}
			}
			at += runLen
		}
		return true
	case schemeFOR:
		n, minV, width, packed, ok := forHeader(data[1:])
		if !ok || n > uint64(len(match)) {
			return false
		}
		if n == 0 {
			return true
		}
		if width == 0 {
			if minV < 0 || minV >= int64(len(member)) {
				return false
			}
			if !member[minV] {
				clearMatch(match, n)
			}
			return true
		}
		for i := uint64(0); i < n; i++ {
			v := minV + int64(forDelta(packed, int(i)*width, width))
			if v < 0 || v >= int64(len(member)) {
				return false
			}
			if match[i] && !member[v] {
				match[i] = false
			}
		}
		return true
	default:
		return false
	}
}

// GatherInt64 decodes only the rows listed in sel (ascending row
// indexes into the payload) into out[:len(sel)] — the late-
// materialization counterpart of the selection kernels. Raw payloads
// read the selected words directly, FOR payloads extract the selected
// bit fields at random offsets, RLE payloads make one forward pass over
// the runs. DEFLATE declines.
func GatherInt64(data []byte, sel []int, out []int64) bool {
	if len(sel) == 0 {
		return true
	}
	if len(data) == 0 || len(out) < len(sel) {
		return false
	}
	switch data[0] {
	case schemeRaw:
		body := data[1:]
		n, k := binary.Uvarint(body)
		if k <= 0 || uint64(len(body)-k) < 8*n || uint64(sel[len(sel)-1]) >= n {
			return false
		}
		body = body[k:]
		for i, r := range sel {
			out[i] = int64(binary.LittleEndian.Uint64(body[8*r:]))
		}
		return true
	case schemeRLE:
		body := data[1:]
		n, k := binary.Uvarint(body)
		if k <= 0 || uint64(sel[len(sel)-1]) >= n {
			return false
		}
		body = body[k:]
		var at uint64
		p := 0
		for at < n && p < len(sel) {
			runLen, k1 := binary.Uvarint(body)
			if k1 <= 0 {
				return false
			}
			body = body[k1:]
			val, k2 := binary.Varint(body)
			if k2 <= 0 {
				return false
			}
			body = body[k2:]
			if at+runLen > n {
				return false
			}
			end := at + runLen
			for p < len(sel) && uint64(sel[p]) < end {
				out[p] = val
				p++
			}
			at = end
		}
		return p == len(sel)
	case schemeFOR:
		n, minV, width, packed, ok := forHeader(data[1:])
		if !ok || uint64(sel[len(sel)-1]) >= n {
			return false
		}
		if width == 0 {
			for i := range sel {
				out[i] = minV
			}
			return true
		}
		for i, r := range sel {
			out[i] = minV + int64(forDelta(packed, r*width, width))
		}
		return true
	default:
		return false
	}
}

// Int64SchemeSelectable reports whether SelectInt64/GatherInt64 can
// operate on this payload without decompression (the light schemes).
func Int64SchemeSelectable(data []byte) bool {
	if len(data) == 0 {
		return false
	}
	switch data[0] {
	case schemeRaw, schemeRLE, schemeFOR:
		return true
	default:
		return false
	}
}

// Int64Count returns the number of values in a selectable payload
// without decoding it. All three light schemes carry the count as the
// uvarint right after the scheme tag.
func Int64Count(data []byte) (int, bool) {
	if !Int64SchemeSelectable(data) {
		return 0, false
	}
	n, k := binary.Uvarint(data[1:])
	if k <= 0 {
		return 0, false
	}
	return int(n), true
}
