// Package compress implements the lightweight and heavy compression
// schemes the engine trades CPU for RAM with (paper §4, Figure 1):
//
//   - Light: run-length encoding and frame-of-reference bit-packing for
//     integers, dictionary encoding for strings — cheap to (de)compress,
//     moderate ratios; used first when the application needs memory.
//   - Heavy: DEFLATE — much better ratios at a real CPU cost; used when
//     memory pressure keeps rising.
//
// The same encodings serve persistent column segments and compressed
// in-memory intermediates (hash tables, sort runs).
package compress

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"
)

// Level selects how aggressively to trade CPU for memory.
type Level int

// Compression levels, in increasing CPU cost / decreasing footprint.
const (
	None Level = iota
	Light
	Heavy
)

// String names the level as the adaptive policy logs it.
func (l Level) String() string {
	switch l {
	case None:
		return "none"
	case Light:
		return "light"
	case Heavy:
		return "heavy"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Scheme tags stored in the first byte of every compressed buffer.
const (
	schemeRaw byte = iota
	schemeRLE
	schemeFOR
	schemeFlate
	// schemeFlateLight is DEFLATE applied on top of a light-encoded
	// buffer: entropy coding over the bit-packed/RLE form, so "heavy" is
	// never worse than "light".
	schemeFlateLight
)

// CompressInt64 compresses src at the given level. For Light it picks
// the smaller of RLE and frame-of-reference bit-packing; None stores raw
// little-endian words (still framed, so Decompress is uniform).
func CompressInt64(src []int64, level Level) []byte {
	switch level {
	case None:
		return rawEncode(src)
	case Light:
		rle := rleEncode(src)
		forp := forEncode(src)
		if len(rle) <= len(forp) {
			return rle
		}
		return forp
	case Heavy:
		light := CompressInt64(src, Light)
		candidates := [][]byte{light, flateEncode(src), flateWrap(light)}
		best := candidates[0]
		for _, c := range candidates[1:] {
			if len(c) < len(best) {
				best = c
			}
		}
		return best
	default:
		return rawEncode(src)
	}
}

// flateWrap entropy-codes an already-encoded buffer.
func flateWrap(encoded []byte) []byte {
	var buf bytes.Buffer
	buf.WriteByte(schemeFlateLight)
	w, _ := flate.NewWriter(&buf, flate.DefaultCompression)
	w.Write(encoded) //nolint:errcheck // bytes.Buffer cannot fail
	w.Close()
	return buf.Bytes()
}

// DecompressInt64 reverses CompressInt64 regardless of scheme.
func DecompressInt64(data []byte) ([]int64, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("compress: empty buffer")
	}
	switch data[0] {
	case schemeRaw:
		return rawDecode(data[1:])
	case schemeRLE:
		return rleDecode(data[1:])
	case schemeFOR:
		return forDecode(data[1:])
	case schemeFlate:
		return flateDecode(data[1:])
	case schemeFlateLight:
		r := flate.NewReader(bytes.NewReader(data[1:]))
		defer r.Close()
		inner, err := io.ReadAll(r)
		if err != nil {
			return nil, fmt.Errorf("compress: flate-light: %w", err)
		}
		return DecompressInt64(inner)
	default:
		return nil, fmt.Errorf("compress: unknown scheme tag %d", data[0])
	}
}

func rawEncode(src []int64) []byte {
	out := make([]byte, 0, 1+binary.MaxVarintLen64+8*len(src))
	out = append(out, schemeRaw)
	out = binary.AppendUvarint(out, uint64(len(src)))
	for _, v := range src {
		out = binary.LittleEndian.AppendUint64(out, uint64(v))
	}
	return out
}

func rawDecode(data []byte) ([]int64, error) {
	n, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, fmt.Errorf("compress: bad raw header")
	}
	data = data[k:]
	if uint64(len(data)) < 8*n {
		return nil, fmt.Errorf("compress: raw buffer truncated")
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return out, nil
}

func rleEncode(src []int64) []byte {
	out := make([]byte, 0, 64)
	out = append(out, schemeRLE)
	out = binary.AppendUvarint(out, uint64(len(src)))
	for i := 0; i < len(src); {
		j := i + 1
		for j < len(src) && src[j] == src[i] {
			j++
		}
		out = binary.AppendUvarint(out, uint64(j-i))
		out = binary.AppendVarint(out, src[i])
		i = j
	}
	return out
}

func rleDecode(data []byte) ([]int64, error) {
	n, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, fmt.Errorf("compress: bad RLE header")
	}
	data = data[k:]
	out := make([]int64, 0, n)
	for uint64(len(out)) < n {
		runLen, k1 := binary.Uvarint(data)
		if k1 <= 0 {
			return nil, fmt.Errorf("compress: RLE truncated")
		}
		data = data[k1:]
		val, k2 := binary.Varint(data)
		if k2 <= 0 {
			return nil, fmt.Errorf("compress: RLE truncated value")
		}
		data = data[k2:]
		if uint64(len(out))+runLen > n {
			return nil, fmt.Errorf("compress: RLE run overflows declared length")
		}
		for r := uint64(0); r < runLen; r++ {
			out = append(out, val)
		}
	}
	return out, nil
}

// forEncode frame-of-reference bit-packs: values are stored as
// fixed-width offsets from the minimum.
func forEncode(src []int64) []byte {
	out := make([]byte, 0, 64)
	out = append(out, schemeFOR)
	out = binary.AppendUvarint(out, uint64(len(src)))
	if len(src) == 0 {
		return out
	}
	minV := src[0]
	maxV := src[0]
	for _, v := range src[1:] {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	span := uint64(maxV - minV) // safe: callers' domains fit; wraps only on full-range data
	width := bits.Len64(span)   // bits per value; 0 means constant column
	out = binary.AppendVarint(out, minV)
	out = append(out, byte(width))
	if width == 0 {
		return out
	}
	packed := make([]byte, (len(src)*width+7)/8)
	bitPos := 0
	for _, v := range src {
		delta := uint64(v - minV)
		for b := 0; b < width; b++ {
			if delta&(1<<uint(b)) != 0 {
				packed[bitPos>>3] |= 1 << uint(bitPos&7)
			}
			bitPos++
		}
	}
	return append(out, packed...)
}

func forDecode(data []byte) ([]int64, error) {
	n, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, fmt.Errorf("compress: bad FOR header")
	}
	data = data[k:]
	if n == 0 {
		return []int64{}, nil
	}
	minV, k2 := binary.Varint(data)
	if k2 <= 0 {
		return nil, fmt.Errorf("compress: FOR truncated min")
	}
	data = data[k2:]
	if len(data) < 1 {
		return nil, fmt.Errorf("compress: FOR truncated width")
	}
	width := int(data[0])
	data = data[1:]
	out := make([]int64, n)
	if width == 0 {
		for i := range out {
			out[i] = minV
		}
		return out, nil
	}
	need := (int(n)*width + 7) / 8
	if len(data) < need {
		return nil, fmt.Errorf("compress: FOR payload truncated")
	}
	bitPos := 0
	for i := range out {
		var delta uint64
		for b := 0; b < width; b++ {
			if data[bitPos>>3]&(1<<uint(bitPos&7)) != 0 {
				delta |= 1 << uint(b)
			}
			bitPos++
		}
		out[i] = minV + int64(delta)
	}
	return out, nil
}

func flateEncode(src []int64) []byte {
	raw := make([]byte, 8*len(src))
	for i, v := range src {
		binary.LittleEndian.PutUint64(raw[8*i:], uint64(v))
	}
	var buf bytes.Buffer
	buf.WriteByte(schemeFlate)
	var hdr [binary.MaxVarintLen64]byte
	buf.Write(hdr[:binary.PutUvarint(hdr[:], uint64(len(src)))])
	// Default compression: BestCompression costs ~10x the CPU for a few
	// percent on binary column data — a bad trade even for "heavy".
	w, _ := flate.NewWriter(&buf, flate.DefaultCompression)
	w.Write(raw) //nolint:errcheck // bytes.Buffer cannot fail
	w.Close()
	return buf.Bytes()
}

func flateDecode(data []byte) ([]int64, error) {
	n, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, fmt.Errorf("compress: bad flate header")
	}
	r := flate.NewReader(bytes.NewReader(data[k:]))
	defer r.Close()
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("compress: flate: %w", err)
	}
	if uint64(len(raw)) != 8*n {
		return nil, fmt.Errorf("compress: flate payload has %d bytes, want %d", len(raw), 8*n)
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return out, nil
}

// CompressBytes compresses an opaque byte buffer. None returns a framed
// copy; Light and Heavy use DEFLATE at speed-optimized and
// ratio-optimized settings respectively.
func CompressBytes(src []byte, level Level) []byte {
	switch level {
	case None:
		out := make([]byte, 1+len(src))
		out[0] = schemeRaw
		copy(out[1:], src)
		return out
	default:
		fl := flate.BestSpeed
		if level == Heavy {
			fl = flate.DefaultCompression
		}
		var buf bytes.Buffer
		buf.WriteByte(schemeFlate)
		w, _ := flate.NewWriter(&buf, fl)
		w.Write(src) //nolint:errcheck // bytes.Buffer cannot fail
		w.Close()
		return buf.Bytes()
	}
}

// DecompressBytes reverses CompressBytes.
func DecompressBytes(data []byte) ([]byte, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("compress: empty buffer")
	}
	switch data[0] {
	case schemeRaw:
		out := make([]byte, len(data)-1)
		copy(out, data[1:])
		return out, nil
	case schemeFlate:
		r := flate.NewReader(bytes.NewReader(data[1:]))
		defer r.Close()
		return io.ReadAll(r)
	default:
		return nil, fmt.Errorf("compress: unknown scheme tag %d", data[0])
	}
}

// StringDict dictionary-encodes a string column: the unique values plus
// a FOR-packed index vector. It is the light scheme for VARCHAR segments.
type StringDict struct {
	Values  []string
	Indexes []int64
}

// EncodeStrings dictionary-encodes src.
func EncodeStrings(src []string) StringDict {
	dict := make(map[string]int64)
	var d StringDict
	d.Indexes = make([]int64, len(src))
	for i, s := range src {
		idx, ok := dict[s]
		if !ok {
			idx = int64(len(d.Values))
			dict[s] = idx
			d.Values = append(d.Values, s)
		}
		d.Indexes[i] = idx
	}
	return d
}

// Decode reconstructs the original string slice.
func (d StringDict) Decode() []string {
	out := make([]string, len(d.Indexes))
	for i, idx := range d.Indexes {
		out[i] = d.Values[idx]
	}
	return out
}
