package compress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, data []int64, level Level) []byte {
	t.Helper()
	enc := CompressInt64(data, level)
	dec, err := DecompressInt64(enc)
	if err != nil {
		t.Fatalf("%v (%d values): %v", level, len(data), err)
	}
	if len(dec) != len(data) {
		t.Fatalf("%v: got %d values, want %d", level, len(dec), len(data))
	}
	for i := range data {
		if dec[i] != data[i] {
			t.Fatalf("%v: value %d: got %d want %d", level, i, dec[i], data[i])
		}
	}
	return enc
}

func TestRoundTripAllLevels(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	datasets := map[string][]int64{
		"empty":     {},
		"constant":  repeat(42, 10000),
		"runs":      runs(rng, 10000),
		"smallDom":  domain(rng, 10000, 100),
		"random":    randomVals(rng, 10000),
		"extremes":  {math.MaxInt64, math.MinInt64, 0, -1, 1},
		"negatives": {-5, -5, -5, -1000000, 3},
	}
	for name, data := range datasets {
		for _, level := range []Level{None, Light, Heavy} {
			t.Run(name+"/"+level.String(), func(t *testing.T) {
				roundTrip(t, data, level)
			})
		}
	}
}

func TestCompressionActuallyCompresses(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := domain(rng, 100000, 16) // 16 distinct values: highly compressible
	raw := len(CompressInt64(data, None))
	light := len(CompressInt64(data, Light))
	heavy := len(CompressInt64(data, Heavy))
	if light >= raw/2 {
		t.Errorf("light compression ineffective: %d vs raw %d", light, raw)
	}
	if heavy >= raw/2 {
		t.Errorf("heavy compression ineffective: %d vs raw %d", heavy, raw)
	}
	if heavy >= light {
		t.Logf("note: heavy (%d) not smaller than light (%d) on this data", heavy, light)
	}
}

func TestHeavyBeatsLightOnRandomSmallDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Skewed distribution: DEFLATE exploits frequency, FOR cannot.
	data := make([]int64, 50000)
	for i := range data {
		if rng.Intn(10) < 9 {
			data[i] = 7
		} else {
			data[i] = int64(rng.Intn(256))
		}
	}
	light := len(CompressInt64(data, Light))
	heavy := len(CompressInt64(data, Heavy))
	if heavy >= light {
		t.Errorf("heavy (%d) should beat light (%d) on skewed data", heavy, light)
	}
}

func TestDecompressErrors(t *testing.T) {
	if _, err := DecompressInt64(nil); err == nil {
		t.Error("empty buffer accepted")
	}
	if _, err := DecompressInt64([]byte{99, 0, 0}); err == nil {
		t.Error("unknown scheme accepted")
	}
	enc := CompressInt64([]int64{1, 2, 3}, Light)
	if _, err := DecompressInt64(enc[:len(enc)-1]); err == nil {
		t.Error("truncated buffer accepted")
	}
}

func TestBytesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := make([]byte, 10000)
	rng.Read(data)
	for _, level := range []Level{None, Light, Heavy} {
		enc := CompressBytes(data, level)
		dec, err := DecompressBytes(enc)
		if err != nil {
			t.Fatalf("%v: %v", level, err)
		}
		if string(dec) != string(data) {
			t.Fatalf("%v: corrupted", level)
		}
	}
}

func TestStringDict(t *testing.T) {
	src := []string{"aa", "bb", "aa", "cc", "bb", "aa"}
	d := EncodeStrings(src)
	if len(d.Values) != 3 {
		t.Fatalf("dictionary has %d entries, want 3", len(d.Values))
	}
	got := d.Decode()
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("row %d: %q != %q", i, got[i], src[i])
		}
	}
}

func TestInt64RoundTripProperty(t *testing.T) {
	for _, level := range []Level{None, Light, Heavy} {
		level := level
		f := func(data []int64) bool {
			enc := CompressInt64(data, level)
			dec, err := DecompressInt64(enc)
			if err != nil || len(dec) != len(data) {
				return false
			}
			for i := range data {
				if dec[i] != data[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Fatalf("%v: %v", level, err)
		}
	}
}

func repeat(v int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func runs(rng *rand.Rand, n int) []int64 {
	out := make([]int64, 0, n)
	for len(out) < n {
		v := rng.Int63n(50)
		run := 1 + rng.Intn(40)
		for i := 0; i < run && len(out) < n; i++ {
			out = append(out, v)
		}
	}
	return out
}

func domain(rng *rand.Rand, n int, dom int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = rng.Int63n(dom)
	}
	return out
}

func randomVals(rng *rand.Rand, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = rng.Int63() - rng.Int63()
	}
	return out
}
