package compress

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Compressed-domain helpers: predicates over encoded buffers without
// materializing the values. Frame-of-reference payloads answer from the
// header alone (the stored minimum plus the bit width bounds every
// value); RLE payloads walk the run values without expanding them;
// dictionary-encoded strings answer membership and range questions from
// the dictionary without touching the packed index vector.

// Int64Bounds returns a conservative [min, max] interval covering every
// value of a CompressInt64 buffer, without decoding the values. ok is
// false when the scheme cannot be bounded cheaply (DEFLATE) or the
// buffer is empty/odd; callers must then fall back to decompression.
// The interval is a superset: for FOR it is the representable range of
// the bit width, which may be wider than the actual values.
func Int64Bounds(data []byte) (minV, maxV int64, ok bool) {
	if len(data) == 0 {
		return 0, 0, false
	}
	switch data[0] {
	case schemeFOR:
		body := data[1:]
		n, k := binary.Uvarint(body)
		if k <= 0 || n == 0 {
			return 0, 0, false
		}
		body = body[k:]
		base, k2 := binary.Varint(body)
		if k2 <= 0 || len(body) <= k2 {
			return 0, 0, false
		}
		width := int(body[k2])
		if width == 0 {
			return base, base, true
		}
		if width > 62 {
			return 0, 0, false
		}
		hi := base + (int64(1)<<uint(width) - 1)
		if hi < base {
			return 0, 0, false
		}
		return base, hi, true
	case schemeRLE:
		body := data[1:]
		n, k := binary.Uvarint(body)
		if k <= 0 || n == 0 {
			return 0, 0, false
		}
		body = body[k:]
		var seen uint64
		first := true
		for seen < n {
			runLen, k1 := binary.Uvarint(body)
			if k1 <= 0 {
				return 0, 0, false
			}
			body = body[k1:]
			val, k2 := binary.Varint(body)
			if k2 <= 0 {
				return 0, 0, false
			}
			body = body[k2:]
			if first {
				minV, maxV = val, val
				first = false
			} else {
				if val < minV {
					minV = val
				}
				if val > maxV {
					maxV = val
				}
			}
			seen += runLen
		}
		return minV, maxV, !first
	case schemeRaw:
		body := data[1:]
		n, k := binary.Uvarint(body)
		if k <= 0 || n == 0 || uint64(len(body)-k) < 8*n {
			return 0, 0, false
		}
		body = body[k:]
		for i := uint64(0); i < n; i++ {
			v := int64(binary.LittleEndian.Uint64(body[8*i:]))
			if i == 0 {
				minV, maxV = v, v
			} else {
				if v < minV {
					minV = v
				}
				if v > maxV {
					maxV = v
				}
			}
		}
		return minV, maxV, true
	default:
		return 0, 0, false
	}
}

// AppendStringDict serializes a dictionary-encoded string column:
// the dictionary values followed by the FOR/RLE-packed index vector.
func AppendStringDict(dst []byte, d StringDict) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(d.Values)))
	for _, s := range d.Values {
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		dst = append(dst, s...)
	}
	idx := CompressInt64(d.Indexes, Light)
	dst = binary.AppendUvarint(dst, uint64(len(idx)))
	return append(dst, idx...)
}

// DecodeStringDictValues parses only the dictionary header of an
// AppendStringDict buffer — the unique values — returning them plus the
// still-encoded index payload. Membership and range predicates need
// nothing more, so the packed indexes stay compressed.
func DecodeStringDictValues(src []byte) (values []string, idxPayload []byte, rest []byte, err error) {
	n, k := binary.Uvarint(src)
	if k <= 0 {
		return nil, nil, nil, fmt.Errorf("compress: bad dict header")
	}
	src = src[k:]
	values = make([]string, n)
	for i := range values {
		l, k1 := binary.Uvarint(src)
		if k1 <= 0 || uint64(len(src)-k1) < l {
			return nil, nil, nil, fmt.Errorf("compress: dict value truncated")
		}
		values[i] = string(src[k1 : k1+int(l)])
		src = src[k1+int(l):]
	}
	il, k2 := binary.Uvarint(src)
	if k2 <= 0 || uint64(len(src)-k2) < il {
		return nil, nil, nil, fmt.Errorf("compress: dict indexes truncated")
	}
	return values, src[k2 : k2+int(il)], src[k2+int(il):], nil
}

// DecodeStringDict fully reverses AppendStringDict.
func DecodeStringDict(src []byte) (StringDict, []byte, error) {
	values, idxPayload, rest, err := DecodeStringDictValues(src)
	if err != nil {
		return StringDict{}, nil, err
	}
	indexes, err := DecompressInt64(idxPayload)
	if err != nil {
		return StringDict{}, nil, err
	}
	return StringDict{Values: values, Indexes: indexes}, rest, nil
}

// Int64SaturatingBounds is Int64Bounds with the full-int64 fallback: it
// always returns an interval, degrading to [MinInt64, MaxInt64] when the
// scheme cannot be bounded without decoding.
func Int64SaturatingBounds(data []byte) (int64, int64) {
	if lo, hi, ok := Int64Bounds(data); ok {
		return lo, hi
	}
	return math.MinInt64, math.MaxInt64
}
