package bench

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adaptive"
	"repro/internal/ancode"
	"repro/internal/compress"
	"repro/internal/faults"
	"repro/quack"
)

// E1: Table 1 — 30-day failure probabilities of consumer hardware.
func Table1(w io.Writer, machines int, seed int64) error {
	measured, err := faults.SimulateTable1(machines, seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Table 1: 30-day OS crash probability (Monte-Carlo, %d machines)\n", machines)
	fmt.Fprintf(w, "%-16s %-22s %-22s\n", "Failure", "Pr[1st failure]", "Pr[2nd fail | 1 fail]")
	order := []faults.Component{faults.CPU, faults.DRAM, faults.Disk}
	for _, comp := range order {
		pub := faults.Table1[comp]
		got := measured[comp]
		fmt.Fprintf(w, "%-16s 1 in %-7.0f (paper %-5s) 1 in %-6.1f (paper %s)\n",
			comp, 1/got.PFirst, fmt.Sprintf("%.0f", 1/pub.PFirst),
			1/got.PSecondGiven, fmt.Sprintf("%.1f", 1/pub.PSecondGiven))
	}
	return nil
}

// E2: Figure 1 — reactive intermediate compression under application
// memory pressure.
func Figure1(w io.Writer, values int) error {
	rng := rand.New(rand.NewSource(3))
	data := make([]int64, values)
	for i := range data {
		// Skewed measurement data (a hot set plus a long tail): light
		// bit-packing caps at the domain width, heavy entropy coding
		// exploits the skew on top of it.
		if rng.Intn(10) > 0 {
			data[i] = rng.Int63n(8)
		} else {
			data[i] = rng.Int63n(1000)
		}
	}
	const totalRAM = 1 << 30
	profile := adaptive.RampProfile(totalRAM/10, totalRAM*9/10, 4, 8, 6)
	points, err := adaptive.SimulateFigure1(adaptive.Figure1Config{
		TotalRAM:   totalRAM,
		Values:     data,
		AppProfile: profile,
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 1: reactive resource usage (RAM in MB; level chosen by the policy)")
	fmt.Fprintf(w, "%-5s %-9s %-10s %-10s %-7s %s\n", "step", "app RAM", "DBMS RAM", "total", "level", "re-encode CPU")
	mb := func(b int64) float64 { return float64(b) / (1 << 20) }
	for _, p := range points {
		fmt.Fprintf(w, "%-5d %-9.0f %-10.2f %-10.0f %-7s %v\n",
			p.Step, mb(p.AppRAM), mb(p.DBMSRAM), mb(p.TotalRAM), p.Level, p.CPU.Round(time.Microsecond))
	}
	// Shape check data for EXPERIMENTS.md: footprints per level.
	byLevel := map[compress.Level]int64{}
	for _, p := range points {
		byLevel[p.Level] = p.DBMSRAM
	}
	fmt.Fprintf(w, "footprint none=%.2fMB light=%.2fMB heavy=%.2fMB\n",
		mb(byLevel[compress.None]), mb(byLevel[compress.Light]), mb(byLevel[compress.Heavy]))
	return nil
}

// ANCodeResult carries E3 measurements.
type ANCodeResult struct {
	PlainNsPerVal    float64
	HardenedNsPerVal float64
	CheckNsPerVal    float64
	Slowdown         float64
	DetectionRate    float64
}

var ancodeSink int64

// measureNsPerOp times f with a self-calibrating repetition count
// (usable inside test binaries where nested testing.Benchmark would
// deadlock). Returns nanoseconds per call.
func measureNsPerOp(f func()) float64 {
	f() // warm up
	n := 1
	for {
		start := time.Now()
		for i := 0; i < n; i++ {
			f()
		}
		elapsed := time.Since(start)
		if elapsed >= 200*time.Millisecond {
			return float64(elapsed.Nanoseconds()) / float64(n)
		}
		n *= 4
	}
}

// ANCode (E3): overhead of AN-coded scans versus plain scans, plus
// single-bit-flip detection probability. The paper cites 1.1x-1.6x for
// this technique (AHEAD, with SIMD); the scalar Go kernels land close
// but above that band (see EXPERIMENTS.md).
func ANCode(w io.Writer, values int, seed int64) (ANCodeResult, error) {
	rng := rand.New(rand.NewSource(seed))
	plain := make([]int64, values)
	for i := range plain {
		plain[i] = rng.Int63n(1 << 20)
	}
	codec := ancode.MustNew(ancode.DefaultA)
	hardened := make([]int64, values)
	codec.EncodeSlice(hardened, plain)

	var corrupted bool
	plainNs := measureNsPerOp(func() {
		var s int64
		for _, v := range plain {
			s += v
		}
		ancodeSink = s
	})
	hardNs := measureNsPerOp(func() {
		s, corrupt := codec.SumDecoded(hardened)
		if corrupt >= 0 {
			corrupted = true
		}
		ancodeSink = s
	})
	checkNs := measureNsPerOp(func() {
		if codec.CheckSlice(hardened) >= 0 {
			corrupted = true
		}
	})
	if corrupted {
		return ANCodeResult{}, fmt.Errorf("false corruption reported on clean data")
	}

	// Detection: flip one random bit in each of many trials.
	trials := 5000
	detected := 0
	for i := 0; i < trials; i++ {
		idx := rng.Intn(values)
		bit := uint(rng.Intn(64))
		orig := hardened[idx]
		hardened[idx] ^= 1 << bit
		if !codec.Check(hardened[idx]) {
			detected++
		}
		hardened[idx] = orig
	}

	res := ANCodeResult{
		PlainNsPerVal:    plainNs / float64(values),
		HardenedNsPerVal: hardNs / float64(values),
		CheckNsPerVal:    checkNs / float64(values),
		Slowdown:         hardNs / plainNs,
		DetectionRate:    float64(detected) / float64(trials),
	}
	if w != nil {
		fmt.Fprintf(w, "E3 AN-code hardening (%d values, sum scan)\n", values)
		fmt.Fprintf(w, "plain scan:             %.2f ns/value\n", res.PlainNsPerVal)
		fmt.Fprintf(w, "AN-coded scan+decode:   %.2f ns/value\n", res.HardenedNsPerVal)
		fmt.Fprintf(w, "AN-coded check only:    %.2f ns/value\n", res.CheckNsPerVal)
		fmt.Fprintf(w, "slowdown:               %.2fx (paper band: 1.1x-1.6x with SIMD)\n", res.Slowdown)
		fmt.Fprintf(w, "single-bit-flip detection: %.2f%%\n", res.DetectionRate*100)
	}
	return res, nil
}

// TransferResult carries E4 measurements.
type TransferResult struct {
	ValueAPIRowsPerSec float64
	ChunkAPIRowsPerSec float64
	Speedup            float64
}

// Transfer (E4): exporting a large result through the value-at-a-time
// API versus the bulk chunk API (paper §5).
func Transfer(w io.Writer, rows int) (TransferResult, error) {
	db, err := quack.Open(":memory:")
	if err != nil {
		return TransferResult{}, err
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE t (a BIGINT, b DOUBLE)"); err != nil {
		return TransferResult{}, err
	}
	app, err := db.Appender("t")
	if err != nil {
		return TransferResult{}, err
	}
	for i := 0; i < rows; i++ {
		if err := app.AppendRow(int64(i), float64(i)*1.5); err != nil {
			return TransferResult{}, err
		}
	}
	if err := app.Close(); err != nil {
		return TransferResult{}, err
	}

	// Value-at-a-time export (ODBC/JDBC-style).
	start := time.Now()
	rowsRes, err := db.Query("SELECT a, b FROM t")
	if err != nil {
		return TransferResult{}, err
	}
	var sumA int64
	var sumB float64
	for rowsRes.Next() {
		var a int64
		var b float64
		if err := rowsRes.Scan(&a, &b); err != nil {
			return TransferResult{}, err
		}
		sumA += a
		sumB += b
	}
	valueDur := time.Since(start)

	// Bulk chunk export: the application becomes the root operator and
	// consumes column slices directly.
	start = time.Now()
	rowsRes, err = db.Query("SELECT a, b FROM t")
	if err != nil {
		return TransferResult{}, err
	}
	var sumA2 int64
	var sumB2 float64
	for {
		chunk := rowsRes.NextChunk()
		if chunk == nil {
			break
		}
		for _, v := range chunk.Cols[0].I64[:chunk.Len()] {
			sumA2 += v
		}
		for _, v := range chunk.Cols[1].F64[:chunk.Len()] {
			sumB2 += v
		}
	}
	chunkDur := time.Since(start)
	if sumA != sumA2 {
		return TransferResult{}, fmt.Errorf("transfer mismatch: %d vs %d", sumA, sumA2)
	}

	res := TransferResult{
		ValueAPIRowsPerSec: float64(rows) / valueDur.Seconds(),
		ChunkAPIRowsPerSec: float64(rows) / chunkDur.Seconds(),
		Speedup:            float64(valueDur) / float64(chunkDur),
	}
	if w != nil {
		fmt.Fprintf(w, "E4 result-set transfer (%d rows, 2 columns)\n", rows)
		fmt.Fprintf(w, "value-at-a-time API: %12.0f rows/s (%v)\n", res.ValueAPIRowsPerSec, valueDur)
		fmt.Fprintf(w, "bulk chunk API:      %12.0f rows/s (%v)\n", res.ChunkAPIRowsPerSec, chunkDur)
		fmt.Fprintf(w, "speedup: %.1fx\n", res.Speedup)
	}
	return res, nil
}

// BulkUpdateResult carries E5 measurements.
type BulkUpdateResult struct {
	InPlace     time.Duration
	RewriteAll  time.Duration
	RowsUpdated int64
	Speedup     float64
}

// BulkUpdate (E5): the paper's canonical wrangling query
// `UPDATE t SET d = NULL WHERE d = -999` with column-granular in-place
// updates, against the full-table-rewrite (CTAS) workaround users
// resort to without such support.
func BulkUpdate(w io.Writer, rows int) (BulkUpdateResult, error) {
	db, err := quack.Open(":memory:")
	if err != nil {
		return BulkUpdateResult{}, err
	}
	defer db.Close()
	if err := GenSalesTable(db, "t", rows, 0.3, 42); err != nil {
		return BulkUpdateResult{}, err
	}

	start := time.Now()
	n, err := db.Exec("UPDATE t SET d = NULL WHERE d = -999")
	if err != nil {
		return BulkUpdateResult{}, err
	}
	inPlace := time.Since(start)

	// Baseline: rewrite every column into a new table.
	start = time.Now()
	if _, err := db.Exec(`CREATE TABLE t2 AS
		SELECT id, region, qty, price,
		       CASE WHEN d = -999 THEN NULL ELSE d END AS d
		FROM t`); err != nil {
		return BulkUpdateResult{}, err
	}
	rewrite := time.Since(start)

	res := BulkUpdateResult{
		InPlace:     inPlace,
		RewriteAll:  rewrite,
		RowsUpdated: n,
		Speedup:     float64(rewrite) / float64(inPlace),
	}
	if w != nil {
		fmt.Fprintf(w, "E5 bulk ETL update (%d rows, 30%% missing)\n", rows)
		fmt.Fprintf(w, "column-granular in-place UPDATE: %v (%d rows updated)\n", inPlace, n)
		fmt.Fprintf(w, "full-table rewrite baseline:     %v\n", rewrite)
		fmt.Fprintf(w, "speedup: %.1fx\n", res.Speedup)
	}
	return res, nil
}

// EngineResult carries E6 measurements.
type EngineResult struct {
	Vectorized time.Duration
	RowAtATime time.Duration
	Speedup    float64
}

// Engine (E6): vectorized interpreted execution versus the
// tuple-at-a-time Volcano baseline on a Q1-style filtered aggregation.
func Engine(w io.Writer, rows int) (EngineResult, error) {
	db, err := quack.Open(":memory:")
	if err != nil {
		return EngineResult{}, err
	}
	defer db.Close()
	if err := GenSalesTable(db, "t", rows, 0.0, 7); err != nil {
		return EngineResult{}, err
	}
	const q = "SELECT region, count(*), sum(qty), avg(price), sum(price * CAST(qty AS DOUBLE)) FROM t WHERE qty > 10 AND price < 900.0 GROUP BY region"

	start := time.Now()
	vecRows, err := db.Query(q)
	if err != nil {
		return EngineResult{}, err
	}
	vecDur := time.Since(start)

	start = time.Now()
	rowRows, err := db.Internal().NewSession().ExecuteRowEngine(q)
	if err != nil {
		return EngineResult{}, err
	}
	rowDur := time.Since(start)

	if vecRows.NumRows() != int64(len(rowRows)) {
		return EngineResult{}, fmt.Errorf("engines disagree: %d vs %d groups", vecRows.NumRows(), len(rowRows))
	}
	res := EngineResult{
		Vectorized: vecDur,
		RowAtATime: rowDur,
		Speedup:    float64(rowDur) / float64(vecDur),
	}
	if w != nil {
		fmt.Fprintf(w, "E6 execution engines (%d rows, filtered group-by)\n", rows)
		fmt.Fprintf(w, "vectorized (1024-row chunks): %v\n", vecDur)
		fmt.Fprintf(w, "tuple-at-a-time Volcano:      %v\n", rowDur)
		fmt.Fprintf(w, "speedup: %.1fx\n", res.Speedup)
	}
	return res, nil
}

// JoinPoint is one row of the E7 sweep.
type JoinPoint struct {
	Strategy string
	Limit    int64
	Duration time.Duration
	PeakRAM  int64
	Rows     int64
	Err      string
}

// Joins (E7): hash join versus out-of-core merge join — the paper's
// RAM/CPU/IO trade (§4). The hash join is fast but needs the whole build
// side resident; the merge join bounds its residency to the memory
// budget by spilling sorted runs; Auto degrades from hash to merge when
// the build does not fit.
func Joins(w io.Writer, buildRows, probeRows int) ([]JoinPoint, error) {
	var out []JoinPoint
	run := func(strategy quack.JoinStrategy, label string, limit int64) (JoinPoint, error) {
		db, err := quack.Open(":memory:", quack.WithMemoryLimit(limit))
		if err != nil {
			return JoinPoint{}, err
		}
		defer db.Close()
		if err := GenKeyedTable(db, "build", buildRows, int64(buildRows), 1); err != nil {
			return JoinPoint{}, err
		}
		if err := GenKeyedTable(db, "probe", probeRows, int64(buildRows), 2); err != nil {
			return JoinPoint{}, err
		}
		db.Internal().Pool().ResetPeak()
		tx, err := db.Begin()
		if err != nil {
			return JoinPoint{}, err
		}
		defer tx.Rollback()
		tx.SetJoinStrategy(strategy)
		start := time.Now()
		rows, err := tx.Query("SELECT count(*) FROM probe JOIN build ON probe.k = build.k")
		point := JoinPoint{Strategy: label, Limit: limit, Duration: time.Since(start)}
		point.PeakRAM = db.Internal().Pool().Peak()
		if err != nil {
			point.Err = err.Error()
		} else {
			rows.Next()
			var n int64
			rows.Scan(&n)
			point.Rows = n
		}
		out = append(out, point)
		return point, nil
	}

	// Baseline: unconstrained hash join establishes the true footprint.
	base, err := run(quack.JoinHash, "hash", 0)
	if err != nil {
		return nil, err
	}
	half := base.PeakRAM / 2
	quarter := base.PeakRAM / 4
	for _, p := range []struct {
		strategy quack.JoinStrategy
		label    string
		limit    int64
	}{
		{quack.JoinMerge, "merge", 0},
		{quack.JoinMerge, "merge", half},
		{quack.JoinMerge, "merge", quarter},
		{quack.JoinAuto, "auto", 0},
		{quack.JoinAuto, "auto", half},
		{quack.JoinAuto, "auto", quarter},
		{quack.JoinHash, "hash", half}, // forced hash under pressure
	} {
		if _, err := run(p.strategy, p.label, p.limit); err != nil {
			return nil, err
		}
	}
	if w != nil {
		fmt.Fprintf(w, "E7 join strategies (%d build x %d probe rows)\n", buildRows, probeRows)
		fmt.Fprintf(w, "%-8s %-12s %-12s %-12s %-10s %s\n", "strategy", "mem limit", "time", "peak RAM", "rows", "note")
		for _, p := range out {
			lim := "unlimited"
			if p.Limit > 0 {
				lim = fmt.Sprintf("%.0fMB", float64(p.Limit)/(1<<20))
			}
			note := p.Err
			if len(note) > 48 {
				note = note[:48]
			}
			fmt.Fprintf(w, "%-8s %-12s %-12v %-12s %-10d %s\n",
				p.Strategy, lim, p.Duration.Round(time.Millisecond),
				fmt.Sprintf("%.1fMB", float64(p.PeakRAM)/(1<<20)), p.Rows, note)
		}
	}
	return out, nil
}

// ChecksumResult carries E8 measurements.
type ChecksumResult struct {
	WithVerification    time.Duration
	WithoutVerification time.Duration
	Overhead            float64
}

// Checksum (E8): cold-scan cost of verify-on-read block checksums.
func Checksum(w io.Writer, dir string, rows int) (ChecksumResult, error) {
	path := dir + "/e8.qdb"
	db, err := quack.Open(path)
	if err != nil {
		return ChecksumResult{}, err
	}
	if err := GenSalesTable(db, "t", rows, 0.1, 5); err != nil {
		db.Close()
		return ChecksumResult{}, err
	}
	if err := db.Close(); err != nil { // checkpoint to disk
		return ChecksumResult{}, err
	}

	scan := func(verify bool) (time.Duration, error) {
		opts := []quack.Option{}
		if !verify {
			opts = append(opts, quack.WithoutChecksumVerification())
		}
		db, err := quack.Open(path, opts...)
		if err != nil {
			return 0, err
		}
		defer db.Close()
		start := time.Now()
		rowsRes, err := db.Query("SELECT sum(qty), sum(price) FROM t")
		if err != nil {
			return 0, err
		}
		rowsRes.Next()
		return time.Since(start), nil
	}
	withV, err := scan(true)
	if err != nil {
		return ChecksumResult{}, err
	}
	withoutV, err := scan(false)
	if err != nil {
		return ChecksumResult{}, err
	}
	res := ChecksumResult{
		WithVerification:    withV,
		WithoutVerification: withoutV,
		Overhead:            float64(withV)/float64(withoutV) - 1,
	}
	if w != nil {
		fmt.Fprintf(w, "E8 block checksum verification (%d rows, cold scan from disk)\n", rows)
		fmt.Fprintf(w, "verify on read:  %v\n", withV)
		fmt.Fprintf(w, "no verification: %v\n", withoutV)
		fmt.Fprintf(w, "overhead: %.1f%%\n", res.Overhead*100)
	}
	return res, nil
}

// DashboardResult carries E9 measurements.
type DashboardResult struct {
	Queries      int64
	Updates      int64
	QueryP50     time.Duration
	QueryMax     time.Duration
	Inconsistent int64
	Conflicts    int64
}

// Dashboard (E9): concurrent OLAP reads during ETL updates (§2's
// dashboard scenario). Readers must keep making progress with
// consistent snapshots while writers commit.
func Dashboard(w io.Writer, rows int, duration time.Duration) (DashboardResult, error) {
	db, err := quack.Open(":memory:")
	if err != nil {
		return DashboardResult{}, err
	}
	defer db.Close()
	if err := GenSalesTable(db, "t", rows, 0.0, 9); err != nil {
		return DashboardResult{}, err
	}

	var res DashboardResult
	var queries, updates, inconsistent, conflicts atomic.Int64
	var latMu sync.Mutex
	var latencies []time.Duration

	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ { // ETL writers
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				_, err := db.Exec("UPDATE t SET qty = qty + 1 WHERE id % 2 = ?", int64(i))
				if err != nil {
					conflicts.Add(1)
					continue
				}
				updates.Add(1)
			}
		}(i)
	}
	readers := runtime.GOMAXPROCS(0)
	if readers > 4 {
		readers = 4
	}
	for i := 0; i < readers; i++ { // OLAP readers
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				start := time.Now()
				rowsRes, err := db.Query("SELECT region, sum(qty), count(*) FROM t GROUP BY region")
				if err != nil {
					inconsistent.Add(1)
					continue
				}
				var total int64
				for {
					c := rowsRes.NextChunk()
					if c == nil {
						break
					}
					for r := 0; r < c.Len(); r++ {
						total += c.Cols[2].I64[r]
					}
				}
				if total != int64(rows) {
					inconsistent.Add(1)
				}
				lat := time.Since(start)
				latMu.Lock()
				latencies = append(latencies, lat)
				latMu.Unlock()
				queries.Add(1)
			}
		}()
	}
	wg.Wait()

	res.Queries = queries.Load()
	res.Updates = updates.Load()
	res.Inconsistent = inconsistent.Load()
	res.Conflicts = conflicts.Load()
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if len(latencies) > 0 {
		res.QueryP50 = latencies[len(latencies)/2]
		res.QueryMax = latencies[len(latencies)-1]
	}
	if w != nil {
		fmt.Fprintf(w, "E9 dashboard: concurrent OLAP + ETL (%d rows, %v)\n", rows, duration)
		fmt.Fprintf(w, "OLAP queries completed: %d (p50 %v, max %v)\n", res.Queries, res.QueryP50, res.QueryMax)
		fmt.Fprintf(w, "ETL update txns committed: %d (%d write-write conflicts retried)\n", res.Updates, res.Conflicts)
		fmt.Fprintf(w, "inconsistent snapshots observed: %d\n", res.Inconsistent)
	}
	return res, nil
}
