package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/quack"
)

// ServePoint is one row of the serve-mode sweep: N concurrent sessions
// sharing one database, each running the mixed workload through its own
// connection against the engine-wide scheduler and admission gate.
// Durations are nanoseconds in JSON, like the scaling artifact.
type ServePoint struct {
	Sessions int           `json:"sessions"`
	Queries  int           `json:"queries"` // total completed across sessions
	QPS      float64       `json:"qps"`
	P50      time.Duration `json:"p50_ns"`
	P99      time.Duration `json:"p99_ns"`
}

// serveQueries is the mixed per-session workload: a selective
// scan+filter, a grouped aggregation, and a filtered aggregate — small
// result sets so the sweep times the engine, not client rendering, and
// every session's results can be checked against the sequential answer.
var serveQueries = []string{
	"SELECT count(*), sum(qty) FROM t WHERE qty > 98 AND price < 5.0",
	"SELECT region, count(*), sum(qty), avg(price), min(price) FROM t GROUP BY region",
	"SELECT min(price), max(price), sum(qty) FROM t WHERE region = 'emea' AND qty > 50",
	"SELECT count(*) FROM t WHERE price > 99.0",
}

// serveItersPerSession is how many queries each session issues. Fixed
// per session (not per sweep) so per-query latency percentiles stay
// comparable across session counts while total load scales with N.
const serveItersPerSession = 24

// Serve measures multi-session throughput: for each session count it
// opens that many connections on one shared database and has each run
// the mixed workload concurrently, reporting aggregate QPS plus p50/p99
// per-query latency. Every result is verified byte-identical to the
// answers computed before the sweep — concurrency must not change
// results — so a divergence fails the benchmark rather than skewing it.
// The second return is the engine's metrics-registry snapshot taken
// after the sweep (scheduler, admission, scan and pool counters), so
// the JSON artifact records how the engine behaved, not just how fast.
func Serve(w io.Writer, rows int, threads int, sessionCounts []int) ([]ServePoint, map[string]int64, error) {
	if len(sessionCounts) == 0 {
		sessionCounts = []int{1, 4, 16}
	}
	db, err := quack.Open(":memory:", quack.WithThreads(threads))
	if err != nil {
		return nil, nil, err
	}
	defer db.Close()
	if err := GenSalesTable(db, "t", rows, 0.0, 13); err != nil {
		return nil, nil, err
	}

	render := func(c *quack.Conn, q string) (string, error) {
		res, err := c.Query(q)
		if err != nil {
			return "", err
		}
		var out strings.Builder
		for {
			chunk := res.NextChunk()
			if chunk == nil {
				return out.String(), nil
			}
			for r := 0; r < chunk.Len(); r++ {
				fmt.Fprintln(&out, chunk.Row(r))
			}
		}
	}
	want := make([]string, len(serveQueries))
	warm := db.Conn()
	for i, q := range serveQueries {
		if want[i], err = render(warm, q); err != nil {
			return nil, nil, err
		}
	}

	var out []ServePoint
	for _, sessions := range sessionCounts {
		latencies := make([][]time.Duration, sessions)
		errs := make([]error, sessions)
		var wg sync.WaitGroup
		start := time.Now()
		for s := 0; s < sessions; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				conn := db.Conn()
				for k := 0; k < serveItersPerSession; k++ {
					i := (s + k) % len(serveQueries)
					qStart := time.Now()
					got, err := render(conn, serveQueries[i])
					if err != nil {
						errs[s] = err
						return
					}
					latencies[s] = append(latencies[s], time.Since(qStart))
					if got != want[i] {
						errs[s] = fmt.Errorf("session %d: %q diverged from the sequential answer", s, serveQueries[i])
						return
					}
				}
			}(s)
		}
		wg.Wait()
		wall := time.Since(start)
		for _, err := range errs {
			if err != nil {
				return nil, nil, err
			}
		}
		var all []time.Duration
		for _, l := range latencies {
			all = append(all, l...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		pct := func(p float64) time.Duration {
			i := int(p * float64(len(all)-1))
			return all[i]
		}
		out = append(out, ServePoint{
			Sessions: sessions,
			Queries:  len(all),
			QPS:      float64(len(all)) / wall.Seconds(),
			P50:      pct(0.50),
			P99:      pct(0.99),
		})
	}

	metrics := db.Metrics()
	if w != nil {
		fmt.Fprintf(w, "serve: %d sessions-axis sweep (%d rows, %d pool workers, %d queries/session; results verified identical to sequential)\n",
			len(sessionCounts), rows, threads, serveItersPerSession)
		fmt.Fprintf(w, "%-10s %-9s %-10s %-12s %s\n", "sessions", "queries", "qps", "p50", "p99")
		for _, p := range out {
			fmt.Fprintf(w, "%-10d %-9d %-10.1f %-12v %v\n",
				p.Sessions, p.Queries, p.QPS, p.P50.Round(time.Microsecond), p.P99.Round(time.Microsecond))
		}
		fmt.Fprintf(w, "engine: %d sched steps (wait p99 %v), %d admitted, %d segments scanned, %d skipped\n",
			metrics["sched_steps_total"],
			time.Duration(metrics["sched_step_wait_p99_ns"]).Round(time.Microsecond),
			metrics["admission_admitted_total"],
			metrics["scan_segments_scanned_total"],
			metrics["scan_segments_skipped_total"])
	}
	return out, metrics, nil
}

// CompareServe gates the serve trajectory on throughput only: a session
// count regresses when its fresh QPS falls more than tolerance below
// the committed baseline's. Latency percentiles are reported but not
// gated — on shared CI runners tail latency is far noisier than
// aggregate throughput. Session counts absent from the baseline pass.
func CompareServe(baseline, fresh []ServePoint, tolerance float64) []string {
	freshBy := map[int]ServePoint{}
	for _, p := range fresh {
		freshBy[p.Sessions] = p
	}
	var regressions []string
	for _, b := range baseline {
		if b.QPS <= 0 {
			continue
		}
		f, ok := freshBy[b.Sessions]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("serve/%d-sessions: missing from the fresh sweep (baseline %.1f qps)", b.Sessions, b.QPS))
			continue
		}
		if f.QPS < b.QPS*(1-tolerance) {
			regressions = append(regressions, fmt.Sprintf(
				"serve/%d-sessions: %.1f qps vs baseline %.1f (-%.0f%%, tolerance -%.0f%%)",
				b.Sessions, f.QPS, b.QPS, (1-f.QPS/b.QPS)*100, tolerance*100))
		}
	}
	return regressions
}
