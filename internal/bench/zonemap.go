package bench

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/quack"
)

// SelectivityPoint is one row of the zone-map selective-filter sweep:
// the same clustered-range query timed with segment skipping on and off
// at one selectivity. The JSON shape rides in the CI bench artifact and
// BENCH_BASELINE.json next to the scaling points.
type SelectivityPoint struct {
	Label           string        `json:"label"`
	Selectivity     float64       `json:"selectivity"`
	ZoneOnDur       time.Duration `json:"zone_on_ns"`
	ZoneOffDur      time.Duration `json:"zone_off_ns"`
	Improvement     float64       `json:"improvement"` // zone_off / zone_on
	SegmentsSkipped int64         `json:"segments_skipped"`
	SegmentsScanned int64         `json:"segments_scanned"`
}

// Durations returns the point's gated durations keyed by the names the
// bench gate reports (only the zone-on path is gated; the zone-off
// numbers exist to report the improvement, not to be protected).
func (p SelectivityPoint) Durations() map[string]time.Duration {
	return map[string]time.Duration{"filter_" + p.Label: p.ZoneOnDur}
}

// zoneMapSelectivities are the swept filter selectivities: the paper's
// dashboard-style point lookups (0.1%), a narrow analytical range (1%),
// and a half-table scan where zone maps can refute almost nothing and
// must not cost anything.
var zoneMapSelectivities = []struct {
	label string
	frac  float64
}{
	{"0.1pct", 0.001},
	{"1pct", 0.01},
	{"50pct", 0.5},
}

// ZoneMapFilter measures zone-map segment skipping on clustered-range
// predicates over the append-ordered sales table: each selectivity's
// aggregate query is timed best-of-5 with skipping enabled and disabled,
// results are verified identical both ways, and the skip counters report
// how many segments the pushed predicate refuted.
func ZoneMapFilter(w io.Writer, rows, threads int) ([]SelectivityPoint, error) {
	db, err := quack.Open(":memory:", quack.WithThreads(threads))
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if err := GenSalesTable(db, "t", rows, 0.0, 17); err != nil {
		return nil, err
	}

	render := func(q string) (string, error) {
		res, err := db.Query(q)
		if err != nil {
			return "", err
		}
		var out strings.Builder
		for {
			c := res.NextChunk()
			if c == nil {
				return out.String(), nil
			}
			for r := 0; r < c.Len(); r++ {
				fmt.Fprintln(&out, c.Row(r))
			}
		}
	}
	timeQuery := func(q string) (time.Duration, error) {
		best := time.Duration(0)
		for rep := 0; rep < 5; rep++ {
			start := time.Now()
			res, err := db.Query(q)
			if err != nil {
				return 0, err
			}
			for res.NextChunk() != nil {
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		return best, nil
	}
	counter := func(name string) (int64, error) {
		s, err := render("PRAGMA " + name)
		if err != nil {
			return 0, err
		}
		return strconv.ParseInt(strings.Trim(strings.TrimSpace(s), "[]"), 10, 64)
	}
	setZoneMaps := func(on int) error {
		_, err := db.Exec(fmt.Sprintf("PRAGMA zone_maps=%d", on))
		return err
	}

	var out []SelectivityPoint
	for _, sel := range zoneMapSelectivities {
		// Center the range so both tails are refutable.
		n := int64(float64(rows) * sel.frac)
		if n < 1 {
			n = 1
		}
		lo := (int64(rows) - n) / 2
		q := fmt.Sprintf("SELECT count(*), sum(qty), sum(price) FROM t WHERE id >= %d AND id < %d", lo, lo+n)

		if err := setZoneMaps(1); err != nil {
			return nil, err
		}
		wantOn, err := render(q)
		if err != nil {
			return nil, err
		}
		skippedBefore, err := counter("segments_skipped")
		if err != nil {
			return nil, err
		}
		scannedBefore, err := counter("segments_scanned")
		if err != nil {
			return nil, err
		}
		if _, err := render(q); err != nil { // one counted pass
			return nil, err
		}
		skipped, err := counter("segments_skipped")
		if err != nil {
			return nil, err
		}
		scanned, err := counter("segments_scanned")
		if err != nil {
			return nil, err
		}
		onDur, err := timeQuery(q)
		if err != nil {
			return nil, err
		}

		if err := setZoneMaps(0); err != nil {
			return nil, err
		}
		wantOff, err := render(q)
		if err != nil {
			return nil, err
		}
		if wantOff != wantOn {
			return nil, fmt.Errorf("zone-map skipping changes %s results", sel.label)
		}
		offDur, err := timeQuery(q)
		if err != nil {
			return nil, err
		}
		if err := setZoneMaps(1); err != nil {
			return nil, err
		}

		out = append(out, SelectivityPoint{
			Label:           sel.label,
			Selectivity:     sel.frac,
			ZoneOnDur:       onDur,
			ZoneOffDur:      offDur,
			Improvement:     float64(offDur) / float64(onDur),
			SegmentsSkipped: skipped - skippedBefore,
			SegmentsScanned: scanned - scannedBefore,
		})
	}

	if w != nil {
		fmt.Fprintf(w, "zone-map selective filters (%d rows, %d threads; results verified identical with skipping on and off)\n", rows, threads)
		fmt.Fprintf(w, "%-12s %-14s %-14s %-12s %s\n", "selectivity", "zone maps on", "zone maps off", "improvement", "segments skipped/touched")
		for _, p := range out {
			fmt.Fprintf(w, "%-12s %-14v %-14v %-12s %d/%d\n",
				p.Label, p.ZoneOnDur.Round(time.Microsecond), p.ZoneOffDur.Round(time.Microsecond),
				fmt.Sprintf("%.2fx", p.Improvement), p.SegmentsSkipped, p.SegmentsSkipped+p.SegmentsScanned)
		}
	}
	return out, nil
}

// CompareSelective gates the zone-on filter durations like
// CompareScaling gates the scaling workloads: a regression line for
// every selectivity whose fresh zone-on duration is more than tolerance
// slower than the committed baseline's. Labels absent from the baseline
// (newly added) pass; the zone-off column is informational and ungated.
func CompareSelective(baseline, fresh []SelectivityPoint, tolerance float64) []string {
	base := map[string]time.Duration{}
	for _, p := range baseline {
		if p.ZoneOnDur > 0 {
			base[p.Label] = p.ZoneOnDur
		}
	}
	var regressions []string
	for _, p := range fresh {
		b, ok := base[p.Label]
		if !ok {
			continue
		}
		if float64(p.ZoneOnDur) > float64(b)*(1+tolerance) {
			regressions = append(regressions, fmt.Sprintf(
				"filter_%s: %v vs baseline %v (+%.0f%%, tolerance +%.0f%%)",
				p.Label, p.ZoneOnDur.Round(time.Microsecond), b.Round(time.Microsecond),
				(float64(p.ZoneOnDur)/float64(b)-1)*100, tolerance*100))
		}
	}
	labels := make([]string, 0, len(base))
	for label := range base {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	for _, label := range labels {
		found := false
		for _, p := range fresh {
			if p.Label == label {
				found = true
				break
			}
		}
		if !found {
			regressions = append(regressions, fmt.Sprintf("filter_%s: missing from the fresh sweep", label))
		}
	}
	return regressions
}
