package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/quack"
)

// SelectivityPoint is one row of the zone-map selective-filter sweep:
// the same clustered-range query timed with segment skipping on and off
// at one selectivity, plus the cold-file encoded-execution legs (filter
// kernels over the compressed segments vs. full decode). The JSON shape
// rides in the CI bench artifact and BENCH_BASELINE.json next to the
// scaling points.
type SelectivityPoint struct {
	Label           string        `json:"label"`
	Selectivity     float64       `json:"selectivity"`
	ZoneOnDur       time.Duration `json:"zone_on_ns"`
	ZoneOffDur      time.Duration `json:"zone_off_ns"`
	Improvement     float64       `json:"improvement"` // zone_off / zone_on
	SegmentsSkipped int64         `json:"segments_skipped"`
	SegmentsScanned int64         `json:"segments_scanned"`

	// Encoded-execution legs, measured against a checkpointed file
	// reopened cold so the segments are actually compressed. EncOnDur
	// runs the selection kernels over the encoded payloads with late
	// materialization; EncOffDur decodes the surviving segments fully.
	EncOnDur        time.Duration `json:"enc_on_ns,omitempty"`
	EncOffDur       time.Duration `json:"enc_off_ns,omitempty"`
	EncImprovement  float64       `json:"enc_improvement,omitempty"` // enc_off / enc_on
	SegmentsEncoded int64         `json:"segments_encoded,omitempty"`
}

// Durations returns the point's gated durations keyed by the names the
// bench gate reports (the zone-on and encoded-on paths are gated; the
// off legs exist to report the improvement, not to be protected).
func (p SelectivityPoint) Durations() map[string]time.Duration {
	out := map[string]time.Duration{"filter_" + p.Label: p.ZoneOnDur}
	if p.EncOnDur > 0 {
		out["filter_enc_"+p.Label] = p.EncOnDur
	}
	return out
}

// zoneMapSelectivities are the swept filter selectivities: the paper's
// dashboard-style point lookups (0.1%), a narrow analytical range (1%),
// and a half-table scan where zone maps can refute almost nothing and
// must not cost anything.
var zoneMapSelectivities = []struct {
	label string
	frac  float64
}{
	{"0.1pct", 0.001},
	{"1pct", 0.01},
	{"50pct", 0.5},
}

// render drains a query into a comparable string.
func render(db *quack.DB, q string) (string, error) {
	res, err := db.Query(q)
	if err != nil {
		return "", err
	}
	var out strings.Builder
	for {
		c := res.NextChunk()
		if c == nil {
			return out.String(), nil
		}
		for r := 0; r < c.Len(); r++ {
			fmt.Fprintln(&out, c.Row(r))
		}
	}
}

// timeQuery reports the best-of-5 wall time of draining q.
func timeQuery(db *quack.DB, q string) (time.Duration, error) {
	best := time.Duration(0)
	for rep := 0; rep < 5; rep++ {
		start := time.Now()
		res, err := db.Query(q)
		if err != nil {
			return 0, err
		}
		for res.NextChunk() != nil {
		}
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

func counter(db *quack.DB, name string) (int64, error) {
	s, err := render(db, "PRAGMA "+name)
	if err != nil {
		return 0, err
	}
	return strconv.ParseInt(strings.Trim(strings.TrimSpace(s), "[]"), 10, 64)
}

// selQuery centers the clustered range so both tails are refutable.
func selQuery(rows int, frac float64) string {
	n := int64(float64(rows) * frac)
	if n < 1 {
		n = 1
	}
	lo := (int64(rows) - n) / 2
	return fmt.Sprintf("SELECT count(*), sum(qty), sum(price) FROM t WHERE id >= %d AND id < %d", lo, lo+n)
}

// encQuery is the encoded-execution sweep's predicate: d is uniform in
// [0, 10000) with no append-order clustering, so zone maps refute
// nothing and every segment survives to the scan. The selective work —
// comparing the bit-packed frame-of-reference payload against the
// rewritten constant and materializing only the matches — is then done
// entirely by the kernels, which is the case the sweep is measuring
// (the clustered queries above already collapse under segment skipping
// before the kernels could matter).
func encQuery(frac float64) string {
	hi := int64(10_000 * frac)
	if hi < 10 {
		hi = 10
	}
	return fmt.Sprintf("SELECT count(*), sum(qty), sum(price) FROM t WHERE d < %d", hi)
}

// ZoneMapFilter measures zone-map segment skipping on clustered-range
// predicates over the append-ordered sales table: each selectivity's
// aggregate query is timed best-of-5 with skipping enabled and disabled,
// results are verified identical both ways, and the skip counters report
// how many segments the pushed predicate refuted. A second sweep over a
// checkpointed file reopened cold then times the same queries with
// encoded execution on (selection kernels over the compressed segments,
// only surviving rows materialized) and off (surviving segments decoded
// in full), again verifying identical results.
func ZoneMapFilter(w io.Writer, rows, threads int) ([]SelectivityPoint, error) {
	db, err := quack.Open(":memory:", quack.WithThreads(threads))
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if err := GenSalesTable(db, "t", rows, 0.0, 17); err != nil {
		return nil, err
	}

	setZoneMaps := func(on int) error {
		_, err := db.Exec(fmt.Sprintf("PRAGMA zone_maps=%d", on))
		return err
	}

	var out []SelectivityPoint
	for _, sel := range zoneMapSelectivities {
		q := selQuery(rows, sel.frac)

		if err := setZoneMaps(1); err != nil {
			return nil, err
		}
		wantOn, err := render(db, q)
		if err != nil {
			return nil, err
		}
		skippedBefore, err := counter(db, "segments_skipped")
		if err != nil {
			return nil, err
		}
		scannedBefore, err := counter(db, "segments_scanned")
		if err != nil {
			return nil, err
		}
		if _, err := render(db, q); err != nil { // one counted pass
			return nil, err
		}
		skipped, err := counter(db, "segments_skipped")
		if err != nil {
			return nil, err
		}
		scanned, err := counter(db, "segments_scanned")
		if err != nil {
			return nil, err
		}
		onDur, err := timeQuery(db, q)
		if err != nil {
			return nil, err
		}

		if err := setZoneMaps(0); err != nil {
			return nil, err
		}
		wantOff, err := render(db, q)
		if err != nil {
			return nil, err
		}
		if wantOff != wantOn {
			return nil, fmt.Errorf("zone-map skipping changes %s results", sel.label)
		}
		offDur, err := timeQuery(db, q)
		if err != nil {
			return nil, err
		}
		if err := setZoneMaps(1); err != nil {
			return nil, err
		}

		out = append(out, SelectivityPoint{
			Label:           sel.label,
			Selectivity:     sel.frac,
			ZoneOnDur:       onDur,
			ZoneOffDur:      offDur,
			Improvement:     float64(offDur) / float64(onDur),
			SegmentsSkipped: skipped - skippedBefore,
			SegmentsScanned: scanned - scannedBefore,
		})
	}

	if err := encodedFilterSweep(out, rows, threads); err != nil {
		return nil, err
	}

	if w != nil {
		fmt.Fprintf(w, "zone-map selective filters (%d rows, %d threads; results verified identical with skipping on and off)\n", rows, threads)
		fmt.Fprintf(w, "%-12s %-14s %-14s %-12s %s\n", "selectivity", "zone maps on", "zone maps off", "improvement", "segments skipped/touched")
		for _, p := range out {
			fmt.Fprintf(w, "%-12s %-14v %-14v %-12s %d/%d\n",
				p.Label, p.ZoneOnDur.Round(time.Microsecond), p.ZoneOffDur.Round(time.Microsecond),
				fmt.Sprintf("%.2fx", p.Improvement), p.SegmentsSkipped, p.SegmentsSkipped+p.SegmentsScanned)
		}
		fmt.Fprintf(w, "encoded execution, cold file (results verified identical with kernels on and off)\n")
		fmt.Fprintf(w, "%-12s %-14s %-14s %-12s %s\n", "selectivity", "encoded on", "encoded off", "improvement", "segments encoded")
		for _, p := range out {
			fmt.Fprintf(w, "%-12s %-14v %-14v %-12s %d\n",
				p.Label, p.EncOnDur.Round(time.Microsecond), p.EncOffDur.Round(time.Microsecond),
				fmt.Sprintf("%.2fx", p.EncImprovement), p.SegmentsEncoded)
		}
	}
	return out, nil
}

// encodedFilterSweep fills the encoded-execution legs of the sweep. The
// sales table is checkpointed into a file once; every selectivity then
// reopens it cold and measures the encoded path FIRST — a decoded scan
// installs materialized columns (a column is encoded or decoded, never
// both), so the order is what keeps the segments compressed for the
// kernel leg. The off-leg afterwards decodes the survivors and re-times
// the same query over materialized columns.
func encodedFilterSweep(points []SelectivityPoint, rows, threads int) error {
	dir, err := os.MkdirTemp("", "quack-bench-enc-*")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(dir) }()
	path := filepath.Join(dir, "sales.qdb")

	fdb, err := quack.Open(path, quack.WithThreads(threads))
	if err != nil {
		return err
	}
	if err := GenSalesTable(fdb, "t", rows, 0.0, 17); err != nil {
		fdb.Close()
		return err
	}
	if err := fdb.Close(); err != nil { // checkpoint compresses the segments
		return err
	}

	for i := range points {
		q := encQuery(points[i].Selectivity)
		db, err := quack.Open(path, quack.WithThreads(threads))
		if err != nil {
			return err
		}
		if _, err := db.Exec("PRAGMA zone_maps=1"); err != nil {
			db.Close()
			return err
		}
		if _, err := db.Exec("PRAGMA encoded_exec=1"); err != nil {
			db.Close()
			return err
		}
		// First pass loads the column chains (and is the counted pass);
		// the timed passes then run over resident compressed payloads.
		wantOn, err := render(db, q)
		if err != nil {
			db.Close()
			return err
		}
		encoded, err := counter(db, "segments_encoded")
		if err != nil {
			db.Close()
			return err
		}
		encOn, err := timeQuery(db, q)
		if err != nil {
			db.Close()
			return err
		}

		if _, err := db.Exec("PRAGMA encoded_exec=0"); err != nil {
			db.Close()
			return err
		}
		wantOff, err := render(db, q) // decodes and installs the survivors
		if err != nil {
			db.Close()
			return err
		}
		if wantOff != wantOn {
			db.Close()
			return fmt.Errorf("encoded execution changes %s results", points[i].Label)
		}
		encOff, err := timeQuery(db, q)
		if err != nil {
			db.Close()
			return err
		}
		db.Close()

		points[i].EncOnDur = encOn
		points[i].EncOffDur = encOff
		points[i].EncImprovement = float64(encOff) / float64(encOn)
		points[i].SegmentsEncoded = encoded
	}
	return nil
}

// CompareSelective gates the zone-on and encoded-on filter durations
// like CompareScaling gates the scaling workloads: a regression line for
// every selectivity whose fresh gated duration is more than tolerance
// slower than the committed baseline's. Labels absent from the baseline
// (newly added) pass; the off columns are informational and ungated.
func CompareSelective(baseline, fresh []SelectivityPoint, tolerance float64) []string {
	base := map[string]time.Duration{}
	for _, p := range baseline {
		for k, d := range p.Durations() {
			if d > 0 {
				base[k] = d
			}
		}
	}
	freshDur := map[string]time.Duration{}
	for _, p := range fresh {
		for k, d := range p.Durations() {
			if d > 0 {
				freshDur[k] = d
			}
		}
	}
	var regressions []string
	labels := make([]string, 0, len(base))
	for label := range base {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	for _, label := range labels {
		b := base[label]
		f, ok := freshDur[label]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: missing from the fresh sweep", label))
			continue
		}
		if float64(f) > float64(b)*(1+tolerance) {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %v vs baseline %v (+%.0f%%, tolerance +%.0f%%)",
				label, f.Round(time.Microsecond), b.Round(time.Microsecond),
				(float64(f)/float64(b)-1)*100, tolerance*100))
		}
	}
	return regressions
}
