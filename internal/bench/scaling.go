package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/quack"
)

// ScalingPoint is one row of the E10 morsel-parallelism sweep. The JSON
// shape is the CI bench-trajectory artifact: durations in nanoseconds,
// speedups relative to the sweep's 1-thread baseline.
type ScalingPoint struct {
	Threads       int           `json:"threads"`
	ScanDur       time.Duration `json:"scan_ns"`
	AggDur        time.Duration `json:"agg_ns"`
	SortDur       time.Duration `json:"sort_ns"`
	WindowDur     time.Duration `json:"window_ns"`
	ScanSpeedup   float64       `json:"scan_speedup"` // vs the 1-thread baseline
	AggSpeedup    float64       `json:"agg_speedup"`
	SortSpeedup   float64       `json:"sort_speedup"`
	WindowSpeedup float64       `json:"window_speedup"`
}

// scalingScanQuery is scan-and-filter bound with a tiny result: it
// measures the parallel pipeline itself, not result materialization.
const scalingScanQuery = "SELECT id, qty, price FROM t WHERE qty > 98 AND price < 10.0"

// scalingAggQuery is the paper-style grouped aggregation the morsel
// design targets: worker-local hash tables merged at the breaker.
const scalingAggQuery = "SELECT region, count(*), sum(qty), avg(price), min(price), max(price) FROM t GROUP BY region"

// scalingSortQuery is the parallel ORDER BY workload: per-worker sorted
// runs k-way merged at the breaker. The tie-heavy leading key makes the
// hidden (morsel, row) tiebreak carry the determinism guarantee; the
// full result is drained so the serial merge phase stays on the clock.
const scalingSortQuery = "SELECT id, qty, price FROM t ORDER BY qty DESC, price, id"

// scalingWindowQuery is the partitioned analytics workload: per-worker
// sorted runs feed the partition cutter and the frames evaluate on the
// exchange pool — ranking and a running sum per region.
const scalingWindowQuery = "SELECT id, row_number() OVER (PARTITION BY region ORDER BY qty DESC, id), sum(price) OVER (PARTITION BY region ORDER BY qty DESC, id) FROM t"

// Scaling (E10) measures the morsel-driven engine's speedup over the
// single-threaded baseline on one dataset: a filtered scan pipeline and
// a grouped aggregation, each at every requested worker count. Results
// are checked to be row-for-row identical across thread counts — the
// engine's determinism guarantee — before any timing is reported.
func Scaling(w io.Writer, rows int, threadCounts []int) ([]ScalingPoint, error) {
	if len(threadCounts) == 0 {
		threadCounts = []int{1, 2, 4, 8}
	}
	db, err := quack.Open(":memory:", quack.WithThreads(1))
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if err := GenSalesTable(db, "t", rows, 0.0, 11); err != nil {
		return nil, err
	}

	render := func(q string) (string, error) {
		res, err := db.Query(q)
		if err != nil {
			return "", err
		}
		var out strings.Builder
		for {
			c := res.NextChunk()
			if c == nil {
				return out.String(), nil
			}
			for r := 0; r < c.Len(); r++ {
				fmt.Fprintln(&out, c.Row(r))
			}
		}
	}
	// Best-of-3 timing; the first run warms the morsel scan path.
	timeQuery := func(q string) (time.Duration, error) {
		best := time.Duration(0)
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			res, err := db.Query(q)
			if err != nil {
				return 0, err
			}
			for res.NextChunk() != nil {
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		return best, nil
	}

	setThreads := func(n int) error {
		_, err := db.Exec(fmt.Sprintf("PRAGMA threads=%d", n))
		return err
	}

	var wantScan, wantAgg, wantSort, wantWindow string
	var out []ScalingPoint
	for _, threads := range threadCounts {
		if err := setThreads(threads); err != nil {
			return nil, err
		}
		gotScan, err := render(scalingScanQuery)
		if err != nil {
			return nil, err
		}
		gotAgg, err := render(scalingAggQuery)
		if err != nil {
			return nil, err
		}
		gotSort, err := render(scalingSortQuery)
		if err != nil {
			return nil, err
		}
		gotWindow, err := render(scalingWindowQuery)
		if err != nil {
			return nil, err
		}
		if threads == threadCounts[0] {
			wantScan, wantAgg, wantSort, wantWindow = gotScan, gotAgg, gotSort, gotWindow
		} else if gotScan != wantScan || gotAgg != wantAgg || gotSort != wantSort || gotWindow != wantWindow {
			return nil, fmt.Errorf("results diverge at %d threads", threads)
		}
		scanDur, err := timeQuery(scalingScanQuery)
		if err != nil {
			return nil, err
		}
		aggDur, err := timeQuery(scalingAggQuery)
		if err != nil {
			return nil, err
		}
		sortDur, err := timeQuery(scalingSortQuery)
		if err != nil {
			return nil, err
		}
		windowDur, err := timeQuery(scalingWindowQuery)
		if err != nil {
			return nil, err
		}
		out = append(out, ScalingPoint{Threads: threads, ScanDur: scanDur, AggDur: aggDur, SortDur: sortDur, WindowDur: windowDur})
	}
	base := out[0]
	for i := range out {
		out[i].ScanSpeedup = float64(base.ScanDur) / float64(out[i].ScanDur)
		out[i].AggSpeedup = float64(base.AggDur) / float64(out[i].AggDur)
		out[i].SortSpeedup = float64(base.SortDur) / float64(out[i].SortDur)
		out[i].WindowSpeedup = float64(base.WindowDur) / float64(out[i].WindowDur)
	}

	if w != nil {
		fmt.Fprintf(w, "E10 morsel-driven parallelism (%d rows; results verified identical across thread counts)\n", rows)
		fmt.Fprintf(w, "%-8s %-14s %-9s %-14s %-9s %-14s %-9s %-14s %s\n", "threads", "scan+filter", "speedup", "group-by agg", "speedup", "order-by", "speedup", "window", "speedup")
		for _, p := range out {
			fmt.Fprintf(w, "%-8d %-14v %-9s %-14v %-9s %-14v %-9s %-14v %.2fx\n",
				p.Threads, p.ScanDur.Round(time.Microsecond), fmt.Sprintf("%.2fx", p.ScanSpeedup),
				p.AggDur.Round(time.Microsecond), fmt.Sprintf("%.2fx", p.AggSpeedup),
				p.SortDur.Round(time.Microsecond), fmt.Sprintf("%.2fx", p.SortSpeedup),
				p.WindowDur.Round(time.Microsecond), p.WindowSpeedup)
		}
	}
	return out, nil
}
